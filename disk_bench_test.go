// Disk-path benchmark: prices the out-of-core evaluation and reports
// the memory evidence for its contract — the disk run's peak heap
// carries only the evaluation's own state (accumulators, intern
// tables, one decoded block per concurrent partition), while the
// in-memory run additionally holds the whole materialized corpus. CI
// runs it as a smoke alongside the other ablations.
package blueskies_test

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"blueskies/internal/analysis"
	"blueskies/internal/core"
	"blueskies/internal/synth"
)

// peakHeapDuring GCs to a baseline, runs fn with a HeapAlloc sampler,
// and returns the peak growth over the baseline in MB. The number
// includes not-yet-collected garbage (it is a residency ceiling, not a
// live-set measurement), which is exactly what an operator provisioning
// memory cares about.
func peakHeapDuring(fn func()) float64 {
	runtime.GC()
	var base runtime.MemStats
	runtime.ReadMemStats(&base)
	var peak atomic.Uint64
	peak.Store(base.HeapAlloc)
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		var ms runtime.MemStats
		for {
			select {
			case <-stop:
				return
			case <-time.After(2 * time.Millisecond):
				runtime.ReadMemStats(&ms)
				for {
					old := peak.Load()
					if ms.HeapAlloc <= old || peak.CompareAndSwap(old, ms.HeapAlloc) {
						break
					}
				}
			}
		}
	}()
	fn()
	close(stop)
	<-done
	return float64(peak.Load()-base.HeapAlloc) / (1 << 20)
}

// BenchmarkDiskEvaluation compares the full evaluation over an
// 8-partition spilled corpus in its two execution modes:
//
//	out-of-core  partitions stream from disk block by block
//	in-memory    partitions materialize first, then evaluate
//
// Both render byte-identical reports; each sub-benchmark reports its
// peak-heap-MB (growth over a GC'd baseline), and the parent reports
// partition-heap-MB (one materialized partition) and corpus-disk-MB
// for scale. The tentpole's bound: out-of-core peak tracks the
// evaluation state, in-memory peak that plus the whole corpus.
func BenchmarkDiskEvaluation(b *testing.B) {
	dir := b.TempDir()
	const parts = 8
	if _, err := synth.GeneratePartitionedTo(synth.Config{Scale: 400, Seed: 1}, parts, dir, 0); err != nil {
		b.Fatal(err)
	}
	c, err := core.OpenCorpus(dir)
	if err != nil {
		b.Fatal(err)
	}

	const mb = 1.0 / (1 << 20)
	var diskBytes int64
	for k := 0; k < parts; k++ {
		fi, err := os.Stat(filepath.Join(dir, core.PartitionFileName(k)))
		if err != nil {
			b.Fatal(err)
		}
		diskBytes += fi.Size()
	}

	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	p0, err := c.ReadPartition(0)
	if err != nil {
		b.Fatal(err)
	}
	runtime.GC()
	runtime.ReadMemStats(&after)
	partitionMB := float64(after.HeapAlloc-before.HeapAlloc) * mb
	runtime.KeepAlive(p0)
	p0 = nil

	b.Run("out-of-core", func(b *testing.B) {
		peak := 0.0
		for i := 0; i < b.N; i++ {
			peak = max(peak, peakHeapDuring(func() {
				reports, err := analysis.RunAllDisk(c, 0)
				if err != nil {
					b.Fatal(err)
				}
				if len(reports) == 0 {
					b.Fatal("no reports")
				}
			}))
		}
		b.ReportMetric(peak, "peak-heap-MB")
		b.ReportMetric(partitionMB, "partition-heap-MB")
		b.ReportMetric(float64(diskBytes)*mb, "corpus-disk-MB")
	})
	b.Run("in-memory", func(b *testing.B) {
		peak := 0.0
		for i := 0; i < b.N; i++ {
			peak = max(peak, peakHeapDuring(func() {
				mats := make([]*core.Dataset, parts)
				for k := range mats {
					var err error
					if mats[k], err = c.ReadPartition(k); err != nil {
						b.Fatal(err)
					}
				}
				reports, err := analysis.RunAllPartitioned(mats, c.Manifest, 0)
				if err != nil {
					b.Fatal(err)
				}
				if len(reports) == 0 {
					b.Fatal("no reports")
				}
			}))
		}
		b.ReportMetric(peak, "peak-heap-MB")
	})
}

// BenchmarkBlockDecode prices raw partition-block decode at both disk
// formats over the same in-memory byte stream — the line-rate number
// the columnar v2 codec exists for. Each sub-benchmark drains a full
// PartitionReader per iteration and reports MB/s of encoded input
// plus the encoded size, so the v2/v1 throughput multiple and the
// size ratio read straight off the output.
func BenchmarkBlockDecode(b *testing.B) {
	ds := synth.Generate(synth.Config{Scale: 2000, Seed: 1})
	parts, m := core.Split(ds, 1)
	for _, version := range []int{1, core.DiskFormatVersion} {
		dir := b.TempDir()
		if err := core.WriteCorpusVersion(dir, parts, m, version); err != nil {
			b.Fatal(err)
		}
		data, err := os.ReadFile(filepath.Join(dir, core.PartitionFileName(0)))
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("v%d", version), func(b *testing.B) {
			b.SetBytes(int64(len(data)))
			records := 0
			for i := 0; i < b.N; i++ {
				pr, err := core.NewPartitionReader(bytes.NewReader(data))
				if err != nil {
					b.Fatal(err)
				}
				records = 0
				for {
					blk, err := pr.Next()
					if err == io.EOF {
						break
					}
					if err != nil {
						b.Fatal(err)
					}
					records += len(blk.Users) + len(blk.Posts) + len(blk.Days) +
						len(blk.Labels) + len(blk.FeedGens) + len(blk.Domains) + len(blk.HandleUpdates)
				}
			}
			if records != ds.Counts().Total() {
				b.Fatalf("decoded %d records, want %d", records, ds.Counts().Total())
			}
			b.ReportMetric(float64(len(data))/(1<<20), "encoded-MB")
		})
	}
}
