// Ablation benchmarks for the design choices DESIGN.md calls out:
// MST canonical rebuild cost (the price of the rebuild-from-keyset
// simplification), commit + CAR export cost in the PDS hot path,
// firehose fan-out under subscriber load, and the §6.1 observation
// that the AppView's label ingest scales with the number of labelers.
package blueskies_test

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"testing"
	"time"

	"blueskies/internal/analysis"
	"blueskies/internal/appview"
	"blueskies/internal/cbor"
	"blueskies/internal/cid"
	"blueskies/internal/core"
	"blueskies/internal/events"
	"blueskies/internal/identity"
	"blueskies/internal/lexicon"
	"blueskies/internal/mst"
	"blueskies/internal/repo"
	"blueskies/internal/synth"
)

// BenchmarkMSTRebuild measures canonical tree construction across repo
// sizes; the repo layer rebuilds the MST on every commit.
func BenchmarkMSTRebuild(b *testing.B) {
	for _, n := range []int{100, 1_000, 10_000} {
		b.Run(fmt.Sprintf("records=%d", n), func(b *testing.B) {
			tree := mst.New()
			for i := 0; i < n; i++ {
				_ = tree.Put(fmt.Sprintf("app.bsky.feed.post/%013d", i), cid.SumRaw([]byte{byte(i), byte(i >> 8)}))
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				bs := mst.NewMemBlockStore()
				if _, err := tree.Build(bs); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRepoCommit measures the full signed-commit path (stage,
// diff, MST rebuild, sign) on a growing repository.
func BenchmarkRepoCommit(b *testing.B) {
	kp := identity.DeriveKeyPair("bench")
	did := identity.PLCFromGenesis([]byte("bench"))
	r := repo.New(did, kp)
	ts := time.Date(2024, 4, 1, 0, 0, 0, 0, time.UTC)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _, _ = r.Put("app.bsky.feed.post", fmt.Sprintf("%013d", i),
			lexicon.NewPost("bench post", []string{"en"}, ts))
		if _, err := r.Commit(ts.Add(time.Duration(i) * time.Second)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCARExport measures full-repo archive serialization (the
// sync.getRepo hot path on PDS and relay).
func BenchmarkCARExport(b *testing.B) {
	kp := identity.DeriveKeyPair("car-bench")
	did := identity.PLCFromGenesis([]byte("car-bench"))
	r := repo.New(did, kp)
	ts := time.Date(2024, 4, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 1_000; i++ {
		_, _, _ = r.Put("app.bsky.feed.post", fmt.Sprintf("%013d", i),
			lexicon.NewPost("export me", nil, ts))
	}
	if _, err := r.Commit(ts); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := r.ExportCAR(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFirehoseFanout measures sequencer emit latency as the
// subscriber count grows (the relay's fan-out hot path).
func BenchmarkFirehoseFanout(b *testing.B) {
	for _, subs := range []int{1, 16, 128} {
		b.Run(fmt.Sprintf("subscribers=%d", subs), func(b *testing.B) {
			seq := events.NewSequencer(0, 10_000)
			for i := 0; i < subs; i++ {
				ch, cancel := seq.Subscribe(1024)
				defer cancel()
				go func() {
					for range ch {
					}
				}()
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, _ = seq.Emit(func(s int64) any {
					return &events.Identity{Seq: s, DID: "did:plc:bench", Time: "2024-04-01T00:00:00.000Z"}
				})
			}
		})
	}
}

// BenchmarkAppViewLabelIngest reproduces the §6.1 scalability
// observation: the AppView must store every label from every labeler,
// so ingest work grows with the labeler population.
func BenchmarkAppViewLabelIngest(b *testing.B) {
	for _, labelers := range []int{1, 8, 36} {
		b.Run(fmt.Sprintf("labelers=%d", labelers), func(b *testing.B) {
			v := appview.New()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for l := 0; l < labelers; l++ {
					v.Ingest(&events.Labels{Seq: int64(i*labelers + l), Labels: []events.Label{{
						Src: fmt.Sprintf("did:plc:labeler%024d", l),
						URI: fmt.Sprintf("at://did:plc:user/app.bsky.feed.post/%d", i),
						Val: "bench", CTS: "2024-04-01T00:00:00.000Z",
					}}})
				}
			}
			b.ReportMetric(float64(v.LabelCount())/float64(b.N), "labels/op")
		})
	}
}

// BenchmarkCommitEventDecode measures firehose frame decode (every
// consumer's per-event cost).
func BenchmarkCommitEventDecode(b *testing.B) {
	recCID := cid.SumCBOR(cbor.MustMarshal(lexicon.NewPost("x", nil, time.Now())))
	frame, err := events.Encode(&events.Commit{
		Seq: 1, Repo: "did:plc:abcdefghijklmnopqrstuvwx", Rev: "3kdgeujwlq32y",
		Commit: cid.SumRaw([]byte("c")),
		Ops:    []events.RepoOp{{Action: "create", Path: "app.bsky.feed.post/3kdgeujwlq32y", CID: &recCID}},
		Blocks: bytes.Repeat([]byte{0xab}, 512),
		Time:   "2024-04-01T00:00:00.000Z",
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := events.Decode(frame); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineWorkers ablates the evaluation engine's traversal
// sharding: the same single-pass evaluation at fixed worker counts,
// isolating the merge/remap overhead from the work-sharing win the
// FullEvaluation pair measures.
func BenchmarkEngineWorkers(b *testing.B) {
	ds := synth.Generate(synth.Config{Scale: 2000, Seed: 1})
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if got := analysis.RunAll(ds, workers); len(got) == 0 {
					b.Fatal("no reports")
				}
			}
		})
	}
}

// BenchmarkPartitionedEvaluation ablates the two-level merge: the full
// evaluation over an n-way row-range split of the corpus at fixed
// per-partition worker counts, against the partitions=1 baseline. The
// grid locates where the cross-partition fold (intern-table remap plus
// one extra shard merge per partition) crosses the single-dataset
// traversal — by construction every cell renders byte-identical
// reports, so the delta is pure partitioning overhead (or win, once
// partitions give otherwise-idle cores contiguous ranges to scan).
func BenchmarkPartitionedEvaluation(b *testing.B) {
	ds := synth.Generate(synth.Config{Scale: 400, Seed: 1})
	for _, parts := range []int{1, 2, 4, 8} {
		split, manifest := core.Split(ds, parts)
		for _, workers := range []int{1, 2, 4} {
			b.Run(fmt.Sprintf("partitions=%d/workers=%d", parts, workers), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					got, err := analysis.RunAllPartitioned(split, manifest, workers)
					if err != nil {
						b.Fatal(err)
					}
					if len(got) == 0 {
						b.Fatal("no reports")
					}
				}
			})
		}
	}
}

// BenchmarkPartitionedGeneration compares monolithic generation with
// partition-parallel independent generation (disjoint RNG streams, no
// shared heap) at matching corpus scale.
func BenchmarkPartitionedGeneration(b *testing.B) {
	for _, parts := range []int{1, 4} {
		b.Run(fmt.Sprintf("partitions=%d", parts), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if parts == 1 {
					synth.Generate(synth.Config{Scale: 400, Seed: int64(i)})
					continue
				}
				synth.GeneratePartitioned(synth.Config{Scale: 400, Seed: int64(i)}, parts)
			}
		})
	}
}

// BenchmarkStreamingSnapshot measures the streaming evaluation: the
// corpus replayed through firehose + labeler sequencers, decoded from
// frames, and accumulated with periodic full-report snapshots — the
// run-forever path of `bskyanalyze -follow`, whose final snapshot is
// byte-identical to RunAll.
func BenchmarkStreamingSnapshot(b *testing.B) {
	ds := synth.Generate(synth.Config{Scale: 2000, Seed: 1})
	for _, every := range []int{0, 25_000} {
		b.Run(fmt.Sprintf("snapshotEvery=%d", every), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				fire := events.NewSequencer(0, 0)
				labeler := events.NewSequencer(0, 0)
				blocks, errs := core.DrainSequencers(context.Background(), fire, labeler)
				replayErr := make(chan error, 1)
				go func() { replayErr <- synth.Replay(ds, fire, labeler, 0) }()
				snapshots := 0
				src := &analysis.StreamSource{
					Blocks:        blocks,
					SnapshotEvery: every,
					OnSnapshot:    func(int, []*analysis.Report) { snapshots++ },
				}
				reports, err := analysis.NewFullEngine().RunSource(src)
				if err != nil {
					b.Fatal(err)
				}
				if err := <-replayErr; err != nil {
					b.Fatal(err)
				}
				for err := range errs {
					b.Fatal(err)
				}
				if len(reports) == 0 {
					b.Fatal("no reports")
				}
				b.ReportMetric(float64(snapshots), "snapshots/op")
			}
		})
	}
}

// BenchmarkDiscussionBandwidth regenerates the §9 firehose-bandwidth
// estimate (paper: ≈30 GB/day per subscribed client).
func BenchmarkDiscussionBandwidth(b *testing.B) {
	ds := synth.Generate(synth.Config{Scale: 2000, Seed: 1})
	b.ResetTimer()
	var bw analysis.FirehoseBandwidth
	for i := 0; i < b.N; i++ {
		bw = analysis.EstimateFirehoseBandwidth(ds)
	}
	b.StopTimer()
	b.ReportMetric(bw.GBPerDayPaper, "GB/day-projected")
}
