// Feed generator example: build a Skyfeed-style regex feed (the
// feature only Skyfeed offers, per Table 5), publish its declaration
// record, and query it through the AppView's getFeed endpoint.
package main

import (
	"context"
	"fmt"
	"log"
	"net/url"
	"time"

	"blueskies/internal/feedgen"
	"blueskies/internal/lexicon"
	"blueskies/internal/netsim"
	"blueskies/internal/xrpc"
)

func main() {
	net, err := netsim.Start(netsim.Config{PDSCount: 1})
	if err != nil {
		log.Fatal(err)
	}
	defer net.Close()

	creator, err := net.CreateUser(0, "ramenfan.bsky.social")
	if err != nil {
		log.Fatal(err)
	}
	engine, serviceDID, err := net.AddFeedHost("Skyfeed", feedgen.PlatformByName("Skyfeed"))
	if err != nil {
		log.Fatal(err)
	}
	feedURI, err := net.PublishFeed(creator, engine, serviceDID, "ramen",
		feedgen.Config{WholeNetwork: true, TextRegex: `(?i)ramen|ラーメン`},
		"Ramen Feed", "all posts about the popular noodle dish ramen")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("published feed:", feedURI)

	// Post a mix of matching and non-matching posts.
	texts := []string{
		"best RAMEN place in Tokyo",
		"just setting up my bsky",
		"今日のラーメンは最高でした",
		"compilers are fun",
	}
	for _, text := range texts {
		uri, err := net.PDSes[0].CreateRecord(creator.DID, lexicon.Post, "",
			lexicon.NewPost(text, nil, time.Now()))
		if err != nil {
			log.Fatal(err)
		}
		engine.Ingest(feedgen.PostView{URI: uri.String(), DID: string(creator.DID),
			Text: text, CreatedAt: time.Now()})
	}
	if err := net.WaitForAppView(4, 3*time.Second); err != nil {
		log.Fatal(err)
	}

	// Query through the AppView like a client (hydrated getFeed).
	client := xrpc.NewClient(net.AppView.URL())
	var out struct {
		Feed []struct {
			Post map[string]any `json:"post"`
		} `json:"feed"`
	}
	if err := client.Query(context.Background(), "app.bsky.feed.getFeed",
		url.Values{"feed": {feedURI}}, &out); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("feed returned %d of %d posts:\n", len(out.Feed), len(texts))
	for _, item := range out.Feed {
		fmt.Printf("  %v\n", item.Post["text"])
	}
}
