// Labeler example: run a community labeler, stream its labels, and
// apply client-side moderation preferences (ignore / warn / hide) the
// way a Bluesky client does (§2 User Preferences, §6 of the paper).
package main

import (
	"fmt"
	"log"
	"time"

	"blueskies/internal/events"
	"blueskies/internal/feedgen"
	"blueskies/internal/labeler"
	"blueskies/internal/lexicon"
	"blueskies/internal/netsim"
)

func main() {
	net, err := netsim.Start(netsim.Config{PDSCount: 1})
	if err != nil {
		log.Fatal(err)
	}
	defer net.Close()

	author, err := net.CreateUser(0, "author.bsky.social")
	if err != nil {
		log.Fatal(err)
	}
	// Official + community labeler, as in the paper's §6 ecosystem.
	official, _, err := net.AddLabeler("mod.bsky.social", []string{"porn", "spam", "!takedown"})
	if err != nil {
		log.Fatal(err)
	}
	community, _, err := net.AddLabeler("spoilers.bsky.social", []string{"spoiler", "ff14-dawntrail"})
	if err != nil {
		log.Fatal(err)
	}

	uri, err := net.PDSes[0].CreateRecord(author.DID, lexicon.Post, "",
		lexicon.NewPost("the ending of Dawntrail is…", []string{"en"}, time.Now()))
	if err != nil {
		log.Fatal(err)
	}
	if _, err := community.Apply(uri.String(), "ff14-dawntrail"); err != nil {
		log.Fatal(err)
	}
	if _, err := official.Apply(uri.String(), "spam"); err != nil {
		log.Fatal(err)
	}

	// Consume the community label stream like the paper's crawler.
	sub, err := events.Subscribe(community.URL(), "com.atproto.label.subscribeLabels", 0)
	if err != nil {
		log.Fatal(err)
	}
	defer sub.Close()
	fmt.Println("labels on the community stream:")
	ev, err := sub.NextTimeout(time.Second)
	if err != nil {
		log.Fatal(err)
	}
	var collected []events.Label
	if ls, ok := ev.(*events.Labels); ok {
		collected = ls.Labels
		for _, l := range ls.Labels {
			fmt.Printf("  %s applied %q to %s\n", l.Src[:20]+"…", l.Val, l.URI)
		}
	}

	// Three users, three policies.
	officialDID := official.DID()
	all := append(collected, events.Label{Src: string(official.DID()), URI: uri.String(), Val: "spam"})

	policies := map[string]labeler.Preferences{
		"default (ignores community labelers)": labeler.DefaultPreferences(officialDID),
		"spoiler-averse subscriber": {
			Subscriptions: map[string]bool{string(community.DID()): true},
			Reactions:     map[string]labeler.Visibility{"ff14-dawntrail": labeler.Hide},
			Adult:         true,
		},
		"warn-on-spam subscriber": {
			Subscriptions: map[string]bool{string(community.DID()): true},
			Reactions:     map[string]labeler.Visibility{"spam": labeler.Warn},
			Adult:         true,
		},
	}
	fmt.Println("\nper-user moderation decisions for the post:")
	for name, prefs := range policies {
		fmt.Printf("  %-40s → %s\n", name, prefs.Decide(all, officialDID))
	}

	// Labels also feed downstream recommendation (§6 takeaway): a
	// feed filtering on the community label.
	engine := feedgen.NewEngine(feedgen.EngineConfig{Name: "self"})
	feedURI := "at://" + string(author.DID) + "/app.bsky.feed.generator/spoiler-free"
	if err := engine.AddFeed(feedgen.Config{URI: feedURI, WholeNetwork: true,
		ExcludeLabels: []string{"ff14-dawntrail"}}); err != nil {
		log.Fatal(err)
	}
	engine.Ingest(feedgen.PostView{URI: uri.String(), Text: "the ending of Dawntrail is…",
		Labels: []string{"ff14-dawntrail"}, CreatedAt: time.Now()})
	uris, _ := engine.Skeleton(feedURI, "", 10)
	fmt.Printf("\nspoiler-free feed contains %d posts (spoiler filtered out)\n", len(uris))
}
