// Migration example: move an account between two PDSes while keeping
// its DID, records, and social graph — the account-portability
// property the paper's §5 identity analysis is about. The PLC
// directory is updated so resolvers find the new endpoint.
//
// The network size, mover handle, and seed come from
// scenario.MigrationSpec — the same configuration the migration-wave
// stress scenario scales into a mass wave, so this walkthrough and the
// registry cannot drift apart.
package main

import (
	"fmt"
	"log"

	"blueskies/internal/identity"
	"blueskies/internal/lexicon"
	"blueskies/internal/netsim"
	"blueskies/internal/plc"
	"blueskies/internal/scenario"
	"blueskies/internal/synth"
)

func main() {
	spec := scenario.MigrationSpec()
	clock := synth.SeededClock(spec.Seed)
	net, err := netsim.Start(netsim.Config{PDSCount: spec.PDSCount, Clock: clock})
	if err != nil {
		log.Fatal(err)
	}
	defer net.Close()
	src, dst := net.PDSes[0], net.PDSes[1]

	mover, err := net.CreateUser(0, identity.Handle(spec.MoverHandle))
	if err != nil {
		log.Fatal(err)
	}
	if _, err := src.CreateRecord(mover.DID, lexicon.Post, "",
		lexicon.NewPost("posting before I migrate", nil, clock())); err != nil {
		log.Fatal(err)
	}
	if _, err := src.CreateRecord(mover.DID, lexicon.Follow, "",
		lexicon.NewFollow("did:plc:abcdefghijklmnopqrstuvwx", clock())); err != nil {
		log.Fatal(err)
	}
	fmt.Println("account on source PDS:", src.URL())
	fmt.Println("DID:", mover.DID)

	// 1. Export the full repository as a CAR archive.
	carBytes, err := src.ExportCAR(mover.DID)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exported repo: %d bytes\n", len(carBytes))

	// 2. Import on the destination PDS (same DID, same key).
	moved, err := dst.ImportAccount(mover.DID, mover.Handle, mover.Key, carBytes)
	if err != nil {
		log.Fatal(err)
	}
	posts, _ := moved.Repo.List(lexicon.Post)
	follows, _ := moved.Repo.List(lexicon.Follow)
	fmt.Printf("imported on %s: %d posts, %d follows — social graph intact\n",
		dst.URL(), len(posts), len(follows))

	// 3. Update the DID document so the network resolves the new PDS.
	resolver := plc.NewClient(net.PLC.URL())
	doc, err := resolver.Resolve(mover.DID)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("PLC directory PDS endpoint before update:", doc.PDSEndpoint())

	log2, err := net.PLCDir.Log(mover.DID)
	if err != nil {
		log.Fatal(err)
	}
	head := log2[len(log2)-1]
	op := plc.Operation{
		Type:            plc.OpTypeOperation,
		VerificationKey: mover.Key.PublicMultibase(),
		Handle:          string(mover.Handle),
		PDSEndpoint:     dst.URL(),
		Prev:            head.CID(),
	}
	op.Sign(mover.Key)
	if err := resolver.Submit(mover.DID, op); err != nil {
		log.Fatal(err)
	}
	doc, err = resolver.Resolve(mover.DID)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("PLC directory PDS endpoint after update: ", doc.PDSEndpoint())
	fmt.Println("migration complete: same DID, new home")
}
