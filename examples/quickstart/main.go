// Quickstart: boot a complete in-process Bluesky network, create
// accounts, post, follow, and watch the events arrive on the Firehose —
// then spill a calibrated synthetic corpus to disk as a partition
// store and evaluate it out of core.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"blueskies/internal/analysis"
	"blueskies/internal/core"
	"blueskies/internal/events"
	"blueskies/internal/lexicon"
	"blueskies/internal/netsim"
	"blueskies/internal/synth"
)

func main() {
	net, err := netsim.Start(netsim.Config{PDSCount: 2})
	if err != nil {
		log.Fatal(err)
	}
	defer net.Close()
	fmt.Println("network up:")
	fmt.Println("  PLC directory:", net.PLC.URL())
	fmt.Println("  Relay:        ", net.Relay.URL())
	fmt.Println("  AppView:      ", net.AppView.URL())

	alice, err := net.CreateUser(0, "alice.bsky.social")
	if err != nil {
		log.Fatal(err)
	}
	bob, err := net.CreateUser(1, "bob.bsky.social")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("alice:", alice.DID)
	fmt.Println("bob:  ", bob.DID)

	// Subscribe to the Firehose before writing.
	sub, err := events.Subscribe(net.Relay.URL(), "com.atproto.sync.subscribeRepos", 0)
	if err != nil {
		log.Fatal(err)
	}
	defer sub.Close()

	uri, err := net.PDSes[0].CreateRecord(alice.DID, lexicon.Post, "",
		lexicon.NewPost("hello from the quickstart!", []string{"en"}, time.Now()))
	if err != nil {
		log.Fatal(err)
	}
	if _, err := net.PDSes[1].CreateRecord(bob.DID, lexicon.Follow, "",
		lexicon.NewFollow(string(alice.DID), time.Now())); err != nil {
		log.Fatal(err)
	}
	if _, err := net.PDSes[1].CreateRecord(bob.DID, lexicon.Like, "",
		lexicon.NewLike(uri.String(), time.Now())); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nfirehose events:")
	for i := 0; i < 10; i++ {
		ev, err := sub.NextTimeout(time.Second)
		if err != nil {
			break
		}
		switch e := ev.(type) {
		case *events.Commit:
			for _, op := range e.Ops {
				fmt.Printf("  seq=%d #commit %s %s %s\n", e.Seq, e.Repo[:20]+"…", op.Action, op.Path)
			}
		case *events.Identity:
			fmt.Printf("  seq=%d #identity %s\n", e.Seq, e.DID[:20]+"…")
		case *events.Handle:
			fmt.Printf("  seq=%d #handle %s → %s\n", e.Seq, e.DID[:20]+"…", e.Handle)
		}
	}

	if err := spillDemo(); err != nil {
		log.Fatal(err)
	}
}

// spillDemo spills a small calibrated corpus to disk as a partition
// store — generation holds at most one partition per worker in
// memory — then re-opens the store and evaluates it out of core (the
// engine streams blocks from disk; the corpus is never materialized).
// A function of its own so the temp-dir cleanup runs on error paths
// too (log.Fatal would skip deferred functions).
func spillDemo() error {
	dir, err := os.MkdirTemp("", "blueskies-quickstart-corpus-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	manifest, err := synth.GeneratePartitionedTo(synth.Config{Scale: 8000, Seed: 7}, 2, dir, 0)
	if err != nil {
		return err
	}
	fmt.Println("\nspilled corpus:")
	fmt.Print(manifest.Plan())

	corpus, err := core.OpenCorpus(dir)
	if err != nil {
		return err
	}
	reports, err := analysis.RunAllDisk(corpus, 0)
	if err != nil {
		return err
	}
	fmt.Printf("\nout-of-core evaluation rendered %d reports; first:\n\n", len(reports))
	fmt.Println(reports[0].String())
	return nil
}
