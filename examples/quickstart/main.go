// Quickstart: boot a complete in-process Bluesky network, create
// accounts, post, follow, and watch the events arrive on the Firehose.
package main

import (
	"fmt"
	"log"
	"time"

	"blueskies/internal/events"
	"blueskies/internal/lexicon"
	"blueskies/internal/netsim"
)

func main() {
	net, err := netsim.Start(netsim.Config{PDSCount: 2})
	if err != nil {
		log.Fatal(err)
	}
	defer net.Close()
	fmt.Println("network up:")
	fmt.Println("  PLC directory:", net.PLC.URL())
	fmt.Println("  Relay:        ", net.Relay.URL())
	fmt.Println("  AppView:      ", net.AppView.URL())

	alice, err := net.CreateUser(0, "alice.bsky.social")
	if err != nil {
		log.Fatal(err)
	}
	bob, err := net.CreateUser(1, "bob.bsky.social")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("alice:", alice.DID)
	fmt.Println("bob:  ", bob.DID)

	// Subscribe to the Firehose before writing.
	sub, err := events.Subscribe(net.Relay.URL(), "com.atproto.sync.subscribeRepos", 0)
	if err != nil {
		log.Fatal(err)
	}
	defer sub.Close()

	uri, err := net.PDSes[0].CreateRecord(alice.DID, lexicon.Post, "",
		lexicon.NewPost("hello from the quickstart!", []string{"en"}, time.Now()))
	if err != nil {
		log.Fatal(err)
	}
	if _, err := net.PDSes[1].CreateRecord(bob.DID, lexicon.Follow, "",
		lexicon.NewFollow(string(alice.DID), time.Now())); err != nil {
		log.Fatal(err)
	}
	if _, err := net.PDSes[1].CreateRecord(bob.DID, lexicon.Like, "",
		lexicon.NewLike(uri.String(), time.Now())); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nfirehose events:")
	for i := 0; i < 10; i++ {
		ev, err := sub.NextTimeout(time.Second)
		if err != nil {
			break
		}
		switch e := ev.(type) {
		case *events.Commit:
			for _, op := range e.Ops {
				fmt.Printf("  seq=%d #commit %s %s %s\n", e.Seq, e.Repo[:20]+"…", op.Action, op.Path)
			}
		case *events.Identity:
			fmt.Printf("  seq=%d #identity %s\n", e.Seq, e.DID[:20]+"…")
		case *events.Handle:
			fmt.Printf("  seq=%d #handle %s → %s\n", e.Seq, e.DID[:20]+"…", e.Handle)
		}
	}
}
