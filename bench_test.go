// Benchmark harness: one benchmark per table and figure of the
// paper's evaluation, plus the FullEvaluation pair comparing the
// legacy one-scan-per-report path against the single-pass engine.
// Each benchmark regenerates its artifact from the calibrated
// synthetic dataset (1:400 scale by default; see DESIGN.md) and prints
// the rows/series once, so `go test -bench=. -benchmem` reproduces the
// whole evaluation section.
package blueskies_test

import (
	"fmt"
	"sync"
	"testing"

	"blueskies/internal/analysis"
	"blueskies/internal/core"
	"blueskies/internal/synth"
)

// benchScale is the dataset downscaling factor for benchmarks.
const benchScale = 400

var datasetOnce = sync.OnceValue(func() *core.Dataset {
	return synth.Generate(synth.Config{Scale: benchScale, Seed: 2024})
})

var printed sync.Map

// run executes one report benchmark: dataset generation is amortized,
// the analysis runs every iteration, and the rendered table prints
// once per benchmark.
func run(b *testing.B, id string, report func(*core.Dataset) *analysis.Report) {
	b.Helper()
	ds := datasetOnce()
	b.ResetTimer()
	var r *analysis.Report
	for i := 0; i < b.N; i++ {
		r = report(ds)
	}
	b.StopTimer()
	if _, dup := printed.LoadOrStore(id, true); !dup {
		fmt.Println(r.String())
	}
	b.ReportMetric(float64(len(r.Rows)), "rows")
}

// ---- Section headline numbers ----

func BenchmarkSection4DatasetCounts(b *testing.B) { run(b, "S4", analysis.Section4) }
func BenchmarkSection5Identity(b *testing.B)      { run(b, "S5", analysis.Section5) }
func BenchmarkSection6Moderation(b *testing.B)    { run(b, "S6", analysis.Section6) }

// ---- Tables ----

func BenchmarkTable1FirehoseEventTypes(b *testing.B)     { run(b, "T1", analysis.Table1) }
func BenchmarkTable2RegistrarConcentration(b *testing.B) { run(b, "T2", analysis.Table2) }
func BenchmarkTable3TopCommunityLabelers(b *testing.B)   { run(b, "T3", analysis.Table3) }
func BenchmarkTable4LabelTargets(b *testing.B)           { run(b, "T4", analysis.Table4) }
func BenchmarkTable5FeedServiceFeatures(b *testing.B)    { run(b, "T5", analysis.Table5) }
func BenchmarkTable6LabelerReactionTimes(b *testing.B)   { run(b, "T6", analysis.Table6) }

// ---- Figures ----

func BenchmarkFigure1DailyActivity(b *testing.B)        { run(b, "F1", analysis.Figure1) }
func BenchmarkFigure2LanguageCommunities(b *testing.B)  { run(b, "F2", analysis.Figure2) }
func BenchmarkFigure3HandleConcentration(b *testing.B)  { run(b, "F3", analysis.Figure3) }
func BenchmarkFigure4LabelsBySource(b *testing.B)       { run(b, "F4", analysis.Figure4) }
func BenchmarkFigure5LabelerReaction(b *testing.B)      { run(b, "F5", analysis.Figure5) }
func BenchmarkFigure6LabelValueReaction(b *testing.B)   { run(b, "F6", analysis.Figure6) }
func BenchmarkFigure7FeedGenGrowth(b *testing.B)        { run(b, "F7", analysis.Figure7) }
func BenchmarkFigure8DescriptionWords(b *testing.B)     { run(b, "F8", analysis.Figure8) }
func BenchmarkFigure9FeedLabels(b *testing.B)           { run(b, "F9", analysis.Figure9) }
func BenchmarkFigure10PostsVsLikes(b *testing.B)        { run(b, "F10", analysis.Figure10) }
func BenchmarkFigure11DegreeDistributions(b *testing.B) { run(b, "F11", analysis.Figure11) }
func BenchmarkFigure12ProviderShares(b *testing.B)      { run(b, "F12", analysis.Figure12) }

// ---- Full evaluation: sequential vs single-pass ----

// BenchmarkFullEvaluationSequential runs the ~25 per-table functions
// back-to-back — the legacy path, one full dataset scan per report.
func BenchmarkFullEvaluationSequential(b *testing.B) {
	ds := datasetOnce()
	b.ResetTimer()
	var reports []*analysis.Report
	for i := 0; i < b.N; i++ {
		reports = analysis.AllReports(ds)
	}
	b.StopTimer()
	b.ReportMetric(float64(len(reports)), "reports")
}

// BenchmarkFullEvaluationParallel runs the same evaluation through the
// single-pass engine (analysis.RunAll): one sharded traversal streams
// every record through all report accumulators at once. Output is
// byte-identical to the sequential path (asserted by
// TestFullEvaluationPathsAgree and the engine's own golden tests).
func BenchmarkFullEvaluationParallel(b *testing.B) {
	ds := datasetOnce()
	b.ResetTimer()
	var reports []*analysis.Report
	for i := 0; i < b.N; i++ {
		reports = analysis.RunAll(ds, 0)
	}
	b.StopTimer()
	b.ReportMetric(float64(len(reports)), "reports")
}

// TestFullEvaluationPathsAgree pins the bench comparison's premise on
// the bench dataset itself: both paths must render identical bytes.
func TestFullEvaluationPathsAgree(t *testing.T) {
	ds := datasetOnce()
	seq := analysis.AllReports(ds)
	par := analysis.RunAll(ds, 0)
	if len(seq) != len(par) {
		t.Fatalf("report counts differ: %d vs %d", len(seq), len(par))
	}
	for i := range seq {
		if seq[i].String() != par[i].String() {
			t.Fatalf("report %s differs between sequential and parallel paths", seq[i].ID)
		}
	}
}

// ---- Workload generation itself ----

func BenchmarkWorldGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		synth.Generate(synth.Config{Scale: 2000, Seed: int64(i)})
	}
}
