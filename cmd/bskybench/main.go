// bskybench measures the repo's disk and wire hot paths — block
// decode, collector ingest, shipped partition bytes — at every disk
// format and writes one BENCH_<date>.json trajectory point. CI runs
// it on each push and uploads the JSON as an artifact, so the decode
// throughput and shipped-bytes trajectory is machine-readable across
// the project's history; a baseline point is checked in at the repo
// root.
//
// Usage:
//
//	bskybench [-scale N] [-seed S] [-reps R] [-out FILE]
//	bskybench -scenario NAME,... | -scenario all [-out FILE]
//
// Each measure runs R times (default 5); the JSON records the best
// wall time (ns_op), derived throughput (mb_per_s, records_per_s),
// the encoded byte volume (bytes), and the peak heap growth over a
// GC'd baseline (peak_heap_mb). -out defaults to BENCH_<date>.json in
// the working directory.
//
// With -scenario, the named stress scenarios (internal/scenario) are
// the workload instead: each runs end to end — generate, transform,
// batch golden, faulted streaming replay, assertion — and contributes
// one scenario/<name> trajectory point (records/s, peak heap, and the
// stream-backlog high-water mark). A failed assertion aborts the
// benchmark with a nonzero exit, so CI can use it as a smoke gate.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync/atomic"
	"time"

	"blueskies/internal/analysis"
	"blueskies/internal/core"
	"blueskies/internal/scenario"
	"blueskies/internal/sched"
	"blueskies/internal/synth"
)

// Result is one measure's trajectory point. Fields are omitted where
// a measure has no meaningful value for them.
type Result struct {
	Name        string  `json:"name"`
	NsOp        int64   `json:"ns_op,omitempty"`
	MBPerS      float64 `json:"mb_per_s,omitempty"`
	RecordsPerS float64 `json:"records_per_s,omitempty"`
	Bytes       int     `json:"bytes,omitempty"`
	PeakHeapMB  float64 `json:"peak_heap_mb,omitempty"`
	// Elastic-scheduler counters (remote/* measures only).
	ShippedBytes int64 `json:"shipped_bytes,omitempty"`
	Steals       int64 `json:"steals,omitempty"`
	Speculations int64 `json:"speculations,omitempty"`
	SpecWins     int64 `json:"spec_wins,omitempty"`
	CacheHits    int64 `json:"cache_hits,omitempty"`
	// Stream-backpressure high-water mark (scenario/* measures only):
	// the peak combined frame count the sequencers retained during the
	// faulted replay.
	BacklogHighWater int `json:"backlog_high_water,omitempty"`
}

// Trajectory is the file's top-level shape.
type Trajectory struct {
	Date    string   `json:"date"`
	Go      string   `json:"go"`
	Scale   int      `json:"scale"`
	Seed    int64    `json:"seed"`
	Results []Result `json:"results"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("bskybench: ")
	scale := flag.Int("scale", 2000, "synthetic corpus scale")
	seed := flag.Int64("seed", 1, "synthetic corpus seed")
	reps := flag.Int("reps", 5, "repetitions per measure (best time wins)")
	out := flag.String("out", "", "output path (default BENCH_<date>.json)")
	scenarios := flag.String("scenario", "", "comma-separated stress scenarios to measure instead of the disk/wire suite ('all' = every registered scenario)")
	baseline := flag.String("baseline", "", "prior trajectory FILE to gate against: exit nonzero if any shared decode/ingest throughput regresses >20%")
	flag.Parse()

	var results []Result
	if *scenarios != "" {
		results = scenarioMeasures(*scenarios)
	} else {
		results = defaultMeasures(*scale, *seed, *reps)
	}

	now := time.Now()
	tr := &Trajectory{
		Date:    now.Format("2006-01-02"),
		Go:      runtime.Version(),
		Scale:   *scale,
		Seed:    *seed,
		Results: results,
	}
	path := *out
	if path == "" {
		path = fmt.Sprintf("BENCH_%s.json", tr.Date)
	}
	enc, err := json.MarshalIndent(tr, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(path, append(enc, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
	for _, r := range results {
		line := fmt.Sprintf("%-14s", r.Name)
		if r.NsOp > 0 {
			line += fmt.Sprintf("  %12d ns/op", r.NsOp)
		}
		if r.MBPerS > 0 {
			line += fmt.Sprintf("  %8.2f MB/s", r.MBPerS)
		}
		if r.RecordsPerS > 0 {
			line += fmt.Sprintf("  %10.0f records/s", r.RecordsPerS)
		}
		if r.Bytes > 0 {
			line += fmt.Sprintf("  %9d bytes", r.Bytes)
		}
		if r.PeakHeapMB > 0 {
			line += fmt.Sprintf("  %7.1f peak-heap-MB", r.PeakHeapMB)
		}
		if r.ShippedBytes > 0 || strings.HasPrefix(r.Name, "remote/") {
			line += fmt.Sprintf("  %9d shipped-bytes", r.ShippedBytes)
		}
		if r.Steals > 0 {
			line += fmt.Sprintf("  %d steals", r.Steals)
		}
		if r.Speculations > 0 {
			line += fmt.Sprintf("  %d speculations (%d won)", r.Speculations, r.SpecWins)
		}
		if r.CacheHits > 0 {
			line += fmt.Sprintf("  %d cache-hits", r.CacheHits)
		}
		if r.BacklogHighWater > 0 {
			line += fmt.Sprintf("  %d backlog-high-water", r.BacklogHighWater)
		}
		fmt.Println(line)
	}
	log.Printf("wrote %s", path)
	if *baseline != "" {
		if err := checkBaseline(*baseline, results); err != nil {
			log.Fatal(err)
		}
	}
}

// checkBaseline gates the run against a prior trajectory file: every
// decode/ingest throughput present in both runs must be at least 80%
// of the baseline's. The trajectory point is already written when the
// gate fires, so CI still uploads the regressed measurement. Measures
// only one side has (new formats, renamed points) are skipped — the
// gate compares history, it does not pin the suite's shape.
func checkBaseline(path string, results []Result) error {
	enc, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	var base Trajectory
	if err := json.Unmarshal(enc, &base); err != nil {
		return fmt.Errorf("baseline %s: %w", path, err)
	}
	prior := make(map[string]Result, len(base.Results))
	for _, r := range base.Results {
		prior[r.Name] = r
	}
	const floor = 0.8
	var regressed []string
	check := func(name, metric string, cur, was float64) {
		if cur <= 0 || was <= 0 {
			return
		}
		verdict := "ok"
		if cur < was*floor {
			verdict = "REGRESSED"
			regressed = append(regressed, fmt.Sprintf("%s %s %.0f -> %.0f (%.0f%%)", name, metric, was, cur, 100*cur/was))
		}
		log.Printf("baseline %-14s %-13s %12.0f -> %12.0f  %s", name, metric, was, cur, verdict)
	}
	for _, r := range results {
		p, ok := prior[r.Name]
		if !ok {
			continue
		}
		check(r.Name, "mb_per_s", r.MBPerS, p.MBPerS)
		check(r.Name, "records_per_s", r.RecordsPerS, p.RecordsPerS)
	}
	if len(regressed) > 0 {
		return fmt.Errorf("throughput regressed >%.0f%% vs %s:\n  %s",
			100*(1-floor), path, strings.Join(regressed, "\n  "))
	}
	return nil
}

// defaultMeasures runs the disk and wire suite — decode, ingest,
// ship-bytes at each format version, then the elastic-scheduler
// regimes — over one generated corpus.
func defaultMeasures(scaleN int, seedN int64, repsN int) []Result {
	ds := synth.Generate(synth.Config{Scale: scaleN, Seed: seedN})
	parts, m := core.Split(ds, 1)
	records := ds.Counts().Total()
	info := m.Partitions[0]

	tmp, err := os.MkdirTemp("", "bskybench")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(tmp)

	var results []Result
	for version := 1; version <= core.DiskFormatVersion; version++ {
		dir := filepath.Join(tmp, fmt.Sprintf("v%d", version))
		if err := core.WriteCorpusVersion(dir, parts, m, version); err != nil {
			log.Fatal(err)
		}
		data, err := os.ReadFile(filepath.Join(dir, core.PartitionFileName(0)))
		if err != nil {
			log.Fatal(err)
		}
		mb := float64(len(data)) / (1 << 20)

		nsOp, peak := measure(repsN, func() { drain(data, records) })
		results = append(results, Result{
			Name:       fmt.Sprintf("decode/v%d", version),
			NsOp:       nsOp,
			MBPerS:     mb / (float64(nsOp) / 1e9),
			Bytes:      len(data),
			PeakHeapMB: peak,
		})

		nsOp, peak = measure(repsN, func() { ingest(data, info, records) })
		results = append(results, Result{
			Name:        fmt.Sprintf("ingest/v%d", version),
			NsOp:        nsOp,
			RecordsPerS: float64(records) / (float64(nsOp) / 1e9),
			Bytes:       len(data),
			PeakHeapMB:  peak,
		})

		// The shipped form is the partition file after the scheduler's
		// ship-time compression pass — a no-op below v3, per-frame LZ
		// above — so its size is the per-partition wire cost.
		shipped, err := core.CompressPartitionBlocks(data)
		if err != nil {
			log.Fatal(err)
		}
		results = append(results, Result{
			Name:  fmt.Sprintf("ship-bytes/v%d", version),
			Bytes: len(shipped),
		})
	}

	return append(results, remoteMeasures(ds, tmp)...)
}

// scenarioMeasures runs each named stress scenario end to end under
// the heap sampler and turns it into one trajectory point. Any
// infrastructure error or failed scenario assertion is fatal — the
// measure doubles as CI's scenario smoke gate. Scenario runs are
// single-shot (not best-of-R): each run regenerates and replays its
// whole corpus, so the wall time is workload-dominated.
func scenarioMeasures(spec string) []Result {
	var list []*scenario.Scenario
	if spec == "all" {
		list = scenario.All()
	} else {
		for _, name := range strings.Split(spec, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			s, ok := scenario.Get(name)
			if !ok {
				log.Fatalf("unknown scenario %q (known: %v)", name, scenario.Names())
			}
			list = append(list, s)
		}
	}
	if len(list) == 0 {
		log.Fatal("-scenario matched no scenarios")
	}
	var results []Result
	for _, s := range list {
		var r *scenario.Result
		var runErr error
		peak, wall := peakHeapDuring(func() { r, runErr = scenario.Run(s, 0) })
		if runErr != nil {
			log.Fatalf("scenario %s: %v", s.Name, runErr)
		}
		if err := s.Assert(r); err != nil {
			log.Fatalf("scenario %s: assertion FAILED: %v", s.Name, err)
		}
		results = append(results, Result{
			Name:             "scenario/" + s.Name,
			NsOp:             wall.Nanoseconds(),
			RecordsPerS:      float64(r.Records()) / wall.Seconds(),
			PeakHeapMB:       peak,
			BacklogHighWater: r.BacklogHighWater,
		})
	}
	return results
}

// remoteMeasures runs the elastic scheduler (DESIGN.md §12) over a
// four-partition spill of the corpus and records one trajectory point
// per scheduling regime:
//
//	remote/cold            ship-blocks run against empty worker caches
//	remote/warm-cache      identical re-run over the same workers; the
//	                       content-addressed caches should absorb ~all
//	                       payload bytes (target: <1% of cold)
//	remote/straggler       one worker 10× slower than the cold run;
//	                       speculation re-executes its stuck units
//	remote/straggler-nospec  the same straggler with speculation off —
//	                       the contrast shows what speculation saves
//
// Remote measures run once (not best-of-R): the warm point depends on
// cache state the cold point creates, and the straggler points are
// dominated by an injected delay, not scheduler jitter.
func remoteMeasures(ds *core.Dataset, tmp string) []Result {
	dir := filepath.Join(tmp, "remote")
	parts, m := core.Split(ds, 4)
	if err := core.WriteCorpus(dir, parts, m); err != nil {
		log.Fatal(err)
	}
	c, err := core.OpenCorpus(dir)
	if err != nil {
		log.Fatal(err)
	}

	newCache := func() *sched.BlockCache {
		bc, err := sched.NewBlockCache("", 0)
		if err != nil {
			log.Fatal(err)
		}
		return bc
	}
	pool := []sched.Worker{
		&sched.Loopback{Server: &sched.Server{Cache: newCache()}, Label: "w0"},
		&sched.Loopback{Server: &sched.Server{Cache: newCache()}, Label: "w1"},
	}
	run := func(name string, s *sched.Scheduler) (Result, time.Duration) {
		s.ShipBlocks = true
		start := time.Now()
		if _, err := s.RunAll(0); err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		wall := time.Since(start)
		return Result{
			Name:         name,
			NsOp:         wall.Nanoseconds(),
			ShippedBytes: s.Stats.ShippedBytes.Load(),
			Steals:       s.Stats.Steals.Load(),
			Speculations: s.Stats.Speculations.Load(),
			SpecWins:     s.Stats.SpecWins.Load(),
			CacheHits:    s.Stats.CacheHits.Load(),
		}, wall
	}

	cold, coldWall := run("remote/cold", sched.New(c, pool...))
	warm, _ := run("remote/warm-cache", sched.New(c, pool...))
	if cold.ShippedBytes > 0 && warm.ShippedBytes*100 >= cold.ShippedBytes {
		log.Printf("WARNING: warm-cache run shipped %d of %d cold bytes (>= 1%%)", warm.ShippedBytes, cold.ShippedBytes)
	}

	// A straggler 10× slower than the whole cold run, bounded so the
	// no-speculation contrast point stays affordable.
	delay := min(max(10*coldWall, 500*time.Millisecond), 3*time.Second)
	newStragglerPool := func() []sched.Worker {
		return []sched.Worker{
			&sched.Loopback{Server: &sched.Server{}, Label: "w0"},
			&slowWorker{Loopback: &sched.Loopback{Server: &sched.Server{}, Label: "w1-slow"}, delay: delay},
		}
	}
	spec, _ := run("remote/straggler", sched.New(c, newStragglerPool()...))
	nos := sched.New(c, newStragglerPool()...)
	nos.NoSpeculate = true
	nospec, _ := run("remote/straggler-nospec", nos)

	return []Result{cold, warm, spec, nospec}
}

// slowWorker delays every evaluation — the injected straggler. The
// sleep honors cancellation so a superseded speculative duplicate
// releases the scheduler's drain immediately, as a real transport
// would when the losing RPC is torn down.
type slowWorker struct {
	*sched.Loopback
	delay time.Duration
}

func (w *slowWorker) Eval(ctx context.Context, body []byte) ([]byte, error) {
	select {
	case <-time.After(w.delay):
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	return w.Loopback.Eval(ctx, body)
}

// drain decodes every block of one partition's framed bytes and
// cross-checks the record count — the raw decode path, no analysis.
func drain(data []byte, want int) {
	pr, err := core.NewPartitionReader(bytes.NewReader(data))
	if err != nil {
		log.Fatal(err)
	}
	got := 0
	for {
		blk, err := pr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			log.Fatal(err)
		}
		got += len(blk.Users) + len(blk.Posts) + len(blk.Days) +
			len(blk.Labels) + len(blk.FeedGens) + len(blk.Domains) + len(blk.HandleUpdates)
	}
	if got != want {
		log.Fatalf("decoded %d records, want %d", got, want)
	}
}

// ingest runs the full engine's level-one traversal over the framed
// bytes — decode plus accumulation, the collector's steady state.
func ingest(data []byte, info core.PartitionInfo, want int) {
	src := &analysis.ReaderSource{
		Open: func() (*core.PartitionReader, error) {
			return core.NewPartitionReader(bytes.NewReader(data))
		},
		Base:    info.Base,
		Records: &info.Records,
		Name:    "bskybench blocks",
	}
	world, _, _, err := analysis.NewFullEngine().RunLevelOne(src)
	if err != nil {
		log.Fatal(err)
	}
	if got := world.Counts().Total(); got != want {
		log.Fatalf("ingested %d records, want %d", got, want)
	}
}

// measure runs fn reps times and returns the best wall time plus the
// largest peak heap growth observed across repetitions.
func measure(reps int, fn func()) (nsOp int64, peakMB float64) {
	best := int64(math.MaxInt64)
	for i := 0; i < reps; i++ {
		p, d := peakHeapDuring(fn)
		best = min(best, d.Nanoseconds())
		peakMB = max(peakMB, p)
	}
	return best, peakMB
}

// peakHeapDuring GCs to a baseline, times fn under a HeapAlloc
// sampler, and returns the peak growth over the baseline in MB plus
// the wall time — the same residency-ceiling measure the repo's
// disk benchmarks report.
func peakHeapDuring(fn func()) (float64, time.Duration) {
	runtime.GC()
	var base runtime.MemStats
	runtime.ReadMemStats(&base)
	var peak atomic.Uint64
	peak.Store(base.HeapAlloc)
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		var ms runtime.MemStats
		for {
			select {
			case <-stop:
				return
			case <-time.After(2 * time.Millisecond):
				runtime.ReadMemStats(&ms)
				for {
					old := peak.Load()
					if ms.HeapAlloc <= old || peak.CompareAndSwap(old, ms.HeapAlloc) {
						break
					}
				}
			}
		}
	}()
	start := time.Now()
	fn()
	elapsed := time.Since(start)
	close(stop)
	<-done
	return float64(peak.Load()-base.HeapAlloc) / (1 << 20), elapsed
}
