// bskysim boots a complete Bluesky deployment on loopback — PLC
// directory, DNS, WHOIS, PDSes, Relay with Firehose, AppView — seeds
// it with a small population, and prints the endpoints so other tools
// (bskycrawl, firehose) can be pointed at it.
//
// With -spill DIR it instead runs in output mode: no network boots;
// a calibrated synthetic corpus (-scale/-seed, -partitions shards on
// disjoint RNG sub-streams) is generated straight into a disk-backed
// partition store at DIR, one resident partition per worker, ready for
// `bskyanalyze -corpus DIR` to evaluate out of core.
//
// -spill DIR -scenario NAME spills a registered stress scenario's
// transformed corpus instead (internal/scenario): the scenario's own
// seeded config and deterministic transform, split into its partition
// count — the workload generator for scheduler and bench runs.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"time"

	"blueskies/internal/core"
	"blueskies/internal/identity"
	"blueskies/internal/lexicon"
	"blueskies/internal/netsim"
	"blueskies/internal/scenario"
	"blueskies/internal/synth"
)

// seedPost builds the deterministic record for user i's post j,
// stamped from the seeded clock — never from the wall clock, so a
// -seed run commits byte-identical records on every invocation
// (TestSeededRecordsDeterministic).
func seedPost(handle identity.Handle, j int, clock func() time.Time) map[string]any {
	return lexicon.NewPost(fmt.Sprintf("post %d from %s", j, handle), []string{"en"}, clock())
}

func main() {
	pdsCount := flag.Int("pds", 2, "number of PDSes")
	users := flag.Int("users", 10, "seed accounts")
	posts := flag.Int("posts", 5, "posts per account")
	spill := flag.String("spill", "", "output mode: write a synthetic corpus to this directory as a partition store and exit (no network)")
	scale := flag.Int("scale", 1000, "corpus downscaling factor in -spill mode")
	seed := flag.Int64("seed", 2024, "generation seed (-spill corpus bytes and network-mode record timestamps)")
	partitions := flag.Int("partitions", 4, "partition count in -spill mode")
	scenarioName := flag.String("scenario", "", "with -spill: write a registered stress scenario's transformed corpus instead of a plain synth corpus")
	flag.Parse()

	if *scenarioName != "" && *spill == "" {
		log.Fatal("-scenario spills a scenario corpus; combine it with -spill DIR")
	}
	if *spill != "" {
		var m *core.Manifest
		var err error
		if *scenarioName != "" {
			s, ok := scenario.Get(*scenarioName)
			if !ok {
				log.Fatalf("unknown scenario %q (known: %v)", *scenarioName, scenario.Names())
			}
			m, err = s.Spill(*spill)
		} else {
			m, err = synth.GeneratePartitionedTo(synth.Config{Scale: *scale, Seed: *seed}, *partitions, *spill, 0)
		}
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(m.Plan())
		fmt.Printf("spilled %d partition(s) to %s\n", len(m.Partitions), *spill)
		fmt.Printf("evaluate out of core with: bskyanalyze -corpus %s\n", *spill)
		return
	}

	net, err := netsim.Start(netsim.Config{PDSCount: *pdsCount})
	if err != nil {
		log.Fatal(err)
	}
	defer net.Close()

	clock := synth.SeededClock(*seed)
	for i := 0; i < *users; i++ {
		handle := identity.Handle(fmt.Sprintf("user%03d.bsky.social", i))
		acct, err := net.CreateUser(i, handle)
		if err != nil {
			log.Fatal(err)
		}
		for j := 0; j < *posts; j++ {
			if _, err := net.PDSes[i%*pdsCount].CreateRecord(acct.DID, lexicon.Post, "",
				seedPost(handle, j, clock)); err != nil {
				log.Fatal(err)
			}
		}
	}

	fmt.Println("bskysim running:")
	fmt.Println("  PLC directory :", net.PLC.URL())
	fmt.Println("  DNS           :", net.DNS.Addr())
	fmt.Println("  WHOIS         :", net.Whois.Addr())
	for i, p := range net.PDSes {
		fmt.Printf("  PDS %d         : %s\n", i, p.URL())
	}
	fmt.Println("  Relay         :", net.Relay.URL())
	fmt.Println("  Firehose      :", net.Relay.FirehoseURL())
	fmt.Println("  AppView       :", net.AppView.URL())
	fmt.Println("Ctrl-C to stop.")

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
}
