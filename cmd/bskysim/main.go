// bskysim boots a complete Bluesky deployment on loopback — PLC
// directory, DNS, WHOIS, PDSes, Relay with Firehose, AppView — seeds
// it with a small population, and prints the endpoints so other tools
// (bskycrawl, firehose) can be pointed at it.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"time"

	"blueskies/internal/identity"
	"blueskies/internal/lexicon"
	"blueskies/internal/netsim"
)

func main() {
	pdsCount := flag.Int("pds", 2, "number of PDSes")
	users := flag.Int("users", 10, "seed accounts")
	posts := flag.Int("posts", 5, "posts per account")
	flag.Parse()

	net, err := netsim.Start(netsim.Config{PDSCount: *pdsCount})
	if err != nil {
		log.Fatal(err)
	}
	defer net.Close()

	for i := 0; i < *users; i++ {
		handle := identity.Handle(fmt.Sprintf("user%03d.bsky.social", i))
		acct, err := net.CreateUser(i, handle)
		if err != nil {
			log.Fatal(err)
		}
		for j := 0; j < *posts; j++ {
			if _, err := net.PDSes[i%*pdsCount].CreateRecord(acct.DID, lexicon.Post, "",
				lexicon.NewPost(fmt.Sprintf("post %d from %s", j, handle), []string{"en"}, time.Now())); err != nil {
				log.Fatal(err)
			}
		}
	}

	fmt.Println("bskysim running:")
	fmt.Println("  PLC directory :", net.PLC.URL())
	fmt.Println("  DNS           :", net.DNS.Addr())
	fmt.Println("  WHOIS         :", net.Whois.Addr())
	for i, p := range net.PDSes {
		fmt.Printf("  PDS %d         : %s\n", i, p.URL())
	}
	fmt.Println("  Relay         :", net.Relay.URL())
	fmt.Println("  Firehose      :", net.Relay.FirehoseURL())
	fmt.Println("  AppView       :", net.AppView.URL())
	fmt.Println("Ctrl-C to stop.")

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
}
