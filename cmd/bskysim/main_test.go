package main

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"blueskies/internal/cbor"
	"blueskies/internal/identity"
	"blueskies/internal/synth"
)

// seededRecords materializes the exact record bytes a bskysim run
// with the given seed commits to its PDSes.
func seededRecords(users, posts int, seed int64) []byte {
	clock := synth.SeededClock(seed)
	var buf bytes.Buffer
	for i := 0; i < users; i++ {
		handle := identity.Handle(fmt.Sprintf("user%03d.bsky.social", i))
		for j := 0; j < posts; j++ {
			buf.Write(cbor.MustMarshal(seedPost(handle, j, clock)))
		}
	}
	return buf.Bytes()
}

// TestSeededRecordsDeterministic is the regression test for the
// time.Now determinism bug: two runs with the same -seed must commit
// byte-identical records, and the seed must actually reach the
// timestamps (different seeds → different bytes).
func TestSeededRecordsDeterministic(t *testing.T) {
	a := seededRecords(3, 4, 2024)
	b := seededRecords(3, 4, 2024)
	if !bytes.Equal(a, b) {
		t.Fatal("same seed produced different record bytes")
	}
	if bytes.Equal(a, seededRecords(3, 4, 2025)) {
		t.Fatal("different seeds produced identical record bytes: the seed does not reach the record clock")
	}
}

// TestSeededClockInWindow pins the clock contract: readings are
// deterministic, strictly advancing, and inside the paper's
// collection window.
func TestSeededClockInWindow(t *testing.T) {
	clock := synth.SeededClock(7)
	prev := time.Time{}
	for i := 0; i < 10; i++ {
		now := clock()
		if now.Before(synth.WindowStart) || !now.Before(synth.WindowEnd.Add(24*time.Hour)) {
			t.Fatalf("reading %d = %v outside the collection window", i, now)
		}
		if !now.After(prev) {
			t.Fatalf("reading %d = %v did not advance past %v", i, now, prev)
		}
		prev = now
	}
}

// TestSpillModeDeterministic pins the -spill path end to end: two
// spills with the same seed produce byte-identical partition stores
// (every block file and the manifest).
func TestSpillModeDeterministic(t *testing.T) {
	cfg := synth.Config{Scale: 50000, Seed: 2024}
	dirA, dirB := t.TempDir(), t.TempDir()
	if _, err := synth.GeneratePartitionedTo(cfg, 2, dirA, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := synth.GeneratePartitionedTo(cfg, 2, dirB, 0); err != nil {
		t.Fatal(err)
	}
	entriesA, err := os.ReadDir(dirA)
	if err != nil {
		t.Fatal(err)
	}
	if len(entriesA) == 0 {
		t.Fatal("spill produced no files")
	}
	for _, e := range entriesA {
		a, err := os.ReadFile(filepath.Join(dirA, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(filepath.Join(dirB, e.Name()))
		if err != nil {
			t.Fatalf("second spill missing %s: %v", e.Name(), err)
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("same seed spilled different bytes for %s", e.Name())
		}
	}
}
