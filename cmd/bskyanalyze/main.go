// bskyanalyze regenerates every table and figure of the paper from a
// calibrated synthetic dataset.
//
// Usage:
//
//	bskyanalyze [-scale N] [-seed S] [-only T1,F12] [-parallel] [-workers N]
//	bskyanalyze -follow [-snapshot-every N]
//
// By default the evaluation runs through the single-pass engine
// (analysis.RunAll), which shards the dataset traversal across
// -workers workers (0 = autotuned from record counts) and streams
// every record through all report accumulators at once.
// -parallel=false falls back to the legacy one-pass-per-report path;
// both render byte-identical output.
//
// -follow exercises the streaming path instead: the generated corpus
// is replayed through in-process firehose + labeler sequencers, the
// engine consumes the multiplexed record stream without ever holding
// the materialized dataset, and refreshed tables print as snapshots
// arrive. The final snapshot is byte-identical to the batch output.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"blueskies/internal/analysis"
	"blueskies/internal/core"
	"blueskies/internal/events"
	"blueskies/internal/synth"
)

func main() {
	scale := flag.Int("scale", 1000, "downscaling factor vs. the paper's dataset")
	seed := flag.Int64("seed", 2024, "generation seed")
	only := flag.String("only", "", "comma-separated report IDs (e.g. T1,F12); empty = all")
	parallel := flag.Bool("parallel", true, "evaluate in one sharded pass instead of per-report scans")
	workers := flag.Int("workers", 0, "traversal workers (0 = autotuned)")
	follow := flag.Bool("follow", false, "consume the corpus as a live record stream and print refreshed tables as snapshots arrive")
	snapEvery := flag.Int("snapshot-every", 100_000, "records between streaming snapshots in -follow mode")
	flag.Parse()

	ds := synth.Generate(synth.Config{Scale: *scale, Seed: *seed})
	want := map[string]bool{}
	for _, id := range strings.Split(*only, ",") {
		if id = strings.TrimSpace(strings.ToUpper(id)); id != "" {
			want[id] = true
		}
	}
	print := func(reports []*analysis.Report) {
		for _, r := range reports {
			if len(want) > 0 && !want[r.ID] {
				continue
			}
			fmt.Println(r.String())
		}
	}

	if *follow {
		if err := runFollow(ds, *workers, *snapEvery, print); err != nil {
			fmt.Fprintln(os.Stderr, "bskyanalyze:", err)
			os.Exit(1)
		}
		return
	}

	var reports []*analysis.Report
	if *parallel {
		reports = analysis.RunAll(ds, *workers)
	} else {
		reports = analysis.AllReports(ds)
	}
	print(reports)
}

// runFollow replays the corpus through the event-stream stack and
// drives the engine from the live block channel. Replay and
// consumption run concurrently over draining sequencers, so the frame
// backlog holds only the consumer's lag — never a second full copy of
// the corpus.
func runFollow(ds *core.Dataset, workers, snapEvery int, print func([]*analysis.Report)) error {
	fire := events.NewSequencer(0, 0)
	labeler := events.NewSequencer(0, 0)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	blocks, errs := core.DrainSequencers(ctx, fire, labeler)
	replayErr := make(chan error, 1)
	go func() { replayErr <- synth.Replay(ds, fire, labeler, 0) }()
	src := &analysis.StreamSource{
		Blocks:        blocks,
		SnapshotEvery: snapEvery,
		OnSnapshot: func(records int, reports []*analysis.Report) {
			fmt.Printf("==== snapshot after %d records ====\n\n", records)
			print(analysis.Canonicalize(reports))
		},
	}
	reports, err := analysis.NewFullEngine().Workers(workers).RunSource(src)
	if err != nil {
		return err
	}
	if err := <-replayErr; err != nil {
		return err
	}
	for err := range errs {
		if err != nil {
			return err
		}
	}
	fmt.Println("==== final (end of stream) ====")
	fmt.Println()
	print(analysis.Canonicalize(reports))
	return nil
}
