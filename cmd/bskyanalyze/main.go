// bskyanalyze regenerates every table and figure of the paper from a
// calibrated synthetic dataset.
//
// Usage:
//
//	bskyanalyze [-scale N] [-seed S] [-only T1,F12]
package main

import (
	"flag"
	"fmt"
	"strings"

	"blueskies/internal/analysis"
	"blueskies/internal/synth"
)

func main() {
	scale := flag.Int("scale", 1000, "downscaling factor vs. the paper's dataset")
	seed := flag.Int64("seed", 2024, "generation seed")
	only := flag.String("only", "", "comma-separated report IDs (e.g. T1,F12); empty = all")
	flag.Parse()

	ds := synth.Generate(synth.Config{Scale: *scale, Seed: *seed})
	want := map[string]bool{}
	for _, id := range strings.Split(*only, ",") {
		if id = strings.TrimSpace(strings.ToUpper(id)); id != "" {
			want[id] = true
		}
	}
	for _, r := range analysis.AllReports(ds) {
		if len(want) > 0 && !want[r.ID] {
			continue
		}
		fmt.Println(r.String())
	}
}
