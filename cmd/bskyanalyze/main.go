// bskyanalyze regenerates every table and figure of the paper from a
// calibrated synthetic dataset.
//
// Usage:
//
//	bskyanalyze [-scale N] [-seed S] [-only T1,F12] [-parallel] [-workers N]
//
// By default the evaluation runs through the single-pass engine
// (analysis.RunAll), which shards the dataset traversal across
// -workers workers (0 = GOMAXPROCS) and streams every record through
// all report accumulators at once. -parallel=false falls back to the
// legacy one-pass-per-report path; both render byte-identical output.
package main

import (
	"flag"
	"fmt"
	"strings"

	"blueskies/internal/analysis"
	"blueskies/internal/synth"
)

func main() {
	scale := flag.Int("scale", 1000, "downscaling factor vs. the paper's dataset")
	seed := flag.Int64("seed", 2024, "generation seed")
	only := flag.String("only", "", "comma-separated report IDs (e.g. T1,F12); empty = all")
	parallel := flag.Bool("parallel", true, "evaluate in one sharded pass instead of per-report scans")
	workers := flag.Int("workers", 0, "traversal workers for -parallel (0 = GOMAXPROCS)")
	flag.Parse()

	ds := synth.Generate(synth.Config{Scale: *scale, Seed: *seed})
	want := map[string]bool{}
	for _, id := range strings.Split(*only, ",") {
		if id = strings.TrimSpace(strings.ToUpper(id)); id != "" {
			want[id] = true
		}
	}
	var reports []*analysis.Report
	if *parallel {
		reports = analysis.RunAll(ds, *workers)
	} else {
		reports = analysis.AllReports(ds)
	}
	for _, r := range reports {
		if len(want) > 0 && !want[r.ID] {
			continue
		}
		fmt.Println(r.String())
	}
}
