// bskyanalyze regenerates every table and figure of the paper from a
// calibrated synthetic dataset.
//
// Usage:
//
//	bskyanalyze [-scale N] [-seed S] [-only T1,F12] [-parallel] [-workers N]
//	bskyanalyze -partitions N [-partition-mode split|independent] [-plan]
//	bskyanalyze -input seed=1,scale=1000 -input seed=2,scale=1000 ...
//	bskyanalyze -follow [-snapshot-every N] [-partitions N]
//	bskyanalyze -spill DIR [-partitions N] [-partition-mode M]
//	bskyanalyze -corpus DIR [-plan] [-only T1] [-workers N]
//	bskyanalyze -corpus DIR -workers-at host:port,... [-ship-blocks]
//	bskyanalyze -corpus DIR -workers-at loopback[:N]
//	bskyanalyze -scenario NAME | -scenario list
//
// By default the evaluation runs through the single-pass engine
// (analysis.RunAll), which shards the dataset traversal across
// -workers workers (0 = autotuned from record counts) and streams
// every record through all report accumulators at once.
// -parallel=false falls back to the legacy one-pass-per-report path;
// both render byte-identical output.
//
// -partitions N evaluates the corpus as N partitions through the
// two-level merge: per-partition sharded traversals, then a
// cross-partition fold of intern tables and shard state. In the
// default split mode the partitions are row-range views of one
// generated corpus and the output is byte-identical to the unsplit
// run; in independent mode the partitions are generated on disjoint
// RNG sub-streams (synth.GeneratePartitioned), one dataset per
// simulated repo-crawl shard. Repeatable -input flags instead evaluate
// several independently generated corpora (e.g. different seeds) as
// one federated corpus. -plan prints the partition-plan summary.
//
// -follow exercises the streaming path: the corpus is replayed through
// in-process firehose + labeler sequencer pairs — one pair per
// partition — the engine consumes the record streams without ever
// holding the materialized dataset, and refreshed tables print as
// merged stop-the-world snapshots arrive. The final snapshot is
// byte-identical to the batch output.
//
// -spill DIR writes the corpus the other flags describe to DIR as a
// disk-backed partition store (block files + manifest.json, DESIGN.md
// §8) instead of evaluating it; in independent mode the partitions
// spill as they are generated, so memory stays bounded by one resident
// partition per worker at any -partitions count. -corpus DIR evaluates
// a previously spilled store out of core: partitions stream from disk
// block by block through the two-level merge, byte-identical to the
// in-memory evaluation of the same corpus. -corpus honors -plan, -only,
// and -workers; generation flags are ignored.
//
// -workers-at HOSTS schedules the store's partitions onto remote
// bskyworker daemons (comma-separated host:port list): each partition's
// level-one merge runs on a worker, the serialized shard state ships
// back, and the level-two fold happens locally — byte-identical to the
// local -corpus run. -ship-blocks streams each partition's block frames
// inside the request (for workers that cannot reach the store path);
// otherwise workers open the store directory themselves. A worker that
// dies mid-run is retried on the others and, failing that, its
// partitions fall back to the local out-of-core traversal.
// "-workers-at loopback" (or loopback:N) runs N in-process workers
// through the full wire codec — the single-machine proof of the remote
// path.
//
// -scenario NAME runs one registered fault-injection scenario
// (internal/scenario) end-to-end — baseline evaluation, deterministic
// transform, faulted stream replay — judges its assertion (exit 1 on
// failure), and prints the transformed corpus's tables. -scenario list
// prints the registry.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"blueskies/internal/analysis"
	"blueskies/internal/core"
	"blueskies/internal/events"
	"blueskies/internal/scenario"
	"blueskies/internal/sched"
	"blueskies/internal/synth"
)

type inputSpec struct {
	seed     int64
	scale    int
	hasSeed  bool
	hasScale bool
}

func main() {
	scale := flag.Int("scale", 1000, "downscaling factor vs. the paper's dataset")
	seed := flag.Int64("seed", 2024, "generation seed")
	only := flag.String("only", "", "comma-separated report IDs (e.g. T1,F12); empty = all")
	parallel := flag.Bool("parallel", true, "evaluate in one sharded pass instead of per-report scans")
	workers := flag.Int("workers", 0, "traversal workers per partition (0 = autotuned)")
	follow := flag.Bool("follow", false, "consume the corpus as live record streams and print refreshed tables as snapshots arrive")
	snapEvery := flag.Int("snapshot-every", 100_000, "records between streaming snapshots in -follow mode")
	partitions := flag.Int("partitions", 1, "evaluate the corpus as N partitions through the two-level merge")
	partitionMode := flag.String("partition-mode", "split",
		"how -partitions produces partitions: 'split' (row-range views, byte-identical to the unsplit run) or 'independent' (disjoint RNG sub-streams, one dataset per simulated crawl)")
	plan := flag.Bool("plan", false, "print the partition-plan summary")
	spill := flag.String("spill", "", "write the corpus to this directory as a disk-backed partition store instead of evaluating it")
	corpus := flag.String("corpus", "", "evaluate a previously spilled partition store out of core (directory with manifest.json)")
	workersAt := flag.String("workers-at", "", "schedule -corpus partitions onto bskyworker daemons (comma-separated host:port list, or 'loopback[:N]' for in-process workers)")
	shipBlocks := flag.Bool("ship-blocks", false, "stream partition block frames to remote workers instead of sending a store reference")
	noSpeculate := flag.Bool("no-speculate", false, "disable speculative re-execution of straggling partitions on idle workers")
	splitFactor := flag.Float64("split-factor", 0, "split partitions whose record count exceeds this multiple of the median into sub-ranges (0 = default 4.0, negative = never split)")
	scenarioName := flag.String("scenario", "", "run a named fault-injection scenario end-to-end and judge its assertion ('list' prints the registry)")
	var inputs []inputSpec
	flag.Func("input", "independent corpus spec 'seed=S[,scale=C]' (repeatable); evaluates all inputs as one federated corpus", func(s string) error {
		var spec inputSpec
		for _, kv := range strings.Split(s, ",") {
			k, v, ok := strings.Cut(strings.TrimSpace(kv), "=")
			if !ok {
				return fmt.Errorf("bad -input field %q (want key=value)", kv)
			}
			n, err := strconv.ParseInt(strings.TrimSpace(v), 10, 64)
			if err != nil {
				return fmt.Errorf("bad -input value %q: %w", kv, err)
			}
			switch strings.TrimSpace(k) {
			case "seed":
				spec.seed, spec.hasSeed = n, true
			case "scale":
				spec.scale, spec.hasScale = int(n), true
			default:
				return fmt.Errorf("unknown -input key %q", k)
			}
		}
		inputs = append(inputs, spec)
		return nil
	})
	flag.Parse()
	// Fill omitted -input fields from -seed/-scale only after the whole
	// command line has parsed: defaults must not depend on flag order.
	for i := range inputs {
		if !inputs[i].hasSeed {
			inputs[i].seed = *seed
		}
		if !inputs[i].hasScale {
			inputs[i].scale = *scale
		}
	}

	want := map[string]bool{}
	for _, id := range strings.Split(*only, ",") {
		if id = strings.TrimSpace(strings.ToUpper(id)); id != "" {
			want[id] = true
		}
	}
	print := func(reports []*analysis.Report) {
		for _, r := range reports {
			if len(want) > 0 && !want[r.ID] {
				continue
			}
			fmt.Println(r.String())
		}
	}

	if *scenarioName != "" {
		if err := runScenario(*scenarioName, *workers, print); err != nil {
			fatal(err)
		}
		return
	}
	if *spill != "" && *corpus != "" {
		fatal(fmt.Errorf("-spill and -corpus are mutually exclusive"))
	}
	if *follow && (*spill != "" || *corpus != "") {
		fatal(fmt.Errorf("-follow streams live sequencers; it does not combine with -spill/-corpus"))
	}
	if *workersAt != "" && *corpus == "" {
		fatal(fmt.Errorf("-workers-at schedules a spilled store; combine it with -corpus DIR"))
	}
	if *corpus != "" {
		opts := schedOpts{shipBlocks: *shipBlocks, noSpeculate: *noSpeculate, splitFactor: *splitFactor}
		if err := runCorpus(*corpus, *plan, *workers, *workersAt, opts, print); err != nil {
			fatal(err)
		}
		return
	}
	if *spill != "" {
		if err := runSpill(*spill, inputs, *partitions, *partitionMode, *scale, *seed, *workers); err != nil {
			fatal(err)
		}
		return
	}

	parts, manifest, err := buildCorpus(inputs, *partitions, *partitionMode, *scale, *seed)
	if err != nil {
		fatal(err)
	}
	partitioned := manifest != nil
	if *plan {
		// Planning query only: print the manifest summary and stop
		// before paying for any traversal.
		if manifest == nil {
			manifest = core.BuildManifest(parts, parts[0].Scale, *seed, true)
		}
		fmt.Print(manifest.Plan())
		return
	}
	if partitioned && len(manifest.Partitions) > 1 {
		fmt.Print(manifest.Plan())
		fmt.Println()
	}

	if *follow {
		if err := runFollow(parts, manifest, *workers, *snapEvery, print); err != nil {
			fatal(err)
		}
		return
	}

	var reports []*analysis.Report
	switch {
	case partitioned:
		if reports, err = analysis.RunAllPartitioned(parts, manifest, *workers); err != nil {
			fatal(err)
		}
	case *parallel:
		reports = analysis.RunAll(parts[0], *workers)
	default:
		reports = analysis.AllReports(parts[0])
	}
	print(reports)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bskyanalyze:", err)
	os.Exit(1)
}

// runScenario runs one registered fault-injection scenario end-to-end
// (baseline, transformed golden batch, faulted stream replay), judges
// its assertion, and prints the transformed corpus's tables. A failed
// assertion is a command failure — the smoke gate CI relies on.
func runScenario(name string, workers int, print func([]*analysis.Report)) error {
	if name == "list" {
		for _, s := range scenario.All() {
			fmt.Printf("%-16s %-14s %s\n", s.Name, s.Class, s.Description)
		}
		return nil
	}
	s, ok := scenario.Get(name)
	if !ok {
		return fmt.Errorf("unknown scenario %q (try -scenario list)", name)
	}
	fmt.Printf("scenario %s (%s): %s\n", s.Name, s.Class, s.Description)
	r, err := scenario.Run(s, workers)
	if err != nil {
		return err
	}
	fmt.Printf("replayed %d records in %d firehose + %d labeler frames; backlog high-water %d, final %d\n",
		r.Records(), r.FireFrames, r.LabelFrames, r.BacklogHighWater, r.FinalBacklog)
	if r.StreamErr != nil {
		fmt.Println("stream run failed loudly:", r.StreamErr)
	}
	if err := s.Assert(r); err != nil {
		return fmt.Errorf("assertion FAILED: %w", err)
	}
	fmt.Println("assertion passed")
	fmt.Println()
	print(r.Batch)
	return nil
}

// buildCorpus materializes the requested corpus. The manifest is nil
// for a plain single-dataset run (the unpartitioned fast path).
func buildCorpus(inputs []inputSpec, partitions int, mode string, scale int, seed int64) ([]*core.Dataset, *core.Manifest, error) {
	switch {
	case len(inputs) > 0:
		// Federated: independently generated corpora, partition-local
		// indexes, rebased at merge time. Scales must agree — scale
		// drives every scale-derived rendering (S4's title, the S9
		// bandwidth projection), which has no meaning for a mixed-scale
		// union.
		for _, spec := range inputs[1:] {
			if spec.scale != inputs[0].scale {
				return nil, nil, fmt.Errorf("federated inputs disagree on scale (%d vs %d); regenerate at one scale", inputs[0].scale, spec.scale)
			}
		}
		parts := make([]*core.Dataset, len(inputs))
		for i, spec := range inputs {
			parts[i] = synth.Generate(synth.Config{Scale: spec.scale, Seed: spec.seed})
		}
		m := core.BuildManifest(parts, inputs[0].scale, inputs[0].seed, false)
		for i, spec := range inputs {
			m.Partitions[i].Seed = spec.seed
		}
		return parts, m, nil
	case partitions > 1 && mode == "independent":
		parts, m := synth.GeneratePartitioned(synth.Config{Scale: scale, Seed: seed}, partitions)
		return parts, m, nil
	case partitions > 1 && mode == "split":
		parts, m := core.Split(synth.Generate(synth.Config{Scale: scale, Seed: seed}), partitions)
		m.Seed = seed
		return parts, m, nil
	case partitions > 1:
		return nil, nil, fmt.Errorf("unknown -partition-mode %q (want split or independent)", mode)
	default:
		return []*core.Dataset{synth.Generate(synth.Config{Scale: scale, Seed: seed})}, nil, nil
	}
}

// runSpill writes the corpus the generation flags describe to dir as a
// disk-backed partition store. Independent partitions spill as they
// are generated (bounded memory: one resident partition per worker);
// split views and federated inputs materialize first — a split is a
// view of one monolith by construction.
func runSpill(dir string, inputs []inputSpec, partitions int, mode string, scale int, seed int64, workers int) error {
	var m *core.Manifest
	// Same gate as buildCorpus: partitions == 1 means the plain
	// monolith regardless of mode, so spilling and evaluating the same
	// flags always describe the same corpus.
	if len(inputs) == 0 && partitions > 1 && mode == "independent" {
		var err error
		if m, err = synth.GeneratePartitionedTo(synth.Config{Scale: scale, Seed: seed}, partitions, dir, workers); err != nil {
			return err
		}
	} else {
		parts, manifest, err := buildCorpus(inputs, partitions, mode, scale, seed)
		if err != nil {
			return err
		}
		if manifest == nil {
			manifest = core.BuildManifest(parts, parts[0].Scale, seed, true)
		}
		if err := core.WriteCorpus(dir, parts, manifest); err != nil {
			return err
		}
		m = manifest
	}
	fmt.Print(m.Plan())
	fmt.Printf("spilled %d partition(s) to %s\n", len(m.Partitions), dir)
	return nil
}

// runCorpus evaluates a previously spilled partition store out of
// core: every partition streams from disk block by block through the
// two-level merge, byte-identical to the in-memory evaluation. With
// workersAt set, the partitions are placed on evaluation workers
// instead (level-one merges run remotely, shard state folds locally) —
// same output, by the remote-parity contract.
// schedOpts carries the elastic-scheduler knobs from the command line.
type schedOpts struct {
	shipBlocks  bool
	noSpeculate bool
	splitFactor float64
}

func runCorpus(dir string, plan bool, workers int, workersAt string, opts schedOpts, print func([]*analysis.Report)) error {
	c, err := core.OpenCorpus(dir)
	if err != nil {
		return err
	}
	if plan {
		fmt.Print(c.Manifest.Plan())
		return nil
	}
	if len(c.Manifest.Partitions) > 1 {
		fmt.Print(c.Manifest.Plan())
		fmt.Println()
	}
	var reports []*analysis.Report
	if workersAt != "" {
		pool, err := buildWorkers(workersAt)
		if err != nil {
			return err
		}
		s := sched.New(c, pool...)
		s.ShipBlocks = opts.shipBlocks
		s.NoSpeculate = opts.noSpeculate
		s.SplitFactor = opts.splitFactor
		reports, err = s.RunAll(workers)
		if err != nil {
			return err
		}
		fmt.Fprintln(os.Stderr, "sched:", s.Stats.Summary())
	} else if reports, err = analysis.RunAllDisk(c, workers); err != nil {
		return err
	}
	print(reports)
	return nil
}

// buildWorkers parses -workers-at: "loopback[:N]" spawns N in-process
// workers (default 2) running the full wire codec; anything else is a
// comma-separated list of bskyworker addresses.
func buildWorkers(spec string) ([]sched.Worker, error) {
	if rest, ok := strings.CutPrefix(spec, "loopback"); ok {
		n := 2
		if cnt, ok := strings.CutPrefix(rest, ":"); ok {
			v, err := strconv.Atoi(cnt)
			if err != nil || v < 1 {
				return nil, fmt.Errorf("bad -workers-at %q (want loopback[:N])", spec)
			}
			n = v
		} else if rest != "" {
			return nil, fmt.Errorf("bad -workers-at %q (want loopback[:N] or host:port,...)", spec)
		}
		pool := make([]sched.Worker, 0, n)
		for i := 0; i < n; i++ {
			pool = append(pool, &sched.Loopback{Server: &sched.Server{}, Label: fmt.Sprintf("loopback-%d", i)})
		}
		return pool, nil
	}
	var pool []sched.Worker
	for _, addr := range strings.Split(spec, ",") {
		if addr = strings.TrimSpace(addr); addr != "" {
			pool = append(pool, sched.Dial(addr))
		}
	}
	if len(pool) == 0 {
		return nil, fmt.Errorf("-workers-at %q names no workers", spec)
	}
	return pool, nil
}

// runFollow replays every partition through its own firehose + labeler
// sequencer pair and drives the engine from the live block channels.
// Replays and consumption run concurrently over draining sequencers,
// so each partition's frame backlog holds only its consumer's lag —
// never a second full copy of the corpus. With more than one partition
// the engine folds the per-partition stream states through the
// cross-partition merge, and snapshots are merged stop-the-world
// snapshots across all partitions.
func runFollow(parts []*core.Dataset, manifest *core.Manifest, workers, snapEvery int, print func([]*analysis.Report)) error {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if manifest == nil {
		manifest = core.BuildManifest(parts, parts[0].Scale, 0, true)
	}

	srcs := make([]analysis.Source, len(parts))
	errChans := make([]<-chan error, len(parts))
	replayErr := make(chan error, len(parts))
	for k, p := range parts {
		fire := events.NewSequencer(0, 0)
		labeler := events.NewSequencer(0, 0)
		blocks, errs := core.DrainSequencers(ctx, fire, labeler)
		go func(p *core.Dataset) { replayErr <- synth.Replay(p, fire, labeler, 0) }(p)
		srcs[k] = &analysis.StreamSource{Blocks: blocks, Base: manifest.Partitions[k].Base}
		errChans[k] = errs
	}
	src := &analysis.MultiSource{
		Sources:       srcs,
		Manifest:      manifest,
		SnapshotEvery: snapEvery,
		OnSnapshot: func(records int, reports []*analysis.Report) {
			fmt.Printf("==== snapshot after %d records ====\n\n", records)
			print(analysis.Canonicalize(reports))
		},
	}
	reports, err := analysis.NewFullEngine().Workers(workers).RunSource(src)
	if err != nil {
		return err
	}
	for range parts {
		if err := <-replayErr; err != nil {
			return err
		}
	}
	for _, errs := range errChans {
		for err := range errs {
			if err != nil {
				return err
			}
		}
	}
	fmt.Println("==== final (end of stream) ====")
	fmt.Println()
	print(analysis.Canonicalize(reports))
	return nil
}
