// bskyworker serves partition evaluations to remote schedulers
// (DESIGN.md §9): it receives a partition — a store reference it can
// open locally, or the partition's framed block bytes shipped inline —
// runs the paper's full evaluation engine over it as one level-one
// sharded traversal, and returns the serialized shard state for the
// scheduler's level-two fold.
//
// Usage:
//
//	bskyworker [-listen :8737] [-store-root DIR] [-workers N]
//	          [-cache-dir DIR] [-cache-max-bytes N]
//
// -store-root restricts store-reference requests to directories under
// DIR; without it any local store path is served. -workers fixes the
// traversal worker count per evaluation (0 = autotuned per request).
// -cache-dir enables the content-addressed block cache (DESIGN.md §12):
// shipped partition blocks are kept on disk keyed by manifest
// fingerprint, and the describe response advertises the held keys so a
// warm re-run of the same corpus ships ~zero payload bytes.
// -cache-max-bytes caps the cache; least-recently-used entries are
// evicted past the cap.
//
// Pair it with the scheduler side:
//
//	bskyanalyze -spill /corpora/c1 -partitions 4
//	bskyworker -listen :8737 -store-root /corpora &
//	bskyworker -listen :8738 -store-root /corpora &
//	bskyanalyze -corpus /corpora/c1 -workers-at 127.0.0.1:8737,127.0.0.1:8738
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"path/filepath"

	"blueskies/internal/sched"
)

func main() {
	listen := flag.String("listen", ":8737", "address to serve the worker XRPC API on")
	storeRoot := flag.String("store-root", "", "restrict store-reference requests to stores under this directory (empty = any local path)")
	workers := flag.Int("workers", 0, "traversal workers per evaluation (0 = autotuned)")
	cacheDir := flag.String("cache-dir", "", "directory for the content-addressed block cache (empty = caching off)")
	cacheMax := flag.Int64("cache-max-bytes", 0, "block cache size cap in bytes (0 = default)")
	flag.Parse()

	root := *storeRoot
	if root != "" {
		abs, err := filepath.Abs(root)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bskyworker:", err)
			os.Exit(1)
		}
		root = abs
	}
	srv := &sched.Server{StoreRoot: root, Workers: *workers}
	if *cacheDir != "" {
		cache, err := sched.NewBlockCache(*cacheDir, *cacheMax)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bskyworker:", err)
			os.Exit(1)
		}
		srv.Cache = cache
		log.Printf("bskyworker: block cache at %s (%d keys warm)", *cacheDir, len(cache.Keys()))
	}
	log.Printf("bskyworker: serving %s on %s (store root %q)", sched.NSIDEvalPartition, *listen, root)
	if err := http.ListenAndServe(*listen, srv.Mux()); err != nil {
		fmt.Fprintln(os.Stderr, "bskyworker:", err)
		os.Exit(1)
	}
}
