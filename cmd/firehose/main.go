// firehose tails a Relay's event stream, printing one line per event —
// the paper's Firehose dataset collector in miniature.
package main

import (
	"flag"
	"fmt"
	"log"

	"blueskies/internal/events"
)

func main() {
	relayURL := flag.String("relay", "", "relay base URL (required)")
	cursor := flag.Int64("cursor", 0, "resume cursor (0 = full backfill)")
	count := flag.Int("n", 0, "stop after N events (0 = forever)")
	flag.Parse()
	if *relayURL == "" {
		log.Fatal("-relay is required")
	}
	sub, err := events.Subscribe(*relayURL, "com.atproto.sync.subscribeRepos", *cursor)
	if err != nil {
		log.Fatal(err)
	}
	defer sub.Close()
	for i := 0; *count == 0 || i < *count; i++ {
		ev, err := sub.Next()
		if err != nil {
			log.Fatal(err)
		}
		switch e := ev.(type) {
		case *events.Commit:
			for _, op := range e.Ops {
				fmt.Printf("%d #commit %s %s %s\n", e.Seq, e.Repo, op.Action, op.Path)
			}
		case *events.Identity:
			fmt.Printf("%d #identity %s\n", e.Seq, e.DID)
		case *events.Handle:
			fmt.Printf("%d #handle %s -> %s\n", e.Seq, e.DID, e.Handle)
		case *events.Tombstone:
			fmt.Printf("%d #tombstone %s\n", e.Seq, e.DID)
		case *events.Info:
			fmt.Printf("#info %s: %s\n", e.Name, e.Message)
		}
	}
}
