// bskycrawl runs the paper's measurement pipeline against a live
// deployment (e.g. one started with bskysim) and prints the collected
// dataset summary.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"time"

	"blueskies/internal/core"
)

func main() {
	relayURL := flag.String("relay", "", "relay base URL (required)")
	plcURL := flag.String("plc", "", "PLC directory base URL")
	appviewURL := flag.String("appview", "", "AppView base URL")
	flag.Parse()
	if *relayURL == "" {
		log.Fatal("-relay is required")
	}

	col := &core.Collector{RelayURL: *relayURL, PLCURL: *plcURL, AppViewURL: *appviewURL}
	ctx := context.Background()

	ids, err := col.ListIdentifiers(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("identifier dataset: %d repositories\n", len(ids))

	ds, err := col.Snapshot(ctx, time.Hour)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("repository dataset: %d users, %d posts\n", len(ds.Users), len(ds.Posts))
	var posts, likes, follows int
	for _, u := range ds.Users {
		posts += u.Posts
		likes += u.Likes
		follows += u.Following
	}
	fmt.Printf("accumulated operations: %d posts, %d likes, %d follows\n", posts, likes, follows)
	fmt.Printf("labeling dataset: %d label interactions\n", len(ds.Labels))
}
