// bskylint is the repo's determinism vettool: a go vet -vettool
// multichecker over the analyzers in internal/lint (maporder,
// walltime, cborwire, shardcodec). It machine-checks the invariant
// every scaling layer rests on — byte-identical output across worker
// counts, partitions, disk spills, and remote schedules — at vet
// time instead of waiting for a parity golden to fail.
//
// Usage:
//
//	go build -o /tmp/bskylint ./cmd/bskylint
//	go vet -vettool=/tmp/bskylint ./...
//
// Run a single analyzer with its enable flag:
//
//	go vet -vettool=/tmp/bskylint -maporder ./internal/analysis/
//
// See DESIGN.md §10 for what each analyzer enforces and how audited
// sites suppress a finding (//lint:<name> <justification>).
package main

import "blueskies/internal/lint"

func main() {
	lint.Main(lint.Analyzers()...)
}
