// Remote-path benchmark: prices the scheduler's loopback remote
// evaluation — every partition's level-one merge behind the full
// request/state wire codecs — against the plain out-of-core run of
// the same spilled corpus, and reports the serialized shard-state
// volume a remote run ships home. CI runs it as a smoke alongside the
// other ablations.
package blueskies_test

import (
	"testing"

	"blueskies/internal/analysis"
	"blueskies/internal/core"
	"blueskies/internal/sched"
	"blueskies/internal/synth"
)

// BenchmarkRemoteEvaluation evaluates an 8-partition spilled corpus
// through two loopback workers (store-reference and shipped-blocks
// modes) and through the local disk path. All three render
// byte-identical reports; the remote sub-benchmarks report
// state-bytes-MB — the wire volume of the serialized shard states the
// level-two fold consumes.
func BenchmarkRemoteEvaluation(b *testing.B) {
	dir := b.TempDir()
	const parts = 8
	if _, err := synth.GeneratePartitionedTo(synth.Config{Scale: 400, Seed: 1}, parts, dir, 0); err != nil {
		b.Fatal(err)
	}
	c, err := core.OpenCorpus(dir)
	if err != nil {
		b.Fatal(err)
	}

	stateMB := func() float64 {
		eng := analysis.NewFullEngine()
		total := 0
		for k := range c.Manifest.Partitions {
			state, err := eng.Snapshot(analysis.NewDiskSource(c, k))
			if err != nil {
				b.Fatal(err)
			}
			total += len(state)
		}
		return float64(total) / (1 << 20)
	}()

	// shipMB prices the request-side wire volume per format: the bytes
	// a ship-blocks run sends to the fleet with the store at its
	// native format versus transcoded down to v1 — the shipped-bytes
	// saving the columnar codec buys on the wire.
	shipMB := func(version int) float64 {
		total := 0
		for k := range c.Manifest.Partitions {
			blocks, err := sched.ReadPartitionBlocks(c, k)
			if err != nil {
				b.Fatal(err)
			}
			if version != c.Version {
				if blocks, err = core.TranscodePartitionBlocks(blocks, version); err != nil {
					b.Fatal(err)
				}
			}
			total += len(blocks)
		}
		return float64(total) / (1 << 20)
	}

	runSched := func(b *testing.B, ship bool) {
		for i := 0; i < b.N; i++ {
			s := sched.New(c,
				&sched.Loopback{Server: &sched.Server{}, Label: "w0"},
				&sched.Loopback{Server: &sched.Server{}, Label: "w1"},
			)
			s.ShipBlocks = ship
			reports, err := s.RunAll(0)
			if err != nil {
				b.Fatal(err)
			}
			if len(reports) == 0 {
				b.Fatal("no reports")
			}
		}
		b.ReportMetric(stateMB, "state-bytes-MB")
		if ship {
			b.ReportMetric(shipMB(1), "ship-bytes-v1-MB")
			b.ReportMetric(shipMB(c.Version), "ship-bytes-MB")
		}
	}
	b.Run("loopback-store", func(b *testing.B) { runSched(b, false) })
	b.Run("loopback-ship", func(b *testing.B) { runSched(b, true) })
	b.Run("local-disk", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			reports, err := analysis.RunAllDisk(c, 0)
			if err != nil {
				b.Fatal(err)
			}
			if len(reports) == 0 {
				b.Fatal("no reports")
			}
		}
	})
}
