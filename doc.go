// Package blueskies reproduces "Looking AT the Blue Skies of Bluesky"
// (IMC 2024): a full AT Protocol network substrate, the paper's
// measurement pipeline, a calibrated synthetic world, and the analysis
// code regenerating every table and figure. See README.md, DESIGN.md,
// and EXPERIMENTS.md.
package blueskies
