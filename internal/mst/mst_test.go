package mst

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"blueskies/internal/cid"
)

func val(s string) cid.CID { return cid.SumRaw([]byte(s)) }

func buildFrom(t *testing.T, keys []string) (cid.CID, *MemBlockStore) {
	t.Helper()
	tree := New()
	for _, k := range keys {
		if err := tree.Put(k, val(k)); err != nil {
			t.Fatalf("Put(%q): %v", k, err)
		}
	}
	bs := NewMemBlockStore()
	root, err := tree.Build(bs)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return root, bs
}

func TestEmptyTree(t *testing.T) {
	root, bs := buildFrom(t, nil)
	if !root.Defined() {
		t.Fatal("empty tree must still have a root")
	}
	loaded, err := Load(bs, root)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != 0 {
		t.Fatalf("loaded %d entries", loaded.Len())
	}
}

func TestPutValidation(t *testing.T) {
	tree := New()
	if err := tree.Put("", val("x")); err == nil {
		t.Fatal("empty key must be rejected")
	}
	if err := tree.Put("k", cid.CID{}); err == nil {
		t.Fatal("undefined CID must be rejected")
	}
}

func TestGetPutDelete(t *testing.T) {
	tree := New()
	key := "app.bsky.feed.post/3kdgeujwlq32y"
	if err := tree.Put(key, val("a")); err != nil {
		t.Fatal(err)
	}
	got, ok := tree.Get(key)
	if !ok || !got.Equal(val("a")) {
		t.Fatal("Get after Put failed")
	}
	if err := tree.Put(key, val("b")); err != nil {
		t.Fatal(err)
	}
	if got, _ := tree.Get(key); !got.Equal(val("b")) {
		t.Fatal("Put must replace")
	}
	if !tree.Delete(key) {
		t.Fatal("Delete must report presence")
	}
	if tree.Delete(key) {
		t.Fatal("second Delete must report absence")
	}
	if _, ok := tree.Get(key); ok {
		t.Fatal("Get after Delete must miss")
	}
}

func TestRootIndependentOfInsertionOrder(t *testing.T) {
	keys := make([]string, 200)
	for i := range keys {
		keys[i] = fmt.Sprintf("app.bsky.feed.like/%026d", i*7)
	}
	rootA, _ := buildFrom(t, keys)

	shuffled := append([]string(nil), keys...)
	rand.New(rand.NewSource(42)).Shuffle(len(shuffled), func(i, j int) {
		shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
	})
	rootB, _ := buildFrom(t, shuffled)

	if !rootA.Equal(rootB) {
		t.Fatalf("roots differ by insertion order: %s vs %s", rootA, rootB)
	}
}

func TestRootChangesWithContent(t *testing.T) {
	rootA, _ := buildFrom(t, []string{"a/1", "b/2"})
	rootB, _ := buildFrom(t, []string{"a/1", "b/3"})
	rootC, _ := buildFrom(t, []string{"a/1"})
	if rootA.Equal(rootB) || rootA.Equal(rootC) || rootB.Equal(rootC) {
		t.Fatal("distinct key sets must give distinct roots")
	}
}

func TestLoadRoundTrip(t *testing.T) {
	keys := []string{
		"app.bsky.actor.profile/self",
		"app.bsky.feed.post/3kdgeujwlq32y",
		"app.bsky.feed.post/3kdgeujwlq32z",
		"app.bsky.feed.like/3kaaaaaaaaaaa",
		"app.bsky.graph.follow/3kbbbbbbbbbb2",
	}
	root, bs := buildFrom(t, keys)
	loaded, err := Load(bs, root)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != len(keys) {
		t.Fatalf("loaded %d entries, want %d", loaded.Len(), len(keys))
	}
	for _, k := range keys {
		got, ok := loaded.Get(k)
		if !ok || !got.Equal(val(k)) {
			t.Fatalf("key %q missing or wrong after load", k)
		}
	}
	// Rebuilding the loaded tree must reproduce the same root.
	bs2 := NewMemBlockStore()
	root2, err := loaded.Build(bs2)
	if err != nil {
		t.Fatal(err)
	}
	if !root2.Equal(root) {
		t.Fatalf("rebuild root mismatch: %s vs %s", root2, root)
	}
}

func TestLoadMissingBlock(t *testing.T) {
	root, _ := buildFrom(t, []string{"a/1", "b/2", "c/3"})
	if _, err := Load(NewMemBlockStore(), root); err == nil {
		t.Fatal("expected error loading from empty store")
	}
}

func TestEntriesSorted(t *testing.T) {
	tree := New()
	for _, k := range []string{"z/9", "a/1", "m/5"} {
		if err := tree.Put(k, val(k)); err != nil {
			t.Fatal(err)
		}
	}
	es := tree.Entries()
	for i := 1; i < len(es); i++ {
		if es[i-1].Key >= es[i].Key {
			t.Fatalf("entries not sorted: %v", es)
		}
	}
}

func TestKeyLayerDistribution(t *testing.T) {
	// Layer l has probability 4^-(l+1)·3 ≈ …; just sanity-check that
	// layer 0 dominates and higher layers occur.
	counts := map[int]int{}
	for i := 0; i < 20000; i++ {
		counts[KeyLayer(fmt.Sprintf("coll/key%d", i))]++
	}
	if counts[0] < 12000 {
		t.Fatalf("layer 0 count %d unexpectedly low", counts[0])
	}
	if counts[1] == 0 || counts[2] == 0 {
		t.Fatalf("higher layers never occurred: %v", counts)
	}
}

func TestDiff(t *testing.T) {
	oldT := New()
	newT := New()
	for _, k := range []string{"keep/1", "update/2", "delete/3"} {
		_ = oldT.Put(k, val("old-"+k))
	}
	_ = newT.Put("keep/1", val("old-keep/1"))
	_ = newT.Put("update/2", val("new-update/2"))
	_ = newT.Put("create/4", val("new-create/4"))

	changes := Diff(oldT, newT)
	want := map[string]ChangeOp{
		"update/2": OpUpdate,
		"delete/3": OpDelete,
		"create/4": OpCreate,
	}
	if len(changes) != len(want) {
		t.Fatalf("got %d changes: %+v", len(changes), changes)
	}
	for _, c := range changes {
		if want[c.Key] != c.Op {
			t.Errorf("key %q: op %q, want %q", c.Key, c.Op, want[c.Key])
		}
		switch c.Op {
		case OpCreate:
			if c.Old.Defined() || !c.New.Defined() {
				t.Errorf("create change CIDs wrong: %+v", c)
			}
		case OpUpdate:
			if !c.Old.Defined() || !c.New.Defined() || c.Old.Equal(c.New) {
				t.Errorf("update change CIDs wrong: %+v", c)
			}
		case OpDelete:
			if !c.Old.Defined() || c.New.Defined() {
				t.Errorf("delete change CIDs wrong: %+v", c)
			}
		}
	}
}

func TestDiffEmpty(t *testing.T) {
	a, _ := New(), New()
	if d := Diff(a, a); len(d) != 0 {
		t.Fatalf("self diff not empty: %v", d)
	}
}

func TestClone(t *testing.T) {
	a := New()
	_ = a.Put("k/1", val("v"))
	b := a.Clone()
	_ = b.Put("k/2", val("w"))
	if a.Len() != 1 || b.Len() != 2 {
		t.Fatalf("clone not independent: %d %d", a.Len(), b.Len())
	}
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(raw map[string]uint16) bool {
		tree := New()
		for k, v := range raw {
			if k == "" {
				continue
			}
			if err := tree.Put(k, val(fmt.Sprint(v))); err != nil {
				return false
			}
		}
		bs := NewMemBlockStore()
		root, err := tree.Build(bs)
		if err != nil {
			return false
		}
		loaded, err := Load(bs, root)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(loaded.Entries(), tree.Entries())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkBuild1000(b *testing.B) {
	tree := New()
	for i := 0; i < 1000; i++ {
		_ = tree.Put(fmt.Sprintf("app.bsky.feed.post/%013d", i), val(fmt.Sprint(i)))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bs := NewMemBlockStore()
		if _, err := tree.Build(bs); err != nil {
			b.Fatal(err)
		}
	}
}
