// Package mst implements the Merkle Search Tree used by AT Protocol
// repositories to index record keys ("collection/rkey") to record CIDs.
//
// An MST is a deterministic, content-addressed search tree: every key
// is assigned a layer equal to half the number of leading zero bits of
// its sha2-256 digest, and the tree structure is a pure function of
// the key set — independent of insertion order. This package exploits
// that property: mutations edit a flat key→CID map, and Build
// materializes the canonical node blocks (DAG-CBOR, matching the
// atproto node schema: {l, e:[{p,k,v,t}]} with prefix-compressed keys)
// into a block store on demand.
package mst

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"math/bits"
	"sort"

	"blueskies/internal/cbor"
	"blueskies/internal/cid"
)

// BlockStore is the backing store for serialized tree nodes.
type BlockStore interface {
	// Put stores a block and returns its CID.
	Put(codec cid.Codec, data []byte) cid.CID
	// Get retrieves a block by CID.
	Get(c cid.CID) ([]byte, bool)
}

// MemBlockStore is an in-memory BlockStore.
type MemBlockStore struct {
	blocks map[cid.CID][]byte
}

// NewMemBlockStore creates an empty in-memory block store.
func NewMemBlockStore() *MemBlockStore {
	return &MemBlockStore{blocks: make(map[cid.CID][]byte)}
}

// Put stores data and returns its CID.
func (s *MemBlockStore) Put(codec cid.Codec, data []byte) cid.CID {
	c := cid.Sum(codec, data)
	if _, ok := s.blocks[c]; !ok {
		cp := make([]byte, len(data))
		copy(cp, data)
		s.blocks[c] = cp
	}
	return c
}

// Get retrieves a block.
func (s *MemBlockStore) Get(c cid.CID) ([]byte, bool) {
	b, ok := s.blocks[c]
	return b, ok
}

// Len reports the number of stored blocks.
func (s *MemBlockStore) Len() int { return len(s.blocks) }

// CIDs returns all stored block CIDs (unordered).
func (s *MemBlockStore) CIDs() []cid.CID {
	out := make([]cid.CID, 0, len(s.blocks))
	for c := range s.blocks {
		out = append(out, c)
	}
	return out
}

// Tree is a mutable MST: a key→CID map with canonical serialization.
type Tree struct {
	entries map[string]cid.CID
}

// New creates an empty tree.
func New() *Tree { return &Tree{entries: make(map[string]cid.CID)} }

// Put inserts or replaces the value for key.
func (t *Tree) Put(key string, value cid.CID) error {
	if key == "" {
		return errors.New("mst: empty key")
	}
	if !value.Defined() {
		return errors.New("mst: undefined value CID")
	}
	t.entries[key] = value
	return nil
}

// Delete removes a key, reporting whether it was present.
func (t *Tree) Delete(key string) bool {
	if _, ok := t.entries[key]; !ok {
		return false
	}
	delete(t.entries, key)
	return true
}

// Get looks up the value for key.
func (t *Tree) Get(key string) (cid.CID, bool) {
	c, ok := t.entries[key]
	return c, ok
}

// Len reports the number of entries.
func (t *Tree) Len() int { return len(t.entries) }

// Entry is one key→value pair.
type Entry struct {
	Key   string
	Value cid.CID
}

// Entries returns all entries in key order.
func (t *Tree) Entries() []Entry {
	out := make([]Entry, 0, len(t.entries))
	for k, v := range t.entries {
		out = append(out, Entry{Key: k, Value: v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// Clone returns an independent copy of the tree.
func (t *Tree) Clone() *Tree {
	cp := New()
	for k, v := range t.entries {
		cp.entries[k] = v
	}
	return cp
}

// KeyLayer computes the MST layer of a key: half the leading zero bits
// of its sha2-256 digest.
func KeyLayer(key string) int {
	sum := sha256.Sum256([]byte(key))
	zeros := 0
	for _, b := range sum {
		if b == 0 {
			zeros += 8
			continue
		}
		zeros += bits.LeadingZeros8(b)
		break
	}
	return zeros / 2
}

// node mirrors the atproto MST node schema.
type node struct {
	Left    *cid.CID    `cbor:"l"`
	Entries []nodeEntry `cbor:"e"`
}

type nodeEntry struct {
	PrefixLen int      `cbor:"p"`
	KeySuffix []byte   `cbor:"k"`
	Value     cid.CID  `cbor:"v"`
	Right     *cid.CID `cbor:"t"`
}

// Build serializes the tree into bs and returns the root node CID.
// An empty tree serializes as a single empty node.
func (t *Tree) Build(bs BlockStore) (cid.CID, error) {
	entries := t.Entries()
	if len(entries) == 0 {
		return writeNode(bs, node{})
	}
	top := 0
	for _, e := range entries {
		if l := KeyLayer(e.Key); l > top {
			top = l
		}
	}
	c, err := buildLayer(bs, entries, top)
	if err != nil {
		return cid.CID{}, err
	}
	if c == nil {
		return writeNode(bs, node{})
	}
	return *c, nil
}

// buildLayer builds the subtree covering entries at the given layer,
// returning nil for an empty range.
func buildLayer(bs BlockStore, entries []Entry, layer int) (*cid.CID, error) {
	if len(entries) == 0 {
		return nil, nil
	}
	if layer < 0 {
		return nil, fmt.Errorf("mst: %d entries below layer 0", len(entries))
	}
	var n node
	var prevKey string
	start := 0 // start of the pending lower-layer run
	flush := func(end int, intoLeft bool) error {
		sub, err := buildLayer(bs, entries[start:end], layer-1)
		if err != nil {
			return err
		}
		if intoLeft {
			n.Left = sub
		} else if len(n.Entries) > 0 {
			n.Entries[len(n.Entries)-1].Right = sub
		}
		return nil
	}
	for i, e := range entries {
		if KeyLayer(e.Key) < layer {
			continue
		}
		// e belongs on this layer: everything accumulated since
		// start forms the subtree to its left.
		if err := flush(i, len(n.Entries) == 0); err != nil {
			return nil, err
		}
		p := commonPrefixLen(prevKey, e.Key)
		n.Entries = append(n.Entries, nodeEntry{
			PrefixLen: p,
			KeySuffix: []byte(e.Key[p:]),
			Value:     e.Value,
		})
		prevKey = e.Key
		start = i + 1
	}
	if len(n.Entries) == 0 {
		// No entry at this layer: the whole range lives lower.
		return buildLayer(bs, entries, layer-1)
	}
	if err := flush(len(entries), false); err != nil {
		return nil, err
	}
	c, err := writeNode(bs, n)
	if err != nil {
		return nil, err
	}
	return &c, nil
}

func writeNode(bs BlockStore, n node) (cid.CID, error) {
	data, err := cbor.Marshal(n)
	if err != nil {
		return cid.CID{}, fmt.Errorf("mst: encode node: %w", err)
	}
	return bs.Put(cid.DagCBOR, data), nil
}

func commonPrefixLen(a, b string) int {
	n := min(len(a), len(b))
	i := 0
	for i < n && a[i] == b[i] {
		i++
	}
	return i
}

// Load reconstructs a tree from its root CID.
func Load(bs BlockStore, root cid.CID) (*Tree, error) {
	t := New()
	if err := loadNode(bs, root, t); err != nil {
		return nil, err
	}
	return t, nil
}

func loadNode(bs BlockStore, c cid.CID, t *Tree) error {
	data, ok := bs.Get(c)
	if !ok {
		return fmt.Errorf("mst: missing block %s", c)
	}
	var n node
	if err := cbor.Unmarshal(data, &n); err != nil {
		return fmt.Errorf("mst: decode node %s: %w", c, err)
	}
	if n.Left != nil {
		if err := loadNode(bs, *n.Left, t); err != nil {
			return err
		}
	}
	prevKey := ""
	for _, e := range n.Entries {
		if e.PrefixLen > len(prevKey) {
			return fmt.Errorf("mst: prefix length %d exceeds previous key %q", e.PrefixLen, prevKey)
		}
		key := prevKey[:e.PrefixLen] + string(e.KeySuffix)
		if key <= prevKey && prevKey != "" {
			return fmt.Errorf("mst: keys out of order: %q after %q", key, prevKey)
		}
		t.entries[key] = e.Value
		prevKey = key
		if e.Right != nil {
			if err := loadNode(bs, *e.Right, t); err != nil {
				return err
			}
		}
	}
	return nil
}

// ChangeOp describes the kind of a Diff change.
type ChangeOp string

// Diff operations, matching atproto firehose op actions.
const (
	OpCreate ChangeOp = "create"
	OpUpdate ChangeOp = "update"
	OpDelete ChangeOp = "delete"
)

// Change is one key difference between two trees.
type Change struct {
	Op  ChangeOp
	Key string
	Old cid.CID // defined for update/delete
	New cid.CID // defined for create/update
}

// Diff computes the changes transforming old into new, in key order.
func Diff(oldT, newT *Tree) []Change {
	var out []Change
	for _, e := range newT.Entries() {
		if oldV, ok := oldT.entries[e.Key]; !ok {
			out = append(out, Change{Op: OpCreate, Key: e.Key, New: e.Value})
		} else if !oldV.Equal(e.Value) {
			out = append(out, Change{Op: OpUpdate, Key: e.Key, Old: oldV, New: e.Value})
		}
	}
	for _, e := range oldT.Entries() {
		if _, ok := newT.entries[e.Key]; !ok {
			out = append(out, Change{Op: OpDelete, Key: e.Key, Old: e.Value})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}
