package mst

import (
	"fmt"
	"testing"
	"testing/quick"
)

// TestQuickDiffApply checks the fundamental diff property: applying
// Diff(a, b) to a yields exactly b — the invariant the relay's mirror
// maintenance (apply firehose ops to a key map) depends on.
func TestQuickDiffApply(t *testing.T) {
	f := func(aRaw, bRaw map[string]uint8) bool {
		a, b := New(), New()
		for k, v := range aRaw {
			if k == "" {
				continue
			}
			_ = a.Put(k, val(fmt.Sprintf("a%d", v)))
		}
		for k, v := range bRaw {
			if k == "" {
				continue
			}
			_ = b.Put(k, val(fmt.Sprintf("b%d", v)))
		}
		// Apply the diff to a clone of a.
		c := a.Clone()
		for _, ch := range Diff(a, b) {
			switch ch.Op {
			case OpCreate, OpUpdate:
				if err := c.Put(ch.Key, ch.New); err != nil {
					return false
				}
			case OpDelete:
				if !c.Delete(ch.Key) {
					return false
				}
			}
		}
		// c must now equal b — including identical canonical roots.
		if c.Len() != b.Len() {
			return false
		}
		bsC, bsB := NewMemBlockStore(), NewMemBlockStore()
		rootC, err1 := c.Build(bsC)
		rootB, err2 := b.Build(bsB)
		return err1 == nil && err2 == nil && rootC.Equal(rootB)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
