package analysis

import "fmt"

func fmtSscan(s string, n *int) (int, error) { return fmt.Sscan(s, n) }
