package analysis

import (
	"strings"
	"testing"
)

func TestFirehoseBandwidthProjection(t *testing.T) {
	bw := EstimateFirehoseBandwidth(ds)
	if bw.EventsPerDay <= 0 || bw.BytesPerDay <= 0 {
		t.Fatalf("bandwidth = %+v", bw)
	}
	// The unscaled projection must land near the paper's ≈30 GB/day
	// estimate (§9).
	if bw.GBPerDayPaper < 15 || bw.GBPerDayPaper > 60 {
		t.Fatalf("projected %.1f GB/day, paper estimates ≈30", bw.GBPerDayPaper)
	}
}

func TestDiscussionReport(t *testing.T) {
	r := Discussion(ds)
	s := r.String()
	if !strings.Contains(s, "GB/day") {
		t.Fatalf("report = %s", s)
	}
}
