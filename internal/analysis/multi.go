package analysis

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"blueskies/internal/core"
)

// MultiSource runs the registered accumulators over a set of partition
// Sources and folds their states with a two-level merge: level one is
// each partition's own shard merge (workers within a partition, exactly
// the single-dataset semantics), level two remaps every partition's
// URI/Val/Src intern tables — and, for independent datasets, its
// partition-local user indexes — into the corpus id space and folds the
// partition states in partition order. Because split partitions cover
// contiguous row ranges and fold in order, the two-level merge produces
// exactly the state of a flat single-dataset traversal: RunAll over
// {1 partition} is byte-identical to an unpartitioned run, and an n-way
// split of a corpus matches the unsplit golden at any worker count.
//
// The render context (World) is synthesized from the merged partition
// worlds: summed record counts and firehose counters, min/max windows,
// a deduplicated labeler enumeration (which must agree across
// partitions — labels are attributed by labeler index), and a
// concatenated follower-degree column in partition order.
//
// Batch partitions (DatasetSource) run concurrently, capped at
// GOMAXPROCS; disk partitions (DiskSource — out-of-core block streams
// from a partition store) run under the same cap, each resident as one
// decoded block plus accumulator state. Stream partitions
// (StreamSource — one firehose/labeler stream pair per partition, each
// with its own sequence-gap tracking)
// ingest concurrently; when SnapshotEvery > 0 their ingest loops
// coordinate merged stop-the-world snapshots: every stream pauses at a
// block boundary, the quiescent partition states fold non-destructively
// into a corpus snapshot, and ingestion resumes. Partition sub-sources'
// own SnapshotEvery/OnSnapshot are ignored under MultiSource. A batch
// partition still traversing when a snapshot fires is excluded from
// that snapshot (it joins once complete); the final fold always covers
// every partition.
type MultiSource struct {
	Sources []Source
	// Manifest describes the partitions (optional). When present its
	// Scale wins over the per-partition worlds' — independent partition
	// datasets carry Scale·n locally — and SharedIndex=false turns on
	// user-index rebasing.
	Manifest *core.Manifest
	// Rebase forces partition-local user-index rebasing when no
	// manifest is given.
	Rebase bool
	// SnapshotEvery renders a merged corpus snapshot each time this
	// many records arrived across all stream partitions (0 = final
	// only; batch-only runs never snapshot mid-run).
	SnapshotEvery int
	// OnSnapshot receives each merged mid-run snapshot.
	OnSnapshot func(records int, reports []*Report)
}

// NewPartitionedSource wraps partition datasets as a batch MultiSource,
// feeding each partition's blocks at its manifest base offsets.
func NewPartitionedSource(parts []*core.Dataset, m *core.Manifest) *MultiSource {
	if m == nil {
		m = core.BuildManifest(parts, 0, 0, true)
	}
	ms := &MultiSource{Manifest: m}
	for k, p := range parts {
		base := core.CollectionCounts{}
		if k < len(m.Partitions) {
			base = m.Partitions[k].Base
		}
		ms.Sources = append(ms.Sources, NewDatasetSourceAt(p, base))
	}
	return ms
}

// rebase reports whether partition-local user indexes need offsetting.
func (ms *MultiSource) rebase() bool {
	if ms.Manifest != nil {
		return !ms.Manifest.SharedIndex
	}
	return ms.Rebase
}

// partState is one partition's traversal state. Completed partitions
// carry materialized fields; live stream partitions resolve through
// their ingest (whose state is only read at quiescent points).
type partState struct {
	world  *World
	shards []Shard
	tables *LabelTables
	si     *streamIngest
}

func (st *partState) resolve() (*World, []Shard, *LabelTables) {
	if st.si != nil {
		return st.si.world, st.si.shards, st.si.tables
	}
	return st.world, st.shards, st.tables
}

// Run implements Source over the partition set. A partition that
// errors aborts the whole run with that error as soon as it surfaces —
// without waiting for the remaining partitions (a run must never hang
// on a healthy-but-endless stream because a sibling died, and no
// partial tables are ever rendered). Abandoned partitions finish in
// the background: their goroutines drain harmlessly into the discarded
// state slots, and mid-run snapshots are suppressed once the run is
// aborting. Callers that own live stream channels should close them
// (cancel the feeding context) after an error return.
func (ms *MultiSource) Run(accs []Accumulator, workers int, render RenderFunc) (*World, []Shard, *LabelTables, error) {
	n := len(ms.Sources)
	if n == 0 {
		return ms.fold(accs, nil)
	}
	states := make([]*partState, n)
	var failed atomic.Bool

	streamWorkers := workers
	if streamWorkers <= 0 {
		// Stream and disk partitions fan out over accumulator groups;
		// share the machine instead of oversubscribing n× GOMAXPROCS.
		streamWorkers = max(1, runtime.GOMAXPROCS(0)/n)
	}
	if workers <= 0 && n > 1 {
		// Same sharing rule for concurrently-traversing batch
		// partitions: autotune still picks fewer workers for small
		// partitions, but never more than the machine's fair share.
		for _, sub := range ms.Sources {
			if d, ok := sub.(*DatasetSource); ok && d.maxAuto == 0 {
				d.maxAuto = max(1, runtime.GOMAXPROCS(0)/n)
			}
		}
	}

	var coord *snapCoordinator
	if ms.SnapshotEvery > 0 && render != nil && ms.OnSnapshot != nil {
		coord = &snapCoordinator{
			every: ms.SnapshotEvery,
			pause: make(chan struct{}),
			snapshot: func(sts []*partState) {
				if failed.Load() {
					return // the run is aborting; render nothing partial
				}
				world, merged, tables, err := ms.fold(accs, sts)
				if err != nil {
					return // enumeration conflicts surface at the final fold
				}
				records := world.Users + world.Posts + world.Days + world.Labels +
					world.FeedGens + world.Domains + world.HandleUpdates
				ms.OnSnapshot(records, render(world, merged, tables))
			},
		}
		// Register every stream partition up front: a round can only
		// complete once all of them are flushed and parked, and their
		// live ingest states participate in every snapshot fold.
		for p, sub := range ms.Sources {
			if src, ok := sub.(*StreamSource); ok {
				states[p] = &partState{si: newStreamIngest(accs, streamWorkers, src.Base)}
				coord.active++
			}
		}
		coord.states = states
	}

	sem := make(chan struct{}, max(1, runtime.GOMAXPROCS(0)))
	done := make(chan error, n)
	for p, sub := range ms.Sources {
		go func(p int, sub Source) {
			if src, ok := sub.(*StreamSource); ok {
				if coord != nil {
					runCoordinatedStream(src, states[p].si, coord)
					done <- nil
					return
				}
				world, shards, tables, err := src.Run(accs, streamWorkers, nil)
				if err != nil {
					done <- err
					return
				}
				states[p] = &partState{world: world, shards: shards, tables: tables}
				done <- nil
				return
			}
			// Batch partitions are CPU-bound; cap their concurrency.
			// Offloaded partitions (remote workers) skip the cap: their
			// traversal burns another machine's cores, and gating them
			// here would bound fleet fan-out at local GOMAXPROCS.
			if o, ok := sub.(OffloadedSource); !ok || !o.Offloaded() {
				sem <- struct{}{}
				defer func() { <-sem }()
			}
			if failed.Load() {
				// The run is already aborting; don't start a traversal
				// whose state the fold will never consume.
				done <- nil
				return
			}
			w := workers
			if _, disk := sub.(*DiskSource); disk && w <= 0 {
				w = streamWorkers // accumulator groups, not data shards
			}
			world, shards, tables, err := sub.Run(accs, w, nil)
			if err != nil {
				done <- err
				return
			}
			st := &partState{world: world, shards: shards, tables: tables}
			if coord != nil {
				coord.complete(p, st)
			} else {
				states[p] = st
			}
			done <- nil
		}(p, sub)
	}
	for i := 0; i < n; i++ {
		if err := <-done; err != nil {
			failed.Store(true)
			return nil, nil, nil, err
		}
	}
	return ms.fold(accs, states)
}

// fold is the cross-partition (level two) merge: remap every
// partition's intern tables into one corpus table, synthesize the
// merged render context, and fold each accumulator's partition states
// into fresh corpus shards in partition order. Folding into fresh
// shards keeps partition states untouched, so a mid-run snapshot can
// fold again later; the final state takes the same path.
func (ms *MultiSource) fold(accs []Accumulator, states []*partState) (*World, []Shard, *LabelTables, error) {
	type resolved struct {
		idx    int // partition index in ms.Sources / manifest order
		world  *World
		shards []Shard
		tables *LabelTables
	}
	var live []resolved
	for idx, st := range states {
		if st == nil {
			continue
		}
		w, sh, t := st.resolve()
		live = append(live, resolved{idx, w, sh, t})
	}
	if len(live) == 0 {
		world := &World{}
		shards := make([]Shard, len(accs))
		for ai, a := range accs {
			shards[ai] = a.NewShard(world)
		}
		return world, shards, nil, nil
	}
	rebase := ms.rebase()
	worlds := make([]*World, len(live))
	idxs := make([]int, len(live))
	for i := range live {
		worlds[i] = live[i].world
		idxs[i] = live[i].idx
	}
	world, userBases, err := mergeWorlds(worlds, idxs, ms.Manifest)
	if err != nil {
		return nil, nil, nil, err
	}
	var tables *LabelTables
	mcs := make([]*MergeCtx, len(live))
	anyTables := false
	for p := range live {
		if live[p].tables != nil {
			anyTables = true
		}
		tables, mcs[p] = foldTables(tables, live[p].tables)
	}
	if !anyTables {
		tables = nil
	}
	for p := range mcs {
		if tables != nil {
			mcs[p].NumURIs = len(tables.URIs)
			mcs[p].NumVals = len(tables.Vals)
		}
		if rebase {
			mcs[p].Users = userBases[p]
		}
	}
	merged := make([]Shard, len(accs))
	for ai, a := range accs {
		dst := a.NewShard(world)
		for p := range live {
			if live[p].shards == nil {
				continue // stream partition with no records yet
			}
			a.Merge(dst, live[p].shards[ai], mcs[p])
		}
		merged[ai] = dst
	}
	return world, merged, tables, nil
}

// mergeWorlds synthesizes the corpus render context from partition
// worlds: summed record counts and firehose counters, min/max window,
// the deduplicated labeler enumeration, and the follower-degree
// column. For SharedIndex corpora each partition's degrees sit at its
// manifest user offset (idxs maps worlds to manifest entries), so a
// corpus-global creator index resolves correctly even in a mid-run
// snapshot where earlier partitions have streamed only a prefix of
// their users — not-yet-arrived users read as degree 0, never as a
// later partition's user. Partition-local corpora concatenate in
// partition order, which is exactly the rebase target. Returns each
// partition's user base in the merged index space.
func mergeWorlds(worlds []*World, idxs []int, m *core.Manifest) (*World, []int, error) {
	out := &World{}
	bases := make([]int, len(worlds))
	shared := m != nil && m.SharedIndex
	for p, w := range worlds {
		bases[p] = out.Users
		if shared && idxs[p] < len(m.Partitions) {
			bases[p] = m.Partitions[idxs[p]].Base.Users
			for len(out.followers) < bases[p] {
				out.followers = append(out.followers, 0)
			}
		}
		if out.Scale == 0 {
			out.Scale = w.Scale
		}
		if out.WindowStart.IsZero() || (!w.WindowStart.IsZero() && w.WindowStart.Before(out.WindowStart)) {
			out.WindowStart = w.WindowStart
		}
		if w.WindowEnd.After(out.WindowEnd) {
			out.WindowEnd = w.WindowEnd
		}
		var err error
		if out.Labelers, err = core.MergeLabelers(out.Labelers, w.Labelers); err != nil {
			return nil, nil, fmt.Errorf("analysis: merging partition %d: %w", p, err)
		}
		out.Firehose.Commits += w.Firehose.Commits
		out.Firehose.Identity += w.Firehose.Identity
		out.Firehose.Handle += w.Firehose.Handle
		out.Firehose.Tombstone += w.Firehose.Tombstone
		out.NonBskyEvents += w.NonBskyEvents
		out.Users += w.Users
		out.Posts += w.Posts
		out.Days += w.Days
		out.Labels += w.Labels
		out.FeedGens += w.FeedGens
		out.Domains += w.Domains
		out.HandleUpdates += w.HandleUpdates
		if w.users != nil {
			for i := range w.users {
				out.followers = append(out.followers, int32(w.users[i].Followers))
			}
		} else {
			out.followers = append(out.followers, w.followers...)
		}
	}
	if m != nil && m.Scale != 0 {
		out.Scale = m.Scale
	}
	return out, bases, nil
}

// snapCoordinator orchestrates merged stop-the-world snapshots across
// stream partitions: when the corpus-wide record count since the last
// snapshot crosses the threshold, the pause-channel broadcast makes
// every running stream flush its groups and park; the last stream to
// arrive folds the quiescent states, renders, and releases the round.
// Completed partitions (batch results or ended streams) are permanently
// quiescent and stay part of every later fold.
type snapCoordinator struct {
	every    int
	snapshot func([]*partState)

	mu      sync.Mutex
	states  []*partState
	active  int // running stream partitions
	since   int
	pausing bool
	pause   chan struct{} // closed to request a round
	done    chan struct{} // closed when the round completes
	arrived int
}

// pauseChan returns the current round's broadcast channel.
func (c *snapCoordinator) pauseChan() <-chan struct{} {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.pause
}

// progress reports n ingested records and may initiate a round.
func (c *snapCoordinator) progress(n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.since += n
	if !c.pausing && c.since >= c.every {
		c.pausing = true
		c.done = make(chan struct{})
		close(c.pause)
	}
}

// arrive parks a flushed stream until the round completes; the last
// arriver performs the merged render.
func (c *snapCoordinator) arrive() {
	c.mu.Lock()
	if !c.pausing {
		c.mu.Unlock() // the round completed before this stream noticed
		return
	}
	c.arrived++
	done := c.done
	if c.arrived >= c.active {
		c.completeLocked()
		c.mu.Unlock()
		return
	}
	c.mu.Unlock()
	<-done
}

// complete records a completed batch partition's state.
func (c *snapCoordinator) complete(p int, st *partState) {
	c.mu.Lock()
	c.states[p] = st
	c.mu.Unlock()
}

// finish retires a running stream partition; a round waiting only on
// it fires now.
func (c *snapCoordinator) finish() {
	c.mu.Lock()
	c.active--
	if c.pausing && c.arrived >= c.active {
		c.completeLocked()
	}
	c.mu.Unlock()
}

// completeLocked folds the quiescent states, emits the snapshot, and
// releases the round. Caller holds c.mu; every other active stream is
// parked in arrive, so all registered states are quiescent.
func (c *snapCoordinator) completeLocked() {
	c.snapshot(c.states)
	c.pausing = false
	c.arrived = 0
	c.since = 0
	close(c.done)
	c.pause = make(chan struct{})
}

// runCoordinatedStream drives one partition's stream ingest under the
// snapshot coordinator: blocks apply in arrival order, and when a
// round opens the ingest flushes and parks until the merged snapshot
// has rendered. The ingest's state is registered with the coordinator
// before the run starts and stays registered after the stream ends.
func runCoordinatedStream(src *StreamSource, si *streamIngest, coord *snapCoordinator) {
	for {
		select {
		case b, ok := <-src.Blocks:
			if !ok {
				si.finish()
				coord.finish()
				return
			}
			coord.progress(si.apply(b))
		case <-coord.pauseChan():
			si.flush()
			coord.arrive()
		}
	}
}
