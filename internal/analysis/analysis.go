package analysis

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"blueskies/internal/core"
)

// This file holds the Report rendering type, the statistics helpers,
// and the legacy per-table entry points; see doc.go for the package
// architecture.

// Report is one rendered table or figure series.
type Report struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// String renders the report as aligned text.
func (r *Report) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s: %s ==\n", r.ID, r.Title)
	widths := make([]int, len(r.Header))
	for i, h := range r.Header {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[min(i, len(widths)-1)], cell)
		}
		sb.WriteByte('\n')
	}
	line(r.Header)
	for _, row := range r.Rows {
		line(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&sb, "# %s\n", n)
	}
	return sb.String()
}

// ---- statistics helpers ----

// Median returns the median of xs (NaN when empty).
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// Quantile returns the q-quantile of xs using nearest-rank.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	idx := int(q * float64(len(cp)-1))
	return cp[idx]
}

// IQD returns the inter-quartile distance (Q3 − Q1).
func IQD(xs []float64) float64 {
	return Quantile(xs, 0.75) - Quantile(xs, 0.25)
}

// Pearson computes the correlation coefficient of two equal-length
// samples.
func Pearson(xs, ys []float64) float64 {
	n := float64(len(xs))
	if n == 0 || len(xs) != len(ys) {
		return math.NaN()
	}
	var sx, sy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
	}
	mx, my := sx/n, sy/n
	var cov, vx, vy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		cov += dx * dy
		vx += dx * dx
		vy += dy * dy
	}
	if vx == 0 || vy == 0 {
		return 0
	}
	return cov / math.Sqrt(vx*vy)
}

// FormatDuration renders a reaction time the way the paper's figures
// label axes (0.1s … 1d).
func FormatDuration(seconds float64) string {
	switch {
	case math.IsNaN(seconds):
		return "n/a"
	case seconds < 60:
		return fmt.Sprintf("%.2fs", seconds)
	case seconds < 3600:
		return fmt.Sprintf("%.1fm", seconds/60)
	case seconds < 86400:
		return fmt.Sprintf("%.1fh", seconds/3600)
	default:
		return fmt.Sprintf("%.1fd", seconds/86400)
	}
}

func pct(part, whole int64) string {
	if whole == 0 {
		return "0.00%"
	}
	return fmt.Sprintf("%.2f%%", 100*float64(part)/float64(whole))
}

// ---- Section 4: headline dataset counts ----

// Section4 summarizes the dataset totals of §3/§4.
func Section4(ds *core.Dataset) *Report { return runOne(ds, newSection4Acc())[0] }

// ---- Table 1: firehose event types ----

// Table1 reproduces the firehose event-type breakdown.
func Table1(ds *core.Dataset) *Report { return runOne(ds, newTable1Acc())[0] }

// ---- Table 2: registrar concentration ----

// RegistrarRow is one registrar's share of IANA-identified domains.
type RegistrarRow struct {
	IANAID int
	Name   string
	Count  int
	Share  float64
}

// RegistrarConcentration computes Table 2's rows.
func RegistrarConcentration(ds *core.Dataset) []RegistrarRow {
	_, sh, _ := runOneShard(ds, newTable2Acc())
	return sh.(*table2Shard).rows()
}

// Table2 renders the registrar concentration table (top 7, as in the
// paper).
func Table2(ds *core.Dataset) *Report { return runOne(ds, newTable2Acc())[0] }

func renderTable2(rows []RegistrarRow, withID int) *Report {
	r := &Report{
		ID:     "T2",
		Title:  "Domain name handles per registrar",
		Header: []string{"IANA ID", "Registrar Name", "# Total", "Share (%)"},
	}
	top4 := 0
	for i, row := range rows {
		if i < 4 {
			top4 += row.Count
		}
		if i >= 7 {
			break
		}
		r.Rows = append(r.Rows, []string{
			fmt.Sprint(row.IANAID), row.Name, fmt.Sprint(row.Count),
			fmt.Sprintf("%.2f%%", 100*row.Share),
		})
	}
	r.Notes = append(r.Notes,
		fmt.Sprintf("registrars observed: %d; domains with IANA ID: %d", len(rows), withID),
		fmt.Sprintf("top-4 registrar share: %s", pct(int64(top4), int64(withID))))
	return r
}

// ---- Table 3: top community labelers ----

// LabelerVolume pairs a labeler with its applied-label count.
type LabelerVolume struct {
	Labeler core.Labeler
	Applied int
}

// CommunityTop returns community labelers ranked by labels applied.
func CommunityTop(ds *core.Dataset) []LabelerVolume {
	_, sh, _ := runOneShard(ds, newTable3Acc())
	return communityTopFrom(ds.Labelers, sh.(*table3Shard).counts)
}

// Table3 renders the top-5 community labelers.
func Table3(ds *core.Dataset) *Report { return runOne(ds, newTable3Acc())[0] }

func renderTable3(ranked []LabelerVolume) *Report {
	r := &Report{
		ID:     "T3",
		Title:  "Top 5 community labelers by number of labels applied",
		Header: []string{"Rank", "# Applied", "Name", "Likes", "Operator", "Description"},
	}
	for i, lv := range ranked {
		if i >= 5 {
			break
		}
		r.Rows = append(r.Rows, []string{
			fmt.Sprint(i + 1), fmt.Sprint(lv.Applied), lv.Labeler.Name,
			fmt.Sprint(lv.Labeler.Likes), lv.Labeler.Operator, lv.Labeler.About,
		})
	}
	return r
}

// ---- Table 4: label targets ----

// Table4 renders label targets with their most-applied values.
func Table4(ds *core.Dataset) *Report { return runOne(ds, newTable4Acc())[0] }

// KV is a counted key.
type KV struct {
	Key   string
	Count int
}

// topKVs sorts counted keys by count (desc) with a total key tie-break
// and truncates to k.
func topKVs(out []KV, k int) []KV {
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Key < out[j].Key
	})
	if len(out) > k {
		out = out[:k]
	}
	return out
}

func topK(m map[string]int, k int) []KV {
	kvs := make([]KV, 0, len(m))
	//lint:ordered topKVs totally orders kvs (count desc, key asc) before truncation
	for key, c := range m {
		kvs = append(kvs, KV{key, c})
	}
	return topKVs(kvs, k)
}

// ---- Table 6: labeler reaction times ----

// ReactionRow is one labeler's Table 6 row.
type ReactionRow struct {
	DID       string
	Name      string
	Official  bool
	TopValues []string
	Unique    int
	Total     int
	Share     float64
	MedianSec float64
	IQDSec    float64
}

// ReactionTimes computes per-labeler reaction-time statistics over
// fresh posts (as the paper does: only posts first seen on the
// firehose during the window).
func ReactionTimes(ds *core.Dataset) []ReactionRow {
	w, sh, t := runOneShard(ds, newReactionAcc())
	rows, _ := sh.(*reactionShard).reactionRows(w, t)
	return rows
}

// Table6 renders the reaction-time table.
func Table6(ds *core.Dataset) *Report { return runOne(ds, newReactionAcc())[0] }

func renderTable6(rows []ReactionRow) *Report {
	r := &Report{
		ID:     "T6",
		Title:  "Reaction time of labelers to posts published via the Firehose",
		Header: []string{"Rank", "Labeler", "Top Values", "# Unique", "# Total", "Share (%)", "Median", "IQD"},
	}
	for i, row := range rows {
		r.Rows = append(r.Rows, []string{
			fmt.Sprint(i + 1), row.Name, strings.Join(row.TopValues, ", "),
			fmt.Sprint(row.Unique), fmt.Sprint(row.Total),
			fmt.Sprintf("%.2f%%", 100*row.Share),
			FormatDuration(row.MedianSec), FormatDuration(row.IQDSec),
		})
	}
	return r
}

// ---- Section 5: identity statistics ----

// IdentityStats aggregates §5's headline identity numbers.
type IdentityStats struct {
	Users           int
	BskySocialShare float64
	DIDWeb          int
	AltHandles      int
	RegisteredDoms  int
	TXTShare        float64
	WellKnownShare  float64
	TrancoShare     float64
	HandleUpdates   int
	UpdatingDIDs    int
	FinalBskyShare  float64
}

// Identity computes the §5 statistics.
func Identity(ds *core.Dataset) IdentityStats {
	w, sh, _ := runOneShard(ds, newSection5Acc())
	return sh.(*section5Shard).stats(w)
}

// Section5 renders the identity statistics.
func Section5(ds *core.Dataset) *Report { return runOne(ds, newSection5Acc())[0] }

func renderSection5(st IdentityStats) *Report {
	r := &Report{
		ID:     "S5",
		Title:  "(De)centralized identity",
		Header: []string{"metric", "value"},
	}
	add := func(k, v string) { r.Rows = append(r.Rows, []string{k, v}) }
	add("users", fmt.Sprint(st.Users))
	add("bsky.social handle share", fmt.Sprintf("%.2f%%", 100*st.BskySocialShare))
	add("alternative FQDN handles", fmt.Sprint(st.AltHandles))
	add("did:web identities", fmt.Sprint(st.DIDWeb))
	add("registered domains (eTLD+1)", fmt.Sprint(st.RegisteredDoms))
	add("DNS TXT ownership proofs", fmt.Sprintf("%.2f%%", 100*st.TXTShare))
	add("well-known ownership proofs", fmt.Sprintf("%.2f%%", 100*st.WellKnownShare))
	add("domains in Tranco top-1M", fmt.Sprintf("%.2f%%", 100*st.TrancoShare))
	add("handle updates", fmt.Sprint(st.HandleUpdates))
	add("unique updating DIDs", fmt.Sprint(st.UpdatingDIDs))
	add("final handles under bsky.social", fmt.Sprintf("%.2f%%", 100*st.FinalBskyShare))
	return r
}

func monthOf(t time.Time) time.Time {
	return time.Date(t.Year(), t.Month(), 1, 0, 0, 0, 0, time.UTC)
}
