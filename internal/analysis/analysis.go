// Package analysis computes every statistic in the paper's evaluation
// (§4–§7) from a core.Dataset and renders the tables and figure series
// the paper reports. Each Table*/Figure* function returns a Report —
// a titled grid — plus, where useful for programmatic use, typed rows.
package analysis

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"blueskies/internal/core"
)

// Report is one rendered table or figure series.
type Report struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// String renders the report as aligned text.
func (r *Report) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s: %s ==\n", r.ID, r.Title)
	widths := make([]int, len(r.Header))
	for i, h := range r.Header {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[min(i, len(widths)-1)], cell)
		}
		sb.WriteByte('\n')
	}
	line(r.Header)
	for _, row := range r.Rows {
		line(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&sb, "# %s\n", n)
	}
	return sb.String()
}

// ---- statistics helpers ----

// Median returns the median of xs (NaN when empty).
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// Quantile returns the q-quantile of xs using nearest-rank.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	idx := int(q * float64(len(cp)-1))
	return cp[idx]
}

// IQD returns the inter-quartile distance (Q3 − Q1).
func IQD(xs []float64) float64 {
	return Quantile(xs, 0.75) - Quantile(xs, 0.25)
}

// Pearson computes the correlation coefficient of two equal-length
// samples.
func Pearson(xs, ys []float64) float64 {
	n := float64(len(xs))
	if n == 0 || len(xs) != len(ys) {
		return math.NaN()
	}
	var sx, sy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
	}
	mx, my := sx/n, sy/n
	var cov, vx, vy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		cov += dx * dy
		vx += dx * dx
		vy += dy * dy
	}
	if vx == 0 || vy == 0 {
		return 0
	}
	return cov / math.Sqrt(vx*vy)
}

// FormatDuration renders a reaction time the way the paper's figures
// label axes (0.1s … 1d).
func FormatDuration(seconds float64) string {
	switch {
	case math.IsNaN(seconds):
		return "n/a"
	case seconds < 60:
		return fmt.Sprintf("%.2fs", seconds)
	case seconds < 3600:
		return fmt.Sprintf("%.1fm", seconds/60)
	case seconds < 86400:
		return fmt.Sprintf("%.1fh", seconds/3600)
	default:
		return fmt.Sprintf("%.1fd", seconds/86400)
	}
}

func pct(part, whole int64) string {
	if whole == 0 {
		return "0.00%"
	}
	return fmt.Sprintf("%.2f%%", 100*float64(part)/float64(whole))
}

// ---- Section 4: headline dataset counts ----

// Section4 summarizes the dataset totals of §3/§4.
func Section4(ds *core.Dataset) *Report {
	posts, likes, reposts, follows, blocks := ds.TotalOps()
	r := &Report{
		ID:     "S4",
		Title:  "Dataset totals (scaled 1:" + fmt.Sprint(ds.Scale) + ")",
		Header: []string{"metric", "value"},
	}
	add := func(k string, v any) { r.Rows = append(r.Rows, []string{k, fmt.Sprint(v)}) }
	add("users", len(ds.Users))
	add("likes (accumulated ops)", likes)
	add("posts (accumulated ops)", posts)
	add("follows (accumulated ops)", follows)
	add("reposts (accumulated ops)", reposts)
	add("blocks (accumulated ops)", blocks)
	add("firehose events", ds.Firehose.Total())
	add("non-Bluesky lexicon events", ds.NonBskyEvents)
	add("feed generators", len(ds.FeedGens))
	add("labelers announced", len(ds.Labelers))
	add("label interactions", len(ds.Labels))
	return r
}

// ---- Table 1: firehose event types ----

// Table1 reproduces the firehose event-type breakdown.
func Table1(ds *core.Dataset) *Report {
	e := ds.Firehose
	total := e.Total()
	return &Report{
		ID:     "T1",
		Title:  "Overview of Firehose event types",
		Header: []string{"Event Type", "# Total", "Share (%)"},
		Rows: [][]string{
			{"Repo Commit", fmt.Sprint(e.Commits), pct(e.Commits, total)},
			{"Identity Update", fmt.Sprint(e.Identity), pct(e.Identity, total)},
			{"User Handle Update", fmt.Sprint(e.Handle), pct(e.Handle, total)},
			{"Repo Tombstone", fmt.Sprint(e.Tombstone), pct(e.Tombstone, total)},
		},
	}
}

// ---- Table 2: registrar concentration ----

// RegistrarRow is one registrar's share of IANA-identified domains.
type RegistrarRow struct {
	IANAID int
	Name   string
	Count  int
	Share  float64
}

// RegistrarConcentration computes Table 2's rows.
func RegistrarConcentration(ds *core.Dataset) []RegistrarRow {
	counts := map[int]*RegistrarRow{}
	total := 0
	for _, d := range ds.Domains {
		if d.IANAID == 0 {
			continue
		}
		total++
		row, ok := counts[d.IANAID]
		if !ok {
			row = &RegistrarRow{IANAID: d.IANAID, Name: d.RegistrarName}
			counts[d.IANAID] = row
		}
		row.Count++
	}
	rows := make([]RegistrarRow, 0, len(counts))
	for _, row := range counts {
		row.Share = float64(row.Count) / float64(total)
		rows = append(rows, *row)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Count > rows[j].Count })
	return rows
}

// Table2 renders the registrar concentration table (top 7, as in the
// paper).
func Table2(ds *core.Dataset) *Report {
	rows := RegistrarConcentration(ds)
	r := &Report{
		ID:     "T2",
		Title:  "Domain name handles per registrar",
		Header: []string{"IANA ID", "Registrar Name", "# Total", "Share (%)"},
	}
	top4 := 0
	for i, row := range rows {
		if i < 4 {
			top4 += row.Count
		}
		if i >= 7 {
			break
		}
		r.Rows = append(r.Rows, []string{
			fmt.Sprint(row.IANAID), row.Name, fmt.Sprint(row.Count),
			fmt.Sprintf("%.2f%%", 100*row.Share),
		})
	}
	var withID int
	for _, d := range ds.Domains {
		if d.IANAID != 0 {
			withID++
		}
	}
	r.Notes = append(r.Notes,
		fmt.Sprintf("registrars observed: %d; domains with IANA ID: %d", len(rows), withID),
		fmt.Sprintf("top-4 registrar share: %s", pct(int64(top4), int64(withID))))
	return r
}

// ---- Table 3: top community labelers ----

// LabelerVolume pairs a labeler with its applied-label count.
type LabelerVolume struct {
	Labeler core.Labeler
	Applied int
}

// CommunityTop returns community labelers ranked by labels applied.
func CommunityTop(ds *core.Dataset) []LabelerVolume {
	byDID := map[string]int{}
	for _, l := range ds.Labels {
		if !l.Neg {
			byDID[l.Src]++
		}
	}
	var out []LabelerVolume
	for _, lb := range ds.Labelers {
		if lb.Official {
			continue
		}
		if n := byDID[lb.DID]; n > 0 {
			out = append(out, LabelerVolume{Labeler: lb, Applied: n})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Applied > out[j].Applied })
	return out
}

// Table3 renders the top-5 community labelers.
func Table3(ds *core.Dataset) *Report {
	ranked := CommunityTop(ds)
	r := &Report{
		ID:     "T3",
		Title:  "Top 5 community labelers by number of labels applied",
		Header: []string{"Rank", "# Applied", "Name", "Likes", "Operator", "Description"},
	}
	for i, lv := range ranked {
		if i >= 5 {
			break
		}
		r.Rows = append(r.Rows, []string{
			fmt.Sprint(i + 1), fmt.Sprint(lv.Applied), lv.Labeler.Name,
			fmt.Sprint(lv.Labeler.Likes), lv.Labeler.Operator, lv.Labeler.About,
		})
	}
	return r
}

// ---- Table 4: label targets ----

// Table4 renders label targets with their most-applied values.
func Table4(ds *core.Dataset) *Report {
	type agg struct {
		objects map[string]bool
		values  map[string]int
	}
	kinds := map[core.SubjectKind]*agg{}
	for _, kind := range []core.SubjectKind{core.SubjectPost, core.SubjectAccount, core.SubjectMedia, core.SubjectOther} {
		kinds[kind] = &agg{objects: map[string]bool{}, values: map[string]int{}}
	}
	var total int64
	for _, l := range ds.Labels {
		if l.Neg {
			continue
		}
		a := kinds[l.Kind]
		if a == nil {
			continue
		}
		a.objects[l.URI] = true
		a.values[l.Val]++
		total++
	}
	r := &Report{
		ID:     "T4",
		Title:  "Label targets with most-applied labels",
		Header: []string{"Object Type", "# Objects", "Share (%)", "Top Labels"},
	}
	var totalObjects int64
	for _, a := range kinds {
		totalObjects += int64(len(a.objects))
	}
	for _, kind := range []core.SubjectKind{core.SubjectPost, core.SubjectAccount, core.SubjectMedia, core.SubjectOther} {
		a := kinds[kind]
		top := topK(a.values, 5)
		var tl []string
		for _, kv := range top {
			tl = append(tl, fmt.Sprintf("%s (%d)", kv.Key, kv.Count))
		}
		r.Rows = append(r.Rows, []string{
			string(kind), fmt.Sprint(len(a.objects)),
			pct(int64(len(a.objects)), totalObjects), strings.Join(tl, ", "),
		})
	}
	return r
}

// KV is a counted key.
type KV struct {
	Key   string
	Count int
}

func topK(m map[string]int, k int) []KV {
	out := make([]KV, 0, len(m))
	for key, c := range m {
		out = append(out, KV{key, c})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Key < out[j].Key
	})
	if len(out) > k {
		out = out[:k]
	}
	return out
}

// ---- Table 6: labeler reaction times ----

// ReactionRow is one labeler's Table 6 row.
type ReactionRow struct {
	DID       string
	Name      string
	Official  bool
	TopValues []string
	Unique    int
	Total     int
	Share     float64
	MedianSec float64
	IQDSec    float64
}

// ReactionTimes computes per-labeler reaction-time statistics over
// fresh posts (as the paper does: only posts first seen on the
// firehose during the window).
func ReactionTimes(ds *core.Dataset) []ReactionRow {
	byDID := map[string]*ReactionRow{}
	rts := map[string][]float64{}
	values := map[string]map[string]int{}
	names := map[string]core.Labeler{}
	for _, lb := range ds.Labelers {
		names[lb.DID] = lb
	}
	var total int
	for _, l := range ds.Labels {
		if l.Neg || !l.FreshSubject || l.Kind != core.SubjectPost {
			continue
		}
		row, ok := byDID[l.Src]
		if !ok {
			lb := names[l.Src]
			row = &ReactionRow{DID: l.Src, Name: lb.Name, Official: lb.Official}
			byDID[l.Src] = row
			values[l.Src] = map[string]int{}
		}
		row.Total++
		total++
		values[l.Src][l.Val]++
		rts[l.Src] = append(rts[l.Src], l.ReactionTime().Seconds())
	}
	rows := make([]ReactionRow, 0, len(byDID))
	for did, row := range byDID {
		row.MedianSec = Median(rts[did])
		row.IQDSec = IQD(rts[did])
		row.Share = float64(row.Total) / float64(total)
		row.Unique = len(values[did])
		for _, kv := range topK(values[did], 3) {
			row.TopValues = append(row.TopValues, kv.Key)
		}
		rows = append(rows, *row)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Total > rows[j].Total })
	return rows
}

// Table6 renders the reaction-time table.
func Table6(ds *core.Dataset) *Report {
	rows := ReactionTimes(ds)
	r := &Report{
		ID:     "T6",
		Title:  "Reaction time of labelers to posts published via the Firehose",
		Header: []string{"Rank", "Labeler", "Top Values", "# Unique", "# Total", "Share (%)", "Median", "IQD"},
	}
	for i, row := range rows {
		r.Rows = append(r.Rows, []string{
			fmt.Sprint(i + 1), row.Name, strings.Join(row.TopValues, ", "),
			fmt.Sprint(row.Unique), fmt.Sprint(row.Total),
			fmt.Sprintf("%.2f%%", 100*row.Share),
			FormatDuration(row.MedianSec), FormatDuration(row.IQDSec),
		})
	}
	return r
}

// ---- Section 5: identity statistics ----

// IdentityStats aggregates §5's headline identity numbers.
type IdentityStats struct {
	Users           int
	BskySocialShare float64
	DIDWeb          int
	AltHandles      int
	RegisteredDoms  int
	TXTShare        float64
	WellKnownShare  float64
	TrancoShare     float64
	HandleUpdates   int
	UpdatingDIDs    int
	FinalBskyShare  float64
}

// Identity computes the §5 statistics.
func Identity(ds *core.Dataset) IdentityStats {
	var st IdentityStats
	st.Users = len(ds.Users)
	var bsky, txt, wk int
	for _, u := range ds.Users {
		if strings.HasSuffix(u.Handle, ".bsky.social") {
			bsky++
		} else {
			st.AltHandles++
		}
		if u.DIDMethod == "web" {
			st.DIDWeb++
		}
		switch u.Proof {
		case core.ProofDNSTXT:
			txt++
		case core.ProofWellKnown:
			wk++
		}
	}
	st.BskySocialShare = float64(bsky) / float64(st.Users)
	if txt+wk > 0 {
		st.TXTShare = float64(txt) / float64(txt+wk)
		st.WellKnownShare = float64(wk) / float64(txt+wk)
	}
	st.RegisteredDoms = len(ds.Domains)
	tranco := 0
	for _, d := range ds.Domains {
		if d.TrancoRank > 0 {
			tranco++
		}
	}
	if len(ds.Domains) > 0 {
		st.TrancoShare = float64(tranco) / float64(len(ds.Domains))
	}
	st.HandleUpdates = len(ds.HandleUpdates)
	dids := map[string]bool{}
	toBsky := 0
	final := map[string]string{}
	for _, hu := range ds.HandleUpdates {
		dids[hu.DID] = true
		final[hu.DID] = hu.NewHandle
	}
	for _, h := range final {
		if strings.HasSuffix(h, ".bsky.social") {
			toBsky++
		}
	}
	st.UpdatingDIDs = len(dids)
	if len(final) > 0 {
		st.FinalBskyShare = float64(toBsky) / float64(len(final))
	}
	return st
}

// Section5 renders the identity statistics.
func Section5(ds *core.Dataset) *Report {
	st := Identity(ds)
	r := &Report{
		ID:     "S5",
		Title:  "(De)centralized identity",
		Header: []string{"metric", "value"},
	}
	add := func(k, v string) { r.Rows = append(r.Rows, []string{k, v}) }
	add("users", fmt.Sprint(st.Users))
	add("bsky.social handle share", fmt.Sprintf("%.2f%%", 100*st.BskySocialShare))
	add("alternative FQDN handles", fmt.Sprint(st.AltHandles))
	add("did:web identities", fmt.Sprint(st.DIDWeb))
	add("registered domains (eTLD+1)", fmt.Sprint(st.RegisteredDoms))
	add("DNS TXT ownership proofs", fmt.Sprintf("%.2f%%", 100*st.TXTShare))
	add("well-known ownership proofs", fmt.Sprintf("%.2f%%", 100*st.WellKnownShare))
	add("domains in Tranco top-1M", fmt.Sprintf("%.2f%%", 100*st.TrancoShare))
	add("handle updates", fmt.Sprint(st.HandleUpdates))
	add("unique updating DIDs", fmt.Sprint(st.UpdatingDIDs))
	add("final handles under bsky.social", fmt.Sprintf("%.2f%%", 100*st.FinalBskyShare))
	return r
}

func monthOf(t time.Time) time.Time {
	return time.Date(t.Year(), t.Month(), 1, 0, 0, 0, 0, time.UTC)
}
