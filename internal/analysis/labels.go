package analysis

import (
	"fmt"

	"blueskies/internal/core"
)

// LabelValueStats reproduces the §6.2 label-value bookkeeping: the
// distinct-value census before and after cleaning (dropping negations
// without a preceding application), the share of objects labeled by
// multiple services, and objects receiving the same value from
// different labelers.
type LabelValueStats struct {
	DistinctRaw     int
	DistinctCleaned int
	LabeledObjects  int
	// MultiServiceObjects counts objects labeled by >1 service;
	// MultiServiceShare is its share of labeled objects (paper: 3.2 %).
	MultiServiceObjects int
	MultiServiceShare   float64
	// SameValueDifferentSrc counts objects carrying the same value
	// from different labelers (paper: 9 objects).
	SameValueDifferentSrc int
}

// LabelValues computes the §6.2 statistics.
func LabelValues(ds *core.Dataset) LabelValueStats {
	_, sh, t := runOneShard(ds, newSection6Acc())
	return sh.(*section6Shard).stats(t)
}

// HostingMix reproduces §6.1's endpoint analysis: 65 % of labeler
// services on cloud infrastructure, 10 % residential, the rest
// unreachable.
type HostingMix struct {
	Cloud       int
	Residential int
	Unknown     int
}

// LabelerHosting computes the hosting classification counts.
func LabelerHosting(ds *core.Dataset) HostingMix { return labelerHosting(ds.Labelers) }

func labelerHosting(labelers []core.Labeler) HostingMix {
	var m HostingMix
	for _, lb := range labelers {
		switch lb.Hosting {
		case "cloud":
			m.Cloud++
		case "residential":
			m.Residential++
		default:
			m.Unknown++
		}
	}
	return m
}

// Section6 renders the §6 label/labeler bookkeeping.
func Section6(ds *core.Dataset) *Report { return runOne(ds, newSection6Acc())[0] }

func renderSection6(labelers []core.Labeler, st LabelValueStats) *Report {
	hm := labelerHosting(labelers)
	total := len(labelers)
	r := &Report{
		ID:     "S6",
		Title:  "Content moderation bookkeeping",
		Header: []string{"metric", "value"},
	}
	add := func(k, v string) { r.Rows = append(r.Rows, []string{k, v}) }
	add("distinct label values (raw)", fmt.Sprint(st.DistinctRaw))
	add("distinct label values (cleaned)", fmt.Sprint(st.DistinctCleaned))
	add("labeled objects", fmt.Sprint(st.LabeledObjects))
	add("objects labeled by multiple services", fmt.Sprintf("%d (%.1f%%)", st.MultiServiceObjects, 100*st.MultiServiceShare))
	add("same value from different services", fmt.Sprint(st.SameValueDifferentSrc))
	add("labelers on cloud hosting", fmt.Sprintf("%d (%.0f%%)", hm.Cloud, 100*float64(hm.Cloud)/float64(total)))
	add("labelers on residential addresses", fmt.Sprintf("%d (%.0f%%)", hm.Residential, 100*float64(hm.Residential)/float64(total)))
	add("labelers with no reachable endpoint", fmt.Sprintf("%d (%.0f%%)", hm.Unknown, 100*float64(hm.Unknown)/float64(total)))
	r.Notes = append(r.Notes, "paper: 196 of 222 values after cleaning; 3.2% multi-labeled; 65% cloud, 10% residential, 26% unreachable")
	return r
}
