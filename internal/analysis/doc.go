// Package analysis computes every statistic in the paper's evaluation
// (§4–§7) and renders the tables and figure series the paper reports.
//
// # Architecture: Source → Accumulator → two-level merge
//
// The computation is organized so that one corpus traversal feeds
// every report, wherever the corpus lives:
//
//	Accumulator  one report's computation: declares the collections it
//	             consumes (Needs), allocates per-worker Shard state,
//	             merges shards, renders Reports from merged state
//	             (engine.go)
//	Source       one corpus traversal: streams record blocks through
//	             the registered accumulators and returns merged state.
//	             Four implementations cover the execution modes —
//	             DatasetSource   a materialized core.Dataset, sharded
//	                             across workers over contiguous index
//	                             ranges (source.go)
//	             StreamSource    a live record stream (firehose +
//	                             labeler subscriptions or a sequencer
//	                             replay), parallel over accumulator
//	                             groups, with stop-the-world snapshots
//	                             (stream.go)
//	             DiskSource      one partition of a disk-backed store,
//	                             streamed block by block — out-of-core
//	                             evaluation with one decoded block
//	                             resident per partition (disk.go);
//	                             ReaderSource is its transport-agnostic
//	                             core (any block reader, e.g. frames
//	                             shipped over the wire)
//	             StateSource     one partition's deserialized level-one
//	                             state — the remote execution mode: a
//	                             worker runs the traversal elsewhere
//	                             and ships MarshalPartitionState bytes
//	                             home for the fold (state.go,
//	                             internal/sched)
//	             MultiSource     a set of partition Sources of any of
//	                             the above kinds, folded through the
//	                             two-level merge (multi.go)
//	Engine       registers accumulators, drives a Source, renders; the
//	             paper's full evaluation is NewFullEngine, and RunAll /
//	             RunAllPartitioned / RunAllDisk are its entry points
//
// Level one of the merge is within a partition (worker shards fold in
// worker order); level two is across partitions (intern tables remap
// into one corpus id space, partition-local user indexes rebase by the
// manifest's bases, shard states fold in partition order). Between the
// two levels sits the snapshot layer: every Accumulator serializes its
// level-one-merged shard (MarshalShard/UnmarshalShard, DESIGN.md §9),
// so the fold consumes wire state from a remote worker exactly as it
// consumes in-process state.
//
// # Determinism contract
//
// For a fixed corpus the engine produces byte-identical reports at any
// worker count, any partition count, and from any source pairing —
// batch, stream, or disk. The parity goldens pin it: an n-way split
// evaluated through partitions matches the unsplit run
// (TestPartitionedBatchParityGolden), a replayed stream matches batch
// (TestStreamingParityGolden), and a spilled on-disk corpus matches
// the in-memory golden (TestDiskParityGolden). The rules that make it
// hold are described at the top of engine.go.
//
// The legacy per-table functions (Section4, Table1…Table6,
// Figure1…Figure12) are thin wrappers that run their single
// accumulator sequentially, so both paths render byte-identical
// Reports.
package analysis
