package analysis

import (
	"fmt"
	"strings"

	"blueskies/internal/cbor"
	"blueskies/internal/core"
)

// This file implements the shard-state snapshot layer: one partition's
// level-one-merged evaluation state — its render World, its label
// intern tables, and one merged Shard per registered accumulator —
// serialized as DAG-CBOR so a remote worker can run the level-one
// traversal and ship the result back for the local level-two fold
// (DESIGN.md §9). The split mirrors the engine's existing merge path:
//
//	level one   Source.Run → (World, []Shard, LabelTables)   [anywhere]
//	snapshot    MarshalPartitionState / UnmarshalPartitionState [wire]
//	level two   MultiSource.fold                              [local]
//
// A decoded state behaves exactly like the in-process triple under the
// fold — StateSource replays it as a Source, so remote partitions
// compose under MultiSource like disk, batch, and stream partitions
// do. Decoding validates every table-indexed id against the state's
// own intern-table sizes (StateBounds), so hostile wire bytes surface
// as errors, never as out-of-range indexing during the fold.

// StateVersion is the current partition-state wire format. Readers
// reject versions newer than they understand; adding optional fields
// is backward-compatible (the CBOR struct decoder ignores unknown
// keys), so the version only bumps on incompatible layout changes.
const StateVersion = 1

// wireWorld is the serialized render context. The corpus-level facts
// and the labeler enumeration ride in a core.RecordBlock (the same
// codec stream frames and disk blocks use); the follower-degree column
// and per-collection record counts travel alongside, since a remote
// fold needs them without the materialized users.
type wireWorld struct {
	Block         []byte  `cbor:"block"`
	Users         int     `cbor:"users,omitempty"`
	Posts         int     `cbor:"posts,omitempty"`
	Days          int     `cbor:"days,omitempty"`
	Labels        int     `cbor:"labels,omitempty"`
	FeedGens      int     `cbor:"feedGens,omitempty"`
	Domains       int     `cbor:"domains,omitempty"`
	HandleUpdates int     `cbor:"handleUpdates,omitempty"`
	Followers     []int32 `cbor:"followers,omitempty"`
}

// wireTables is the serialized label intern tables. Ids are positional
// (URIs[i] has id i, ExtraSrcs[k] has id -2-k), so the slices are the
// whole state; decode rebuilds the lookup maps.
type wireTables struct {
	URIs      []string `cbor:"uris,omitempty"`
	Vals      []string `cbor:"vals,omitempty"`
	ExtraSrcs []string `cbor:"extraSrcs,omitempty"`
}

// wirePartitionState is the versioned envelope around one partition's
// serialized level-one state. Accs fingerprints the accumulator set
// (each accumulator's report ids, in registration order), so a state
// produced by a worker running a different evaluation fails loudly at
// decode time instead of folding shards into the wrong accumulators.
type wirePartitionState struct {
	Version int         `cbor:"v"`
	Accs    []string    `cbor:"accs,omitempty"`
	World   *wireWorld  `cbor:"world"`
	Tables  *wireTables `cbor:"tables,omitempty"`
	Shards  [][]byte    `cbor:"shards,omitempty"`
}

// accFingerprint identifies an accumulator set across the wire.
func accFingerprint(accs []Accumulator) []string {
	fp := make([]string, 0, len(accs))
	for _, a := range accs {
		fp = append(fp, strings.Join(a.IDs(), ","))
	}
	return fp
}

// Fingerprint identifies an accumulator set for protocol handshakes:
// each accumulator's report ids, in registration order. A scheduler
// sends it with an evaluation request; partition states embed it, and
// decode rejects a mismatch.
func Fingerprint(accs []Accumulator) []string { return accFingerprint(accs) }

// Fingerprint identifies this engine's accumulator set.
func (e *Engine) Fingerprint() []string { return accFingerprint(e.accs) }

// MarshalPartitionState serializes one partition's level-one-merged
// state — the (World, []Shard, LabelTables) triple a Source.Run
// returns — for the cross-partition fold on another machine. shards
// must be in accs registration order. The encoding is deterministic:
// identical state yields identical bytes.
func MarshalPartitionState(accs []Accumulator, w *World, shards []Shard, t *LabelTables) ([]byte, error) {
	return MarshalPartitionStateFormat(accs, w, shards, t, core.DiskFormatVersion)
}

// MarshalPartitionStateFormat is MarshalPartitionState with the
// embedded world block encoded at an explicit block format — a worker
// answering a scheduler that only decodes older block formats encodes
// at the negotiated version (sched's EvalRequest.MaxFormat), so new
// workers stay readable by old schedulers.
func MarshalPartitionStateFormat(accs []Accumulator, w *World, shards []Shard, t *LabelTables, blockFormat int) ([]byte, error) {
	if len(shards) != len(accs) {
		return nil, fmt.Errorf("analysis: %d shards for %d accumulators", len(shards), len(accs))
	}
	block, err := core.MarshalBlockVersion(&core.RecordBlock{
		Header: &core.StreamHeader{
			Scale:         w.Scale,
			WindowStart:   w.WindowStart,
			WindowEnd:     w.WindowEnd,
			Firehose:      w.Firehose,
			NonBskyEvents: w.NonBskyEvents,
		},
		Labelers: w.Labelers,
	}, blockFormat)
	if err != nil {
		return nil, fmt.Errorf("analysis: encode world block: %w", err)
	}
	ws := &wireWorld{
		Block: block,
		Users: w.Users, Posts: w.Posts, Days: w.Days, Labels: w.Labels,
		FeedGens: w.FeedGens, Domains: w.Domains, HandleUpdates: w.HandleUpdates,
	}
	if w.users != nil {
		ws.Followers = make([]int32, len(w.users))
		for i := range w.users {
			ws.Followers[i] = int32(w.users[i].Followers)
		}
	} else {
		ws.Followers = w.followers
	}
	env := &wirePartitionState{
		Version: StateVersion,
		Accs:    accFingerprint(accs),
		World:   ws,
		Shards:  make([][]byte, len(accs)),
	}
	if t != nil {
		env.Tables = &wireTables{URIs: t.URIs, Vals: t.Vals, ExtraSrcs: t.ExtraSrcs}
	}
	for ai, a := range accs {
		blob, err := a.MarshalShard(shards[ai])
		if err != nil {
			return nil, fmt.Errorf("analysis: encode %s shard: %w", strings.Join(a.IDs(), ","), err)
		}
		env.Shards[ai] = blob
	}
	data, err := cbor.Marshal(env)
	if err != nil {
		return nil, fmt.Errorf("analysis: encode partition state: %w", err)
	}
	return data, nil
}

// UnmarshalPartitionState decodes MarshalPartitionState bytes produced
// for the same accumulator set, validating the version, the
// accumulator fingerprint, and every table-indexed id in the decoded
// shards. Hostile bytes error; they never panic or index out of range.
func UnmarshalPartitionState(accs []Accumulator, data []byte) (*World, []Shard, *LabelTables, error) {
	var env wirePartitionState
	if err := cbor.Unmarshal(data, &env); err != nil {
		return nil, nil, nil, fmt.Errorf("analysis: decode partition state: %w", err)
	}
	if env.Version < 1 || env.Version > StateVersion {
		return nil, nil, nil, fmt.Errorf("analysis: partition state version %d not supported (reader supports ≤ %d)", env.Version, StateVersion)
	}
	fp := accFingerprint(accs)
	if len(env.Accs) != len(fp) {
		return nil, nil, nil, fmt.Errorf("analysis: partition state carries %d accumulators, evaluation registers %d", len(env.Accs), len(fp))
	}
	for i := range fp {
		if env.Accs[i] != fp[i] {
			return nil, nil, nil, fmt.Errorf("analysis: partition state accumulator %d is %q, evaluation registers %q", i, env.Accs[i], fp[i])
		}
	}
	if len(env.Shards) != len(accs) {
		return nil, nil, nil, fmt.Errorf("analysis: partition state carries %d shards for %d accumulators", len(env.Shards), len(accs))
	}
	if env.World == nil {
		return nil, nil, nil, fmt.Errorf("analysis: partition state missing world")
	}
	world, err := worldFromWire(env.World)
	if err != nil {
		return nil, nil, nil, err
	}
	var tables *LabelTables
	bounds := StateBounds{Labelers: len(world.Labelers)}
	if env.Tables != nil {
		tables = newLabelTables()
		for _, s := range env.Tables.URIs {
			tables.internURI(s)
		}
		for _, s := range env.Tables.Vals {
			tables.internVal(s)
		}
		for _, s := range env.Tables.ExtraSrcs {
			tables.internExtraSrc(s)
		}
		if len(tables.URIs) != len(env.Tables.URIs) || len(tables.Vals) != len(env.Tables.Vals) ||
			len(tables.ExtraSrcs) != len(env.Tables.ExtraSrcs) {
			return nil, nil, nil, fmt.Errorf("analysis: partition state intern tables carry duplicate entries")
		}
		bounds.URIs = len(tables.URIs)
		bounds.Vals = len(tables.Vals)
		bounds.ExtraSrcs = len(tables.ExtraSrcs)
	}
	shards := make([]Shard, len(accs))
	for ai, a := range accs {
		sh, err := a.UnmarshalShard(env.Shards[ai], bounds)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("analysis: decode %s shard: %w", strings.Join(a.IDs(), ","), err)
		}
		shards[ai] = sh
	}
	return world, shards, tables, nil
}

func worldFromWire(ws *wireWorld) (*World, error) {
	b, err := core.UnmarshalBlock(ws.Block)
	if err != nil {
		return nil, fmt.Errorf("analysis: decode world block: %w", err)
	}
	w := &World{
		Labelers:      b.Labelers,
		Users:         ws.Users,
		Posts:         ws.Posts,
		Days:          ws.Days,
		Labels:        ws.Labels,
		FeedGens:      ws.FeedGens,
		Domains:       ws.Domains,
		HandleUpdates: ws.HandleUpdates,
		followers:     ws.Followers,
	}
	if w.followers == nil {
		w.followers = []int32{}
	}
	if h := b.Header; h != nil {
		w.Scale = h.Scale
		w.WindowStart = h.WindowStart
		w.WindowEnd = h.WindowEnd
		w.Firehose = h.Firehose
		w.NonBskyEvents = h.NonBskyEvents
	}
	if w.Users < 0 || w.Posts < 0 || w.Days < 0 || w.Labels < 0 ||
		w.FeedGens < 0 || w.Domains < 0 || w.HandleUpdates < 0 {
		return nil, fmt.Errorf("analysis: partition state carries negative record counts")
	}
	return w, nil
}

// Counts reports the per-collection record counts of a decoded world —
// what a scheduler cross-checks against the manifest's promises, the
// way DiskSource binds a block file to its manifest entry.
func (w *World) Counts() core.CollectionCounts {
	return core.CollectionCounts{
		Users: w.Users, Posts: w.Posts, Days: w.Days, Labels: w.Labels,
		FeedGens: w.FeedGens, Domains: w.Domains, HandleUpdates: w.HandleUpdates,
	}
}

// StateSource replays one partition's deserialized level-one state as
// a Source: Run hands the decoded triple straight to the level-two
// fold. Composed under MultiSource it is indistinguishable from the
// partition having been traversed in-process — the property the remote
// scheduler (internal/sched) is built on.
type StateSource struct {
	World  *World
	Shards []Shard
	Tables *LabelTables
}

// Run implements Source.
func (s *StateSource) Run(accs []Accumulator, _ int, _ RenderFunc) (*World, []Shard, *LabelTables, error) {
	if len(accs) != len(s.Shards) {
		return nil, nil, nil, fmt.Errorf("analysis: state source carries %d shards for %d accumulators", len(s.Shards), len(accs))
	}
	return s.World, s.Shards, s.Tables, nil
}

// Snapshot runs the engine's level-one traversal over src (with the
// engine's worker setting) and returns the serialized partition state —
// the remote worker's whole job.
func (e *Engine) Snapshot(src Source) ([]byte, error) {
	return e.SnapshotFormat(src, core.DiskFormatVersion)
}

// SnapshotFormat is Snapshot with the embedded world block encoded at
// an explicit block format (see MarshalPartitionStateFormat).
func (e *Engine) SnapshotFormat(src Source, blockFormat int) ([]byte, error) {
	world, shards, tables, err := src.Run(e.accs, e.workers, nil)
	if err != nil {
		return nil, err
	}
	return MarshalPartitionStateFormat(e.accs, world, shards, tables, blockFormat)
}

// RunLevelOne runs the engine's level-one traversal over src and
// returns the raw (World, []Shard, LabelTables) triple — the
// ingest-side work without any serialization, exported so benchmarks
// and tools can measure the collector/streamIngest path directly.
func (e *Engine) RunLevelOne(src Source) (*World, []Shard, *LabelTables, error) {
	return src.Run(e.accs, e.workers, nil)
}

// RestoreState decodes a Snapshot produced for this engine's
// accumulator set into a Source for the level-two fold.
func (e *Engine) RestoreState(data []byte) (*StateSource, error) {
	world, shards, tables, err := UnmarshalPartitionState(e.accs, data)
	if err != nil {
		return nil, err
	}
	return &StateSource{World: world, Shards: shards, Tables: tables}, nil
}

// ---- codec helpers shared by the accum_* state codecs ----

// marshalState encodes one shard's wire struct.
func marshalState(v any) ([]byte, error) { return cbor.Marshal(v) }

// unmarshalState decodes one shard's wire struct, rejecting trailing
// bytes (cbor.Unmarshal already does) and nil blobs.
func unmarshalState[T any](data []byte) (*T, error) {
	if data == nil {
		return nil, fmt.Errorf("missing shard state")
	}
	out := new(T)
	if err := cbor.Unmarshal(data, out); err != nil {
		return nil, err
	}
	return out, nil
}

// trimI64 re-slices away trailing zeros: by-id slices grow to
// whatever intern-table size their worker-merge pattern happened to
// see, so canonical wire state trims the semantically-empty tail
// (decoders and Merge tolerate any shorter length).
func trimI64(s []int64) []int64 {
	for len(s) > 0 && s[len(s)-1] == 0 {
		s = s[:len(s)-1]
	}
	return s
}

// trimBool is trimI64 for seen-flag columns.
func trimBool(s []bool) []bool {
	for len(s) > 0 && !s[len(s)-1] {
		s = s[:len(s)-1]
	}
	return s
}

// checkID validates a non-negative table-indexed id against its bound.
func checkID(kind string, id int32, bound int) error {
	if id < 0 || int(id) >= bound {
		return fmt.Errorf("%s id %d outside table of %d", kind, id, bound)
	}
	return nil
}

// checkLen validates that a by-id slice cannot out-index its remap.
func checkLen(kind string, n, bound int) error {
	if n > bound {
		return fmt.Errorf("%d %s entries exceed the %d-entry intern table", n, kind, bound)
	}
	return nil
}
