package analysis

import (
	"math"
	"strings"
	"testing"

	"blueskies/internal/core"
	"blueskies/internal/synth"
)

var ds = synth.Generate(synth.Config{Scale: 1000, Seed: 42})

func TestStatsHelpers(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	if Median(xs) != 3 {
		t.Fatalf("median = %v", Median(xs))
	}
	if Quantile(xs, 0) != 1 || Quantile(xs, 1) != 5 {
		t.Fatal("quantile extremes wrong")
	}
	if IQD(xs) != 2 { // Q3=4, Q1=2
		t.Fatalf("IQD = %v", IQD(xs))
	}
	if math.IsNaN(Median(xs)) {
		t.Fatal("median of non-empty is NaN")
	}
	if !math.IsNaN(Median(nil)) {
		t.Fatal("median of empty must be NaN")
	}
	// Perfect correlation.
	if r := Pearson([]float64{1, 2, 3}, []float64{2, 4, 6}); math.Abs(r-1) > 1e-9 {
		t.Fatalf("pearson = %v", r)
	}
	if r := Pearson([]float64{1, 2, 3}, []float64{6, 4, 2}); math.Abs(r+1) > 1e-9 {
		t.Fatalf("pearson = %v", r)
	}
}

func TestFormatDuration(t *testing.T) {
	cases := map[float64]string{
		0.58:    "0.58s",
		90:      "1.5m",
		7200:    "2.0h",
		172800:  "2.0d",
		1585404: "18.3d",
	}
	for in, want := range cases {
		if got := FormatDuration(in); got != want {
			t.Errorf("FormatDuration(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestTable1Shares(t *testing.T) {
	r := Table1(ds)
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	if r.Rows[0][0] != "Repo Commit" || !strings.HasPrefix(r.Rows[0][2], "99.7") {
		t.Fatalf("commit row = %v", r.Rows[0])
	}
}

func TestTable2NamecheapLeads(t *testing.T) {
	// Registrar shares need a larger domain population for stability.
	big := synth.Generate(synth.Config{Scale: 200, Seed: 42})
	rows := RegistrarConcentration(big)
	if len(rows) == 0 {
		t.Fatal("no registrar rows")
	}
	if rows[0].IANAID != 1068 {
		t.Fatalf("top registrar = %+v, want NameCheap (1068)", rows[0])
	}
	if rows[0].Share < 0.15 || rows[0].Share > 0.30 {
		t.Fatalf("NameCheap share = %.3f", rows[0].Share)
	}
	// Top-4 concentration ≈ half of all domains (paper: 50 %).
	var top4 float64
	for i := 0; i < 4 && i < len(rows); i++ {
		top4 += rows[i].Share
	}
	if top4 < 0.40 || top4 > 0.65 {
		t.Fatalf("top-4 share = %.3f, want ≈0.5", top4)
	}
}

func TestTable3TopIsAltText(t *testing.T) {
	ranked := CommunityTop(ds)
	if len(ranked) < 5 {
		t.Fatalf("only %d community labelers ranked", len(ranked))
	}
	if !strings.Contains(ranked[0].Labeler.Name, "Alt Text") {
		t.Fatalf("top community labeler = %q", ranked[0].Labeler.Name)
	}
	for i := 1; i < len(ranked); i++ {
		if ranked[i].Applied > ranked[i-1].Applied {
			t.Fatal("ranking not sorted")
		}
	}
}

func TestTable4PostsDominate(t *testing.T) {
	r := Table4(ds)
	if r.Rows[0][0] != string(core.SubjectPost) {
		t.Fatalf("first row = %v", r.Rows[0])
	}
	if !strings.HasPrefix(r.Rows[0][2], "99") {
		t.Fatalf("post share = %v", r.Rows[0][2])
	}
	// no-alt-text must appear among the post top labels.
	if !strings.Contains(r.Rows[0][3], "no-alt-text") {
		t.Fatalf("post top labels = %v", r.Rows[0][3])
	}
}

func TestTable5MatrixShape(t *testing.T) {
	r := Table5(ds)
	if len(r.Header) != 6 { // Feature + 5 platforms
		t.Fatalf("header = %v", r.Header)
	}
	// Regex rows: only Skyfeed (column 1) has "yes".
	for _, row := range r.Rows {
		if strings.HasPrefix(row[0], "Filter: regex") {
			if row[1] != "yes" {
				t.Fatalf("Skyfeed missing %s", row[0])
			}
			for i := 2; i < len(row); i++ {
				if row[i] == "yes" {
					t.Fatalf("%s supported by %s", row[0], r.Header[i])
				}
			}
		}
	}
}

func TestTable6AutomationGradient(t *testing.T) {
	rows := ReactionTimes(ds)
	if len(rows) < 6 {
		t.Fatalf("only %d labelers with fresh-post labels", len(rows))
	}
	// The highest-volume labelers must be fast (automated); the
	// smallest ones slow (manual) — the paper's core observation.
	fast := rows[0]
	if fast.MedianSec > 30 {
		t.Fatalf("top labeler median RT = %.1fs, want seconds", fast.MedianSec)
	}
	var slowFound bool
	for _, row := range rows {
		if row.Total < 50 && row.MedianSec > 600 {
			slowFound = true
			break
		}
	}
	if !slowFound {
		t.Fatal("no slow manual labeler found in the tail")
	}
}

func TestIdentityStats(t *testing.T) {
	st := Identity(ds)
	if st.BskySocialShare < 0.95 {
		t.Fatalf("bsky share = %.3f", st.BskySocialShare)
	}
	if st.DIDWeb != 6 {
		t.Fatalf("did:web = %d", st.DIDWeb)
	}
	if st.TXTShare < 0.9 {
		t.Fatalf("TXT share = %.3f", st.TXTShare)
	}
	if st.FinalBskyShare < 0.6 || st.FinalBskyShare > 0.9 {
		t.Fatalf("final bsky share = %.3f, want ≈0.757", st.FinalBskyShare)
	}
	if st.UpdatingDIDs > st.HandleUpdates {
		t.Fatal("more updating DIDs than updates")
	}
}

func TestFigure1GrowthShape(t *testing.T) {
	r := Figure1(ds)
	if len(r.Rows) < 50 {
		t.Fatalf("weeks = %d", len(r.Rows))
	}
	first := r.Rows[0]
	last := r.Rows[len(r.Rows)-1]
	if first[1] >= last[1] && len(first[1]) >= len(last[1]) {
		t.Fatalf("no growth: %v → %v", first, last)
	}
}

func TestFigure3NamedProvidersOnTop(t *testing.T) {
	r := Figure3(ds)
	if len(r.Rows) == 0 {
		t.Fatal("no rows")
	}
	found := false
	for _, row := range r.Rows {
		if row[0] == "swifties.social" {
			found = true
		}
	}
	if !found {
		t.Fatal("swifties.social not among top domains")
	}
}

func TestFigure4CommunityOvertakes(t *testing.T) {
	months := LabelsBySource(ds)
	if len(months) < 6 {
		t.Fatalf("months = %d", len(months))
	}
	// Before March 2024: no community labels.
	for _, m := range months {
		if m.Month.Before(synth.LabelersOpen.AddDate(0, -1, 0)) && m.Community > 0 {
			t.Fatalf("community labels before opening: %+v", m)
		}
	}
	// April 2024: community majority (paper: 88.7 %).
	var apr *MonthlyLabels
	for i := range months {
		if months[i].Month.Format("2006-01") == "2024-04" {
			apr = &months[i]
		}
	}
	if apr == nil {
		t.Fatal("no April 2024 bucket")
	}
	share := float64(apr.Community) / float64(apr.Community+apr.Bluesky)
	if share < 0.70 {
		t.Fatalf("April community share = %.3f, want ≈0.887", share)
	}
	if apr.Labelers < 20 {
		t.Fatalf("community labelers by April = %d", apr.Labelers)
	}
}

func TestFigure6ValueGradient(t *testing.T) {
	rows := ValueReactions(ds)
	byVal := map[string]ValueReaction{}
	for _, r := range rows {
		byVal[r.Val] = r
	}
	noAlt, ok := byVal["no-alt-text"]
	if !ok {
		t.Fatal("no-alt-text missing")
	}
	if noAlt.Median > 10 {
		t.Fatalf("no-alt-text median = %.1fs", noAlt.Median)
	}
	// Manual community values take much longer.
	if tr, ok := byVal["trolling"]; ok && tr.Median < noAlt.Median {
		t.Fatalf("trolling (%.1fs) faster than no-alt-text (%.1fs)", tr.Median, noAlt.Median)
	}
}

func TestFigure7Monotone(t *testing.T) {
	r := Figure7(ds)
	prev := -1
	for _, row := range r.Rows {
		var n int
		if _, err := sscan(row[1], &n); err != nil {
			t.Fatalf("bad count %q", row[1])
		}
		if n < prev {
			t.Fatalf("cumulative FG count decreased: %d → %d", prev, n)
		}
		prev = n
	}
}

func TestFigure8ArtDominates(t *testing.T) {
	r := Figure8(ds)
	if len(r.Rows) == 0 {
		t.Fatal("no words")
	}
	joined := ""
	for _, row := range r.Rows[:5] {
		joined += row[0] + " "
	}
	if !strings.Contains(joined, "art") && !strings.Contains(joined, "アート") && !strings.Contains(joined, "feed") {
		t.Fatalf("unexpected top words: %v", joined)
	}
}

func TestFigure9ExplicitContent(t *testing.T) {
	r := Figure9(ds)
	if len(r.Rows) == 0 {
		t.Fatal("no labeled-feed rows")
	}
	top := r.Rows[0][0]
	if top != "porn" && top != "sexual" && top != "spam" {
		t.Fatalf("top label of heavily-labeled feeds = %q", top)
	}
}

func TestFigure11CreatorsAtHighInDegree(t *testing.T) {
	bins := DegreeDistributions(ds)
	if len(bins) < 4 {
		t.Fatalf("bins = %d", len(bins))
	}
	// Creator density must rise with in-degree: compare low vs high
	// halves.
	var loC, loN, hiC, hiN int
	for i, b := range bins {
		if i < len(bins)/2 {
			loC += b.InFGCreators
			loN += b.InCount
		} else {
			hiC += b.InFGCreators
			hiN += b.InCount
		}
	}
	if hiN == 0 || loN == 0 {
		t.Fatalf("empty halves: %d %d", loN, hiN)
	}
	loD := float64(loC) / float64(loN)
	hiD := float64(hiC) / float64(hiN)
	if hiD <= loD {
		t.Fatalf("creator density must rise with in-degree: lo=%.4f hi=%.4f", loD, hiD)
	}
}

func TestFigure12SkyfeedParadox(t *testing.T) {
	shares := ProviderShares(ds)
	byName := map[string]ProviderShare{}
	for _, s := range shares {
		byName[s.Name] = s
	}
	sky := byName["Skyfeed"]
	good := byName["goodfeeds"]
	// Skyfeed dominates feeds but NOT posts; goodfeeds the reverse —
	// the paper's §7.2 observation.
	if sky.FeedShare < 0.5 {
		t.Fatalf("Skyfeed feed share = %.3f", sky.FeedShare)
	}
	if good.FeedShare > sky.FeedShare {
		t.Fatal("goodfeeds must host far fewer feeds")
	}
	if good.PostsTotal == 0 || float64(good.PostsTotal)/float64(good.Feeds) < float64(sky.PostsTotal)/float64(sky.Feeds) {
		t.Fatalf("goodfeeds must out-post per feed: good=%d/%d sky=%d/%d",
			good.PostsTotal, good.Feeds, sky.PostsTotal, sky.Feeds)
	}
	// Skyfeed leads likes.
	if sky.LikeShare < good.LikeShare {
		t.Fatal("Skyfeed must lead like share")
	}
}

func TestAllReportsRender(t *testing.T) {
	for _, r := range AllReports(ds) {
		s := r.String()
		if !strings.Contains(s, r.ID) || len(s) < 20 {
			t.Fatalf("report %s renders empty", r.ID)
		}
	}
}

func sscan(s string, n *int) (int, error) {
	return fmtSscan(s, n)
}

func TestSection6LabelBookkeeping(t *testing.T) {
	st := LabelValues(ds)
	if st.DistinctRaw < 30 || st.DistinctCleaned > st.DistinctRaw {
		t.Fatalf("distinct values: raw=%d cleaned=%d", st.DistinctRaw, st.DistinctCleaned)
	}
	if st.LabeledObjects == 0 {
		t.Fatal("no labeled objects")
	}
	// Mostly disjoint services (paper: 3.2 % multi-labeled).
	if st.MultiServiceShare > 0.25 {
		t.Fatalf("multi-service share = %.3f, want small", st.MultiServiceShare)
	}
}

func TestSection6HostingMix(t *testing.T) {
	hm := LabelerHosting(ds)
	total := hm.Cloud + hm.Residential + hm.Unknown
	if total != 62 {
		t.Fatalf("labelers = %d", total)
	}
	if hm.Cloud <= hm.Residential || hm.Unknown == 0 {
		t.Fatalf("hosting mix = %+v, want cloud-dominant with unknowns", hm)
	}
}

func TestSection6Report(t *testing.T) {
	r := Section6(ds)
	if len(r.Rows) != 8 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
}
