package analysis

import (
	"runtime"
	"testing"

	"blueskies/internal/core"
	"blueskies/internal/synth"
)

// TestEngineMatchesLegacyReports is the golden-equality gate: the
// single-pass engine must render byte-identical reports to the legacy
// per-table functions, at every worker count.
func TestEngineMatchesLegacyReports(t *testing.T) {
	legacy := AllReports(ds)
	for _, workers := range []int{1, 2, 3, 8} {
		got := RunAll(ds, workers)
		if len(got) != len(legacy) {
			t.Fatalf("workers=%d: %d reports, want %d", workers, len(got), len(legacy))
		}
		for i, r := range got {
			want := legacy[i]
			if r.ID != want.ID {
				t.Fatalf("workers=%d: report %d is %s, want %s", workers, i, r.ID, want.ID)
			}
			if r.String() != want.String() {
				t.Errorf("workers=%d: report %s differs from legacy:\n--- engine ---\n%s\n--- legacy ---\n%s",
					workers, r.ID, r.String(), want.String())
			}
		}
	}
}

// TestEngineWorkerCountInvariance pins the determinism contract
// directly: any two worker counts must agree byte-for-byte.
func TestEngineWorkerCountInvariance(t *testing.T) {
	one := RunAll(ds, 1)
	for _, workers := range []int{2, 5, 16} {
		many := RunAll(ds, workers)
		for i := range one {
			if one[i].String() != many[i].String() {
				t.Fatalf("workers=%d: report %s differs from workers=1", workers, one[i].ID)
			}
		}
	}
}

// TestEngineSubsetRegistration checks that a partial engine only
// renders what was registered and skips unneeded collections.
func TestEngineSubsetRegistration(t *testing.T) {
	reports := NewEngine(newTable2Acc(), newSection6Acc()).Workers(2).Run(ds)
	if len(reports) != 2 || reports[0].ID != "T2" || reports[1].ID != "S6" {
		ids := make([]string, len(reports))
		for i, r := range reports {
			ids[i] = r.ID
		}
		t.Fatalf("reports = %v, want [T2 S6]", ids)
	}
	if reports[0].String() != Table2(ds).String() {
		t.Fatal("partial-engine T2 differs from wrapper")
	}
	if reports[1].String() != Section6(ds).String() {
		t.Fatal("partial-engine S6 differs from wrapper")
	}
}

// TestRunAllCanonicalOrder pins the report ordering of the paper's
// evaluation.
func TestRunAllCanonicalOrder(t *testing.T) {
	reports := RunAll(ds, 0)
	if len(reports) != len(canonicalOrder) {
		t.Fatalf("reports = %d, want %d", len(reports), len(canonicalOrder))
	}
	for i, r := range reports {
		if r.ID != canonicalOrder[i] {
			t.Fatalf("report %d = %s, want %s", i, r.ID, canonicalOrder[i])
		}
	}
}

// TestAutoWorkers pins the worker autotuning: small corpora scan on
// one core (the merge/remap overhead dominates below
// minRecordsPerWorker records — the BenchmarkEngineWorkers
// regression), larger ones scale with record count up to GOMAXPROCS,
// and only the collections someone registered for count.
func TestAutoWorkers(t *testing.T) {
	full := Collection(0)
	for _, a := range NewFullEngine().accs {
		full |= a.Needs()
	}
	if w := autoWorkers(ds, full); w != 1 {
		t.Fatalf("autoWorkers on 1:1000 corpus = %d, want 1 (below %d records)", w, minRecordsPerWorker)
	}
	big := &core.Dataset{Posts: make([]core.Post, 3*minRecordsPerWorker)}
	if w := autoWorkers(big, ColPosts); w != min(3, runtime.GOMAXPROCS(0)) {
		t.Fatalf("autoWorkers on 3-share posts corpus = %d", w)
	}
	// The same corpus without a posts consumer counts zero records.
	if w := autoWorkers(big, ColDomains); w != 1 {
		t.Fatalf("autoWorkers without registered collections = %d, want 1", w)
	}
}

// TestEngineOnLargerWorld runs the golden comparison on a denser
// dataset where label/URI intern tables span multiple shards.
func TestEngineOnLargerWorld(t *testing.T) {
	if testing.Short() {
		t.Skip("larger world")
	}
	big := synth.Generate(synth.Config{Scale: 400, Seed: 7})
	legacy := AllReports(big)
	got := RunAll(big, 4)
	for i, r := range got {
		if r.String() != legacy[i].String() {
			t.Errorf("report %s differs on 1:400 world", r.ID)
		}
	}
}
