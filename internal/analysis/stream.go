package analysis

import (
	"runtime"
	"sync"

	"blueskies/internal/core"
)

// StreamSource feeds the engine's accumulators from a live record
// stream — the Collector's multiplexed firehose/labeler subscriptions
// or a replayed sequencer backlog — instead of a materialized dataset.
// Only the accumulator state, the append-only intern tables, and the
// World's scalar facts are retained; record blocks are dropped as soon
// as every accumulator has seen them, so memory never holds a second
// copy of the corpus.
//
// Concurrency model: a batch run parallelizes over data (contiguous
// index ranges per worker); a stream cannot, because record ranges are
// only discovered as they arrive. StreamSource parallelizes over
// accumulators instead: the registered accumulators are partitioned
// into worker groups, each group consumes the block sequence in order
// on its own goroutine, and the feeder interns label metadata once
// before fan-out. Every accumulator therefore sees exactly the
// one-worker batch traversal of its collections, which is what makes
// the final snapshot byte-identical to RunAll at any worker count.
//
// Snapshot semantics: snapshots are stop-the-world — the feeder sends
// a barrier through every group channel, waits until all in-flight
// blocks are consumed, renders from the quiescent state, and resumes.
// Renders never mutate shard state, and the intern tables and DID
// index only grow, so a snapshot is a consistent prefix of the stream.
type StreamSource struct {
	// Blocks is the record stream; closing it ends the run.
	Blocks <-chan core.RecordBlock
	// SnapshotEvery renders a full report snapshot each time this many
	// records have arrived since the last one (0 = final only).
	SnapshotEvery int
	// OnSnapshot receives each mid-run snapshot with the total record
	// count so far. The final state is returned by the engine, not
	// delivered here.
	OnSnapshot func(records int, reports []*Report)
}

// streamItem is one unit of group work: a feed closure tagged with its
// collection, or a barrier token.
type streamItem struct {
	col     Collection
	feed    func(s Shard)
	barrier *sync.WaitGroup
}

// Run implements Source. workers ≤ 0 autotunes to
// min(GOMAXPROCS, #accumulators).
func (src *StreamSource) Run(accs []Accumulator, workers int, render RenderFunc) (*World, []Shard, *LabelTables, error) {
	need := Collection(0)
	for _, a := range accs {
		need |= a.Needs()
	}
	w := workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > len(accs) {
		w = len(accs)
	}
	if w < 1 {
		w = 1
	}

	world := &World{followers: make([]int32, 0, 1024)}
	didIdx := make(map[string]int32)
	var tables *LabelTables
	if need&ColLabels != 0 {
		tables = newLabelTables()
	}

	// Partition accumulators round-robin into worker groups; compute
	// each group's need mask so whole groups skip irrelevant blocks.
	groups := make([][]int, w) // group → acc indexes
	groupNeed := make([]Collection, w)
	for ai, a := range accs {
		g := ai % w
		groups[g] = append(groups[g], ai)
		groupNeed[g] |= a.Needs()
	}

	var shards []Shard // allocated once the first block (header) arrives
	chans := make([]chan streamItem, w)
	var done sync.WaitGroup
	startGroups := func() {
		for g := 0; g < w; g++ {
			chans[g] = make(chan streamItem, 64)
			done.Add(1)
			go func(g int) {
				defer done.Done()
				for it := range chans[g] {
					if it.barrier != nil {
						it.barrier.Done()
						continue
					}
					for _, ai := range groups[g] {
						if accs[ai].Needs()&it.col != 0 {
							it.feed(shards[ai])
						}
					}
				}
			}(g)
		}
	}
	dispatch := func(col Collection, feed func(s Shard)) {
		for g := 0; g < w; g++ {
			if groupNeed[g]&col != 0 {
				chans[g] <- streamItem{col: col, feed: feed}
			}
		}
	}
	// flush barriers every group: when it returns, all dispatched
	// blocks have been consumed and shard state is quiescent.
	flush := func() {
		if shards == nil {
			return
		}
		var wg sync.WaitGroup
		wg.Add(w)
		for g := 0; g < w; g++ {
			chans[g] <- streamItem{barrier: &wg}
		}
		wg.Wait()
	}

	records, sinceSnap := 0, 0
	for b := range src.Blocks {
		// Corpus facts first: shard allocation and label enrichment
		// both read the world, and labeler announcements must precede
		// the labels that reference them.
		if b.Header != nil {
			world.Scale = b.Header.Scale
			world.WindowStart = b.Header.WindowStart
			world.WindowEnd = b.Header.WindowEnd
			world.Firehose = b.Header.Firehose
			world.NonBskyEvents = b.Header.NonBskyEvents
		}
		for _, lb := range b.Labelers {
			didIdx[lb.DID] = int32(len(world.Labelers))
			world.Labelers = append(world.Labelers, lb)
		}
		world.Firehose.Commits += b.Events.Commits
		world.Firehose.Identity += b.Events.Identity
		world.Firehose.Handle += b.Events.Handle
		world.Firehose.Tombstone += b.Events.Tombstone
		if b.Len() == 0 {
			continue
		}
		if shards == nil {
			shards = make([]Shard, len(accs))
			for ai, a := range accs {
				shards[ai] = a.NewShard(world)
			}
			startGroups()
		}
		if us := b.Users; len(us) > 0 {
			base := world.Users
			world.Users += len(us)
			for i := range us {
				world.followers = append(world.followers, int32(us[i].Followers))
			}
			if need&ColUsers != 0 {
				dispatch(ColUsers, func(s Shard) { s.Users(us, base) })
			}
		}
		if ps := b.Posts; len(ps) > 0 {
			base := world.Posts
			world.Posts += len(ps)
			if need&ColPosts != 0 {
				dispatch(ColPosts, func(s Shard) { s.Posts(ps, base) })
			}
		}
		if days := b.Days; len(days) > 0 {
			base := world.Days
			world.Days += len(days)
			if need&ColDays != 0 {
				dispatch(ColDays, func(s Shard) { s.Days(days, base) })
			}
		}
		if ls := b.Labels; len(ls) > 0 {
			base := world.Labels
			world.Labels += len(ls)
			if need&ColLabels != 0 {
				// Enrich once in the feeder; groups share the chunk
				// read-only. Unlike the batch path the Meta buffer is
				// per-block, since groups consume asynchronously.
				chunk := &LabelChunk{Labels: ls, Base: base}
				chunk.Meta = buildLabelMeta(world.Labelers, ls, nil, tables, didIdx)
				chunk.NumURIs = len(tables.URIs)
				chunk.NumVals = len(tables.Vals)
				dispatch(ColLabels, func(s Shard) { s.Labels(chunk) })
			}
		}
		if fs := b.FeedGens; len(fs) > 0 {
			base := world.FeedGens
			world.FeedGens += len(fs)
			if need&ColFeedGens != 0 {
				dispatch(ColFeedGens, func(s Shard) { s.FeedGens(fs, base) })
			}
		}
		if doms := b.Domains; len(doms) > 0 {
			base := world.Domains
			world.Domains += len(doms)
			if need&ColDomains != 0 {
				dispatch(ColDomains, func(s Shard) { s.Domains(doms, base) })
			}
		}
		if hus := b.HandleUpdates; len(hus) > 0 {
			base := world.HandleUpdates
			world.HandleUpdates += len(hus)
			if need&ColHandleUpdates != 0 {
				dispatch(ColHandleUpdates, func(s Shard) { s.HandleUpdates(hus, base) })
			}
		}

		n := b.Len()
		records += n
		sinceSnap += n
		if src.SnapshotEvery > 0 && sinceSnap >= src.SnapshotEvery && render != nil && src.OnSnapshot != nil {
			flush()
			src.OnSnapshot(records, render(world, shards, tables))
			sinceSnap = 0
		}
	}

	if shards == nil {
		// Empty stream: allocate zero-state shards so render works.
		shards = make([]Shard, len(accs))
		for ai, a := range accs {
			shards[ai] = a.NewShard(world)
		}
	} else {
		flush()
		for g := 0; g < w; g++ {
			close(chans[g])
		}
		done.Wait()
	}
	return world, shards, tables, nil
}
