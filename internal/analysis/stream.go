package analysis

import (
	"runtime"
	"sync"

	"blueskies/internal/core"
)

// StreamSource feeds the engine's accumulators from a live record
// stream — the Collector's multiplexed firehose/labeler subscriptions
// or a replayed sequencer backlog — instead of a materialized dataset.
// Only the accumulator state, the append-only intern tables, and the
// World's scalar facts are retained; record blocks are dropped as soon
// as every accumulator has seen them, so memory never holds a second
// copy of the corpus.
//
// Concurrency model: a batch run parallelizes over data (contiguous
// index ranges per worker); a stream cannot, because record ranges are
// only discovered as they arrive. StreamSource parallelizes over
// accumulators instead: the registered accumulators are partitioned
// into worker groups, each group consumes the block sequence in order
// on its own goroutine, and the feeder interns label metadata once
// before fan-out. Every accumulator therefore sees exactly the
// one-worker batch traversal of its collections, which is what makes
// the final snapshot byte-identical to RunAll at any worker count.
//
// Snapshot semantics: snapshots are stop-the-world — the feeder sends
// a barrier through every group channel, waits until all in-flight
// blocks are consumed, renders from the quiescent state, and resumes.
// Renders never mutate shard state, and the intern tables and DID
// index only grow, so a snapshot is a consistent prefix of the stream.
//
// The ingestion machinery lives in streamIngest so a partitioned run
// (MultiSource) can drive one ingest per partition stream and merge
// their quiescent states into corpus-wide snapshots.
type StreamSource struct {
	// Blocks is the record stream; closing it ends the run.
	Blocks <-chan core.RecordBlock
	// Base is this stream's partition offset within a partitioned
	// corpus: record blocks are fed with global base indexes
	// (offset + records seen so far). Zero for a standalone stream.
	Base core.CollectionCounts
	// SnapshotEvery renders a full report snapshot each time this many
	// records have arrived since the last one (0 = final only).
	SnapshotEvery int
	// OnSnapshot receives each mid-run snapshot with the total record
	// count so far. The final state is returned by the engine, not
	// delivered here.
	OnSnapshot func(records int, reports []*Report)
}

// streamItem is one unit of group work: a feed closure tagged with its
// collection, or a barrier token.
type streamItem struct {
	col     Collection
	feed    func(s Shard)
	barrier *sync.WaitGroup
}

// streamIngest is the per-stream ingestion state machine: accumulator
// worker groups, the append-only world/tables/DID-index, and the
// stop-the-world flush. One instance consumes one block sequence
// strictly in order.
type streamIngest struct {
	accs      []Accumulator
	need      Collection
	w         int
	base      core.CollectionCounts
	world     *World
	didIdx    map[string]int32
	tables    *LabelTables
	groups    [][]int // group → acc indexes
	groupNeed []Collection
	shards    []Shard // allocated once the first record block arrives
	chans     []chan streamItem
	done      sync.WaitGroup
	records   int
}

// newStreamIngest sizes the worker groups. workers ≤ 0 autotunes to
// min(GOMAXPROCS, #accumulators).
func newStreamIngest(accs []Accumulator, workers int, base core.CollectionCounts) *streamIngest {
	need := Collection(0)
	for _, a := range accs {
		need |= a.Needs()
	}
	w := workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > len(accs) {
		w = len(accs)
	}
	if w < 1 {
		w = 1
	}
	si := &streamIngest{
		accs:      accs,
		need:      need,
		w:         w,
		base:      base,
		world:     &World{followers: make([]int32, 0, 1024)},
		didIdx:    make(map[string]int32),
		groups:    make([][]int, w),
		groupNeed: make([]Collection, w),
		chans:     make([]chan streamItem, w),
	}
	if need&ColLabels != 0 {
		si.tables = newLabelTables()
	}
	// Partition accumulators round-robin into worker groups; compute
	// each group's need mask so whole groups skip irrelevant blocks.
	for ai, a := range accs {
		g := ai % w
		si.groups[g] = append(si.groups[g], ai)
		si.groupNeed[g] |= a.Needs()
	}
	return si
}

func (si *streamIngest) startGroups() {
	for g := 0; g < si.w; g++ {
		si.chans[g] = make(chan streamItem, 64)
		si.done.Add(1)
		go func(g int) {
			defer si.done.Done()
			for it := range si.chans[g] {
				if it.barrier != nil {
					it.barrier.Done()
					continue
				}
				for _, ai := range si.groups[g] {
					if si.accs[ai].Needs()&it.col != 0 {
						it.feed(si.shards[ai])
					}
				}
			}
		}(g)
	}
}

func (si *streamIngest) dispatch(col Collection, feed func(s Shard)) {
	for g := 0; g < si.w; g++ {
		if si.groupNeed[g]&col != 0 {
			si.chans[g] <- streamItem{col: col, feed: feed}
		}
	}
}

// flush barriers every group: when it returns, all dispatched blocks
// have been consumed and shard state is quiescent.
func (si *streamIngest) flush() {
	if si.shards == nil {
		return
	}
	var wg sync.WaitGroup
	wg.Add(si.w)
	for g := 0; g < si.w; g++ {
		si.chans[g] <- streamItem{barrier: &wg}
	}
	wg.Wait()
}

// apply ingests one record block and returns its record count.
func (si *streamIngest) apply(b core.RecordBlock) int { return si.applyColumnar(b, nil) }

// applyColumnar ingests one record block together with its decoded
// dictionary view, when the block codec produced one. The view lets
// label metadata fold into the intern tables one hash per *distinct*
// string per block (buildLabelMetaFused) instead of one per record —
// the zero-rehash ingest path. A nil or non-parallel view falls back
// to the per-record path; the resulting tables and metadata are
// byte-identical either way.
func (si *streamIngest) applyColumnar(b core.RecordBlock, db *core.DictBlock) int {
	world, need := si.world, si.need
	// Corpus facts first: shard allocation and label enrichment both
	// read the world, and labeler announcements must precede the
	// labels that reference them.
	if b.Header != nil {
		world.Scale = b.Header.Scale
		world.WindowStart = b.Header.WindowStart
		world.WindowEnd = b.Header.WindowEnd
		world.Firehose = b.Header.Firehose
		world.NonBskyEvents = b.Header.NonBskyEvents
	}
	for _, lb := range b.Labelers {
		if _, dup := si.didIdx[lb.DID]; dup {
			continue // re-announcement (e.g. a reconnecting crawl)
		}
		si.didIdx[lb.DID] = int32(len(world.Labelers))
		world.Labelers = append(world.Labelers, lb)
	}
	world.Firehose.Commits += b.Events.Commits
	world.Firehose.Identity += b.Events.Identity
	world.Firehose.Handle += b.Events.Handle
	world.Firehose.Tombstone += b.Events.Tombstone
	if b.Len() == 0 {
		return 0
	}
	if si.shards == nil {
		si.shards = make([]Shard, len(si.accs))
		for ai, a := range si.accs {
			si.shards[ai] = a.NewShard(world)
		}
		si.startGroups()
	}
	if us := b.Users; len(us) > 0 {
		base := si.base.Users + world.Users
		world.Users += len(us)
		for i := range us {
			world.followers = append(world.followers, int32(us[i].Followers))
		}
		if need&ColUsers != 0 {
			si.dispatch(ColUsers, func(s Shard) { s.Users(us, base) })
		}
	}
	if ps := b.Posts; len(ps) > 0 {
		base := si.base.Posts + world.Posts
		world.Posts += len(ps)
		if need&ColPosts != 0 {
			si.dispatch(ColPosts, func(s Shard) { s.Posts(ps, base) })
		}
	}
	if days := b.Days; len(days) > 0 {
		base := si.base.Days + world.Days
		world.Days += len(days)
		if need&ColDays != 0 {
			si.dispatch(ColDays, func(s Shard) { s.Days(days, base) })
		}
	}
	if ls := b.Labels; len(ls) > 0 {
		base := si.base.Labels + world.Labels
		world.Labels += len(ls)
		if need&ColLabels != 0 {
			// Enrich once in the feeder; groups share the chunk
			// read-only. Unlike the batch path the Meta buffer is
			// per-block, since groups consume asynchronously.
			chunk := &LabelChunk{Labels: ls, Base: base}
			if db != nil && len(db.LabelSrc) == len(ls) {
				chunk.Meta = buildLabelMetaFused(world.Labelers, ls, db, nil, si.tables, si.didIdx)
			} else {
				chunk.Meta = buildLabelMeta(world.Labelers, ls, nil, si.tables, si.didIdx)
			}
			chunk.NumURIs = len(si.tables.URIs)
			chunk.NumVals = len(si.tables.Vals)
			si.dispatch(ColLabels, func(s Shard) { s.Labels(chunk) })
		}
	}
	if fs := b.FeedGens; len(fs) > 0 {
		base := si.base.FeedGens + world.FeedGens
		world.FeedGens += len(fs)
		if need&ColFeedGens != 0 {
			si.dispatch(ColFeedGens, func(s Shard) { s.FeedGens(fs, base) })
		}
	}
	if doms := b.Domains; len(doms) > 0 {
		base := si.base.Domains + world.Domains
		world.Domains += len(doms)
		if need&ColDomains != 0 {
			si.dispatch(ColDomains, func(s Shard) { s.Domains(doms, base) })
		}
	}
	if hus := b.HandleUpdates; len(hus) > 0 {
		base := si.base.HandleUpdates + world.HandleUpdates
		world.HandleUpdates += len(hus)
		if need&ColHandleUpdates != 0 {
			si.dispatch(ColHandleUpdates, func(s Shard) { s.HandleUpdates(hus, base) })
		}
	}
	n := b.Len()
	si.records += n
	return n
}

// finish flushes in-flight work, stops the groups, and allocates
// zero-state shards if no record block ever arrived (so rendering an
// empty stream works). The ingest must not be used afterwards.
func (si *streamIngest) finish() {
	if si.shards == nil {
		si.shards = make([]Shard, len(si.accs))
		for ai, a := range si.accs {
			si.shards[ai] = a.NewShard(si.world)
		}
		return
	}
	si.flush()
	for g := 0; g < si.w; g++ {
		close(si.chans[g])
	}
	si.done.Wait()
}

// Run implements Source. workers ≤ 0 autotunes to
// min(GOMAXPROCS, #accumulators).
func (src *StreamSource) Run(accs []Accumulator, workers int, render RenderFunc) (*World, []Shard, *LabelTables, error) {
	si := newStreamIngest(accs, workers, src.Base)
	sinceSnap := 0
	for b := range src.Blocks {
		sinceSnap += si.apply(b)
		if src.SnapshotEvery > 0 && sinceSnap >= src.SnapshotEvery && render != nil && src.OnSnapshot != nil {
			si.flush()
			src.OnSnapshot(si.records, render(si.world, si.shards, si.tables))
			sinceSnap = 0
		}
	}
	si.finish()
	return si.world, si.shards, si.tables, nil
}
