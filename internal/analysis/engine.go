package analysis

import (
	"fmt"
	"time"

	"blueskies/internal/core"
)

// This file implements the single-pass evaluation engine. The legacy
// API computed every table and figure with its own full dataset scan
// (~25 independent passes); the Engine registers one Accumulator per
// report, streams each record block of a Source through every
// registered accumulator exactly once, and renders from the merged
// state. The Source implementations (batch, stream, disk, remote
// state, multi-partition) are enumerated in doc.go.
//
// Determinism contract: for a fixed corpus the engine produces
// byte-identical reports at any worker count, from either source.
// Three rules make that hold — dataset shards cover contiguous index
// ranges and are merged in shard order (so concatenated slice state
// equals a sequential scan), shard state never sums floating point
// across records (integer counters and ordered float slices only;
// float math happens once at render), and every render sort carries a
// total tie-break. Streams add a fourth: each collection's records
// arrive in dataset order, and each accumulator consumes its streams
// sequentially, so stream state equals a one-worker scan.

// Collection identifies one record stream of a corpus traversal.
// Accumulators declare the streams they consume via Needs; the engine
// skips streams nobody registered for.
type Collection uint8

// Traversable dataset collections.
const (
	ColUsers Collection = 1 << iota
	ColPosts
	ColDays
	ColLabels
	ColFeedGens
	ColDomains
	ColHandleUpdates
)

// World is the render-time corpus context shared by every accumulator:
// the scalar dataset facts, the labeler population, and the per-user
// follower degrees that the feed-generator reports join against.
// Batch runs derive it from the materialized Dataset; streaming runs
// grow it append-only as header and record blocks arrive (so a
// snapshot sees a consistent prefix of the corpus).
type World struct {
	Scale                  int
	WindowStart, WindowEnd time.Time
	Firehose               core.EventCounts
	NonBskyEvents          int64
	// Labelers is the announced labeler population, in DID-index order.
	// Streams may extend it append-only; labels must never precede
	// their labeler's announcement.
	Labelers []core.Labeler

	// Record counts per collection (batch: dataset lengths; stream:
	// records ingested so far).
	Users, Posts, Days, Labels, FeedGens, Domains, HandleUpdates int

	// users aliases the materialized dataset (batch); followers is the
	// append-only streaming equivalent, holding only the degree column.
	users     []core.User
	followers []int32
}

// NewWorld derives the render context from a materialized dataset.
func NewWorld(ds *core.Dataset) *World {
	return &World{
		Scale:         ds.Scale,
		WindowStart:   ds.WindowStart,
		WindowEnd:     ds.WindowEnd,
		Firehose:      ds.Firehose,
		NonBskyEvents: ds.NonBskyEvents,
		Labelers:      ds.Labelers,
		Users:         len(ds.Users),
		Posts:         len(ds.Posts),
		Days:          len(ds.Daily),
		Labels:        len(ds.Labels),
		FeedGens:      len(ds.FeedGens),
		Domains:       len(ds.Domains),
		HandleUpdates: len(ds.HandleUpdates),
		users:         ds.Users,
	}
}

// Followers reports the follower degree of user index i. A streaming
// snapshot may render a feed-generator creator whose user record has
// not arrived yet; those read as degree 0 until it does.
func (w *World) Followers(i int) int {
	if w.users != nil {
		return w.users[i].Followers
	}
	if i < len(w.followers) {
		return int(w.followers[i])
	}
	return 0
}

// LabelMeta carries per-label values the engine computes once per
// record and shares across all label accumulators: interned ids for
// the subject URI, the label value, and the source labeler, plus the
// derived fields every consumer used to recompute.
type LabelMeta struct {
	// LabelerIdx indexes World.Labelers. Sources not announced as
	// labelers get stable negative ids (-2-k via LabelTables.ExtraSrcs)
	// so distinct unknown DIDs stay distinguishable.
	LabelerIdx int32
	// URIID and ValID index LabelTables.URIs / LabelTables.Vals.
	URIID int32
	ValID int32
	// MonthIdx is Applied's month as year*12+month-1 (Figure 4 bucket).
	MonthIdx int32
	// Official marks labels from an official Bluesky labeler.
	Official bool
	// FreshPost marks non-negation labels on fresh posts — the
	// reaction-time sample of Table 6 / Figures 5–6.
	FreshPost bool
	// RTSec is the reaction time in seconds (set when FreshPost).
	RTSec float64
}

// LabelTables are the intern tables backing LabelMeta ids. Each batch
// worker builds its own during traversal and the engine folds them
// into one global table at merge time; a stream grows a single table
// append-only. First-occurrence order is preserved either way, so the
// merged tables are identical to a sequential scan's.
type LabelTables struct {
	URIs      []string
	Vals      []string
	ExtraSrcs []string // unknown source DIDs; id -2-k ↔ ExtraSrcs[k]

	uriID map[string]int32
	valID map[string]int32
	srcID map[string]int32
}

func newLabelTables() *LabelTables {
	return &LabelTables{
		uriID: make(map[string]int32, 1024),
		valID: make(map[string]int32, 64),
	}
}

func (t *LabelTables) internURI(s string) int32 {
	if id, ok := t.uriID[s]; ok {
		return id
	}
	id := int32(len(t.URIs))
	t.URIs = append(t.URIs, s)
	t.uriID[s] = id
	return id
}

func (t *LabelTables) internVal(s string) int32 {
	if id, ok := t.valID[s]; ok {
		return id
	}
	id := int32(len(t.Vals))
	t.Vals = append(t.Vals, s)
	t.valID[s] = id
	return id
}

func (t *LabelTables) internExtraSrc(s string) int32 {
	if t.srcID == nil {
		t.srcID = make(map[string]int32, 8)
	}
	if id, ok := t.srcID[s]; ok {
		return id
	}
	id := int32(-2 - len(t.ExtraSrcs))
	t.ExtraSrcs = append(t.ExtraSrcs, s)
	t.srcID[s] = id
	return id
}

// LabelChunk is one block of the label stream with its shared
// per-record metadata. Meta[i] describes Labels[i]; NumURIs/NumVals
// snapshot the feeding worker's intern-table sizes at dispatch time
// (ids below those bounds are stable for the rest of the run).
//
// In batch runs the chunk and its Meta slice are only valid for the
// duration of the Shard.Labels call — the engine reuses the Meta
// buffer for the next block. Accumulators that collect label data must
// copy what they keep (ids are plain ints; copying them is the point).
type LabelChunk struct {
	Labels  []core.Label
	Meta    []LabelMeta
	NumURIs int
	NumVals int
	Base    int
}

// MergeCtx carries the id remappings for folding one worker's — or,
// in a partitioned run, one partition's — label-derived state into the
// global id space. Remap slices are indexed by the source's local ids.
type MergeCtx struct {
	URIRemap []int32
	ValRemap []int32
	SrcRemap []int32 // index k remaps local extra-src id -2-k
	NumURIs  int
	NumVals  int
	// Users offsets partition-local user indexes (Post.AuthorIdx /
	// FeedGen.CreatorIdx captured in shard state) into the merged
	// corpus index space. It is 0 for worker merges and for split
	// partitions, whose indexes are corpus-global already; independent
	// partition datasets carry their user base here.
	Users int
}

// RemapUser translates a (possibly partition-local) user index.
func (mc *MergeCtx) RemapUser(i int) int {
	if mc == nil {
		return i
	}
	return i + mc.Users
}

// RemapSrc translates a (possibly negative) source id.
func (mc *MergeCtx) RemapSrc(id int32) int32 {
	if id >= -1 {
		return id // labeler indexes and the -1 sentinel are global already
	}
	return mc.SrcRemap[-2-id]
}

// Shard is the per-worker state of one accumulator. The engine calls
// the methods matching the accumulator's Needs mask with contiguous
// record blocks; base is the block's global start index.
type Shard interface {
	Users(us []core.User, base int)
	Posts(ps []core.Post, base int)
	Days(days []core.DayActivity, base int)
	// Labels must not retain c or c.Meta past the call: batch runs
	// reuse the metadata buffer for the next block (see LabelChunk).
	Labels(c *LabelChunk)
	FeedGens(fs []core.FeedGen, base int)
	Domains(doms []core.Domain, base int)
	HandleUpdates(hus []core.HandleUpdate, base int)
}

// NopShard implements every Shard method as a no-op; accumulators
// embed it and override only the streams they consume.
type NopShard struct{}

func (NopShard) Users([]core.User, int)                 {}
func (NopShard) Posts([]core.Post, int)                 {}
func (NopShard) Days([]core.DayActivity, int)           {}
func (NopShard) Labels(*LabelChunk)                     {}
func (NopShard) FeedGens([]core.FeedGen, int)           {}
func (NopShard) Domains([]core.Domain, int)             {}
func (NopShard) HandleUpdates([]core.HandleUpdate, int) {}

// StateBounds carries the intern-table sizes of the partition state a
// shard travels with. UnmarshalShard validates every table-indexed id
// in the decoded state against them, so hostile or stale wire bytes
// can never index out of range during the level-two fold.
type StateBounds struct {
	URIs      int // len(LabelTables.URIs)
	Vals      int // len(LabelTables.Vals)
	ExtraSrcs int // len(LabelTables.ExtraSrcs)
	Labelers  int // len(World.Labelers) of the same partition state
}

// checkSrc validates a LabelMeta-style source id: labeler indexes and
// the -1 sentinel pass through; extra-source ids must resolve inside
// the partition's ExtraSrcs table.
func (b StateBounds) checkSrc(id int32) error {
	if id < -1 && int(-2-id) >= b.ExtraSrcs {
		return fmt.Errorf("analysis: source id %d outside the %d-entry extra-src table", id, b.ExtraSrcs)
	}
	return nil
}

// Accumulator computes one (occasionally several) of the paper's
// reports from a streamed corpus traversal.
type Accumulator interface {
	// IDs lists the report ids this accumulator renders, in render
	// order (e.g. the shared reaction-time accumulator yields T6, F5).
	IDs() []string
	// Needs is the mask of collections this accumulator consumes.
	Needs() Collection
	// NewShard allocates worker-local state. Streaming worlds may not
	// know their final population sizes yet, so shards presize from w
	// but must tolerate later growth (labeler indexes in particular).
	NewShard(w *World) Shard
	// Merge folds src into dst. Shards are merged in worker order; mc
	// is nil when the accumulator consumes no labels or when only one
	// worker ran.
	Merge(dst, src Shard, mc *MergeCtx)
	// Render produces the reports from merged state. t holds the
	// global label intern tables (nil without ColLabels). Render must
	// not mutate s: streaming snapshots render the same shard again as
	// more records arrive.
	Render(w *World, s Shard, t *LabelTables) []*Report
	// MarshalShard serializes a level-one-merged shard as DAG-CBOR —
	// the wire form a remote worker returns for the level-two fold.
	// The encoding is deterministic: identical state yields identical
	// bytes. Stateless accumulators return nil.
	MarshalShard(s Shard) ([]byte, error)
	// UnmarshalShard reconstructs a shard from MarshalShard bytes. The
	// result must behave exactly like the in-process shard under Merge
	// and Render; every table-indexed id is validated against b so the
	// fold can trust decoded state as far as memory safety goes.
	UnmarshalShard(data []byte, b StateBounds) (Shard, error)
}

// blockSize bounds the records handed to each accumulator per call so
// a block stays cache-resident while every accumulator visits it.
const blockSize = 4096

// Engine runs registered accumulators over a record source in one
// traversal.
type Engine struct {
	accs    []Accumulator
	workers int
}

// NewEngine builds an engine over the given accumulators.
func NewEngine(accs ...Accumulator) *Engine { return &Engine{accs: accs} }

// Workers fixes the traversal worker count. 0 (the default) lets the
// source autotune: dataset traversals pick from record counts (a small
// corpus is cheaper to scan on one core than to merge across many),
// streams from the accumulator count.
func (e *Engine) Workers(n int) *Engine {
	e.workers = n
	return e
}

// RunSource traverses src once and renders every registered
// accumulator's reports, in registration order (flattening
// multi-report accumulators in their render order).
func (e *Engine) RunSource(src Source) ([]*Report, error) {
	world, merged, tables, err := src.Run(e.accs, e.workers, e.render)
	if err != nil {
		return nil, err
	}
	return e.render(world, merged, tables), nil
}

// Run traverses a materialized dataset (DatasetSource semantics).
func (e *Engine) Run(ds *core.Dataset) []*Report {
	reports, _ := e.RunSource(NewDatasetSource(ds)) // DatasetSource cannot fail
	return reports
}

// RunSources traverses a set of partition sources as one corpus: each
// partition runs level-one (its own sharded traversal and worker
// merge), then the partition states fold through the cross-partition
// level-two merge (MultiSource).
func (e *Engine) RunSources(srcs ...Source) ([]*Report, error) {
	return e.RunSource(&MultiSource{Sources: srcs})
}

// render produces all reports from merged per-accumulator state; it is
// also the snapshot callback handed to sources.
func (e *Engine) render(w *World, merged []Shard, t *LabelTables) []*Report {
	out := make([]*Report, 0, len(e.accs))
	for ai, a := range e.accs {
		out = append(out, a.Render(w, merged[ai], t)...)
	}
	return out
}

// monthTime converts a LabelMeta.MonthIdx back to its month start.
func monthTime(idx int32) time.Time {
	return time.Date(int(idx/12), time.Month(idx%12+1), 1, 0, 0, 0, 0, time.UTC)
}

// runOne runs a single accumulator sequentially over the whole
// dataset — the execution mode behind the legacy per-table functions.
func runOne(ds *core.Dataset, a Accumulator) []*Report {
	reports, _ := NewEngine(a).Workers(1).RunSource(NewDatasetSource(ds))
	return reports
}

// runOneShard is runOne without rendering, for the typed-row helpers
// that need merged state rather than a Report.
func runOneShard(ds *core.Dataset, a Accumulator) (*World, Shard, *LabelTables) {
	w, merged, t, _ := NewDatasetSource(ds).Run([]Accumulator{a}, 1, nil)
	return w, merged[0], t
}

// canonicalOrder is the report order of the paper's evaluation
// (AllReports and RunAll emit it).
var canonicalOrder = []string{
	"S4", "S4P", "S5", "S6", "S9",
	"T1", "T2", "T3", "T4", "T5", "T6",
	"F1", "F2", "F3", "F4", "F5", "F6",
	"F7", "F8", "F9", "F10", "F11", "F12",
}

// NewFullEngine registers every accumulator of the paper's evaluation.
func NewFullEngine() *Engine {
	return NewEngine(
		newSection4Acc(), newPostLangAcc(), newSection5Acc(), newSection6Acc(), newDiscussionAcc(),
		newTable1Acc(), newTable2Acc(), newTable3Acc(), newTable4Acc(), newTable5Acc(),
		newReactionAcc(), // T6 + F5
		newFigure1Acc(), newFigure2Acc(), newFigure3Acc(), newFigure4Acc(),
		newFigure6Acc(), newFigure7Acc(), newFigure8Acc(), newFigure9Acc(),
		newFigure10Acc(), newFigure11Acc(), newFigure12Acc(),
	)
}

// RunAll computes the full evaluation in one sharded pass with the
// given worker count (0 = autotuned) and returns the reports in
// canonical order. Output is byte-identical to AllReports at any
// worker count.
func RunAll(ds *core.Dataset, workers int) []*Report {
	reports := NewFullEngine().Workers(workers).Run(ds)
	return canonicalize(reports)
}

// RunAllPartitioned computes the full evaluation over a partitioned
// corpus (per-partition sharded traversals, two-level merge) and
// returns the reports in canonical order. For a split corpus the
// output is byte-identical to RunAll over the unsplit dataset at any
// partition count and worker count; m may be nil for single-corpus
// row-range partitions.
func RunAllPartitioned(parts []*core.Dataset, m *core.Manifest, workers int) ([]*Report, error) {
	src := NewPartitionedSource(parts, m)
	reports, err := NewFullEngine().Workers(workers).RunSource(src)
	if err != nil {
		return nil, err
	}
	return canonicalize(reports), nil
}

// Canonicalize reorders reports into the paper's canonical evaluation
// order, dropping ids outside it. Engine runs return reports in
// accumulator-registration order; RunAll and streaming consumers that
// want the paper's ordering pass them through here.
func Canonicalize(reports []*Report) []*Report { return canonicalize(reports) }

func canonicalize(reports []*Report) []*Report {
	byID := make(map[string]*Report, len(reports))
	for _, r := range reports {
		byID[r.ID] = r
	}
	out := make([]*Report, 0, len(canonicalOrder))
	for _, id := range canonicalOrder {
		if r, ok := byID[id]; ok {
			out = append(out, r)
		}
	}
	return out
}
