package analysis

import (
	"runtime"
	"sync"
	"time"

	"blueskies/internal/core"
)

// This file implements the single-pass evaluation engine. The legacy
// API computed every table and figure with its own full dataset scan
// (~25 independent passes); the Engine registers one Accumulator per
// report, shards the dataset traversal across workers, streams each
// record block through every registered accumulator exactly once, and
// merges shard-local state before rendering.
//
// Determinism contract: for a fixed dataset the engine produces
// byte-identical reports at any worker count. Three rules make that
// hold — shards cover contiguous index ranges and are merged in shard
// order (so concatenated slice state equals a sequential scan), shard
// state never sums floating point across records (integer counters
// and ordered float slices only; float math happens once at render),
// and every render sort carries a total tie-break.

// Collection identifies one record stream of a Dataset traversal.
// Accumulators declare the streams they consume via Needs; the engine
// skips streams nobody registered for.
type Collection uint8

// Traversable dataset collections.
const (
	ColUsers Collection = 1 << iota
	ColPosts
	ColDays
	ColLabels
	ColFeedGens
	ColDomains
	ColHandleUpdates
)

// LabelMeta carries per-label values the engine computes once per
// record and shares across all label accumulators: interned ids for
// the subject URI, the label value, and the source labeler, plus the
// derived fields every consumer used to recompute.
type LabelMeta struct {
	// LabelerIdx indexes Dataset.Labelers. Sources not announced as
	// labelers get stable negative ids (-2-k via LabelTables.ExtraSrcs)
	// so distinct unknown DIDs stay distinguishable.
	LabelerIdx int32
	// URIID and ValID index LabelTables.URIs / LabelTables.Vals.
	URIID int32
	ValID int32
	// MonthIdx is Applied's month as year*12+month-1 (Figure 4 bucket).
	MonthIdx int32
	// Official marks labels from an official Bluesky labeler.
	Official bool
	// FreshPost marks non-negation labels on fresh posts — the
	// reaction-time sample of Table 6 / Figures 5–6.
	FreshPost bool
	// RTSec is the reaction time in seconds (set when FreshPost).
	RTSec float64
}

// LabelTables are the intern tables backing LabelMeta ids. Each worker
// builds its own during traversal; the engine folds them into one
// global table at merge time. First-occurrence order is preserved, so
// the merged tables are identical to a sequential scan's.
type LabelTables struct {
	URIs      []string
	Vals      []string
	ExtraSrcs []string // unknown source DIDs; id -2-k ↔ ExtraSrcs[k]

	uriID map[string]int32
	valID map[string]int32
	srcID map[string]int32
}

func newLabelTables() *LabelTables {
	return &LabelTables{
		uriID: make(map[string]int32, 1024),
		valID: make(map[string]int32, 64),
	}
}

func (t *LabelTables) internURI(s string) int32 {
	if id, ok := t.uriID[s]; ok {
		return id
	}
	id := int32(len(t.URIs))
	t.URIs = append(t.URIs, s)
	t.uriID[s] = id
	return id
}

func (t *LabelTables) internVal(s string) int32 {
	if id, ok := t.valID[s]; ok {
		return id
	}
	id := int32(len(t.Vals))
	t.Vals = append(t.Vals, s)
	t.valID[s] = id
	return id
}

func (t *LabelTables) internExtraSrc(s string) int32 {
	if t.srcID == nil {
		t.srcID = make(map[string]int32, 8)
	}
	if id, ok := t.srcID[s]; ok {
		return id
	}
	id := int32(-2 - len(t.ExtraSrcs))
	t.ExtraSrcs = append(t.ExtraSrcs, s)
	t.srcID[s] = id
	return id
}

// LabelChunk is one block of the label stream with its shared
// per-record metadata. Meta[i] describes Labels[i]; ids reference
// Tables, which belongs to the traversing worker and grows
// monotonically across that worker's blocks.
//
// The chunk and its Meta slice are only valid for the duration of the
// Shard.Labels call — the engine reuses the Meta buffer for the next
// block. Accumulators that collect label data must copy what they
// keep (ids are plain ints; copying them is the point).
type LabelChunk struct {
	Labels []core.Label
	Meta   []LabelMeta
	Tables *LabelTables
	Base   int
}

// MergeCtx carries the id remappings for folding one worker's
// label-derived state into the global id space. Remap slices are
// indexed by the source worker's local ids.
type MergeCtx struct {
	URIRemap []int32
	ValRemap []int32
	SrcRemap []int32 // index k remaps local extra-src id -2-k
	NumURIs  int
	NumVals  int
}

// RemapSrc translates a (possibly negative) source id.
func (mc *MergeCtx) RemapSrc(id int32) int32 {
	if id >= -1 {
		return id // labeler indexes and the -1 sentinel are global already
	}
	return mc.SrcRemap[-2-id]
}

// Shard is the per-worker state of one accumulator. The engine calls
// the methods matching the accumulator's Needs mask with contiguous
// record blocks; base is the block's global start index.
type Shard interface {
	Users(us []core.User, base int)
	Posts(ps []core.Post, base int)
	Days(days []core.DayActivity, base int)
	// Labels must not retain c or c.Meta past the call: the engine
	// reuses the metadata buffer for the next block (see LabelChunk).
	Labels(c *LabelChunk)
	FeedGens(fs []core.FeedGen, base int)
	Domains(doms []core.Domain, base int)
	HandleUpdates(hus []core.HandleUpdate, base int)
}

// NopShard implements every Shard method as a no-op; accumulators
// embed it and override only the streams they consume.
type NopShard struct{}

func (NopShard) Users([]core.User, int)                 {}
func (NopShard) Posts([]core.Post, int)                 {}
func (NopShard) Days([]core.DayActivity, int)           {}
func (NopShard) Labels(*LabelChunk)                     {}
func (NopShard) FeedGens([]core.FeedGen, int)           {}
func (NopShard) Domains([]core.Domain, int)             {}
func (NopShard) HandleUpdates([]core.HandleUpdate, int) {}

// Accumulator computes one (occasionally several) of the paper's
// reports from a streamed dataset traversal.
type Accumulator interface {
	// IDs lists the report ids this accumulator renders, in render
	// order (e.g. the shared reaction-time accumulator yields T6, F5).
	IDs() []string
	// Needs is the mask of collections this accumulator consumes.
	Needs() Collection
	// NewShard allocates worker-local state.
	NewShard(ds *core.Dataset) Shard
	// Merge folds src into dst. Shards are merged in worker order; mc
	// is nil when the accumulator consumes no labels or when only one
	// worker ran.
	Merge(dst, src Shard, mc *MergeCtx)
	// Render produces the reports from merged state. t holds the
	// global label intern tables (nil without ColLabels).
	Render(ds *core.Dataset, s Shard, t *LabelTables) []*Report
}

// blockSize bounds the records handed to each accumulator per call so
// a block stays cache-resident while every accumulator visits it.
const blockSize = 4096

// Engine runs registered accumulators over a dataset in one sharded
// traversal.
type Engine struct {
	accs    []Accumulator
	workers int
}

// NewEngine builds an engine over the given accumulators.
func NewEngine(accs ...Accumulator) *Engine { return &Engine{accs: accs} }

// Workers fixes the traversal worker count (0 = GOMAXPROCS).
func (e *Engine) Workers(n int) *Engine {
	e.workers = n
	return e
}

// Run traverses ds once and renders every registered accumulator's
// reports, in registration order (flattening multi-report
// accumulators in their render order).
func (e *Engine) Run(ds *core.Dataset) []*Report {
	w := e.workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	need := Collection(0)
	for _, a := range e.accs {
		need |= a.Needs()
	}
	var didIdx map[string]int32
	if need&ColLabels != 0 {
		didIdx = ds.LabelerIndex()
	}

	shards := make([][]Shard, len(e.accs)) // [acc][worker]
	for ai, a := range e.accs {
		shards[ai] = make([]Shard, w)
		for wi := range shards[ai] {
			shards[ai][wi] = a.NewShard(ds)
		}
	}
	tables := make([]*LabelTables, w)

	if w == 1 {
		tables[0] = feedRange(ds, e.accs, shardCol(shards, 0), 0, 1, didIdx)
	} else {
		var wg sync.WaitGroup
		for wi := 0; wi < w; wi++ {
			wg.Add(1)
			go func(wi int) {
				defer wg.Done()
				tables[wi] = feedRange(ds, e.accs, shardCol(shards, wi), wi, w, didIdx)
			}(wi)
		}
		wg.Wait()
	}

	// Fold worker intern tables into the global id space. Worker 0's
	// table is extended in place; first-occurrence order across the
	// ordered workers matches a sequential scan exactly.
	var gt *LabelTables
	var mcs []*MergeCtx
	if need&ColLabels != 0 {
		gt = tables[0]
		mcs = make([]*MergeCtx, w)
		for wi := 1; wi < w; wi++ {
			mcs[wi] = remapTables(gt, tables[wi])
		}
		for wi := 1; wi < w; wi++ {
			mcs[wi].NumURIs = len(gt.URIs)
			mcs[wi].NumVals = len(gt.Vals)
		}
	}

	out := make([]*Report, 0, len(e.accs))
	for ai, a := range e.accs {
		merged := shards[ai][0]
		for wi := 1; wi < w; wi++ {
			var mc *MergeCtx
			if a.Needs()&ColLabels != 0 {
				mc = mcs[wi]
			}
			a.Merge(merged, shards[ai][wi], mc)
		}
		out = append(out, a.Render(ds, merged, gt)...)
	}
	return out
}

func shardCol(shards [][]Shard, wi int) []Shard {
	col := make([]Shard, len(shards))
	for ai := range shards {
		col[ai] = shards[ai][wi]
	}
	return col
}

func remapTables(dst, src *LabelTables) *MergeCtx {
	mc := &MergeCtx{
		URIRemap: make([]int32, len(src.URIs)),
		ValRemap: make([]int32, len(src.Vals)),
		SrcRemap: make([]int32, len(src.ExtraSrcs)),
	}
	for i, s := range src.URIs {
		mc.URIRemap[i] = dst.internURI(s)
	}
	for i, s := range src.Vals {
		mc.ValRemap[i] = dst.internVal(s)
	}
	for i, s := range src.ExtraSrcs {
		mc.SrcRemap[i] = dst.internExtraSrc(s)
	}
	return mc
}

// cut returns worker wi's contiguous slice bounds over n records.
func cut(n, wi, w int) (int, int) { return n * wi / w, n * (wi + 1) / w }

// feedRange streams worker wi's share of every needed collection
// through the given shards, block by block, and returns the worker's
// label intern tables (nil when labels are not consumed).
func feedRange(ds *core.Dataset, accs []Accumulator, shards []Shard, wi, w int, didIdx map[string]int32) *LabelTables {
	need := Collection(0)
	for _, a := range accs {
		need |= a.Needs()
	}
	dispatch := func(col Collection, lo, hi int, f func(s Shard, lo, hi int)) {
		for b := lo; b < hi; b += blockSize {
			be := min(b+blockSize, hi)
			for ai, a := range accs {
				if a.Needs()&col != 0 {
					f(shards[ai], b, be)
				}
			}
		}
	}
	if need&ColUsers != 0 {
		lo, hi := cut(len(ds.Users), wi, w)
		dispatch(ColUsers, lo, hi, func(s Shard, b, e int) { s.Users(ds.Users[b:e], b) })
	}
	if need&ColPosts != 0 {
		lo, hi := cut(len(ds.Posts), wi, w)
		dispatch(ColPosts, lo, hi, func(s Shard, b, e int) { s.Posts(ds.Posts[b:e], b) })
	}
	if need&ColDays != 0 {
		lo, hi := cut(len(ds.Daily), wi, w)
		dispatch(ColDays, lo, hi, func(s Shard, b, e int) { s.Days(ds.Daily[b:e], b) })
	}
	var tables *LabelTables
	if need&ColLabels != 0 {
		tables = newLabelTables()
		lo, hi := cut(len(ds.Labels), wi, w)
		meta := make([]LabelMeta, 0, blockSize)
		for b := lo; b < hi; b += blockSize {
			be := min(b+blockSize, hi)
			chunk := LabelChunk{Labels: ds.Labels[b:be], Tables: tables, Base: b}
			chunk.Meta = buildLabelMeta(ds, chunk.Labels, meta[:0], tables, didIdx)
			for ai, a := range accs {
				if a.Needs()&ColLabels != 0 {
					shards[ai].Labels(&chunk)
				}
			}
		}
	}
	if need&ColFeedGens != 0 {
		lo, hi := cut(len(ds.FeedGens), wi, w)
		dispatch(ColFeedGens, lo, hi, func(s Shard, b, e int) { s.FeedGens(ds.FeedGens[b:e], b) })
	}
	if need&ColDomains != 0 {
		lo, hi := cut(len(ds.Domains), wi, w)
		dispatch(ColDomains, lo, hi, func(s Shard, b, e int) { s.Domains(ds.Domains[b:e], b) })
	}
	if need&ColHandleUpdates != 0 {
		lo, hi := cut(len(ds.HandleUpdates), wi, w)
		dispatch(ColHandleUpdates, lo, hi, func(s Shard, b, e int) { s.HandleUpdates(ds.HandleUpdates[b:e], b) })
	}
	return tables
}

// buildLabelMeta computes the shared per-label metadata for one block.
func buildLabelMeta(ds *core.Dataset, ls []core.Label, meta []LabelMeta, t *LabelTables, didIdx map[string]int32) []LabelMeta {
	for i := range ls {
		l := &ls[i]
		m := LabelMeta{
			URIID:    t.internURI(l.URI),
			ValID:    t.internVal(l.Val),
			MonthIdx: int32(l.Applied.Year())*12 + int32(l.Applied.Month()) - 1,
		}
		if idx, ok := didIdx[l.Src]; ok {
			m.LabelerIdx = idx
			m.Official = ds.Labelers[idx].Official
		} else {
			m.LabelerIdx = t.internExtraSrc(l.Src)
		}
		if !l.Neg && l.FreshSubject && l.Kind == core.SubjectPost {
			m.FreshPost = true
			m.RTSec = l.ReactionTime().Seconds()
		}
		meta = append(meta, m)
	}
	return meta
}

// monthTime converts a LabelMeta.MonthIdx back to its month start.
func monthTime(idx int32) time.Time {
	return time.Date(int(idx/12), time.Month(idx%12+1), 1, 0, 0, 0, 0, time.UTC)
}

// runOne runs a single accumulator sequentially over the whole
// dataset — the execution mode behind the legacy per-table functions.
func runOne(ds *core.Dataset, a Accumulator) []*Report {
	sh := a.NewShard(ds)
	var didIdx map[string]int32
	if a.Needs()&ColLabels != 0 {
		didIdx = ds.LabelerIndex()
	}
	t := feedRange(ds, []Accumulator{a}, []Shard{sh}, 0, 1, didIdx)
	return a.Render(ds, sh, t)
}

// runOneShard is runOne without rendering, for the typed-row helpers
// that need merged state rather than a Report.
func runOneShard(ds *core.Dataset, a Accumulator) (Shard, *LabelTables) {
	sh := a.NewShard(ds)
	var didIdx map[string]int32
	if a.Needs()&ColLabels != 0 {
		didIdx = ds.LabelerIndex()
	}
	t := feedRange(ds, []Accumulator{a}, []Shard{sh}, 0, 1, didIdx)
	return sh, t
}

// canonicalOrder is the report order of the paper's evaluation
// (AllReports and RunAll emit it).
var canonicalOrder = []string{
	"S4", "S5", "S6", "S9",
	"T1", "T2", "T3", "T4", "T5", "T6",
	"F1", "F2", "F3", "F4", "F5", "F6",
	"F7", "F8", "F9", "F10", "F11", "F12",
}

// NewFullEngine registers every accumulator of the paper's evaluation.
func NewFullEngine() *Engine {
	return NewEngine(
		newSection4Acc(), newSection5Acc(), newSection6Acc(), newDiscussionAcc(),
		newTable1Acc(), newTable2Acc(), newTable3Acc(), newTable4Acc(), newTable5Acc(),
		newReactionAcc(), // T6 + F5
		newFigure1Acc(), newFigure2Acc(), newFigure3Acc(), newFigure4Acc(),
		newFigure6Acc(), newFigure7Acc(), newFigure8Acc(), newFigure9Acc(),
		newFigure10Acc(), newFigure11Acc(), newFigure12Acc(),
	)
}

// RunAll computes the full evaluation in one sharded pass with the
// given worker count (0 = GOMAXPROCS) and returns the reports in
// canonical order. Output is byte-identical to AllReports at any
// worker count.
func RunAll(ds *core.Dataset, workers int) []*Report {
	reports := NewFullEngine().Workers(workers).Run(ds)
	byID := make(map[string]*Report, len(reports))
	for _, r := range reports {
		byID[r.ID] = r
	}
	out := make([]*Report, 0, len(canonicalOrder))
	for _, id := range canonicalOrder {
		if r, ok := byID[id]; ok {
			out = append(out, r)
		}
	}
	return out
}
