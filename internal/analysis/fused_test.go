package analysis

import (
	"reflect"
	"testing"

	"blueskies/internal/core"
)

// TestBuildLabelMetaFusedParity pins the zero-rehash contract at the
// unit level: folding a decoded block's dictionary view into fresh
// intern tables must produce byte-identical metadata AND tables to the
// per-record path — same ids, same first-occurrence order — for both
// dictionary-carrying codecs (v2 and v3).
func TestBuildLabelMetaFusedParity(t *testing.T) {
	didIdx := ds.LabelerIndex()
	for _, version := range []int{2, 3} {
		src := &core.RecordBlock{Labelers: ds.Labelers, Labels: ds.Labels}
		enc, err := core.MarshalBlockVersion(src, version)
		if err != nil {
			t.Fatalf("v%d: %v", version, err)
		}
		dec, db, err := core.UnmarshalBlockDict(enc, true)
		if err != nil {
			t.Fatalf("v%d: %v", version, err)
		}
		if db == nil || len(db.LabelSrc) != len(dec.Labels) {
			t.Fatalf("v%d: no parallel dictionary view (%d ids, %d labels)", version, len(db.LabelSrc), len(dec.Labels))
		}
		plainT := newLabelTables()
		want := buildLabelMeta(ds.Labelers, dec.Labels, nil, plainT, didIdx)
		fusedT := newLabelTables()
		got := buildLabelMetaFused(ds.Labelers, dec.Labels, db, nil, fusedT, didIdx)
		if !reflect.DeepEqual(got, want) {
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("v%d: label %d meta drifted:\n got %+v\nwant %+v", version, i, got[i], want[i])
				}
			}
			t.Fatalf("v%d: meta drifted", version)
		}
		if !reflect.DeepEqual(fusedT.URIs, plainT.URIs) ||
			!reflect.DeepEqual(fusedT.Vals, plainT.Vals) ||
			!reflect.DeepEqual(fusedT.ExtraSrcs, plainT.ExtraSrcs) {
			t.Fatalf("v%d: fused intern tables drifted (vals %d/%d, uris %d/%d, extras %d/%d)",
				version, len(fusedT.Vals), len(plainT.Vals), len(fusedT.URIs), len(plainT.URIs),
				len(fusedT.ExtraSrcs), len(plainT.ExtraSrcs))
		}
	}
}

// TestFusedIngestParityGolden drives the whole fused path — spill at
// the current (fixed-width v3) format, stream back through NextDict +
// applyColumnar — against the in-memory golden for n ∈ {1,2,4,8}
// partitions at several worker counts. It complements
// TestDiskParityGolden by pinning that the dictionary view is actually
// present on the disk path (a silent fallback to per-record interning
// would pass the golden while losing the optimization).
func TestFusedIngestParityGolden(t *testing.T) {
	want := RunAll(ds, 1)
	for _, n := range []int{1, 2, 4, 8} {
		parts, m := core.Split(ds, n)
		dir := t.TempDir()
		if err := core.WriteCorpusVersion(dir, parts, m, core.DiskFormatVersion); err != nil {
			t.Fatalf("n=%d: spill: %v", n, err)
		}
		c, err := core.OpenCorpus(dir)
		if err != nil {
			t.Fatalf("n=%d: open: %v", n, err)
		}
		// The store must actually carry dictionary views on its label
		// blocks — otherwise this golden only exercises the fallback.
		pr, err := c.OpenPartition(0)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		sawDict := false
		for {
			b, db, err := pr.NextDict()
			if err != nil {
				break
			}
			if len(b.Labels) > 0 && db != nil && len(db.LabelSrc) == len(b.Labels) {
				sawDict = true
			}
		}
		pr.Close()
		if !sawDict {
			t.Fatalf("n=%d: no label block carried a dictionary view; the fused path never ran", n)
		}
		for _, workers := range []int{0, 1, 3} {
			got, err := RunAllDisk(c, workers)
			if err != nil {
				t.Fatalf("n=%d workers=%d: %v", n, workers, err)
			}
			compareReports(t, label("fused", n, workers), got, want)
		}
	}
}
