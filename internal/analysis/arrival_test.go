package analysis

import (
	"fmt"
	"math/rand"
	"testing"

	"blueskies/internal/core"
)

// TestMergeCommutativityArrivalOrder pins the invariant the elastic
// scheduler leans on: partition states may *arrive* in any order —
// steals, speculation, and worker death make completion order
// arbitrary — as long as the fold slots each state by its partition
// index and runs in manifest order. Seeded shuffles of the
// decode/arrival order over RestoreState must render reports
// byte-identical to the flat golden for n ∈ {2,4,8}.
func TestMergeCommutativityArrivalOrder(t *testing.T) {
	want := RunAll(ds, 1)
	for _, n := range []int{2, 4, 8} {
		parts, m := core.Split(ds, n)
		states := snapshotPartitions(t, parts, m, 2)
		for _, seed := range []int64{1, 7, 99} {
			arrival := rand.New(rand.NewSource(seed)).Perm(n)
			// Decode in shuffled arrival order, slot by partition index —
			// exactly what the scheduler does when worker k+1 finishes
			// before worker k.
			eng := NewFullEngine()
			srcs := make([]Source, n)
			for _, k := range arrival {
				src, err := eng.RestoreState(states[k])
				if err != nil {
					t.Fatalf("n=%d seed=%d: restore partition %d: %v", n, seed, k, err)
				}
				srcs[k] = src
			}
			ms := &MultiSource{Sources: srcs, Manifest: m}
			got, err := NewFullEngine().RunSource(ms)
			if err != nil {
				t.Fatalf("n=%d seed=%d: %v", n, seed, err)
			}
			compareReports(t, fmt.Sprintf("arrival-order n=%d seed=%d", n, seed), canonicalize(got), want)
		}
	}
}
