package analysis

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"

	"blueskies/internal/core"
	"blueskies/internal/events"
	"blueskies/internal/pds"
	"blueskies/internal/synth"
	"blueskies/internal/xrpc"
)

// replayStream plays ds through fresh firehose + labeler sequencers
// and returns the multiplexed block channel (pure backlog replay, so
// the per-collection record order is exactly the dataset order).
func replayStream(t *testing.T, ds *core.Dataset, blockSize int) (<-chan core.RecordBlock, <-chan error) {
	t.Helper()
	fire := events.NewSequencer(0, 0)
	labeler := events.NewSequencer(0, 0)
	if err := synth.Replay(ds, fire, labeler, blockSize); err != nil {
		t.Fatalf("replay: %v", err)
	}
	return core.SequencerStream(context.Background(), fire, labeler)
}

func drainErrs(t *testing.T, errs <-chan error) {
	t.Helper()
	for err := range errs {
		t.Fatalf("stream error: %v", err)
	}
}

// TestStreamingParityGolden is the tentpole's acceptance gate: a
// generated dataset replayed through the sequencer stream must yield a
// final snapshot byte-identical to the batch RunAll, across snapshot
// intervals, replay block sizes, and worker counts.
func TestStreamingParityGolden(t *testing.T) {
	want := RunAll(ds, 1)
	for _, workers := range []int{1, 4} {
		batch := RunAll(ds, workers)
		for i := range want {
			if batch[i].String() != want[i].String() {
				t.Fatalf("batch workers=%d report %s differs from workers=1", workers, batch[i].ID)
			}
		}
		for _, cfg := range []struct {
			blockSize, snapshotEvery int
		}{
			{2048, 0},      // final snapshot only
			{2048, 10_000}, // frequent snapshots
			{512, 25_000},  // small frames
		} {
			blocks, errs := replayStream(t, ds, cfg.blockSize)
			snapshots := 0
			src := &StreamSource{
				Blocks:        blocks,
				SnapshotEvery: cfg.snapshotEvery,
				OnSnapshot: func(records int, reports []*Report) {
					snapshots++
					if len(reports) != len(canonicalOrder) {
						t.Errorf("snapshot at %d records has %d reports, want %d",
							records, len(reports), len(canonicalOrder))
					}
				},
			}
			got, err := NewFullEngine().Workers(workers).RunSource(src)
			if err != nil {
				t.Fatalf("workers=%d cfg=%+v: %v", workers, cfg, err)
			}
			drainErrs(t, errs)
			got = canonicalize(got)
			if len(got) != len(want) {
				t.Fatalf("workers=%d cfg=%+v: %d reports, want %d", workers, cfg, len(got), len(want))
			}
			for i, r := range got {
				if r.String() != want[i].String() {
					t.Errorf("workers=%d cfg=%+v: report %s differs from batch:\n--- stream ---\n%s\n--- batch ---\n%s",
						workers, cfg, r.ID, r.String(), want[i].String())
				}
			}
			if cfg.snapshotEvery > 0 && snapshots == 0 {
				t.Errorf("workers=%d cfg=%+v: no mid-run snapshots fired", workers, cfg)
			}
		}
	}
}

// TestStreamingWorldCounts checks the streaming world reconstructs the
// corpus facts without materializing it: after a full replay the world
// must report exactly the dataset's record counts and header facts.
func TestStreamingWorldCounts(t *testing.T) {
	blocks, errs := replayStream(t, ds, 2048)
	src := &StreamSource{Blocks: blocks}
	world, _, _, err := src.Run(NewFullEngine().accs, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	drainErrs(t, errs)
	if world.Users != len(ds.Users) || world.Posts != len(ds.Posts) ||
		world.Days != len(ds.Daily) || world.Labels != len(ds.Labels) ||
		world.FeedGens != len(ds.FeedGens) || world.Domains != len(ds.Domains) ||
		world.HandleUpdates != len(ds.HandleUpdates) {
		t.Fatalf("world counts diverge: %+v", world)
	}
	if world.Scale != ds.Scale || world.Firehose != ds.Firehose || len(world.Labelers) != len(ds.Labelers) {
		t.Fatal("world header facts diverge")
	}
	for i := range ds.Users {
		if world.Followers(i) != ds.Users[i].Followers {
			t.Fatalf("follower degree of user %d diverges", i)
		}
	}
}

// TestCollectorStreamParity exercises the full live path: an XRPC
// server exposes the firehose and one labeler stream over WebSockets,
// Collector.Stream multiplexes the subscriptions into record blocks,
// and the engine's final snapshot must equal the batch evaluation.
func TestCollectorStreamParity(t *testing.T) {
	fire := events.NewSequencer(0, 0)
	labeler := events.NewSequencer(0, 0)
	if err := synth.Replay(ds, fire, labeler, 2048); err != nil {
		t.Fatal(err)
	}
	mux := xrpc.NewMux()
	mux.Stream("com.atproto.sync.subscribeRepos", func(w http.ResponseWriter, r *http.Request) {
		pds.ServeStream(fire, w, r)
	})
	mux.Stream("com.atproto.label.subscribeLabels", func(w http.ResponseWriter, r *http.Request) {
		pds.ServeStream(labeler, w, r)
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	col := &core.Collector{RelayURL: srv.URL, LabelerURLs: []string{srv.URL}}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	blocks, errs := col.Stream(ctx)
	got, err := NewFullEngine().Workers(2).RunSource(&StreamSource{Blocks: blocks})
	if err != nil {
		t.Fatal(err)
	}
	drainErrs(t, errs)
	got = canonicalize(got)
	want := RunAll(ds, 4)
	if len(got) != len(want) {
		t.Fatalf("%d reports, want %d", len(got), len(want))
	}
	for i, r := range got {
		if r.String() != want[i].String() {
			t.Errorf("report %s differs between collector stream and batch", r.ID)
		}
	}
}

// TestCollectorStreamPrimaryFailure pins the failure mode of the
// multiplexing gate: when the firehose endpoint is unreachable, the
// labeler consumers must shut down instead of feeding labels nobody
// announced, the block channel must close (no hang), and the error
// must surface.
func TestCollectorStreamPrimaryFailure(t *testing.T) {
	labeler := events.NewSequencer(0, 0)
	if _, err := labeler.Emit(func(s int64) any {
		e := core.LabelsEvent([]core.Label{{Src: "did:plc:l", URI: "did:plc:u", Val: "x"}})
		e.Seq = s
		return e
	}); err != nil {
		t.Fatal(err)
	}
	mux := xrpc.NewMux()
	mux.Stream("com.atproto.label.subscribeLabels", func(w http.ResponseWriter, r *http.Request) {
		pds.ServeStream(labeler, w, r)
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	col := &core.Collector{RelayURL: "http://127.0.0.1:1", LabelerURLs: []string{srv.URL}}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	blocks, errs := col.Stream(ctx)
	for b := range blocks {
		t.Fatalf("block delivered despite dead firehose: %+v", b)
	}
	var got error
	for err := range errs {
		got = err
	}
	if got == nil {
		t.Fatal("firehose subscribe failure not reported")
	}
}

// TestStreamSourceEmptyStream pins the degenerate case: a closed,
// empty stream renders the zero-state reports without panicking.
func TestStreamSourceEmptyStream(t *testing.T) {
	blocks := make(chan core.RecordBlock)
	close(blocks)
	reports, err := NewFullEngine().RunSource(&StreamSource{Blocks: blocks})
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) == 0 {
		t.Fatal("no reports from empty stream")
	}
	for _, r := range reports {
		if r.ID == "" {
			t.Fatal("unrendered report")
		}
	}
}
