package analysis

import (
	"time"

	"blueskies/internal/core"
)

// Average firehose frame sizes (bytes) by event type. Commit frames
// carry a CAR slice with the new record, the commit object, and the
// changed MST node blocks; the production average is ≈6 kB (this
// implementation's minimal frames run ≈1.2 kB because mirrors rebuild
// MST nodes locally instead of shipping them).
const (
	bytesPerCommit   = 6000
	bytesPerIdentity = 120
	bytesPerHandle   = 150
	bytesPerTomb     = 110
)

// FirehoseBandwidth estimates the firehose volume per subscribed
// client — the paper's §9 estimate is ≈30 GB/day at the production
// event rate.
type FirehoseBandwidth struct {
	EventsPerDay  float64
	BytesPerDay   float64
	GBPerDayPaper float64 // unscaled projection
}

// EstimateFirehoseBandwidth computes the §9 scalability estimate from
// the dataset's firehose counts and collection window.
func EstimateFirehoseBandwidth(ds *core.Dataset) FirehoseBandwidth {
	return estimateBandwidth(ds.WindowStart, ds.WindowEnd, ds.Firehose, ds.Scale)
}

func estimateBandwidth(windowStart, windowEnd time.Time, e core.EventCounts, scale int) FirehoseBandwidth {
	days := windowEnd.Sub(windowStart).Hours() / 24
	if days <= 0 {
		days = 1
	}
	totalBytes := float64(e.Commits)*bytesPerCommit +
		float64(e.Identity)*bytesPerIdentity +
		float64(e.Handle)*bytesPerHandle +
		float64(e.Tombstone)*bytesPerTomb
	bw := FirehoseBandwidth{
		EventsPerDay: float64(e.Total()) / days,
		BytesPerDay:  totalBytes / days,
	}
	bw.GBPerDayPaper = bw.BytesPerDay * float64(scale) / 1e9
	return bw
}

// Discussion renders the §9 scalability estimates.
func Discussion(ds *core.Dataset) *Report { return runOne(ds, newDiscussionAcc())[0] }
