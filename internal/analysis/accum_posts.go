package analysis

import (
	"fmt"
	"sort"

	"blueskies/internal/core"
)

// The first ColPosts consumers: per-language post volume and alt-text
// coverage (§4). Until these, no accumulator registered for the posts
// stream, so the engine skipped the corpus' largest collection in both
// batch and streaming runs.

// langPostAgg is one language's post-stream aggregate.
type langPostAgg struct {
	posts   int64
	media   int64
	altText int64
	likes   int64
	reposts int64
}

type postLangAcc struct{}

func newPostLangAcc() Accumulator { return postLangAcc{} }

type postLangShard struct {
	NopShard
	byLang map[string]*langPostAgg
}

func (postLangAcc) IDs() []string     { return []string{"S4P"} }
func (postLangAcc) Needs() Collection { return ColPosts }
func (postLangAcc) NewShard(*World) Shard {
	return &postLangShard{byLang: make(map[string]*langPostAgg, 16)}
}

func (s *postLangShard) Posts(ps []core.Post, _ int) {
	for i := range ps {
		p := &ps[i]
		a := s.byLang[p.Lang]
		if a == nil {
			a = &langPostAgg{}
			s.byLang[p.Lang] = a
		}
		a.posts++
		a.likes += int64(p.Likes)
		a.reposts += int64(p.Reposts)
		if p.HasMedia {
			a.media++
			if p.AltText {
				a.altText++
			}
		}
	}
}

func (postLangAcc) Merge(dst, src Shard, _ *MergeCtx) {
	d, s := dst.(*postLangShard), src.(*postLangShard)
	for lang, a := range s.byLang {
		da := d.byLang[lang]
		if da == nil {
			cp := *a
			d.byLang[lang] = &cp
			continue
		}
		da.posts += a.posts
		da.media += a.media
		da.altText += a.altText
		da.likes += a.likes
		da.reposts += a.reposts
	}
}

func (postLangAcc) Render(w *World, sh Shard, _ *LabelTables) []*Report {
	s := sh.(*postLangShard)
	langs := make([]string, 0, len(s.byLang))
	var total, totalMedia, totalAlt int64
	for lang, a := range s.byLang {
		langs = append(langs, lang)
		total += a.posts
		totalMedia += a.media
		totalAlt += a.altText
	}
	sort.Slice(langs, func(i, j int) bool {
		a, b := s.byLang[langs[i]], s.byLang[langs[j]]
		if a.posts != b.posts {
			return a.posts > b.posts
		}
		return langs[i] < langs[j]
	})
	r := &Report{
		ID:     "S4P",
		Title:  "Posts by self-assigned language; media alt-text coverage",
		Header: []string{"lang", "# posts", "share (%)", "# media", "alt-text (%)", "likes/post"},
	}
	for _, lang := range langs {
		a := s.byLang[lang]
		name := lang
		if name == "" {
			name = "(untagged)"
		}
		likesPerPost := "0.00"
		if a.posts > 0 {
			likesPerPost = fmt.Sprintf("%.2f", float64(a.likes)/float64(a.posts))
		}
		r.Rows = append(r.Rows, []string{
			name, fmt.Sprint(a.posts), pct(a.posts, total),
			fmt.Sprint(a.media), pct(a.altText, a.media), likesPerPost,
		})
	}
	r.Notes = append(r.Notes,
		fmt.Sprintf("window posts: %d; with media: %s; media carrying alt text: %s (paper §4: most media lacks alt text)",
			total, pct(totalMedia, total), pct(totalAlt, totalMedia)))
	return []*Report{r}
}

// ---- shard-state codec (the wire form of DESIGN.md §9) ----

type wireLangAgg struct {
	Posts   int64 `cbor:"p,omitempty"`
	Media   int64 `cbor:"m,omitempty"`
	AltText int64 `cbor:"a,omitempty"`
	Likes   int64 `cbor:"l,omitempty"`
	Reposts int64 `cbor:"r,omitempty"`
}

func (postLangAcc) MarshalShard(sh Shard) ([]byte, error) {
	s := sh.(*postLangShard)
	w := make(map[string]wireLangAgg, len(s.byLang))
	for lang, a := range s.byLang {
		w[lang] = wireLangAgg{Posts: a.posts, Media: a.media, AltText: a.altText, Likes: a.likes, Reposts: a.reposts}
	}
	return marshalState(w)
}

func (postLangAcc) UnmarshalShard(data []byte, _ StateBounds) (Shard, error) {
	w, err := unmarshalState[map[string]wireLangAgg](data)
	if err != nil {
		return nil, err
	}
	s := &postLangShard{byLang: make(map[string]*langPostAgg, len(*w))}
	for lang, a := range *w {
		s.byLang[lang] = &langPostAgg{posts: a.Posts, media: a.Media, altText: a.AltText, likes: a.Likes, reposts: a.Reposts}
	}
	return s, nil
}

// Section4Posts renders the per-language post volume and alt-text
// coverage report.
func Section4Posts(ds *core.Dataset) *Report { return runOne(ds, newPostLangAcc())[0] }

// LangPostVolume is one language's post-stream summary.
type LangPostVolume struct {
	Lang    string
	Posts   int64
	Media   int64
	AltText int64
	Likes   int64
	Reposts int64
}

// PostVolumes computes the per-language post volumes, ranked by post
// count with a language tie-break.
func PostVolumes(ds *core.Dataset) []LangPostVolume {
	_, sh, _ := runOneShard(ds, newPostLangAcc())
	s := sh.(*postLangShard)
	out := make([]LangPostVolume, 0, len(s.byLang))
	for lang, a := range s.byLang {
		out = append(out, LangPostVolume{
			Lang: lang, Posts: a.posts, Media: a.media, AltText: a.altText,
			Likes: a.likes, Reposts: a.reposts,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Posts != out[j].Posts {
			return out[i].Posts > out[j].Posts
		}
		return out[i].Lang < out[j].Lang
	})
	return out
}
