package analysis

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"blueskies/internal/core"
)

// Label-stream accumulators. All of them key their state by the
// engine's interned integer ids (URIID/ValID/LabelerIdx) instead of
// the string-keyed maps the legacy per-table scans used — the string
// hashing happens once in the shared traversal, not once per table.

const unseenSrc int32 = -1 << 30 // sentinel for "no source recorded yet"

func growI64(s []int64, n int) []int64 {
	for len(s) < n {
		s = append(s, 0)
	}
	return s
}

func growBool(s []bool, n int) []bool {
	for len(s) < n {
		s = append(s, false)
	}
	return s
}

func growI32(s []int32, n int, fill int32) []int32 {
	for len(s) < n {
		s = append(s, fill)
	}
	return s
}

func pairKey(uriID, valID int32) int64 { return int64(uriID)<<32 | int64(valID) }

// ---- Section 6: label-value bookkeeping ----

type section6Acc struct{}

func newSection6Acc() Accumulator { return section6Acc{} }

type section6Shard struct {
	NopShard
	// appliedSeen marks values carried by at least one application
	// (negations never extend the set: a negation only "counts" after
	// an application with the same (src,uri,val), which already
	// recorded the value — so the cleaned census is order-free).
	appliedSeen []bool // by ValID
	// firstSrc/multiSrc track per-URI source diversity over
	// applications (MultiServiceObjects).
	firstSrc []int32 // by URIID; unseenSrc = no application yet
	multiSrc []bool  // by URIID
	labeled  int
	multi    int
	// pairs tracks per-(URI,value) source diversity
	// (SameValueDifferentSrc).
	pairs map[int64]*pairState
}

type pairState struct {
	firstSrc int32
	multi    bool
}

func (section6Acc) IDs() []string     { return []string{"S6"} }
func (section6Acc) Needs() Collection { return ColLabels }
func (section6Acc) NewShard(*World) Shard {
	return &section6Shard{pairs: make(map[int64]*pairState, 1024)}
}

func (s *section6Shard) Labels(c *LabelChunk) {
	s.appliedSeen = growBool(s.appliedSeen, c.NumVals)
	s.firstSrc = growI32(s.firstSrc, c.NumURIs, unseenSrc)
	s.multiSrc = growBool(s.multiSrc, c.NumURIs)
	for i := range c.Labels {
		if c.Labels[i].Neg {
			continue
		}
		m := &c.Meta[i]
		s.appliedSeen[m.ValID] = true
		if fs := s.firstSrc[m.URIID]; fs == unseenSrc {
			s.firstSrc[m.URIID] = m.LabelerIdx
			s.labeled++
		} else if fs != m.LabelerIdx && !s.multiSrc[m.URIID] {
			s.multiSrc[m.URIID] = true
			s.multi++
		}
		k := pairKey(m.URIID, m.ValID)
		if p, ok := s.pairs[k]; !ok {
			s.pairs[k] = &pairState{firstSrc: m.LabelerIdx}
		} else if p.firstSrc != m.LabelerIdx {
			p.multi = true
		}
	}
}

func (section6Acc) Merge(dst, src Shard, mc *MergeCtx) {
	d, s := dst.(*section6Shard), src.(*section6Shard)
	d.appliedSeen = growBool(d.appliedSeen, mc.NumVals)
	d.firstSrc = growI32(d.firstSrc, mc.NumURIs, unseenSrc)
	d.multiSrc = growBool(d.multiSrc, mc.NumURIs)
	for vid, seen := range s.appliedSeen {
		if seen {
			d.appliedSeen[mc.ValRemap[vid]] = true
		}
	}
	for uid, fs := range s.firstSrc {
		if fs == unseenSrc {
			continue
		}
		g := mc.URIRemap[uid]
		gs := mc.RemapSrc(fs)
		if d.firstSrc[g] == unseenSrc {
			d.firstSrc[g] = gs
			d.labeled++
			if s.multiSrc[uid] {
				d.multiSrc[g] = true
				d.multi++
			}
		} else if !d.multiSrc[g] && (s.multiSrc[uid] || d.firstSrc[g] != gs) {
			d.multiSrc[g] = true
			d.multi++
		}
	}
	for k, p := range s.pairs {
		gk := pairKey(mc.URIRemap[int32(k>>32)], mc.ValRemap[int32(k&0xffffffff)])
		gs := mc.RemapSrc(p.firstSrc)
		if dp, ok := d.pairs[gk]; !ok {
			d.pairs[gk] = &pairState{firstSrc: gs, multi: p.multi}
		} else if !dp.multi && (p.multi || dp.firstSrc != gs) {
			dp.multi = true
		}
	}
}

func (s *section6Shard) stats(t *LabelTables) LabelValueStats {
	var st LabelValueStats
	st.DistinctRaw = len(t.Vals)
	for _, seen := range s.appliedSeen {
		if seen {
			st.DistinctCleaned++
		}
	}
	st.LabeledObjects = s.labeled
	st.MultiServiceObjects = s.multi
	if st.LabeledObjects > 0 {
		st.MultiServiceShare = float64(st.MultiServiceObjects) / float64(st.LabeledObjects)
	}
	for _, p := range s.pairs {
		if p.multi {
			st.SameValueDifferentSrc++
		}
	}
	return st
}

func (section6Acc) Render(w *World, sh Shard, t *LabelTables) []*Report {
	return []*Report{renderSection6(w.Labelers, sh.(*section6Shard).stats(t))}
}

// ---- Table 3: top community labelers ----

type table3Acc struct{}

func newTable3Acc() Accumulator { return table3Acc{} }

type table3Shard struct {
	NopShard
	counts []int64 // applied (non-negation) labels by LabelerIdx
}

func (table3Acc) IDs() []string     { return []string{"T3"} }
func (table3Acc) Needs() Collection { return ColLabels }
func (table3Acc) NewShard(w *World) Shard {
	return &table3Shard{counts: make([]int64, len(w.Labelers))}
}

func (s *table3Shard) Labels(c *LabelChunk) {
	for i := range c.Labels {
		if c.Labels[i].Neg {
			continue
		}
		if idx := c.Meta[i].LabelerIdx; idx >= 0 {
			// Streams may announce labelers after shard allocation;
			// grow on demand (append-only DID-index growth).
			s.counts = growI64(s.counts, int(idx)+1)
			s.counts[idx]++
		}
	}
}

func (table3Acc) Merge(dst, src Shard, _ *MergeCtx) {
	d, s := dst.(*table3Shard), src.(*table3Shard)
	d.counts = growI64(d.counts, len(s.counts))
	for i, n := range s.counts {
		d.counts[i] += n
	}
}

func communityTopFrom(labelers []core.Labeler, counts []int64) []LabelerVolume {
	var out []LabelerVolume
	for i, lb := range labelers {
		if lb.Official || i >= len(counts) {
			continue
		}
		if n := counts[i]; n > 0 {
			out = append(out, LabelerVolume{Labeler: lb, Applied: int(n)})
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Applied > out[j].Applied })
	return out
}

func (table3Acc) Render(w *World, sh Shard, _ *LabelTables) []*Report {
	return []*Report{renderTable3(communityTopFrom(w.Labelers, sh.(*table3Shard).counts))}
}

// ---- Table 4: label targets ----

var subjectKinds = []core.SubjectKind{
	core.SubjectPost, core.SubjectAccount, core.SubjectMedia, core.SubjectOther,
}

func kindIdx(k core.SubjectKind) int {
	switch k {
	case core.SubjectPost:
		return 0
	case core.SubjectAccount:
		return 1
	case core.SubjectMedia:
		return 2
	case core.SubjectOther:
		return 3
	}
	return -1
}

type table4Acc struct{}

func newTable4Acc() Accumulator { return table4Acc{} }

type table4Shard struct {
	NopShard
	kindMask []uint8 // by URIID: bit k set once the URI counted for kind k
	objects  [4]int64
	values   [4][]int64 // by ValID
}

func (table4Acc) IDs() []string         { return []string{"T4"} }
func (table4Acc) Needs() Collection     { return ColLabels }
func (table4Acc) NewShard(*World) Shard { return &table4Shard{} }

func (s *table4Shard) Labels(c *LabelChunk) {
	for len(s.kindMask) < c.NumURIs {
		s.kindMask = append(s.kindMask, 0)
	}
	for k := range s.values {
		s.values[k] = growI64(s.values[k], c.NumVals)
	}
	for i := range c.Labels {
		if c.Labels[i].Neg {
			continue
		}
		k := kindIdx(c.Labels[i].Kind)
		if k < 0 {
			continue
		}
		m := &c.Meta[i]
		if s.kindMask[m.URIID]&(1<<k) == 0 {
			s.kindMask[m.URIID] |= 1 << k
			s.objects[k]++
		}
		s.values[k][m.ValID]++
	}
}

func (table4Acc) Merge(dst, src Shard, mc *MergeCtx) {
	d, s := dst.(*table4Shard), src.(*table4Shard)
	for len(d.kindMask) < mc.NumURIs {
		d.kindMask = append(d.kindMask, 0)
	}
	for uid, mask := range s.kindMask {
		if mask == 0 {
			continue
		}
		g := mc.URIRemap[uid]
		for k := 0; k < 4; k++ {
			if mask&(1<<k) != 0 && d.kindMask[g]&(1<<k) == 0 {
				d.kindMask[g] |= 1 << k
				d.objects[k]++
			}
		}
	}
	for k := range d.values {
		d.values[k] = growI64(d.values[k], mc.NumVals)
		for vid, n := range s.values[k] {
			if n != 0 {
				d.values[k][mc.ValRemap[vid]] += n
			}
		}
	}
}

func (table4Acc) Render(_ *World, sh Shard, t *LabelTables) []*Report {
	s := sh.(*table4Shard)
	r := &Report{
		ID:     "T4",
		Title:  "Label targets with most-applied labels",
		Header: []string{"Object Type", "# Objects", "Share (%)", "Top Labels"},
	}
	var totalObjects int64
	for k := range subjectKinds {
		totalObjects += s.objects[k]
	}
	for k, kind := range subjectKinds {
		var kvs []KV
		for vid, n := range s.values[k] {
			if n > 0 {
				kvs = append(kvs, KV{Key: t.Vals[vid], Count: int(n)})
			}
		}
		var tl []string
		for _, kv := range topKVs(kvs, 5) {
			tl = append(tl, fmt.Sprintf("%s (%d)", kv.Key, kv.Count))
		}
		r.Rows = append(r.Rows, []string{
			string(kind), fmt.Sprint(s.objects[k]),
			pct(s.objects[k], totalObjects), strings.Join(tl, ", "),
		})
	}
	return []*Report{r}
}

// ---- Figure 4: labels by source per month ----

type figure4Acc struct{}

func newFigure4Acc() Accumulator { return figure4Acc{} }

type figure4Shard struct {
	NopShard
	byMonth map[int32]*[2]int // MonthIdx → {bluesky, community}
}

func (figure4Acc) IDs() []string     { return []string{"F4"} }
func (figure4Acc) Needs() Collection { return ColLabels }
func (figure4Acc) NewShard(*World) Shard {
	return &figure4Shard{byMonth: make(map[int32]*[2]int, 32)}
}

func (s *figure4Shard) Labels(c *LabelChunk) {
	for i := range c.Labels {
		if c.Labels[i].Neg {
			continue
		}
		m := &c.Meta[i]
		b := s.byMonth[m.MonthIdx]
		if b == nil {
			b = new([2]int)
			s.byMonth[m.MonthIdx] = b
		}
		if m.Official {
			b[0]++
		} else {
			b[1]++
		}
	}
}

func (figure4Acc) Merge(dst, src Shard, _ *MergeCtx) {
	d, s := dst.(*figure4Shard), src.(*figure4Shard)
	for idx, b := range s.byMonth {
		db := d.byMonth[idx]
		if db == nil {
			db = new([2]int)
			d.byMonth[idx] = db
		}
		db[0] += b[0]
		db[1] += b[1]
	}
}

func (s *figure4Shard) months(w *World) []MonthlyLabels {
	idxs := make([]int32, 0, len(s.byMonth))
	for idx := range s.byMonth {
		idxs = append(idxs, idx)
	}
	sort.Slice(idxs, func(i, j int) bool { return idxs[i] < idxs[j] })
	months := make([]MonthlyLabels, 0, len(idxs))
	for _, idx := range idxs {
		b := s.byMonth[idx]
		months = append(months, MonthlyLabels{Month: monthTime(idx), Bluesky: b[0], Community: b[1]})
	}
	for i := range months {
		n := 0
		for _, lb := range w.Labelers {
			if !lb.Official && !lb.Announced.After(months[i].Month.AddDate(0, 1, -1)) {
				n++
			}
		}
		months[i].Labelers = n
	}
	return months
}

func (figure4Acc) Render(w *World, sh Shard, _ *LabelTables) []*Report {
	return []*Report{renderFigure4(sh.(*figure4Shard).months(w))}
}

// ---- Table 6 + Figure 5: shared reaction-time aggregation ----

// labAgg is one labeler's fresh-post label aggregate.
type labAgg struct {
	total  int
	values []int64 // by ValID
	rts    []float64
}

type reactionAcc struct{}

func newReactionAcc() Accumulator { return reactionAcc{} }

type reactionShard struct {
	NopShard
	perLab []labAgg          // by LabelerIdx
	extra  map[int32]*labAgg // unknown sources, by negative src id
	total  int64
}

func (reactionAcc) IDs() []string     { return []string{"T6", "F5"} }
func (reactionAcc) Needs() Collection { return ColLabels }
func (reactionAcc) NewShard(w *World) Shard {
	return &reactionShard{perLab: make([]labAgg, len(w.Labelers))}
}

func (s *reactionShard) Labels(c *LabelChunk) {
	for i := range c.Labels {
		m := &c.Meta[i]
		if !m.FreshPost {
			continue
		}
		var agg *labAgg
		if m.LabelerIdx >= 0 {
			for len(s.perLab) <= int(m.LabelerIdx) {
				s.perLab = append(s.perLab, labAgg{}) // late-announced labeler
			}
			agg = &s.perLab[m.LabelerIdx]
		} else {
			agg = s.extra[m.LabelerIdx]
			if agg == nil {
				if s.extra == nil {
					s.extra = make(map[int32]*labAgg, 4)
				}
				agg = &labAgg{}
				s.extra[m.LabelerIdx] = agg
			}
		}
		agg.total++
		s.total++
		agg.values = growI64(agg.values, int(m.ValID)+1)
		agg.values[m.ValID]++
		agg.rts = append(agg.rts, m.RTSec)
	}
}

func mergeLabAgg(dst, src *labAgg, mc *MergeCtx) {
	dst.total += src.total
	dst.values = growI64(dst.values, mc.NumVals)
	for vid, n := range src.values {
		if n != 0 {
			dst.values[mc.ValRemap[vid]] += n
		}
	}
	dst.rts = append(dst.rts, src.rts...)
}

func (reactionAcc) Merge(dst, src Shard, mc *MergeCtx) {
	d, s := dst.(*reactionShard), src.(*reactionShard)
	d.total += s.total
	for len(d.perLab) < len(s.perLab) {
		d.perLab = append(d.perLab, labAgg{})
	}
	for i := range s.perLab {
		if s.perLab[i].total > 0 {
			mergeLabAgg(&d.perLab[i], &s.perLab[i], mc)
		}
	}
	for id, agg := range s.extra {
		gid := mc.RemapSrc(id)
		if d.extra == nil {
			d.extra = make(map[int32]*labAgg, len(s.extra))
		}
		dagg := d.extra[gid]
		if dagg == nil {
			dagg = &labAgg{}
			d.extra[gid] = dagg
		}
		mergeLabAgg(dagg, agg, mc)
	}
}

// nearestRank mirrors Quantile on an already-sorted sample.
func nearestRank(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return math.NaN()
	}
	return sorted[int(q*float64(len(sorted)-1))]
}

// reactionRows builds the ReactionTimes rows plus each row's sorted
// reaction-time sample (sorted once, reused for median/IQD/quartiles —
// the legacy path re-sorted per quantile call).
func (s *reactionShard) reactionRows(w *World, t *LabelTables) ([]ReactionRow, [][]float64) {
	type cand struct {
		row ReactionRow
		agg *labAgg
	}
	var cands []cand
	for i := range s.perLab {
		if s.perLab[i].total > 0 {
			lb := w.Labelers[i]
			cands = append(cands, cand{
				row: ReactionRow{DID: lb.DID, Name: lb.Name, Official: lb.Official},
				agg: &s.perLab[i],
			})
		}
	}
	extraIDs := make([]int32, 0, len(s.extra))
	for id := range s.extra {
		extraIDs = append(extraIDs, id)
	}
	sort.Slice(extraIDs, func(i, j int) bool {
		return t.ExtraSrcs[-2-extraIDs[i]] < t.ExtraSrcs[-2-extraIDs[j]]
	})
	for _, id := range extraIDs {
		cands = append(cands, cand{
			row: ReactionRow{DID: t.ExtraSrcs[-2-id]},
			agg: s.extra[id],
		})
	}
	sort.SliceStable(cands, func(i, j int) bool { return cands[i].agg.total > cands[j].agg.total })
	rows := make([]ReactionRow, 0, len(cands))
	samples := make([][]float64, 0, len(cands))
	for _, c := range cands {
		sorted := append([]float64(nil), c.agg.rts...)
		sort.Float64s(sorted)
		row := c.row
		row.Total = c.agg.total
		row.MedianSec = nearestRank(sorted, 0.5)
		row.IQDSec = nearestRank(sorted, 0.75) - nearestRank(sorted, 0.25)
		row.Share = float64(c.agg.total) / float64(s.total)
		var kvs []KV
		for vid, n := range c.agg.values {
			if n > 0 {
				row.Unique++
				kvs = append(kvs, KV{Key: t.Vals[vid], Count: int(n)})
			}
		}
		for _, kv := range topKVs(kvs, 3) {
			row.TopValues = append(row.TopValues, kv.Key)
		}
		rows = append(rows, row)
		samples = append(samples, sorted)
	}
	return rows, samples
}

func (reactionAcc) Render(w *World, sh Shard, t *LabelTables) []*Report {
	rows, samples := sh.(*reactionShard).reactionRows(w, t)
	t6 := renderTable6(rows)
	f5 := &Report{
		ID:     "F5",
		Title:  "Labels produced vs reaction time per labeler (median, Q1, Q3)",
		Header: []string{"labeler", "source", "# labels", "Q1", "median", "Q3"},
	}
	for i, row := range rows {
		src := "Community"
		if row.Official {
			src = "Bluesky"
		}
		f5.Rows = append(f5.Rows, []string{
			row.Name, src, fmt.Sprint(row.Total),
			FormatDuration(nearestRank(samples[i], 0.25)),
			FormatDuration(nearestRank(samples[i], 0.5)),
			FormatDuration(nearestRank(samples[i], 0.75)),
		})
	}
	return []*Report{t6, f5}
}

// ---- Figure 6: per-label-value reaction times ----

type figure6Acc struct{}

func newFigure6Acc() Accumulator { return figure6Acc{} }

type valAgg struct {
	present  bool
	official bool
	objects  int
	rts      []float64
}

type figure6Shard struct {
	NopShard
	perVal []valAgg           // by ValID
	seen   map[int64]struct{} // (URIID, ValID) pairs already counted
}

func (figure6Acc) IDs() []string     { return []string{"F6"} }
func (figure6Acc) Needs() Collection { return ColLabels }
func (figure6Acc) NewShard(*World) Shard {
	return &figure6Shard{seen: make(map[int64]struct{}, 1024)}
}

func (s *figure6Shard) Labels(c *LabelChunk) {
	for len(s.perVal) < c.NumVals {
		s.perVal = append(s.perVal, valAgg{})
	}
	for i := range c.Labels {
		m := &c.Meta[i]
		if !m.FreshPost {
			continue
		}
		a := &s.perVal[m.ValID]
		if !a.present {
			a.present = true
			a.official = m.Official
		}
		k := pairKey(m.URIID, m.ValID)
		if _, dup := s.seen[k]; !dup {
			s.seen[k] = struct{}{}
			a.objects++
		}
		a.rts = append(a.rts, m.RTSec)
	}
}

func (figure6Acc) Merge(dst, src Shard, mc *MergeCtx) {
	d, s := dst.(*figure6Shard), src.(*figure6Shard)
	for len(d.perVal) < mc.NumVals {
		d.perVal = append(d.perVal, valAgg{})
	}
	for vid := range s.perVal {
		sa := &s.perVal[vid]
		if !sa.present {
			continue
		}
		da := &d.perVal[mc.ValRemap[vid]]
		if !da.present {
			da.present = true
			da.official = sa.official
		}
		da.rts = append(da.rts, sa.rts...)
	}
	for k := range s.seen {
		gk := pairKey(mc.URIRemap[int32(k>>32)], mc.ValRemap[int32(k&0xffffffff)])
		if _, dup := d.seen[gk]; !dup {
			d.seen[gk] = struct{}{}
			d.perVal[mc.ValRemap[int32(k&0xffffffff)]].objects++
		}
	}
}

func (s *figure6Shard) valueRows(t *LabelTables) []ValueReaction {
	var out []ValueReaction
	for vid := range s.perVal {
		a := &s.perVal[vid]
		if !a.present {
			continue
		}
		sorted := append([]float64(nil), a.rts...)
		sort.Float64s(sorted)
		out = append(out, ValueReaction{
			Val: t.Vals[vid], Official: a.official, Objects: a.objects,
			Median: nearestRank(sorted, 0.5),
			Q1:     nearestRank(sorted, 0.25),
			Q3:     nearestRank(sorted, 0.75),
		})
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Objects > out[j].Objects })
	return out
}

func (figure6Acc) Render(_ *World, sh Shard, t *LabelTables) []*Report {
	return []*Report{renderFigure6(sh.(*figure6Shard).valueRows(t))}
}

// ---- shard-state codecs (the wire forms of DESIGN.md §9) ----
//
// Label shards carry interned ids, so their decoders validate every id
// against the partition state's own intern-table sizes (StateBounds):
// the level-two fold indexes MergeCtx remap slices by these ids, and a
// hostile or stale state must error at decode, not index out of range
// mid-fold.

type wirePairState struct {
	URI   int32 `cbor:"u"`
	Val   int32 `cbor:"v"`
	Src   int32 `cbor:"s,omitempty"`
	Multi bool  `cbor:"m,omitempty"`
}

type wireSection6 struct {
	AppliedSeen []bool          `cbor:"seen,omitempty"`
	FirstSrc    []int32         `cbor:"firstSrc,omitempty"`
	MultiSrc    []bool          `cbor:"multiSrc,omitempty"`
	Labeled     int64           `cbor:"labeled,omitempty"`
	Multi       int64           `cbor:"multi,omitempty"`
	Pairs       []wirePairState `cbor:"pairs,omitempty"`
}

func (section6Acc) MarshalShard(sh Shard) ([]byte, error) {
	s := sh.(*section6Shard)
	w := &wireSection6{
		AppliedSeen: trimBool(s.appliedSeen), FirstSrc: s.firstSrc, MultiSrc: s.multiSrc,
		Labeled: int64(s.labeled), Multi: int64(s.multi),
	}
	// Trim the unseen tail (canonical form: by-id lengths depend on the
	// worker-merge pattern, not on state); the columns stay paired.
	n := len(w.FirstSrc)
	for n > 0 && w.FirstSrc[n-1] == unseenSrc {
		n--
	}
	w.FirstSrc, w.MultiSrc = w.FirstSrc[:n], w.MultiSrc[:n]
	for k, p := range s.pairs {
		w.Pairs = append(w.Pairs, wirePairState{
			URI: int32(k >> 32), Val: int32(k & 0xffffffff), Src: p.firstSrc, Multi: p.multi,
		})
	}
	sort.Slice(w.Pairs, func(i, j int) bool {
		if w.Pairs[i].URI != w.Pairs[j].URI {
			return w.Pairs[i].URI < w.Pairs[j].URI
		}
		return w.Pairs[i].Val < w.Pairs[j].Val
	})
	return marshalState(w)
}

func (section6Acc) UnmarshalShard(data []byte, b StateBounds) (Shard, error) {
	w, err := unmarshalState[wireSection6](data)
	if err != nil {
		return nil, err
	}
	if err := checkLen("applied-value", len(w.AppliedSeen), b.Vals); err != nil {
		return nil, err
	}
	if err := checkLen("first-src", len(w.FirstSrc), b.URIs); err != nil {
		return nil, err
	}
	if len(w.MultiSrc) != len(w.FirstSrc) {
		return nil, fmt.Errorf("multi-src column of %d rows against %d first-src rows", len(w.MultiSrc), len(w.FirstSrc))
	}
	for _, fs := range w.FirstSrc {
		if fs == unseenSrc {
			continue
		}
		if err := b.checkSrc(fs); err != nil {
			return nil, err
		}
	}
	s := &section6Shard{
		appliedSeen: w.AppliedSeen, firstSrc: w.FirstSrc, multiSrc: w.MultiSrc,
		labeled: int(w.Labeled), multi: int(w.Multi),
		pairs: make(map[int64]*pairState, len(w.Pairs)),
	}
	for _, p := range w.Pairs {
		if err := checkID("URI", p.URI, b.URIs); err != nil {
			return nil, err
		}
		if err := checkID("value", p.Val, b.Vals); err != nil {
			return nil, err
		}
		if err := b.checkSrc(p.Src); err != nil {
			return nil, err
		}
		s.pairs[pairKey(p.URI, p.Val)] = &pairState{firstSrc: p.Src, multi: p.Multi}
	}
	return s, nil
}

type wireTable3 struct {
	Counts []int64 `cbor:"counts,omitempty"`
}

func (table3Acc) MarshalShard(sh Shard) ([]byte, error) {
	return marshalState(&wireTable3{Counts: trimI64(sh.(*table3Shard).counts)})
}

func (table3Acc) UnmarshalShard(data []byte, _ StateBounds) (Shard, error) {
	w, err := unmarshalState[wireTable3](data)
	if err != nil {
		return nil, err
	}
	return &table3Shard{counts: w.Counts}, nil
}

type wireTable4 struct {
	KindMask []byte    `cbor:"mask,omitempty"`
	Objects  []int64   `cbor:"objects,omitempty"`
	Values   [][]int64 `cbor:"values,omitempty"`
}

func (table4Acc) MarshalShard(sh Shard) ([]byte, error) {
	s := sh.(*table4Shard)
	mask := s.kindMask
	for len(mask) > 0 && mask[len(mask)-1] == 0 {
		mask = mask[:len(mask)-1]
	}
	w := &wireTable4{KindMask: mask, Objects: s.objects[:], Values: make([][]int64, 4)}
	for k := range s.values {
		w.Values[k] = trimI64(s.values[k])
	}
	return marshalState(w)
}

func (table4Acc) UnmarshalShard(data []byte, b StateBounds) (Shard, error) {
	w, err := unmarshalState[wireTable4](data)
	if err != nil {
		return nil, err
	}
	if err := checkLen("kind-mask", len(w.KindMask), b.URIs); err != nil {
		return nil, err
	}
	if len(w.Objects) != 4 || len(w.Values) != 4 {
		return nil, fmt.Errorf("%d object and %d value rows, want 4 subject kinds", len(w.Objects), len(w.Values))
	}
	s := &table4Shard{kindMask: w.KindMask}
	for k := 0; k < 4; k++ {
		if err := checkLen("value-count", len(w.Values[k]), b.Vals); err != nil {
			return nil, err
		}
		s.objects[k] = w.Objects[k]
		s.values[k] = w.Values[k]
	}
	return s, nil
}

type wireMonth struct {
	Month     int32 `cbor:"m"`
	Bluesky   int64 `cbor:"b,omitempty"`
	Community int64 `cbor:"c,omitempty"`
}

type wireFigure4 struct {
	Months []wireMonth `cbor:"months,omitempty"`
}

func (figure4Acc) MarshalShard(sh Shard) ([]byte, error) {
	s := sh.(*figure4Shard)
	w := &wireFigure4{Months: make([]wireMonth, 0, len(s.byMonth))}
	for idx, b := range s.byMonth {
		w.Months = append(w.Months, wireMonth{Month: idx, Bluesky: int64(b[0]), Community: int64(b[1])})
	}
	sort.Slice(w.Months, func(i, j int) bool { return w.Months[i].Month < w.Months[j].Month })
	return marshalState(w)
}

func (figure4Acc) UnmarshalShard(data []byte, _ StateBounds) (Shard, error) {
	w, err := unmarshalState[wireFigure4](data)
	if err != nil {
		return nil, err
	}
	s := &figure4Shard{byMonth: make(map[int32]*[2]int, len(w.Months))}
	for _, m := range w.Months {
		s.byMonth[m.Month] = &[2]int{int(m.Bluesky), int(m.Community)}
	}
	return s, nil
}

type wireLabAgg struct {
	Total  int64     `cbor:"t,omitempty"`
	Values []int64   `cbor:"v,omitempty"`
	RTs    []float64 `cbor:"rts,omitempty"`
}

type wireExtraAgg struct {
	ID  int32      `cbor:"id"`
	Agg wireLabAgg `cbor:"agg"`
}

type wireReaction struct {
	PerLab []wireLabAgg   `cbor:"perLab,omitempty"`
	Extra  []wireExtraAgg `cbor:"extra,omitempty"`
	Total  int64          `cbor:"total,omitempty"`
}

func labAggToWire(a *labAgg) wireLabAgg {
	return wireLabAgg{Total: int64(a.total), Values: trimI64(a.values), RTs: a.rts}
}

func labAggFromWire(w *wireLabAgg, b StateBounds) (labAgg, error) {
	if err := checkLen("value-count", len(w.Values), b.Vals); err != nil {
		return labAgg{}, err
	}
	return labAgg{total: int(w.Total), values: w.Values, rts: w.RTs}, nil
}

func (reactionAcc) MarshalShard(sh Shard) ([]byte, error) {
	s := sh.(*reactionShard)
	perLab := s.perLab
	for len(perLab) > 0 && perLab[len(perLab)-1].total == 0 {
		perLab = perLab[:len(perLab)-1]
	}
	w := &wireReaction{Total: s.total, PerLab: make([]wireLabAgg, 0, len(perLab))}
	for i := range perLab {
		w.PerLab = append(w.PerLab, labAggToWire(&perLab[i]))
	}
	for id, agg := range s.extra {
		w.Extra = append(w.Extra, wireExtraAgg{ID: id, Agg: labAggToWire(agg)})
	}
	sort.Slice(w.Extra, func(i, j int) bool { return w.Extra[i].ID > w.Extra[j].ID })
	return marshalState(w)
}

func (reactionAcc) UnmarshalShard(data []byte, b StateBounds) (Shard, error) {
	w, err := unmarshalState[wireReaction](data)
	if err != nil {
		return nil, err
	}
	// Per-labeler aggregates resolve their names through World.Labelers
	// at render; an aggregate beyond the announced population cannot
	// have arisen from a real traversal.
	if err := checkLen("per-labeler aggregate", len(w.PerLab), b.Labelers); err != nil {
		return nil, err
	}
	s := &reactionShard{total: w.Total, perLab: make([]labAgg, 0, len(w.PerLab))}
	for i := range w.PerLab {
		agg, err := labAggFromWire(&w.PerLab[i], b)
		if err != nil {
			return nil, err
		}
		s.perLab = append(s.perLab, agg)
	}
	for i := range w.Extra {
		id := w.Extra[i].ID
		// Extra aggregates resolve their DID through ExtraSrcs at render;
		// only strictly-negative in-table ids may appear here.
		if id >= -1 {
			return nil, fmt.Errorf("extra-source aggregate carries non-extra id %d", id)
		}
		if err := b.checkSrc(id); err != nil {
			return nil, err
		}
		agg, err := labAggFromWire(&w.Extra[i].Agg, b)
		if err != nil {
			return nil, err
		}
		if s.extra == nil {
			s.extra = make(map[int32]*labAgg, len(w.Extra))
		}
		cp := agg
		s.extra[id] = &cp
	}
	return s, nil
}

type wireValAgg struct {
	Present  bool      `cbor:"p,omitempty"`
	Official bool      `cbor:"o,omitempty"`
	Objects  int64     `cbor:"n,omitempty"`
	RTs      []float64 `cbor:"rts,omitempty"`
}

type wireFigure6 struct {
	PerVal []wireValAgg    `cbor:"perVal,omitempty"`
	Seen   []wirePairState `cbor:"seen,omitempty"`
}

func (figure6Acc) MarshalShard(sh Shard) ([]byte, error) {
	s := sh.(*figure6Shard)
	perVal := s.perVal
	for n := len(perVal); n > 0; n-- {
		if a := &perVal[n-1]; a.present || a.objects != 0 || len(a.rts) != 0 {
			break
		}
		perVal = perVal[:n-1]
	}
	w := &wireFigure6{PerVal: make([]wireValAgg, 0, len(perVal))}
	for i := range perVal {
		a := &perVal[i]
		w.PerVal = append(w.PerVal, wireValAgg{Present: a.present, Official: a.official, Objects: int64(a.objects), RTs: a.rts})
	}
	for k := range s.seen {
		w.Seen = append(w.Seen, wirePairState{URI: int32(k >> 32), Val: int32(k & 0xffffffff)})
	}
	sort.Slice(w.Seen, func(i, j int) bool {
		if w.Seen[i].URI != w.Seen[j].URI {
			return w.Seen[i].URI < w.Seen[j].URI
		}
		return w.Seen[i].Val < w.Seen[j].Val
	})
	return marshalState(w)
}

func (figure6Acc) UnmarshalShard(data []byte, b StateBounds) (Shard, error) {
	w, err := unmarshalState[wireFigure6](data)
	if err != nil {
		return nil, err
	}
	if err := checkLen("per-value aggregate", len(w.PerVal), b.Vals); err != nil {
		return nil, err
	}
	s := &figure6Shard{
		perVal: make([]valAgg, 0, len(w.PerVal)),
		seen:   make(map[int64]struct{}, len(w.Seen)),
	}
	for i := range w.PerVal {
		a := &w.PerVal[i]
		s.perVal = append(s.perVal, valAgg{present: a.Present, official: a.Official, objects: int(a.Objects), rts: a.RTs})
	}
	for _, p := range w.Seen {
		if err := checkID("URI", p.URI, b.URIs); err != nil {
			return nil, err
		}
		if err := checkID("value", p.Val, b.Vals); err != nil {
			return nil, err
		}
		s.seen[pairKey(p.URI, p.Val)] = struct{}{}
	}
	return s, nil
}
