package analysis

import (
	"runtime"
	"sync"

	"blueskies/internal/core"
)

// RenderFunc renders a full report set from merged accumulator state;
// sources use it to emit mid-run snapshots.
type RenderFunc func(w *World, merged []Shard, t *LabelTables) []*Report

// Source is one corpus traversal: it allocates per-worker shard state
// for the registered accumulators, streams every needed record block
// through it, and returns the merged per-accumulator state with the
// render context and global label intern tables (nil when labels were
// not consumed).
//
// workers ≤ 0 lets the source autotune. render, when non-nil, lets
// the source emit snapshots mid-run (StreamSource does; DatasetSource
// ignores it).
type Source interface {
	Run(accs []Accumulator, workers int, render RenderFunc) (*World, []Shard, *LabelTables, error)
}

// OffloadedSource marks a Source whose Run performs its traversal on
// another machine (a remote worker). MultiSource runs such partitions
// without claiming a local CPU slot, so remote fan-out is bounded by
// the fleet size, not by the scheduler's GOMAXPROCS.
type OffloadedSource interface {
	Source
	// Offloaded reports whether this run's heavy lifting happens
	// elsewhere.
	Offloaded() bool
}

// DatasetSource traverses a materialized core.Dataset, sharded across
// workers over contiguous index ranges — the batch execution mode.
type DatasetSource struct {
	ds *core.Dataset
	// base offsets every block's global start index — the partition's
	// position in a partitioned corpus (zero for a standalone dataset),
	// so index-dependent accumulator state (e.g. the weekly sampling of
	// Figures 1–2) is computed against corpus positions.
	base core.CollectionCounts
	// maxAuto caps the autotuned worker count (0 = GOMAXPROCS). A
	// partitioned run sets it so concurrently-traversing partitions
	// share the machine instead of each claiming every core.
	maxAuto int
}

// NewDatasetSource wraps a materialized dataset as a Source.
func NewDatasetSource(ds *core.Dataset) *DatasetSource { return &DatasetSource{ds: ds} }

// NewDatasetSourceAt wraps one partition of a partitioned corpus,
// feeding record blocks with global base indexes offset by the
// partition's manifest position.
func NewDatasetSourceAt(ds *core.Dataset, base core.CollectionCounts) *DatasetSource {
	return &DatasetSource{ds: ds, base: base}
}

// minRecordsPerWorker is the autotuning threshold: below it, an extra
// traversal worker costs more in merge/remap overhead than its share
// of the scan saves (the small-dataset regression BenchmarkEngineWorkers
// measures).
const minRecordsPerWorker = 1 << 16

// autoWorkers picks the worker count from the number of records the
// registered accumulators will actually traverse, capped by
// GOMAXPROCS.
func autoWorkers(ds *core.Dataset, need Collection) int {
	total := 0
	if need&ColUsers != 0 {
		total += len(ds.Users)
	}
	if need&ColPosts != 0 {
		total += len(ds.Posts)
	}
	if need&ColDays != 0 {
		total += len(ds.Daily)
	}
	if need&ColLabels != 0 {
		total += len(ds.Labels)
	}
	if need&ColFeedGens != 0 {
		total += len(ds.FeedGens)
	}
	if need&ColDomains != 0 {
		total += len(ds.Domains)
	}
	if need&ColHandleUpdates != 0 {
		total += len(ds.HandleUpdates)
	}
	w := total / minRecordsPerWorker
	if max := runtime.GOMAXPROCS(0); w > max {
		w = max
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Run implements Source with today's sharded traversal: contiguous
// index ranges per worker, per-worker intern tables folded in worker
// order, shard merge in worker order — byte-identical to a sequential
// scan at any worker count.
func (src *DatasetSource) Run(accs []Accumulator, workers int, _ RenderFunc) (*World, []Shard, *LabelTables, error) {
	ds := src.ds
	need := Collection(0)
	for _, a := range accs {
		need |= a.Needs()
	}
	w := workers
	if w <= 0 {
		w = autoWorkers(ds, need)
		if src.maxAuto > 0 && w > src.maxAuto {
			w = src.maxAuto
		}
	}
	world := NewWorld(ds)
	var didIdx map[string]int32
	if need&ColLabels != 0 {
		didIdx = ds.LabelerIndex()
	}

	shards := make([][]Shard, len(accs)) // [acc][worker]
	for ai, a := range accs {
		shards[ai] = make([]Shard, w)
		for wi := range shards[ai] {
			shards[ai][wi] = a.NewShard(world)
		}
	}
	tables := make([]*LabelTables, w)

	if w == 1 {
		tables[0] = feedRange(ds, src.base, accs, shardCol(shards, 0), 0, 1, didIdx)
	} else {
		var wg sync.WaitGroup
		for wi := 0; wi < w; wi++ {
			wg.Add(1)
			go func(wi int) {
				defer wg.Done()
				tables[wi] = feedRange(ds, src.base, accs, shardCol(shards, wi), wi, w, didIdx)
			}(wi)
		}
		wg.Wait()
	}

	// Fold worker intern tables into the global id space. Worker 0's
	// table is extended in place; first-occurrence order across the
	// ordered workers matches a sequential scan exactly.
	var gt *LabelTables
	var mcs []*MergeCtx
	if need&ColLabels != 0 {
		gt = tables[0]
		mcs = make([]*MergeCtx, w)
		for wi := 1; wi < w; wi++ {
			mcs[wi] = remapTables(gt, tables[wi])
		}
		for wi := 1; wi < w; wi++ {
			mcs[wi].NumURIs = len(gt.URIs)
			mcs[wi].NumVals = len(gt.Vals)
		}
	}

	merged := make([]Shard, len(accs))
	for ai, a := range accs {
		merged[ai] = shards[ai][0]
		for wi := 1; wi < w; wi++ {
			var mc *MergeCtx
			if a.Needs()&ColLabels != 0 {
				mc = mcs[wi]
			}
			a.Merge(merged[ai], shards[ai][wi], mc)
		}
	}
	return world, merged, gt, nil
}

func shardCol(shards [][]Shard, wi int) []Shard {
	col := make([]Shard, len(shards))
	for ai := range shards {
		col[ai] = shards[ai][wi]
	}
	return col
}

func remapTables(dst, src *LabelTables) *MergeCtx {
	mc := &MergeCtx{
		URIRemap: make([]int32, len(src.URIs)),
		ValRemap: make([]int32, len(src.Vals)),
		SrcRemap: make([]int32, len(src.ExtraSrcs)),
	}
	for i, s := range src.URIs {
		mc.URIRemap[i] = dst.internURI(s)
	}
	for i, s := range src.Vals {
		mc.ValRemap[i] = dst.internVal(s)
	}
	for i, s := range src.ExtraSrcs {
		mc.SrcRemap[i] = dst.internExtraSrc(s)
	}
	return mc
}

// foldTables folds src's intern tables into dst, returning the global
// tables and the remapping for src's local ids. Unlike remapTables it
// tolerates the shapes zero-record partitions produce: a nil or empty
// src remaps as a no-op (empty remap slices — nothing holds its ids),
// and a nil dst adopts a fresh table so later partitions still fold
// into a well-defined global id space.
func foldTables(dst, src *LabelTables) (*LabelTables, *MergeCtx) {
	if dst == nil {
		dst = newLabelTables()
	}
	if src == nil {
		return dst, &MergeCtx{}
	}
	return dst, remapTables(dst, src)
}

// cut returns worker wi's contiguous slice bounds over n records.
func cut(n, wi, w int) (int, int) { return n * wi / w, n * (wi + 1) / w }

// feedRange streams worker wi's share of every needed collection
// through the given shards, block by block, and returns the worker's
// label intern tables (nil when labels are not consumed). off is the
// dataset's base offset within a partitioned corpus; block base
// indexes are global (offset + local index).
func feedRange(ds *core.Dataset, off core.CollectionCounts, accs []Accumulator, shards []Shard, wi, w int, didIdx map[string]int32) *LabelTables {
	need := Collection(0)
	for _, a := range accs {
		need |= a.Needs()
	}
	dispatch := func(col Collection, lo, hi int, f func(s Shard, lo, hi int)) {
		for b := lo; b < hi; b += blockSize {
			be := min(b+blockSize, hi)
			for ai, a := range accs {
				if a.Needs()&col != 0 {
					f(shards[ai], b, be)
				}
			}
		}
	}
	if need&ColUsers != 0 {
		lo, hi := cut(len(ds.Users), wi, w)
		dispatch(ColUsers, lo, hi, func(s Shard, b, e int) { s.Users(ds.Users[b:e], off.Users+b) })
	}
	if need&ColPosts != 0 {
		lo, hi := cut(len(ds.Posts), wi, w)
		dispatch(ColPosts, lo, hi, func(s Shard, b, e int) { s.Posts(ds.Posts[b:e], off.Posts+b) })
	}
	if need&ColDays != 0 {
		lo, hi := cut(len(ds.Daily), wi, w)
		dispatch(ColDays, lo, hi, func(s Shard, b, e int) { s.Days(ds.Daily[b:e], off.Days+b) })
	}
	var tables *LabelTables
	if need&ColLabels != 0 {
		tables = newLabelTables()
		lo, hi := cut(len(ds.Labels), wi, w)
		meta := make([]LabelMeta, 0, blockSize)
		for b := lo; b < hi; b += blockSize {
			be := min(b+blockSize, hi)
			chunk := LabelChunk{Labels: ds.Labels[b:be], Base: off.Labels + b}
			chunk.Meta = buildLabelMeta(ds.Labelers, chunk.Labels, meta[:0], tables, didIdx)
			chunk.NumURIs = len(tables.URIs)
			chunk.NumVals = len(tables.Vals)
			for ai, a := range accs {
				if a.Needs()&ColLabels != 0 {
					shards[ai].Labels(&chunk)
				}
			}
		}
	}
	if need&ColFeedGens != 0 {
		lo, hi := cut(len(ds.FeedGens), wi, w)
		dispatch(ColFeedGens, lo, hi, func(s Shard, b, e int) { s.FeedGens(ds.FeedGens[b:e], off.FeedGens+b) })
	}
	if need&ColDomains != 0 {
		lo, hi := cut(len(ds.Domains), wi, w)
		dispatch(ColDomains, lo, hi, func(s Shard, b, e int) { s.Domains(ds.Domains[b:e], off.Domains+b) })
	}
	if need&ColHandleUpdates != 0 {
		lo, hi := cut(len(ds.HandleUpdates), wi, w)
		dispatch(ColHandleUpdates, lo, hi, func(s Shard, b, e int) { s.HandleUpdates(ds.HandleUpdates[b:e], off.HandleUpdates+b) })
	}
	return tables
}

// buildLabelMeta computes the shared per-label metadata for one block.
// labelers is the announced population backing didIdx.
func buildLabelMeta(labelers []core.Labeler, ls []core.Label, meta []LabelMeta, t *LabelTables, didIdx map[string]int32) []LabelMeta {
	for i := range ls {
		l := &ls[i]
		m := LabelMeta{
			URIID:    t.internURI(l.URI),
			ValID:    t.internVal(l.Val),
			MonthIdx: int32(l.Applied.Year())*12 + int32(l.Applied.Month()) - 1,
		}
		if idx, ok := didIdx[l.Src]; ok {
			m.LabelerIdx = idx
			m.Official = labelers[idx].Official
		} else {
			m.LabelerIdx = t.internExtraSrc(l.Src)
		}
		if !l.Neg && l.FreshSubject && l.Kind == core.SubjectPost {
			m.FreshPost = true
			m.RTSec = l.ReactionTime().Seconds()
		}
		meta = append(meta, m)
	}
	return meta
}

// buildLabelMetaFused is buildLabelMeta for blocks decoded with a
// dictionary view: the label Src/Val/Kind columns arrive as ids into
// db.Dict, so each distinct string is hashed into the intern tables
// once per block (at its first referencing row) instead of once per
// record. Because intern ids are assigned in first-occurrence order
// and interning is idempotent, the resulting tables and metadata are
// byte-identical to the per-record path. URIs are not
// dictionary-interned (they are nearly all distinct) and stay
// per-record.
//
// db's id columns must be parallel to ls — the caller checks.
func buildLabelMetaFused(labelers []core.Labeler, ls []core.Label, db *core.DictBlock, meta []LabelMeta, t *LabelTables, didIdx map[string]int32) []LabelMeta {
	// Per-dict-id memos, filled lazily so table growth happens in
	// exactly the order the per-record path would produce. valIDs uses
	// -1 as "unseen" (interned val ids are ≥ 0); src ids can be
	// negative (extra-src space), so srcSeen carries that bit.
	valIDs := make([]int32, len(db.Dict))
	for i := range valIDs {
		valIDs[i] = -1
	}
	srcSeen := make([]bool, len(db.Dict))
	srcIdx := make([]int32, len(db.Dict))
	official := make([]bool, len(db.Dict))
	kindPost := make([]bool, len(db.Dict))
	for i, s := range db.Dict {
		kindPost[i] = s == string(core.SubjectPost)
	}
	for i := range ls {
		l := &ls[i]
		m := LabelMeta{
			URIID:    t.internURI(l.URI),
			MonthIdx: int32(l.Applied.Year())*12 + int32(l.Applied.Month()) - 1,
		}
		v := db.LabelVal[i]
		if valIDs[v] < 0 {
			valIDs[v] = t.internVal(db.Dict[v])
		}
		m.ValID = valIDs[v]
		s := db.LabelSrc[i]
		if !srcSeen[s] {
			srcSeen[s] = true
			if idx, ok := didIdx[db.Dict[s]]; ok {
				srcIdx[s] = idx
				official[s] = labelers[idx].Official
			} else {
				srcIdx[s] = t.internExtraSrc(db.Dict[s])
			}
		}
		m.LabelerIdx = srcIdx[s]
		m.Official = official[s]
		if !l.Neg && l.FreshSubject && kindPost[db.LabelKind[i]] {
			m.FreshPost = true
			m.RTSec = l.ReactionTime().Seconds()
		}
		meta = append(meta, m)
	}
	return meta
}
