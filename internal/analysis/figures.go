package analysis

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"blueskies/internal/core"
	"blueskies/internal/feedgen"
)

// ---- Figure 1: daily operations and active users ----

// Figure1 renders the daily activity series, down-sampled to weeks for
// readable output.
func Figure1(ds *core.Dataset) *Report {
	r := &Report{
		ID:     "F1",
		Title:  "Daily operation and active user counts (weekly samples)",
		Header: []string{"week", "active", "posts", "likes", "reposts", "follows", "blocks"},
	}
	for i := 0; i < len(ds.Daily); i += 7 {
		d := ds.Daily[i]
		r.Rows = append(r.Rows, []string{
			d.Date.Format("2006-01-02"),
			fmt.Sprint(d.ActiveUsers), fmt.Sprint(d.Posts), fmt.Sprint(d.Likes),
			fmt.Sprint(d.Reposts), fmt.Sprint(d.Follows), fmt.Sprint(d.Blocks),
		})
	}
	return r
}

// ---- Figure 2: language communities ----

// Figure2 renders active users per language community.
func Figure2(ds *core.Dataset) *Report {
	langs := []string{"en", "ja", "pt", "de", "ko", "fr"}
	r := &Report{
		ID:     "F2",
		Title:  "Active user counts of language communities (weekly samples)",
		Header: append([]string{"week"}, langs...),
	}
	for i := 0; i < len(ds.Daily); i += 7 {
		d := ds.Daily[i]
		row := []string{d.Date.Format("2006-01-02")}
		for _, l := range langs {
			row = append(row, fmt.Sprint(d.ActiveByLang[l]))
		}
		r.Rows = append(r.Rows, row)
	}
	return r
}

// ---- Figure 3: handle concentration ----

// Figure3 renders subdomain handles per registered domain (excluding
// bsky.social, as the paper does).
func Figure3(ds *core.Dataset) *Report {
	doms := append([]core.Domain(nil), ds.Domains...)
	sort.Slice(doms, func(i, j int) bool { return doms[i].Subdomains > doms[j].Subdomains })
	r := &Report{
		ID:     "F3",
		Title:  "Subdomain handles per registered domain (bsky.social excluded)",
		Header: []string{"registered domain", "# subdomain handles"},
	}
	for i, d := range doms {
		if i >= 10 {
			break
		}
		r.Rows = append(r.Rows, []string{d.Name, fmt.Sprint(d.Subdomains)})
	}
	// Distribution summary.
	hist := map[int]int{}
	for _, d := range doms {
		switch {
		case d.Subdomains == 1:
			hist[1]++
		case d.Subdomains <= 5:
			hist[5]++
		case d.Subdomains <= 50:
			hist[50]++
		default:
			hist[51]++
		}
	}
	r.Notes = append(r.Notes, fmt.Sprintf(
		"distribution: %d domains with 1 handle, %d with 2–5, %d with 6–50, %d with >50",
		hist[1], hist[5], hist[50], hist[51]))
	return r
}

// ---- Figure 4: labels by source per month ----

// MonthlyLabels is one month of label volume by source.
type MonthlyLabels struct {
	Month     time.Time
	Bluesky   int
	Community int
	// Labelers is the cumulative number of community labeler services
	// announced by this month.
	Labelers int
}

// LabelsBySource computes the Figure 4 series.
func LabelsBySource(ds *core.Dataset) []MonthlyLabels {
	official := map[string]bool{}
	for _, lb := range ds.Labelers {
		if lb.Official {
			official[lb.DID] = true
		}
	}
	byMonth := map[time.Time]*MonthlyLabels{}
	for _, l := range ds.Labels {
		if l.Neg {
			continue
		}
		m := monthOf(l.Applied)
		ml, ok := byMonth[m]
		if !ok {
			ml = &MonthlyLabels{Month: m}
			byMonth[m] = ml
		}
		if official[l.Src] {
			ml.Bluesky++
		} else {
			ml.Community++
		}
	}
	months := make([]MonthlyLabels, 0, len(byMonth))
	for _, ml := range byMonth {
		months = append(months, *ml)
	}
	sort.Slice(months, func(i, j int) bool { return months[i].Month.Before(months[j].Month) })
	for i := range months {
		n := 0
		for _, lb := range ds.Labelers {
			if !lb.Official && !lb.Announced.After(months[i].Month.AddDate(0, 1, -1)) {
				n++
			}
		}
		months[i].Labelers = n
	}
	return months
}

// Figure4 renders labels produced by source per month plus the
// community labeler count.
func Figure4(ds *core.Dataset) *Report {
	months := LabelsBySource(ds)
	r := &Report{
		ID:     "F4",
		Title:  "Labels produced by source per month; community labeler services over time",
		Header: []string{"month", "bluesky", "community", "# community labelers"},
	}
	for _, m := range months {
		r.Rows = append(r.Rows, []string{
			m.Month.Format("2006-01"),
			fmt.Sprint(m.Bluesky), fmt.Sprint(m.Community), fmt.Sprint(m.Labelers),
		})
	}
	return r
}

// ---- Figure 5: labels produced vs reaction time per labeler ----

// Figure5 renders the per-labeler volume/reaction-time scatter.
func Figure5(ds *core.Dataset) *Report {
	rows := ReactionTimes(ds)
	r := &Report{
		ID:     "F5",
		Title:  "Labels produced vs reaction time per labeler (median, Q1, Q3)",
		Header: []string{"labeler", "source", "# labels", "Q1", "median", "Q3"},
	}
	rts := map[string][]float64{}
	for _, l := range ds.Labels {
		if l.Neg || !l.FreshSubject || l.Kind != core.SubjectPost {
			continue
		}
		rts[l.Src] = append(rts[l.Src], l.ReactionTime().Seconds())
	}
	for _, row := range rows {
		src := "Community"
		if row.Official {
			src = "Bluesky"
		}
		xs := rts[row.DID]
		r.Rows = append(r.Rows, []string{
			row.Name, src, fmt.Sprint(row.Total),
			FormatDuration(Quantile(xs, 0.25)),
			FormatDuration(Quantile(xs, 0.5)),
			FormatDuration(Quantile(xs, 0.75)),
		})
	}
	return r
}

// ---- Figure 6: per-label-value reaction times ----

// ValueReaction is one label value's Figure 6 point.
type ValueReaction struct {
	Val      string
	Official bool
	Objects  int
	Median   float64
	Q1, Q3   float64
}

// ValueReactions computes the Figure 6 series.
func ValueReactions(ds *core.Dataset) []ValueReaction {
	official := map[string]bool{}
	for _, lb := range ds.Labelers {
		if lb.Official {
			official[lb.DID] = true
		}
	}
	type agg struct {
		objects  map[string]bool
		rts      []float64
		official bool
	}
	byVal := map[string]*agg{}
	for _, l := range ds.Labels {
		if l.Neg || !l.FreshSubject || l.Kind != core.SubjectPost {
			continue
		}
		a, ok := byVal[l.Val]
		if !ok {
			a = &agg{objects: map[string]bool{}, official: official[l.Src]}
			byVal[l.Val] = a
		}
		a.objects[l.URI] = true
		a.rts = append(a.rts, l.ReactionTime().Seconds())
	}
	out := make([]ValueReaction, 0, len(byVal))
	for val, a := range byVal {
		out = append(out, ValueReaction{
			Val: val, Official: a.official, Objects: len(a.objects),
			Median: Median(a.rts), Q1: Quantile(a.rts, 0.25), Q3: Quantile(a.rts, 0.75),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Objects > out[j].Objects })
	return out
}

// Figure6 renders objects labeled per value vs reaction time.
func Figure6(ds *core.Dataset) *Report {
	rows := ValueReactions(ds)
	r := &Report{
		ID:     "F6",
		Title:  "Objects labeled per label value vs reaction time",
		Header: []string{"label value", "source", "# objects", "Q1", "median", "Q3"},
	}
	for i, row := range rows {
		if i >= 25 {
			break
		}
		src := "Community"
		if row.Official {
			src = "Bluesky"
		}
		r.Rows = append(r.Rows, []string{
			row.Val, src, fmt.Sprint(row.Objects),
			FormatDuration(row.Q1), FormatDuration(row.Median), FormatDuration(row.Q3),
		})
	}
	return r
}

// ---- Figure 7: feed generator growth ----

// Figure7 renders cumulative feed generators, likes on them, and
// followers of their creators over time (monthly).
func Figure7(ds *core.Dataset) *Report {
	sort.SliceStable(ds.FeedGens, func(i, j int) bool {
		return ds.FeedGens[i].CreatedAt.Before(ds.FeedGens[j].CreatedAt)
	})
	r := &Report{
		ID:     "F7",
		Title:  "Cumulative feed generators, likes on them, and creator followers",
		Header: []string{"month", "# feed generators", "Σ likes", "Σ creator followers"},
	}
	var cumFG, cumLikes, cumFollows int
	seenCreator := map[int]bool{}
	cursor := 0
	for m := monthOf(ds.FeedGens[0].CreatedAt); !m.After(ds.WindowEnd); m = m.AddDate(0, 1, 0) {
		for cursor < len(ds.FeedGens) && monthOf(ds.FeedGens[cursor].CreatedAt).Equal(m) {
			fg := ds.FeedGens[cursor]
			cumFG++
			cumLikes += fg.Likes
			if !seenCreator[fg.CreatorIdx] {
				seenCreator[fg.CreatorIdx] = true
				cumFollows += ds.Users[fg.CreatorIdx].Followers
			}
			cursor++
		}
		r.Rows = append(r.Rows, []string{
			m.Format("2006-01"), fmt.Sprint(cumFG), fmt.Sprint(cumLikes), fmt.Sprint(cumFollows),
		})
	}
	return r
}

// ---- Figure 8: description word cloud ----

// Figure8 renders the most common words in feed generator
// descriptions (the word cloud's underlying frequencies).
func Figure8(ds *core.Dataset) *Report {
	counts := map[string]int{}
	for _, fg := range ds.FeedGens {
		for _, w := range strings.Fields(strings.ToLower(fg.Description)) {
			if len(w) < 2 {
				continue
			}
			counts[w]++
		}
	}
	r := &Report{
		ID:     "F8",
		Title:  "Most common words in feed generator descriptions",
		Header: []string{"word", "count"},
	}
	for _, kv := range topK(counts, 20) {
		r.Rows = append(r.Rows, []string{kv.Key, fmt.Sprint(kv.Count)})
	}
	return r
}

// ---- Figure 9: top labels of labeled feeds ----

// Figure9 renders the top label of feeds whose content is ≥10 %
// labeled.
func Figure9(ds *core.Dataset) *Report {
	counts := map[string]int{}
	heavy := 0
	some := 0
	for _, fg := range ds.FeedGens {
		if fg.LabeledShare > 0 {
			some++
		}
		if fg.LabeledShare >= 0.10 {
			heavy++
			counts[fg.TopLabel]++
		}
	}
	r := &Report{
		ID:     "F9",
		Title:  "Top labels associated with posts curated by feed generators (≥10 % labeled)",
		Header: []string{"label", "# feed generators"},
	}
	for _, kv := range topK(counts, 10) {
		r.Rows = append(r.Rows, []string{kv.Key, fmt.Sprint(kv.Count)})
	}
	r.Notes = append(r.Notes,
		fmt.Sprintf("feeds with any labeled content: %s; with ≥10%% labeled: %s",
			pct(int64(some), int64(len(ds.FeedGens))), pct(int64(heavy), int64(len(ds.FeedGens)))))
	return r
}

// ---- Figure 10: posts vs likes scatter ----

// Figure10 renders a log-binned summary of the posts-vs-likes scatter
// plus its named extremes.
func Figure10(ds *core.Dataset) *Report {
	r := &Report{
		ID:     "F10",
		Title:  "Feed generator curated posts vs like count (log-binned)",
		Header: []string{"posts bin", "likes bin", "# feeds"},
	}
	bin := func(n int) string {
		if n == 0 {
			return "0"
		}
		p := int(math.Floor(math.Log10(float64(n))))
		return fmt.Sprintf("10^%d", p)
	}
	counts := map[[2]string]int{}
	for _, fg := range ds.FeedGens {
		counts[[2]string{bin(fg.Posts), bin(fg.Likes)}]++
	}
	keys := make([][2]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	for _, k := range keys {
		r.Rows = append(r.Rows, []string{k[0], k[1], fmt.Sprint(counts[k])})
	}
	// Named extremes.
	for _, fg := range ds.FeedGens {
		switch fg.DisplayName {
		case "the-algorithm", "whats-hot", "4dff350a5a3e", "hebrew-feed":
			r.Notes = append(r.Notes, fmt.Sprintf("%s: posts=%d likes=%d personalized=%v",
				fg.DisplayName, fg.Posts, fg.Likes, fg.Personalized))
		}
	}
	sort.Strings(r.Notes)
	return r
}

// ---- Figure 11: degree distributions ----

// DegreeBin is one log bin of the in/out degree distributions with the
// share of feed generator creators inside it.
type DegreeBin struct {
	Lo, Hi       int
	InCount      int
	OutCount     int
	InFGCreators int
}

// DegreeDistributions computes Figure 11's binned distributions.
func DegreeDistributions(ds *core.Dataset) []DegreeBin {
	creators := map[int]bool{}
	for _, fg := range ds.FeedGens {
		creators[fg.CreatorIdx] = true
	}
	maxDeg := 1
	for _, u := range ds.Users {
		if u.Followers > maxDeg {
			maxDeg = u.Followers
		}
		if u.Following > maxDeg {
			maxDeg = u.Following
		}
	}
	var bins []DegreeBin
	for lo := 1; lo <= maxDeg; lo *= 4 {
		bins = append(bins, DegreeBin{Lo: lo, Hi: lo*4 - 1})
	}
	find := func(d int) int {
		if d < 1 {
			return -1
		}
		for i := range bins {
			if d >= bins[i].Lo && d <= bins[i].Hi {
				return i
			}
		}
		return len(bins) - 1
	}
	for ui := range ds.Users {
		u := &ds.Users[ui]
		if i := find(u.Followers); i >= 0 {
			bins[i].InCount++
			if creators[ui] {
				bins[i].InFGCreators++
			}
		}
		if i := find(u.Following); i >= 0 {
			bins[i].OutCount++
		}
	}
	return bins
}

// Figure11 renders the degree distributions.
func Figure11(ds *core.Dataset) *Report {
	bins := DegreeDistributions(ds)
	r := &Report{
		ID:     "F11",
		Title:  "Follow degree distributions; feed generator creators highlighted",
		Header: []string{"degree bin", "# users (in)", "FG creators (in)", "# users (out)"},
	}
	for _, b := range bins {
		r.Rows = append(r.Rows, []string{
			fmt.Sprintf("%d–%d", b.Lo, b.Hi),
			fmt.Sprint(b.InCount), fmt.Sprint(b.InFGCreators), fmt.Sprint(b.OutCount),
		})
	}
	// Correlations from §7.1.
	likes := map[int]float64{}
	count := map[int]float64{}
	for _, fg := range ds.FeedGens {
		likes[fg.CreatorIdx] += float64(fg.Likes)
		count[fg.CreatorIdx]++
	}
	var xs, ys, cs []float64
	for ci := range likes {
		xs = append(xs, likes[ci])
		ys = append(ys, float64(ds.Users[ci].Followers))
		cs = append(cs, count[ci])
	}
	r.Notes = append(r.Notes,
		fmt.Sprintf("Pearson r(Σ feed likes, followers) = %.3f (paper: 0.533)", Pearson(xs, ys)),
		fmt.Sprintf("Pearson r(# feeds, followers) = %.3f (paper: 0.005)", Pearson(cs, ys)))
	return r
}

// ---- Figure 12 / Table 5: FGaaS providers ----

// ProviderShare is one platform's market share.
type ProviderShare struct {
	Name       string
	Feeds      int
	FeedShare  float64
	PostShare  float64
	LikeShare  float64
	PostsTotal int
	LikesTotal int
}

// ProviderShares computes Figure 12's platform shares.
func ProviderShares(ds *core.Dataset) []ProviderShare {
	agg := map[string]*ProviderShare{}
	var totFeeds, totPosts, totLikes int
	for _, fg := range ds.FeedGens {
		p, ok := agg[fg.Platform]
		if !ok {
			p = &ProviderShare{Name: fg.Platform}
			agg[fg.Platform] = p
		}
		p.Feeds++
		p.PostsTotal += fg.Posts
		p.LikesTotal += fg.Likes
		totFeeds++
		totPosts += fg.Posts
		totLikes += fg.Likes
	}
	out := make([]ProviderShare, 0, len(agg))
	for _, p := range agg {
		p.FeedShare = float64(p.Feeds) / float64(totFeeds)
		p.PostShare = float64(p.PostsTotal) / float64(totPosts)
		p.LikeShare = float64(p.LikesTotal) / float64(totLikes)
		out = append(out, *p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Feeds > out[j].Feeds })
	return out
}

// Figure12 renders provider shares and the Pareto cumulative.
func Figure12(ds *core.Dataset) *Report {
	shares := ProviderShares(ds)
	r := &Report{
		ID:     "F12",
		Title:  "Feed generator hosting providers: shares and Pareto",
		Header: []string{"provider", "# feeds", "feed share", "post share", "like share", "cumulative feeds"},
	}
	cum := 0.0
	for _, p := range shares {
		cum += p.FeedShare
		r.Rows = append(r.Rows, []string{
			p.Name, fmt.Sprint(p.Feeds),
			fmt.Sprintf("%.2f%%", 100*p.FeedShare),
			fmt.Sprintf("%.2f%%", 100*p.PostShare),
			fmt.Sprintf("%.2f%%", 100*p.LikeShare),
			fmt.Sprintf("%.2f%%", 100*cum),
		})
	}
	return r
}

// Table5 renders the FGaaS feature-comparison matrix joined with the
// per-platform feed counts from the dataset.
func Table5(ds *core.Dataset) *Report {
	platforms := feedgen.Platforms()
	feeds := map[string]int{}
	for _, fg := range ds.FeedGens {
		feeds[strings.ToLower(fg.Platform)]++
	}
	features := []struct {
		Name string
		F    feedgen.Feature
	}{
		{"Input: whole network", feedgen.InWholeNetwork},
		{"Input: tags", feedgen.InTags},
		{"Input: single user", feedgen.InSingleUser},
		{"Input: list", feedgen.InList},
		{"Input: feed", feedgen.InFeed},
		{"Input: single post", feedgen.InSinglePost},
		{"Input: labels", feedgen.InLabels},
		{"Input: token", feedgen.InToken},
		{"Input: segment", feedgen.InSegment},
		{"Filter: item", feedgen.FiltItem},
		{"Filter: labels", feedgen.FiltLabels},
		{"Filter: image count", feedgen.FiltImageCount},
		{"Filter: link count", feedgen.FiltLinkCount},
		{"Filter: repost count", feedgen.FiltRepostCount},
		{"Filter: embed", feedgen.FiltEmbed},
		{"Filter: duplicate", feedgen.FiltDuplicate},
		{"Filter: list of users", feedgen.FiltUserList},
		{"Filter: language", feedgen.FiltLanguage},
		{"Filter: regex text", feedgen.FiltRegexText},
		{"Filter: regex image alt", feedgen.FiltRegexAlt},
		{"Filter: regex link", feedgen.FiltRegexLink},
	}
	header := []string{"Feature"}
	for _, p := range platforms {
		header = append(header, p.Name)
	}
	r := &Report{ID: "T5", Title: "Feed-Generator-as-a-Service feature comparison", Header: header}
	for _, f := range features {
		row := []string{f.Name}
		for _, p := range platforms {
			if p.Supports(f.F) {
				row = append(row, "yes")
			} else {
				row = append(row, "")
			}
		}
		r.Rows = append(r.Rows, row)
	}
	countRow := []string{"Number of feeds"}
	paidRow := []string{"Paid or free"}
	for _, p := range platforms {
		countRow = append(countRow, fmt.Sprint(feeds[strings.ToLower(p.Name)]))
		if p.Paid {
			paidRow = append(paidRow, "free & paid")
		} else {
			paidRow = append(paidRow, "free")
		}
	}
	r.Rows = append(r.Rows, countRow, paidRow)
	return r
}

// AllReports runs every table and figure.
func AllReports(ds *core.Dataset) []*Report {
	return []*Report{
		Section4(ds), Section5(ds), Section6(ds), Discussion(ds),
		Table1(ds), Table2(ds), Table3(ds), Table4(ds), Table5(ds), Table6(ds),
		Figure1(ds), Figure2(ds), Figure3(ds), Figure4(ds), Figure5(ds), Figure6(ds),
		Figure7(ds), Figure8(ds), Figure9(ds), Figure10(ds), Figure11(ds), Figure12(ds),
	}
}
