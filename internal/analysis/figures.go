package analysis

import (
	"fmt"
	"time"

	"blueskies/internal/core"
)

// Figure wrappers and their typed-row helpers. Each figure's
// computation lives in its accumulator (accum_labels.go /
// accum_world.go); the functions here run that accumulator
// sequentially and exist for API compatibility with the legacy
// one-pass-per-figure interface.

// ---- Figure 1: daily operations and active users ----

// Figure1 renders the daily activity series, down-sampled to weeks for
// readable output.
func Figure1(ds *core.Dataset) *Report { return runOne(ds, newFigure1Acc())[0] }

// ---- Figure 2: language communities ----

// Figure2 renders active users per language community.
func Figure2(ds *core.Dataset) *Report { return runOne(ds, newFigure2Acc())[0] }

// ---- Figure 3: handle concentration ----

// Figure3 renders subdomain handles per registered domain (excluding
// bsky.social, as the paper does).
func Figure3(ds *core.Dataset) *Report { return runOne(ds, newFigure3Acc())[0] }

// ---- Figure 4: labels by source per month ----

// MonthlyLabels is one month of label volume by source.
type MonthlyLabels struct {
	Month     time.Time
	Bluesky   int
	Community int
	// Labelers is the cumulative number of community labeler services
	// announced by this month.
	Labelers int
}

// LabelsBySource computes the Figure 4 series.
func LabelsBySource(ds *core.Dataset) []MonthlyLabels {
	w, sh, _ := runOneShard(ds, newFigure4Acc())
	return sh.(*figure4Shard).months(w)
}

// Figure4 renders labels produced by source per month plus the
// community labeler count.
func Figure4(ds *core.Dataset) *Report { return runOne(ds, newFigure4Acc())[0] }

func renderFigure4(months []MonthlyLabels) *Report {
	r := &Report{
		ID:     "F4",
		Title:  "Labels produced by source per month; community labeler services over time",
		Header: []string{"month", "bluesky", "community", "# community labelers"},
	}
	for _, m := range months {
		r.Rows = append(r.Rows, []string{
			m.Month.Format("2006-01"),
			fmt.Sprint(m.Bluesky), fmt.Sprint(m.Community), fmt.Sprint(m.Labelers),
		})
	}
	return r
}

// ---- Figure 5: labels produced vs reaction time per labeler ----

// Figure5 renders the per-labeler volume/reaction-time scatter. It
// shares the Table 6 reaction aggregation.
func Figure5(ds *core.Dataset) *Report { return runOne(ds, newReactionAcc())[1] }

// ---- Figure 6: per-label-value reaction times ----

// ValueReaction is one label value's Figure 6 point.
type ValueReaction struct {
	Val      string
	Official bool
	Objects  int
	Median   float64
	Q1, Q3   float64
}

// ValueReactions computes the Figure 6 series.
func ValueReactions(ds *core.Dataset) []ValueReaction {
	_, sh, t := runOneShard(ds, newFigure6Acc())
	return sh.(*figure6Shard).valueRows(t)
}

// Figure6 renders objects labeled per value vs reaction time.
func Figure6(ds *core.Dataset) *Report { return runOne(ds, newFigure6Acc())[0] }

func renderFigure6(rows []ValueReaction) *Report {
	r := &Report{
		ID:     "F6",
		Title:  "Objects labeled per label value vs reaction time",
		Header: []string{"label value", "source", "# objects", "Q1", "median", "Q3"},
	}
	for i, row := range rows {
		if i >= 25 {
			break
		}
		src := "Community"
		if row.Official {
			src = "Bluesky"
		}
		r.Rows = append(r.Rows, []string{
			row.Val, src, fmt.Sprint(row.Objects),
			FormatDuration(row.Q1), FormatDuration(row.Median), FormatDuration(row.Q3),
		})
	}
	return r
}

// ---- Figure 7: feed generator growth ----

// Figure7 renders cumulative feed generators, likes on them, and
// followers of their creators over time (monthly).
func Figure7(ds *core.Dataset) *Report { return runOne(ds, newFigure7Acc())[0] }

// ---- Figure 8: description word cloud ----

// Figure8 renders the most common words in feed generator
// descriptions (the word cloud's underlying frequencies).
func Figure8(ds *core.Dataset) *Report { return runOne(ds, newFigure8Acc())[0] }

// ---- Figure 9: top labels of labeled feeds ----

// Figure9 renders the top label of feeds whose content is ≥10 %
// labeled.
func Figure9(ds *core.Dataset) *Report { return runOne(ds, newFigure9Acc())[0] }

// ---- Figure 10: posts vs likes scatter ----

// Figure10 renders a log-binned summary of the posts-vs-likes scatter
// plus its named extremes.
func Figure10(ds *core.Dataset) *Report { return runOne(ds, newFigure10Acc())[0] }

// ---- Figure 11: degree distributions ----

// DegreeBin is one log bin of the in/out degree distributions with the
// share of feed generator creators inside it.
type DegreeBin struct {
	Lo, Hi       int
	InCount      int
	OutCount     int
	InFGCreators int
}

// DegreeDistributions computes Figure 11's binned distributions.
func DegreeDistributions(ds *core.Dataset) []DegreeBin {
	w, sh, _ := runOneShard(ds, newFigure11Acc())
	return sh.(*figure11Shard).bins(w)
}

// Figure11 renders the degree distributions.
func Figure11(ds *core.Dataset) *Report { return runOne(ds, newFigure11Acc())[0] }

// ---- Figure 12 / Table 5: FGaaS providers ----

// ProviderShare is one platform's market share.
type ProviderShare struct {
	Name       string
	Feeds      int
	FeedShare  float64
	PostShare  float64
	LikeShare  float64
	PostsTotal int
	LikesTotal int
}

// ProviderShares computes Figure 12's platform shares.
func ProviderShares(ds *core.Dataset) []ProviderShare {
	_, sh, _ := runOneShard(ds, newFigure12Acc())
	return sh.(*figure12Shard).shares()
}

// Figure12 renders provider shares and the Pareto cumulative.
func Figure12(ds *core.Dataset) *Report { return runOne(ds, newFigure12Acc())[0] }

func renderFigure12(shares []ProviderShare) *Report {
	r := &Report{
		ID:     "F12",
		Title:  "Feed generator hosting providers: shares and Pareto",
		Header: []string{"provider", "# feeds", "feed share", "post share", "like share", "cumulative feeds"},
	}
	cum := 0.0
	for _, p := range shares {
		cum += p.FeedShare
		r.Rows = append(r.Rows, []string{
			p.Name, fmt.Sprint(p.Feeds),
			fmt.Sprintf("%.2f%%", 100*p.FeedShare),
			fmt.Sprintf("%.2f%%", 100*p.PostShare),
			fmt.Sprintf("%.2f%%", 100*p.LikeShare),
			fmt.Sprintf("%.2f%%", 100*cum),
		})
	}
	return r
}

// Table5 renders the FGaaS feature-comparison matrix joined with the
// per-platform feed counts from the dataset.
func Table5(ds *core.Dataset) *Report { return runOne(ds, newTable5Acc())[0] }

// AllReports runs every table and figure as ~25 independent dataset
// passes — the legacy evaluation path, kept as the sequential baseline
// the single-pass RunAll is benchmarked against.
func AllReports(ds *core.Dataset) []*Report {
	return []*Report{
		Section4(ds), Section4Posts(ds), Section5(ds), Section6(ds), Discussion(ds),
		Table1(ds), Table2(ds), Table3(ds), Table4(ds), Table5(ds), Table6(ds),
		Figure1(ds), Figure2(ds), Figure3(ds), Figure4(ds), Figure5(ds), Figure6(ds),
		Figure7(ds), Figure8(ds), Figure9(ds), Figure10(ds), Figure11(ds), Figure12(ds),
	}
}
