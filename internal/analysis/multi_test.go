package analysis

import (
	"errors"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"blueskies/internal/core"
)

// corruptPartitionFile flips one byte in the middle of partition k's
// block file.
func corruptPartitionFile(t *testing.T, dir string, k int) {
	t.Helper()
	path := filepath.Join(dir, core.PartitionFileName(k))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x5A
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// errSource fails its traversal immediately.
type errSource struct{ err error }

func (s *errSource) Run([]Accumulator, int, RenderFunc) (*World, []Shard, *LabelTables, error) {
	return nil, nil, nil, s.err
}

// TestMultiSourceAbortsOnSourceError is the scheduler's failure-path
// prerequisite: when one of several partition sources errors mid-run —
// a corrupt disk partition, a dead remote worker — the whole run must
// abort promptly with the underlying error. "Promptly" includes the
// hard case: a sibling stream partition that never ends must not keep
// the run hanging, and no partial tables may be rendered.
func TestMultiSourceAbortsOnSourceError(t *testing.T) {
	boom := errors.New("partition 1: worker died")
	// A live stream that never delivers and never closes: before the
	// first-error abort, MultiSource waited for every partition, so
	// this configuration hung forever.
	endless := make(chan core.RecordBlock)
	defer close(endless)
	ms := &MultiSource{Sources: []Source{
		&StreamSource{Blocks: endless},
		&errSource{err: boom},
		NewDatasetSource(ds),
	}}
	type result struct {
		reports []*Report
		err     error
	}
	done := make(chan result, 1)
	go func() {
		reports, err := NewFullEngine().RunSource(ms)
		done <- result{reports, err}
	}()
	select {
	case res := <-done:
		if !errors.Is(res.err, boom) {
			t.Fatalf("run returned %v, want the partition error", res.err)
		}
		if res.reports != nil {
			t.Fatal("partial reports rendered despite a failed partition")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("run with a failed partition hung on the endless sibling stream")
	}
}

// TestMultiSourceCorruptDiskPartitionAborts runs the concrete scenario
// the satellite names: several disk partitions, one corrupted on disk,
// mixed with a healthy batch partition — the run must surface the
// decode error, not render a thinned corpus.
func TestMultiSourceCorruptDiskPartitionAborts(t *testing.T) {
	parts, m := core.Split(ds, 3)
	dir := t.TempDir()
	if err := core.WriteCorpus(dir, parts, m); err != nil {
		t.Fatal(err)
	}
	corruptPartitionFile(t, dir, 1)
	c, err := core.OpenCorpus(dir)
	if err != nil {
		t.Fatal(err)
	}
	ms := &MultiSource{
		Sources: []Source{
			NewDiskSource(c, 0),
			NewDiskSource(c, 1),
			NewDatasetSourceAt(parts[2], m.Partitions[2].Base),
		},
		Manifest: m,
	}
	if _, err := NewFullEngine().Workers(2).RunSource(ms); err == nil {
		t.Fatal("corrupt partition among healthy ones evaluated without error")
	}
}

// gatedErrSource fails its traversal once the gate closes.
type gatedErrSource struct {
	gate <-chan struct{}
	err  error
}

func (s *gatedErrSource) Run([]Accumulator, int, RenderFunc) (*World, []Shard, *LabelTables, error) {
	<-s.gate
	return nil, nil, nil, s.err
}

// TestMultiSourceErrorSuppressesSnapshots pins the abort/snapshot
// interaction: once a partition has failed, the coordinator must stop
// emitting merged snapshots (no partial tables after an abort), while
// the error still surfaces and the abandoned streams drain cleanly.
func TestMultiSourceErrorSuppressesSnapshots(t *testing.T) {
	boom := errors.New("boom")
	parts, m := core.Split(ds, 2)
	srcs, errChans := partitionStreams(t, parts, m, 2048)
	var snaps atomic.Int64
	gate := make(chan struct{})
	var once sync.Once
	ms := &MultiSource{
		Sources:       append(srcs, &gatedErrSource{gate: gate, err: boom}),
		Manifest:      m,
		SnapshotEvery: 5_000,
		OnSnapshot: func(int, []*Report) {
			snaps.Add(1)
			once.Do(func() { close(gate) }) // fail the third partition after the first snapshot
		},
	}
	_, err := NewFullEngine().Workers(2).RunSource(ms)
	if !errors.Is(err, boom) {
		t.Fatalf("run returned %v, want the partition error", err)
	}
	atReturn := snaps.Load()
	// The abandoned streams keep replaying to completion in the
	// background; every snapshot round they trigger from here on must
	// be suppressed (at most one round can already be in flight).
	for _, errs := range errChans {
		drainErrs(t, errs)
	}
	if final := snaps.Load(); final > atReturn+1 {
		t.Fatalf("%d merged snapshots rendered after the abort (had %d at return)", final-atReturn, atReturn)
	}
}
