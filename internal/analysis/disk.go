package analysis

import (
	"errors"
	"fmt"
	"io"

	"blueskies/internal/core"
)

// DiskSource feeds the engine's accumulators by streaming one
// partition's record blocks out of a disk-backed partition store
// (core.Corpus) — the out-of-core execution mode. It reuses the
// streaming ingestion machinery (streamIngest), so at any moment the
// partition's residency is one decoded block plus accumulator state:
// the dataset itself is never materialized. Composed under MultiSource
// (NewDiskCorpusSource), an n-partition on-disk corpus evaluates
// through the usual two-level merge with O(one partition's blocks)
// memory per concurrently-traversing partition, and — like every other
// source pairing — the result is byte-identical to the in-memory
// evaluation of the same corpus.
type DiskSource struct {
	// Corpus is the opened store; Part the partition index within it.
	Corpus *core.Corpus
	Part   int
}

// NewDiskSource wraps partition k of an opened store as a Source.
func NewDiskSource(c *core.Corpus, k int) *DiskSource {
	return &DiskSource{Corpus: c, Part: k}
}

// Run implements Source: stream the partition's blocks through the
// accumulator groups in file order. Blocks arrive exactly as
// WritePartition laid them out — header + labeler announcements first,
// then each collection in dataset order — which is the one-worker batch
// traversal order the parity contract requires. render is ignored
// (disk partitions snapshot only through MultiSource's coordinator,
// like any other batch partition).
func (src *DiskSource) Run(accs []Accumulator, workers int, _ RenderFunc) (*World, []Shard, *LabelTables, error) {
	base := core.CollectionCounts{}
	if m := src.Corpus.Manifest; src.Part < len(m.Partitions) {
		base = m.Partitions[src.Part].Base
	}
	pr, err := src.Corpus.OpenPartition(src.Part)
	if err != nil {
		return nil, nil, nil, err
	}
	defer pr.Close()
	si := newStreamIngest(accs, workers, base)
	for {
		b, err := pr.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			si.finish() // stop group goroutines before bailing
			return nil, nil, nil, fmt.Errorf("analysis: partition %d: %w", src.Part, err)
		}
		si.apply(*b)
	}
	si.finish()
	// Bind the file's contents to the manifest: the Base prefix-sum
	// offsets every later partition's state was computed against assume
	// exactly Records records here, so a swapped-in or stale block file
	// must fail the run, not mis-attribute indexes silently.
	got := core.CollectionCounts{
		Users: si.world.Users, Posts: si.world.Posts, Days: si.world.Days,
		Labels: si.world.Labels, FeedGens: si.world.FeedGens,
		Domains: si.world.Domains, HandleUpdates: si.world.HandleUpdates,
	}
	if m := src.Corpus.Manifest; src.Part < len(m.Partitions) && got != m.Partitions[src.Part].Records {
		return nil, nil, nil, fmt.Errorf("analysis: partition %d streamed %+v records but the manifest promises %+v: block file and manifest disagree",
			src.Part, got, m.Partitions[src.Part].Records)
	}
	return si.world, si.shards, si.tables, nil
}

// NewDiskCorpusSource wraps every partition of an opened store as a
// MultiSource: per-partition out-of-core traversals at their manifest
// base offsets, folded through the cross-partition two-level merge
// (with user-index rebasing when the manifest says indexes are
// partition-local). Partitions traverse concurrently, capped at
// GOMAXPROCS, so peak residency is O(GOMAXPROCS · one block), not
// O(corpus).
func NewDiskCorpusSource(c *core.Corpus) *MultiSource {
	ms := &MultiSource{Manifest: c.Manifest}
	for k := range c.Manifest.Partitions {
		ms.Sources = append(ms.Sources, NewDiskSource(c, k))
	}
	return ms
}

// RunAllDisk computes the full evaluation over a disk-backed corpus
// without ever materializing it, returning the reports in canonical
// order. For a store written from a split corpus the output is
// byte-identical to RunAll over the unsplit in-memory dataset at any
// partition and worker count (TestDiskParityGolden).
func RunAllDisk(c *core.Corpus, workers int) ([]*Report, error) {
	reports, err := NewFullEngine().Workers(workers).RunSource(NewDiskCorpusSource(c))
	if err != nil {
		return nil, err
	}
	return canonicalize(reports), nil
}
