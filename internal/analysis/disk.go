package analysis

import (
	"errors"
	"fmt"
	"io"

	"blueskies/internal/core"
)

// DiskSource feeds the engine's accumulators by streaming one
// partition's record blocks out of a disk-backed partition store
// (core.Corpus) — the out-of-core execution mode. It reuses the
// streaming ingestion machinery (streamIngest), so at any moment the
// partition's residency is one decoded block plus accumulator state:
// the dataset itself is never materialized. Composed under MultiSource
// (NewDiskCorpusSource), an n-partition on-disk corpus evaluates
// through the usual two-level merge with O(one partition's blocks)
// memory per concurrently-traversing partition, and — like every other
// source pairing — the result is byte-identical to the in-memory
// evaluation of the same corpus.
type DiskSource struct {
	// Corpus is the opened store; Part the partition index within it.
	Corpus *core.Corpus
	Part   int
}

// NewDiskSource wraps partition k of an opened store as a Source.
func NewDiskSource(c *core.Corpus, k int) *DiskSource {
	return &DiskSource{Corpus: c, Part: k}
}

// Run implements Source: stream the partition's blocks through the
// accumulator groups in file order. Blocks arrive exactly as
// WritePartition laid them out — header + labeler announcements first,
// then each collection in dataset order — which is the one-worker batch
// traversal order the parity contract requires. render is ignored
// (disk partitions snapshot only through MultiSource's coordinator,
// like any other batch partition).
func (src *DiskSource) Run(accs []Accumulator, workers int, _ RenderFunc) (*World, []Shard, *LabelTables, error) {
	base := core.CollectionCounts{}
	var records *core.CollectionCounts
	if m := src.Corpus.Manifest; src.Part < len(m.Partitions) {
		base = m.Partitions[src.Part].Base
		records = &m.Partitions[src.Part].Records
	}
	rs := &ReaderSource{
		Open:    func() (*core.PartitionReader, error) { return src.Corpus.OpenPartition(src.Part) },
		Base:    base,
		Records: records,
		Name:    fmt.Sprintf("partition %d", src.Part),
	}
	return rs.Run(accs, workers, nil)
}

// ReaderSource streams record blocks out of any partition block reader
// — an opened store partition (DiskSource delegates here) or block
// frames shipped over the wire (the remote worker's streamed-blocks
// mode). Residency is one decoded block plus accumulator state.
type ReaderSource struct {
	// Open yields the block reader; the source closes it after the run.
	Open func() (*core.PartitionReader, error)
	// Base is the partition's per-collection offset in the corpus.
	Base core.CollectionCounts
	// Records, when set, is the record count the blocks must deliver
	// exactly — the manifest's promise the Base prefix sums were
	// computed against. A mismatch fails the run: proceeding would
	// silently mis-attribute every later partition's indexes.
	Records *core.CollectionCounts
	// Clip, when set, restricts the traversal to one contiguous
	// per-collection row sub-range of the blocks — the scheduler's
	// dynamic partition splitting. Base and Records then describe the
	// clipped sub-range, not the whole block stream.
	Clip *core.RowRange
	// Name labels errors ("partition 3", "streamed blocks").
	Name string
}

// Run implements Source with the one-worker-order block traversal.
func (src *ReaderSource) Run(accs []Accumulator, workers int, _ RenderFunc) (*World, []Shard, *LabelTables, error) {
	pr, err := src.Open()
	if err != nil {
		return nil, nil, nil, err
	}
	defer pr.Close()
	si := newStreamIngest(accs, workers, src.Base)
	var clip *core.RowClipper
	if src.Clip != nil {
		clip = core.NewRowClipper(*src.Clip)
	}
	for {
		b, db, err := pr.NextDict()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			si.finish() // stop group goroutines before bailing
			return nil, nil, nil, fmt.Errorf("analysis: %s: %w", src.Name, err)
		}
		if clip != nil {
			// The dictionary id columns are parallel to the *unclipped*
			// label rows; after clipping they no longer line up, so the
			// sub-range falls back to the per-record intern path.
			b = clip.Clip(b)
			db = nil
		}
		si.applyColumnar(*b, db)
	}
	si.finish()
	if src.Records != nil {
		if got := si.world.Counts(); got != *src.Records {
			return nil, nil, nil, fmt.Errorf("analysis: %s streamed %+v records but the manifest promises %+v: block file and manifest disagree",
				src.Name, got, *src.Records)
		}
	}
	return si.world, si.shards, si.tables, nil
}

// NewDiskCorpusSource wraps every partition of an opened store as a
// MultiSource: per-partition out-of-core traversals at their manifest
// base offsets, folded through the cross-partition two-level merge
// (with user-index rebasing when the manifest says indexes are
// partition-local). Partitions traverse concurrently, capped at
// GOMAXPROCS, so peak residency is O(GOMAXPROCS · one block), not
// O(corpus).
func NewDiskCorpusSource(c *core.Corpus) *MultiSource {
	ms := &MultiSource{Manifest: c.Manifest}
	for k := range c.Manifest.Partitions {
		ms.Sources = append(ms.Sources, NewDiskSource(c, k))
	}
	return ms
}

// RunAllDisk computes the full evaluation over a disk-backed corpus
// without ever materializing it, returning the reports in canonical
// order. For a store written from a split corpus the output is
// byte-identical to RunAll over the unsplit in-memory dataset at any
// partition and worker count (TestDiskParityGolden).
func RunAllDisk(c *core.Corpus, workers int) ([]*Report, error) {
	reports, err := NewFullEngine().Workers(workers).RunSource(NewDiskCorpusSource(c))
	if err != nil {
		return nil, err
	}
	return canonicalize(reports), nil
}
