package analysis

import "strings"

// Scenario golden plumbing: the fault-injection harness
// (internal/scenario) compares whole report sets byte-for-byte against
// unfaulted goldens and names the tables that shifted. These helpers
// keep that comparison in one place so every caller renders and diffs
// reports identically.

// RenderText renders a report set to one string — the byte-identity
// currency of the parity tests and the scenario harness. Reports are
// rendered in slice order, separated by a blank line.
func RenderText(reports []*Report) string {
	var sb strings.Builder
	for i, r := range reports {
		if i > 0 {
			sb.WriteByte('\n')
		}
		sb.WriteString(r.String())
	}
	return sb.String()
}

// ReportByID returns the first report with the given ID, or nil.
func ReportByID(reports []*Report, id string) *Report {
	for _, r := range reports {
		if r.ID == id {
			return r
		}
	}
	return nil
}

// DiffReports compares two report sets pairwise by ID and returns the
// IDs whose rendered text differs, including IDs present on only one
// side. Order is deterministic: a's IDs in a's order, then b-only IDs
// in b's order.
func DiffReports(a, b []*Report) []string {
	byID := make(map[string]*Report, len(b))
	for _, r := range b {
		byID[r.ID] = r
	}
	inA := make(map[string]bool, len(a))
	var diff []string
	for _, ra := range a {
		inA[ra.ID] = true
		rb := byID[ra.ID]
		if rb == nil || ra.String() != rb.String() {
			diff = append(diff, ra.ID)
		}
	}
	for _, rb := range b {
		if !inA[rb.ID] {
			diff = append(diff, rb.ID)
		}
	}
	return diff
}
