package analysis

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"blueskies/internal/core"
	"blueskies/internal/feedgen"
)

// Accumulators over the non-label collections, plus the render-only
// reports that read scalar dataset fields.

// ---- Section 4: headline dataset counts ----

type section4Acc struct{}

func newSection4Acc() Accumulator { return section4Acc{} }

type section4Shard struct {
	NopShard
	posts, likes, reposts, follows, blocks int64
}

func (section4Acc) IDs() []string         { return []string{"S4"} }
func (section4Acc) Needs() Collection     { return ColDays }
func (section4Acc) NewShard(*World) Shard { return &section4Shard{} }

func (s *section4Shard) Days(days []core.DayActivity, _ int) {
	for i := range days {
		s.posts += int64(days[i].Posts)
		s.likes += int64(days[i].Likes)
		s.reposts += int64(days[i].Reposts)
		s.follows += int64(days[i].Follows)
		s.blocks += int64(days[i].Blocks)
	}
}

func (section4Acc) Merge(dst, src Shard, _ *MergeCtx) {
	d, s := dst.(*section4Shard), src.(*section4Shard)
	d.posts += s.posts
	d.likes += s.likes
	d.reposts += s.reposts
	d.follows += s.follows
	d.blocks += s.blocks
}

func (section4Acc) Render(w *World, sh Shard, _ *LabelTables) []*Report {
	s := sh.(*section4Shard)
	r := &Report{
		ID:     "S4",
		Title:  "Dataset totals (scaled 1:" + fmt.Sprint(w.Scale) + ")",
		Header: []string{"metric", "value"},
	}
	add := func(k string, v any) { r.Rows = append(r.Rows, []string{k, fmt.Sprint(v)}) }
	add("users", w.Users)
	add("likes (accumulated ops)", s.likes)
	add("posts (accumulated ops)", s.posts)
	add("follows (accumulated ops)", s.follows)
	add("reposts (accumulated ops)", s.reposts)
	add("blocks (accumulated ops)", s.blocks)
	add("firehose events", w.Firehose.Total())
	add("non-Bluesky lexicon events", w.NonBskyEvents)
	add("feed generators", w.FeedGens)
	add("labelers announced", len(w.Labelers))
	add("label interactions", w.Labels)
	return []*Report{r}
}

// ---- Section 5: identity statistics ----

type section5Acc struct{}

func newSection5Acc() Accumulator { return section5Acc{} }

type section5Shard struct {
	NopShard
	bsky, alt, didWeb, txt, wk int
	tranco                     int
	dids                       map[string]bool
	final                      map[string]string
}

func (section5Acc) IDs() []string { return []string{"S5"} }
func (section5Acc) Needs() Collection {
	return ColUsers | ColDomains | ColHandleUpdates
}
func (section5Acc) NewShard(*World) Shard {
	return &section5Shard{dids: map[string]bool{}, final: map[string]string{}}
}

func (s *section5Shard) Users(us []core.User, _ int) {
	for i := range us {
		u := &us[i]
		if strings.HasSuffix(u.Handle, ".bsky.social") {
			s.bsky++
		} else {
			s.alt++
		}
		if u.DIDMethod == "web" {
			s.didWeb++
		}
		switch u.Proof {
		case core.ProofDNSTXT:
			s.txt++
		case core.ProofWellKnown:
			s.wk++
		}
	}
}

func (s *section5Shard) Domains(doms []core.Domain, _ int) {
	for i := range doms {
		if doms[i].TrancoRank > 0 {
			s.tranco++
		}
	}
}

func (s *section5Shard) HandleUpdates(hus []core.HandleUpdate, _ int) {
	for i := range hus {
		s.dids[hus[i].DID] = true
		s.final[hus[i].DID] = hus[i].NewHandle
	}
}

func (section5Acc) Merge(dst, src Shard, _ *MergeCtx) {
	d, s := dst.(*section5Shard), src.(*section5Shard)
	d.bsky += s.bsky
	d.alt += s.alt
	d.didWeb += s.didWeb
	d.txt += s.txt
	d.wk += s.wk
	d.tranco += s.tranco
	for did := range s.dids {
		d.dids[did] = true
	}
	// src holds later updates than dst (shards merge in index order),
	// so src's final handle wins.
	for did, h := range s.final {
		d.final[did] = h
	}
}

func (s *section5Shard) stats(w *World) IdentityStats {
	var st IdentityStats
	st.Users = w.Users
	st.AltHandles = s.alt
	st.DIDWeb = s.didWeb
	st.BskySocialShare = float64(s.bsky) / float64(st.Users)
	if s.txt+s.wk > 0 {
		st.TXTShare = float64(s.txt) / float64(s.txt+s.wk)
		st.WellKnownShare = float64(s.wk) / float64(s.txt+s.wk)
	}
	st.RegisteredDoms = w.Domains
	if w.Domains > 0 {
		st.TrancoShare = float64(s.tranco) / float64(w.Domains)
	}
	st.HandleUpdates = w.HandleUpdates
	st.UpdatingDIDs = len(s.dids)
	toBsky := 0
	for _, h := range s.final {
		if strings.HasSuffix(h, ".bsky.social") {
			toBsky++
		}
	}
	if len(s.final) > 0 {
		st.FinalBskyShare = float64(toBsky) / float64(len(s.final))
	}
	return st
}

func (section5Acc) Render(w *World, sh Shard, _ *LabelTables) []*Report {
	return []*Report{renderSection5(sh.(*section5Shard).stats(w))}
}

// ---- Table 1: firehose event types (scalar fields only) ----

type table1Acc struct{}

func newTable1Acc() Accumulator { return table1Acc{} }

func (table1Acc) IDs() []string                 { return []string{"T1"} }
func (table1Acc) Needs() Collection             { return 0 }
func (table1Acc) NewShard(*World) Shard         { return NopShard{} }
func (table1Acc) Merge(_, _ Shard, _ *MergeCtx) {}

func (table1Acc) Render(w *World, _ Shard, _ *LabelTables) []*Report {
	e := w.Firehose
	total := e.Total()
	return []*Report{{
		ID:     "T1",
		Title:  "Overview of Firehose event types",
		Header: []string{"Event Type", "# Total", "Share (%)"},
		Rows: [][]string{
			{"Repo Commit", fmt.Sprint(e.Commits), pct(e.Commits, total)},
			{"Identity Update", fmt.Sprint(e.Identity), pct(e.Identity, total)},
			{"User Handle Update", fmt.Sprint(e.Handle), pct(e.Handle, total)},
			{"Repo Tombstone", fmt.Sprint(e.Tombstone), pct(e.Tombstone, total)},
		},
	}}
}

// ---- Table 2: registrar concentration ----

type table2Acc struct{}

func newTable2Acc() Accumulator { return table2Acc{} }

type table2Shard struct {
	NopShard
	counts map[int]*RegistrarRow
	withID int
}

func (table2Acc) IDs() []string     { return []string{"T2"} }
func (table2Acc) Needs() Collection { return ColDomains }
func (table2Acc) NewShard(*World) Shard {
	return &table2Shard{counts: map[int]*RegistrarRow{}}
}

func (s *table2Shard) Domains(doms []core.Domain, _ int) {
	for i := range doms {
		d := &doms[i]
		if d.IANAID == 0 {
			continue
		}
		s.withID++
		row, ok := s.counts[d.IANAID]
		if !ok {
			row = &RegistrarRow{IANAID: d.IANAID, Name: d.RegistrarName}
			s.counts[d.IANAID] = row
		}
		row.Count++
	}
}

func (table2Acc) Merge(dst, src Shard, _ *MergeCtx) {
	d, s := dst.(*table2Shard), src.(*table2Shard)
	d.withID += s.withID
	for id, row := range s.counts {
		dr, ok := d.counts[id]
		if !ok {
			cp := *row
			d.counts[id] = &cp
			continue
		}
		dr.Count += row.Count
	}
}

func (s *table2Shard) rows() []RegistrarRow {
	rows := make([]RegistrarRow, 0, len(s.counts))
	for _, row := range s.counts {
		r := *row
		r.Share = float64(r.Count) / float64(s.withID)
		rows = append(rows, r)
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Count != rows[j].Count {
			return rows[i].Count > rows[j].Count
		}
		return rows[i].IANAID < rows[j].IANAID
	})
	return rows
}

func (table2Acc) Render(_ *World, sh Shard, _ *LabelTables) []*Report {
	s := sh.(*table2Shard)
	return []*Report{renderTable2(s.rows(), s.withID)}
}

// ---- Table 5: FGaaS feature matrix ----

type table5Acc struct{}

func newTable5Acc() Accumulator { return table5Acc{} }

type table5Shard struct {
	NopShard
	feeds map[string]int
}

func (table5Acc) IDs() []string     { return []string{"T5"} }
func (table5Acc) Needs() Collection { return ColFeedGens }
func (table5Acc) NewShard(*World) Shard {
	return &table5Shard{feeds: map[string]int{}}
}

func (s *table5Shard) FeedGens(fs []core.FeedGen, _ int) {
	for i := range fs {
		s.feeds[strings.ToLower(fs[i].Platform)]++
	}
}

func (table5Acc) Merge(dst, src Shard, _ *MergeCtx) {
	d, s := dst.(*table5Shard), src.(*table5Shard)
	for k, n := range s.feeds {
		d.feeds[k] += n
	}
}

func (table5Acc) Render(_ *World, sh Shard, _ *LabelTables) []*Report {
	return []*Report{renderTable5(sh.(*table5Shard).feeds)}
}

// ---- Figures 1–2: daily activity series ----

type figure1Acc struct{}

func newFigure1Acc() Accumulator { return figure1Acc{} }

type weeklyShard struct {
	NopShard
	langs []string
	rows  [][]string
}

func (figure1Acc) IDs() []string         { return []string{"F1"} }
func (figure1Acc) Needs() Collection     { return ColDays }
func (figure1Acc) NewShard(*World) Shard { return &weeklyShard{} }

func (s *weeklyShard) Days(days []core.DayActivity, base int) {
	for i := range days {
		if (base+i)%7 != 0 {
			continue
		}
		d := &days[i]
		if s.langs == nil {
			s.rows = append(s.rows, []string{
				d.Date.Format("2006-01-02"),
				fmt.Sprint(d.ActiveUsers), fmt.Sprint(d.Posts), fmt.Sprint(d.Likes),
				fmt.Sprint(d.Reposts), fmt.Sprint(d.Follows), fmt.Sprint(d.Blocks),
			})
			continue
		}
		row := []string{d.Date.Format("2006-01-02")}
		for _, l := range s.langs {
			row = append(row, fmt.Sprint(d.ActiveByLang[l]))
		}
		s.rows = append(s.rows, row)
	}
}

func mergeWeekly(dst, src Shard) {
	d, s := dst.(*weeklyShard), src.(*weeklyShard)
	d.rows = append(d.rows, s.rows...)
}

func (figure1Acc) Merge(dst, src Shard, _ *MergeCtx) { mergeWeekly(dst, src) }

func (figure1Acc) Render(_ *World, sh Shard, _ *LabelTables) []*Report {
	return []*Report{{
		ID:     "F1",
		Title:  "Daily operation and active user counts (weekly samples)",
		Header: []string{"week", "active", "posts", "likes", "reposts", "follows", "blocks"},
		Rows:   sh.(*weeklyShard).rows,
	}}
}

var figure2Langs = []string{"en", "ja", "pt", "de", "ko", "fr"}

type figure2Acc struct{}

func newFigure2Acc() Accumulator { return figure2Acc{} }

func (figure2Acc) IDs() []string     { return []string{"F2"} }
func (figure2Acc) Needs() Collection { return ColDays }
func (figure2Acc) NewShard(*World) Shard {
	return &weeklyShard{langs: figure2Langs}
}
func (figure2Acc) Merge(dst, src Shard, _ *MergeCtx) { mergeWeekly(dst, src) }

func (figure2Acc) Render(_ *World, sh Shard, _ *LabelTables) []*Report {
	return []*Report{{
		ID:     "F2",
		Title:  "Active user counts of language communities (weekly samples)",
		Header: append([]string{"week"}, figure2Langs...),
		Rows:   sh.(*weeklyShard).rows,
	}}
}

// ---- Figure 3: handle concentration ----

type figure3Acc struct{}

func newFigure3Acc() Accumulator { return figure3Acc{} }

type figure3Shard struct {
	NopShard
	doms []core.Domain
}

func (figure3Acc) IDs() []string         { return []string{"F3"} }
func (figure3Acc) Needs() Collection     { return ColDomains }
func (figure3Acc) NewShard(*World) Shard { return &figure3Shard{} }

func (s *figure3Shard) Domains(doms []core.Domain, _ int) {
	s.doms = append(s.doms, doms...)
}

func (figure3Acc) Merge(dst, src Shard, _ *MergeCtx) {
	d, s := dst.(*figure3Shard), src.(*figure3Shard)
	d.doms = append(d.doms, s.doms...)
}

func (figure3Acc) Render(_ *World, sh Shard, _ *LabelTables) []*Report {
	// Sort a copy: renders must leave shard state untouched so a
	// streaming snapshot can render again after more records arrive.
	doms := append([]core.Domain(nil), sh.(*figure3Shard).doms...)
	sort.SliceStable(doms, func(i, j int) bool { return doms[i].Subdomains > doms[j].Subdomains })
	r := &Report{
		ID:     "F3",
		Title:  "Subdomain handles per registered domain (bsky.social excluded)",
		Header: []string{"registered domain", "# subdomain handles"},
	}
	for i, d := range doms {
		if i >= 10 {
			break
		}
		r.Rows = append(r.Rows, []string{d.Name, fmt.Sprint(d.Subdomains)})
	}
	hist := map[int]int{}
	for _, d := range doms {
		switch {
		case d.Subdomains == 1:
			hist[1]++
		case d.Subdomains <= 5:
			hist[5]++
		case d.Subdomains <= 50:
			hist[50]++
		default:
			hist[51]++
		}
	}
	r.Notes = append(r.Notes, fmt.Sprintf(
		"distribution: %d domains with 1 handle, %d with 2–5, %d with 6–50, %d with >50",
		hist[1], hist[5], hist[50], hist[51]))
	return []*Report{r}
}

// ---- Figure 7: feed generator growth ----

type figure7Acc struct{}

func newFigure7Acc() Accumulator { return figure7Acc{} }

type fgGrowth struct {
	created    time.Time
	likes      int
	creatorIdx int
}

type figure7Shard struct {
	NopShard
	fgs []fgGrowth
}

func (figure7Acc) IDs() []string         { return []string{"F7"} }
func (figure7Acc) Needs() Collection     { return ColFeedGens }
func (figure7Acc) NewShard(*World) Shard { return &figure7Shard{} }

func (s *figure7Shard) FeedGens(fs []core.FeedGen, _ int) {
	for i := range fs {
		s.fgs = append(s.fgs, fgGrowth{fs[i].CreatedAt, fs[i].Likes, fs[i].CreatorIdx})
	}
}

func (figure7Acc) Merge(dst, src Shard, mc *MergeCtx) {
	d, s := dst.(*figure7Shard), src.(*figure7Shard)
	if mc == nil || mc.Users == 0 {
		d.fgs = append(d.fgs, s.fgs...)
		return
	}
	// Cross-partition merge of an independent dataset: creator indexes
	// are partition-local and rebase into the merged user table.
	for _, fg := range s.fgs {
		fg.creatorIdx = mc.RemapUser(fg.creatorIdx)
		d.fgs = append(d.fgs, fg)
	}
}

func (figure7Acc) Render(w *World, sh Shard, _ *LabelTables) []*Report {
	// Sort a copy of the projection: the dataset must never be
	// reordered by a traversal, and the shard must stay untouched so a
	// streaming snapshot can render it again.
	fgs := append([]fgGrowth(nil), sh.(*figure7Shard).fgs...)
	sort.SliceStable(fgs, func(i, j int) bool { return fgs[i].created.Before(fgs[j].created) })
	r := &Report{
		ID:     "F7",
		Title:  "Cumulative feed generators, likes on them, and creator followers",
		Header: []string{"month", "# feed generators", "Σ likes", "Σ creator followers"},
	}
	if len(fgs) == 0 {
		return []*Report{r}
	}
	var cumFG, cumLikes, cumFollows int
	seenCreator := map[int]bool{}
	cursor := 0
	for m := monthOf(fgs[0].created); !m.After(w.WindowEnd); m = m.AddDate(0, 1, 0) {
		for cursor < len(fgs) && monthOf(fgs[cursor].created).Equal(m) {
			fg := fgs[cursor]
			cumFG++
			cumLikes += fg.likes
			if !seenCreator[fg.creatorIdx] {
				seenCreator[fg.creatorIdx] = true
				cumFollows += w.Followers(fg.creatorIdx)
			}
			cursor++
		}
		r.Rows = append(r.Rows, []string{
			m.Format("2006-01"), fmt.Sprint(cumFG), fmt.Sprint(cumLikes), fmt.Sprint(cumFollows),
		})
	}
	return []*Report{r}
}

// ---- Figure 8: description word cloud ----

type figure8Acc struct{}

func newFigure8Acc() Accumulator { return figure8Acc{} }

type figure8Shard struct {
	NopShard
	counts map[string]int
}

func (figure8Acc) IDs() []string     { return []string{"F8"} }
func (figure8Acc) Needs() Collection { return ColFeedGens }
func (figure8Acc) NewShard(*World) Shard {
	return &figure8Shard{counts: map[string]int{}}
}

func (s *figure8Shard) FeedGens(fs []core.FeedGen, _ int) {
	for i := range fs {
		for _, w := range strings.Fields(strings.ToLower(fs[i].Description)) {
			if len(w) < 2 {
				continue
			}
			s.counts[w]++
		}
	}
}

func (figure8Acc) Merge(dst, src Shard, _ *MergeCtx) {
	d, s := dst.(*figure8Shard), src.(*figure8Shard)
	for w, n := range s.counts {
		d.counts[w] += n
	}
}

func (figure8Acc) Render(_ *World, sh Shard, _ *LabelTables) []*Report {
	r := &Report{
		ID:     "F8",
		Title:  "Most common words in feed generator descriptions",
		Header: []string{"word", "count"},
	}
	for _, kv := range topK(sh.(*figure8Shard).counts, 20) {
		r.Rows = append(r.Rows, []string{kv.Key, fmt.Sprint(kv.Count)})
	}
	return []*Report{r}
}

// ---- Figure 9: top labels of labeled feeds ----

type figure9Acc struct{}

func newFigure9Acc() Accumulator { return figure9Acc{} }

type figure9Shard struct {
	NopShard
	counts      map[string]int
	some, heavy int
}

func (figure9Acc) IDs() []string     { return []string{"F9"} }
func (figure9Acc) Needs() Collection { return ColFeedGens }
func (figure9Acc) NewShard(*World) Shard {
	return &figure9Shard{counts: map[string]int{}}
}

func (s *figure9Shard) FeedGens(fs []core.FeedGen, _ int) {
	for i := range fs {
		fg := &fs[i]
		if fg.LabeledShare > 0 {
			s.some++
		}
		if fg.LabeledShare >= 0.10 {
			s.heavy++
			s.counts[fg.TopLabel]++
		}
	}
}

func (figure9Acc) Merge(dst, src Shard, _ *MergeCtx) {
	d, s := dst.(*figure9Shard), src.(*figure9Shard)
	d.some += s.some
	d.heavy += s.heavy
	for k, n := range s.counts {
		d.counts[k] += n
	}
}

func (figure9Acc) Render(w *World, sh Shard, _ *LabelTables) []*Report {
	s := sh.(*figure9Shard)
	r := &Report{
		ID:     "F9",
		Title:  "Top labels associated with posts curated by feed generators (≥10 % labeled)",
		Header: []string{"label", "# feed generators"},
	}
	for _, kv := range topK(s.counts, 10) {
		r.Rows = append(r.Rows, []string{kv.Key, fmt.Sprint(kv.Count)})
	}
	r.Notes = append(r.Notes,
		fmt.Sprintf("feeds with any labeled content: %s; with ≥10%% labeled: %s",
			pct(int64(s.some), int64(w.FeedGens)), pct(int64(s.heavy), int64(w.FeedGens))))
	return []*Report{r}
}

// ---- Figure 10: posts vs likes scatter ----

type figure10Acc struct{}

func newFigure10Acc() Accumulator { return figure10Acc{} }

type figure10Shard struct {
	NopShard
	counts map[[2]string]int
	notes  []string
}

func (figure10Acc) IDs() []string     { return []string{"F10"} }
func (figure10Acc) Needs() Collection { return ColFeedGens }
func (figure10Acc) NewShard(*World) Shard {
	return &figure10Shard{counts: map[[2]string]int{}}
}

func logBin(n int) string {
	if n == 0 {
		return "0"
	}
	p := 0
	for v := n; v >= 10; v /= 10 {
		p++
	}
	return fmt.Sprintf("10^%d", p)
}

func (s *figure10Shard) FeedGens(fs []core.FeedGen, _ int) {
	for i := range fs {
		fg := &fs[i]
		s.counts[[2]string{logBin(fg.Posts), logBin(fg.Likes)}]++
		switch fg.DisplayName {
		case "the-algorithm", "whats-hot", "4dff350a5a3e", "hebrew-feed":
			s.notes = append(s.notes, fmt.Sprintf("%s: posts=%d likes=%d personalized=%v",
				fg.DisplayName, fg.Posts, fg.Likes, fg.Personalized))
		}
	}
}

func (figure10Acc) Merge(dst, src Shard, _ *MergeCtx) {
	d, s := dst.(*figure10Shard), src.(*figure10Shard)
	for k, n := range s.counts {
		d.counts[k] += n
	}
	d.notes = append(d.notes, s.notes...)
}

func (figure10Acc) Render(_ *World, sh Shard, _ *LabelTables) []*Report {
	s := sh.(*figure10Shard)
	r := &Report{
		ID:     "F10",
		Title:  "Feed generator curated posts vs like count (log-binned)",
		Header: []string{"posts bin", "likes bin", "# feeds"},
	}
	keys := make([][2]string, 0, len(s.counts))
	for k := range s.counts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	for _, k := range keys {
		r.Rows = append(r.Rows, []string{k[0], k[1], fmt.Sprint(s.counts[k])})
	}
	r.Notes = append(r.Notes, s.notes...)
	sort.Strings(r.Notes)
	return []*Report{r}
}

// ---- Figure 11: degree distributions ----

const maxLogBins = 32 // 4^32 far exceeds any follower count

// log4Bin returns the bin index of degree d (bins [4^k, 4^(k+1)-1]),
// or -1 for degrees below 1 — matching the legacy bin search.
func log4Bin(d int) int {
	if d < 1 {
		return -1
	}
	k := 0
	for v := d; v >= 4; v >>= 2 {
		k++
	}
	return k
}

type figure11Acc struct{}

func newFigure11Acc() Accumulator { return figure11Acc{} }

type creatorAgg struct {
	likes int64
	count int64
}

type figure11Shard struct {
	NopShard
	inBins, outBins [maxLogBins]int
	maxDeg          int
	creators        map[int]*creatorAgg
}

func (figure11Acc) IDs() []string     { return []string{"F11"} }
func (figure11Acc) Needs() Collection { return ColUsers | ColFeedGens }
func (figure11Acc) NewShard(*World) Shard {
	return &figure11Shard{maxDeg: 1, creators: map[int]*creatorAgg{}}
}

func (s *figure11Shard) Users(us []core.User, _ int) {
	for i := range us {
		u := &us[i]
		if u.Followers > s.maxDeg {
			s.maxDeg = u.Followers
		}
		if u.Following > s.maxDeg {
			s.maxDeg = u.Following
		}
		if b := log4Bin(u.Followers); b >= 0 {
			s.inBins[b]++
		}
		if b := log4Bin(u.Following); b >= 0 {
			s.outBins[b]++
		}
	}
}

func (s *figure11Shard) FeedGens(fs []core.FeedGen, _ int) {
	for i := range fs {
		fg := &fs[i]
		a := s.creators[fg.CreatorIdx]
		if a == nil {
			a = &creatorAgg{}
			s.creators[fg.CreatorIdx] = a
		}
		a.likes += int64(fg.Likes)
		a.count++
	}
}

func (figure11Acc) Merge(dst, src Shard, mc *MergeCtx) {
	d, s := dst.(*figure11Shard), src.(*figure11Shard)
	if s.maxDeg > d.maxDeg {
		d.maxDeg = s.maxDeg
	}
	for b := 0; b < maxLogBins; b++ {
		d.inBins[b] += s.inBins[b]
		d.outBins[b] += s.outBins[b]
	}
	for ci, a := range s.creators {
		// Partition-local creator indexes rebase into the merged user
		// table (RemapUser is identity for worker and split merges).
		gci := mc.RemapUser(ci)
		da := d.creators[gci]
		if da == nil {
			d.creators[gci] = &creatorAgg{likes: a.likes, count: a.count}
			continue
		}
		da.likes += a.likes
		da.count += a.count
	}
}

func (s *figure11Shard) bins(w *World) []DegreeBin {
	var bins []DegreeBin
	for lo := 1; lo <= s.maxDeg; lo *= 4 {
		bins = append(bins, DegreeBin{Lo: lo, Hi: lo*4 - 1})
	}
	for b := range bins {
		bins[b].InCount = s.inBins[b]
		bins[b].OutCount = s.outBins[b]
	}
	for _, ci := range sortedCreatorIdxs(s.creators) {
		if b := log4Bin(w.Followers(ci)); b >= 0 && b < len(bins) {
			bins[b].InFGCreators++
		}
	}
	return bins
}

func sortedCreatorIdxs(m map[int]*creatorAgg) []int {
	idxs := make([]int, 0, len(m))
	for ci := range m {
		idxs = append(idxs, ci)
	}
	sort.Ints(idxs)
	return idxs
}

func (figure11Acc) Render(w *World, sh Shard, _ *LabelTables) []*Report {
	s := sh.(*figure11Shard)
	bins := s.bins(w)
	r := &Report{
		ID:     "F11",
		Title:  "Follow degree distributions; feed generator creators highlighted",
		Header: []string{"degree bin", "# users (in)", "FG creators (in)", "# users (out)"},
	}
	for _, b := range bins {
		r.Rows = append(r.Rows, []string{
			fmt.Sprintf("%d–%d", b.Lo, b.Hi),
			fmt.Sprint(b.InCount), fmt.Sprint(b.InFGCreators), fmt.Sprint(b.OutCount),
		})
	}
	// §7.1 correlations, over creators in deterministic index order.
	var xs, ys, cs []float64
	for _, ci := range sortedCreatorIdxs(s.creators) {
		a := s.creators[ci]
		xs = append(xs, float64(a.likes))
		ys = append(ys, float64(w.Followers(ci)))
		cs = append(cs, float64(a.count))
	}
	r.Notes = append(r.Notes,
		fmt.Sprintf("Pearson r(Σ feed likes, followers) = %.3f (paper: 0.533)", Pearson(xs, ys)),
		fmt.Sprintf("Pearson r(# feeds, followers) = %.3f (paper: 0.005)", Pearson(cs, ys)))
	return []*Report{r}
}

// ---- Figure 12 / provider shares ----

type figure12Acc struct{}

func newFigure12Acc() Accumulator { return figure12Acc{} }

type figure12Shard struct {
	NopShard
	agg                          map[string]*ProviderShare
	totFeeds, totPosts, totLikes int
}

func (figure12Acc) IDs() []string     { return []string{"F12"} }
func (figure12Acc) Needs() Collection { return ColFeedGens }
func (figure12Acc) NewShard(*World) Shard {
	return &figure12Shard{agg: map[string]*ProviderShare{}}
}

func (s *figure12Shard) FeedGens(fs []core.FeedGen, _ int) {
	for i := range fs {
		fg := &fs[i]
		p, ok := s.agg[fg.Platform]
		if !ok {
			p = &ProviderShare{Name: fg.Platform}
			s.agg[fg.Platform] = p
		}
		p.Feeds++
		p.PostsTotal += fg.Posts
		p.LikesTotal += fg.Likes
		s.totFeeds++
		s.totPosts += fg.Posts
		s.totLikes += fg.Likes
	}
}

func (figure12Acc) Merge(dst, src Shard, _ *MergeCtx) {
	d, s := dst.(*figure12Shard), src.(*figure12Shard)
	d.totFeeds += s.totFeeds
	d.totPosts += s.totPosts
	d.totLikes += s.totLikes
	for name, p := range s.agg {
		dp, ok := d.agg[name]
		if !ok {
			cp := *p
			d.agg[name] = &cp
			continue
		}
		dp.Feeds += p.Feeds
		dp.PostsTotal += p.PostsTotal
		dp.LikesTotal += p.LikesTotal
	}
}

func (s *figure12Shard) shares() []ProviderShare {
	out := make([]ProviderShare, 0, len(s.agg))
	for _, p := range s.agg {
		cp := *p
		cp.FeedShare = float64(cp.Feeds) / float64(s.totFeeds)
		cp.PostShare = float64(cp.PostsTotal) / float64(s.totPosts)
		cp.LikeShare = float64(cp.LikesTotal) / float64(s.totLikes)
		out = append(out, cp)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Feeds != out[j].Feeds {
			return out[i].Feeds > out[j].Feeds
		}
		return out[i].Name < out[j].Name
	})
	return out
}

func (figure12Acc) Render(_ *World, sh Shard, _ *LabelTables) []*Report {
	return []*Report{renderFigure12(sh.(*figure12Shard).shares())}
}

// ---- Discussion (§9): bandwidth estimate ----

type discussionAcc struct{}

func newDiscussionAcc() Accumulator { return discussionAcc{} }

func (discussionAcc) IDs() []string                 { return []string{"S9"} }
func (discussionAcc) Needs() Collection             { return 0 }
func (discussionAcc) NewShard(*World) Shard         { return NopShard{} }
func (discussionAcc) Merge(_, _ Shard, _ *MergeCtx) {}

func (discussionAcc) Render(w *World, _ Shard, _ *LabelTables) []*Report {
	bw := estimateBandwidth(w.WindowStart, w.WindowEnd, w.Firehose, w.Scale)
	r := &Report{
		ID:     "S9",
		Title:  "Discussion: firehose scalability estimate",
		Header: []string{"metric", "value"},
	}
	r.Rows = append(r.Rows,
		[]string{"firehose events/day (scaled)", fmt.Sprintf("%.0f", bw.EventsPerDay)},
		[]string{"firehose MB/day per client (scaled)", fmt.Sprintf("%.1f", bw.BytesPerDay/1e6)},
		[]string{"projected GB/day per client (unscaled)", fmt.Sprintf("%.1f", bw.GBPerDayPaper)},
	)
	r.Notes = append(r.Notes, "paper §9 estimates ≈30 GB/day per subscribed client")
	return []*Report{r}
}

// ---- shard-state codecs (the wire forms of DESIGN.md §9) ----
//
// Each accumulator serializes its level-one-merged shard so a remote
// worker can ship it home for the level-two fold. Slices keep their
// order (some renders stable-sort, so order is state); maps with
// non-string keys travel as key-sorted pair slices, which also makes
// the encoding deterministic. Decoders validate table-indexed ids
// against StateBounds — see Accumulator.UnmarshalShard.

type wireSection4 struct {
	Posts   int64 `cbor:"p,omitempty"`
	Likes   int64 `cbor:"l,omitempty"`
	Reposts int64 `cbor:"r,omitempty"`
	Follows int64 `cbor:"f,omitempty"`
	Blocks  int64 `cbor:"b,omitempty"`
}

func (section4Acc) MarshalShard(sh Shard) ([]byte, error) {
	s := sh.(*section4Shard)
	return marshalState(&wireSection4{s.posts, s.likes, s.reposts, s.follows, s.blocks})
}

func (section4Acc) UnmarshalShard(data []byte, _ StateBounds) (Shard, error) {
	w, err := unmarshalState[wireSection4](data)
	if err != nil {
		return nil, err
	}
	return &section4Shard{posts: w.Posts, likes: w.Likes, reposts: w.Reposts, follows: w.Follows, blocks: w.Blocks}, nil
}

type wireSection5 struct {
	Bsky   int64             `cbor:"bsky,omitempty"`
	Alt    int64             `cbor:"alt,omitempty"`
	DIDWeb int64             `cbor:"didWeb,omitempty"`
	TXT    int64             `cbor:"txt,omitempty"`
	WK     int64             `cbor:"wk,omitempty"`
	Tranco int64             `cbor:"tranco,omitempty"`
	DIDs   []string          `cbor:"dids,omitempty"`
	Final  map[string]string `cbor:"final,omitempty"`
}

func (section5Acc) MarshalShard(sh Shard) ([]byte, error) {
	s := sh.(*section5Shard)
	w := &wireSection5{
		Bsky: int64(s.bsky), Alt: int64(s.alt), DIDWeb: int64(s.didWeb),
		TXT: int64(s.txt), WK: int64(s.wk), Tranco: int64(s.tranco),
		Final: s.final,
	}
	for did := range s.dids {
		w.DIDs = append(w.DIDs, did)
	}
	sort.Strings(w.DIDs)
	return marshalState(w)
}

func (section5Acc) UnmarshalShard(data []byte, _ StateBounds) (Shard, error) {
	w, err := unmarshalState[wireSection5](data)
	if err != nil {
		return nil, err
	}
	s := &section5Shard{
		bsky: int(w.Bsky), alt: int(w.Alt), didWeb: int(w.DIDWeb),
		txt: int(w.TXT), wk: int(w.WK), tranco: int(w.Tranco),
		dids: make(map[string]bool, len(w.DIDs)), final: w.Final,
	}
	if s.final == nil {
		s.final = map[string]string{}
	}
	for _, did := range w.DIDs {
		s.dids[did] = true
	}
	return s, nil
}

func (table1Acc) MarshalShard(Shard) ([]byte, error)                { return nil, nil }
func (table1Acc) UnmarshalShard([]byte, StateBounds) (Shard, error) { return NopShard{}, nil }

type wireRegistrar struct {
	ID    int64  `cbor:"id"`
	Name  string `cbor:"name,omitempty"`
	Count int64  `cbor:"n,omitempty"`
}

type wireTable2 struct {
	WithID int64           `cbor:"withID,omitempty"`
	Rows   []wireRegistrar `cbor:"rows,omitempty"`
}

func (table2Acc) MarshalShard(sh Shard) ([]byte, error) {
	s := sh.(*table2Shard)
	w := &wireTable2{WithID: int64(s.withID)}
	for id, row := range s.counts {
		w.Rows = append(w.Rows, wireRegistrar{ID: int64(id), Name: row.Name, Count: int64(row.Count)})
	}
	sort.Slice(w.Rows, func(i, j int) bool { return w.Rows[i].ID < w.Rows[j].ID })
	return marshalState(w)
}

func (table2Acc) UnmarshalShard(data []byte, _ StateBounds) (Shard, error) {
	w, err := unmarshalState[wireTable2](data)
	if err != nil {
		return nil, err
	}
	s := &table2Shard{counts: make(map[int]*RegistrarRow, len(w.Rows)), withID: int(w.WithID)}
	for _, r := range w.Rows {
		s.counts[int(r.ID)] = &RegistrarRow{IANAID: int(r.ID), Name: r.Name, Count: int(r.Count)}
	}
	return s, nil
}

func (table5Acc) MarshalShard(sh Shard) ([]byte, error) {
	return marshalState(sh.(*table5Shard).feeds)
}

func (table5Acc) UnmarshalShard(data []byte, _ StateBounds) (Shard, error) {
	w, err := unmarshalState[map[string]int](data)
	if err != nil {
		return nil, err
	}
	if *w == nil {
		*w = map[string]int{}
	}
	return &table5Shard{feeds: *w}, nil
}

type wireWeekly struct {
	Rows [][]string `cbor:"rows,omitempty"`
}

func marshalWeekly(sh Shard) ([]byte, error) {
	return marshalState(&wireWeekly{Rows: sh.(*weeklyShard).rows})
}

func unmarshalWeekly(data []byte, langs []string) (Shard, error) {
	w, err := unmarshalState[wireWeekly](data)
	if err != nil {
		return nil, err
	}
	return &weeklyShard{langs: langs, rows: w.Rows}, nil
}

func (figure1Acc) MarshalShard(sh Shard) ([]byte, error) { return marshalWeekly(sh) }
func (figure1Acc) UnmarshalShard(data []byte, _ StateBounds) (Shard, error) {
	return unmarshalWeekly(data, nil)
}

func (figure2Acc) MarshalShard(sh Shard) ([]byte, error) { return marshalWeekly(sh) }
func (figure2Acc) UnmarshalShard(data []byte, _ StateBounds) (Shard, error) {
	return unmarshalWeekly(data, figure2Langs)
}

type wireFigure3 struct {
	Doms []core.Domain `cbor:"doms,omitempty"`
}

func (figure3Acc) MarshalShard(sh Shard) ([]byte, error) {
	return marshalState(&wireFigure3{Doms: sh.(*figure3Shard).doms})
}

func (figure3Acc) UnmarshalShard(data []byte, _ StateBounds) (Shard, error) {
	w, err := unmarshalState[wireFigure3](data)
	if err != nil {
		return nil, err
	}
	return &figure3Shard{doms: w.Doms}, nil
}

type wireFGGrowth struct {
	CreatedNS int64 `cbor:"c,omitempty"`
	Likes     int64 `cbor:"l,omitempty"`
	Creator   int64 `cbor:"u,omitempty"`
}

type wireFigure7 struct {
	FGs []wireFGGrowth `cbor:"fgs,omitempty"`
}

func (figure7Acc) MarshalShard(sh Shard) ([]byte, error) {
	s := sh.(*figure7Shard)
	w := &wireFigure7{FGs: make([]wireFGGrowth, 0, len(s.fgs))}
	for _, fg := range s.fgs {
		var ns int64
		if !fg.created.IsZero() {
			ns = fg.created.UnixNano()
		}
		w.FGs = append(w.FGs, wireFGGrowth{CreatedNS: ns, Likes: int64(fg.likes), Creator: int64(fg.creatorIdx)})
	}
	return marshalState(w)
}

func (figure7Acc) UnmarshalShard(data []byte, _ StateBounds) (Shard, error) {
	w, err := unmarshalState[wireFigure7](data)
	if err != nil {
		return nil, err
	}
	s := &figure7Shard{fgs: make([]fgGrowth, 0, len(w.FGs))}
	for _, fg := range w.FGs {
		if fg.Creator < 0 {
			return nil, fmt.Errorf("negative creator index %d", fg.Creator)
		}
		var created time.Time
		if fg.CreatedNS != 0 {
			created = time.Unix(0, fg.CreatedNS).UTC()
		}
		s.fgs = append(s.fgs, fgGrowth{created: created, likes: int(fg.Likes), creatorIdx: int(fg.Creator)})
	}
	return s, nil
}

func (figure8Acc) MarshalShard(sh Shard) ([]byte, error) {
	return marshalState(sh.(*figure8Shard).counts)
}

func (figure8Acc) UnmarshalShard(data []byte, _ StateBounds) (Shard, error) {
	w, err := unmarshalState[map[string]int](data)
	if err != nil {
		return nil, err
	}
	if *w == nil {
		*w = map[string]int{}
	}
	return &figure8Shard{counts: *w}, nil
}

type wireFigure9 struct {
	Some   int64          `cbor:"some,omitempty"`
	Heavy  int64          `cbor:"heavy,omitempty"`
	Counts map[string]int `cbor:"counts,omitempty"`
}

func (figure9Acc) MarshalShard(sh Shard) ([]byte, error) {
	s := sh.(*figure9Shard)
	return marshalState(&wireFigure9{Some: int64(s.some), Heavy: int64(s.heavy), Counts: s.counts})
}

func (figure9Acc) UnmarshalShard(data []byte, _ StateBounds) (Shard, error) {
	w, err := unmarshalState[wireFigure9](data)
	if err != nil {
		return nil, err
	}
	if w.Counts == nil {
		w.Counts = map[string]int{}
	}
	return &figure9Shard{counts: w.Counts, some: int(w.Some), heavy: int(w.Heavy)}, nil
}

type wireBinCount struct {
	Posts string `cbor:"p,omitempty"`
	Likes string `cbor:"l,omitempty"`
	N     int64  `cbor:"n,omitempty"`
}

type wireFigure10 struct {
	Bins  []wireBinCount `cbor:"bins,omitempty"`
	Notes []string       `cbor:"notes,omitempty"`
}

func (figure10Acc) MarshalShard(sh Shard) ([]byte, error) {
	s := sh.(*figure10Shard)
	w := &wireFigure10{Notes: s.notes}
	for k, n := range s.counts {
		w.Bins = append(w.Bins, wireBinCount{Posts: k[0], Likes: k[1], N: int64(n)})
	}
	sort.Slice(w.Bins, func(i, j int) bool {
		if w.Bins[i].Posts != w.Bins[j].Posts {
			return w.Bins[i].Posts < w.Bins[j].Posts
		}
		return w.Bins[i].Likes < w.Bins[j].Likes
	})
	return marshalState(w)
}

func (figure10Acc) UnmarshalShard(data []byte, _ StateBounds) (Shard, error) {
	w, err := unmarshalState[wireFigure10](data)
	if err != nil {
		return nil, err
	}
	s := &figure10Shard{counts: make(map[[2]string]int, len(w.Bins)), notes: w.Notes}
	for _, b := range w.Bins {
		s.counts[[2]string{b.Posts, b.Likes}] += int(b.N)
	}
	return s, nil
}

// maxWireDegree bounds a deserialized maxDeg: bins() derives the bin
// list from it, so an absurd degree must fail decode instead of
// driving the render loop into overflow.
const maxWireDegree = 1 << 40

type wireCreator struct {
	Idx   int64 `cbor:"i"`
	Likes int64 `cbor:"l,omitempty"`
	Count int64 `cbor:"n,omitempty"`
}

type wireFigure11 struct {
	InBins   []int64       `cbor:"in,omitempty"`
	OutBins  []int64       `cbor:"out,omitempty"`
	MaxDeg   int64         `cbor:"maxDeg,omitempty"`
	Creators []wireCreator `cbor:"creators,omitempty"`
}

func (figure11Acc) MarshalShard(sh Shard) ([]byte, error) {
	s := sh.(*figure11Shard)
	w := &wireFigure11{
		InBins:  make([]int64, maxLogBins),
		OutBins: make([]int64, maxLogBins),
		MaxDeg:  int64(s.maxDeg),
	}
	for b := 0; b < maxLogBins; b++ {
		w.InBins[b] = int64(s.inBins[b])
		w.OutBins[b] = int64(s.outBins[b])
	}
	for ci, a := range s.creators {
		w.Creators = append(w.Creators, wireCreator{Idx: int64(ci), Likes: a.likes, Count: a.count})
	}
	sort.Slice(w.Creators, func(i, j int) bool { return w.Creators[i].Idx < w.Creators[j].Idx })
	return marshalState(w)
}

func (figure11Acc) UnmarshalShard(data []byte, _ StateBounds) (Shard, error) {
	w, err := unmarshalState[wireFigure11](data)
	if err != nil {
		return nil, err
	}
	if len(w.InBins) > maxLogBins || len(w.OutBins) > maxLogBins {
		return nil, fmt.Errorf("%d/%d degree bins exceed the %d bound", len(w.InBins), len(w.OutBins), maxLogBins)
	}
	if w.MaxDeg < 0 || w.MaxDeg > maxWireDegree {
		return nil, fmt.Errorf("max degree %d outside [0, %d]", w.MaxDeg, int64(maxWireDegree))
	}
	s := &figure11Shard{maxDeg: int(w.MaxDeg), creators: make(map[int]*creatorAgg, len(w.Creators))}
	if s.maxDeg < 1 {
		s.maxDeg = 1
	}
	copy64 := func(dst *[maxLogBins]int, src []int64) {
		for b := range src {
			dst[b] = int(src[b])
		}
	}
	copy64(&s.inBins, w.InBins)
	copy64(&s.outBins, w.OutBins)
	for _, c := range w.Creators {
		if c.Idx < 0 {
			return nil, fmt.Errorf("negative creator index %d", c.Idx)
		}
		s.creators[int(c.Idx)] = &creatorAgg{likes: c.Likes, count: c.Count}
	}
	return s, nil
}

type wireProvider struct {
	Feeds int64 `cbor:"f,omitempty"`
	Posts int64 `cbor:"p,omitempty"`
	Likes int64 `cbor:"l,omitempty"`
}

type wireFigure12 struct {
	TotFeeds int64                   `cbor:"feeds,omitempty"`
	TotPosts int64                   `cbor:"posts,omitempty"`
	TotLikes int64                   `cbor:"likes,omitempty"`
	Agg      map[string]wireProvider `cbor:"agg,omitempty"`
}

func (figure12Acc) MarshalShard(sh Shard) ([]byte, error) {
	s := sh.(*figure12Shard)
	w := &wireFigure12{
		TotFeeds: int64(s.totFeeds), TotPosts: int64(s.totPosts), TotLikes: int64(s.totLikes),
		Agg: make(map[string]wireProvider, len(s.agg)),
	}
	for name, p := range s.agg {
		w.Agg[name] = wireProvider{Feeds: int64(p.Feeds), Posts: int64(p.PostsTotal), Likes: int64(p.LikesTotal)}
	}
	return marshalState(w)
}

func (figure12Acc) UnmarshalShard(data []byte, _ StateBounds) (Shard, error) {
	w, err := unmarshalState[wireFigure12](data)
	if err != nil {
		return nil, err
	}
	s := &figure12Shard{
		agg:      make(map[string]*ProviderShare, len(w.Agg)),
		totFeeds: int(w.TotFeeds), totPosts: int(w.TotPosts), totLikes: int(w.TotLikes),
	}
	for name, p := range w.Agg {
		s.agg[name] = &ProviderShare{Name: name, Feeds: int(p.Feeds), PostsTotal: int(p.Posts), LikesTotal: int(p.Likes)}
	}
	return s, nil
}

func (discussionAcc) MarshalShard(Shard) ([]byte, error)                { return nil, nil }
func (discussionAcc) UnmarshalShard([]byte, StateBounds) (Shard, error) { return NopShard{}, nil }

// renderTable5 joins the static FGaaS feature matrix with per-platform
// feed counts.
func renderTable5(feeds map[string]int) *Report {
	platforms := feedgen.Platforms()
	features := []struct {
		Name string
		F    feedgen.Feature
	}{
		{"Input: whole network", feedgen.InWholeNetwork},
		{"Input: tags", feedgen.InTags},
		{"Input: single user", feedgen.InSingleUser},
		{"Input: list", feedgen.InList},
		{"Input: feed", feedgen.InFeed},
		{"Input: single post", feedgen.InSinglePost},
		{"Input: labels", feedgen.InLabels},
		{"Input: token", feedgen.InToken},
		{"Input: segment", feedgen.InSegment},
		{"Filter: item", feedgen.FiltItem},
		{"Filter: labels", feedgen.FiltLabels},
		{"Filter: image count", feedgen.FiltImageCount},
		{"Filter: link count", feedgen.FiltLinkCount},
		{"Filter: repost count", feedgen.FiltRepostCount},
		{"Filter: embed", feedgen.FiltEmbed},
		{"Filter: duplicate", feedgen.FiltDuplicate},
		{"Filter: list of users", feedgen.FiltUserList},
		{"Filter: language", feedgen.FiltLanguage},
		{"Filter: regex text", feedgen.FiltRegexText},
		{"Filter: regex image alt", feedgen.FiltRegexAlt},
		{"Filter: regex link", feedgen.FiltRegexLink},
	}
	header := []string{"Feature"}
	for _, p := range platforms {
		header = append(header, p.Name)
	}
	r := &Report{ID: "T5", Title: "Feed-Generator-as-a-Service feature comparison", Header: header}
	for _, f := range features {
		row := []string{f.Name}
		for _, p := range platforms {
			if p.Supports(f.F) {
				row = append(row, "yes")
			} else {
				row = append(row, "")
			}
		}
		r.Rows = append(r.Rows, row)
	}
	countRow := []string{"Number of feeds"}
	paidRow := []string{"Paid or free"}
	for _, p := range platforms {
		countRow = append(countRow, fmt.Sprint(feeds[strings.ToLower(p.Name)]))
		if p.Paid {
			paidRow = append(paidRow, "free & paid")
		} else {
			paidRow = append(paidRow, "free")
		}
	}
	r.Rows = append(r.Rows, countRow, paidRow)
	return r
}
