package analysis

import (
	"os"
	"path/filepath"
	"testing"

	"blueskies/internal/core"
	"blueskies/internal/synth"
)

// TestDiskParityGolden is the tentpole's acceptance gate: RunAll over
// a spilled n-partition corpus, streamed back block by block from
// disk, must be byte-identical to the in-memory unsplit golden for
// n ∈ {1,2,4,8}, at several worker counts.
func TestDiskParityGolden(t *testing.T) {
	want := RunAll(ds, 1)
	for _, n := range []int{1, 2, 4, 8} {
		parts, m := core.Split(ds, n)
		dir := t.TempDir()
		if err := core.WriteCorpus(dir, parts, m); err != nil {
			t.Fatalf("n=%d: spill: %v", n, err)
		}
		c, err := core.OpenCorpus(dir)
		if err != nil {
			t.Fatalf("n=%d: open: %v", n, err)
		}
		for _, workers := range []int{0, 1, 3} {
			got, err := RunAllDisk(c, workers)
			if err != nil {
				t.Fatalf("n=%d workers=%d: %v", n, workers, err)
			}
			compareReports(t, label("disk", n, workers), got, want)
		}
	}
}

// TestDiskIndependentParity checks the rebasing path out of core: a
// corpus spilled during independent generation (disjoint RNG
// sub-streams, partition-local indexes) must evaluate from disk exactly
// as its in-memory twin does through the same two-level merge.
func TestDiskIndependentParity(t *testing.T) {
	cfg := synth.Config{Scale: 2000, Seed: 7}
	parts, m := synth.GeneratePartitioned(cfg, 3)
	want, err := RunAllPartitioned(parts, m, 2)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	dm, err := synth.GeneratePartitionedTo(cfg, 3, dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(dm.Partitions) != len(m.Partitions) {
		t.Fatalf("spilled manifest has %d partitions, want %d", len(dm.Partitions), len(m.Partitions))
	}
	c, err := core.OpenCorpus(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunAllDisk(c, 2)
	if err != nil {
		t.Fatal(err)
	}
	compareReports(t, "disk-independent", got, want)
}

// TestDiskSourceMixesWithBatch pins Source composability: a MultiSource
// mixing one partition streamed from disk with one materialized in
// memory must still fold to the unsplit golden — the scheduler
// follow-up ROADMAP names (remote partition placement) depends on
// sources of different locality merging transparently.
func TestDiskSourceMixesWithBatch(t *testing.T) {
	parts, m := core.Split(ds, 2)
	dir := t.TempDir()
	if err := core.WriteCorpus(dir, parts, m); err != nil {
		t.Fatal(err)
	}
	c, err := core.OpenCorpus(dir)
	if err != nil {
		t.Fatal(err)
	}
	ms := &MultiSource{
		Sources: []Source{
			NewDiskSource(c, 0),
			NewDatasetSourceAt(parts[1], m.Partitions[1].Base),
		},
		Manifest: m,
	}
	got, err := NewFullEngine().Workers(2).RunSource(ms)
	if err != nil {
		t.Fatal(err)
	}
	compareReports(t, "disk+batch", canonicalize(got), RunAll(ds, 1))
}

// TestDiskSourceManifestRecordMismatch pins the store↔manifest
// binding: a block file whose record counts disagree with the
// manifest's Records (a swapped-in partition from another corpus, a
// stale file after a manual shuffle) must fail the evaluation — the
// Base prefix-sum offsets assume exactly those counts, so proceeding
// would silently mis-attribute every later partition's indexes.
func TestDiskSourceManifestRecordMismatch(t *testing.T) {
	parts, m := core.Split(ds, 2)
	dir := t.TempDir()
	if err := core.WriteCorpus(dir, parts, m); err != nil {
		t.Fatal(err)
	}
	// Partition 1 of a 3-way split has different counts than partition
	// 1 of the 2-way split; frame checksums and the end marker are all
	// intact, so only the manifest cross-check can catch the swap.
	other := t.TempDir()
	parts3, m3 := core.Split(ds, 3)
	if err := core.WriteCorpus(other, parts3, m3); err != nil {
		t.Fatal(err)
	}
	swapped, err := os.ReadFile(filepath.Join(other, core.PartitionFileName(1)))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, core.PartitionFileName(1)), swapped, 0o644); err != nil {
		t.Fatal(err)
	}
	c, err := core.OpenCorpus(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunAllDisk(c, 1); err == nil {
		t.Fatal("swapped partition with mismatched record counts evaluated without error")
	}
}

// TestDiskSourceCorruptPartition checks the error path end to end: a
// corrupt block in one partition must fail the whole evaluation with a
// diagnostic, not render a silently thinned corpus.
func TestDiskSourceCorruptPartition(t *testing.T) {
	parts, m := core.Split(ds, 2)
	dir := t.TempDir()
	if err := core.WriteCorpus(dir, parts, m); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, core.PartitionFileName(1))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x5A
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	c, err := core.OpenCorpus(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunAllDisk(c, 2); err == nil {
		t.Fatal("corrupt partition evaluated without error")
	}
}
