package analysis

import (
	"bytes"
	"sync"
	"testing"

	"blueskies/internal/cbor"
	"blueskies/internal/core"
	"blueskies/internal/synth"
)

// snapshotPartitions runs level one over every partition and returns
// each partition's serialized state.
func snapshotPartitions(t *testing.T, parts []*core.Dataset, m *core.Manifest, workers int) [][]byte {
	t.Helper()
	states := make([][]byte, len(parts))
	for k, p := range parts {
		eng := NewFullEngine().Workers(workers)
		state, err := eng.Snapshot(NewDatasetSourceAt(p, m.Partitions[k].Base))
		if err != nil {
			t.Fatalf("snapshot partition %d: %v", k, err)
		}
		states[k] = state
	}
	return states
}

// restoreSources decodes serialized partition states into fold-ready
// Sources.
func restoreSources(t *testing.T, states [][]byte) []Source {
	t.Helper()
	eng := NewFullEngine()
	srcs := make([]Source, len(states))
	for k, state := range states {
		src, err := eng.RestoreState(state)
		if err != nil {
			t.Fatalf("restore partition %d: %v", k, err)
		}
		srcs[k] = src
	}
	return srcs
}

// TestStateRoundTripGolden is the snapshot layer's acceptance gate:
// every accumulator's level-one state marshaled, unmarshaled, and
// folded through the level-two merge must render byte-identical
// reports to the flat golden, for n ∈ {1,2,4,8} — the in-process fold
// and the over-the-wire fold are the same fold.
func TestStateRoundTripGolden(t *testing.T) {
	want := RunAll(ds, 1)
	for _, n := range []int{1, 2, 4, 8} {
		parts, m := core.Split(ds, n)
		srcs := restoreSources(t, snapshotPartitions(t, parts, m, 2))
		ms := &MultiSource{Sources: srcs, Manifest: m}
		got, err := NewFullEngine().RunSource(ms)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		compareReports(t, label("state", n, 2), canonicalize(got), want)
	}
}

// TestStateRoundTripIndependent checks the rebasing path: independent
// partition datasets (partition-local user indexes) serialized and
// folded must match their in-process evaluation.
func TestStateRoundTripIndependent(t *testing.T) {
	parts, m := generatedParts(t)
	want, err := RunAllPartitioned(parts, m, 2)
	if err != nil {
		t.Fatal(err)
	}
	srcs := restoreSources(t, snapshotPartitions(t, parts, m, 2))
	ms := &MultiSource{Sources: srcs, Manifest: m}
	got, err := NewFullEngine().RunSource(ms)
	if err != nil {
		t.Fatal(err)
	}
	compareReports(t, "state-independent", canonicalize(got), want)
}

// TestStateMixesWithOtherSources pins locality transparency end to
// end: one partition as deserialized remote state, one streamed from
// disk, one materialized in memory — all under one MultiSource — must
// fold to the flat golden.
func TestStateMixesWithOtherSources(t *testing.T) {
	parts, m := core.Split(ds, 3)
	dir := t.TempDir()
	if err := core.WriteCorpus(dir, parts, m); err != nil {
		t.Fatal(err)
	}
	c, err := core.OpenCorpus(dir)
	if err != nil {
		t.Fatal(err)
	}
	states := snapshotPartitions(t, parts, m, 1)
	remote, err := NewFullEngine().RestoreState(states[0])
	if err != nil {
		t.Fatal(err)
	}
	ms := &MultiSource{
		Sources: []Source{
			remote,
			NewDiskSource(c, 1),
			NewDatasetSourceAt(parts[2], m.Partitions[2].Base),
		},
		Manifest: m,
	}
	got, err := NewFullEngine().Workers(2).RunSource(ms)
	if err != nil {
		t.Fatal(err)
	}
	compareReports(t, "state+disk+batch", canonicalize(got), RunAll(ds, 1))
}

// TestStateDeterministicEncoding pins the codec's determinism: the
// same level-one state marshals to identical bytes, and a decoded
// state re-marshals to the original bytes — so states can be content-
// addressed, cached, and diffed across workers.
func TestStateDeterministicEncoding(t *testing.T) {
	parts, m := core.Split(ds, 2)
	a := snapshotPartitions(t, parts, m, 2)
	b := snapshotPartitions(t, parts, m, 3)
	for k := range a {
		if !bytes.Equal(a[k], b[k]) {
			t.Fatalf("partition %d state differs across worker counts", k)
		}
		eng := NewFullEngine()
		world, shards, tables, err := UnmarshalPartitionState(eng.accs, a[k])
		if err != nil {
			t.Fatal(err)
		}
		again, err := MarshalPartitionState(eng.accs, world, shards, tables)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a[k], again) {
			t.Fatalf("partition %d state does not re-marshal to identical bytes", k)
		}
	}
}

// TestStateEnvelopeRejections pins the envelope's validation: version
// ahead of the reader, fingerprint mismatches, and structural lies all
// error with diagnostics instead of folding garbage.
func TestStateEnvelopeRejections(t *testing.T) {
	eng := NewFullEngine()
	state, err := eng.Snapshot(NewDatasetSource(tinyDS(t)))
	if err != nil {
		t.Fatal(err)
	}
	mutate := func(f func(env *wirePartitionState)) []byte {
		var env wirePartitionState
		if err := cbor.Unmarshal(state, &env); err != nil {
			t.Fatal(err)
		}
		f(&env)
		out, err := cbor.Marshal(&env)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	cases := map[string][]byte{
		"future version": mutate(func(e *wirePartitionState) { e.Version = StateVersion + 1 }),
		"fingerprint":    mutate(func(e *wirePartitionState) { e.Accs[3] = "T9" }),
		"missing world":  mutate(func(e *wirePartitionState) { e.World = nil }),
		"shard count":    mutate(func(e *wirePartitionState) { e.Shards = e.Shards[:5] }),
		"negative count": mutate(func(e *wirePartitionState) { e.World.Users = -1 }),
		"dup tables":     mutate(func(e *wirePartitionState) { e.Tables.Vals = append(e.Tables.Vals, e.Tables.Vals[0]) }),
	}
	for name, data := range cases {
		if _, _, _, err := UnmarshalPartitionState(eng.accs, data); err == nil {
			t.Errorf("%s: hostile envelope decoded without error", name)
		}
	}
}

// tinyDS builds a minimal corpus that still exercises every
// accumulator (labels with known and unknown sources, feed gens,
// domains, handle updates).
func tinyDS(t *testing.T) *core.Dataset {
	t.Helper()
	parts, _ := generatedParts(t)
	return parts[0]
}

// TestShardCodecBounds pins the per-accumulator id validation: shard
// states whose interned ids escape the partition's own tables must
// fail decode — the level-two fold indexes remap slices with them.
func TestShardCodecBounds(t *testing.T) {
	bounds := StateBounds{URIs: 4, Vals: 3, ExtraSrcs: 1}
	cases := []struct {
		name string
		acc  Accumulator
		wire any
	}{
		{"section6 applied past vals", section6Acc{}, &wireSection6{AppliedSeen: make([]bool, 5)}},
		{"section6 firstSrc past uris", section6Acc{}, &wireSection6{FirstSrc: make([]int32, 5), MultiSrc: make([]bool, 5)}},
		{"section6 ragged multiSrc", section6Acc{}, &wireSection6{FirstSrc: make([]int32, 2), MultiSrc: make([]bool, 1)}},
		{"section6 pair uri", section6Acc{}, &wireSection6{Pairs: []wirePairState{{URI: 9, Val: 0}}}},
		{"section6 pair val", section6Acc{}, &wireSection6{Pairs: []wirePairState{{URI: 0, Val: 7}}}},
		{"section6 extra src", section6Acc{}, &wireSection6{Pairs: []wirePairState{{URI: 0, Val: 0, Src: -4}}}},
		{"table4 mask past uris", table4Acc{}, &wireTable4{KindMask: make([]byte, 5), Objects: make([]int64, 4), Values: make([][]int64, 4)}},
		{"table4 kinds", table4Acc{}, &wireTable4{Objects: make([]int64, 3), Values: make([][]int64, 4)}},
		{"table4 values past vals", table4Acc{}, &wireTable4{Objects: make([]int64, 4), Values: [][]int64{make([]int64, 9), nil, nil, nil}}},
		{"reaction values past vals", reactionAcc{}, &wireReaction{PerLab: []wireLabAgg{{Values: make([]int64, 9)}}}},
		{"reaction extra positive", reactionAcc{}, &wireReaction{Extra: []wireExtraAgg{{ID: 3}}}},
		{"reaction extra past table", reactionAcc{}, &wireReaction{Extra: []wireExtraAgg{{ID: -5}}}},
		{"figure6 perVal past vals", figure6Acc{}, &wireFigure6{PerVal: make([]wireValAgg, 9)}},
		{"figure6 seen uri", figure6Acc{}, &wireFigure6{Seen: []wirePairState{{URI: 11, Val: 0}}}},
		{"figure7 negative creator", figure7Acc{}, &wireFigure7{FGs: []wireFGGrowth{{Creator: -2}}}},
		{"figure11 negative creator", figure11Acc{}, &wireFigure11{Creators: []wireCreator{{Idx: -1}}}},
		{"figure11 degree overflow", figure11Acc{}, &wireFigure11{MaxDeg: 1 << 50}},
		{"figure11 too many bins", figure11Acc{}, &wireFigure11{InBins: make([]int64, maxLogBins+1)}},
	}
	for _, tc := range cases {
		data, err := cbor.Marshal(tc.wire)
		if err != nil {
			t.Fatalf("%s: marshal: %v", tc.name, err)
		}
		if _, err := tc.acc.UnmarshalShard(data, bounds); err == nil {
			t.Errorf("%s: out-of-bounds shard state decoded without error", tc.name)
		}
	}
}

// TestPartitionStateHostileBytes is the always-on cousin of
// FuzzPartitionState: deterministic corruptions of a valid state —
// truncations, bit flips, garbage — must error or decode cleanly,
// never panic or index out of range in the subsequent fold.
func TestPartitionStateHostileBytes(t *testing.T) {
	eng := NewFullEngine()
	state, err := eng.Snapshot(NewDatasetSource(tinyDS(t)))
	if err != nil {
		t.Fatal(err)
	}
	tryFold(t, eng, state) // the pristine state must fold cleanly
	for _, cut := range []int{0, 1, 7, len(state) / 2, len(state) - 1} {
		tryFold(t, eng, state[:cut])
	}
	// 64 deterministic single-byte corruptions spread across the state
	// (each surviving decode pays a full fold, so sample, don't sweep).
	for i := 0; i < 64; i++ {
		pos := (len(state) - 1) * i / 63
		mutated := append([]byte(nil), state...)
		mutated[pos] ^= 0x5A
		tryFold(t, eng, mutated)
	}
	tryFold(t, eng, []byte("BSKYPART definitely not cbor"))
}

// tryFold decodes (possibly hostile) state bytes and, when decode
// succeeds, pushes the result through a full level-two fold and
// render — the surfaces a hostile state could crash.
func tryFold(t *testing.T, eng *Engine, state []byte) {
	t.Helper()
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("hostile state bytes panicked: %v", r)
		}
	}()
	src, err := eng.RestoreState(state)
	if err != nil {
		return // rejected: exactly what hostile bytes should get
	}
	ms := &MultiSource{Sources: []Source{src}}
	if _, err := NewFullEngine().RunSource(ms); err != nil {
		return
	}
}

// FuzzPartitionState hammers the state decoder + fold with mutated
// envelopes, in the spirit of FuzzPartitionReader.
func FuzzPartitionState(f *testing.F) {
	eng := NewFullEngine()
	parts, m := core.Split(ds, 2)
	state, err := eng.Workers(1).Snapshot(NewDatasetSourceAt(parts[0], m.Partitions[0].Base))
	if err != nil {
		f.Fatal(err)
	}
	if len(state) > 1<<16 {
		state = state[:1<<16] // keep the corpus small; truncation is a valid hostile input
	}
	f.Add(state)
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		src, err := eng.RestoreState(data)
		if err != nil {
			return
		}
		ms := &MultiSource{Sources: []Source{src}}
		_, _ = NewFullEngine().RunSource(ms)
	})
}

// generatedParts returns a small independent-partition corpus shared
// by the state tests (generated once).
var generatedOnce = sync.OnceValues(func() ([]*core.Dataset, *core.Manifest) {
	return synth.GeneratePartitioned(synth.Config{Scale: 2000, Seed: 7}, 3)
})

func generatedParts(t *testing.T) ([]*core.Dataset, *core.Manifest) {
	t.Helper()
	return generatedOnce()
}
