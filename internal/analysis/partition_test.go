package analysis

import (
	"context"
	"fmt"
	"testing"

	"blueskies/internal/core"
	"blueskies/internal/events"
	"blueskies/internal/synth"
)

// compareReports asserts two report sets render identical bytes.
func compareReports(t *testing.T, label string, got, want []*Report) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d reports, want %d", label, len(got), len(want))
	}
	for i := range want {
		if got[i].ID != want[i].ID {
			t.Fatalf("%s: report %d is %s, want %s", label, i, got[i].ID, want[i].ID)
		}
		if got[i].String() != want[i].String() {
			t.Errorf("%s: report %s differs:\n--- got ---\n%s\n--- want ---\n%s",
				label, got[i].ID, got[i].String(), want[i].String())
		}
	}
}

// TestPartitionedBatchParityGolden is the tentpole's batch acceptance
// gate: RunAll over an n-way row-range split of the corpus must be
// byte-identical to the unsplit golden for n ∈ {1,2,4,8}, at any
// worker count.
func TestPartitionedBatchParityGolden(t *testing.T) {
	want := RunAll(ds, 1)
	for _, n := range []int{1, 2, 4, 8} {
		parts, m := core.Split(ds, n)
		if len(parts) != n || len(m.Partitions) != n {
			t.Fatalf("Split(%d) produced %d parts / %d manifest entries", n, len(parts), len(m.Partitions))
		}
		if got := m.Totals(); got != ds.Counts() {
			t.Fatalf("n=%d: manifest totals %+v != corpus counts %+v", n, got, ds.Counts())
		}
		for _, workers := range []int{0, 1, 3} {
			got, err := RunAllPartitioned(parts, m, workers)
			if err != nil {
				t.Fatalf("n=%d workers=%d: %v", n, workers, err)
			}
			compareReports(t, label("batch", n, workers), got, want)
		}
	}
}

func label(kind string, n, workers int) string {
	return fmt.Sprintf("%s n=%d workers=%d", kind, n, workers)
}

// partitionStreams replays each partition through its own firehose +
// labeler sequencer pair — one stream pair per partition — and returns
// the per-partition StreamSources plus the error channels to drain.
func partitionStreams(t *testing.T, parts []*core.Dataset, m *core.Manifest, blockSize int) ([]Source, []<-chan error) {
	t.Helper()
	var srcs []Source
	var errChans []<-chan error
	for k, p := range parts {
		fire := events.NewSequencer(0, 0)
		labeler := events.NewSequencer(0, 0)
		if err := synth.Replay(p, fire, labeler, blockSize); err != nil {
			t.Fatalf("replay partition %d: %v", k, err)
		}
		blocks, errs := core.SequencerStream(context.Background(), fire, labeler)
		srcs = append(srcs, &StreamSource{Blocks: blocks, Base: m.Partitions[k].Base})
		errChans = append(errChans, errs)
	}
	return srcs, errChans
}

// TestPartitionedStreamingParityGolden is the streaming half of the
// acceptance gate: each partition replayed over its own firehose +
// labeler stream pair, ingested concurrently with per-partition
// sequence-gap tracking, must fold to the unsplit batch golden —
// including when merged stop-the-world snapshots fire mid-run.
func TestPartitionedStreamingParityGolden(t *testing.T) {
	want := RunAll(ds, 1)
	cases := []struct {
		n, workers, snapshotEvery int
	}{
		{1, 1, 20_000},
		{2, 1, 0},
		{2, 4, 20_000},
		{4, 1, 20_000},
		{4, 4, 0},
		{8, 4, 20_000},
		{8, 1, 0},
	}
	for _, tc := range cases {
		parts, m := core.Split(ds, tc.n)
		srcs, errChans := partitionStreams(t, parts, m, 2048)
		snapshots := 0
		ms := &MultiSource{
			Sources:       srcs,
			Manifest:      m,
			SnapshotEvery: tc.snapshotEvery,
			OnSnapshot: func(records int, reports []*Report) {
				snapshots++
				if records <= 0 || len(reports) != len(canonicalOrder) {
					t.Errorf("n=%d: bad snapshot: %d records, %d reports", tc.n, records, len(reports))
				}
			},
		}
		got, err := NewFullEngine().Workers(tc.workers).RunSource(ms)
		if err != nil {
			t.Fatalf("n=%d workers=%d: %v", tc.n, tc.workers, err)
		}
		for _, errs := range errChans {
			drainErrs(t, errs)
		}
		compareReports(t, label("stream", tc.n, tc.workers), canonicalize(got), want)
		if tc.snapshotEvery > 0 && snapshots == 0 {
			t.Errorf("n=%d workers=%d: no merged snapshots fired", tc.n, tc.workers)
		}
	}
}

// TestEmptyPartitionMerge is the MergeCtx regression gate: zero-record
// partitions — empty intern tables, no shards fed — must remap as
// no-ops through the cross-partition fold, not panic, in any position.
func TestEmptyPartitionMerge(t *testing.T) {
	empty := func() *core.Dataset {
		return &core.Dataset{Scale: ds.Scale, WindowStart: ds.WindowStart, WindowEnd: ds.WindowEnd}
	}
	want := RunAll(ds, 1)
	for name, parts := range map[string][]*core.Dataset{
		"empty-first":  {empty(), ds},
		"empty-last":   {ds, empty()},
		"empty-middle": {empty(), ds, empty()},
		"all-empty":    {empty(), empty()},
	} {
		m := core.BuildManifest(parts, ds.Scale, 0, true)
		got, err := RunAllPartitioned(parts, m, 2)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if name == "all-empty" {
			if len(got) != len(canonicalOrder) {
				t.Fatalf("all-empty: %d reports, want %d", len(got), len(canonicalOrder))
			}
			continue
		}
		compareReports(t, name, got, want)
	}
}

// TestFoldTablesEmpty pins the low-level contract: nil and empty
// tables fold as no-ops with well-defined remaps.
func TestFoldTablesEmpty(t *testing.T) {
	gt, mc := foldTables(nil, nil)
	if gt == nil || len(mc.URIRemap) != 0 || len(mc.ValRemap) != 0 || len(mc.SrcRemap) != 0 {
		t.Fatalf("foldTables(nil, nil) = %+v, %+v", gt, mc)
	}
	src := newLabelTables()
	src.internURI("at://a")
	src.internVal("porn")
	src.internExtraSrc("did:plc:mystery")
	gt, mc = foldTables(nil, src)
	if len(gt.URIs) != 1 || mc.URIRemap[0] != 0 || mc.ValRemap[0] != 0 || mc.RemapSrc(-2) != -2 {
		t.Fatalf("fold into fresh tables broke id assignment: %+v", mc)
	}
	gt2, mc2 := foldTables(gt, newLabelTables())
	if gt2 != gt || len(mc2.URIRemap) != 0 {
		t.Fatal("empty source must fold as a no-op")
	}
}

// TestFederatedPartitionsMatchConcat checks the independent-dataset
// path: a corpus generated as n independent partitions on disjoint RNG
// sub-streams, evaluated through the rebasing two-level merge, must
// match the flat evaluation of the explicitly concatenated (and
// index-rebased) dataset byte for byte.
func TestFederatedPartitionsMatchConcat(t *testing.T) {
	parts, m := synth.GeneratePartitioned(synth.Config{Scale: 1000, Seed: 11}, 3)
	concat, err := core.Concat(parts, true)
	if err != nil {
		t.Fatal(err)
	}
	concat.Scale = m.Scale // partitions carry Scale·n locally
	want := RunAll(concat, 2)
	got, err := RunAllPartitioned(parts, m, 2)
	if err != nil {
		t.Fatal(err)
	}
	compareReports(t, "federated", got, want)
}

// TestEngineRunSources exercises the raw []Source promotion: explicit
// partition sources with hand-set base offsets, no manifest, must
// reproduce the flat evaluation (split views carry corpus-global
// indexes, so no rebasing applies).
func TestEngineRunSources(t *testing.T) {
	parts, m := core.Split(ds, 2)
	got, err := NewFullEngine().Workers(2).RunSources(
		NewDatasetSourceAt(parts[0], m.Partitions[0].Base),
		NewDatasetSourceAt(parts[1], m.Partitions[1].Base),
	)
	if err != nil {
		t.Fatal(err)
	}
	compareReports(t, "RunSources", canonicalize(got), RunAll(ds, 1))
}

// TestMultiSourceRebaseNoManifest exercises the manifest-free rebase
// switch: independent partition datasets evaluated with Rebase=true
// must match the flat evaluation of their rebased concatenation.
func TestMultiSourceRebaseNoManifest(t *testing.T) {
	parts, _ := synth.GeneratePartitioned(synth.Config{Scale: 2000, Seed: 3}, 2)
	concat, err := core.Concat(parts, true)
	if err != nil {
		t.Fatal(err)
	}
	ms := &MultiSource{
		Sources: []Source{NewDatasetSource(parts[0]), NewDatasetSource(parts[1])},
		Rebase:  true,
	}
	got, err := NewFullEngine().Workers(1).RunSource(ms)
	if err != nil {
		t.Fatal(err)
	}
	compareReports(t, "rebase-no-manifest", canonicalize(got), RunAll(concat, 1))
}

// TestMultiSourceLabelerConflict pins the enumeration safety check:
// partitions that disagree on labeler order must fail loudly, not
// silently misattribute labels.
func TestMultiSourceLabelerConflict(t *testing.T) {
	a := &core.Dataset{Labelers: []core.Labeler{{DID: "did:plc:a"}, {DID: "did:plc:b"}}}
	b := &core.Dataset{Labelers: []core.Labeler{{DID: "did:plc:b"}, {DID: "did:plc:a"}}}
	if _, err := RunAllPartitioned([]*core.Dataset{a, b}, nil, 1); err == nil {
		t.Fatal("conflicting labeler enumerations must error")
	}
}
