// Package netsim wires a complete Bluesky deployment on loopback: a
// PLC directory, a DNS server for handle proofs, a WHOIS server, one
// or more PDSes, a Relay with its Firehose, an AppView, labeler
// services, and feed generator engines — every component of §2,
// reachable over real sockets, so the measurement pipeline can crawl
// it exactly the way the paper crawled the production network.
package netsim

import (
	"fmt"
	"strings"
	"time"

	"blueskies/internal/appview"
	"blueskies/internal/dnssim"
	"blueskies/internal/feedgen"
	"blueskies/internal/identity"
	"blueskies/internal/labeler"
	"blueskies/internal/pds"
	"blueskies/internal/plc"
	"blueskies/internal/relay"
	"blueskies/internal/whois"
)

// Network is one running deployment.
type Network struct {
	Clock func() time.Time

	PLCDir    *plc.Directory
	PLC       *plc.Server
	Zone      *dnssim.Zone
	DNS       *dnssim.Server
	WhoisDB   *whois.DB
	Whois     *whois.Server
	PDSes     []*pds.Server
	Relay     *relay.Relay
	AppView   *appview.View
	Labelers  []*labeler.Service
	FeedHosts []*feedgen.Engine
}

// Config sizes the deployment.
type Config struct {
	// PDSCount is the number of personal data servers (≥1).
	PDSCount int
	// Clock supplies timestamps; time.Now if nil.
	Clock func() time.Time
}

// Start boots a network.
func Start(cfg Config) (*Network, error) {
	if cfg.PDSCount < 1 {
		cfg.PDSCount = 1
	}
	clock := cfg.Clock
	if clock == nil {
		clock = time.Now
	}
	n := &Network{Clock: clock}

	n.PLCDir = plc.NewDirectory()
	var err error
	if n.PLC, err = plc.NewServer(n.PLCDir); err != nil {
		return nil, err
	}
	n.Zone = dnssim.NewZone()
	if n.DNS, err = dnssim.NewServer(n.Zone); err != nil {
		n.Close()
		return nil, err
	}
	n.WhoisDB = whois.NewDB()
	if n.Whois, err = whois.NewServer(n.WhoisDB); err != nil {
		n.Close()
		return nil, err
	}
	for i := 0; i < cfg.PDSCount; i++ {
		p := pds.New(pds.Config{
			Hostname: fmt.Sprintf("pds%d.sim", i),
			PLCURL:   n.PLC.URL(),
			Clock:    clock,
		})
		if err := p.Start(); err != nil {
			n.Close()
			return nil, err
		}
		n.PDSes = append(n.PDSes, p)
	}
	n.Relay = relay.New(relay.Config{Clock: clock})
	if err := n.Relay.Start(); err != nil {
		n.Close()
		return nil, err
	}
	for _, p := range n.PDSes {
		if err := n.Relay.AddPDS(p.URL()); err != nil {
			n.Close()
			return nil, err
		}
	}
	n.AppView = appview.New()
	if err := n.AppView.Start(); err != nil {
		n.Close()
		return nil, err
	}
	if err := n.AppView.ConsumeFirehose(n.Relay.URL(), 0); err != nil {
		n.Close()
		return nil, err
	}
	return n, nil
}

// Close shuts everything down.
func (n *Network) Close() {
	for _, e := range n.FeedHosts {
		_ = e.Close()
	}
	for _, l := range n.Labelers {
		_ = l.Close()
	}
	if n.AppView != nil {
		_ = n.AppView.Close()
	}
	if n.Relay != nil {
		_ = n.Relay.Close()
	}
	for _, p := range n.PDSes {
		_ = p.Close()
	}
	if n.Whois != nil {
		_ = n.Whois.Close()
	}
	if n.DNS != nil {
		_ = n.DNS.Close()
	}
	if n.PLC != nil {
		_ = n.PLC.Close()
	}
}

// CreateUser provisions an account on the i-th PDS and installs its
// DNS ownership proof when the handle is self-managed.
func (n *Network) CreateUser(pdsIdx int, handle identity.Handle) (*pds.Account, error) {
	acct, err := n.PDSes[pdsIdx%len(n.PDSes)].CreateAccount(handle)
	if err != nil {
		return nil, err
	}
	if !strings.HasSuffix(string(handle), ".bsky.social") {
		n.Zone.SetTXT(handle.TXTRecordName(), "did="+string(acct.DID))
	}
	return acct, nil
}

// AddLabeler provisions a labeler account, publishes its service
// record, starts its label stream, registers the endpoint in the PLC
// directory, and subscribes the AppView to it.
func (n *Network) AddLabeler(handle identity.Handle, values []string) (*labeler.Service, *pds.Account, error) {
	acct, err := n.CreateUser(0, handle)
	if err != nil {
		return nil, nil, err
	}
	svc := labeler.New(labeler.Config{DID: acct.DID, Values: values, Clock: n.Clock})
	if err := svc.Start(); err != nil {
		return nil, nil, err
	}
	vals := make([]lexLabelDef, len(values))
	for i, v := range values {
		vals[i] = lexLabelDef{Value: v, Severity: "inform", Blurs: "content"}
	}
	if err := publishLabelerRecord(n.PDSes[0], acct, vals, n.Clock()); err != nil {
		svc.Close()
		return nil, nil, err
	}
	n.Labelers = append(n.Labelers, svc)
	if err := n.AppView.ConsumeLabeler(svc.URL()); err != nil {
		return nil, nil, err
	}
	return svc, acct, nil
}

// AddFeedHost starts a feed generator engine for the given FGaaS
// platform (nil platform = self-hosted) and wires it into the AppView
// under a did:web service identity.
func (n *Network) AddFeedHost(name string, platform *feedgen.Platform) (*feedgen.Engine, string, error) {
	engine := feedgen.NewEngine(feedgen.EngineConfig{Name: name, Platform: platform, Clock: n.Clock})
	if err := engine.Start(); err != nil {
		return nil, "", err
	}
	serviceDID := "did:web:" + strings.ToLower(name) + ".sim"
	n.AppView.RegisterFeedServiceURL(serviceDID, engine.URL())
	n.FeedHosts = append(n.FeedHosts, engine)
	return engine, serviceDID, nil
}

// PublishFeed declares a feed generator record in the creator's repo
// and registers the feed on the engine.
func (n *Network) PublishFeed(acct *pds.Account, engine *feedgen.Engine, serviceDID, rkey string, cfg feedgen.Config, displayName, description string) (string, error) {
	uri := "at://" + string(acct.DID) + "/app.bsky.feed.generator/" + rkey
	cfg.URI = uri
	cfg.DisplayName = displayName
	cfg.Description = description
	if err := engine.AddFeed(cfg); err != nil {
		return "", err
	}
	rec := map[string]any{
		"$type":       "app.bsky.feed.generator",
		"did":         serviceDID,
		"displayName": displayName,
		"description": description,
		"createdAt":   n.Clock().UTC().Format(time.RFC3339),
	}
	if _, err := n.PDSes[0].CreateRecord(acct.DID, "app.bsky.feed.generator", rkey, rec); err != nil {
		return "", err
	}
	return uri, nil
}

// RegisterDomain records a domain registration in the WHOIS database.
func (n *Network) RegisterDomain(domain string, reg whois.Registrar, cctld bool) {
	n.WhoisDB.Put(whois.Registration{
		Domain: domain, Registrar: reg, CCTLDPolicy: cctld, Created: n.Clock(),
	})
}

type lexLabelDef struct {
	Value    string `json:"identifier"`
	Severity string `json:"severity"`
	Blurs    string `json:"blurs"`
}

func publishLabelerRecord(p *pds.Server, acct *pds.Account, defs []lexLabelDef, now time.Time) error {
	vals := make([]any, len(defs))
	for i, d := range defs {
		vals[i] = d.Value
	}
	rec := map[string]any{
		"$type":     "app.bsky.labeler.service",
		"policies":  map[string]any{"labelValues": vals},
		"createdAt": now.UTC().Format(time.RFC3339),
	}
	_, err := p.CreateRecord(acct.DID, "app.bsky.labeler.service", "self", rec)
	return err
}

// WaitForAppView polls until the AppView has indexed at least posts
// posts, or fails after timeout.
func (n *Network) WaitForAppView(posts int, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if n.AppView.PostCount() >= posts {
			return nil
		}
		time.Sleep(5 * time.Millisecond)
	}
	return fmt.Errorf("netsim: appview has %d posts after %v", n.AppView.PostCount(), timeout)
}
