package netsim

import (
	"context"
	"testing"
	"time"

	"blueskies/internal/core"
	"blueskies/internal/feedgen"
	"blueskies/internal/identity"
	"blueskies/internal/lexicon"
	"blueskies/internal/pds"
	"blueskies/internal/whois"
)

// startNet boots a 2-PDS network with users, a labeler, and a feed.
func startNet(t *testing.T) (*Network, []*coreUser) {
	t.Helper()
	net, err := Start(Config{PDSCount: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(net.Close)

	users := []*coreUser{
		{handle: "alice.bsky.social"},
		{handle: "bob.bsky.social"},
		{handle: "carol.example.com"}, // self-managed handle
	}
	for i, u := range users {
		acct, err := net.CreateUser(i, identity.Handle(u.handle))
		if err != nil {
			t.Fatal(err)
		}
		u.acct = acct
		u.pds = net.PDSes[i%len(net.PDSes)]
	}
	return net, users
}

type coreUser struct {
	handle string
	acct   *pds.Account
	pds    *pds.Server
}

func TestFullNetworkEndToEnd(t *testing.T) {
	net, users := startNet(t)
	alice, bob, carol := users[0], users[1], users[2]

	// Posts, likes, follows across both PDSes.
	uri, err := alice.pds.CreateRecord(alice.acct.DID, lexicon.Post, "3kaaaaaaaaaa2",
		lexicon.NewPost("hello decentralized world", []string{"en"}, time.Now()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bob.pds.CreateRecord(bob.acct.DID, lexicon.Like, "3kbbbbbbbbbb2",
		lexicon.NewLike(uri.String(), time.Now())); err != nil {
		t.Fatal(err)
	}
	if _, err := carol.pds.CreateRecord(carol.acct.DID, lexicon.Follow, "3kcccccccccc2",
		lexicon.NewFollow(string(alice.acct.DID), time.Now())); err != nil {
		t.Fatal(err)
	}

	// Labeler labels alice's post.
	svc, _, err := net.AddLabeler("labeler.bsky.social", []string{"test-label"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Apply(uri.String(), "test-label"); err != nil {
		t.Fatal(err)
	}

	// Feed generator on Skyfeed hosting a whole-network feed.
	engine, serviceDID, err := net.AddFeedHost("Skyfeed", feedgen.PlatformByName("Skyfeed"))
	if err != nil {
		t.Fatal(err)
	}
	feedURI, err := net.PublishFeed(alice.acct, engine, serviceDID, "everything",
		feedgen.Config{WholeNetwork: true}, "Everything", "all the posts")
	if err != nil {
		t.Fatal(err)
	}
	engine.Ingest(feedgen.PostView{URI: uri.String(), DID: string(alice.acct.DID),
		Text: "hello decentralized world", CreatedAt: time.Now()})

	// WHOIS registration for carol's domain.
	net.RegisterDomain("example.com", whois.Registrar{IANAID: 1068, Name: "NameCheap, Inc."}, false)

	// Wait for propagation through relay → appview.
	if err := net.WaitForAppView(1, 3*time.Second); err != nil {
		t.Fatal(err)
	}

	// --- Run the paper's pipeline over the live network. ---
	col := &core.Collector{
		RelayURL:    net.Relay.URL(),
		PLCURL:      net.PLC.URL(),
		AppViewURL:  net.AppView.URL(),
		DNSAddr:     net.DNS.Addr(),
		WhoisAddr:   net.Whois.Addr(),
		LabelerURLs: []string{svc.URL()},
	}
	ctx := context.Background()

	// Identifier dataset: all four accounts (3 users + labeler).
	ids, err := col.ListIdentifiers(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 4 {
		t.Fatalf("identifiers = %d, want 4", len(ids))
	}

	// DID document dataset.
	doc, err := col.FetchDIDDocument(carol.acct.DID)
	if err != nil {
		t.Fatal(err)
	}
	if doc.Handle() != "carol.example.com" {
		t.Fatalf("carol's handle = %s", doc.Handle())
	}

	// Repository dataset via relay-mirrored CAR.
	r, err := col.FetchRepo(ctx, alice.acct.DID)
	if err != nil {
		t.Fatal(err)
	}
	if rec, err := r.Get(lexicon.Post, "3kaaaaaaaaaa2"); err != nil ||
		lexicon.PostText(rec.Value) != "hello decentralized world" {
		t.Fatalf("repo fetch: %v %v", rec, err)
	}

	// Labeling services dataset: full-history stream.
	labels, err := col.CollectLabels(1, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(labels) != 1 || labels[0].Val != "test-label" {
		t.Fatalf("labels = %+v", labels)
	}

	// Feed generator dataset.
	view, err := col.CrawlFeedGenerator(ctx, feedURI)
	if err != nil {
		t.Fatal(err)
	}
	if !view.IsOnline || !view.IsValid {
		t.Fatalf("feed view = %+v", view)
	}
	if len(view.PostURIs) != 1 || view.PostURIs[0] != uri.String() {
		t.Fatalf("feed posts = %v", view.PostURIs)
	}

	// Active handle verification (DNS TXT).
	proof, err := col.VerifyHandle("carol.example.com", carol.acct.DID, "")
	if err != nil {
		t.Fatal(err)
	}
	if proof != core.ProofDNSTXT {
		t.Fatalf("proof = %s", proof)
	}

	// WHOIS scan.
	recs, err := col.ScanWHOIS([]string{"example.com"})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].IANAID != 1068 {
		t.Fatalf("whois = %+v", recs)
	}

	// Full snapshot.
	ds, err := col.Snapshot(ctx, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Users) != 4 || len(ds.Posts) != 1 || len(ds.Labels) != 1 {
		t.Fatalf("snapshot: users=%d posts=%d labels=%d",
			len(ds.Users), len(ds.Posts), len(ds.Labels))
	}
}

func TestFirehoseEventCounting(t *testing.T) {
	net, users := startNet(t)
	alice := users[0]
	col := &core.Collector{RelayURL: net.Relay.URL()}

	done := make(chan core.EventCounts, 1)
	go func() {
		// 3 identity events (backfill) + 1 commit + 1 handle.
		counts, _ := col.CollectFirehose(5, 3*time.Second)
		done <- counts
	}()
	time.Sleep(50 * time.Millisecond)
	if _, err := alice.pds.CreateRecord(alice.acct.DID, lexicon.Post, "3kddddddddddd",
		lexicon.NewPost("counted", nil, time.Now())); err != nil {
		t.Fatal(err)
	}
	if err := alice.pds.UpdateHandle(alice.acct.DID, "alice2.bsky.social"); err != nil {
		t.Fatal(err)
	}
	counts := <-done
	if counts.Commits < 1 || counts.Identity < 3 || counts.Handle < 1 {
		t.Fatalf("counts = %+v", counts)
	}
}

func TestHandleMigrationAcrossPDSes(t *testing.T) {
	net, users := startNet(t)
	alice := users[0]
	if _, err := alice.pds.CreateRecord(alice.acct.DID, lexicon.Post, "3kmmmmmmmmmmm",
		lexicon.NewPost("pre-move", nil, time.Now())); err != nil {
		t.Fatal(err)
	}
	carBytes, err := alice.pds.ExportCAR(alice.acct.DID)
	if err != nil {
		t.Fatal(err)
	}
	dst := net.PDSes[1]
	moved, err := dst.ImportAccount(alice.acct.DID, alice.acct.Handle, alice.acct.Key, carBytes)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := moved.Repo.Get(lexicon.Post, "3kmmmmmmmmmmm")
	if err != nil || lexicon.PostText(rec.Value) != "pre-move" {
		t.Fatalf("migration lost data: %v %v", rec, err)
	}
}
