package client

import (
	"context"
	"testing"
	"time"

	"blueskies/internal/events"
	"blueskies/internal/feedgen"
	"blueskies/internal/labeler"
	"blueskies/internal/lexicon"
	"blueskies/internal/netsim"
)

func TestTimelineWithModeration(t *testing.T) {
	net, err := netsim.Start(netsim.Config{PDSCount: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()

	author, err := net.CreateUser(0, "author.bsky.social")
	if err != nil {
		t.Fatal(err)
	}
	reader, err := net.CreateUser(0, "reader.bsky.social")
	if err != nil {
		t.Fatal(err)
	}
	official, _, err := net.AddLabeler("mod.bsky.social", []string{"porn", "spam"})
	if err != nil {
		t.Fatal(err)
	}
	net.AppView.SetOfficialLabeler(string(official.DID()))

	engine, serviceDID, err := net.AddFeedHost("self", nil)
	if err != nil {
		t.Fatal(err)
	}
	feedURI, err := net.PublishFeed(author, engine, serviceDID, "all",
		feedgen.Config{WholeNetwork: true}, "All", "everything")
	if err != nil {
		t.Fatal(err)
	}

	// The reader's client, subscribed to the official labeler with
	// hide-on-porn (default).
	c := New(reader.DID, net.PDSes[0].URL(), net.AppView.URL(),
		labeler.DefaultPreferences(official.DID()), official.DID())
	c.Preferences.Adult = true

	// Author posts twice via a client of their own.
	ac := New(author.DID, net.PDSes[0].URL(), net.AppView.URL(),
		labeler.DefaultPreferences(official.DID()), official.DID())
	ctx := context.Background()
	cleanURI, err := ac.Post(ctx, lexicon.NewPost("a perfectly fine post", []string{"en"}, time.Now()))
	if err != nil {
		t.Fatal(err)
	}
	nsfwURI, err := ac.Post(ctx, lexicon.NewPost("something explicit", []string{"en"}, time.Now()))
	if err != nil {
		t.Fatal(err)
	}
	for _, uri := range []string{cleanURI, nsfwURI} {
		var text string
		if uri == cleanURI {
			text = "a perfectly fine post"
		} else {
			text = "something explicit"
		}
		engine.Ingest(feedgen.PostView{URI: uri, DID: string(author.DID), Text: text, CreatedAt: time.Now()})
	}
	if _, err := official.Apply(nsfwURI, "porn"); err != nil {
		t.Fatal(err)
	}
	if err := net.WaitForAppView(2, 3*time.Second); err != nil {
		t.Fatal(err)
	}
	// Wait for the label to reach the AppView.
	deadline := time.Now().Add(2 * time.Second)
	for net.AppView.LabelCount() < 1 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}

	items, err := c.Timeline(ctx, feedURI, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 2 {
		t.Fatalf("timeline has %d items", len(items))
	}
	byURI := map[string]TimelineItem{}
	for _, it := range items {
		byURI[it.URI] = it
	}
	if got := byURI[cleanURI].Visibility; got != labeler.Ignore {
		t.Fatalf("clean post visibility = %q", got)
	}
	if got := byURI[nsfwURI].Visibility; got != labeler.Hide {
		t.Fatalf("labeled post visibility = %q (labels: %+v)", got, byURI[nsfwURI].Labels)
	}

	// Preferences persist privately on the PDS.
	if err := c.SavePreferences(ctx); err != nil {
		t.Fatal(err)
	}
}

func TestActiveOnlyNegationResolution(t *testing.T) {
	uri := "at://did:plc:a/app.bsky.feed.post/1"
	labels := []events.Label{
		{Src: "did:plc:l", URI: uri, Val: "spam"},
		{Src: "did:plc:l", URI: uri, Val: "spam", Neg: true},
		{Src: "did:plc:l", URI: uri, Val: "porn"},
	}
	active := activeOnly(labels)
	if len(active) != 1 || active[0].Val != "porn" {
		t.Fatalf("active = %+v", active)
	}
	// Re-application after negation is active again.
	labels = append(labels, events.Label{Src: "did:plc:l", URI: uri, Val: "spam"})
	active = activeOnly(labels)
	if len(active) != 2 {
		t.Fatalf("active after re-apply = %+v", active)
	}
}
