// Package client implements the final §2 component: the client
// application. A client talks to the user's PDS (for writes and
// private preferences) and to an AppView (for hydrated feeds), builds
// the timeline the user sees, and applies the user's moderation
// preferences — deciding per post whether to show it, show it behind a
// warning, or hide it entirely.
//
// Bluesky does not mandate a single client implementation (§2); this
// one is deliberately minimal but exercises the full read path the
// paper describes: feed selection → skeleton → hydration → label join
// → preference evaluation.
package client

import (
	"context"
	"fmt"
	"net/url"
	"strconv"

	"blueskies/internal/events"
	"blueskies/internal/identity"
	"blueskies/internal/labeler"
	"blueskies/internal/xrpc"
)

// Client is one user's client session.
type Client struct {
	// DID identifies the logged-in user.
	DID identity.DID
	// PDS is the user's personal data server client.
	PDS *xrpc.Client
	// AppView serves feeds and labels.
	AppView *xrpc.Client
	// Preferences is the user's private moderation policy.
	Preferences labeler.Preferences
	// OfficialLabeler is the mandatory platform labeler.
	OfficialLabeler identity.DID
}

// New creates a client session.
func New(did identity.DID, pdsURL, appviewURL string, prefs labeler.Preferences, official identity.DID) *Client {
	return &Client{
		DID:             did,
		PDS:             xrpc.NewClient(pdsURL),
		AppView:         xrpc.NewClient(appviewURL),
		Preferences:     prefs,
		OfficialLabeler: official,
	}
}

// TimelineItem is one rendered post with its moderation decision.
type TimelineItem struct {
	URI        string
	Author     string
	Text       string
	LikeCount  int
	Labels     []events.Label
	Visibility labeler.Visibility
}

// Timeline fetches a feed through the AppView, joins labels, and
// applies the user's preferences. Hidden posts are returned with
// Visibility set (the UI decides whether to drop or collapse them).
func (c *Client) Timeline(ctx context.Context, feedURI string, limit int) ([]TimelineItem, error) {
	if limit <= 0 {
		limit = 50
	}
	var feed struct {
		Feed []struct {
			Post map[string]any `json:"post"`
		} `json:"feed"`
	}
	params := url.Values{
		"feed":      {feedURI},
		"limit":     {strconv.Itoa(limit)},
		"requester": {string(c.DID)},
	}
	if err := c.AppView.Query(ctx, "app.bsky.feed.getFeed", params, &feed); err != nil {
		return nil, fmt.Errorf("client: fetch feed: %w", err)
	}
	items := make([]TimelineItem, 0, len(feed.Feed))
	for _, f := range feed.Feed {
		item := TimelineItem{}
		if s, ok := f.Post["uri"].(string); ok {
			item.URI = s
		}
		if s, ok := f.Post["author"].(string); ok {
			item.Author = s
		}
		if s, ok := f.Post["text"].(string); ok {
			item.Text = s
		}
		if n, ok := f.Post["likeCount"].(float64); ok {
			item.LikeCount = int(n)
		}
		labels, err := c.labelsOn(ctx, item.URI, item.Author)
		if err != nil {
			return nil, err
		}
		item.Labels = labels
		item.Visibility = c.Preferences.Decide(activeOnly(labels), c.OfficialLabeler)
		items = append(items, item)
	}
	return items, nil
}

// labelsOn fetches the labels applied to a post and to its author.
func (c *Client) labelsOn(ctx context.Context, postURI, authorDID string) ([]events.Label, error) {
	patterns := url.Values{}
	if postURI != "" {
		patterns.Add("uriPatterns", postURI)
	}
	if authorDID != "" {
		patterns.Add("uriPatterns", authorDID)
	}
	if len(patterns) == 0 {
		return nil, nil
	}
	var out struct {
		Labels []events.Label `json:"labels"`
	}
	if err := c.AppView.Query(ctx, "com.atproto.label.queryLabels", patterns, &out); err != nil {
		return nil, fmt.Errorf("client: query labels: %w", err)
	}
	return out.Labels, nil
}

// activeOnly resolves negations: a (src,uri,val) application followed
// by its negation cancels out; labels re-applied after a negation are
// active again.
func activeOnly(labels []events.Label) []events.Label {
	type key struct{ src, uri, val string }
	last := map[key]events.Label{}
	order := []key{}
	for _, l := range labels {
		k := key{l.Src, l.URI, l.Val}
		if _, seen := last[k]; !seen {
			order = append(order, k)
		}
		last[k] = l
	}
	var out []events.Label
	for _, k := range order {
		if l := last[k]; !l.Neg {
			out = append(out, l)
		}
	}
	return out
}

// Post publishes a post record through the user's PDS.
func (c *Client) Post(ctx context.Context, record map[string]any) (string, error) {
	var out struct {
		URI string `json:"uri"`
	}
	err := c.PDS.Procedure(ctx, "com.atproto.repo.createRecord", nil, map[string]any{
		"repo":       string(c.DID),
		"collection": "app.bsky.feed.post",
		"record":     record,
	}, &out)
	if err != nil {
		return "", fmt.Errorf("client: post: %w", err)
	}
	return out.URI, nil
}

// SavePreferences persists the moderation policy privately on the PDS.
func (c *Client) SavePreferences(ctx context.Context) error {
	reactions := map[string]any{}
	for val, vis := range c.Preferences.Reactions {
		reactions[val] = string(vis)
	}
	subs := []any{}
	for did, on := range c.Preferences.Subscriptions {
		if on {
			subs = append(subs, did)
		}
	}
	return c.PDS.Procedure(ctx, "app.bsky.actor.putPreferences", nil, map[string]any{
		"auth": "tok:" + string(c.DID),
		"preferences": map[string]any{
			"labelers":  subs,
			"reactions": reactions,
			"adult":     c.Preferences.Adult,
		},
	}, nil)
}
