package dnssim

import (
	"fmt"
	"net"
	"strings"
	"sync"
	"time"
)

// Zone is a thread-safe in-memory record store keyed by
// (lowercased FQDN, type).
type Zone struct {
	mu      sync.RWMutex
	records map[string][]RR
}

// NewZone creates an empty zone.
func NewZone() *Zone {
	return &Zone{records: make(map[string][]RR)}
}

func zoneKey(name string, typ Type) string {
	return strings.ToLower(strings.TrimSuffix(name, ".")) + "|" + fmt.Sprint(typ)
}

// SetTXT installs a TXT record, replacing previous values.
func (z *Zone) SetTXT(name, value string) {
	z.set(RR{Name: strings.ToLower(name), Type: TypeTXT, Class: ClassIN, TTL: 300, Data: value})
}

// SetA installs an A record, replacing previous values.
func (z *Zone) SetA(name, addr string) {
	z.set(RR{Name: strings.ToLower(name), Type: TypeA, Class: ClassIN, TTL: 300, Data: addr})
}

func (z *Zone) set(rr RR) {
	z.mu.Lock()
	defer z.mu.Unlock()
	z.records[zoneKey(rr.Name, rr.Type)] = []RR{rr}
}

// Delete removes all records of the given name and type.
func (z *Zone) Delete(name string, typ Type) {
	z.mu.Lock()
	defer z.mu.Unlock()
	delete(z.records, zoneKey(name, typ))
}

// Lookup returns the records for a name and type.
func (z *Zone) Lookup(name string, typ Type) []RR {
	z.mu.RLock()
	defer z.mu.RUnlock()
	return z.records[zoneKey(name, typ)]
}

// Len reports the number of record sets in the zone.
func (z *Zone) Len() int {
	z.mu.RLock()
	defer z.mu.RUnlock()
	return len(z.records)
}

// Server is an authoritative UDP DNS server over a Zone.
type Server struct {
	zone *Zone
	conn *net.UDPConn
	done chan struct{}
}

// NewServer starts a server on a free loopback UDP port.
func NewServer(zone *Zone) (*Server, error) {
	conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		return nil, err
	}
	s := &Server{zone: zone, conn: conn, done: make(chan struct{})}
	go s.serve()
	return s, nil
}

// Addr returns the server's UDP address.
func (s *Server) Addr() string { return s.conn.LocalAddr().String() }

// Close stops the server.
func (s *Server) Close() error {
	close(s.done)
	return s.conn.Close()
}

func (s *Server) serve() {
	buf := make([]byte, 4096)
	for {
		n, addr, err := s.conn.ReadFromUDP(buf)
		if err != nil {
			select {
			case <-s.done:
				return
			default:
				continue
			}
		}
		resp := s.handle(buf[:n])
		if resp != nil {
			_, _ = s.conn.WriteToUDP(resp, addr)
		}
	}
}

func (s *Server) handle(query []byte) []byte {
	req, err := Unpack(query)
	if err != nil || req.Response || len(req.Questions) == 0 {
		return nil
	}
	resp := &Message{ID: req.ID, Response: true, Questions: req.Questions}
	for _, q := range req.Questions {
		if q.Class != ClassIN {
			resp.RCode = RCodeNotImpl
			continue
		}
		answers := s.zone.Lookup(q.Name, q.Type)
		if len(answers) == 0 {
			resp.RCode = RCodeNXDomain
			continue
		}
		resp.RCode = RCodeSuccess
		resp.Answers = append(resp.Answers, answers...)
	}
	out, err := resp.Pack()
	if err != nil {
		return nil
	}
	return out
}

// Resolver queries a DNS server over UDP.
type Resolver struct {
	// ServerAddr is the "host:port" of the DNS server.
	ServerAddr string
	// Timeout bounds each query; defaults to 2 s.
	Timeout time.Duration

	mu     sync.Mutex
	nextID uint16
}

// NewResolver creates a resolver pointed at addr.
func NewResolver(addr string) *Resolver {
	return &Resolver{ServerAddr: addr, Timeout: 2 * time.Second}
}

// Query resolves name/type and returns the answer records.
// NXDOMAIN and empty answers return ErrNotFound.
func (r *Resolver) Query(name string, typ Type) ([]RR, error) {
	r.mu.Lock()
	r.nextID++
	id := r.nextID
	r.mu.Unlock()

	req := &Message{ID: id, Questions: []Question{{Name: name, Type: typ, Class: ClassIN}}}
	packed, err := req.Pack()
	if err != nil {
		return nil, err
	}
	timeout := r.Timeout
	if timeout == 0 {
		timeout = 2 * time.Second
	}
	conn, err := net.Dial("udp", r.ServerAddr)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	if err := conn.SetDeadline(time.Now().Add(timeout)); err != nil {
		return nil, err
	}
	if _, err := conn.Write(packed); err != nil {
		return nil, err
	}
	buf := make([]byte, 4096)
	n, err := conn.Read(buf)
	if err != nil {
		return nil, err
	}
	resp, err := Unpack(buf[:n])
	if err != nil {
		return nil, err
	}
	if resp.ID != id {
		return nil, fmt.Errorf("dnssim: response ID mismatch (%d vs %d)", resp.ID, id)
	}
	if resp.RCode == RCodeNXDomain || len(resp.Answers) == 0 {
		return nil, ErrNotFound
	}
	if resp.RCode != RCodeSuccess {
		return nil, fmt.Errorf("dnssim: rcode %d", resp.RCode)
	}
	return resp.Answers, nil
}

// LookupTXT resolves the TXT values at name.
func (r *Resolver) LookupTXT(name string) ([]string, error) {
	answers, err := r.Query(name, TypeTXT)
	if err != nil {
		return nil, err
	}
	out := make([]string, 0, len(answers))
	for _, a := range answers {
		if a.Type == TypeTXT {
			out = append(out, a.Data)
		}
	}
	return out, nil
}

// ErrNotFound reports a missing name (NXDOMAIN or empty answer).
var ErrNotFound = fmt.Errorf("dnssim: name not found")
