package dnssim

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func TestMessagePackUnpackRoundTrip(t *testing.T) {
	m := &Message{
		ID:       1234,
		Response: true,
		RCode:    RCodeSuccess,
		Questions: []Question{
			{Name: "_atproto.alice.example.com", Type: TypeTXT, Class: ClassIN},
		},
		Answers: []RR{
			{Name: "_atproto.alice.example.com", Type: TypeTXT, Class: ClassIN, TTL: 300,
				Data: "did=did:plc:ewvi7nxzyoun6zhxrhs64oiz"},
			{Name: "alice.example.com", Type: TypeA, Class: ClassIN, TTL: 60, Data: "127.0.0.1"},
		},
	}
	packed, err := m.Pack()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unpack(packed)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != m.ID || !got.Response || got.RCode != m.RCode {
		t.Fatalf("header mismatch: %+v", got)
	}
	if len(got.Questions) != 1 || got.Questions[0].Name != m.Questions[0].Name {
		t.Fatalf("questions = %+v", got.Questions)
	}
	if len(got.Answers) != 2 {
		t.Fatalf("answers = %+v", got.Answers)
	}
	if got.Answers[0].Data != m.Answers[0].Data {
		t.Fatalf("TXT data = %q", got.Answers[0].Data)
	}
	if got.Answers[1].Data != "127.0.0.1" {
		t.Fatalf("A data = %q", got.Answers[1].Data)
	}
}

func TestLongTXTRecordSplitting(t *testing.T) {
	long := strings.Repeat("x", 600)
	m := &Message{ID: 1, Response: true, Answers: []RR{
		{Name: "t.example.com", Type: TypeTXT, Class: ClassIN, Data: long},
	}}
	packed, err := m.Pack()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unpack(packed)
	if err != nil {
		t.Fatal(err)
	}
	if got.Answers[0].Data != long {
		t.Fatalf("long TXT round trip failed: %d bytes", len(got.Answers[0].Data))
	}
}

func TestPackRejectsBadNames(t *testing.T) {
	bad := []string{
		strings.Repeat("a", 64) + ".com", // label too long
		"a..b",                           // empty label
	}
	for _, name := range bad {
		m := &Message{Questions: []Question{{Name: name, Type: TypeA, Class: ClassIN}}}
		if _, err := m.Pack(); err == nil {
			t.Errorf("Pack(%q): expected error", name)
		}
	}
}

func TestUnpackTruncated(t *testing.T) {
	m := &Message{ID: 7, Questions: []Question{{Name: "x.com", Type: TypeA, Class: ClassIN}}}
	packed, _ := m.Pack()
	for i := 1; i < len(packed); i++ {
		if _, err := Unpack(packed[:i]); err == nil {
			t.Fatalf("Unpack of %d/%d byte prefix succeeded", i, len(packed))
		}
	}
}

func TestServerResolverEndToEnd(t *testing.T) {
	zone := NewZone()
	zone.SetTXT("_atproto.alice.example.com", "did=did:plc:abcdefghijklmnopqrstuvwx")
	zone.SetA("pds.example.com", "127.0.0.1")
	srv, err := NewServer(zone)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	res := NewResolver(srv.Addr())

	vals, err := res.LookupTXT("_atproto.alice.example.com")
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 1 || vals[0] != "did=did:plc:abcdefghijklmnopqrstuvwx" {
		t.Fatalf("TXT = %v", vals)
	}

	// Case-insensitive lookup.
	if _, err := res.LookupTXT("_ATPROTO.Alice.Example.COM"); err != nil {
		t.Fatalf("case-insensitive lookup: %v", err)
	}

	answers, err := res.Query("pds.example.com", TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if answers[0].Data != "127.0.0.1" {
		t.Fatalf("A = %v", answers)
	}
}

func TestResolverNXDomain(t *testing.T) {
	zone := NewZone()
	srv, err := NewServer(zone)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	res := NewResolver(srv.Addr())
	if _, err := res.LookupTXT("_atproto.ghost.example.com"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("want ErrNotFound, got %v", err)
	}
}

func TestZoneDelete(t *testing.T) {
	zone := NewZone()
	zone.SetTXT("a.example.com", "v")
	if zone.Len() != 1 {
		t.Fatal("zone should have 1 record set")
	}
	zone.Delete("a.example.com", TypeTXT)
	if got := zone.Lookup("a.example.com", TypeTXT); got != nil {
		t.Fatalf("lookup after delete = %v", got)
	}
}

func TestZoneReplaceSemantics(t *testing.T) {
	zone := NewZone()
	zone.SetTXT("h.example.com", "old")
	zone.SetTXT("h.example.com", "new")
	got := zone.Lookup("h.example.com", TypeTXT)
	if len(got) != 1 || got[0].Data != "new" {
		t.Fatalf("replace failed: %v", got)
	}
}

func TestQuickTXTRoundTrip(t *testing.T) {
	f := func(raw []byte) bool {
		// TXT payloads are arbitrary bytes; model as string.
		val := string(raw)
		if len(val) > 2000 {
			val = val[:2000]
		}
		m := &Message{ID: 9, Response: true, Answers: []RR{
			{Name: "q.example.com", Type: TypeTXT, Class: ClassIN, Data: val},
		}}
		packed, err := m.Pack()
		if err != nil {
			return false
		}
		got, err := Unpack(packed)
		if err != nil {
			return false
		}
		return got.Answers[0].Data == val
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
