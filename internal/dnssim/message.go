// Package dnssim implements the subset of DNS (RFC 1035) needed to
// reproduce the paper's active handle-ownership measurements (§5):
// a wire-format message codec, an authoritative UDP server serving
// TXT and A records, and a resolver client.
//
// Bluesky proves handle ownership with a TXT record at
// _atproto.<handle> containing "did=<did>"; the crawler resolves these
// records for every non-bsky.social handle.
package dnssim

import (
	"errors"
	"fmt"
	"strings"
)

// Type is a DNS record/query type.
type Type uint16

// Record types supported by the simulator.
const (
	TypeA   Type = 1
	TypeTXT Type = 16
)

// RCode is a DNS response code.
type RCode uint16

// Response codes used by the simulator.
const (
	RCodeSuccess  RCode = 0
	RCodeFormat   RCode = 1
	RCodeServFail RCode = 2
	RCodeNXDomain RCode = 3
	RCodeNotImpl  RCode = 4
)

// ClassIN is the Internet class; the only class supported.
const ClassIN uint16 = 1

// Question is one DNS question.
type Question struct {
	Name  string
	Type  Type
	Class uint16
}

// RR is one resource record.
type RR struct {
	Name  string
	Type  Type
	Class uint16
	TTL   uint32
	// Data holds the record payload: dotted-quad text for A records,
	// the text value for TXT records.
	Data string
}

// Message is a DNS message (header plus sections; authority and
// additional sections are not modeled).
type Message struct {
	ID        uint16
	Response  bool
	RCode     RCode
	Questions []Question
	Answers   []RR
}

const maxNameLen = 255

// appendName encodes a domain name in uncompressed label format.
func appendName(buf []byte, name string) ([]byte, error) {
	name = strings.TrimSuffix(name, ".")
	if len(name) > maxNameLen {
		return nil, fmt.Errorf("dnssim: name too long: %q", name)
	}
	if name != "" {
		for _, label := range strings.Split(name, ".") {
			if len(label) == 0 || len(label) > 63 {
				return nil, fmt.Errorf("dnssim: bad label in %q", name)
			}
			buf = append(buf, byte(len(label)))
			buf = append(buf, label...)
		}
	}
	return append(buf, 0), nil
}

func appendU16(buf []byte, v uint16) []byte { return append(buf, byte(v>>8), byte(v)) }
func appendU32(buf []byte, v uint32) []byte {
	return append(buf, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

// Pack serializes the message to wire format.
func (m *Message) Pack() ([]byte, error) {
	buf := make([]byte, 0, 512)
	buf = appendU16(buf, m.ID)
	var flags uint16
	if m.Response {
		flags |= 1 << 15
		flags |= 1 << 10 // authoritative answer
	}
	flags |= 1 << 8 // recursion desired
	flags |= uint16(m.RCode) & 0xf
	buf = appendU16(buf, flags)
	buf = appendU16(buf, uint16(len(m.Questions)))
	buf = appendU16(buf, uint16(len(m.Answers)))
	buf = appendU16(buf, 0) // authority
	buf = appendU16(buf, 0) // additional
	var err error
	for _, q := range m.Questions {
		if buf, err = appendName(buf, q.Name); err != nil {
			return nil, err
		}
		buf = appendU16(buf, uint16(q.Type))
		buf = appendU16(buf, q.Class)
	}
	for _, rr := range m.Answers {
		if buf, err = appendName(buf, rr.Name); err != nil {
			return nil, err
		}
		buf = appendU16(buf, uint16(rr.Type))
		buf = appendU16(buf, rr.Class)
		buf = appendU32(buf, rr.TTL)
		rdata, err := packRData(rr)
		if err != nil {
			return nil, err
		}
		buf = appendU16(buf, uint16(len(rdata)))
		buf = append(buf, rdata...)
	}
	return buf, nil
}

func packRData(rr RR) ([]byte, error) {
	switch rr.Type {
	case TypeA:
		var a, b, c, d int
		if _, err := fmt.Sscanf(rr.Data, "%d.%d.%d.%d", &a, &b, &c, &d); err != nil {
			return nil, fmt.Errorf("dnssim: bad A record %q", rr.Data)
		}
		for _, v := range []int{a, b, c, d} {
			if v < 0 || v > 255 {
				return nil, fmt.Errorf("dnssim: bad A record %q", rr.Data)
			}
		}
		return []byte{byte(a), byte(b), byte(c), byte(d)}, nil
	case TypeTXT:
		// TXT rdata is a sequence of <len><chars> strings.
		var out []byte
		data := rr.Data
		for len(data) > 255 {
			out = append(out, 255)
			out = append(out, data[:255]...)
			data = data[255:]
		}
		out = append(out, byte(len(data)))
		out = append(out, data...)
		return out, nil
	default:
		return nil, fmt.Errorf("dnssim: cannot pack type %d", rr.Type)
	}
}

type unpacker struct {
	data []byte
	pos  int
}

var errShort = errors.New("dnssim: truncated message")

func (u *unpacker) u16() (uint16, error) {
	if u.pos+2 > len(u.data) {
		return 0, errShort
	}
	v := uint16(u.data[u.pos])<<8 | uint16(u.data[u.pos+1])
	u.pos += 2
	return v, nil
}

func (u *unpacker) u32() (uint32, error) {
	hi, err := u.u16()
	if err != nil {
		return 0, err
	}
	lo, err := u.u16()
	if err != nil {
		return 0, err
	}
	return uint32(hi)<<16 | uint32(lo), nil
}

// name decodes a (possibly compressed) domain name.
func (u *unpacker) name() (string, error) {
	var labels []string
	pos := u.pos
	jumped := false
	steps := 0
	for {
		if steps++; steps > 128 {
			return "", errors.New("dnssim: name compression loop")
		}
		if pos >= len(u.data) {
			return "", errShort
		}
		l := int(u.data[pos])
		switch {
		case l == 0:
			if !jumped {
				u.pos = pos + 1
			}
			return strings.Join(labels, "."), nil
		case l&0xc0 == 0xc0:
			if pos+1 >= len(u.data) {
				return "", errShort
			}
			target := (l&0x3f)<<8 | int(u.data[pos+1])
			if !jumped {
				u.pos = pos + 2
			}
			if target >= pos {
				return "", errors.New("dnssim: forward compression pointer")
			}
			pos = target
			jumped = true
		default:
			if pos+1+l > len(u.data) {
				return "", errShort
			}
			labels = append(labels, string(u.data[pos+1:pos+1+l]))
			pos += 1 + l
		}
	}
}

// Unpack parses a wire-format DNS message.
func Unpack(data []byte) (*Message, error) {
	u := &unpacker{data: data}
	var m Message
	id, err := u.u16()
	if err != nil {
		return nil, err
	}
	m.ID = id
	flags, err := u.u16()
	if err != nil {
		return nil, err
	}
	m.Response = flags&(1<<15) != 0
	m.RCode = RCode(flags & 0xf)
	qd, err := u.u16()
	if err != nil {
		return nil, err
	}
	an, err := u.u16()
	if err != nil {
		return nil, err
	}
	if _, err := u.u16(); err != nil { // authority count
		return nil, err
	}
	if _, err := u.u16(); err != nil { // additional count
		return nil, err
	}
	for i := 0; i < int(qd); i++ {
		name, err := u.name()
		if err != nil {
			return nil, err
		}
		typ, err := u.u16()
		if err != nil {
			return nil, err
		}
		class, err := u.u16()
		if err != nil {
			return nil, err
		}
		m.Questions = append(m.Questions, Question{Name: name, Type: Type(typ), Class: class})
	}
	for i := 0; i < int(an); i++ {
		rr, err := u.rr()
		if err != nil {
			return nil, err
		}
		m.Answers = append(m.Answers, rr)
	}
	return &m, nil
}

func (u *unpacker) rr() (RR, error) {
	name, err := u.name()
	if err != nil {
		return RR{}, err
	}
	typ, err := u.u16()
	if err != nil {
		return RR{}, err
	}
	class, err := u.u16()
	if err != nil {
		return RR{}, err
	}
	ttl, err := u.u32()
	if err != nil {
		return RR{}, err
	}
	rdlen, err := u.u16()
	if err != nil {
		return RR{}, err
	}
	if u.pos+int(rdlen) > len(u.data) {
		return RR{}, errShort
	}
	rdata := u.data[u.pos : u.pos+int(rdlen)]
	u.pos += int(rdlen)
	rr := RR{Name: name, Type: Type(typ), Class: class, TTL: ttl}
	switch rr.Type {
	case TypeA:
		if len(rdata) != 4 {
			return RR{}, fmt.Errorf("dnssim: A rdata length %d", len(rdata))
		}
		rr.Data = fmt.Sprintf("%d.%d.%d.%d", rdata[0], rdata[1], rdata[2], rdata[3])
	case TypeTXT:
		var sb strings.Builder
		for len(rdata) > 0 {
			l := int(rdata[0])
			if 1+l > len(rdata) {
				return RR{}, errors.New("dnssim: bad TXT rdata")
			}
			sb.Write(rdata[1 : 1+l])
			rdata = rdata[1+l:]
		}
		rr.Data = sb.String()
	default:
		rr.Data = string(rdata)
	}
	return rr, nil
}
