package pds

import (
	"context"
	"net/url"
	"testing"
	"time"

	"blueskies/internal/events"
	"blueskies/internal/identity"
	"blueskies/internal/lexicon"
	"blueskies/internal/plc"
	"blueskies/internal/repo"
	"blueskies/internal/xrpc"

	"bytes"
)

var ts = time.Date(2024, 4, 1, 12, 0, 0, 0, time.UTC)

func startPDS(t *testing.T) *Server {
	t.Helper()
	s := New(Config{Hostname: "pds.test", Clock: func() time.Time { return ts }})
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestCreateAccountAndPost(t *testing.T) {
	s := startPDS(t)
	acct, err := s.CreateAccount("alice.bsky.social")
	if err != nil {
		t.Fatal(err)
	}
	if acct.DID.Method() != identity.MethodPLC {
		t.Fatalf("did = %s", acct.DID)
	}
	uri, err := s.CreateRecord(acct.DID, lexicon.Post, "3kaaaaaaaaaa2", lexicon.NewPost("hello", []string{"en"}, ts))
	if err != nil {
		t.Fatal(err)
	}
	if uri.DID != acct.DID {
		t.Fatalf("uri = %v", uri)
	}
	rec, err := acct.Repo.Get(lexicon.Post, "3kaaaaaaaaaa2")
	if err != nil {
		t.Fatal(err)
	}
	if lexicon.PostText(rec.Value) != "hello" {
		t.Fatalf("text = %q", lexicon.PostText(rec.Value))
	}
}

func TestDuplicateHandleRejected(t *testing.T) {
	s := startPDS(t)
	if _, err := s.CreateAccount("dup.bsky.social"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.CreateAccount("dup.bsky.social"); err == nil {
		t.Fatal("duplicate handle must fail")
	}
}

func TestXRPCRecordLifecycle(t *testing.T) {
	s := startPDS(t)
	client := xrpc.NewClient(s.URL())
	ctx := context.Background()

	var created struct {
		DID    string `json:"did"`
		Handle string `json:"handle"`
	}
	err := client.Procedure(ctx, "com.atproto.server.createAccount", nil,
		map[string]string{"handle": "bob.bsky.social"}, &created)
	if err != nil {
		t.Fatal(err)
	}
	if created.Handle != "bob.bsky.social" {
		t.Fatalf("created = %+v", created)
	}

	var putOut struct {
		URI string `json:"uri"`
	}
	err = client.Procedure(ctx, "com.atproto.repo.createRecord", nil, map[string]any{
		"repo":       created.DID,
		"collection": lexicon.Post,
		"rkey":       "3kaaaaaaaaaa2",
		"record":     lexicon.NewPost("via xrpc", nil, ts),
	}, &putOut)
	if err != nil {
		t.Fatal(err)
	}

	var got struct {
		URI   string         `json:"uri"`
		Value map[string]any `json:"value"`
	}
	err = client.Query(ctx, "com.atproto.repo.getRecord", url.Values{
		"repo": {created.DID}, "collection": {lexicon.Post}, "rkey": {"3kaaaaaaaaaa2"},
	}, &got)
	if err != nil {
		t.Fatal(err)
	}
	if got.Value["text"] != "via xrpc" {
		t.Fatalf("value = %v", got.Value)
	}

	var list struct {
		Records []struct {
			URI string `json:"uri"`
		} `json:"records"`
	}
	err = client.Query(ctx, "com.atproto.repo.listRecords", url.Values{
		"repo": {created.DID}, "collection": {lexicon.Post},
	}, &list)
	if err != nil {
		t.Fatal(err)
	}
	if len(list.Records) != 1 {
		t.Fatalf("records = %+v", list.Records)
	}

	err = client.Procedure(ctx, "com.atproto.repo.deleteRecord", nil, map[string]string{
		"repo": created.DID, "collection": lexicon.Post, "rkey": "3kaaaaaaaaaa2",
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	err = client.Query(ctx, "com.atproto.repo.getRecord", url.Values{
		"repo": {created.DID}, "collection": {lexicon.Post}, "rkey": {"3kaaaaaaaaaa2"},
	}, nil)
	if xe, ok := xrpc.AsError(err); !ok || xe.Name != "NotFound" {
		t.Fatalf("err = %v", err)
	}
}

func TestSyncGetRepoRoundTrip(t *testing.T) {
	s := startPDS(t)
	acct, _ := s.CreateAccount("carol.bsky.social")
	_, _ = s.CreateRecord(acct.DID, lexicon.Post, "3kaaaaaaaaaa2", lexicon.NewPost("persisted", nil, ts))

	client := xrpc.NewClient(s.URL())
	carBytes, err := client.QueryBytes(context.Background(), "com.atproto.sync.getRepo",
		url.Values{"did": {string(acct.DID)}})
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := repo.LoadCAR(bytes.NewReader(carBytes), acct.Key.Public())
	if err != nil {
		t.Fatal(err)
	}
	rec, err := loaded.Get(lexicon.Post, "3kaaaaaaaaaa2")
	if err != nil {
		t.Fatal(err)
	}
	if lexicon.PostText(rec.Value) != "persisted" {
		t.Fatalf("text = %q", lexicon.PostText(rec.Value))
	}
}

func TestListReposPagination(t *testing.T) {
	s := startPDS(t)
	for _, h := range []string{"u1", "u2", "u3", "u4", "u5"} {
		if _, err := s.CreateAccount(identity.Handle(h + ".bsky.social")); err != nil {
			t.Fatal(err)
		}
	}
	client := xrpc.NewClient(s.URL())
	type listResp struct {
		Cursor string `json:"cursor"`
		Repos  []struct {
			DID  string `json:"did"`
			Head string `json:"head"`
			Rev  string `json:"rev"`
		} `json:"repos"`
	}
	seen := map[string]bool{}
	cursor := ""
	for page := 0; page < 10; page++ {
		var out listResp
		params := url.Values{"limit": {"2"}}
		if cursor != "" {
			params.Set("cursor", cursor)
		}
		if err := client.Query(context.Background(), "com.atproto.sync.listRepos", params, &out); err != nil {
			t.Fatal(err)
		}
		for _, r := range out.Repos {
			if seen[r.DID] {
				t.Fatalf("repo %s repeated across pages", r.DID)
			}
			seen[r.DID] = true
			if r.Head == "" || r.Rev == "" {
				t.Fatalf("repo %s missing head/rev", r.DID)
			}
		}
		if out.Cursor == "" {
			break
		}
		cursor = out.Cursor
	}
	if len(seen) != 5 {
		t.Fatalf("saw %d repos", len(seen))
	}
}

func TestFirehoseEventsOverWebSocket(t *testing.T) {
	s := startPDS(t)
	acct, _ := s.CreateAccount("dave.bsky.social")

	sub, err := events.Subscribe(s.URL(), "com.atproto.sync.subscribeRepos", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	// Backfill: the createAccount identity event.
	ev, err := sub.NextTimeout(2 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	id, ok := ev.(*events.Identity)
	if !ok || id.DID != string(acct.DID) {
		t.Fatalf("first event = %#v", ev)
	}

	// Live: a post commit.
	if _, err := s.CreateRecord(acct.DID, lexicon.Post, "3kaaaaaaaaaa2", lexicon.NewPost("live", nil, ts)); err != nil {
		t.Fatal(err)
	}
	ev, err = sub.NextTimeout(2 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	commit, ok := ev.(*events.Commit)
	if !ok {
		t.Fatalf("second event = %#v", ev)
	}
	if commit.Repo != string(acct.DID) || len(commit.Ops) != 1 || commit.Ops[0].Action != "create" {
		t.Fatalf("commit = %+v", commit)
	}
	if len(commit.Blocks) == 0 {
		t.Fatal("commit must carry CAR blocks")
	}
}

func TestHandleUpdateEmitsEventAndUpdatesPLC(t *testing.T) {
	dir := plc.NewDirectory()
	plcSrv, err := plc.NewServer(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer plcSrv.Close()

	s := New(Config{Hostname: "pds.test", PLCURL: plcSrv.URL(), Clock: func() time.Time { return ts }})
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	acct, err := s.CreateAccount("eve.bsky.social")
	if err != nil {
		t.Fatal(err)
	}
	sub, err := events.Subscribe(s.URL(), "com.atproto.sync.subscribeRepos", int64(0))
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	if _, err := sub.NextTimeout(time.Second); err != nil { // identity event
		t.Fatal(err)
	}

	if err := s.UpdateHandle(acct.DID, "eve.example.com"); err != nil {
		t.Fatal(err)
	}
	ev, err := sub.NextTimeout(2 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	h, ok := ev.(*events.Handle)
	if !ok || h.Handle != "eve.example.com" {
		t.Fatalf("event = %#v", ev)
	}

	doc, err := dir.Resolve(acct.DID)
	if err != nil {
		t.Fatal(err)
	}
	if doc.Handle() != "eve.example.com" {
		t.Fatalf("PLC handle = %s", doc.Handle())
	}
}

func TestDeleteAccountTombstone(t *testing.T) {
	s := startPDS(t)
	acct, _ := s.CreateAccount("gone.bsky.social")
	if err := s.DeleteAccount(acct.DID); err != nil {
		t.Fatal(err)
	}
	if _, err := s.ExportCAR(acct.DID); err == nil {
		t.Fatal("export of deleted account must fail")
	}
	if err := s.DeleteAccount(acct.DID); err == nil {
		t.Fatal("double delete must fail")
	}
	// Handle is freed.
	if _, err := s.CreateAccount("gone.bsky.social"); err != nil {
		t.Fatalf("handle must be reusable after delete: %v", err)
	}
}

func TestPreferencesArePrivate(t *testing.T) {
	s := startPDS(t)
	acct, _ := s.CreateAccount("frank.bsky.social")
	client := xrpc.NewClient(s.URL())
	ctx := context.Background()

	err := client.Procedure(ctx, "app.bsky.actor.putPreferences", nil, map[string]any{
		"auth":        Token(acct.DID),
		"preferences": map[string]any{"labelers": []string{"did:plc:labeler"}},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}

	// Owner can read.
	var out struct {
		Preferences map[string]any `json:"preferences"`
	}
	err = client.Query(ctx, "app.bsky.actor.getPreferences", url.Values{"auth": {Token(acct.DID)}}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if out.Preferences["labelers"] == nil {
		t.Fatalf("preferences = %v", out.Preferences)
	}

	// Anyone else cannot.
	err = client.Query(ctx, "app.bsky.actor.getPreferences", url.Values{"auth": {"tok:did:plc:attacker"}}, nil)
	if xe, ok := xrpc.AsError(err); !ok || xe.Status != 401 {
		t.Fatalf("err = %v", err)
	}
}

func TestAccountMigration(t *testing.T) {
	srcPDS := startPDS(t)
	dstPDS := startPDS(t)

	acct, _ := srcPDS.CreateAccount("mover.bsky.social")
	_, _ = srcPDS.CreateRecord(acct.DID, lexicon.Post, "3kaaaaaaaaaa2", lexicon.NewPost("pre-migration", nil, ts))
	_, _ = srcPDS.CreateRecord(acct.DID, lexicon.Follow, "3kaaaaaaaaaa3", lexicon.NewFollow("did:plc:abcdefghijklmnopqrstuvwx", ts))

	carBytes, err := srcPDS.ExportCAR(acct.DID)
	if err != nil {
		t.Fatal(err)
	}
	moved, err := dstPDS.ImportAccount(acct.DID, acct.Handle, acct.Key, carBytes)
	if err != nil {
		t.Fatal(err)
	}
	if moved.DID != acct.DID {
		t.Fatalf("DID changed in migration: %s", moved.DID)
	}
	rec, err := moved.Repo.Get(lexicon.Post, "3kaaaaaaaaaa2")
	if err != nil {
		t.Fatal(err)
	}
	if lexicon.PostText(rec.Value) != "pre-migration" {
		t.Fatal("record content lost in migration")
	}
	// The social graph survives: follow records intact.
	follows, err := moved.Repo.List(lexicon.Follow)
	if err != nil || len(follows) != 1 {
		t.Fatalf("follows = %v, %v", follows, err)
	}
}

func TestImportRejectsWrongDID(t *testing.T) {
	src := startPDS(t)
	dst := startPDS(t)
	acct, _ := src.CreateAccount("orig.bsky.social")
	carBytes, _ := src.ExportCAR(acct.DID)
	other := identity.PLCFromGenesis([]byte("other"))
	if _, err := dst.ImportAccount(other, "other.bsky.social", acct.Key, carBytes); err == nil {
		t.Fatal("import with mismatched DID must fail")
	}
}

func TestRecordSchemaValidation(t *testing.T) {
	s := startPDS(t)
	acct, _ := s.CreateAccount("schema.bsky.social")
	// Post without text: rejected by the lexicon schema.
	bad := map[string]any{"$type": lexicon.Post, "createdAt": lexicon.FormatTime(ts)}
	if _, err := s.CreateRecord(acct.DID, lexicon.Post, "", bad); err == nil {
		t.Fatal("schema-invalid record must be rejected")
	}
	// Mismatched $type vs collection: rejected.
	post := lexicon.NewPost("x", nil, ts)
	if _, err := s.CreateRecord(acct.DID, lexicon.Like, "", post); err == nil {
		t.Fatal("type/collection mismatch must be rejected")
	}
	// Unknown lexicons are accepted (open ecosystem, §4).
	entry := lexicon.NewWhiteWindEntry("Title", "body", ts)
	if _, err := s.CreateRecord(acct.DID, lexicon.WhiteWindEntry, "", entry); err != nil {
		t.Fatalf("unknown lexicon must pass: %v", err)
	}
}
