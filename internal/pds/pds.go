// Package pds implements a Personal Data Server: the service hosting
// user repositories (§2). A PDS owns accounts, applies record writes
// as signed repo commits, serves sync endpoints (getRepo/listRepos),
// emits a per-PDS event stream (subscribeRepos) that Relays crawl,
// stores private user preferences, and supports account migration and
// handle updates via the PLC directory.
package pds

import (
	"bytes"
	"context"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"sync"
	"time"

	"blueskies/internal/car"
	"blueskies/internal/events"
	"blueskies/internal/identity"
	"blueskies/internal/lexicon"
	"blueskies/internal/plc"
	"blueskies/internal/repo"
	"blueskies/internal/ws"
	"blueskies/internal/xrpc"
)

// Account is one hosted account.
type Account struct {
	DID         identity.DID
	Handle      identity.Handle
	Key         *identity.KeyPair
	Repo        *repo.Repo
	Preferences map[string]any // private: served only to the owner
	Deleted     bool
}

// Config configures a PDS.
type Config struct {
	// Hostname labels this PDS (e.g. "pds1.example"); informational.
	Hostname string
	// PLCURL is the PLC directory base URL; empty disables directory
	// registration (accounts still work locally).
	PLCURL string
	// Clock supplies timestamps; time.Now if nil.
	Clock func() time.Time
	// Retention bounds the event backlog (0 = keep all).
	Retention time.Duration
	// MaxEvents caps the event backlog (0 = unbounded).
	MaxEvents int
}

// Server is a Personal Data Server.
type Server struct {
	cfg   Config
	plc   *plc.Client
	clock func() time.Time

	mu       sync.RWMutex
	accounts map[identity.DID]*Account
	byHandle map[identity.Handle]identity.DID

	seq  *events.Sequencer
	tids *identity.TIDClock
	mux  *xrpc.Mux
	http *http.Server
	ln   net.Listener
	base string
}

// New creates a PDS without starting an HTTP listener (useful for
// in-process tests); call Start to serve.
func New(cfg Config) *Server {
	clock := cfg.Clock
	if clock == nil {
		clock = time.Now
	}
	s := &Server{
		cfg:      cfg,
		clock:    clock,
		accounts: make(map[identity.DID]*Account),
		byHandle: make(map[identity.Handle]identity.DID),
		seq:      events.NewSequencer(cfg.Retention, cfg.MaxEvents),
		tids:     identity.NewTIDClock(0),
	}
	s.seq.SetClock(clock)
	if cfg.PLCURL != "" {
		s.plc = plc.NewClient(cfg.PLCURL)
	}
	s.mux = xrpc.NewMux()
	s.register()
	return s
}

// Start begins serving on a loopback port.
func (s *Server) Start() error {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	s.ln = ln
	s.base = "http://" + ln.Addr().String()
	s.http = &http.Server{Handler: s.mux}
	go func() { _ = s.http.Serve(ln) }()
	return nil
}

// URL returns the server's base URL ("" before Start).
func (s *Server) URL() string { return s.base }

// Close stops the HTTP listener.
func (s *Server) Close() error {
	if s.http != nil {
		return s.http.Close()
	}
	return nil
}

// Sequencer exposes the event stream (for relays running in-process).
func (s *Server) Sequencer() *events.Sequencer { return s.seq }

// token computes the (simulated) bearer token of an account. The real
// network uses OAuth/JWTs; a per-DID static token preserves the only
// property the paper relies on — preferences are owner-private.
func token(did identity.DID) string { return "tok:" + string(did) }

// Token returns the bearer token for did (for clients in tests and
// examples).
func Token(did identity.DID) string { return token(did) }

// CreateAccount provisions an account: derives a key, registers a
// did:plc genesis with the directory (when configured), and creates an
// empty repository with a genesis commit.
func (s *Server) CreateAccount(handle identity.Handle) (*Account, error) {
	if err := identity.ValidateHandle(string(handle)); err != nil {
		return nil, err
	}
	s.mu.Lock()
	if _, taken := s.byHandle[handle]; taken {
		s.mu.Unlock()
		return nil, fmt.Errorf("pds: handle %s already taken", handle)
	}
	s.mu.Unlock()

	key := identity.DeriveKeyPair(s.cfg.Hostname + "/" + string(handle))
	did, genesis := plc.NewGenesis(key, handle, s.base)
	if s.plc != nil {
		if err := s.plc.Submit(did, genesis); err != nil {
			return nil, fmt.Errorf("pds: register DID: %w", err)
		}
	}
	acct := &Account{
		DID:         did,
		Handle:      handle,
		Key:         key,
		Repo:        repo.New(did, key),
		Preferences: make(map[string]any),
	}
	if _, err := acct.Repo.Commit(s.clock()); err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.accounts[did] = acct
	s.byHandle[handle] = did
	s.mu.Unlock()
	s.emitIdentity(did)
	return acct, nil
}

// ImportAccount adopts an account migrating in from another PDS: the
// caller supplies the existing DID, key, and exported repo CAR.
func (s *Server) ImportAccount(did identity.DID, handle identity.Handle, key *identity.KeyPair, carBytes []byte) (*Account, error) {
	loaded, err := repo.LoadCAR(bytes.NewReader(carBytes), key.Public())
	if err != nil {
		return nil, fmt.Errorf("pds: import: %w", err)
	}
	if loaded.DID() != did {
		return nil, fmt.Errorf("pds: archive DID %s does not match %s", loaded.DID(), did)
	}
	// Re-materialize a writable repo under the same DID/key, replaying
	// the loaded records into a fresh commit on this PDS.
	fresh := repo.New(did, key)
	recs, err := loaded.List("")
	if err != nil {
		return nil, err
	}
	for _, rec := range recs {
		if _, _, err := fresh.Put(rec.URI.Collection, rec.URI.RKey, rec.Value); err != nil {
			return nil, err
		}
	}
	if _, err := fresh.Commit(s.clock()); err != nil {
		return nil, err
	}
	acct := &Account{DID: did, Handle: handle, Key: key, Repo: fresh, Preferences: make(map[string]any)}
	s.mu.Lock()
	s.accounts[did] = acct
	s.byHandle[handle] = did
	s.mu.Unlock()
	s.emitIdentity(did)
	return acct, nil
}

// Account returns a hosted account.
func (s *Server) Account(did identity.DID) (*Account, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	a, ok := s.accounts[did]
	return a, ok
}

// Accounts returns all hosted DIDs, sorted.
func (s *Server) Accounts() []identity.DID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]identity.DID, 0, len(s.accounts))
	for did := range s.accounts {
		out = append(out, did)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// CreateRecord applies a create and emits the commit event. An empty
// rkey is replaced with a fresh TID. Records are validated against
// their collection's lexicon schema before acceptance.
func (s *Server) CreateRecord(did identity.DID, collection, rkey string, record map[string]any) (identity.URI, error) {
	if err := lexicon.ValidateRecord(collection, record); err != nil {
		return identity.URI{}, xrpc.ErrInvalidRequest("%v", err)
	}
	if rkey == "" {
		rkey = string(s.tids.Next(s.clock()))
	}
	return s.write(did, func(r *repo.Repo) error {
		_, _, err := r.Create(collection, rkey, record)
		return err
	}, collection, rkey)
}

// PutRecord applies a create-or-replace and emits the commit event.
// An empty rkey is replaced with a fresh TID.
func (s *Server) PutRecord(did identity.DID, collection, rkey string, record map[string]any) (identity.URI, error) {
	if err := lexicon.ValidateRecord(collection, record); err != nil {
		return identity.URI{}, xrpc.ErrInvalidRequest("%v", err)
	}
	if rkey == "" {
		rkey = string(s.tids.Next(s.clock()))
	}
	return s.write(did, func(r *repo.Repo) error {
		_, _, err := r.Put(collection, rkey, record)
		return err
	}, collection, rkey)
}

// DeleteRecord applies a delete and emits the commit event.
func (s *Server) DeleteRecord(did identity.DID, collection, rkey string) error {
	_, err := s.write(did, func(r *repo.Repo) error {
		return r.Delete(collection, rkey)
	}, collection, rkey)
	return err
}

func (s *Server) write(did identity.DID, apply func(*repo.Repo) error, collection, rkey string) (identity.URI, error) {
	s.mu.Lock()
	acct, ok := s.accounts[did]
	if !ok || acct.Deleted {
		s.mu.Unlock()
		return identity.URI{}, xrpc.ErrNotFound("repo %s not hosted here", did)
	}
	if err := apply(acct.Repo); err != nil {
		s.mu.Unlock()
		return identity.URI{}, err
	}
	info, err := acct.Repo.Commit(s.clock())
	s.mu.Unlock()
	if err != nil {
		return identity.URI{}, err
	}
	s.emitCommit(info)
	return identity.URI{DID: did, Collection: collection, RKey: rkey}, nil
}

// emitCommit publishes a #commit event with a CAR slice of the new
// blocks.
func (s *Server) emitCommit(info repo.CommitInfo) {
	var blocksBuf bytes.Buffer
	cw, err := car.NewWriter(&blocksBuf, info.CID)
	if err != nil {
		return
	}
	for _, b := range info.Blocks {
		if err := cw.WriteBlock(b); err != nil {
			return
		}
	}
	if err := cw.Flush(); err != nil {
		return
	}
	ops := make([]events.RepoOp, len(info.Ops))
	for i, op := range info.Ops {
		ops[i] = events.RepoOp{Action: op.Action, Path: op.Path}
		if op.CID.Defined() {
			c := op.CID
			ops[i].CID = &c
		}
	}
	_, _ = s.seq.Emit(func(seq int64) any {
		return &events.Commit{
			Seq:    seq,
			Repo:   string(info.DID),
			Rev:    string(info.Rev),
			Commit: info.CID,
			Ops:    ops,
			Blocks: blocksBuf.Bytes(),
			Time:   events.FormatTime(info.Time),
		}
	})
}

func (s *Server) emitIdentity(did identity.DID) {
	_, _ = s.seq.Emit(func(seq int64) any {
		return &events.Identity{Seq: seq, DID: string(did), Time: events.FormatTime(s.clock())}
	})
}

// UpdateHandle changes an account's handle, updates the PLC directory,
// and emits a #handle event (the update type the paper measures in
// §5, "User Handles Updates").
func (s *Server) UpdateHandle(did identity.DID, newHandle identity.Handle) error {
	if err := identity.ValidateHandle(string(newHandle)); err != nil {
		return err
	}
	s.mu.Lock()
	acct, ok := s.accounts[did]
	if !ok || acct.Deleted {
		s.mu.Unlock()
		return xrpc.ErrNotFound("repo %s not hosted here", did)
	}
	if other, taken := s.byHandle[newHandle]; taken && other != did {
		s.mu.Unlock()
		return fmt.Errorf("pds: handle %s already taken", newHandle)
	}
	delete(s.byHandle, acct.Handle)
	acct.Handle = newHandle
	s.byHandle[newHandle] = did
	key := acct.Key
	s.mu.Unlock()

	if s.plc != nil {
		if err := s.plcUpdate(did, key, newHandle); err != nil {
			return err
		}
	}
	_, _ = s.seq.Emit(func(seq int64) any {
		return &events.Handle{Seq: seq, DID: string(did), Handle: string(newHandle), Time: events.FormatTime(s.clock())}
	})
	return nil
}

func (s *Server) plcUpdate(did identity.DID, key *identity.KeyPair, handle identity.Handle) error {
	// Fetch the op log head to chain the update.
	resp, err := http.Get(s.cfg.PLCURL + "/" + string(did) + "/log")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	var log []plc.Operation
	if err := json.NewDecoder(resp.Body).Decode(&log); err != nil {
		return err
	}
	if len(log) == 0 {
		return errors.New("pds: empty PLC log")
	}
	head := log[len(log)-1]
	op := plc.Operation{
		Type:            plc.OpTypeOperation,
		VerificationKey: key.PublicMultibase(),
		Handle:          string(handle),
		PDSEndpoint:     s.base,
		LabelerEndpoint: head.LabelerEndpoint,
		Prev:            head.CID(),
	}
	op.Sign(key)
	return s.plc.Submit(did, op)
}

// DeleteAccount tombstones an account and emits a #tombstone event.
func (s *Server) DeleteAccount(did identity.DID) error {
	s.mu.Lock()
	acct, ok := s.accounts[did]
	if !ok || acct.Deleted {
		s.mu.Unlock()
		return xrpc.ErrNotFound("repo %s not hosted here", did)
	}
	acct.Deleted = true
	delete(s.byHandle, acct.Handle)
	s.mu.Unlock()
	_, _ = s.seq.Emit(func(seq int64) any {
		return &events.Tombstone{Seq: seq, DID: string(did), Time: events.FormatTime(s.clock())}
	})
	return nil
}

// ExportCAR returns the full repo archive for did.
func (s *Server) ExportCAR(did identity.DID) ([]byte, error) {
	s.mu.RLock()
	acct, ok := s.accounts[did]
	s.mu.RUnlock()
	if !ok || acct.Deleted {
		return nil, xrpc.ErrNotFound("repo %s not hosted here", did)
	}
	var buf bytes.Buffer
	if err := acct.Repo.ExportCAR(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// register wires the XRPC routes.
func (s *Server) register() {
	s.mux.Procedure("com.atproto.server.createAccount", func(_ context.Context, _ url.Values, input []byte) (any, error) {
		var req struct {
			Handle string `json:"handle"`
		}
		if err := json.Unmarshal(input, &req); err != nil {
			return nil, xrpc.ErrInvalidRequest("bad input: %v", err)
		}
		acct, err := s.CreateAccount(identity.Handle(req.Handle))
		if err != nil {
			return nil, xrpc.ErrInvalidRequest("%v", err)
		}
		return map[string]string{
			"did":         string(acct.DID),
			"handle":      string(acct.Handle),
			"accessToken": token(acct.DID),
		}, nil
	})

	s.mux.Procedure("com.atproto.repo.createRecord", s.recordWrite(func(did identity.DID, coll, rkey string, rec map[string]any) (identity.URI, error) {
		return s.CreateRecord(did, coll, rkey, rec)
	}))
	s.mux.Procedure("com.atproto.repo.putRecord", s.recordWrite(func(did identity.DID, coll, rkey string, rec map[string]any) (identity.URI, error) {
		return s.PutRecord(did, coll, rkey, rec)
	}))

	s.mux.Procedure("com.atproto.repo.deleteRecord", func(_ context.Context, _ url.Values, input []byte) (any, error) {
		var req struct {
			Repo       string `json:"repo"`
			Collection string `json:"collection"`
			RKey       string `json:"rkey"`
		}
		if err := json.Unmarshal(input, &req); err != nil {
			return nil, xrpc.ErrInvalidRequest("bad input: %v", err)
		}
		if err := s.DeleteRecord(identity.DID(req.Repo), req.Collection, req.RKey); err != nil {
			return nil, err
		}
		return map[string]bool{"ok": true}, nil
	})

	s.mux.Query("com.atproto.repo.getRecord", func(_ context.Context, params url.Values, _ []byte) (any, error) {
		acct, err := s.lookup(params.Get("repo"))
		if err != nil {
			return nil, err
		}
		rec, err := acct.Repo.Get(params.Get("collection"), params.Get("rkey"))
		if err != nil {
			return nil, xrpc.ErrNotFound("%v", err)
		}
		return map[string]any{"uri": rec.URI.String(), "cid": rec.CID.String(), "value": rec.Value}, nil
	})

	s.mux.Query("com.atproto.repo.listRecords", func(_ context.Context, params url.Values, _ []byte) (any, error) {
		acct, err := s.lookup(params.Get("repo"))
		if err != nil {
			return nil, err
		}
		recs, err := acct.Repo.List(params.Get("collection"))
		if err != nil {
			return nil, err
		}
		out := make([]map[string]any, len(recs))
		for i, rec := range recs {
			out[i] = map[string]any{"uri": rec.URI.String(), "cid": rec.CID.String(), "value": rec.Value}
		}
		return map[string]any{"records": out}, nil
	})

	s.mux.Query("com.atproto.sync.getRepo", func(_ context.Context, params url.Values, _ []byte) (any, error) {
		data, err := s.ExportCAR(identity.DID(params.Get("did")))
		if err != nil {
			return nil, err
		}
		return xrpc.Raw{ContentType: "application/vnd.ipld.car", Data: data}, nil
	})

	s.mux.Query("com.atproto.sync.listRepos", func(_ context.Context, params url.Values, _ []byte) (any, error) {
		return s.listRepos(params)
	})

	s.mux.Procedure("com.atproto.identity.updateHandle", func(_ context.Context, _ url.Values, input []byte) (any, error) {
		var req struct {
			DID    string `json:"did"`
			Handle string `json:"handle"`
		}
		if err := json.Unmarshal(input, &req); err != nil {
			return nil, xrpc.ErrInvalidRequest("bad input: %v", err)
		}
		if err := s.UpdateHandle(identity.DID(req.DID), identity.Handle(req.Handle)); err != nil {
			return nil, err
		}
		return map[string]bool{"ok": true}, nil
	})

	s.mux.Procedure("com.atproto.server.deleteAccount", func(_ context.Context, _ url.Values, input []byte) (any, error) {
		var req struct {
			DID string `json:"did"`
		}
		if err := json.Unmarshal(input, &req); err != nil {
			return nil, xrpc.ErrInvalidRequest("bad input: %v", err)
		}
		if err := s.DeleteAccount(identity.DID(req.DID)); err != nil {
			return nil, err
		}
		return map[string]bool{"ok": true}, nil
	})

	s.mux.Stream("com.atproto.sync.subscribeRepos", s.serveSubscribe)

	// Preferences are private: the paper explicitly does not crawl
	// them (§2 User Preferences); enforcement here is the bearer token.
	s.mux.Procedure("app.bsky.actor.putPreferences", s.authed(func(acct *Account, input []byte) (any, error) {
		var req struct {
			Preferences map[string]any `json:"preferences"`
		}
		if err := json.Unmarshal(input, &req); err != nil {
			return nil, xrpc.ErrInvalidRequest("bad input: %v", err)
		}
		s.mu.Lock()
		acct.Preferences = req.Preferences
		s.mu.Unlock()
		return map[string]bool{"ok": true}, nil
	}))
	s.mux.Query("app.bsky.actor.getPreferences", func(_ context.Context, params url.Values, _ []byte) (any, error) {
		acct, err := s.authAccount(params.Get("auth"))
		if err != nil {
			return nil, err
		}
		s.mu.RLock()
		defer s.mu.RUnlock()
		return map[string]any{"preferences": acct.Preferences}, nil
	})
}

func (s *Server) recordWrite(apply func(identity.DID, string, string, map[string]any) (identity.URI, error)) xrpc.Handler {
	return func(_ context.Context, _ url.Values, input []byte) (any, error) {
		var req struct {
			Repo       string         `json:"repo"`
			Collection string         `json:"collection"`
			RKey       string         `json:"rkey"`
			Record     map[string]any `json:"record"`
		}
		if err := json.Unmarshal(input, &req); err != nil {
			return nil, xrpc.ErrInvalidRequest("bad input: %v", err)
		}
		rkey := req.RKey
		if rkey == "" {
			rkey = string(identity.NewTID(s.clock(), 0))
		}
		uri, err := apply(identity.DID(req.Repo), req.Collection, rkey, req.Record)
		if err != nil {
			return nil, err
		}
		return map[string]string{"uri": uri.String()}, nil
	}
}

func (s *Server) lookup(didStr string) (*Account, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	acct, ok := s.accounts[identity.DID(didStr)]
	if !ok || acct.Deleted {
		return nil, xrpc.ErrNotFound("repo %s not hosted here", didStr)
	}
	return acct, nil
}

// authed wraps a procedure handler with bearer-token authentication
// carried in the JSON input's "auth" field or query.
func (s *Server) authed(h func(acct *Account, input []byte) (any, error)) xrpc.Handler {
	return func(_ context.Context, params url.Values, input []byte) (any, error) {
		authToken := params.Get("auth")
		if authToken == "" {
			var probe struct {
				Auth string `json:"auth"`
			}
			_ = json.Unmarshal(input, &probe)
			authToken = probe.Auth
		}
		acct, err := s.authAccount(authToken)
		if err != nil {
			return nil, err
		}
		return h(acct, input)
	}
}

func (s *Server) authAccount(authToken string) (*Account, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for did, acct := range s.accounts {
		if token(did) == authToken && !acct.Deleted {
			return acct, nil
		}
	}
	return nil, &xrpc.Error{Status: http.StatusUnauthorized, Name: "AuthRequired", Message: "invalid token"}
}

func (s *Server) listRepos(params url.Values) (any, error) {
	limit := 100
	if l := params.Get("limit"); l != "" {
		n, err := strconv.Atoi(l)
		if err != nil || n <= 0 {
			return nil, xrpc.ErrInvalidRequest("bad limit %q", l)
		}
		limit = n
	}
	cursor := params.Get("cursor")
	s.mu.RLock()
	dids := make([]identity.DID, 0, len(s.accounts))
	for did, acct := range s.accounts {
		if !acct.Deleted {
			dids = append(dids, did)
		}
	}
	sort.Slice(dids, func(i, j int) bool { return dids[i] < dids[j] })
	type repoInfo struct {
		DID  string `json:"did"`
		Head string `json:"head"`
		Rev  string `json:"rev"`
	}
	var out []repoInfo
	var next string
	for _, did := range dids {
		if cursor != "" && string(did) <= cursor {
			continue
		}
		acct := s.accounts[did]
		out = append(out, repoInfo{DID: string(did), Head: acct.Repo.Head().String(), Rev: string(acct.Repo.Rev())})
		if len(out) >= limit {
			next = string(did)
			break
		}
	}
	s.mu.RUnlock()
	resp := map[string]any{"repos": out}
	if next != "" {
		resp["cursor"] = next
	}
	return resp, nil
}

// serveSubscribe streams events over WebSocket with cursor backfill.
func (s *Server) serveSubscribe(w http.ResponseWriter, r *http.Request) {
	ServeStream(s.seq, w, r)
}

// ServeStream implements the subscribeRepos/subscribeLabels WebSocket
// semantics over any sequencer: optional ?cursor= backfill (an
// out-of-retention cursor yields an #info frame first), then live
// delivery. Shared by PDS, Relay, and Labeler services.
func ServeStream(seq *events.Sequencer, w http.ResponseWriter, r *http.Request) {
	conn, err := ws.Upgrade(w, r)
	if err != nil {
		return
	}
	defer conn.Close()
	var cursor int64
	if cs := r.URL.Query().Get("cursor"); cs != "" {
		n, err := strconv.ParseInt(cs, 10, 64)
		if err != nil {
			return
		}
		cursor = n
	}
	// Subscribe first so no events are lost between backfill and live.
	live, cancel := seq.Subscribe(1024)
	defer cancel()
	var lastSent int64
	frames, outdated := seq.Backfill(cursor)
	if outdated {
		info, err := events.Encode(&events.Info{Name: "OutdatedCursor", Message: "requested cursor exceeded retention window"})
		if err == nil {
			if err := conn.WriteMessage(ws.OpBinary, info); err != nil {
				return
			}
		}
	}
	for _, f := range frames {
		if err := conn.WriteMessage(ws.OpBinary, f); err != nil {
			return
		}
		if ev, err := events.Decode(f); err == nil {
			lastSent = events.Seq(ev)
		}
	}
	// Reader goroutine to notice client close.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			if _, _, err := conn.ReadMessage(); err != nil {
				return
			}
		}
	}()
	for {
		select {
		case frame, ok := <-live:
			if !ok {
				return
			}
			if ev, err := events.Decode(frame); err == nil && events.Seq(ev) <= lastSent {
				continue // duplicate of backfill
			}
			if err := conn.WriteMessage(ws.OpBinary, frame); err != nil {
				return
			}
		case <-done:
			return
		}
	}
}

// EncodeCARBase64 helps JSON transports carry CAR archives.
func EncodeCARBase64(carBytes []byte) string { return base64.StdEncoding.EncodeToString(carBytes) }

// DecodeCARBase64 reverses EncodeCARBase64.
func DecodeCARBase64(s string) ([]byte, error) { return base64.StdEncoding.DecodeString(s) }
