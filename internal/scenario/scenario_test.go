package scenario

import (
	"errors"
	"strings"
	"testing"

	"blueskies/internal/analysis"
	"blueskies/internal/core"
)

// TestRegistrySuite pins the registry contract: at least six named
// scenarios, each with a valid class and an assertion, retrievable by
// name, with Names() sorted.
func TestRegistrySuite(t *testing.T) {
	names := Names()
	if len(names) < 6 {
		t.Fatalf("registry holds %d scenarios, want ≥ 6: %v", len(names), names)
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("Names() not sorted: %v", names)
		}
	}
	classes := map[Class]bool{GoldenParity: true, TypedFailure: true, TableShift: true}
	seen := map[Class]bool{}
	for _, n := range names {
		s, ok := Get(n)
		if !ok || s.Name != n {
			t.Fatalf("Get(%q) = %v, %v", n, s, ok)
		}
		if !classes[s.Class] {
			t.Fatalf("scenario %s has unknown class %q", n, s.Class)
		}
		if s.Assert == nil {
			t.Fatalf("scenario %s has no assertion", n)
		}
		if s.Description == "" {
			t.Fatalf("scenario %s has no description", n)
		}
		seen[s.Class] = true
	}
	for c := range classes {
		if !seen[c] {
			t.Errorf("no registered scenario exercises class %q", c)
		}
	}
	if len(All()) != len(names) {
		t.Fatalf("All() returned %d scenarios, want %d", len(All()), len(names))
	}
}

// TestScenarioSuite is the table-driven heart of the harness: every
// registered scenario runs under workers ∈ {1, 4}; its assertion must
// pass at both counts, and all three report sets (baseline, golden
// batch, faulted stream) must be byte-identical across worker counts —
// the same-seed ⇒ byte-identical determinism contract on both the
// batch and stream paths.
func TestScenarioSuite(t *testing.T) {
	for _, s := range All() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			t.Parallel()
			var prev *Result
			var prevWorkers int
			for _, workers := range []int{1, 4} {
				r, err := Run(s, workers)
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				if err := s.Assert(r); err != nil {
					t.Fatalf("workers=%d: assertion failed: %v", workers, err)
				}
				if prev != nil {
					for _, cmp := range []struct {
						which     string
						got, want []*analysis.Report
					}{
						{"baseline", r.Baseline, prev.Baseline},
						{"batch", r.Batch, prev.Batch},
						{"stream", r.Stream, prev.Stream},
					} {
						if g, w := analysis.RenderText(cmp.got), analysis.RenderText(cmp.want); g != w {
							t.Fatalf("%s reports differ between workers=%d and workers=%d", cmp.which, prevWorkers, workers)
						}
					}
					if (r.StreamErr == nil) != (prev.StreamErr == nil) {
						t.Fatalf("stream outcome differs between workers=%d (%v) and workers=%d (%v)",
							prevWorkers, prev.StreamErr, workers, r.StreamErr)
					}
				}
				prev, prevWorkers = r, workers
			}
		})
	}
}

// TestScenarioRerunDeterminism reruns one transformed + faulted
// scenario at a fixed worker count and demands byte-identical output —
// same seed, same bytes, even with the fault schedule active.
func TestScenarioRerunDeterminism(t *testing.T) {
	s, ok := Get("spam-flood")
	if !ok {
		t.Fatal("spam-flood not registered")
	}
	a, err := Run(s, 4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(s, 4)
	if err != nil {
		t.Fatal(err)
	}
	if analysis.RenderText(a.Batch) != analysis.RenderText(b.Batch) {
		t.Fatal("batch reports differ across reruns of the same seed")
	}
	if analysis.RenderText(a.Stream) != analysis.RenderText(b.Stream) {
		t.Fatal("stream reports differ across reruns of the same seed")
	}
}

// TestTypedGapFailureShape digs into the seq-gap-storm failure: the
// error must be a *core.StreamGapError whose fields name the actual
// gap, and no stream tables may be rendered.
func TestTypedGapFailureShape(t *testing.T) {
	s, ok := Get("seq-gap-storm")
	if !ok {
		t.Fatal("seq-gap-storm not registered")
	}
	r, err := Run(s, 2)
	if err != nil {
		t.Fatal(err)
	}
	if r.Stream != nil {
		t.Fatal("faulted stream rendered tables despite dropped frames")
	}
	var gap *core.StreamGapError
	if !errors.As(r.StreamErr, &gap) {
		t.Fatalf("stream error %v is not a *core.StreamGapError", r.StreamErr)
	}
	if gap.Lost != gap.To-gap.From-1 {
		t.Fatalf("inconsistent gap arithmetic: %+v", gap)
	}
	if !strings.Contains(gap.Error(), "stream lost") {
		t.Fatalf("gap error lost its message: %q", gap.Error())
	}
}

// TestSpillRoundTrip writes a scenario's transformed corpus to disk
// and evaluates it out-of-core: the spilled partition store must
// render byte-identically to the in-memory batch run — the bridge the
// elastic-scheduler chaos tests and bskysim -scenario -spill rely on.
func TestSpillRoundTrip(t *testing.T) {
	s, ok := Get("celebrity-skew")
	if !ok {
		t.Fatal("celebrity-skew not registered")
	}
	dir := t.TempDir()
	m, err := s.Spill(dir)
	if err != nil {
		t.Fatal(err)
	}
	if m.Seed != s.Config.Seed {
		t.Fatalf("manifest seed = %d, want %d", m.Seed, s.Config.Seed)
	}
	c, err := core.OpenCorpus(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, err := analysis.RunAllDisk(c, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := analysis.RunAll(s.Dataset(), 2)
	if analysis.RenderText(got) != analysis.RenderText(want) {
		t.Fatal("spilled scenario corpus diverges from the in-memory evaluation")
	}
}

// TestMigrationSpecShared pins the no-drift satellite: the
// migration-wave scenario must be seeded from the same MigrationSpec
// the examples/migration walkthrough reads.
func TestMigrationSpecShared(t *testing.T) {
	spec := MigrationSpec()
	if spec.PDSCount < 2 {
		t.Fatalf("spec.PDSCount = %d: the walkthrough needs a source and a destination", spec.PDSCount)
	}
	if spec.MoverHandle == "" || spec.HandleDomain == "" || spec.WaveSize < 1 {
		t.Fatalf("degenerate spec %+v", spec)
	}
	s, ok := Get("migration-wave")
	if !ok {
		t.Fatal("migration-wave not registered")
	}
	if s.Config.Seed != spec.Seed {
		t.Fatalf("migration-wave seed %d drifted from MigrationSpec seed %d", s.Config.Seed, spec.Seed)
	}
	ds := s.Dataset()
	base := s.Config
	var waved int
	for _, hu := range ds.HandleUpdates {
		if strings.HasSuffix(hu.NewHandle, "."+spec.HandleDomain) {
			waved++
		}
	}
	if waved != spec.WaveSize {
		t.Fatalf("dataset carries %d wave handle updates, want %d (config %+v)", waved, spec.WaveSize, base)
	}
}
