package scenario

import (
	"fmt"
	"math/rand"
	"time"

	"blueskies/internal/core"
)

// MigrationConfig is the one seeded configuration shared by the
// migration-wave scenario and the examples/migration walkthrough, so
// the documented single-account migration and the registry's mass
// wave cannot drift apart.
type MigrationConfig struct {
	// Seed seeds both the example's simulated network and the
	// migration-wave scenario's corpus.
	Seed int64
	// PDSCount is how many simulated PDSes the example provisions;
	// the wave rotates movers across the same count.
	PDSCount int
	// MoverHandle is the example's migrating account.
	MoverHandle string
	// WaveSize is how many accounts the migration-wave scenario moves.
	WaveSize int
	// HandleDomain is the domain migrated handles land under.
	HandleDomain string
}

// MigrationSpec returns the shared migration configuration.
func MigrationSpec() MigrationConfig {
	return MigrationConfig{
		Seed:         defaultSeed,
		PDSCount:     2,
		MoverHandle:  "mover.bsky.social",
		WaveSize:     160,
		HandleDomain: "migrated.example",
	}
}

// migrationWave moves WaveSize accounts to new PDSes and appends the
// handle updates their PLC operations would emit — the mass version of
// the examples/migration walkthrough. Appended updates come last in
// index order, so they deterministically win the "final handle" fold
// in S5 even for users that already updated during generation.
func migrationWave(ds *core.Dataset, rng *rand.Rand) {
	spec := MigrationSpec()
	for w := 0; w < spec.WaveSize; w++ {
		i := rng.Intn(len(ds.Users))
		u := &ds.Users[i]
		u.PDS = fmt.Sprintf("migration-pds-%d", rng.Intn(spec.PDSCount))
		ds.HandleUpdates = append(ds.HandleUpdates, core.HandleUpdate{
			DID:       u.DID,
			NewHandle: fmt.Sprintf("mover%04d.%s", w, spec.HandleDomain),
			Time:      u.CreatedAt.Add(24 * time.Hour),
		})
	}
}
