package scenario

import (
	"context"
	"sync/atomic"
	"testing"
	"time"

	"blueskies/internal/analysis"
	"blueskies/internal/core"
	"blueskies/internal/events"
	"blueskies/internal/synth"
)

// TestBackpressureBoundedByConsumerLag extends the DrainSequencers/
// TrimTo guarantee from PR 2 to a flow-controlled fast replay. The
// producer replays unpaced — the whole eight-week measurement window
// in well under a second, orders of magnitude past the ≥8× real-time
// bar — but refuses to run more than lagWindow frames ahead of the
// consumer. The run can only finish if TrimTo actually releases
// retention as the consumer progresses: a tap that buffered a second
// corpus (SequencerStream semantics) would pin the backlog above the
// window and starve the producer forever. The backlog high-water is
// then provably bounded by consumer lag, and the output must still be
// byte-identical to the batch golden.
func TestBackpressureBoundedByConsumerLag(t *testing.T) {
	const (
		lagWindow = 32
		blockSize = 128
	)
	ds := synth.Generate(synth.Config{Scale: defaultScale, Seed: defaultSeed})
	golden := analysis.RunAll(ds, 4)
	fireFrames, labelFrames := synth.ReplayFrames(ds, blockSize)
	if total := fireFrames + labelFrames; total < 4*lagWindow {
		t.Fatalf("corpus replays in %d frames; need ≥ %d for the lag window to bind", total, 4*lagWindow)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	fire := events.NewSequencer(0, 0)
	labeler := events.NewSequencer(0, 0)
	blocks, errs := core.DrainSequencers(ctx, fire, labeler)

	var high, stalls int
	var timedOut atomic.Bool
	deadline := time.Now().Add(30 * time.Second)
	hooks := synth.ReplayHooks{BlockSize: blockSize, OnEmit: func(int, int64) {
		if n := fire.BacklogLen() + labeler.BacklogLen(); n > high {
			high = n
		}
		waited := false
		for fire.BacklogLen()+labeler.BacklogLen() > lagWindow {
			if time.Now().After(deadline) {
				// The consumer never released the backlog — fail loudly
				// but let the replay finish so the run can unwind.
				timedOut.Store(true)
				return
			}
			waited = true
			time.Sleep(100 * time.Microsecond)
		}
		if waited {
			stalls++
		}
	}}
	replayErr := make(chan error, 1)
	go func() { replayErr <- synth.ReplayWithHooks(ds, fire, labeler, hooks) }()

	reports, runErr := analysis.NewFullEngine().Workers(4).RunSource(&analysis.StreamSource{Blocks: blocks})
	if err := <-replayErr; err != nil {
		t.Fatal(err)
	}
	if runErr != nil {
		t.Fatal(runErr)
	}
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if timedOut.Load() {
		t.Fatalf("producer starved: backlog stayed above %d frames for 30s — the drain tap is not trimming", lagWindow)
	}
	// OnEmit samples right after an emit the flow control admitted, so
	// the bound is the lag window plus the frame just emitted.
	if high > lagWindow+1 {
		t.Fatalf("backlog high-water %d frames exceeds the consumer-lag bound %d", high, lagWindow+1)
	}
	if stalls == 0 {
		t.Fatalf("flow control never engaged (high-water %d of %d frames): the corpus is too small to probe backpressure", high, fireFrames+labelFrames)
	}
	if final := fire.BacklogLen() + labeler.BacklogLen(); final > 1 {
		t.Fatalf("sequencers retain %d frames after the drain", final)
	}
	if analysis.RenderText(analysis.Canonicalize(reports)) != analysis.RenderText(golden) {
		t.Fatal("fast replay under backpressure diverges from the batch golden")
	}
}
