package scenario

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"blueskies/internal/analysis"
	"blueskies/internal/core"
	"blueskies/internal/synth"
)

// The built-in scenario suite. Every scenario here is sized for CI:
// the default config generates in well under a second and the three
// evaluations (baseline, golden batch, faulted stream) dominate the
// runtime. Fault positions are derived from the replay frame counts,
// never hard-coded, so resizing a config cannot silently move a fault
// outside the stream.

const (
	defaultScale = 2000
	defaultSeed  = 424242

	// spamFloodLabels outnumbers the largest generated community
	// labeler (≈6.8k applied labels at the label divisor cap), so the
	// flood labeler must take rank 1 of Table 3.
	spamFloodLabels = 12000

	// spamLabelerDID / spamLabelerName identify the flood labeler the
	// spam-flood transform announces.
	spamLabelerDID  = "did:plc:scenariospamflood0"
	spamLabelerName = "Spam Sweeper"
)

func defaultConfig() synth.Config {
	return synth.Config{Scale: defaultScale, Seed: defaultSeed}
}

// assertUnchangedGolden is the assertion for fault-only scenarios (no
// transform): the stream survives byte-identically, and the golden
// batch run trivially equals the untransformed baseline — pinning that
// fault schedules never leak into generation.
func assertUnchangedGolden(r *Result) error {
	if err := AssertStreamMatchesBatch(r); err != nil {
		return err
	}
	if diff := analysis.DiffReports(r.Batch, r.Baseline); len(diff) > 0 {
		return fmt.Errorf("scenario %s: fault-only scenario shifted tables %v vs the baseline", r.Scenario.Name, diff)
	}
	return nil
}

func init() {
	Register(&Scenario{
		Name:        "labeler-outage",
		Description: "labeler stream stalls mid-corpus and recovers; the drained backlog absorbs the outage and tables stay byte-identical",
		Class:       GoldenParity,
		Config:      defaultConfig(),
		Partitions:  4,
		Faults: func(fire, labeler int64) *core.FaultSchedule {
			// Two outages: one a quarter in, one halfway. The stall
			// pauses the labeler consumer while the replay keeps
			// emitting — recovery is the backlog drain that follows.
			return core.NewFaultSchedule(
				core.StreamFault{Stream: synth.StreamLabeler, Seq: max64(2, labeler/4), Action: core.FaultStall, Stall: 15 * time.Millisecond},
				core.StreamFault{Stream: synth.StreamLabeler, Seq: max64(3, labeler/2), Action: core.FaultStall, Stall: 15 * time.Millisecond},
			)
		},
		Assert: assertUnchangedGolden,
	})

	Register(&Scenario{
		Name:        "relay-reconnect",
		Description: "relay reconnects re-serve backfill windows: duplicated firehose frames must dedup to byte-identical tables",
		Class:       GoldenParity,
		Config:      defaultConfig(),
		Partitions:  4,
		Faults: func(fire, labeler int64) *core.FaultSchedule {
			// Three reconnects across the stream; each re-delivers its
			// frame once, exercising the s <= lastSeq dedup branch.
			return core.NewFaultSchedule(
				core.StreamFault{Stream: synth.StreamFirehose, Seq: max64(2, fire/4), Action: core.FaultDuplicate},
				core.StreamFault{Stream: synth.StreamFirehose, Seq: max64(3, fire/2), Action: core.FaultDuplicate},
				core.StreamFault{Stream: synth.StreamFirehose, Seq: max64(4, 3*fire/4), Action: core.FaultDuplicate},
				core.StreamFault{Stream: synth.StreamLabeler, Seq: max64(2, labeler/2), Action: core.FaultDuplicate},
			)
		},
		Assert: assertUnchangedGolden,
	})

	Register(&Scenario{
		Name:        "seq-gap-storm",
		Description: "a storm of dropped firehose frames mid-stream: the run must fail loudly with a typed *core.StreamGapError, never render thinned tables",
		Class:       TypedFailure,
		Config:      defaultConfig(),
		Partitions:  4,
		Faults: func(fire, labeler int64) *core.FaultSchedule {
			// Interior drops only: seq 1 slips under the gap detector
			// (no delivered predecessor) and the final marker must
			// survive so the consumer cannot wait forever.
			var faults []core.StreamFault
			for _, s := range []int64{fire / 3, fire/3 + 1, fire / 2, 2 * fire / 3} {
				faults = append(faults, core.StreamFault{
					Stream: synth.StreamFirehose, Seq: clamp64(s, 2, fire-1), Action: core.FaultDrop,
				})
			}
			return core.NewFaultSchedule(faults...)
		},
		Assert: AssertTypedGapFailure,
	})

	Register(&Scenario{
		Name:        "spam-flood",
		Description: "a bot-hunting community labeler floods spam labels; Table 3's top community labeler shifts as §5 moderation volume predicts",
		Class:       TableShift,
		Config:      defaultConfig(),
		Partitions:  4,
		Transform:   spamFlood,
		Assert: func(r *Result) error {
			if err := AssertStreamMatchesBatch(r); err != nil {
				return err
			}
			if got, want := r.Counts.Labels, r.BaselineCounts.Labels+spamFloodLabels; got != want {
				return fmt.Errorf("scenario %s: labels = %d, want %d (baseline + flood)", r.Scenario.Name, got, want)
			}
			base, got := analysis.ReportByID(r.Baseline, "T3"), analysis.ReportByID(r.Batch, "T3")
			if base == nil || got == nil {
				return fmt.Errorf("scenario %s: T3 missing from reports", r.Scenario.Name)
			}
			if strings.Contains(base.String(), spamLabelerName) {
				return fmt.Errorf("scenario %s: baseline T3 already lists %q", r.Scenario.Name, spamLabelerName)
			}
			rows := got.Rows
			if len(rows) == 0 || !strings.Contains(strings.Join(rows[0], " "), spamLabelerName) {
				return fmt.Errorf("scenario %s: %q did not take Table 3 rank 1:\n%s", r.Scenario.Name, spamLabelerName, got)
			}
			return nil
		},
	})

	Register(&Scenario{
		Name:        "migration-wave",
		Description: "a mass PDS migration wave (seeded from examples/migration): handle updates surge and §5's identity table shifts accordingly",
		Class:       TableShift,
		Config:      synth.Config{Scale: defaultScale, Seed: MigrationSpec().Seed},
		Partitions:  4,
		Transform:   migrationWave,
		Assert: func(r *Result) error {
			if err := AssertStreamMatchesBatch(r); err != nil {
				return err
			}
			spec := MigrationSpec()
			if got, want := r.Counts.HandleUpdates, r.BaselineCounts.HandleUpdates+spec.WaveSize; got != want {
				return fmt.Errorf("scenario %s: handle updates = %d, want %d (baseline + wave)", r.Scenario.Name, got, want)
			}
			diff := analysis.DiffReports(r.Batch, r.Baseline)
			if !contains(diff, "S5") {
				return fmt.Errorf("scenario %s: S5 identity table did not shift (diff %v)", r.Scenario.Name, diff)
			}
			s5 := analysis.ReportByID(r.Batch, "S5")
			if s5 == nil || !strings.Contains(s5.String(), fmt.Sprint(r.Counts.HandleUpdates)) {
				return fmt.Errorf("scenario %s: S5 does not report the surged handle-update count %d:\n%s", r.Scenario.Name, r.Counts.HandleUpdates, s5)
			}
			return nil
		},
	})

	Register(&Scenario{
		Name:        "celebrity-skew",
		Description: "one DID holds half the follow graph; the engine must stay byte-identical across batch and stream despite the pathological skew",
		Class:       GoldenParity,
		Config:      defaultConfig(),
		Partitions:  8,
		Transform:   celebritySkew,
		Faults: func(fire, labeler int64) *core.FaultSchedule {
			return core.NewFaultSchedule(
				core.StreamFault{Stream: synth.StreamFirehose, Seq: max64(2, fire/2), Action: core.FaultStall, Stall: 10 * time.Millisecond},
			)
		},
		Assert: func(r *Result) error {
			if err := AssertStreamMatchesBatch(r); err != nil {
				return err
			}
			if r.Counts != r.BaselineCounts {
				return fmt.Errorf("scenario %s: skew changed record counts: %+v vs %+v", r.Scenario.Name, r.Counts, r.BaselineCounts)
			}
			if diff := analysis.DiffReports(r.Batch, r.Baseline); len(diff) == 0 {
				return fmt.Errorf("scenario %s: skew did not reach any table", r.Scenario.Name)
			}
			return nil
		},
	})

	Register(&Scenario{
		Name:        "pds-churn",
		Description: "a third of accounts churn across PDSes while the stream suffers mixed duplicate+stall storms; tables stay byte-identical",
		Class:       GoldenParity,
		Config:      defaultConfig(),
		Partitions:  4,
		Transform:   pdsChurn,
		Faults: func(fire, labeler int64) *core.FaultSchedule {
			return core.NewFaultSchedule(
				core.StreamFault{Stream: synth.StreamFirehose, Seq: max64(2, fire/5), Action: core.FaultDuplicate},
				core.StreamFault{Stream: synth.StreamFirehose, Seq: max64(3, 2*fire/5), Action: core.FaultStall, Stall: 10 * time.Millisecond},
				core.StreamFault{Stream: synth.StreamFirehose, Seq: max64(4, 4*fire/5), Action: core.FaultDuplicate},
				core.StreamFault{Stream: synth.StreamLabeler, Seq: max64(2, labeler/3), Action: core.FaultStall, Stall: 10 * time.Millisecond},
			)
		},
		Assert: AssertStreamMatchesBatch,
	})

	Register(&Scenario{
		Name:        "fast-replay",
		Description: "unpaced replay (>>1× real time) over small frames with consumer stalls: the drain tap must trim as it goes, never buffer a second corpus",
		Class:       GoldenParity,
		Config:      defaultConfig(),
		Partitions:  4,
		BlockSize:   256,
		Faults: func(fire, labeler int64) *core.FaultSchedule {
			// Periodic consumer pauses force the producer ahead; the
			// assertion checks the backlog was released afterwards.
			var faults []core.StreamFault
			for i := int64(1); i <= 4; i++ {
				faults = append(faults, core.StreamFault{
					Stream: synth.StreamFirehose, Seq: clamp64(i*fire/5, 2, fire-1),
					Action: core.FaultStall, Stall: 5 * time.Millisecond,
				})
			}
			return core.NewFaultSchedule(faults...)
		},
		Assert: func(r *Result) error {
			if err := assertUnchangedGolden(r); err != nil {
				return err
			}
			if r.FinalBacklog > 2 {
				return fmt.Errorf("scenario %s: sequencers retain %d frames after the drain (want ≤ 2): the tap buffered instead of trimming", r.Scenario.Name, r.FinalBacklog)
			}
			return nil
		},
	})
}

// spamFlood announces a bot-hunting community labeler and floods
// applied "spam" labels onto random posts — the §5-style moderation
// shock that must surface as Table 3's new top community labeler.
func spamFlood(ds *core.Dataset, rng *rand.Rand) {
	ds.Labelers = append(ds.Labelers, core.Labeler{
		DID:        spamLabelerDID,
		Name:       spamLabelerName,
		Values:     []string{"spam", "!warn"},
		Announced:  synth.LabelersOpen,
		Functional: true,
		Active:     true,
		Hosting:    "cloud",
		Automated:  true,
		Operator:   "scenario harness",
		About:      "bot-flood stress labeler",
	})
	for i := 0; i < spamFloodLabels; i++ {
		p := &ds.Posts[rng.Intn(len(ds.Posts))]
		l := core.Label{
			Src:            spamLabelerDID,
			URI:            p.URI,
			Val:            "spam",
			Kind:           core.SubjectPost,
			SubjectCreated: p.CreatedAt,
			FreshSubject:   true,
		}
		// Automated sweeps react within seconds to minutes.
		l.Applied = p.CreatedAt.Add(time.Duration(1+rng.Intn(300)) * time.Second)
		if l.Applied.Before(synth.LabelersOpen) {
			l.Applied = synth.LabelersOpen.Add(time.Duration(1+rng.Intn(300)) * time.Second)
		}
		ds.Labels = append(ds.Labels, l)
	}
}

// celebritySkew hands user 0 as many followers as the rest of the
// graph combined — one DID holding half the follow mass.
func celebritySkew(ds *core.Dataset, _ *rand.Rand) {
	var total int64
	for i := range ds.Users {
		total += int64(ds.Users[i].Followers)
	}
	ds.Users[0].Followers = int(total)
}

// pdsChurn rehomes roughly a third of accounts onto rotated PDS
// labels — migration churn without identity changes.
func pdsChurn(ds *core.Dataset, rng *rand.Rand) {
	for i := range ds.Users {
		if rng.Float64() < 1.0/3 {
			ds.Users[i].PDS = fmt.Sprintf("churn-pds-%d", rng.Intn(8))
		}
	}
}

func contains(ss []string, want string) bool {
	for _, s := range ss {
		if s == want {
			return true
		}
	}
	return false
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func clamp64(v, lo, hi int64) int64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
