// Package scenario is the adversarial & stress scenario harness: a
// registry of named, seeded fault-injection workloads that drive the
// replay/stream path through the misbehavior a live network exhibits —
// labeler outages, relay reconnects, sequence-gap storms, PDS churn,
// migration waves, spam floods, pathological skew, faster-than-real-
// time replay — and assert an invariant about the outcome.
//
// Every scenario is deterministic: the corpus comes from a seeded
// synth config, the transform draws from the scenario's own disjoint
// RNG stream (synth.ScenarioRNG), and the fault schedule is a fixed
// set of (stream, seq) → action points. Same seed ⇒ byte-identical
// run, which is what turns each robustness claim into a reusable
// regression (DESIGN.md §13).
package scenario

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"blueskies/internal/analysis"
	"blueskies/internal/core"
	"blueskies/internal/events"
	"blueskies/internal/synth"
)

// Class names the assertion taxonomy a scenario belongs to.
type Class string

const (
	// GoldenParity: the engine survives the faults and the streamed
	// tables are byte-identical to the unfaulted batch evaluation of
	// the same (possibly transformed) corpus — the unfaulted golden.
	GoldenParity Class = "golden-parity"
	// TypedFailure: the faults corrupt the stream; the run must fail
	// loudly with a typed error (*core.StreamGapError), never render
	// silently thinned tables.
	TypedFailure Class = "typed-failure"
	// TableShift: the transform changes the corpus the way the paper's
	// §5 moderation analysis predicts — a named table must shift in
	// the predicted direction versus the untransformed baseline, and
	// the faulted stream run must still match the batch run
	// byte-for-byte.
	TableShift Class = "table-shift"
)

// Scenario is one named, seeded fault-injection workload.
type Scenario struct {
	Name        string
	Description string
	Class       Class
	// Config seeds the base corpus generation.
	Config synth.Config
	// Partitions is how many ways Spill splits the corpus for
	// scheduler and bench runs (minimum 1).
	Partitions int
	// BlockSize overrides the replay's records-per-frame chunking
	// (<= 0 means synth.ReplayBlockSize). Smaller blocks mean more
	// frames — the knob the fast-replay scenarios turn to make
	// backpressure measurable on a test-sized corpus.
	BlockSize int
	// Transform deterministically rewrites the generated dataset (bot
	// floods, migration waves, skew). rng is the scenario's own seeded
	// stream; transforms must preserve the orderings core.Split
	// depends on (users DID-ordered, daily date-ordered).
	Transform func(ds *core.Dataset, rng *rand.Rand)
	// Faults builds the stream fault schedule from the replay's frame
	// counts (stream 0 = firehose, stream 1 = labeler). Nil means an
	// unfaulted replay.
	Faults func(fire, labeler int64) *core.FaultSchedule
	// Assert judges a completed run; non-nil for every registered
	// scenario.
	Assert func(r *Result) error
}

// Result is everything one end-to-end scenario run produced.
type Result struct {
	Scenario *Scenario
	// Baseline is the untransformed, unfaulted corpus evaluated by the
	// batch engine — the reference for table-shift predictions.
	Baseline []*analysis.Report
	// Batch is the transformed corpus through the batch engine — the
	// unfaulted golden for stream parity.
	Batch []*analysis.Report
	// Stream is the transformed corpus replayed through the faulted
	// drain-mode stream path (nil when StreamErr is set).
	Stream []*analysis.Report
	// StreamErr is the stream run's loud failure, if any.
	StreamErr error
	// BaselineCounts and Counts are the record counts before and after
	// Transform.
	BaselineCounts, Counts core.CollectionCounts
	// FireFrames and LabelFrames are the per-stream replay frame
	// counts the fault schedule was built from.
	FireFrames, LabelFrames int64
	// BacklogHighWater is the maximum combined retained-frame count
	// observed across both sequencers during the faulted replay — the
	// backpressure measurement the >>1× real-time scenarios bound.
	BacklogHighWater int
	// FinalBacklog is the combined retained-frame count after the run:
	// ≤ 2 (at most the end-of-stream markers) proves the drain tap
	// trimmed as it went instead of buffering a second corpus.
	FinalBacklog int
}

// Records is the transformed corpus's total record count.
func (r *Result) Records() int { return r.Counts.Total() }

var (
	regMu    sync.Mutex
	registry = map[string]*Scenario{}
	// regOrder keeps registration deterministic without iterating the
	// map (registration happens in init order, which is fixed).
	regOrder []string
)

// Register adds a scenario to the registry; it panics on a duplicate
// or unnamed scenario (registration is programmer intent, not input).
func Register(s *Scenario) {
	if s == nil || s.Name == "" {
		panic("scenario: Register of unnamed scenario")
	}
	if s.Assert == nil {
		panic("scenario: Register of " + s.Name + " without an Assert")
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[s.Name]; dup {
		panic("scenario: duplicate Register of " + s.Name)
	}
	registry[s.Name] = s
	regOrder = append(regOrder, s.Name)
}

// Get returns a registered scenario by name.
func Get(name string) (*Scenario, bool) {
	regMu.Lock()
	defer regMu.Unlock()
	s, ok := registry[name]
	return s, ok
}

// Names returns the registered scenario names, sorted.
func Names() []string {
	regMu.Lock()
	defer regMu.Unlock()
	out := append([]string(nil), regOrder...)
	sort.Strings(out)
	return out
}

// All returns the registered scenarios in name order.
func All() []*Scenario {
	names := Names()
	regMu.Lock()
	defer regMu.Unlock()
	out := make([]*Scenario, 0, len(names))
	for _, n := range names {
		out = append(out, registry[n])
	}
	return out
}

// Dataset materializes the scenario's corpus: the seeded base
// generation plus the deterministic transform.
func (s *Scenario) Dataset() *core.Dataset {
	ds := synth.Generate(s.Config)
	if s.Transform != nil {
		s.Transform(ds, synth.ScenarioRNG(s.Config.Seed, s.Name))
	}
	return ds
}

// Spill writes the scenario's transformed corpus to dir as a
// Partitions-way disk partition store, ready for out-of-core or
// elastic-scheduler evaluation (bskyanalyze -corpus, sched.New).
func (s *Scenario) Spill(dir string) (*core.Manifest, error) {
	n := s.Partitions
	if n < 1 {
		n = 1
	}
	parts, m := core.Split(s.Dataset(), n)
	m.Seed = s.Config.Seed
	return m, core.WriteCorpus(dir, parts, m)
}

// Run executes the scenario end-to-end with the given engine worker
// count (0 = autotuned): baseline batch evaluation, transform, golden
// batch evaluation, then a faulted drain-mode stream replay. The
// returned error is infrastructural (replay emit failure); the stream
// consumer's loud failures land in Result.StreamErr, where Assert
// judges them.
func Run(s *Scenario, workers int) (*Result, error) {
	base := synth.Generate(s.Config)
	r := &Result{Scenario: s, BaselineCounts: base.Counts()}
	r.Baseline = analysis.RunAll(base, workers)

	ds := base
	if s.Transform != nil {
		s.Transform(ds, synth.ScenarioRNG(s.Config.Seed, s.Name))
	}
	r.Counts = ds.Counts()
	r.Batch = analysis.RunAll(ds, workers)

	r.FireFrames, r.LabelFrames = synth.ReplayFrames(ds, s.BlockSize)
	var fs *core.FaultSchedule
	if s.Faults != nil {
		fs = s.Faults(r.FireFrames, r.LabelFrames)
	}
	stream, high, final, streamErr, err := replayFaulted(ds, fs, s.BlockSize, workers)
	if err != nil {
		return nil, fmt.Errorf("scenario %s: replay: %w", s.Name, err)
	}
	r.BacklogHighWater = high
	r.FinalBacklog = final
	r.StreamErr = streamErr
	if streamErr == nil {
		r.Stream = stream
	}
	return r, nil
}

// replayFaulted replays ds through a faulted drain-mode stream tap
// into the full engine, sampling the combined sequencer backlog after
// every emitted frame. streamErr carries the consumer side's loud
// failure; err is infrastructural.
func replayFaulted(ds *core.Dataset, fs *core.FaultSchedule, blockSize, workers int) (reports []*analysis.Report, high, final int, streamErr, err error) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	fire := events.NewSequencer(0, 0)
	labeler := events.NewSequencer(0, 0)
	blocks, errs := core.DrainSequencersFaulted(ctx, fs, fire, labeler)

	// The hook runs on the replay goroutine; the final value is read
	// only after the replay error channel delivers (happens-before).
	hooks := synth.ReplayHooks{BlockSize: blockSize, OnEmit: func(int, int64) {
		if n := fire.BacklogLen() + labeler.BacklogLen(); n > high {
			high = n
		}
	}}
	replayErr := make(chan error, 1)
	go func() { replayErr <- synth.ReplayWithHooks(ds, fire, labeler, hooks) }()

	src := &analysis.StreamSource{Blocks: blocks}
	reports, runErr := analysis.NewFullEngine().Workers(workers).RunSource(src)
	if rerr := <-replayErr; rerr != nil {
		return nil, high, 0, nil, rerr
	}
	for e := range errs {
		if e != nil && streamErr == nil {
			streamErr = e
		}
	}
	if streamErr == nil && runErr != nil {
		streamErr = runErr
	}
	final = fire.BacklogLen() + labeler.BacklogLen()
	return analysis.Canonicalize(reports), high, final, streamErr, nil
}

// AssertStreamMatchesBatch is the golden-parity core: the faulted
// stream run succeeded and rendered byte-identical tables to the
// unfaulted batch evaluation of the same corpus.
func AssertStreamMatchesBatch(r *Result) error {
	if r.StreamErr != nil {
		return fmt.Errorf("scenario %s: stream run failed: %w", r.Scenario.Name, r.StreamErr)
	}
	if diff := analysis.DiffReports(r.Stream, r.Batch); len(diff) > 0 {
		return fmt.Errorf("scenario %s: stream run diverges from the unfaulted batch golden on %v", r.Scenario.Name, diff)
	}
	return nil
}

// AssertTypedGapFailure demands the stream run failed loudly with a
// typed *core.StreamGapError — the fail-loud contract for corpora the
// faults actually thinned.
func AssertTypedGapFailure(r *Result) error {
	if r.StreamErr == nil {
		return fmt.Errorf("scenario %s: faulted stream rendered tables; want a typed loud failure", r.Scenario.Name)
	}
	var gap *core.StreamGapError
	if !errors.As(r.StreamErr, &gap) {
		return fmt.Errorf("scenario %s: stream failure %v is not a *core.StreamGapError", r.Scenario.Name, r.StreamErr)
	}
	if gap.Lost < 1 || gap.From < 1 || gap.To <= gap.From {
		return fmt.Errorf("scenario %s: malformed gap report %+v", r.Scenario.Name, gap)
	}
	return nil
}
