package core

import (
	"context"
	"fmt"
	"sync"
	"time"

	"blueskies/internal/cbor"
	"blueskies/internal/events"
)

// This file defines the record-stream side of the dataset model: the
// RecordBlock unit that streaming consumers (the analysis engine's
// StreamSource) ingest, the wire codec that carries dataset records
// over sequencer frames, and the taps that turn live event streams
// into block channels. Batch producers materialize a Dataset; stream
// producers emit the same records as bounded blocks so a consumer
// never has to hold the corpus in memory.

// RecordBlock is one bounded batch of measurement records, the unit a
// streaming analysis consumes. Any subset of the fields may be set;
// records of each collection arrive in their canonical dataset order.
//
//wire:v1 fields=10
type RecordBlock struct {
	// Header carries the corpus-level facts; producers send it before
	// any records.
	Header *StreamHeader
	// Labelers extends the labeler population append-only. Producers
	// must announce a labeler before its first label so the stream's
	// DID index assigns the same indexes a batch traversal would.
	Labelers []Labeler

	Users         []User
	Posts         []Post
	Days          []DayActivity
	Labels        []Label
	FeedGens      []FeedGen
	Domains       []Domain
	HandleUpdates []HandleUpdate

	// Events counts raw firehose frames observed alongside the block
	// (live collection only; replays carry totals in the header).
	Events EventCounts
}

// Len returns the number of records in the block (header and labeler
// announcements excluded).
func (b *RecordBlock) Len() int {
	return len(b.Users) + len(b.Posts) + len(b.Days) + len(b.Labels) +
		len(b.FeedGens) + len(b.Domains) + len(b.HandleUpdates)
}

// StreamHeader is the corpus-level metadata of a record stream — the
// scalar facts a batch run reads off the materialized Dataset.
//
//wire:v1 fields=5
type StreamHeader struct {
	Scale                  int
	WindowStart, WindowEnd time.Time
	Firehose               EventCounts
	NonBskyEvents          int64
}

// ---- wire structs ----
//
// Timestamps travel as UnixNano so replayed records round-trip
// losslessly (the protocol's millisecond strings would truncate the
// sub-second reaction times of §6). Zero times encode as 0.

func nsOf(t time.Time) int64 {
	if t.IsZero() {
		return 0
	}
	return t.UnixNano()
}

func timeOf(ns int64) time.Time {
	if ns == 0 {
		return time.Time{}
	}
	return time.Unix(0, ns).UTC()
}

//wire:v1 fields=14
type wireUser struct {
	DID       string `cbor:"did"`
	Handle    string `cbor:"handle,omitempty"`
	DIDMethod string `cbor:"method,omitempty"`
	PDS       string `cbor:"pds,omitempty"`
	Proof     string `cbor:"proof,omitempty"`
	CreatedNS int64  `cbor:"created,omitempty"`
	Lang      string `cbor:"lang,omitempty"`
	Followers int    `cbor:"followers,omitempty"`
	Following int    `cbor:"following,omitempty"`
	Posts     int    `cbor:"posts,omitempty"`
	Likes     int    `cbor:"likes,omitempty"`
	Reposts   int    `cbor:"reposts,omitempty"`
	Blocks    int    `cbor:"blocks,omitempty"`
	Deleted   bool   `cbor:"deleted,omitempty"`
}

//wire:v1 fields=8
type wirePost struct {
	URI       string `cbor:"uri"`
	AuthorIdx int    `cbor:"author,omitempty"`
	Lang      string `cbor:"lang,omitempty"`
	CreatedNS int64  `cbor:"created,omitempty"`
	Likes     int    `cbor:"likes,omitempty"`
	Reposts   int    `cbor:"reposts,omitempty"`
	HasMedia  bool   `cbor:"media,omitempty"`
	AltText   bool   `cbor:"alt,omitempty"`
}

//wire:v1 fields=8
type wireDay struct {
	DateNS       int64          `cbor:"date"`
	ActiveUsers  int            `cbor:"active,omitempty"`
	Posts        int            `cbor:"posts,omitempty"`
	Likes        int            `cbor:"likes,omitempty"`
	Reposts      int            `cbor:"reposts,omitempty"`
	Follows      int            `cbor:"follows,omitempty"`
	Blocks       int            `cbor:"blocks,omitempty"`
	ActiveByLang map[string]int `cbor:"byLang,omitempty"`
}

//wire:v1 fields=14
type wireFeedGen struct {
	URI          string  `cbor:"uri"`
	CreatorIdx   int     `cbor:"creator,omitempty"`
	Platform     string  `cbor:"platform,omitempty"`
	DisplayName  string  `cbor:"name,omitempty"`
	Description  string  `cbor:"desc,omitempty"`
	Lang         string  `cbor:"lang,omitempty"`
	CreatedNS    int64   `cbor:"created,omitempty"`
	Likes        int     `cbor:"likes,omitempty"`
	Posts        int     `cbor:"posts,omitempty"`
	LastPostNS   int64   `cbor:"lastPost,omitempty"`
	Reachable    bool    `cbor:"reachable,omitempty"`
	Personalized bool    `cbor:"personalized,omitempty"`
	LabeledShare float64 `cbor:"labeledShare,omitempty"`
	TopLabel     string  `cbor:"topLabel,omitempty"`
}

//wire:v1 fields=6
type wireDomain struct {
	Name          string `cbor:"name"`
	IANAID        int    `cbor:"ianaID,omitempty"`
	RegistrarName string `cbor:"registrar,omitempty"`
	CCTLD         bool   `cbor:"ccTLD,omitempty"`
	TrancoRank    int    `cbor:"tranco,omitempty"`
	Subdomains    int    `cbor:"subdomains,omitempty"`
}

//wire:v1 fields=3
type wireHandleUpdate struct {
	DID       string `cbor:"did"`
	NewHandle string `cbor:"handle,omitempty"`
	TimeNS    int64  `cbor:"time,omitempty"`
}

// wireLabel is the disk-block representation of a label. On the live
// wire labels travel on labeler-stream frames (events.Labels) instead;
// the disk store keeps each partition self-contained in one file, so
// its blocks carry labels inline.
//
//wire:v1 fields=8
type wireLabel struct {
	Src       string `cbor:"src"`
	URI       string `cbor:"uri,omitempty"`
	Val       string `cbor:"val,omitempty"`
	Neg       bool   `cbor:"neg,omitempty"`
	Kind      string `cbor:"kind,omitempty"`
	AppliedNS int64  `cbor:"applied,omitempty"`
	SubjectNS int64  `cbor:"subject,omitempty"`
	Fresh     bool   `cbor:"fresh,omitempty"`
}

//wire:v1 fields=12
type wireLabeler struct {
	DID         string   `cbor:"did"`
	Name        string   `cbor:"name,omitempty"`
	Official    bool     `cbor:"official,omitempty"`
	Values      []string `cbor:"values,omitempty"`
	AnnouncedNS int64    `cbor:"announced,omitempty"`
	Functional  bool     `cbor:"functional,omitempty"`
	Active      bool     `cbor:"active,omitempty"`
	Hosting     string   `cbor:"hosting,omitempty"`
	Automated   bool     `cbor:"automated,omitempty"`
	Likes       int      `cbor:"likes,omitempty"`
	Operator    string   `cbor:"operator,omitempty"`
	About       string   `cbor:"about,omitempty"`
}

//wire:v1 fields=8
type wireHeader struct {
	Scale         int   `cbor:"scale,omitempty"`
	WindowStartNS int64 `cbor:"windowStart,omitempty"`
	WindowEndNS   int64 `cbor:"windowEnd,omitempty"`
	Commits       int64 `cbor:"commits,omitempty"`
	Identity      int64 `cbor:"identity,omitempty"`
	Handle        int64 `cbor:"handle,omitempty"`
	Tombstone     int64 `cbor:"tombstone,omitempty"`
	NonBskyEvents int64 `cbor:"nonBsky,omitempty"`
}

// wireBlock is the encoded form of one RecordBlock. Two carriers use
// it: #sim.block stream frames (minus labels, which travel on the
// protocol's own labeler stream frames — BlockEvent enforces that) and
// the disk partition store, whose blocks carry labels inline.
//
//wire:v1 fields=9
type wireBlock struct {
	Header        *wireHeader        `cbor:"header,omitempty"`
	Labelers      []wireLabeler      `cbor:"labelers,omitempty"`
	Users         []wireUser         `cbor:"users,omitempty"`
	Posts         []wirePost         `cbor:"posts,omitempty"`
	Days          []wireDay          `cbor:"days,omitempty"`
	Labels        []wireLabel        `cbor:"labels,omitempty"`
	FeedGens      []wireFeedGen      `cbor:"feedGens,omitempty"`
	Domains       []wireDomain       `cbor:"domains,omitempty"`
	HandleUpdates []wireHandleUpdate `cbor:"handleUpdates,omitempty"`
}

const (
	simKindBlock = "block"
	simKindEOF   = "eof"
)

// BlockEvent encodes a RecordBlock (labels excluded — see LabelsEvent)
// as a #sim.block event. The sequencer assigns Seq at emit time.
func BlockEvent(b *RecordBlock) (*events.Sim, error) {
	if len(b.Labels) > 0 {
		return nil, fmt.Errorf("core: labels travel on labeler stream frames, not sim blocks")
	}
	body, err := MarshalBlock(b)
	if err != nil {
		return nil, fmt.Errorf("core: encode sim block: %w", err)
	}
	return &events.Sim{Kind: simKindBlock, Body: body}, nil
}

// blockToWire converts a RecordBlock (labels included) to its encoded
// form — shared by the stream frame codec and the disk partition store.
func blockToWire(b *RecordBlock) *wireBlock {
	wb := &wireBlock{
		Labelers:      make([]wireLabeler, 0, len(b.Labelers)),
		Users:         make([]wireUser, 0, len(b.Users)),
		Posts:         make([]wirePost, 0, len(b.Posts)),
		Days:          make([]wireDay, 0, len(b.Days)),
		Labels:        make([]wireLabel, 0, len(b.Labels)),
		FeedGens:      make([]wireFeedGen, 0, len(b.FeedGens)),
		Domains:       make([]wireDomain, 0, len(b.Domains)),
		HandleUpdates: make([]wireHandleUpdate, 0, len(b.HandleUpdates)),
	}
	if h := b.Header; h != nil {
		wb.Header = &wireHeader{
			Scale:         h.Scale,
			WindowStartNS: nsOf(h.WindowStart),
			WindowEndNS:   nsOf(h.WindowEnd),
			Commits:       h.Firehose.Commits,
			Identity:      h.Firehose.Identity,
			Handle:        h.Firehose.Handle,
			Tombstone:     h.Firehose.Tombstone,
			NonBskyEvents: h.NonBskyEvents,
		}
	}
	for _, l := range b.Labelers {
		wb.Labelers = append(wb.Labelers, wireLabeler{
			DID: l.DID, Name: l.Name, Official: l.Official, Values: l.Values,
			AnnouncedNS: nsOf(l.Announced), Functional: l.Functional, Active: l.Active,
			Hosting: l.Hosting, Automated: l.Automated, Likes: l.Likes,
			Operator: l.Operator, About: l.About,
		})
	}
	for _, u := range b.Users {
		wb.Users = append(wb.Users, wireUser{
			DID: u.DID, Handle: u.Handle, DIDMethod: u.DIDMethod, PDS: u.PDS,
			Proof: string(u.Proof), CreatedNS: nsOf(u.CreatedAt), Lang: u.Lang,
			Followers: u.Followers, Following: u.Following, Posts: u.Posts,
			Likes: u.Likes, Reposts: u.Reposts, Blocks: u.Blocks, Deleted: u.Deleted,
		})
	}
	for _, p := range b.Posts {
		wb.Posts = append(wb.Posts, wirePost{
			URI: p.URI, AuthorIdx: p.AuthorIdx, Lang: p.Lang, CreatedNS: nsOf(p.CreatedAt),
			Likes: p.Likes, Reposts: p.Reposts, HasMedia: p.HasMedia, AltText: p.AltText,
		})
	}
	for _, d := range b.Days {
		wb.Days = append(wb.Days, wireDay{
			DateNS: nsOf(d.Date), ActiveUsers: d.ActiveUsers, Posts: d.Posts,
			Likes: d.Likes, Reposts: d.Reposts, Follows: d.Follows, Blocks: d.Blocks,
			ActiveByLang: d.ActiveByLang,
		})
	}
	for _, l := range b.Labels {
		wb.Labels = append(wb.Labels, wireLabel{
			Src: l.Src, URI: l.URI, Val: l.Val, Neg: l.Neg, Kind: string(l.Kind),
			AppliedNS: nsOf(l.Applied), SubjectNS: nsOf(l.SubjectCreated), Fresh: l.FreshSubject,
		})
	}
	for _, fg := range b.FeedGens {
		wb.FeedGens = append(wb.FeedGens, wireFeedGen{
			URI: fg.URI, CreatorIdx: fg.CreatorIdx, Platform: fg.Platform,
			DisplayName: fg.DisplayName, Description: fg.Description, Lang: fg.Lang,
			CreatedNS: nsOf(fg.CreatedAt), Likes: fg.Likes, Posts: fg.Posts,
			LastPostNS: nsOf(fg.LastPost), Reachable: fg.Reachable,
			Personalized: fg.Personalized, LabeledShare: fg.LabeledShare, TopLabel: fg.TopLabel,
		})
	}
	for _, d := range b.Domains {
		wb.Domains = append(wb.Domains, wireDomain{
			Name: d.Name, IANAID: d.IANAID, RegistrarName: d.RegistrarName,
			CCTLD: d.CCTLD, TrancoRank: d.TrancoRank, Subdomains: d.Subdomains,
		})
	}
	for _, h := range b.HandleUpdates {
		wb.HandleUpdates = append(wb.HandleUpdates, wireHandleUpdate{
			DID: h.DID, NewHandle: h.NewHandle, TimeNS: nsOf(h.Time),
		})
	}
	return wb
}

// MarshalBlock encodes a RecordBlock to its canonical wire bytes — the
// same encoding the disk-store frames and #sim.block events carry.
// Exported for carriers outside this package that need to ship dataset
// records losslessly (the remote-evaluation shard state embeds a
// header + labeler block this way). It encodes at the current format
// version; use MarshalBlockVersion to downgrade for older peers.
func MarshalBlock(b *RecordBlock) ([]byte, error) {
	return MarshalBlockVersion(b, DiskFormatVersion)
}

// MarshalBlockVersion encodes a RecordBlock at an explicit block
// format version: 1 is the bare row-oriented CBOR wireBlock (what
// every pre-v2 peer decodes), 2 the codec-tagged columnar encoding,
// 3 the fixed-width columnar encoding (columnar3.go).
func MarshalBlockVersion(b *RecordBlock, version int) ([]byte, error) {
	switch version {
	case 1:
		return cbor.Marshal(blockToWire(b))
	case 2:
		return encodeColumnarBlock(b), nil
	case 3:
		return encodeColumnarBlockV3(b), nil
	default:
		return nil, fmt.Errorf("core: cannot encode block format v%d (writer supports 1–%d)", version, DiskFormatVersion)
	}
}

// UnmarshalBlock decodes MarshalBlock's wire bytes at any supported
// version, dispatching on the leading byte: a v≥2 payload starts with
// its codec tag (possibly carrying the LZ compression bit), while a
// bare v1 CBOR map's first byte is ≥ 0xa0 (major type 5), so the
// spaces cannot collide.
func UnmarshalBlock(data []byte) (*RecordBlock, error) {
	b, _, err := UnmarshalBlockDict(data, false)
	return b, err
}

// UnmarshalBlockDict is UnmarshalBlock optionally surfacing the
// columnar dictionary view for intern-table fusion (nil for v1/CBOR
// payloads, which carry no dictionary).
func UnmarshalBlockDict(data []byte, wantDict bool) (*RecordBlock, *DictBlock, error) {
	if len(data) == 0 {
		return nil, nil, fmt.Errorf("core: empty record block")
	}
	tag, body := data[0], data[1:]
	if tag>>5 != 5 && tag&blockCodecLZ != 0 {
		inner, err := expandLZPayload(body)
		if err != nil {
			return nil, nil, err
		}
		tag, body = tag&^byte(blockCodecLZ), inner
	}
	var db *DictBlock
	if wantDict {
		db = &DictBlock{}
	}
	switch {
	case tag == blockCodecColumnar:
		b, err := decodeColumnarBlock(body, db)
		if err != nil {
			return nil, nil, fmt.Errorf("core: decode record block: %w", err)
		}
		return b, db, nil
	case tag == blockCodecColumnar3:
		b, err := decodeColumnarBlockV3(body, db)
		if err != nil {
			return nil, nil, fmt.Errorf("core: decode record block: %w", err)
		}
		return b, db, nil
	case tag == blockCodecCBOR:
		var wb wireBlock
		if err := cbor.Unmarshal(body, &wb); err != nil {
			return nil, nil, fmt.Errorf("core: decode record block: %w", err)
		}
		return blockFromWire(&wb), nil, nil
	case tag>>5 == 5: // bare CBOR map: the legacy v1 encoding
		var wb wireBlock
		if err := cbor.Unmarshal(data, &wb); err != nil {
			return nil, nil, fmt.Errorf("core: decode record block: %w", err)
		}
		return blockFromWire(&wb), nil, nil
	default:
		return nil, nil, fmt.Errorf("core: record block carries unknown codec tag %#x", data[0])
	}
}

// EOFEvent returns the end-of-stream marker a replay emits after its
// last record frame.
func EOFEvent() *events.Sim { return &events.Sim{Kind: simKindEOF} }

// LabelsEvent encodes one batch of labels as a labeler-stream frame,
// carrying the sim-extension fields for lossless replay.
func LabelsEvent(ls []Label) *events.Labels {
	out := &events.Labels{Labels: make([]events.Label, 0, len(ls))}
	for _, l := range ls {
		out.Labels = append(out.Labels, events.Label{
			Src: l.Src, URI: l.URI, Val: l.Val, Neg: l.Neg,
			CTS:        events.FormatTime(l.Applied),
			SimApplied: nsOf(l.Applied),
			SimSubject: nsOf(l.SubjectCreated),
			SimFresh:   l.FreshSubject,
			SimKind:    string(l.Kind),
		})
	}
	return out
}

// labelFromWire reconstructs a core label from its stream frame,
// preferring the lossless sim-extension fields and falling back to
// what a live collector can derive (CTS, URI-shape subject kind).
func labelFromWire(l *events.Label) Label {
	out := Label{Src: l.Src, URI: l.URI, Val: l.Val, Neg: l.Neg}
	if l.SimApplied != 0 {
		out.Applied = timeOf(l.SimApplied)
	} else if t, err := events.ParseTime(l.CTS); err == nil {
		out.Applied = t
	}
	out.SubjectCreated = timeOf(l.SimSubject)
	out.FreshSubject = l.SimFresh
	if l.SimKind != "" {
		out.Kind = SubjectKind(l.SimKind)
	} else if len(l.URI) > 5 && l.URI[:5] == "at://" {
		out.Kind = SubjectPost
	} else {
		out.Kind = SubjectAccount
	}
	return out
}

// DecodeStreamEvent turns one decoded stream event into a RecordBlock.
// It returns eof=true on the replay end-of-stream marker; events that
// carry no records (info frames, commit payloads) yield a block with
// only Events counts set, and block=nil means "nothing to ingest".
func DecodeStreamEvent(ev any) (block *RecordBlock, eof bool, err error) {
	switch e := ev.(type) {
	case *events.Sim:
		if e.Kind == simKindEOF {
			return nil, true, nil
		}
		if e.Kind != simKindBlock {
			return nil, false, fmt.Errorf("core: unknown sim frame kind %q", e.Kind)
		}
		b, err := UnmarshalBlock(e.Body)
		if err != nil {
			return nil, false, fmt.Errorf("core: decode sim block: %w", err)
		}
		if len(b.Labels) > 0 {
			// Mirror BlockEvent's sender-side rule structurally: on the
			// live wire labels travel only on labeler stream frames,
			// behind the enumerate-before-consume gate. Inline labels
			// are a disk-store affordance (PartitionReader.Next), never
			// a stream one — a frame carrying them would bypass the
			// gate and the per-partition label bases.
			return nil, false, fmt.Errorf("core: sim block carries inline labels; labels travel on labeler stream frames")
		}
		return b, false, nil
	case *events.Labels:
		b := &RecordBlock{Labels: make([]Label, 0, len(e.Labels))}
		for i := range e.Labels {
			b.Labels = append(b.Labels, labelFromWire(&e.Labels[i]))
		}
		return b, false, nil
	case *events.Commit:
		return &RecordBlock{Events: EventCounts{Commits: 1}}, false, nil
	case *events.Identity:
		return &RecordBlock{Events: EventCounts{Identity: 1}}, false, nil
	case *events.Handle:
		b := &RecordBlock{Events: EventCounts{Handle: 1}}
		if t, err := events.ParseTime(e.Time); err == nil {
			b.HandleUpdates = []HandleUpdate{{DID: e.DID, NewHandle: e.Handle, Time: t}}
		} else {
			b.HandleUpdates = []HandleUpdate{{DID: e.DID, NewHandle: e.Handle}}
		}
		return b, false, nil
	case *events.Tombstone:
		return &RecordBlock{Events: EventCounts{Tombstone: 1}}, false, nil
	case *events.Info:
		return nil, false, nil
	}
	return nil, false, fmt.Errorf("core: unexpected stream event %T", ev)
}

func blockFromWire(wb *wireBlock) *RecordBlock {
	b := &RecordBlock{}
	if wh := wb.Header; wh != nil {
		b.Header = &StreamHeader{
			Scale:       wh.Scale,
			WindowStart: timeOf(wh.WindowStartNS),
			WindowEnd:   timeOf(wh.WindowEndNS),
			Firehose: EventCounts{
				Commits: wh.Commits, Identity: wh.Identity,
				Handle: wh.Handle, Tombstone: wh.Tombstone,
			},
			NonBskyEvents: wh.NonBskyEvents,
		}
	}
	for _, l := range wb.Labelers {
		b.Labelers = append(b.Labelers, Labeler{
			DID: l.DID, Name: l.Name, Official: l.Official, Values: l.Values,
			Announced: timeOf(l.AnnouncedNS), Functional: l.Functional, Active: l.Active,
			Hosting: l.Hosting, Automated: l.Automated, Likes: l.Likes,
			Operator: l.Operator, About: l.About,
		})
	}
	for _, u := range wb.Users {
		b.Users = append(b.Users, User{
			DID: u.DID, Handle: u.Handle, DIDMethod: u.DIDMethod, PDS: u.PDS,
			Proof: ProofMethod(u.Proof), CreatedAt: timeOf(u.CreatedNS), Lang: u.Lang,
			Followers: u.Followers, Following: u.Following, Posts: u.Posts,
			Likes: u.Likes, Reposts: u.Reposts, Blocks: u.Blocks, Deleted: u.Deleted,
		})
	}
	for _, p := range wb.Posts {
		b.Posts = append(b.Posts, Post{
			URI: p.URI, AuthorIdx: p.AuthorIdx, Lang: p.Lang, CreatedAt: timeOf(p.CreatedNS),
			Likes: p.Likes, Reposts: p.Reposts, HasMedia: p.HasMedia, AltText: p.AltText,
		})
	}
	for _, d := range wb.Days {
		b.Days = append(b.Days, DayActivity{
			Date: timeOf(d.DateNS), ActiveUsers: d.ActiveUsers, Posts: d.Posts,
			Likes: d.Likes, Reposts: d.Reposts, Follows: d.Follows, Blocks: d.Blocks,
			ActiveByLang: d.ActiveByLang,
		})
	}
	for _, l := range wb.Labels {
		b.Labels = append(b.Labels, Label{
			Src: l.Src, URI: l.URI, Val: l.Val, Neg: l.Neg, Kind: SubjectKind(l.Kind),
			Applied: timeOf(l.AppliedNS), SubjectCreated: timeOf(l.SubjectNS), FreshSubject: l.Fresh,
		})
	}
	for _, fg := range wb.FeedGens {
		b.FeedGens = append(b.FeedGens, FeedGen{
			URI: fg.URI, CreatorIdx: fg.CreatorIdx, Platform: fg.Platform,
			DisplayName: fg.DisplayName, Description: fg.Description, Lang: fg.Lang,
			CreatedAt: timeOf(fg.CreatedNS), Likes: fg.Likes, Posts: fg.Posts,
			LastPost: timeOf(fg.LastPostNS), Reachable: fg.Reachable,
			Personalized: fg.Personalized, LabeledShare: fg.LabeledShare, TopLabel: fg.TopLabel,
		})
	}
	for _, d := range wb.Domains {
		b.Domains = append(b.Domains, Domain{
			Name: d.Name, IANAID: d.IANAID, RegistrarName: d.RegistrarName,
			CCTLD: d.CCTLD, TrancoRank: d.TrancoRank, Subdomains: d.Subdomains,
		})
	}
	for _, h := range wb.HandleUpdates {
		b.HandleUpdates = append(b.HandleUpdates, HandleUpdate{
			DID: h.DID, NewHandle: h.NewHandle, Time: timeOf(h.TimeNS),
		})
	}
	return b
}

// streamGate delays secondary stream consumers until the primary
// stream has delivered its first block — the "enumerate labelers
// before consuming their streams" ordering of the paper's methodology,
// applied to multiplexed subscriptions. A primary that ends without
// ever delivering a block aborts the gate so secondaries shut down
// instead of consuming labels nobody announced.
type streamGate struct {
	ch   chan struct{}
	once sync.Once
	ok   bool
}

func newStreamGate() *streamGate { return &streamGate{ch: make(chan struct{})} }

func (g *streamGate) open() { g.once.Do(func() { g.ok = true; close(g.ch) }) }

// abort releases waiters with ok=false; a no-op once opened.
func (g *streamGate) abort() { g.once.Do(func() { close(g.ch) }) }

// wait blocks until the gate opens; false means the primary aborted or
// ctx ended first.
func (g *streamGate) wait(ctx context.Context) bool {
	select {
	case <-g.ch:
		return g.ok
	case <-ctx.Done():
		return false
	}
}

// SequencerStream taps in-process sequencers directly and multiplexes
// their decoded record blocks into one channel — the zero-transport
// version of Collector.Stream used by replay tests and bskyanalyze
// -follow. The first sequencer is the primary (the firehose): the
// others are only tapped after its first block is delivered, so a
// replay's corpus header precedes every label that references an
// announced labeler; a primary that ends without delivering anything
// shuts the secondaries down. Each sequencer's retained backlog is
// drained first, then live frames, until its end-of-stream marker
// arrives or ctx is canceled; a sequence gap (frames the sequencer
// dropped past a slow consumer) is reported as an error rather than
// silently thinning the corpus. Beyond the gate, blocks of different
// sequencers interleave arbitrarily; each collection's records keep
// their emission order, which is all the analysis accumulators depend
// on.
func SequencerStream(ctx context.Context, seqs ...*events.Sequencer) (<-chan RecordBlock, <-chan error) {
	return sequencerStream(ctx, false, seqs)
}

// DrainSequencers is SequencerStream for pipelines that own their
// sequencers exclusively (no other subscribers, no cursor clients):
// frames are pulled from the backlog and trimmed as soon as they are
// processed, so a replay emitting concurrently with consumption keeps
// retention bounded by the consumer's lag instead of the whole encoded
// corpus — the memory contract of the streaming path. The live
// subscription is used only as a wake-up signal; records are always
// read from the backlog, so a slow consumer can never cause fan-out
// drops.
func DrainSequencers(ctx context.Context, seqs ...*events.Sequencer) (<-chan RecordBlock, <-chan error) {
	return sequencerStream(ctx, true, seqs)
}

func sequencerStream(ctx context.Context, drain bool, seqs []*events.Sequencer) (<-chan RecordBlock, <-chan error) {
	return sequencerStreamFaulted(ctx, drain, nil, seqs)
}

func sequencerStreamFaulted(ctx context.Context, drain bool, fs *FaultSchedule, seqs []*events.Sequencer) (<-chan RecordBlock, <-chan error) {
	out := make(chan RecordBlock, 8)
	errs := make(chan error, len(seqs))
	gate := newStreamGate()
	var wg sync.WaitGroup
	for i, seq := range seqs {
		wg.Add(1)
		var faults *streamFaults
		if fs != nil {
			faults = &streamFaults{fs: fs, stream: i}
		}
		go func(seq *events.Sequencer, primary bool, faults *streamFaults) {
			defer wg.Done()
			if primary {
				defer gate.abort()
			} else {
				if !gate.wait(ctx) {
					return
				}
			}
			var lastSeq int64
			onForward := func() {
				if primary {
					gate.open()
				}
			}
			if err := consumeSequencer(ctx, seq, drain, &lastSeq, out, onForward, faults); err != nil {
				errs <- err
			}
		}(seq, i == 0, faults)
	}
	go func() {
		wg.Wait()
		close(out)
		close(errs)
	}()
	return out, errs
}

// consumeSequencer forwards one sequencer's frames until end of
// stream. In drain mode frames are pulled from the backlog in chunks
// and trimmed once processed; otherwise the retained backlog is
// replayed and live frames followed via the subscription channel.
// The drain cursor is tracked separately from the gap detector's
// lastSeq: a frame a fault drops must still advance the pull position
// (and be trimmed), or Backfill would re-serve it forever, while
// lastSeq must stay put so the gap is detected on the next delivery.
func consumeSequencer(ctx context.Context, seq *events.Sequencer, drain bool, lastSeq *int64, out chan<- RecordBlock, onForward func(), faults *streamFaults) error {
	if drain {
		live, cancel := seq.Subscribe(1) // wake-up signal only
		defer cancel()
		cursor := *lastSeq
		for {
			frames, _ := seq.Backfill(cursor)
			if len(frames) == 0 {
				select {
				case <-ctx.Done():
					return nil
				case _, ok := <-live:
					if !ok {
						return nil
					}
					continue
				}
			}
			for _, f := range frames {
				s, done, err := forwardFrame(ctx, f, lastSeq, out, onForward, faults)
				if s > cursor {
					cursor = s
				}
				seq.TrimTo(cursor)
				if err != nil || done {
					return err
				}
			}
		}
	}
	live, cancel := seq.Subscribe(1024)
	defer cancel()
	frames, _ := seq.Backfill(0)
	for _, f := range frames {
		_, done, err := forwardFrame(ctx, f, lastSeq, out, onForward, faults)
		if err != nil || done {
			return err
		}
	}
	for {
		select {
		case <-ctx.Done():
			return nil
		case f, ok := <-live:
			if !ok {
				return nil
			}
			_, done, err := forwardFrame(ctx, f, lastSeq, out, onForward, faults)
			if err != nil || done {
				return err
			}
		}
	}
}

// forwardFrame decodes one frame and sends its block, skipping
// duplicates of the backfill; onForward fires after each delivered
// block. A sequence gap after the first frame means the sequencer
// dropped frames past this consumer — a typed *StreamGapError, since a
// measurement stream that silently thins its corpus corrupts every
// downstream statistic. seq is the frame's decoded sequence number (-1
// when unsequenced) even when the frame is skipped or faulted; done
// reports end-of-stream (marker seen or ctx canceled).
func forwardFrame(ctx context.Context, frame []byte, lastSeq *int64, out chan<- RecordBlock, onForward func(), faults *streamFaults) (seq int64, done bool, err error) {
	ev, err := events.Decode(frame)
	if err != nil {
		return -1, false, err
	}
	s := events.Seq(ev)
	fault, faulted := faults.lookup(s)
	if faulted {
		switch fault.Action {
		case FaultDrop:
			// Vanishes before the dedup/gap bookkeeping: lastSeq stays
			// put, so the next delivered frame trips the gap detector.
			return s, false, nil
		case FaultStall:
			time.Sleep(fault.Stall)
		}
	}
	if s >= 0 {
		if s <= *lastSeq {
			return s, false, nil
		}
		if *lastSeq > 0 && s > *lastSeq+1 {
			return s, false, &StreamGapError{Lost: s - *lastSeq - 1, From: *lastSeq, To: s}
		}
		*lastSeq = s
	}
	block, eof, err := DecodeStreamEvent(ev)
	if err != nil {
		return s, false, err
	}
	if eof {
		return s, true, nil
	}
	if block == nil {
		return s, false, nil
	}
	select {
	case out <- *block:
		onForward()
	case <-ctx.Done():
		return s, true, nil
	}
	if faulted && fault.Action == FaultDuplicate {
		// Replay the frame once, unfaulted: the re-decoded copy lands
		// in the s <= lastSeq dedup branch above, exercising the same
		// path a reconnecting relay's backfill overlap takes.
		return forwardFrame(ctx, frame, lastSeq, out, onForward, nil)
	}
	return s, false, nil
}
