package core

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"time"

	"blueskies/internal/dnssim"
	"blueskies/internal/events"
	"blueskies/internal/identity"
	"blueskies/internal/lexicon"
	"blueskies/internal/plc"
	"blueskies/internal/repo"
	"blueskies/internal/whois"
	"blueskies/internal/xrpc"
)

// Collector runs the paper's data-collection methodology against a
// live deployment (§3): identifier enumeration via sync.listRepos,
// DID document downloads, repository snapshots via sync.getRepo,
// Firehose subscription, labeler stream consumption, feed generator
// crawls, active handle verification (DNS TXT + well-known), and
// WHOIS scans.
type Collector struct {
	// RelayURL is the relay base URL (listRepos/getRepo/firehose).
	RelayURL string
	// PLCURL is the PLC directory base URL.
	PLCURL string
	// AppViewURL serves getFeedGenerator/getFeed.
	AppViewURL string
	// DNSAddr is the resolver target for _atproto TXT proofs.
	DNSAddr string
	// WhoisAddr is the WHOIS server address.
	WhoisAddr string
	// LabelerURLs lists labeler service endpoints to subscribe to.
	LabelerURLs []string
}

// RepoListing is one sync.listRepos entry.
type RepoListing struct {
	DID  string `json:"did"`
	Head string `json:"head"`
	Rev  string `json:"rev"`
}

// ListIdentifiers enumerates every repository known to the relay.
func (c *Collector) ListIdentifiers(ctx context.Context) ([]RepoListing, error) {
	client := xrpc.NewClient(c.RelayURL)
	var out []RepoListing
	cursor := ""
	for {
		params := url.Values{"limit": {"100"}}
		if cursor != "" {
			params.Set("cursor", cursor)
		}
		var page struct {
			Cursor string        `json:"cursor"`
			Repos  []RepoListing `json:"repos"`
		}
		if err := client.Query(ctx, "com.atproto.sync.listRepos", params, &page); err != nil {
			return nil, err
		}
		out = append(out, page.Repos...)
		if page.Cursor == "" {
			return out, nil
		}
		cursor = page.Cursor
	}
}

// FetchDIDDocument downloads one DID document from the directory.
func (c *Collector) FetchDIDDocument(did identity.DID) (identity.Document, error) {
	return plc.NewClient(c.PLCURL).Resolve(did)
}

// FetchRepo downloads and parses a repository snapshot via the relay.
func (c *Collector) FetchRepo(ctx context.Context, did identity.DID) (*repo.Repo, error) {
	client := xrpc.NewClient(c.RelayURL)
	carBytes, err := client.QueryBytes(ctx, "com.atproto.sync.getRepo", url.Values{"did": {string(did)}})
	if err != nil {
		return nil, err
	}
	return repo.LoadCAR(bytes.NewReader(carBytes), nil)
}

// CollectFirehose subscribes to the firehose and counts event types
// until n events arrive or the timeout elapses.
func (c *Collector) CollectFirehose(n int, timeout time.Duration) (EventCounts, error) {
	sub, err := events.Subscribe(c.RelayURL, "com.atproto.sync.subscribeRepos", 0)
	if err != nil {
		return EventCounts{}, err
	}
	defer sub.Close()
	var counts EventCounts
	deadline := time.Now().Add(timeout)                     //lint:walltime live-network collection deadline, not corpus bytes
	for i := 0; i < n && time.Now().Before(deadline); i++ { //lint:walltime live-network collection deadline, not corpus bytes
		ev, err := sub.NextTimeout(time.Until(deadline)) //lint:walltime live-network collection deadline, not corpus bytes
		if err != nil {
			break
		}
		switch ev.(type) {
		case *events.Commit:
			counts.Commits++
		case *events.Identity:
			counts.Identity++
		case *events.Handle:
			counts.Handle++
		case *events.Tombstone:
			counts.Tombstone++
		}
	}
	return counts, nil
}

// CollectLabels consumes each labeler stream from sequence zero (full
// backfill) until expected labels arrive or the timeout elapses.
func (c *Collector) CollectLabels(expected int, timeout time.Duration) ([]events.Label, error) {
	var out []events.Label
	deadline := time.Now().Add(timeout) //lint:walltime live-network collection deadline, not corpus bytes
	for _, endpoint := range c.LabelerURLs {
		sub, err := events.Subscribe(endpoint, "com.atproto.label.subscribeLabels", 0)
		if err != nil {
			// The paper found only 46 of 62 endpoints functional; an
			// unreachable labeler is data, not an error.
			continue
		}
		for len(out) < expected && time.Now().Before(deadline) { //lint:walltime live-network collection deadline, not corpus bytes
			ev, err := sub.NextTimeout(200 * time.Millisecond)
			if err != nil {
				break
			}
			if ls, ok := ev.(*events.Labels); ok {
				out = append(out, ls.Labels...)
			}
		}
		sub.Close()
	}
	return out, nil
}

// Stream subscribes to the relay firehose and every configured labeler
// stream (cursor 0, i.e. full backfill then live) and multiplexes the
// decoded record blocks into one channel — the streaming counterpart
// of Snapshot. Mirroring the paper's methodology (labelers are
// enumerated before their streams are consumed), labeler subscriptions
// only start after the firehose delivers its first block, so a
// replayed corpus header announces the labeler population before any
// label references it. Each subscription runs until its end-of-stream
// marker (replayed corpora), a terminal read error, or ctx
// cancellation; the block channel closes when every subscription has
// ended. Errors are reported on the second channel (buffered; read
// after the block channel closes). Records of one collection preserve
// their stream order; collections from different subscriptions
// interleave arbitrarily, which the analysis accumulators tolerate by
// design.
func (c *Collector) Stream(ctx context.Context) (<-chan RecordBlock, <-chan error) {
	out := make(chan RecordBlock, 8)
	errs := make(chan error, 1+len(c.LabelerURLs))
	gate := newStreamGate()
	var wg sync.WaitGroup
	consume := func(base, nsid string, primary bool) {
		defer wg.Done()
		if primary {
			// Abort (not open) on a primary that never delivers: the
			// labeler consumers must not run on a stream whose labelers
			// were never enumerated.
			defer gate.abort()
		} else {
			if !gate.wait(ctx) {
				return
			}
		}
		sub, err := events.Subscribe(base, nsid, 0)
		if err != nil {
			// Mirror CollectLabels: an unreachable labeler is data,
			// not a stream-fatal error.
			if !primary {
				return
			}
			errs <- err
			return
		}
		defer sub.Close()
		var lastSeq int64
		for ctx.Err() == nil {
			ev, err := sub.NextTimeout(250 * time.Millisecond)
			if err != nil {
				var ne net.Error
				if errors.As(err, &ne) && ne.Timeout() {
					continue // idle stream; re-check ctx
				}
				errs <- err
				return
			}
			// Silent sequence gaps (frames the server dropped past a
			// slow subscriber) would thin the corpus undetectably.
			if s := events.Seq(ev); s >= 0 {
				if s <= lastSeq {
					continue
				}
				if lastSeq > 0 && s > lastSeq+1 {
					errs <- fmt.Errorf("core: %s stream lost %d frames (seq %d → %d)", nsid, s-lastSeq-1, lastSeq, s)
					return
				}
				lastSeq = s
			}
			block, eof, err := DecodeStreamEvent(ev)
			if err != nil {
				errs <- err
				return
			}
			if eof {
				return
			}
			if block == nil {
				continue
			}
			select {
			case out <- *block:
				if primary {
					gate.open()
				}
			case <-ctx.Done():
				return
			}
		}
	}
	wg.Add(1 + len(c.LabelerURLs))
	go consume(c.RelayURL, "com.atproto.sync.subscribeRepos", true)
	for _, u := range c.LabelerURLs {
		go consume(u, "com.atproto.label.subscribeLabels", false)
	}
	go func() {
		wg.Wait()
		close(out)
		close(errs)
	}()
	return out, errs
}

// FeedGeneratorView is the AppView's getFeedGenerator response.
type FeedGeneratorView struct {
	URI         string
	DisplayName string
	Description string
	LikeCount   int
	IsOnline    bool
	IsValid     bool
	PostURIs    []string
}

// CrawlFeedGenerator fetches generator metadata and its feed contents.
func (c *Collector) CrawlFeedGenerator(ctx context.Context, feedURI string) (FeedGeneratorView, error) {
	client := xrpc.NewClient(c.AppViewURL)
	var meta struct {
		View struct {
			URI         string `json:"uri"`
			DisplayName string `json:"displayName"`
			Description string `json:"description"`
			LikeCount   int    `json:"likeCount"`
		} `json:"view"`
		IsOnline bool `json:"isOnline"`
		IsValid  bool `json:"isValid"`
	}
	if err := client.Query(ctx, "app.bsky.feed.getFeedGenerator", url.Values{"feed": {feedURI}}, &meta); err != nil {
		return FeedGeneratorView{}, err
	}
	view := FeedGeneratorView{
		URI: meta.View.URI, DisplayName: meta.View.DisplayName,
		Description: meta.View.Description, LikeCount: meta.View.LikeCount,
		IsOnline: meta.IsOnline, IsValid: meta.IsValid,
	}
	var feed struct {
		Feed []struct {
			Post map[string]any `json:"post"`
		} `json:"feed"`
	}
	if err := client.Query(ctx, "app.bsky.feed.getFeed", url.Values{"feed": {feedURI}, "limit": {"100"}}, &feed); err != nil {
		return view, nil // metadata ok, posts unavailable (§3's 93 %)
	}
	for _, item := range feed.Feed {
		if uri, ok := item.Post["uri"].(string); ok {
			view.PostURIs = append(view.PostURIs, uri)
		}
	}
	return view, nil
}

// VerifyHandle actively verifies handle ownership: DNS TXT first, then
// the well-known HTTPS file, returning the proof method that worked.
func (c *Collector) VerifyHandle(handle identity.Handle, did identity.DID, wellKnownBase string) (ProofMethod, error) {
	res := dnssim.NewResolver(c.DNSAddr)
	vals, err := res.LookupTXT(handle.TXTRecordName())
	if err == nil {
		for _, v := range vals {
			if strings.TrimPrefix(v, "did=") == string(did) {
				return ProofDNSTXT, nil
			}
		}
	}
	if wellKnownBase != "" {
		resp, err := http.Get(wellKnownBase + identity.WellKnownPath)
		if err == nil {
			defer resp.Body.Close()
			buf := make([]byte, 256)
			n, _ := resp.Body.Read(buf)
			if strings.TrimSpace(string(buf[:n])) == string(did) {
				return ProofWellKnown, nil
			}
		}
	}
	return "", fmt.Errorf("core: no ownership proof for %s", handle)
}

// ScanWHOIS looks up each registered domain.
func (c *Collector) ScanWHOIS(domains []string) ([]whois.Record, error) {
	var client whois.Client
	out := make([]whois.Record, 0, len(domains))
	for _, d := range domains {
		rec, err := client.Scan(c.WhoisAddr, d)
		if err != nil {
			return nil, err
		}
		out = append(out, rec)
	}
	return out, nil
}

// Snapshot runs the full pipeline against a live network and builds a
// Dataset: the live-protocol reproduction mode.
func (c *Collector) Snapshot(ctx context.Context, window time.Duration) (*Dataset, error) {
	ds := &Dataset{Scale: 1, WindowStart: time.Now().Add(-window), WindowEnd: time.Now()} //lint:walltime live crawl window: this dataset is a wall-clock snapshot by definition
	listings, err := c.ListIdentifiers(ctx)
	if err != nil {
		return nil, err
	}
	for _, listing := range listings {
		did := identity.DID(listing.DID)
		u := User{DID: listing.DID, DIDMethod: string(did.Method())}
		if doc, err := c.FetchDIDDocument(did); err == nil {
			u.Handle = string(doc.Handle())
			u.PDS = doc.PDSEndpoint()
		}
		if r, err := c.FetchRepo(ctx, did); err == nil {
			if recs, err := r.List(lexicon.Post); err == nil {
				u.Posts = len(recs)
				for _, rec := range recs {
					created, _ := lexicon.CreatedAt(rec.Value)
					ds.Posts = append(ds.Posts, Post{
						URI:       rec.URI.String(),
						AuthorIdx: len(ds.Users),
						Lang:      firstLang(rec.Value),
						CreatedAt: created,
					})
				}
			}
			if recs, err := r.List(lexicon.Like); err == nil {
				u.Likes = len(recs)
			}
			if recs, err := r.List(lexicon.Follow); err == nil {
				u.Following = len(recs)
			}
		}
		ds.Users = append(ds.Users, u)
	}
	labels, err := c.CollectLabels(1<<20, 2*time.Second)
	if err != nil {
		return nil, err
	}
	for _, l := range labels {
		kind := SubjectAccount
		if strings.HasPrefix(l.URI, "at://") {
			kind = SubjectPost
		}
		applied, _ := events.ParseTime(l.CTS)
		ds.Labels = append(ds.Labels, Label{
			Src: l.Src, URI: l.URI, Val: l.Val, Neg: l.Neg, Kind: kind, Applied: applied,
		})
	}
	return ds, nil
}

func firstLang(rec map[string]any) string {
	langs := lexicon.PostLangs(rec)
	if len(langs) > 0 {
		return langs[0]
	}
	return ""
}
