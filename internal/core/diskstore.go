package core

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"hash"
	"hash/crc32"
	"hash/fnv"
	"io"
	"os"
	"path/filepath"

	"blueskies/internal/cbor"
)

// This file implements the disk-backed partition store: a corpus
// persisted as one block file per partition plus a JSON manifest
// sidecar, so corpora larger than memory generate, ship, and evaluate
// partition by partition (DESIGN.md §8).
//
// Layout of a store directory:
//
//	manifest.json   versioned envelope around the core.Manifest
//	part-00000.cbor partition 0's block file
//	part-00001.cbor ...
//
// A block file is a stream of framed record blocks carrying labels
// inline — on the live wire labels travel on labeler-stream frames,
// but a disk partition is self-contained:
//
//	"BSKYPART"  8-byte magic
//	uint32      format version (big-endian)
//	frames      uint32 payload length | uint32 FNV-1a checksum | payload
//	end frame   length 0, checksum 0
//
// Version 1 frames carry a bare row-oriented DAG-CBOR wireBlock map.
// Version ≥ 2 frames start with a one-byte codec tag followed by the
// payload — blockCodecColumnar for the v2 columnar encoding
// (columnar.go), blockCodecColumnar3 for the fixed-width v3 encoding
// (columnar3.go), blockCodecCBOR for a tagged CBOR wireBlock — so a
// reader dispatches per frame and versions can mix codecs within one
// file. A v3 frame's tag may additionally carry the blockCodecLZ bit:
// the rest of the payload is then a uvarint raw length plus an LZ
// stream (lz.go) that decompresses to the untagged inner payload. The
// tag space can never collide with bare CBOR: a CBOR map's first byte
// is ≥ 0xa0, and every tag (0x41–0x43 with the LZ bit) stays below it.
//
// The explicit end frame makes truncation detectable even when a file
// is cut exactly at a frame boundary; the per-frame checksum catches
// bit rot before the block decoder sees it. Readers stream one block
// at a time and never materialize a partition, which is what gives the
// out-of-core evaluation its O(one block) residency per partition.

// DiskFormatVersion is the current partition block-file format.
// Version 2 added the per-frame codec tag and the columnar block
// encoding; version 3 adds the fixed-width columnar layout and the
// optional per-frame LZ compression bit. Writers default to the
// current version, readers accept every version ≤ it.
const DiskFormatVersion = 3

// Per-frame codec tags (format version ≥ 2).
const (
	blockCodecCBOR      = 0x01 // tagged row-oriented CBOR wireBlock
	blockCodecColumnar  = 0x02 // v2 columnar encoding (columnar.go)
	blockCodecColumnar3 = 0x03 // v3 fixed-width columnar encoding (columnar3.go)
	// blockCodecLZ is OR'd onto a codec tag (format version ≥ 3): the
	// payload after the tag is `uvarint raw length | LZ stream` and
	// decompresses to the inner codec's untagged payload.
	blockCodecLZ = 0x40
)

// DiskBlockRecords is the default number of records per on-disk block.
const DiskBlockRecords = 4096

// partitionMagic opens every partition block file.
const partitionMagic = "BSKYPART"

// ManifestFile is the name of the manifest sidecar in a store directory.
const ManifestFile = "manifest.json"

// maxBlockBytes bounds a frame's declared payload length; anything
// larger is treated as corruption rather than attempted.
const maxBlockBytes = 1 << 28

// PartitionFileName returns the canonical block-file name of
// partition k within a store directory.
func PartitionFileName(k int) string { return fmt.Sprintf("part-%05d.cbor", k) }

// manifestEnvelope versions the manifest sidecar. Readers require the
// exact format string and reject versions newer than they understand;
// adding fields to Manifest or to block maps is backward-compatible
// (JSON and the CBOR struct decoder both ignore unknown keys), so the
// version only bumps on incompatible layout changes.
type manifestEnvelope struct {
	Format   string    `json:"format"`
	Version  int       `json:"version"`
	Manifest *Manifest `json:"manifest"`
}

// manifestFormat identifies the sidecar's schema family.
const manifestFormat = "blueskies/partition-store"

// WriteManifest writes the manifest sidecar into dir at the current
// store version.
func WriteManifest(dir string, m *Manifest) error {
	return WriteManifestVersion(dir, m, DiskFormatVersion)
}

// WriteManifestVersion writes the manifest sidecar stamped with an
// explicit store version — the version every block file in dir must
// have been written at (OpenCorpus cross-checks them).
func WriteManifestVersion(dir string, m *Manifest, version int) error {
	if version < 1 || version > DiskFormatVersion {
		return fmt.Errorf("core: cannot write a v%d store (writer supports 1–%d)", version, DiskFormatVersion)
	}
	data, err := json.MarshalIndent(manifestEnvelope{
		Format:   manifestFormat,
		Version:  version,
		Manifest: m,
	}, "", "  ")
	if err != nil {
		return fmt.Errorf("core: encode manifest: %w", err)
	}
	return os.WriteFile(filepath.Join(dir, ManifestFile), append(data, '\n'), 0o644)
}

// ReadManifest reads and validates the manifest sidecar in dir.
func ReadManifest(dir string) (*Manifest, error) {
	m, _, err := ReadManifestVersion(dir)
	return m, err
}

// ReadManifestVersion reads the manifest sidecar plus the store
// version its envelope declares.
func ReadManifestVersion(dir string) (*Manifest, int, error) {
	data, err := os.ReadFile(filepath.Join(dir, ManifestFile))
	if err != nil {
		return nil, 0, err
	}
	var env manifestEnvelope
	if err := json.Unmarshal(data, &env); err != nil {
		return nil, 0, fmt.Errorf("core: decode manifest: %w", err)
	}
	if env.Format != manifestFormat {
		return nil, 0, fmt.Errorf("core: %s is not a partition-store manifest (format %q)", ManifestFile, env.Format)
	}
	if env.Version < 1 || env.Version > DiskFormatVersion {
		return nil, 0, fmt.Errorf("core: partition store version %d not supported (reader supports ≤ %d)", env.Version, DiskFormatVersion)
	}
	if env.Manifest == nil || len(env.Manifest.Partitions) == 0 {
		return nil, 0, fmt.Errorf("core: manifest describes no partitions")
	}
	return env.Manifest, env.Version, nil
}

// PartitionWriter streams framed record blocks to one partition file
// (or any byte sink), encoding each block at the writer's format
// version. Every byte written is also folded into a content hash —
// the per-partition content address the scheduler keys worker block
// caches by (ContentHash).
type PartitionWriter struct {
	w       *bufio.Writer
	h       hash.Hash
	closer  io.Closer
	version int
	err     error
}

// CreatePartition creates (truncating) the block file at path and
// writes the format header at the current version.
func CreatePartition(path string) (*PartitionWriter, error) {
	return CreatePartitionVersion(path, DiskFormatVersion)
}

// CreatePartitionVersion is CreatePartition at an explicit format
// version — how v1 stores are still produced for old readers.
func CreatePartitionVersion(path string, version int) (*PartitionWriter, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	pw, err := NewPartitionWriter(f, version)
	if err != nil {
		f.Close()
		return nil, err
	}
	pw.closer = f
	return pw, nil
}

// NewPartitionWriter wraps an already-open byte sink, writing the
// format header. CreatePartition is the file-path convenience; Close
// only closes sinks opened by this package.
func NewPartitionWriter(w io.Writer, version int) (*PartitionWriter, error) {
	if version < 1 || version > DiskFormatVersion {
		return nil, fmt.Errorf("core: cannot write partition format v%d (writer supports 1–%d)", version, DiskFormatVersion)
	}
	h := sha256.New()
	pw := &PartitionWriter{w: bufio.NewWriterSize(io.MultiWriter(w, h), 1<<16), h: h, version: version}
	if _, err := pw.w.WriteString(partitionMagic); err != nil {
		pw.fail(err)
	}
	var v [4]byte
	binary.BigEndian.PutUint32(v[:], uint32(version))
	if _, err := pw.w.Write(v[:]); err != nil {
		pw.fail(err)
	}
	if pw.err != nil {
		return nil, pw.err
	}
	return pw, nil
}

// Version returns the format version the writer encodes at.
func (pw *PartitionWriter) Version() int { return pw.version }

// contentHashLen truncates partition content hashes: 96 bits is far
// beyond collision range for any store while keeping manifests and
// cache keys short.
const contentHashLen = 24

// ContentHash returns the hex content hash of every byte written so
// far; call it after Close for the whole file's address. It is a pure
// function of the file bytes, so identical partition files — however
// their corpora were split or named — share an address.
func (pw *PartitionWriter) ContentHash() string {
	return hex.EncodeToString(pw.h.Sum(nil))[:contentHashLen]
}

// PartitionContentHash addresses an in-memory partition block file the
// way PartitionWriter does while writing one.
func PartitionContentHash(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])[:contentHashLen]
}

func (pw *PartitionWriter) fail(err error) {
	if pw.err == nil {
		pw.err = err
	}
}

// WriteBlock appends one record block frame, encoded at the writer's
// format version: v1 frames carry a bare CBOR wireBlock, v2 frames a
// codec-tagged columnar payload.
func (pw *PartitionWriter) WriteBlock(b *RecordBlock) error {
	if pw.err != nil {
		return pw.err
	}
	payload, err := MarshalBlockVersion(b, pw.version)
	if err != nil {
		pw.fail(fmt.Errorf("core: encode disk block: %w", err))
		return pw.err
	}
	if len(payload) > maxBlockBytes {
		pw.fail(fmt.Errorf("core: disk block of %d bytes exceeds the %d frame bound", len(payload), maxBlockBytes))
		return pw.err
	}
	pw.writeFrame(payload)
	return pw.err
}

// castagnoli is the CRC-32C polynomial table. Format v3 frames
// checksum with it because amd64/arm64 compute CRC-32C in hardware;
// FNV-1a (v1/v2 frames, kept for compatibility) walks the payload a
// byte at a time and dominated v3 decode profiles (~40% of wall).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// frameChecksum computes a frame payload's checksum under the given
// file format version.
func frameChecksum(version int, payload []byte) uint32 {
	if version >= 3 {
		return crc32.Checksum(payload, castagnoli)
	}
	h := fnv.New32a()
	h.Write(payload)
	return h.Sum32()
}

func (pw *PartitionWriter) writeFrame(payload []byte) {
	var hdr [8]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(hdr[4:], frameChecksum(pw.version, payload))
	if _, err := pw.w.Write(hdr[:]); err != nil {
		pw.fail(err)
		return
	}
	if _, err := pw.w.Write(payload); err != nil {
		pw.fail(err)
	}
}

// Close writes the end-of-partition frame, flushes, and closes the
// file if this package opened it. The writer must not be used
// afterwards.
func (pw *PartitionWriter) Close() error {
	if pw.err == nil {
		var end [8]byte // length 0, checksum 0
		if _, err := pw.w.Write(end[:]); err != nil {
			pw.fail(err)
		}
	}
	if err := pw.w.Flush(); err != nil {
		pw.fail(err)
	}
	if pw.closer != nil {
		if err := pw.closer.Close(); err != nil {
			pw.fail(err)
		}
	}
	return pw.err
}

// WritePartition streams ds to one block file: a header + labeler
// announcement block first (stream consumers need the labeler DID
// index before the first label), then each collection in dataset order,
// blockRecords records per block (≤ 0 uses DiskBlockRecords). The
// partition is written incrementally — no second copy of the dataset
// is ever held.
func WritePartition(path string, ds *Dataset, blockRecords int) error {
	return WritePartitionVersion(path, ds, blockRecords, DiskFormatVersion)
}

// WritePartitionVersion is WritePartition at an explicit format
// version.
func WritePartitionVersion(path string, ds *Dataset, blockRecords, version int) error {
	_, err := WritePartitionContent(path, ds, blockRecords, version)
	return err
}

// WritePartitionContent is WritePartitionVersion returning the written
// file's content hash — what spill paths record as
// PartitionInfo.ContentHash so schedulers can address worker caches by
// partition content.
func WritePartitionContent(path string, ds *Dataset, blockRecords, version int) (string, error) {
	pw, err := CreatePartitionVersion(path, version)
	if err != nil {
		return "", err
	}
	if err := writeDatasetBlocks(pw, ds, blockRecords); err != nil {
		pw.Close()
		return "", err
	}
	if err := pw.Close(); err != nil {
		return "", err
	}
	return pw.ContentHash(), nil
}

func writeDatasetBlocks(pw *PartitionWriter, ds *Dataset, blockRecords int) error {
	if blockRecords <= 0 {
		blockRecords = DiskBlockRecords
	}
	if err := pw.WriteBlock(&RecordBlock{
		Header: &StreamHeader{
			Scale:         ds.Scale,
			WindowStart:   ds.WindowStart,
			WindowEnd:     ds.WindowEnd,
			Firehose:      ds.Firehose,
			NonBskyEvents: ds.NonBskyEvents,
		},
		Labelers: ds.Labelers,
	}); err != nil {
		return err
	}
	// One chunk loop over every collection, in canonical dataset order —
	// the collection list lives here and nowhere else, so adding a
	// collection to Dataset means adding exactly one row.
	collections := []struct {
		n     int
		block func(lo, hi int) *RecordBlock
	}{
		{len(ds.Users), func(lo, hi int) *RecordBlock { return &RecordBlock{Users: ds.Users[lo:hi]} }},
		{len(ds.Posts), func(lo, hi int) *RecordBlock { return &RecordBlock{Posts: ds.Posts[lo:hi]} }},
		{len(ds.Daily), func(lo, hi int) *RecordBlock { return &RecordBlock{Days: ds.Daily[lo:hi]} }},
		{len(ds.Labels), func(lo, hi int) *RecordBlock { return &RecordBlock{Labels: ds.Labels[lo:hi]} }},
		{len(ds.FeedGens), func(lo, hi int) *RecordBlock { return &RecordBlock{FeedGens: ds.FeedGens[lo:hi]} }},
		{len(ds.Domains), func(lo, hi int) *RecordBlock { return &RecordBlock{Domains: ds.Domains[lo:hi]} }},
		{len(ds.HandleUpdates), func(lo, hi int) *RecordBlock { return &RecordBlock{HandleUpdates: ds.HandleUpdates[lo:hi]} }},
	}
	for _, col := range collections {
		for lo := 0; lo < col.n; lo += blockRecords {
			if err := pw.WriteBlock(col.block(lo, min(lo+blockRecords, col.n))); err != nil {
				return err
			}
		}
	}
	return nil
}

// PartitionReader streams record blocks back out of one block file,
// dispatching each frame on the file's format version.
type PartitionReader struct {
	r       *bufio.Reader
	closer  io.Closer
	version int
}

// NewPartitionReader wraps an already-open block stream, validating the
// format header. OpenPartition is the file-path convenience.
func NewPartitionReader(r io.Reader) (*PartitionReader, error) {
	return newPartitionReaderMax(r, DiskFormatVersion)
}

// newPartitionReaderMax caps the accepted format version — the exact
// gate a reader built before version maxVersion+1 applies, kept
// callable so compat tests can prove a v1-era reader rejects v2 files
// loudly instead of misreading them.
func newPartitionReaderMax(r io.Reader, maxVersion int) (*PartitionReader, error) {
	pr := &PartitionReader{r: bufio.NewReaderSize(r, 1<<16)}
	magic := make([]byte, len(partitionMagic))
	if _, err := io.ReadFull(pr.r, magic); err != nil {
		return nil, fmt.Errorf("core: partition header: %w", noEOF(err))
	}
	if string(magic) != partitionMagic {
		return nil, fmt.Errorf("core: not a partition block file (magic %q)", magic)
	}
	var v [4]byte
	if _, err := io.ReadFull(pr.r, v[:]); err != nil {
		return nil, fmt.Errorf("core: partition header: %w", noEOF(err))
	}
	ver := binary.BigEndian.Uint32(v[:])
	if ver < 1 || int64(ver) > int64(maxVersion) {
		return nil, fmt.Errorf("core: partition format version %d not supported (reader supports ≤ %d)", ver, maxVersion)
	}
	pr.version = int(ver)
	return pr, nil
}

// Version returns the format version declared by the file header.
func (pr *PartitionReader) Version() int { return pr.version }

// OpenPartition opens the block file at path.
func OpenPartition(path string) (*PartitionReader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	pr, err := NewPartitionReader(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	pr.closer = f
	return pr, nil
}

// noEOF promotes a bare io.EOF to io.ErrUnexpectedEOF: inside a frame
// or header, running out of bytes is truncation, not a clean end.
func noEOF(err error) error {
	if errors.Is(err, io.EOF) {
		return io.ErrUnexpectedEOF
	}
	return err
}

// Next returns the next record block, or io.EOF after the
// end-of-partition frame. A file that ends without the end frame
// surfaces io.ErrUnexpectedEOF (truncation); a checksum mismatch or an
// undecodable payload surfaces as an error, never a panic.
func (pr *PartitionReader) Next() (*RecordBlock, error) {
	b, _, err := pr.next(false)
	return b, err
}

// NextDict is Next surfacing the frame's dictionary view alongside the
// block — the zero-rehash ingest fast path's input: analysis folds the
// dictionary into its intern tables once per block instead of
// re-hashing every row (streamIngest.applyColumnar). The view is nil
// for v1 and tagged-CBOR frames, which carry no dictionary.
func (pr *PartitionReader) NextDict() (*RecordBlock, *DictBlock, error) {
	return pr.next(true)
}

func (pr *PartitionReader) next(wantDict bool) (*RecordBlock, *DictBlock, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(pr.r, hdr[:]); err != nil {
		return nil, nil, fmt.Errorf("core: partition frame header: %w", noEOF(err))
	}
	length := binary.BigEndian.Uint32(hdr[:4])
	sum := binary.BigEndian.Uint32(hdr[4:])
	if length == 0 {
		if sum != 0 {
			return nil, nil, fmt.Errorf("core: corrupt end-of-partition frame (checksum %#x)", sum)
		}
		// Clean end. Anything after it is not ours to consume: a valid
		// writer stops here, so trailing bytes mean a mangled file.
		if _, err := pr.r.ReadByte(); err == nil {
			return nil, nil, fmt.Errorf("core: trailing data after end-of-partition frame")
		}
		return nil, nil, io.EOF
	}
	if length > maxBlockBytes {
		return nil, nil, fmt.Errorf("core: frame declares %d bytes (bound %d): corrupt length", length, maxBlockBytes)
	}
	// Copy via a growing buffer rather than pre-allocating `length`
	// bytes: a corrupt length then fails on missing data, not on a
	// giant allocation.
	payload, err := readFull(pr.r, int(length))
	if err != nil {
		return nil, nil, fmt.Errorf("core: partition frame payload: %w", err)
	}
	if got := frameChecksum(pr.version, payload); got != sum {
		return nil, nil, fmt.Errorf("core: block checksum mismatch (frame %#x, payload %#x): corrupt block", sum, got)
	}
	return pr.decodeFrame(payload, wantDict)
}

// decodeFrame decodes one checksummed frame payload per the file's
// format version: v1 payloads are bare CBOR wireBlocks, v≥2 payloads
// start with a codec tag, v3 tags may carry the LZ compression bit.
// When wantDict is set the columnar dictionary view is captured too.
func (pr *PartitionReader) decodeFrame(payload []byte, wantDict bool) (*RecordBlock, *DictBlock, error) {
	if pr.version < 2 {
		var wb wireBlock
		if err := cbor.Unmarshal(payload, &wb); err != nil {
			return nil, nil, fmt.Errorf("core: decode disk block: %w", err)
		}
		return blockFromWire(&wb), nil, nil
	}
	if len(payload) == 0 {
		return nil, nil, fmt.Errorf("core: empty v%d frame payload", pr.version)
	}
	tag, body := payload[0], payload[1:]
	if tag&blockCodecLZ != 0 {
		if pr.version < 3 {
			return nil, nil, fmt.Errorf("core: v%d frame carries unknown block codec %#x", pr.version, tag)
		}
		inner, err := expandLZPayload(body)
		if err != nil {
			return nil, nil, err
		}
		tag, body = tag&^byte(blockCodecLZ), inner
	}
	var db *DictBlock
	if wantDict {
		db = &DictBlock{}
	}
	switch {
	case tag == blockCodecColumnar:
		b, err := decodeColumnarBlock(body, db)
		if err != nil {
			return nil, nil, fmt.Errorf("core: decode disk block: %w", err)
		}
		return b, db, nil
	case tag == blockCodecColumnar3 && pr.version >= 3:
		b, err := decodeColumnarBlockV3(body, db)
		if err != nil {
			return nil, nil, fmt.Errorf("core: decode disk block: %w", err)
		}
		return b, db, nil
	case tag == blockCodecCBOR:
		var wb wireBlock
		if err := cbor.Unmarshal(body, &wb); err != nil {
			return nil, nil, fmt.Errorf("core: decode disk block: %w", err)
		}
		return blockFromWire(&wb), nil, nil
	default:
		return nil, nil, fmt.Errorf("core: v%d frame carries unknown block codec %#x", pr.version, tag)
	}
}

// expandLZPayload decompresses the bytes after an LZ-bit codec tag:
// a uvarint raw length followed by the LZ stream.
func expandLZPayload(body []byte) ([]byte, error) {
	rawLen, n := binary.Uvarint(body)
	if n <= 0 || rawLen > maxBlockBytes {
		return nil, fmt.Errorf("core: lz frame: bad raw-length prefix")
	}
	return lzDecompress(body[n:], int(rawLen))
}

// readFull reads exactly n bytes, growing the buffer chunk by chunk so
// a lying length prefix cannot force an n-sized allocation up front.
func readFull(r io.Reader, n int) ([]byte, error) {
	const chunk = 1 << 16
	buf := make([]byte, 0, min(n, chunk))
	for len(buf) < n {
		step := min(n-len(buf), chunk)
		off := len(buf)
		buf = append(buf, make([]byte, step)...)
		if _, err := io.ReadFull(r, buf[off:]); err != nil {
			return nil, noEOF(err)
		}
	}
	return buf, nil
}

// Close releases the underlying file (a no-op for byte readers).
func (pr *PartitionReader) Close() error {
	if pr.closer != nil {
		return pr.closer.Close()
	}
	return nil
}

// ClearStore removes a previous store's artifacts from dir — the
// manifest sidecar first, then every part-*.cbor block file — so a
// re-spill into the same directory can never mix two corpora: without
// it, stale partitions beyond the new count would survive (failing
// OpenCorpus's cross-check at best, silently blending corpora after a
// partial overwrite at worst). Removing the manifest before the block
// files means a spill interrupted midway leaves no manifest behind,
// and OpenCorpus fails loudly instead of reading a half-written store.
// Non-store files in dir are left untouched; a missing dir is a no-op.
func ClearStore(dir string) error {
	if err := os.Remove(filepath.Join(dir, ManifestFile)); err != nil && !errors.Is(err, os.ErrNotExist) {
		return err
	}
	stale, err := filepath.Glob(filepath.Join(dir, "part-*.cbor"))
	if err != nil {
		return err
	}
	for _, path := range stale {
		if err := os.Remove(path); err != nil && !errors.Is(err, os.ErrNotExist) {
			return err
		}
	}
	return nil
}

// WriteCorpus persists a partitioned corpus as a store directory: one
// block file per partition plus the manifest sidecar, replacing any
// store previously written there (ClearStore). m may be nil for
// single-corpus row-range partitions (a SharedIndex manifest is
// derived). Partitions are written sequentially; for bounded-memory
// generation straight to disk see synth.GeneratePartitionedTo, which
// never materializes more than one partition per worker.
func WriteCorpus(dir string, parts []*Dataset, m *Manifest) error {
	return WriteCorpusVersion(dir, parts, m, DiskFormatVersion)
}

// WriteCorpusVersion is WriteCorpus at an explicit store version —
// every block file and the manifest envelope are stamped with it.
func WriteCorpusVersion(dir string, parts []*Dataset, m *Manifest, version int) error {
	if len(parts) == 0 {
		return fmt.Errorf("core: refusing to write an empty corpus")
	}
	if m == nil {
		m = BuildManifest(parts, parts[0].Scale, 0, true)
	}
	if len(m.Partitions) != len(parts) {
		return fmt.Errorf("core: manifest describes %d partitions, corpus has %d", len(m.Partitions), len(parts))
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	if err := ClearStore(dir); err != nil {
		return err
	}
	for k, p := range parts {
		hash, err := WritePartitionContent(filepath.Join(dir, PartitionFileName(k)), p, 0, version)
		if err != nil {
			return fmt.Errorf("core: write partition %d: %w", k, err)
		}
		m.Partitions[k].ContentHash = hash
	}
	return WriteManifestVersion(dir, m, version)
}

// Corpus is an opened disk-backed partition store: the parsed manifest
// plus the directory its block files live in. Partitions are opened
// lazily, one reader at a time, so holding a Corpus costs only the
// manifest.
type Corpus struct {
	Dir      string
	Manifest *Manifest
	// Version is the store's block-file format version, from the
	// manifest envelope and cross-checked against every file header.
	Version int
}

// ReadPartitionFileVersion reads the format version from a block
// file's 12-byte header without opening a block reader.
func ReadPartitionFileVersion(path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	hdr := make([]byte, len(partitionMagic)+4)
	if _, err := io.ReadFull(f, hdr); err != nil {
		return 0, fmt.Errorf("core: partition header: %w", noEOF(err))
	}
	if string(hdr[:len(partitionMagic)]) != partitionMagic {
		return 0, fmt.Errorf("core: not a partition block file (magic %q)", hdr[:len(partitionMagic)])
	}
	return int(binary.BigEndian.Uint32(hdr[len(partitionMagic):])), nil
}

// OpenCorpus opens a store directory: parses the manifest sidecar and
// cross-checks it against the block files actually present — a missing
// partition file, a stray extra one, or a block file whose header
// version disagrees with the manifest envelope (a blended re-spill)
// all fail here, before any traversal starts.
func OpenCorpus(dir string) (*Corpus, error) {
	m, version, err := ReadManifestVersion(dir)
	if err != nil {
		return nil, err
	}
	for k := range m.Partitions {
		fv, err := ReadPartitionFileVersion(filepath.Join(dir, PartitionFileName(k)))
		if err != nil {
			return nil, fmt.Errorf("core: manifest lists %d partitions but partition %d is unreadable: %w", len(m.Partitions), k, err)
		}
		if fv != version {
			return nil, fmt.Errorf("core: mixed-version store: partition %d is format v%d but the manifest says v%d — re-spill the whole directory", k, fv, version)
		}
	}
	extra, err := filepath.Glob(filepath.Join(dir, "part-*.cbor"))
	if err != nil {
		return nil, err
	}
	if len(extra) != len(m.Partitions) {
		return nil, fmt.Errorf("core: manifest lists %d partitions but %d block files present", len(m.Partitions), len(extra))
	}
	return &Corpus{Dir: dir, Manifest: m, Version: version}, nil
}

// OpenPartition opens partition k's block reader.
func (c *Corpus) OpenPartition(k int) (*PartitionReader, error) {
	if k < 0 || k >= len(c.Manifest.Partitions) {
		return nil, fmt.Errorf("core: partition %d out of range (corpus has %d)", k, len(c.Manifest.Partitions))
	}
	return OpenPartition(filepath.Join(c.Dir, PartitionFileName(k)))
}

// TranscodePartitionBlocks re-frames an in-memory partition block file
// at a different format version — the scheduler's per-worker downgrade
// when a ship-blocks peer only speaks older formats. Every frame is
// decoded and re-encoded; record content and order are preserved
// exactly, so an evaluation over the transcoded bytes stays
// byte-identical to one over the original.
func TranscodePartitionBlocks(data []byte, version int) ([]byte, error) {
	pr, err := NewPartitionReader(bytes.NewReader(data))
	if err != nil {
		return nil, err
	}
	if pr.Version() == version {
		return data, nil
	}
	var buf bytes.Buffer
	buf.Grow(len(data))
	pw, err := NewPartitionWriter(&buf, version)
	if err != nil {
		return nil, err
	}
	for {
		b, err := pr.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return nil, err
		}
		if err := pw.WriteBlock(b); err != nil {
			return nil, err
		}
	}
	if err := pw.Close(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// ClipPartitionBlocks re-frames an in-memory partition block file
// restricted to one row sub-range, encoded at the target format
// version — how the scheduler ships a split unit's slice instead of
// the whole parent payload. The stream is exactly what a worker-side
// RowClipper over the full file would feed the engine (headers and
// labeler announcements pass through, facts are zeroed for non-facts
// ranges, rows outside the range are dropped), so evaluating the
// clipped payload without a Range stays byte-identical to evaluating
// the parent payload with one. Blocks clipped empty are elided.
func ClipPartitionBlocks(data []byte, rng RowRange, version int) ([]byte, error) {
	pr, err := NewPartitionReader(bytes.NewReader(data))
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	pw, err := NewPartitionWriter(&buf, version)
	if err != nil {
		return nil, err
	}
	clip := NewRowClipper(rng)
	for {
		b, err := pr.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return nil, err
		}
		cb := clip.Clip(b)
		if cb.Header == nil && len(cb.Labelers) == 0 && cb.Events == (EventCounts{}) &&
			len(cb.Users)+len(cb.Posts)+len(cb.Days)+len(cb.Labels)+
				len(cb.FeedGens)+len(cb.Domains)+len(cb.HandleUpdates) == 0 {
			continue
		}
		if err := pw.WriteBlock(cb); err != nil {
			return nil, err
		}
	}
	if err := pw.Close(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// CompressPartitionBlocks rewrites an in-memory partition block file
// with every frame payload LZ-compressed where that makes it smaller —
// the scheduler's ship form for v3-capable workers. Store versions < 3
// predate the LZ bit, so their bytes are returned unchanged; frames
// that do not shrink (or are already compressed) are kept as-is, which
// makes the call idempotent.
func CompressPartitionBlocks(data []byte) ([]byte, error) {
	version, err := blockFileVersion(data)
	if err != nil {
		return nil, err
	}
	if version < 3 {
		return data, nil
	}
	return mapRawFrames(data, func(payload []byte) ([]byte, error) {
		if len(payload) == 0 || payload[0]&blockCodecLZ != 0 {
			return payload, nil
		}
		comp := lzCompress(payload[1:])
		if comp == nil {
			return payload, nil
		}
		out := make([]byte, 0, 1+binary.MaxVarintLen64+len(comp))
		out = append(out, payload[0]|blockCodecLZ)
		out = binary.AppendUvarint(out, uint64(len(payload)-1))
		out = append(out, comp...)
		if len(out) >= len(payload) {
			return payload, nil
		}
		return out, nil
	})
}

// blockFileVersion reads the format version from an in-memory block
// file's 12-byte header.
func blockFileVersion(data []byte) (int, error) {
	if len(data) < len(partitionMagic)+4 || string(data[:len(partitionMagic)]) != partitionMagic {
		return 0, fmt.Errorf("core: not a partition block file")
	}
	return int(binary.BigEndian.Uint32(data[len(partitionMagic):])), nil
}

// mapRawFrames rebuilds a block file with each frame payload passed
// through fn, re-checksumming as it goes. Payloads are transformed
// raw — no block decode — so the traversal is pure byte work.
func mapRawFrames(data []byte, fn func(payload []byte) ([]byte, error)) ([]byte, error) {
	hdrLen := len(partitionMagic) + 4
	version, err := blockFileVersion(data)
	if err != nil {
		return nil, err
	}
	out := make([]byte, 0, len(data))
	out = append(out, data[:hdrLen]...)
	pos := hdrLen
	for {
		if len(data)-pos < 8 {
			return nil, fmt.Errorf("core: partition frame header: %w", io.ErrUnexpectedEOF)
		}
		length := binary.BigEndian.Uint32(data[pos : pos+4])
		sum := binary.BigEndian.Uint32(data[pos+4 : pos+8])
		pos += 8
		if length == 0 {
			if sum != 0 {
				return nil, fmt.Errorf("core: corrupt end-of-partition frame (checksum %#x)", sum)
			}
			if pos != len(data) {
				return nil, fmt.Errorf("core: trailing data after end-of-partition frame")
			}
			var end [8]byte
			return append(out, end[:]...), nil
		}
		if length > maxBlockBytes || int(length) > len(data)-pos {
			return nil, fmt.Errorf("core: frame declares %d bytes: corrupt length", length)
		}
		payload := data[pos : pos+int(length)]
		pos += int(length)
		if got := frameChecksum(version, payload); got != sum {
			return nil, fmt.Errorf("core: block checksum mismatch (frame %#x, payload %#x): corrupt block", sum, got)
		}
		np, err := fn(payload)
		if err != nil {
			return nil, err
		}
		var hdr [8]byte
		binary.BigEndian.PutUint32(hdr[:4], uint32(len(np)))
		binary.BigEndian.PutUint32(hdr[4:], frameChecksum(version, np))
		out = append(out, hdr[:]...)
		out = append(out, np...)
	}
}

// ReadPartition materializes partition k as a Dataset — the convenience
// inverse of WritePartition for tools and tests; the out-of-core
// evaluation path (analysis.DiskSource) streams blocks instead.
func (c *Corpus) ReadPartition(k int) (*Dataset, error) {
	pr, err := c.OpenPartition(k)
	if err != nil {
		return nil, err
	}
	defer pr.Close()
	ds := &Dataset{}
	for {
		b, err := pr.Next()
		if errors.Is(err, io.EOF) {
			return ds, nil
		}
		if err != nil {
			return nil, fmt.Errorf("core: partition %d: %w", k, err)
		}
		if h := b.Header; h != nil {
			ds.Scale = h.Scale
			ds.WindowStart = h.WindowStart
			ds.WindowEnd = h.WindowEnd
			ds.Firehose = h.Firehose
			ds.NonBskyEvents = h.NonBskyEvents
		}
		ds.Labelers = append(ds.Labelers, b.Labelers...)
		ds.Users = append(ds.Users, b.Users...)
		ds.Posts = append(ds.Posts, b.Posts...)
		ds.Daily = append(ds.Daily, b.Days...)
		ds.Labels = append(ds.Labels, b.Labels...)
		ds.FeedGens = append(ds.FeedGens, b.FeedGens...)
		ds.Domains = append(ds.Domains, b.Domains...)
		ds.HandleUpdates = append(ds.HandleUpdates, b.HandleUpdates...)
	}
}
