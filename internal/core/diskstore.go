package core

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"path/filepath"

	"blueskies/internal/cbor"
)

// This file implements the disk-backed partition store: a corpus
// persisted as one block file per partition plus a JSON manifest
// sidecar, so corpora larger than memory generate, ship, and evaluate
// partition by partition (DESIGN.md §8).
//
// Layout of a store directory:
//
//	manifest.json   versioned envelope around the core.Manifest
//	part-00000.cbor partition 0's block file
//	part-00001.cbor ...
//
// A block file is a stream of framed record blocks carrying labels
// inline — on the live wire labels travel on labeler-stream frames,
// but a disk partition is self-contained:
//
//	"BSKYPART"  8-byte magic
//	uint32      format version (big-endian)
//	frames      uint32 payload length | uint32 FNV-1a checksum | payload
//	end frame   length 0, checksum 0
//
// Version 1 frames carry a bare row-oriented DAG-CBOR wireBlock map.
// Version 2 frames start with a one-byte codec tag followed by the
// payload — blockCodecColumnar for the columnar encoding
// (columnar.go), blockCodecCBOR for a tagged CBOR wireBlock — so a
// reader dispatches per frame and a future v3 can mix codecs within
// one file. The tag space can never collide with bare CBOR: a CBOR
// map's first byte is ≥ 0xa0.
//
// The explicit end frame makes truncation detectable even when a file
// is cut exactly at a frame boundary; the per-frame checksum catches
// bit rot before the block decoder sees it. Readers stream one block
// at a time and never materialize a partition, which is what gives the
// out-of-core evaluation its O(one block) residency per partition.

// DiskFormatVersion is the current partition block-file format.
// Version 2 adds the per-frame codec tag and the columnar block
// encoding; writers default to it, readers accept every version ≤ it.
const DiskFormatVersion = 2

// Per-frame codec tags (format version ≥ 2).
const (
	blockCodecCBOR     = 0x01 // tagged row-oriented CBOR wireBlock
	blockCodecColumnar = 0x02 // columnar encoding (columnar.go)
)

// DiskBlockRecords is the default number of records per on-disk block.
const DiskBlockRecords = 4096

// partitionMagic opens every partition block file.
const partitionMagic = "BSKYPART"

// ManifestFile is the name of the manifest sidecar in a store directory.
const ManifestFile = "manifest.json"

// maxBlockBytes bounds a frame's declared payload length; anything
// larger is treated as corruption rather than attempted.
const maxBlockBytes = 1 << 28

// PartitionFileName returns the canonical block-file name of
// partition k within a store directory.
func PartitionFileName(k int) string { return fmt.Sprintf("part-%05d.cbor", k) }

// manifestEnvelope versions the manifest sidecar. Readers require the
// exact format string and reject versions newer than they understand;
// adding fields to Manifest or to block maps is backward-compatible
// (JSON and the CBOR struct decoder both ignore unknown keys), so the
// version only bumps on incompatible layout changes.
type manifestEnvelope struct {
	Format   string    `json:"format"`
	Version  int       `json:"version"`
	Manifest *Manifest `json:"manifest"`
}

// manifestFormat identifies the sidecar's schema family.
const manifestFormat = "blueskies/partition-store"

// WriteManifest writes the manifest sidecar into dir at the current
// store version.
func WriteManifest(dir string, m *Manifest) error {
	return WriteManifestVersion(dir, m, DiskFormatVersion)
}

// WriteManifestVersion writes the manifest sidecar stamped with an
// explicit store version — the version every block file in dir must
// have been written at (OpenCorpus cross-checks them).
func WriteManifestVersion(dir string, m *Manifest, version int) error {
	if version < 1 || version > DiskFormatVersion {
		return fmt.Errorf("core: cannot write a v%d store (writer supports 1–%d)", version, DiskFormatVersion)
	}
	data, err := json.MarshalIndent(manifestEnvelope{
		Format:   manifestFormat,
		Version:  version,
		Manifest: m,
	}, "", "  ")
	if err != nil {
		return fmt.Errorf("core: encode manifest: %w", err)
	}
	return os.WriteFile(filepath.Join(dir, ManifestFile), append(data, '\n'), 0o644)
}

// ReadManifest reads and validates the manifest sidecar in dir.
func ReadManifest(dir string) (*Manifest, error) {
	m, _, err := ReadManifestVersion(dir)
	return m, err
}

// ReadManifestVersion reads the manifest sidecar plus the store
// version its envelope declares.
func ReadManifestVersion(dir string) (*Manifest, int, error) {
	data, err := os.ReadFile(filepath.Join(dir, ManifestFile))
	if err != nil {
		return nil, 0, err
	}
	var env manifestEnvelope
	if err := json.Unmarshal(data, &env); err != nil {
		return nil, 0, fmt.Errorf("core: decode manifest: %w", err)
	}
	if env.Format != manifestFormat {
		return nil, 0, fmt.Errorf("core: %s is not a partition-store manifest (format %q)", ManifestFile, env.Format)
	}
	if env.Version < 1 || env.Version > DiskFormatVersion {
		return nil, 0, fmt.Errorf("core: partition store version %d not supported (reader supports ≤ %d)", env.Version, DiskFormatVersion)
	}
	if env.Manifest == nil || len(env.Manifest.Partitions) == 0 {
		return nil, 0, fmt.Errorf("core: manifest describes no partitions")
	}
	return env.Manifest, env.Version, nil
}

// PartitionWriter streams framed record blocks to one partition file
// (or any byte sink), encoding each block at the writer's format
// version.
type PartitionWriter struct {
	w       *bufio.Writer
	closer  io.Closer
	version int
	err     error
}

// CreatePartition creates (truncating) the block file at path and
// writes the format header at the current version.
func CreatePartition(path string) (*PartitionWriter, error) {
	return CreatePartitionVersion(path, DiskFormatVersion)
}

// CreatePartitionVersion is CreatePartition at an explicit format
// version — how v1 stores are still produced for old readers.
func CreatePartitionVersion(path string, version int) (*PartitionWriter, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	pw, err := NewPartitionWriter(f, version)
	if err != nil {
		f.Close()
		return nil, err
	}
	pw.closer = f
	return pw, nil
}

// NewPartitionWriter wraps an already-open byte sink, writing the
// format header. CreatePartition is the file-path convenience; Close
// only closes sinks opened by this package.
func NewPartitionWriter(w io.Writer, version int) (*PartitionWriter, error) {
	if version < 1 || version > DiskFormatVersion {
		return nil, fmt.Errorf("core: cannot write partition format v%d (writer supports 1–%d)", version, DiskFormatVersion)
	}
	pw := &PartitionWriter{w: bufio.NewWriterSize(w, 1<<16), version: version}
	if _, err := pw.w.WriteString(partitionMagic); err != nil {
		pw.fail(err)
	}
	var v [4]byte
	binary.BigEndian.PutUint32(v[:], uint32(version))
	if _, err := pw.w.Write(v[:]); err != nil {
		pw.fail(err)
	}
	if pw.err != nil {
		return nil, pw.err
	}
	return pw, nil
}

// Version returns the format version the writer encodes at.
func (pw *PartitionWriter) Version() int { return pw.version }

func (pw *PartitionWriter) fail(err error) {
	if pw.err == nil {
		pw.err = err
	}
}

// WriteBlock appends one record block frame, encoded at the writer's
// format version: v1 frames carry a bare CBOR wireBlock, v2 frames a
// codec-tagged columnar payload.
func (pw *PartitionWriter) WriteBlock(b *RecordBlock) error {
	if pw.err != nil {
		return pw.err
	}
	payload, err := MarshalBlockVersion(b, pw.version)
	if err != nil {
		pw.fail(fmt.Errorf("core: encode disk block: %w", err))
		return pw.err
	}
	if len(payload) > maxBlockBytes {
		pw.fail(fmt.Errorf("core: disk block of %d bytes exceeds the %d frame bound", len(payload), maxBlockBytes))
		return pw.err
	}
	pw.writeFrame(payload)
	return pw.err
}

func (pw *PartitionWriter) writeFrame(payload []byte) {
	h := fnv.New32a()
	h.Write(payload)
	var hdr [8]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(hdr[4:], h.Sum32())
	if _, err := pw.w.Write(hdr[:]); err != nil {
		pw.fail(err)
		return
	}
	if _, err := pw.w.Write(payload); err != nil {
		pw.fail(err)
	}
}

// Close writes the end-of-partition frame, flushes, and closes the
// file if this package opened it. The writer must not be used
// afterwards.
func (pw *PartitionWriter) Close() error {
	if pw.err == nil {
		var end [8]byte // length 0, checksum 0
		if _, err := pw.w.Write(end[:]); err != nil {
			pw.fail(err)
		}
	}
	if err := pw.w.Flush(); err != nil {
		pw.fail(err)
	}
	if pw.closer != nil {
		if err := pw.closer.Close(); err != nil {
			pw.fail(err)
		}
	}
	return pw.err
}

// WritePartition streams ds to one block file: a header + labeler
// announcement block first (stream consumers need the labeler DID
// index before the first label), then each collection in dataset order,
// blockRecords records per block (≤ 0 uses DiskBlockRecords). The
// partition is written incrementally — no second copy of the dataset
// is ever held.
func WritePartition(path string, ds *Dataset, blockRecords int) error {
	return WritePartitionVersion(path, ds, blockRecords, DiskFormatVersion)
}

// WritePartitionVersion is WritePartition at an explicit format
// version.
func WritePartitionVersion(path string, ds *Dataset, blockRecords, version int) error {
	pw, err := CreatePartitionVersion(path, version)
	if err != nil {
		return err
	}
	if err := writeDatasetBlocks(pw, ds, blockRecords); err != nil {
		pw.Close()
		return err
	}
	return pw.Close()
}

func writeDatasetBlocks(pw *PartitionWriter, ds *Dataset, blockRecords int) error {
	if blockRecords <= 0 {
		blockRecords = DiskBlockRecords
	}
	if err := pw.WriteBlock(&RecordBlock{
		Header: &StreamHeader{
			Scale:         ds.Scale,
			WindowStart:   ds.WindowStart,
			WindowEnd:     ds.WindowEnd,
			Firehose:      ds.Firehose,
			NonBskyEvents: ds.NonBskyEvents,
		},
		Labelers: ds.Labelers,
	}); err != nil {
		return err
	}
	// One chunk loop over every collection, in canonical dataset order —
	// the collection list lives here and nowhere else, so adding a
	// collection to Dataset means adding exactly one row.
	collections := []struct {
		n     int
		block func(lo, hi int) *RecordBlock
	}{
		{len(ds.Users), func(lo, hi int) *RecordBlock { return &RecordBlock{Users: ds.Users[lo:hi]} }},
		{len(ds.Posts), func(lo, hi int) *RecordBlock { return &RecordBlock{Posts: ds.Posts[lo:hi]} }},
		{len(ds.Daily), func(lo, hi int) *RecordBlock { return &RecordBlock{Days: ds.Daily[lo:hi]} }},
		{len(ds.Labels), func(lo, hi int) *RecordBlock { return &RecordBlock{Labels: ds.Labels[lo:hi]} }},
		{len(ds.FeedGens), func(lo, hi int) *RecordBlock { return &RecordBlock{FeedGens: ds.FeedGens[lo:hi]} }},
		{len(ds.Domains), func(lo, hi int) *RecordBlock { return &RecordBlock{Domains: ds.Domains[lo:hi]} }},
		{len(ds.HandleUpdates), func(lo, hi int) *RecordBlock { return &RecordBlock{HandleUpdates: ds.HandleUpdates[lo:hi]} }},
	}
	for _, col := range collections {
		for lo := 0; lo < col.n; lo += blockRecords {
			if err := pw.WriteBlock(col.block(lo, min(lo+blockRecords, col.n))); err != nil {
				return err
			}
		}
	}
	return nil
}

// PartitionReader streams record blocks back out of one block file,
// dispatching each frame on the file's format version.
type PartitionReader struct {
	r       *bufio.Reader
	closer  io.Closer
	version int
}

// NewPartitionReader wraps an already-open block stream, validating the
// format header. OpenPartition is the file-path convenience.
func NewPartitionReader(r io.Reader) (*PartitionReader, error) {
	return newPartitionReaderMax(r, DiskFormatVersion)
}

// newPartitionReaderMax caps the accepted format version — the exact
// gate a reader built before version maxVersion+1 applies, kept
// callable so compat tests can prove a v1-era reader rejects v2 files
// loudly instead of misreading them.
func newPartitionReaderMax(r io.Reader, maxVersion int) (*PartitionReader, error) {
	pr := &PartitionReader{r: bufio.NewReaderSize(r, 1<<16)}
	magic := make([]byte, len(partitionMagic))
	if _, err := io.ReadFull(pr.r, magic); err != nil {
		return nil, fmt.Errorf("core: partition header: %w", noEOF(err))
	}
	if string(magic) != partitionMagic {
		return nil, fmt.Errorf("core: not a partition block file (magic %q)", magic)
	}
	var v [4]byte
	if _, err := io.ReadFull(pr.r, v[:]); err != nil {
		return nil, fmt.Errorf("core: partition header: %w", noEOF(err))
	}
	ver := binary.BigEndian.Uint32(v[:])
	if ver < 1 || int64(ver) > int64(maxVersion) {
		return nil, fmt.Errorf("core: partition format version %d not supported (reader supports ≤ %d)", ver, maxVersion)
	}
	pr.version = int(ver)
	return pr, nil
}

// Version returns the format version declared by the file header.
func (pr *PartitionReader) Version() int { return pr.version }

// OpenPartition opens the block file at path.
func OpenPartition(path string) (*PartitionReader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	pr, err := NewPartitionReader(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	pr.closer = f
	return pr, nil
}

// noEOF promotes a bare io.EOF to io.ErrUnexpectedEOF: inside a frame
// or header, running out of bytes is truncation, not a clean end.
func noEOF(err error) error {
	if errors.Is(err, io.EOF) {
		return io.ErrUnexpectedEOF
	}
	return err
}

// Next returns the next record block, or io.EOF after the
// end-of-partition frame. A file that ends without the end frame
// surfaces io.ErrUnexpectedEOF (truncation); a checksum mismatch or an
// undecodable payload surfaces as an error, never a panic.
func (pr *PartitionReader) Next() (*RecordBlock, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(pr.r, hdr[:]); err != nil {
		return nil, fmt.Errorf("core: partition frame header: %w", noEOF(err))
	}
	length := binary.BigEndian.Uint32(hdr[:4])
	sum := binary.BigEndian.Uint32(hdr[4:])
	if length == 0 {
		if sum != 0 {
			return nil, fmt.Errorf("core: corrupt end-of-partition frame (checksum %#x)", sum)
		}
		// Clean end. Anything after it is not ours to consume: a valid
		// writer stops here, so trailing bytes mean a mangled file.
		if _, err := pr.r.ReadByte(); err == nil {
			return nil, fmt.Errorf("core: trailing data after end-of-partition frame")
		}
		return nil, io.EOF
	}
	if length > maxBlockBytes {
		return nil, fmt.Errorf("core: frame declares %d bytes (bound %d): corrupt length", length, maxBlockBytes)
	}
	// Copy via a growing buffer rather than pre-allocating `length`
	// bytes: a corrupt length then fails on missing data, not on a
	// giant allocation.
	payload, err := readFull(pr.r, int(length))
	if err != nil {
		return nil, fmt.Errorf("core: partition frame payload: %w", err)
	}
	h := fnv.New32a()
	h.Write(payload)
	if h.Sum32() != sum {
		return nil, fmt.Errorf("core: block checksum mismatch (frame %#x, payload %#x): corrupt block", sum, h.Sum32())
	}
	return pr.decodeFrame(payload)
}

// decodeFrame decodes one checksummed frame payload per the file's
// format version: v1 payloads are bare CBOR wireBlocks, v2 payloads
// start with a codec tag.
func (pr *PartitionReader) decodeFrame(payload []byte) (*RecordBlock, error) {
	if pr.version < 2 {
		var wb wireBlock
		if err := cbor.Unmarshal(payload, &wb); err != nil {
			return nil, fmt.Errorf("core: decode disk block: %w", err)
		}
		return blockFromWire(&wb), nil
	}
	if len(payload) == 0 {
		return nil, fmt.Errorf("core: empty v2 frame payload")
	}
	switch payload[0] {
	case blockCodecColumnar:
		b, err := decodeColumnarBlock(payload[1:])
		if err != nil {
			return nil, fmt.Errorf("core: decode disk block: %w", err)
		}
		return b, nil
	case blockCodecCBOR:
		var wb wireBlock
		if err := cbor.Unmarshal(payload[1:], &wb); err != nil {
			return nil, fmt.Errorf("core: decode disk block: %w", err)
		}
		return blockFromWire(&wb), nil
	default:
		return nil, fmt.Errorf("core: v2 frame carries unknown block codec %#x", payload[0])
	}
}

// readFull reads exactly n bytes, growing the buffer chunk by chunk so
// a lying length prefix cannot force an n-sized allocation up front.
func readFull(r io.Reader, n int) ([]byte, error) {
	const chunk = 1 << 16
	buf := make([]byte, 0, min(n, chunk))
	for len(buf) < n {
		step := min(n-len(buf), chunk)
		off := len(buf)
		buf = append(buf, make([]byte, step)...)
		if _, err := io.ReadFull(r, buf[off:]); err != nil {
			return nil, noEOF(err)
		}
	}
	return buf, nil
}

// Close releases the underlying file (a no-op for byte readers).
func (pr *PartitionReader) Close() error {
	if pr.closer != nil {
		return pr.closer.Close()
	}
	return nil
}

// ClearStore removes a previous store's artifacts from dir — the
// manifest sidecar first, then every part-*.cbor block file — so a
// re-spill into the same directory can never mix two corpora: without
// it, stale partitions beyond the new count would survive (failing
// OpenCorpus's cross-check at best, silently blending corpora after a
// partial overwrite at worst). Removing the manifest before the block
// files means a spill interrupted midway leaves no manifest behind,
// and OpenCorpus fails loudly instead of reading a half-written store.
// Non-store files in dir are left untouched; a missing dir is a no-op.
func ClearStore(dir string) error {
	if err := os.Remove(filepath.Join(dir, ManifestFile)); err != nil && !errors.Is(err, os.ErrNotExist) {
		return err
	}
	stale, err := filepath.Glob(filepath.Join(dir, "part-*.cbor"))
	if err != nil {
		return err
	}
	for _, path := range stale {
		if err := os.Remove(path); err != nil && !errors.Is(err, os.ErrNotExist) {
			return err
		}
	}
	return nil
}

// WriteCorpus persists a partitioned corpus as a store directory: one
// block file per partition plus the manifest sidecar, replacing any
// store previously written there (ClearStore). m may be nil for
// single-corpus row-range partitions (a SharedIndex manifest is
// derived). Partitions are written sequentially; for bounded-memory
// generation straight to disk see synth.GeneratePartitionedTo, which
// never materializes more than one partition per worker.
func WriteCorpus(dir string, parts []*Dataset, m *Manifest) error {
	return WriteCorpusVersion(dir, parts, m, DiskFormatVersion)
}

// WriteCorpusVersion is WriteCorpus at an explicit store version —
// every block file and the manifest envelope are stamped with it.
func WriteCorpusVersion(dir string, parts []*Dataset, m *Manifest, version int) error {
	if len(parts) == 0 {
		return fmt.Errorf("core: refusing to write an empty corpus")
	}
	if m == nil {
		m = BuildManifest(parts, parts[0].Scale, 0, true)
	}
	if len(m.Partitions) != len(parts) {
		return fmt.Errorf("core: manifest describes %d partitions, corpus has %d", len(m.Partitions), len(parts))
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	if err := ClearStore(dir); err != nil {
		return err
	}
	for k, p := range parts {
		if err := WritePartitionVersion(filepath.Join(dir, PartitionFileName(k)), p, 0, version); err != nil {
			return fmt.Errorf("core: write partition %d: %w", k, err)
		}
	}
	return WriteManifestVersion(dir, m, version)
}

// Corpus is an opened disk-backed partition store: the parsed manifest
// plus the directory its block files live in. Partitions are opened
// lazily, one reader at a time, so holding a Corpus costs only the
// manifest.
type Corpus struct {
	Dir      string
	Manifest *Manifest
	// Version is the store's block-file format version, from the
	// manifest envelope and cross-checked against every file header.
	Version int
}

// ReadPartitionFileVersion reads the format version from a block
// file's 12-byte header without opening a block reader.
func ReadPartitionFileVersion(path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	hdr := make([]byte, len(partitionMagic)+4)
	if _, err := io.ReadFull(f, hdr); err != nil {
		return 0, fmt.Errorf("core: partition header: %w", noEOF(err))
	}
	if string(hdr[:len(partitionMagic)]) != partitionMagic {
		return 0, fmt.Errorf("core: not a partition block file (magic %q)", hdr[:len(partitionMagic)])
	}
	return int(binary.BigEndian.Uint32(hdr[len(partitionMagic):])), nil
}

// OpenCorpus opens a store directory: parses the manifest sidecar and
// cross-checks it against the block files actually present — a missing
// partition file, a stray extra one, or a block file whose header
// version disagrees with the manifest envelope (a blended re-spill)
// all fail here, before any traversal starts.
func OpenCorpus(dir string) (*Corpus, error) {
	m, version, err := ReadManifestVersion(dir)
	if err != nil {
		return nil, err
	}
	for k := range m.Partitions {
		fv, err := ReadPartitionFileVersion(filepath.Join(dir, PartitionFileName(k)))
		if err != nil {
			return nil, fmt.Errorf("core: manifest lists %d partitions but partition %d is unreadable: %w", len(m.Partitions), k, err)
		}
		if fv != version {
			return nil, fmt.Errorf("core: mixed-version store: partition %d is format v%d but the manifest says v%d — re-spill the whole directory", k, fv, version)
		}
	}
	extra, err := filepath.Glob(filepath.Join(dir, "part-*.cbor"))
	if err != nil {
		return nil, err
	}
	if len(extra) != len(m.Partitions) {
		return nil, fmt.Errorf("core: manifest lists %d partitions but %d block files present", len(m.Partitions), len(extra))
	}
	return &Corpus{Dir: dir, Manifest: m, Version: version}, nil
}

// OpenPartition opens partition k's block reader.
func (c *Corpus) OpenPartition(k int) (*PartitionReader, error) {
	if k < 0 || k >= len(c.Manifest.Partitions) {
		return nil, fmt.Errorf("core: partition %d out of range (corpus has %d)", k, len(c.Manifest.Partitions))
	}
	return OpenPartition(filepath.Join(c.Dir, PartitionFileName(k)))
}

// TranscodePartitionBlocks re-frames an in-memory partition block file
// at a different format version — the scheduler's per-worker downgrade
// when a ship-blocks peer only speaks older formats. Every frame is
// decoded and re-encoded; record content and order are preserved
// exactly, so an evaluation over the transcoded bytes stays
// byte-identical to one over the original.
func TranscodePartitionBlocks(data []byte, version int) ([]byte, error) {
	pr, err := NewPartitionReader(bytes.NewReader(data))
	if err != nil {
		return nil, err
	}
	if pr.Version() == version {
		return data, nil
	}
	var buf bytes.Buffer
	buf.Grow(len(data))
	pw, err := NewPartitionWriter(&buf, version)
	if err != nil {
		return nil, err
	}
	for {
		b, err := pr.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return nil, err
		}
		if err := pw.WriteBlock(b); err != nil {
			return nil, err
		}
	}
	if err := pw.Close(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// ReadPartition materializes partition k as a Dataset — the convenience
// inverse of WritePartition for tools and tests; the out-of-core
// evaluation path (analysis.DiskSource) streams blocks instead.
func (c *Corpus) ReadPartition(k int) (*Dataset, error) {
	pr, err := c.OpenPartition(k)
	if err != nil {
		return nil, err
	}
	defer pr.Close()
	ds := &Dataset{}
	for {
		b, err := pr.Next()
		if errors.Is(err, io.EOF) {
			return ds, nil
		}
		if err != nil {
			return nil, fmt.Errorf("core: partition %d: %w", k, err)
		}
		if h := b.Header; h != nil {
			ds.Scale = h.Scale
			ds.WindowStart = h.WindowStart
			ds.WindowEnd = h.WindowEnd
			ds.Firehose = h.Firehose
			ds.NonBskyEvents = h.NonBskyEvents
		}
		ds.Labelers = append(ds.Labelers, b.Labelers...)
		ds.Users = append(ds.Users, b.Users...)
		ds.Posts = append(ds.Posts, b.Posts...)
		ds.Daily = append(ds.Daily, b.Days...)
		ds.Labels = append(ds.Labels, b.Labels...)
		ds.FeedGens = append(ds.FeedGens, b.FeedGens...)
		ds.Domains = append(ds.Domains, b.Domains...)
		ds.HandleUpdates = append(ds.HandleUpdates, b.HandleUpdates...)
	}
}
