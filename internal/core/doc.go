// Package core implements the paper's primary contribution: the
// measurement pipeline. It owns the data model every other layer
// speaks — from one materialized dataset up to a partitioned,
// disk-backed corpus — and the collectors that populate it from a live
// network.
//
// # Architecture: Dataset → Partition/Manifest → blocks → disk
//
// The corpus model is layered; each layer is the previous one made
// shippable at a larger scale:
//
//	Dataset        one materialized corpus: the five datasets of §3
//	               (User Identifiers, DID Documents, Repositories,
//	               Firehose, Feed Generators, plus Labeling Services)
//	               as plain record slices (dataset.go)
//	Partition set  a corpus as n Datasets plus a Manifest describing
//	               them: per-partition record counts, base offsets in
//	               concatenation order, seeds, windows, and whether
//	               index-bearing fields are corpus-global or
//	               partition-local (partition.go)
//	RecordBlock    the streaming unit: a bounded batch of records from
//	               any subset of the collections, with a wire codec
//	               over DAG-CBOR sequencer frames (stream.go)
//	Disk store     a partition set persisted as one block file per
//	               partition plus a manifest.json sidecar, streamed
//	               back without ever materializing a partition
//	               (diskstore.go, format spec in DESIGN.md §8)
//
// Two producers fill the model: the live Collector crawls a running
// deployment exactly the way the paper's crawler did (listRepos → DID
// docs → getRepo CARs → firehose → labeler streams → feed crawls →
// DNS/WHOIS actives), and internal/synth emits the model directly at
// scale with distributions calibrated to the paper. Two consumers
// drain it: internal/analysis evaluates any mix of materialized,
// streamed, and disk-backed partitions through one engine, and the
// stream codec replays a corpus over in-process sequencers as if the
// network had produced it.
//
// Partitioning invariants (enforced by Split/BuildManifest/Concat and
// relied on by every consumer): every partition carries the full
// labeler enumeration, because labels attribute by labeler index,
// which must agree across partitions (MergeLabelers fails loudly when
// it does not); corpus-level facts — firehose counters and, for
// independently generated partitions, the daily activity series — ride
// on partition 0 only, so summing partitions never double-counts; and
// each collection's records keep their canonical dataset order within
// a partition, which is all the analysis accumulators depend on.
//
// The disk store (WriteCorpus/OpenCorpus, WritePartition/
// OpenPartition) adds the persistence rules: framed blocks with
// per-frame checksums and an explicit end marker, so truncation and
// bit rot surface as errors rather than silently thinned statistics,
// and a versioned manifest sidecar that makes a spilled corpus a
// reproducible, shareable artifact — the placement unit a remote
// partition scheduler would ship.
package core
