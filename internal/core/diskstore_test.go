package core

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"blueskies/internal/cbor"
	"blueskies/internal/events"
)

// diskTestDataset builds a small hand-rolled dataset covering every
// collection and every field class the wire codec carries (times, maps,
// negative-able ints, bools, label sim-extensions).
func diskTestDataset() *Dataset {
	t0 := time.Date(2024, 3, 10, 12, 30, 0, 0, time.UTC)
	return &Dataset{
		Scale:         1000,
		WindowStart:   time.Date(2024, 3, 6, 0, 0, 0, 0, time.UTC),
		WindowEnd:     time.Date(2024, 5, 1, 0, 0, 0, 0, time.UTC),
		Firehose:      EventCounts{Commits: 100, Identity: 5, Handle: 2, Tombstone: 1},
		NonBskyEvents: 3,
		Labelers: []Labeler{
			{DID: "did:plc:official", Name: "bsky", Official: true, Values: []string{"spam", "porn"},
				Announced: t0, Functional: true, Active: true, Hosting: "cloud", Automated: true, Likes: 9},
			{DID: "did:plc:community", Name: "community", Announced: t0.Add(time.Hour), Active: true},
		},
		Users: []User{
			{DID: "did:plc:u0", Handle: "u0.bsky.social", DIDMethod: "plc", PDS: "pds0",
				Proof: ProofManaged, CreatedAt: t0, Lang: "en", Followers: 10, Following: 3, Posts: 2},
			{DID: "did:web:example.com", Handle: "example.com", DIDMethod: "web",
				Proof: ProofDNSTXT, CreatedAt: t0.Add(time.Minute), Deleted: true},
		},
		Posts: []Post{
			{URI: "at://did:plc:u0/app.bsky.feed.post/1", AuthorIdx: 0, Lang: "en",
				CreatedAt: t0, Likes: 4, HasMedia: true, AltText: true},
			{URI: "at://did:plc:u0/app.bsky.feed.post/2", AuthorIdx: 1, Lang: "pt", CreatedAt: t0.Add(time.Second)},
		},
		Daily: []DayActivity{
			{Date: t0.Truncate(24 * time.Hour), ActiveUsers: 2, Posts: 2, Likes: 4,
				ActiveByLang: map[string]int{"en": 1, "pt": 1}},
		},
		Labels: []Label{
			{Src: "did:plc:official", URI: "at://did:plc:u0/app.bsky.feed.post/1", Val: "spam",
				Kind: SubjectPost, Applied: t0.Add(90 * time.Millisecond), SubjectCreated: t0, FreshSubject: true},
			{Src: "did:plc:community", URI: "did:plc:u0", Val: "rude", Neg: true,
				Kind: SubjectAccount, Applied: t0.Add(time.Hour)},
		},
		FeedGens: []FeedGen{
			{URI: "at://did:plc:u0/app.bsky.feed.generator/f", CreatorIdx: 0, Platform: "self-hosted",
				DisplayName: "Feed", Description: "a feed", Lang: "en", CreatedAt: t0, Likes: 1,
				Posts: 7, LastPost: t0.Add(time.Minute), Reachable: true, LabeledShare: 0.25, TopLabel: "spam"},
		},
		Domains: []Domain{
			{Name: "example.com", IANAID: 42, RegistrarName: "Reg", TrancoRank: 1000, Subdomains: 2},
			{Name: "example.pt", CCTLD: true},
		},
		HandleUpdates: []HandleUpdate{
			{DID: "did:plc:u0", NewHandle: "new.bsky.social", Time: t0.Add(2 * time.Hour)},
		},
	}
}

// TestDiskPartitionRoundTrip pins the lossless codec contract: a
// dataset written block by block and read back materializes field for
// field, at several block sizes (including blocks smaller than a
// collection, which split it across frames).
func TestDiskPartitionRoundTrip(t *testing.T) {
	ds := diskTestDataset()
	for _, blockRecords := range []int{1, 3, 4096} {
		path := filepath.Join(t.TempDir(), "part.cbor")
		if err := WritePartition(path, ds, blockRecords); err != nil {
			t.Fatalf("blockRecords=%d: write: %v", blockRecords, err)
		}
		c := &Corpus{Dir: filepath.Dir(path), Manifest: BuildManifest([]*Dataset{ds}, ds.Scale, 0, true)}
		if err := os.Rename(path, filepath.Join(c.Dir, PartitionFileName(0))); err != nil {
			t.Fatal(err)
		}
		got, err := c.ReadPartition(0)
		if err != nil {
			t.Fatalf("blockRecords=%d: read: %v", blockRecords, err)
		}
		if !reflect.DeepEqual(got, ds) {
			t.Errorf("blockRecords=%d: round trip drifted:\n got %+v\nwant %+v", blockRecords, got, ds)
		}
	}
}

// TestDiskCorpusRoundTrip writes a multi-partition store and checks
// OpenCorpus + ReadPartition reproduce every split view and the
// manifest survives the JSON sidecar round trip.
func TestDiskCorpusRoundTrip(t *testing.T) {
	ds := diskTestDataset()
	parts, m := Split(ds, 2)
	dir := t.TempDir()
	if err := WriteCorpus(dir, parts, m); err != nil {
		t.Fatal(err)
	}
	c, err := OpenCorpus(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(c.Manifest, m) {
		t.Errorf("manifest drifted through the sidecar:\n got %+v\nwant %+v", c.Manifest, m)
	}
	for k, want := range parts {
		got, err := c.ReadPartition(k)
		if err != nil {
			t.Fatalf("partition %d: %v", k, err)
		}
		// Split views alias the parent's slices; normalize nil vs empty
		// before comparing (the reader appends, so empties stay nil).
		if got.Counts() != want.Counts() {
			t.Fatalf("partition %d: counts %+v != %+v", k, got.Counts(), want.Counts())
		}
		if len(got.Users) > 0 && !reflect.DeepEqual(got.Users, want.Users) {
			t.Errorf("partition %d: users drifted", k)
		}
		if len(got.Labels) > 0 && !reflect.DeepEqual(got.Labels, want.Labels) {
			t.Errorf("partition %d: labels drifted", k)
		}
	}
}

// corruptCase writes a 1-partition store and hands the partition file
// path to mutate before re-opening.
func corruptCase(t *testing.T, mutate func(t *testing.T, path string)) error {
	t.Helper()
	dir := t.TempDir()
	if err := WriteCorpus(dir, []*Dataset{diskTestDataset()}, nil); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, PartitionFileName(0))
	mutate(t, path)
	c, err := OpenCorpus(dir)
	if err != nil {
		return err
	}
	ds, err := c.ReadPartition(0)
	if err == nil && ds == nil {
		t.Fatal("nil dataset without error")
	}
	return err
}

// TestDiskTruncation cuts the block file at every interesting byte
// length — inside the header, inside a frame header, inside a payload,
// and exactly at a frame boundary (no end marker) — and requires an
// error, never a panic and never a silent success.
func TestDiskTruncation(t *testing.T) {
	dir := t.TempDir()
	if err := WriteCorpus(dir, []*Dataset{diskTestDataset()}, nil); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, PartitionFileName(0))
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// A few positions per regime plus a sweep over the first frames.
	cuts := []int{0, 4, len(partitionMagic), len(partitionMagic) + 2, len(partitionMagic) + 4,
		len(full) / 3, len(full) / 2, len(full) - 9, len(full) - 8, len(full) - 1}
	for i := 12; i < 64 && i < len(full); i++ {
		cuts = append(cuts, i)
	}
	for _, cut := range cuts {
		if cut < 0 || cut >= len(full) {
			continue
		}
		err := corruptCase(t, func(t *testing.T, p string) {
			if err := os.WriteFile(p, full[:cut], 0o644); err != nil {
				t.Fatal(err)
			}
		})
		if err == nil {
			t.Errorf("truncation at byte %d went unnoticed", cut)
		}
	}
}

// TestDiskCorruptBlock flips bytes in the stored frames: the checksum
// (or, for frames whose length field was hit, the length bound /
// resulting truncation) must surface an error.
func TestDiskCorruptBlock(t *testing.T) {
	dir := t.TempDir()
	if err := WriteCorpus(dir, []*Dataset{diskTestDataset()}, nil); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, PartitionFileName(0))
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, pos := range []int{13, 20, 40, len(full) / 2, len(full) - 10} {
		if pos >= len(full) {
			continue
		}
		err := corruptCase(t, func(t *testing.T, p string) {
			mut := append([]byte(nil), full...)
			mut[pos] ^= 0x5A
			if err := os.WriteFile(p, mut, 0o644); err != nil {
				t.Fatal(err)
			}
		})
		if err == nil {
			t.Errorf("flipped byte %d went unnoticed", pos)
		}
	}
	// Trailing garbage after the end marker is also corruption.
	err = corruptCase(t, func(t *testing.T, p string) {
		if err := os.WriteFile(p, append(append([]byte(nil), full...), 0xFF), 0o644); err != nil {
			t.Fatal(err)
		}
	})
	if err == nil {
		t.Error("trailing garbage after the end frame went unnoticed")
	}
}

// TestDiskManifestMismatch covers the store-level validation: missing
// partition files, stray extra ones, a foreign manifest format, an
// unsupported version, and a partition-count disagreement all fail at
// OpenCorpus.
func TestDiskManifestMismatch(t *testing.T) {
	write := func(t *testing.T) string {
		dir := t.TempDir()
		parts, m := Split(diskTestDataset(), 2)
		if err := WriteCorpus(dir, parts, m); err != nil {
			t.Fatal(err)
		}
		return dir
	}

	dir := write(t)
	if err := os.Remove(filepath.Join(dir, PartitionFileName(1))); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenCorpus(dir); err == nil {
		t.Error("missing partition file went unnoticed")
	}

	dir = write(t)
	if err := os.WriteFile(filepath.Join(dir, PartitionFileName(7)), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenCorpus(dir); err == nil {
		t.Error("stray extra partition file went unnoticed")
	}

	dir = write(t)
	if err := os.WriteFile(filepath.Join(dir, ManifestFile),
		[]byte(`{"format":"something/else","version":1,"manifest":{"Partitions":[{}]}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenCorpus(dir); err == nil {
		t.Error("foreign manifest format went unnoticed")
	}

	dir = write(t)
	if err := os.WriteFile(filepath.Join(dir, ManifestFile),
		[]byte(`{"format":"blueskies/partition-store","version":99,"manifest":{"Partitions":[{}]}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenCorpus(dir); err == nil {
		t.Error("future store version went unnoticed")
	}

	dir = write(t)
	m, err := ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	m.Partitions = m.Partitions[:1] // manifest says 1, disk has 2
	if err := WriteManifest(dir, m); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenCorpus(dir); err == nil {
		t.Error("manifest/partition count mismatch went unnoticed")
	}
}

// TestDiskRespillClearsStale pins the overwrite contract: writing a
// store into a directory that already holds one replaces it entirely —
// stale part files beyond the new partition count must not survive to
// fail (or worse, blend into) later opens.
func TestDiskRespillClearsStale(t *testing.T) {
	dir := t.TempDir()
	big, m4 := Split(diskTestDataset(), 4)
	if err := WriteCorpus(dir, big, m4); err != nil {
		t.Fatal(err)
	}
	small, m2 := Split(diskTestDataset(), 2)
	if err := WriteCorpus(dir, small, m2); err != nil {
		t.Fatal(err)
	}
	c, err := OpenCorpus(dir)
	if err != nil {
		t.Fatalf("re-spilled store does not open: %v", err)
	}
	if len(c.Manifest.Partitions) != 2 {
		t.Fatalf("re-spilled store has %d partitions, want 2", len(c.Manifest.Partitions))
	}
	// Unrelated files survive a re-spill; only store artifacts clear.
	keep := filepath.Join(dir, "notes.txt")
	if err := os.WriteFile(keep, []byte("keep me"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := WriteCorpus(dir, small, m2); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(keep); err != nil {
		t.Fatalf("re-spill removed an unrelated file: %v", err)
	}
}

// TestSimBlockRejectsInlineLabels pins the wire invariant from the
// receive side: inline labels are a disk-store affordance, and a
// #sim.block stream frame smuggling them in must be rejected by
// DecodeStreamEvent (not just unproducible via BlockEvent) — they
// would bypass the labeler gate and the per-partition label bases.
func TestSimBlockRejectsInlineLabels(t *testing.T) {
	ds := diskTestDataset()
	if _, err := BlockEvent(&RecordBlock{Labels: ds.Labels}); err == nil {
		t.Fatal("BlockEvent accepted labels")
	}
	body, err := cbor.Marshal(blockToWire(&RecordBlock{Labels: ds.Labels}))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := DecodeStreamEvent(&events.Sim{Kind: simKindBlock, Body: body}); err == nil {
		t.Fatal("DecodeStreamEvent accepted a sim block carrying inline labels")
	}
}

// TestDiskVersionGate pins the block-file header checks: wrong magic
// and future format versions are rejected.
func TestDiskVersionGate(t *testing.T) {
	if _, err := NewPartitionReader(bytes.NewReader([]byte("NOTAPART\x00\x00\x00\x01"))); err == nil {
		t.Error("wrong magic accepted")
	}
	if _, err := NewPartitionReader(bytes.NewReader([]byte(partitionMagic + "\x00\x00\x00\x63"))); err == nil {
		t.Error("future block-file version accepted")
	}
	if _, err := NewPartitionReader(bytes.NewReader([]byte(partitionMagic))); err == nil {
		t.Error("header-truncated file accepted")
	}
}

// drainPartition reads blocks until EOF or error.
func drainPartition(pr *PartitionReader) error {
	for {
		if _, err := pr.Next(); err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			return err
		}
	}
}

// TestPartitionReaderHostileBytes is the always-on randomized half of
// the fuzz coverage (the repo's CI runs `go test`, not `go test
// -fuzz`): thousands of random mutations, truncations, and splices of
// a valid partition file, plus pure noise, must all produce errors or
// clean EOFs — never a panic and never a runaway allocation.
func TestPartitionReaderHostileBytes(t *testing.T) {
	for _, version := range []int{1, 2, DiskFormatVersion} {
		path := filepath.Join(t.TempDir(), "part.cbor")
		if err := WritePartitionVersion(path, diskTestDataset(), 2, version); err != nil {
			t.Fatal(err)
		}
		valid, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if version == DiskFormatVersion {
			// Mutate the compressed form too: corrupt LZ frames must
			// fail as cleanly as corrupt plain frames.
			comp, err := CompressPartitionBlocks(valid)
			if err != nil {
				t.Fatal(err)
			}
			valid = comp
		}
		versionHeader := append([]byte(partitionMagic), 0, 0, 0, byte(version))
		rng := rand.New(rand.NewSource(20240501))
		for i := 0; i < 4000; i++ {
			var mut []byte
			switch i % 4 {
			case 0: // byte flips
				mut = append([]byte(nil), valid...)
				for j := 0; j < 1+rng.Intn(8); j++ {
					mut[rng.Intn(len(mut))] ^= byte(1 + rng.Intn(255))
				}
			case 1: // truncation
				mut = valid[:rng.Intn(len(valid))]
			case 2: // splice two random windows
				a, b := rng.Intn(len(valid)), rng.Intn(len(valid))
				mut = append(append([]byte(nil), valid[:a]...), valid[b:]...)
			case 3: // noise with a valid header
				mut = make([]byte, rng.Intn(512))
				rng.Read(mut)
				if i%8 == 3 {
					mut = append(append([]byte(nil), versionHeader...), mut...)
				}
			}
			pr, err := NewPartitionReader(bytes.NewReader(mut))
			if err != nil {
				continue
			}
			_ = drainPartition(pr) // errors are expected; panics fail the test
		}
	}
}

// FuzzPartitionReader throws arbitrary bytes at the block reader: it
// must always return (blocks, error) — never panic, never spin — for
// any input, seeded with a valid partition file and its mutations.
func FuzzPartitionReader(f *testing.F) {
	for _, version := range []int{1, 2, DiskFormatVersion} {
		path := filepath.Join(f.TempDir(), "part.cbor")
		if err := WritePartitionVersion(path, diskTestDataset(), 2, version); err != nil {
			f.Fatal(err)
		}
		valid, err := os.ReadFile(path)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(valid)
		f.Add(valid[:len(valid)/2])
		if version == DiskFormatVersion {
			comp, err := CompressPartitionBlocks(valid)
			if err != nil {
				f.Fatal(err)
			}
			f.Add(comp)
			f.Add(comp[:len(comp)/2])
		}
	}
	f.Add([]byte(partitionMagic + "\x00\x00\x00\x01"))
	f.Add([]byte(partitionMagic + "\x00\x00\x00\x02"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		pr, err := NewPartitionReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		_ = drainPartition(pr) // any error is fine; panics are not
	})
}
