package core

import (
	"bytes"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"
)

// -update regenerates the checked-in golden v1 store under testdata/.
var updateGolden = flag.Bool("update", false, "regenerate golden testdata stores")

// columnarTestBlock builds one RecordBlock exercising every collection
// and field class the columnar codec carries, including the header.
func columnarTestBlock() *RecordBlock {
	ds := diskTestDataset()
	return &RecordBlock{
		Header: &StreamHeader{
			Scale:         ds.Scale,
			WindowStart:   ds.WindowStart,
			WindowEnd:     ds.WindowEnd,
			Firehose:      ds.Firehose,
			NonBskyEvents: ds.NonBskyEvents,
		},
		Labelers:      ds.Labelers,
		Users:         ds.Users,
		Posts:         ds.Posts,
		Days:          ds.Daily,
		Labels:        ds.Labels,
		FeedGens:      ds.FeedGens,
		Domains:       ds.Domains,
		HandleUpdates: ds.HandleUpdates,
	}
}

// TestColumnarRoundTrip pins the lossless contract of the v2 codec at
// the single-block level, including the degenerate blocks the disk
// writer emits (header-only, one collection at a time, empty).
func TestColumnarRoundTrip(t *testing.T) {
	full := columnarTestBlock()
	blocks := []*RecordBlock{
		full,
		{},
		{Header: full.Header, Labelers: full.Labelers},
		{Users: full.Users},
		{Posts: full.Posts},
		{Days: full.Days},
		{Labels: full.Labels},
		{FeedGens: full.FeedGens},
		{Domains: full.Domains},
		{HandleUpdates: full.HandleUpdates},
	}
	for i, b := range blocks {
		enc, err := MarshalBlockVersion(b, 2)
		if err != nil {
			t.Fatalf("block %d: %v", i, err)
		}
		got, err := UnmarshalBlock(enc)
		if err != nil {
			t.Fatalf("block %d: decode: %v", i, err)
		}
		if !reflect.DeepEqual(got, b) {
			t.Errorf("block %d drifted through the columnar codec:\n got %+v\nwant %+v", i, got, b)
		}
	}
}

// TestColumnarV1ParityNormalization pins that the v1 and v2 codecs
// normalize identically (empty slices/maps decode as nil on both), so
// switching store versions can never shift a DeepEqual-based golden.
func TestColumnarV1ParityNormalization(t *testing.T) {
	b := &RecordBlock{
		Users: []User{{DID: "did:plc:x"}},
		Days:  []DayActivity{{Date: time.Date(2024, 3, 10, 0, 0, 0, 0, time.UTC), ActiveByLang: map[string]int{}}},
		Labelers: []Labeler{
			{DID: "did:plc:l", Values: []string{}},
		},
	}
	v1, err := MarshalBlockVersion(b, 1)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := MarshalBlockVersion(b, 2)
	if err != nil {
		t.Fatal(err)
	}
	d1, err := UnmarshalBlock(v1)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := UnmarshalBlock(v2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(d1, d2) {
		t.Errorf("v1 and v2 normalize differently:\n v1 %+v\n v2 %+v", d1, d2)
	}
}

// TestColumnarDeterminism pins byte-identical encoding across calls —
// the property the spill-store byte-compare goldens stand on.
func TestColumnarDeterminism(t *testing.T) {
	b := columnarTestBlock()
	first := encodeColumnarBlock(b)
	for i := 0; i < 8; i++ {
		if !bytes.Equal(first, encodeColumnarBlock(b)) {
			t.Fatalf("encoding of the same block drifted on call %d", i)
		}
	}
}

// TestColumnarSmallerThanCBOR pins the size win on a realistic
// repetitive block: dictionary interning plus delta/varint packing
// must beat the row-CBOR map encoding by a wide margin, not scrape by.
func TestColumnarSmallerThanCBOR(t *testing.T) {
	base := time.Date(2024, 3, 10, 0, 0, 0, 0, time.UTC)
	var users []User
	for i := 0; i < 2000; i++ {
		users = append(users, User{
			DID:       fmt.Sprintf("did:plc:user%06d", i),
			Handle:    fmt.Sprintf("user%06d.bsky.social", i),
			DIDMethod: "plc",
			PDS:       fmt.Sprintf("pds%d", i%8),
			Proof:     ProofManaged,
			CreatedAt: base.Add(time.Duration(i) * time.Second),
			Lang:      []string{"en", "pt", "ja", "de"}[i%4],
			Followers: i % 100, Following: i % 50, Posts: i % 30,
		})
	}
	b := &RecordBlock{Users: users}
	v1, err := MarshalBlockVersion(b, 1)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := MarshalBlockVersion(b, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(v2)*2 > len(v1) {
		t.Errorf("columnar encoding is %d bytes vs %d CBOR — expected at least a 2× size win", len(v2), len(v1))
	}
}

// TestUnmarshalBlockDispatch pins the codec-tag dispatch: bare v1
// CBOR, tagged CBOR, and columnar payloads all decode; unknown tags
// and empty input fail loudly.
func TestUnmarshalBlockDispatch(t *testing.T) {
	b := columnarTestBlock()
	v1, err := MarshalBlockVersion(b, 1)
	if err != nil {
		t.Fatal(err)
	}
	for name, enc := range map[string][]byte{
		"bare v1 CBOR": v1,
		"tagged CBOR":  append([]byte{blockCodecCBOR}, v1...),
		"columnar":     encodeColumnarBlock(b),
	} {
		got, err := UnmarshalBlock(enc)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !reflect.DeepEqual(got, b) {
			t.Errorf("%s: decoded block drifted", name)
		}
	}
	if _, err := UnmarshalBlock(nil); err == nil {
		t.Error("empty block accepted")
	}
	if _, err := UnmarshalBlock([]byte{0x7f, 0x00}); err == nil {
		t.Error("unknown codec tag accepted")
	}
	if _, err := MarshalBlockVersion(b, DiskFormatVersion+1); err == nil {
		t.Error("future block format version accepted by the writer")
	}
}

// TestSimulatedV1ReaderRejectsV2 pins the downgrade story from the old
// reader's side: a binary built when DiskFormatVersion was 1 applies
// exactly the version gate newPartitionReaderMax(r, 1) applies, so a
// v2 file must fail its header check with an error naming the version
// — never be misparsed.
func TestSimulatedV1ReaderRejectsV2(t *testing.T) {
	path := filepath.Join(t.TempDir(), "part.cbor")
	if err := WritePartition(path, diskTestDataset(), 0); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	_, err = newPartitionReaderMax(bytes.NewReader(data), 1)
	if err == nil {
		t.Fatal("a v1-era reader accepted a current-format block file")
	}
	if !strings.Contains(err.Error(), fmt.Sprintf("version %d", DiskFormatVersion)) {
		t.Errorf("rejection does not name the offending version: %v", err)
	}
	// The same bytes open fine with the current gate.
	if _, err := NewPartitionReader(bytes.NewReader(data)); err != nil {
		t.Fatalf("current reader rejected its own file: %v", err)
	}
}

// TestTranscodePartitionBlocks pins the scheduler's per-worker
// downgrade: v2 block bytes transcode to a valid v1 file carrying the
// same records in the same order, and back.
func TestTranscodePartitionBlocks(t *testing.T) {
	path := filepath.Join(t.TempDir(), "part.cbor")
	if err := WritePartition(path, diskTestDataset(), 3); err != nil {
		t.Fatal(err)
	}
	v2, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	v1, err := TranscodePartitionBlocks(v2, 1)
	if err != nil {
		t.Fatal(err)
	}
	readAll := func(data []byte, wantVersion int) []*RecordBlock {
		t.Helper()
		pr, err := NewPartitionReader(bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		if pr.Version() != wantVersion {
			t.Fatalf("transcoded file is v%d, want v%d", pr.Version(), wantVersion)
		}
		var blocks []*RecordBlock
		for {
			b, err := pr.Next()
			if err != nil {
				return blocks
			}
			blocks = append(blocks, b)
		}
	}
	want := readAll(v2, DiskFormatVersion)
	got := readAll(v1, 1)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("v1 transcode drifted from the current-format original")
	}
	back, err := TranscodePartitionBlocks(v1, DiskFormatVersion)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, v2) {
		t.Errorf("v1→v%d transcode is not byte-identical to the original file", DiskFormatVersion)
	}
	same, err := TranscodePartitionBlocks(v2, DiskFormatVersion)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(same, v2) {
		t.Errorf("same-version transcode rewrote the bytes")
	}
}

// TestMixedVersionStoreRejected pins the blended re-spill gate: a
// store whose manifest and block files disagree on the format version
// must fail OpenCorpus loudly, never blend.
func TestMixedVersionStoreRejected(t *testing.T) {
	dir := t.TempDir()
	parts, m := Split(diskTestDataset(), 2)
	if err := WriteCorpusVersion(dir, parts, m, 1); err != nil {
		t.Fatal(err)
	}
	c, err := OpenCorpus(dir)
	if err != nil {
		t.Fatalf("clean v1 store rejected: %v", err)
	}
	if c.Version != 1 {
		t.Fatalf("v1 store opened as v%d", c.Version)
	}
	// A stray v2 re-spill of one partition over the v1 store.
	if err := WritePartitionVersion(filepath.Join(dir, PartitionFileName(0)), parts[0], 0, 2); err != nil {
		t.Fatal(err)
	}
	_, err = OpenCorpus(dir)
	if err == nil {
		t.Fatal("mixed-version store opened")
	}
	if !strings.Contains(err.Error(), "mixed-version") {
		t.Errorf("mixed-version error is not loud about the cause: %v", err)
	}
	// A full re-spill at v2 replaces everything and opens clean.
	if err := WriteCorpus(dir, parts, m); err != nil {
		t.Fatal(err)
	}
	c, err = OpenCorpus(dir)
	if err != nil {
		t.Fatalf("full v2 re-spill over a v1 store does not open: %v", err)
	}
	if c.Version != DiskFormatVersion {
		t.Fatalf("re-spilled store is v%d, want v%d", c.Version, DiskFormatVersion)
	}
}

// TestGoldenV1Store reads the checked-in v1 store (written by a v1
// writer and frozen as testdata) with the current reader — the
// cross-version compatibility promise in its strongest form, immune to
// accidental co-evolution of writer and reader. Regenerate with
// `go test ./internal/core/ -run TestGoldenV1Store -update`.
func TestGoldenV1Store(t *testing.T) {
	dir := filepath.Join("testdata", "v1-store")
	if *updateGolden {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := WriteCorpusVersion(dir, []*Dataset{diskTestDataset()}, nil, 1); err != nil {
			t.Fatal(err)
		}
		t.Logf("regenerated %s", dir)
	}
	c, err := OpenCorpus(dir)
	if err != nil {
		t.Fatalf("golden v1 store does not open: %v", err)
	}
	if c.Version != 1 {
		t.Fatalf("golden store is v%d, want v1", c.Version)
	}
	got, err := c.ReadPartition(0)
	if err != nil {
		t.Fatal(err)
	}
	if want := diskTestDataset(); !reflect.DeepEqual(got, want) {
		t.Errorf("golden v1 store decoded with drift:\n got %+v\nwant %+v", got, want)
	}
}

// TestColumnarHostileBytes complements TestPartitionReaderHostileBytes
// below the framing layer: random mutations of a valid columnar
// payload hit the decoder directly (no checksum shielding it), and
// must produce errors or valid blocks — never panics or runaway
// allocations.
func TestColumnarHostileBytes(t *testing.T) {
	valid := encodeColumnarBlock(columnarTestBlock())[1:] // strip tag
	rng := rand.New(rand.NewSource(20260808))
	for i := 0; i < 4000; i++ {
		var mut []byte
		switch i % 3 {
		case 0:
			mut = append([]byte(nil), valid...)
			for j := 0; j < 1+rng.Intn(8); j++ {
				mut[rng.Intn(len(mut))] ^= byte(1 + rng.Intn(255))
			}
		case 1:
			mut = valid[:rng.Intn(len(valid))]
		case 2:
			mut = make([]byte, rng.Intn(256))
			rng.Read(mut)
		}
		_, _ = decodeColumnarBlock(mut, nil)
	}
}
