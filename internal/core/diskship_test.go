package core

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// shipTestFile writes diskTestDataset as a block file at version and
// returns its bytes.
func shipTestFile(t *testing.T, version int) []byte {
	t.Helper()
	path := filepath.Join(t.TempDir(), "part.cbor")
	if err := WritePartitionVersion(path, diskTestDataset(), 2, version); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// collectBlocks materializes every row of a framed block payload.
func collectBlocks(t *testing.T, data []byte) *Dataset {
	t.Helper()
	pr, err := NewPartitionReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	out := &Dataset{}
	for {
		b, err := pr.Next()
		if errors.Is(err, io.EOF) {
			return out
		}
		if err != nil {
			t.Fatal(err)
		}
		if b.Header != nil {
			out.Scale = b.Header.Scale
			out.Firehose = b.Header.Firehose
			out.NonBskyEvents = b.Header.NonBskyEvents
		}
		out.Labelers = append(out.Labelers, b.Labelers...)
		out.Users = append(out.Users, b.Users...)
		out.Posts = append(out.Posts, b.Posts...)
		out.Daily = append(out.Daily, b.Days...)
		out.Labels = append(out.Labels, b.Labels...)
		out.FeedGens = append(out.FeedGens, b.FeedGens...)
		out.Domains = append(out.Domains, b.Domains...)
		out.HandleUpdates = append(out.HandleUpdates, b.HandleUpdates...)
	}
}

// TestClipPartitionBlocksParity pins the sliced-ship contract: the
// clipped payload for each leg of a split carries exactly that leg's
// rows (the same sub-ranges SubRowRange describes), facts ride on leg
// 0 only, and the legs concatenate back to the whole partition.
func TestClipPartitionBlocksParity(t *testing.T) {
	ds := diskTestDataset()
	data := shipTestFile(t, DiskFormatVersion)
	info := ds.PartitionInfo(0)
	const nsub = 3
	subs := SubPartitionInfos(info, nsub)
	var cat *Dataset
	for j, sub := range subs {
		rng := SubRowRange(info, subs[j], j == 0)
		clipped, err := ClipPartitionBlocks(data, rng, DiskFormatVersion)
		if err != nil {
			t.Fatalf("sub %d: %v", j, err)
		}
		if len(clipped) >= len(data) {
			t.Errorf("sub %d: sliced payload is %d bytes, parent is %d — nothing saved", j, len(clipped), len(data))
		}
		got := collectBlocks(t, clipped)
		if counts := got.Counts(); counts != sub.Records {
			t.Fatalf("sub %d: sliced payload carries %+v rows, sub-range promises %+v", j, counts, sub.Records)
		}
		lo, hi := rng.Skip.Labels, rng.Skip.Labels+rng.Take.Labels
		if hi > lo && !reflect.DeepEqual(got.Labels, ds.Labels[lo:hi]) {
			t.Fatalf("sub %d: label rows differ from ds.Labels[%d:%d]", j, lo, hi)
		}
		if j == 0 {
			if got.Firehose != ds.Firehose || got.NonBskyEvents != ds.NonBskyEvents {
				t.Fatalf("sub 0: facts dropped: %+v / %d", got.Firehose, got.NonBskyEvents)
			}
			cat = got
		} else {
			if got.Firehose != (EventCounts{}) || got.NonBskyEvents != 0 {
				t.Fatalf("sub %d: corpus facts duplicated onto a non-facts leg", j)
			}
			cat.Users = append(cat.Users, got.Users...)
			cat.Posts = append(cat.Posts, got.Posts...)
			cat.Daily = append(cat.Daily, got.Daily...)
			cat.Labels = append(cat.Labels, got.Labels...)
			cat.FeedGens = append(cat.FeedGens, got.FeedGens...)
			cat.Domains = append(cat.Domains, got.Domains...)
			cat.HandleUpdates = append(cat.HandleUpdates, got.HandleUpdates...)
		}
	}
	whole := collectBlocks(t, data)
	if !reflect.DeepEqual(cat.Counts(), whole.Counts()) || !reflect.DeepEqual(cat.Labels, whole.Labels) ||
		!reflect.DeepEqual(cat.Users, whole.Users) || !reflect.DeepEqual(cat.Posts, whole.Posts) {
		t.Fatal("concatenated sub-range slices do not rebuild the whole partition")
	}
}

// TestCompressPartitionBlocksRoundTrip pins the ship-compression
// contract: a v3 payload shrinks, reads back record-identical, and the
// rewrite is idempotent and deterministic; pre-v3 payloads (no LZ bit
// in their format) pass through untouched.
func TestCompressPartitionBlocksRoundTrip(t *testing.T) {
	data := shipTestFile(t, DiskFormatVersion)
	comp, err := CompressPartitionBlocks(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(comp) >= len(data) {
		t.Fatalf("compressed payload %d bytes, raw %d: nothing saved", len(comp), len(data))
	}
	if !reflect.DeepEqual(collectBlocks(t, comp), collectBlocks(t, data)) {
		t.Fatal("compressed payload decodes to different records")
	}
	again, err := CompressPartitionBlocks(comp)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(again, comp) {
		t.Fatal("compression is not idempotent")
	}
	if second, err := CompressPartitionBlocks(data); err != nil || !bytes.Equal(second, comp) {
		t.Fatalf("compression is not deterministic (err %v)", err)
	}
	for _, version := range []int{1, 2} {
		old := shipTestFile(t, version)
		got, err := CompressPartitionBlocks(old)
		if err != nil {
			t.Fatalf("v%d: %v", version, err)
		}
		if !bytes.Equal(got, old) {
			t.Fatalf("v%d payload rewritten; formats below 3 have no LZ bit", version)
		}
	}
}

// TestClipThenCompress pins the scheduler's exact ship pipeline for a
// split unit on a v3-capable worker: slice, compress, read back.
func TestClipThenCompress(t *testing.T) {
	ds := diskTestDataset()
	data := shipTestFile(t, DiskFormatVersion)
	info := ds.PartitionInfo(0)
	subs := SubPartitionInfos(info, 2)
	rng := SubRowRange(info, subs[1], false)
	clipped, err := ClipPartitionBlocks(data, rng, DiskFormatVersion)
	if err != nil {
		t.Fatal(err)
	}
	comp, err := CompressPartitionBlocks(clipped)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(collectBlocks(t, comp), collectBlocks(t, clipped)) {
		t.Fatal("compressed slice decodes to different records")
	}
}
