package core

import (
	"testing"
	"time"
)

func TestEventCountsTotal(t *testing.T) {
	e := EventCounts{Commits: 100, Identity: 10, Handle: 5, Tombstone: 1}
	if e.Total() != 116 {
		t.Fatalf("total = %d", e.Total())
	}
}

func TestLabelReactionTime(t *testing.T) {
	created := time.Date(2024, 4, 1, 0, 0, 0, 0, time.UTC)
	l := Label{SubjectCreated: created, Applied: created.Add(42 * time.Second)}
	if l.ReactionTime() != 42*time.Second {
		t.Fatalf("rt = %v", l.ReactionTime())
	}
}

func TestUserByDID(t *testing.T) {
	ds := &Dataset{Users: []User{{DID: "did:plc:a"}, {DID: "did:plc:b"}}}
	if i, ok := ds.UserByDID("did:plc:b"); !ok || i != 1 {
		t.Fatalf("lookup = %d %v", i, ok)
	}
	if _, ok := ds.UserByDID("did:plc:missing"); ok {
		t.Fatal("missing DID found")
	}
}

func TestTotalOps(t *testing.T) {
	ds := &Dataset{Daily: []DayActivity{
		{Posts: 10, Likes: 20, Reposts: 3, Follows: 4, Blocks: 1},
		{Posts: 5, Likes: 10, Reposts: 2, Follows: 2, Blocks: 0},
	}}
	posts, likes, reposts, follows, blocks := ds.TotalOps()
	if posts != 15 || likes != 30 || reposts != 5 || follows != 6 || blocks != 1 {
		t.Fatalf("totals = %d %d %d %d %d", posts, likes, reposts, follows, blocks)
	}
}
