package core

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
	"time"
)

// This file implements the v2 columnar block encoding (DESIGN.md §11).
// A v1 disk frame carries one row-oriented CBOR map per record; decode
// cost — map-key dispatch plus one small allocation per record — is
// what dominates the out-of-core and ship-blocks hot paths. The v2
// encoding turns a RecordBlock into per-column arrays instead:
//
//	byte    codec tag (blockCodecColumnar)
//	uvarint dictionary entry count
//	entries uvarint length | bytes, id = position (first-use order)
//	byte    header presence (0 or 1), then the header scalars
//	per collection: uvarint row count, then whole columns in
//	    struct-field order
//
// Column encodings:
//
//   - low-cardinality strings (PDS labels, langs, label vals/srcs,
//     platforms, registrars …) are dictionary ids — the same interning
//     discipline as the engine's URI/Val/Src tables, applied on the
//     wire: each distinct string is decoded exactly once per block;
//   - unique strings (DIDs, URIs, handles, names) are inline
//     length-prefixed bytes;
//   - timestamps and index-like ints (AuthorIdx, CreatorIdx) are
//     zigzag-varint deltas against the previous row — generated
//     corpora are time-sorted, so deltas are small;
//   - other ints are zigzag varints, booleans pack 8-per-byte into
//     bitsets, float64s are raw big-endian bits.
//
// Determinism: dictionary ids are assigned in first-use order and map
// columns (ActiveByLang) sort their keys, so encoding is a pure
// function of the block — byte-identical across runs, which the spill
// goldens rely on.
//
// Hostile-input discipline mirrors the cbor decoder: every count is
// bounded by the bytes that remain (a row/entry always costs at least
// its per-row floor), dictionary ids are range-checked, and the
// decoder fails loudly on trailing bytes — a lying count can never
// force a large allocation or a panic.

// colEnc accumulates the column body and the string dictionary.
type colEnc struct {
	body []byte
	ids  map[string]uint64
	dict []string
}

func (e *colEnc) uv(v uint64) { e.body = binary.AppendUvarint(e.body, v) }
func (e *colEnc) sv(v int64)  { e.body = binary.AppendVarint(e.body, v) }

// str writes an inline length-prefixed string (unique-string columns).
func (e *colEnc) str(s string) {
	e.uv(uint64(len(s)))
	e.body = append(e.body, s...)
}

// dictStr writes s as a dictionary id, interning on first use.
func (e *colEnc) dictStr(s string) {
	id, ok := e.ids[s]
	if !ok {
		id = uint64(len(e.dict))
		e.ids[s] = id
		e.dict = append(e.dict, s)
	}
	e.uv(id)
}

func (e *colEnc) f64(v float64) {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], math.Float64bits(v))
	e.body = append(e.body, b[:]...)
}

// times delta-encodes a timestamp column (UnixNano, zero time = 0).
func (e *colEnc) times(n int, at func(int) time.Time) {
	var prev int64
	for i := 0; i < n; i++ {
		v := nsOf(at(i))
		e.sv(v - prev)
		prev = v
	}
}

// deltas delta-encodes an int column (sequence-like indexes).
func (e *colEnc) deltas(n int, at func(int) int) {
	var prev int64
	for i := 0; i < n; i++ {
		v := int64(at(i))
		e.sv(v - prev)
		prev = v
	}
}

// bits packs a bool column into a bitset, 8 rows per byte, LSB first.
func (e *colEnc) bits(n int, at func(int) bool) {
	for base := 0; base < n; base += 8 {
		var bb byte
		for j := 0; j < 8 && base+j < n; j++ {
			if at(base + j) {
				bb |= 1 << uint(j)
			}
		}
		e.body = append(e.body, bb)
	}
}

// encodeColumnarBlock encodes b as a tagged v2 columnar payload — the
// bytes a v2 disk frame, #sim.block event, or MarshalBlock carries.
func encodeColumnarBlock(b *RecordBlock) []byte {
	e := &colEnc{ids: make(map[string]uint64, 64)}
	e.header(b.Header)
	e.labelers(b.Labelers)
	e.users(b.Users)
	e.posts(b.Posts)
	e.days(b.Days)
	e.labels(b.Labels)
	e.feedGens(b.FeedGens)
	e.domains(b.Domains)
	e.handleUpdates(b.HandleUpdates)

	dictBytes := 0
	for _, s := range e.dict {
		dictBytes += binary.MaxVarintLen64 + len(s)
	}
	out := make([]byte, 0, 1+binary.MaxVarintLen64+dictBytes+len(e.body))
	out = append(out, blockCodecColumnar)
	out = binary.AppendUvarint(out, uint64(len(e.dict)))
	for _, s := range e.dict {
		out = binary.AppendUvarint(out, uint64(len(s)))
		out = append(out, s...)
	}
	return append(out, e.body...)
}

func (e *colEnc) header(h *StreamHeader) {
	if h == nil {
		e.body = append(e.body, 0)
		return
	}
	e.body = append(e.body, 1)
	e.sv(int64(h.Scale))
	e.sv(nsOf(h.WindowStart))
	e.sv(nsOf(h.WindowEnd))
	e.sv(h.Firehose.Commits)
	e.sv(h.Firehose.Identity)
	e.sv(h.Firehose.Handle)
	e.sv(h.Firehose.Tombstone)
	e.sv(h.NonBskyEvents)
}

func (e *colEnc) labelers(ls []Labeler) {
	e.uv(uint64(len(ls)))
	if len(ls) == 0 {
		return
	}
	for i := range ls {
		e.str(ls[i].DID)
	}
	for i := range ls {
		e.str(ls[i].Name)
	}
	e.bits(len(ls), func(i int) bool { return ls[i].Official })
	for i := range ls {
		e.uv(uint64(len(ls[i].Values)))
		for _, v := range ls[i].Values {
			e.dictStr(v)
		}
	}
	e.times(len(ls), func(i int) time.Time { return ls[i].Announced })
	e.bits(len(ls), func(i int) bool { return ls[i].Functional })
	e.bits(len(ls), func(i int) bool { return ls[i].Active })
	for i := range ls {
		e.dictStr(ls[i].Hosting)
	}
	e.bits(len(ls), func(i int) bool { return ls[i].Automated })
	for i := range ls {
		e.sv(int64(ls[i].Likes))
	}
	for i := range ls {
		e.str(ls[i].Operator)
	}
	for i := range ls {
		e.str(ls[i].About)
	}
}

func (e *colEnc) users(us []User) {
	e.uv(uint64(len(us)))
	if len(us) == 0 {
		return
	}
	for i := range us {
		e.str(us[i].DID)
	}
	for i := range us {
		e.str(us[i].Handle)
	}
	for i := range us {
		e.dictStr(us[i].DIDMethod)
	}
	for i := range us {
		e.dictStr(us[i].PDS)
	}
	for i := range us {
		e.dictStr(string(us[i].Proof))
	}
	e.times(len(us), func(i int) time.Time { return us[i].CreatedAt })
	for i := range us {
		e.dictStr(us[i].Lang)
	}
	for i := range us {
		e.sv(int64(us[i].Followers))
	}
	for i := range us {
		e.sv(int64(us[i].Following))
	}
	for i := range us {
		e.sv(int64(us[i].Posts))
	}
	for i := range us {
		e.sv(int64(us[i].Likes))
	}
	for i := range us {
		e.sv(int64(us[i].Reposts))
	}
	for i := range us {
		e.sv(int64(us[i].Blocks))
	}
	e.bits(len(us), func(i int) bool { return us[i].Deleted })
}

func (e *colEnc) posts(ps []Post) {
	e.uv(uint64(len(ps)))
	if len(ps) == 0 {
		return
	}
	for i := range ps {
		e.str(ps[i].URI)
	}
	e.deltas(len(ps), func(i int) int { return ps[i].AuthorIdx })
	for i := range ps {
		e.dictStr(ps[i].Lang)
	}
	e.times(len(ps), func(i int) time.Time { return ps[i].CreatedAt })
	for i := range ps {
		e.sv(int64(ps[i].Likes))
	}
	for i := range ps {
		e.sv(int64(ps[i].Reposts))
	}
	e.bits(len(ps), func(i int) bool { return ps[i].HasMedia })
	e.bits(len(ps), func(i int) bool { return ps[i].AltText })
}

func (e *colEnc) days(ds []DayActivity) {
	e.uv(uint64(len(ds)))
	if len(ds) == 0 {
		return
	}
	e.times(len(ds), func(i int) time.Time { return ds[i].Date })
	for i := range ds {
		e.sv(int64(ds[i].ActiveUsers))
	}
	for i := range ds {
		e.sv(int64(ds[i].Posts))
	}
	for i := range ds {
		e.sv(int64(ds[i].Likes))
	}
	for i := range ds {
		e.sv(int64(ds[i].Reposts))
	}
	for i := range ds {
		e.sv(int64(ds[i].Follows))
	}
	for i := range ds {
		e.sv(int64(ds[i].Blocks))
	}
	for i := range ds {
		e.langMap(ds[i].ActiveByLang)
	}
}

// langMap writes an ActiveByLang map column entry: count, then
// key-sorted (dict id, svarint) pairs — shared by the v2 and v3 layouts.
func (e *colEnc) langMap(m map[string]int) {
	e.uv(uint64(len(m)))
	if len(m) == 0 {
		return
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		e.dictStr(k)
		e.sv(int64(m[k]))
	}
}

func (e *colEnc) labels(ls []Label) {
	e.uv(uint64(len(ls)))
	if len(ls) == 0 {
		return
	}
	for i := range ls {
		e.dictStr(ls[i].Src)
	}
	for i := range ls {
		e.str(ls[i].URI)
	}
	for i := range ls {
		e.dictStr(ls[i].Val)
	}
	e.bits(len(ls), func(i int) bool { return ls[i].Neg })
	for i := range ls {
		e.dictStr(string(ls[i].Kind))
	}
	e.times(len(ls), func(i int) time.Time { return ls[i].Applied })
	e.times(len(ls), func(i int) time.Time { return ls[i].SubjectCreated })
	e.bits(len(ls), func(i int) bool { return ls[i].FreshSubject })
}

func (e *colEnc) feedGens(fs []FeedGen) {
	e.uv(uint64(len(fs)))
	if len(fs) == 0 {
		return
	}
	for i := range fs {
		e.str(fs[i].URI)
	}
	e.deltas(len(fs), func(i int) int { return fs[i].CreatorIdx })
	for i := range fs {
		e.dictStr(fs[i].Platform)
	}
	for i := range fs {
		e.str(fs[i].DisplayName)
	}
	for i := range fs {
		e.str(fs[i].Description)
	}
	for i := range fs {
		e.dictStr(fs[i].Lang)
	}
	e.times(len(fs), func(i int) time.Time { return fs[i].CreatedAt })
	for i := range fs {
		e.sv(int64(fs[i].Likes))
	}
	for i := range fs {
		e.sv(int64(fs[i].Posts))
	}
	e.times(len(fs), func(i int) time.Time { return fs[i].LastPost })
	e.bits(len(fs), func(i int) bool { return fs[i].Reachable })
	e.bits(len(fs), func(i int) bool { return fs[i].Personalized })
	for i := range fs {
		e.f64(fs[i].LabeledShare)
	}
	for i := range fs {
		e.dictStr(fs[i].TopLabel)
	}
}

func (e *colEnc) domains(ds []Domain) {
	e.uv(uint64(len(ds)))
	if len(ds) == 0 {
		return
	}
	for i := range ds {
		e.str(ds[i].Name)
	}
	for i := range ds {
		e.sv(int64(ds[i].IANAID))
	}
	for i := range ds {
		e.dictStr(ds[i].RegistrarName)
	}
	e.bits(len(ds), func(i int) bool { return ds[i].CCTLD })
	for i := range ds {
		e.sv(int64(ds[i].TrancoRank))
	}
	for i := range ds {
		e.sv(int64(ds[i].Subdomains))
	}
}

func (e *colEnc) handleUpdates(hs []HandleUpdate) {
	e.uv(uint64(len(hs)))
	if len(hs) == 0 {
		return
	}
	for i := range hs {
		e.str(hs[i].DID)
	}
	for i := range hs {
		e.str(hs[i].NewHandle)
	}
	e.times(len(hs), func(i int) time.Time { return hs[i].Time })
}

// Per-row byte floors for count bounding: a valid row always costs at
// least one byte per varint/string column (plus the fixed float bytes),
// so count ≤ remaining/floor. Bitset bytes are excluded — the floor
// only needs to be a lower bound.
const (
	minRowLabeler      = 8
	minRowUser         = 13
	minRowPost         = 6
	minRowDay          = 8
	minRowLabel        = 6
	minRowFeedGen      = 20 // 12 varint/string columns + 8 raw float bytes
	minRowDomain       = 5
	minRowHandleUpdate = 3
	minDictEntry       = 1
	minMapEntry        = 2
)

// colDec decodes a columnar payload with a sticky error: after the
// first failure every read returns a zero value and the final error is
// surfaced once, so per-column loops never need inline error plumbing.
type colDec struct {
	data []byte
	pos  int
	dict []string
	db   *DictBlock // optional dictionary-view capture (NextDict path)
	err  error
}

func (d *colDec) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("core: columnar block: "+format, args...)
	}
}

func (d *colDec) remaining() int { return len(d.data) - d.pos }

func (d *colDec) uv() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.data[d.pos:])
	if n <= 0 {
		d.fail("truncated varint at offset %d", d.pos)
		return 0
	}
	d.pos += n
	return v
}

func (d *colDec) sv() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.data[d.pos:])
	if n <= 0 {
		d.fail("truncated varint at offset %d", d.pos)
		return 0
	}
	d.pos += n
	return v
}

// count reads a row/entry count and bounds it by the bytes remaining:
// every counted item costs at least minBytes, so a count the input
// cannot back is corruption, detected before any allocation.
func (d *colDec) count(minBytes int) int {
	v := d.uv()
	if d.err != nil {
		return 0
	}
	if v > uint64(d.remaining())/uint64(minBytes) {
		d.fail("count %d exceeds the %d bytes remaining", v, d.remaining())
		return 0
	}
	return int(v)
}

// take consumes n raw bytes.
func (d *colDec) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n > d.remaining() {
		d.fail("need %d bytes at offset %d, have %d", n, d.pos, d.remaining())
		return nil
	}
	b := d.data[d.pos : d.pos+n]
	d.pos += n
	return b
}

func (d *colDec) str() string {
	n := d.count(1)
	return string(d.take(n))
}

func (d *colDec) dictStr() string {
	id := d.uv()
	if d.err != nil {
		return ""
	}
	if id >= uint64(len(d.dict)) {
		d.fail("dictionary id %d out of range (%d entries)", id, len(d.dict))
		return ""
	}
	return d.dict[id]
}

// dictIDs reads an n-row dictionary-id column, range-checking every id.
// Keeping the raw ids around (not just the resolved strings) is what
// lets NextDict hand analysis a DictBlock view for intern-table fusion.
func (d *colDec) dictIDs(n int) []uint32 {
	if d.err != nil || n == 0 {
		return nil
	}
	ids := make([]uint32, n)
	for i := range ids {
		id := d.uv()
		if d.err != nil {
			return nil
		}
		if id >= uint64(len(d.dict)) {
			d.fail("dictionary id %d out of range (%d entries)", id, len(d.dict))
			return nil
		}
		ids[i] = uint32(id)
	}
	return ids
}

// dictAt resolves ids[i] against the dictionary; safe after a decode
// failure (dictIDs returns nil then).
func (d *colDec) dictAt(ids []uint32, i int) string {
	if ids == nil {
		return ""
	}
	return d.dict[ids[i]]
}

func (d *colDec) f64() float64 {
	b := d.take(8)
	if d.err != nil {
		return 0
	}
	return math.Float64frombits(binary.BigEndian.Uint64(b))
}

// bitset reads back a bool column; get stays in bounds even after a
// decode failure (a zero-filled set is substituted).
type bitset []byte

func (bs bitset) get(i int) bool { return bs[i>>3]&(1<<uint(i&7)) != 0 }

func (d *colDec) bits(n int) bitset {
	nb := (n + 7) / 8
	b := d.take(nb)
	if b == nil {
		return make(bitset, nb)
	}
	return bitset(b)
}

// decodeColumnarBlock decodes a v2 columnar payload (tag byte already
// stripped) into a RecordBlock. When db is non-nil the dictionary view
// is captured into it for intern-table fusion.
func decodeColumnarBlock(data []byte, db *DictBlock) (*RecordBlock, error) {
	d := &colDec{data: data, db: db}
	if n := d.count(minDictEntry); n > 0 {
		d.dict = make([]string, n)
		for i := range d.dict {
			d.dict[i] = d.str()
		}
	}
	b := &RecordBlock{}
	b.Header = d.header()
	b.Labelers = d.labelersCol()
	b.Users = d.usersCol()
	b.Posts = d.postsCol()
	b.Days = d.daysCol()
	b.Labels = d.labelsCol()
	b.FeedGens = d.feedGensCol()
	b.Domains = d.domainsCol()
	b.HandleUpdates = d.handleUpdatesCol()
	if d.err != nil {
		return nil, d.err
	}
	if d.pos != len(d.data) {
		return nil, errTrailing(len(d.data) - d.pos)
	}
	if db != nil {
		db.Dict = d.dict
	}
	return b, nil
}

func errTrailing(n int) error {
	return fmt.Errorf("core: columnar block: %d trailing bytes", n)
}

func (d *colDec) header() *StreamHeader {
	p := d.take(1)
	if d.err != nil || p[0] == 0 {
		return nil
	}
	if p[0] != 1 {
		d.fail("header presence byte %#x", p[0])
		return nil
	}
	h := &StreamHeader{}
	h.Scale = int(d.sv())
	h.WindowStart = timeOf(d.sv())
	h.WindowEnd = timeOf(d.sv())
	h.Firehose.Commits = d.sv()
	h.Firehose.Identity = d.sv()
	h.Firehose.Handle = d.sv()
	h.Firehose.Tombstone = d.sv()
	h.NonBskyEvents = d.sv()
	return h
}

func (d *colDec) labelersCol() []Labeler {
	n := d.count(minRowLabeler)
	if n == 0 {
		return nil
	}
	ls := make([]Labeler, n)
	for i := range ls {
		ls[i].DID = d.str()
	}
	for i := range ls {
		ls[i].Name = d.str()
	}
	bs := d.bits(n)
	for i := range ls {
		ls[i].Official = bs.get(i)
	}
	for i := range ls {
		if vn := d.count(1); vn > 0 {
			ls[i].Values = make([]string, vn)
			for j := range ls[i].Values {
				ls[i].Values[j] = d.dictStr()
			}
		}
	}
	var prev int64
	for i := range ls {
		prev += d.sv()
		ls[i].Announced = timeOf(prev)
	}
	bs = d.bits(n)
	for i := range ls {
		ls[i].Functional = bs.get(i)
	}
	bs = d.bits(n)
	for i := range ls {
		ls[i].Active = bs.get(i)
	}
	for i := range ls {
		ls[i].Hosting = d.dictStr()
	}
	bs = d.bits(n)
	for i := range ls {
		ls[i].Automated = bs.get(i)
	}
	for i := range ls {
		ls[i].Likes = int(d.sv())
	}
	for i := range ls {
		ls[i].Operator = d.str()
	}
	for i := range ls {
		ls[i].About = d.str()
	}
	return ls
}

func (d *colDec) usersCol() []User {
	n := d.count(minRowUser)
	if n == 0 {
		return nil
	}
	us := make([]User, n)
	for i := range us {
		us[i].DID = d.str()
	}
	for i := range us {
		us[i].Handle = d.str()
	}
	for i := range us {
		us[i].DIDMethod = d.dictStr()
	}
	for i := range us {
		us[i].PDS = d.dictStr()
	}
	for i := range us {
		us[i].Proof = ProofMethod(d.dictStr())
	}
	var prev int64
	for i := range us {
		prev += d.sv()
		us[i].CreatedAt = timeOf(prev)
	}
	for i := range us {
		us[i].Lang = d.dictStr()
	}
	for i := range us {
		us[i].Followers = int(d.sv())
	}
	for i := range us {
		us[i].Following = int(d.sv())
	}
	for i := range us {
		us[i].Posts = int(d.sv())
	}
	for i := range us {
		us[i].Likes = int(d.sv())
	}
	for i := range us {
		us[i].Reposts = int(d.sv())
	}
	for i := range us {
		us[i].Blocks = int(d.sv())
	}
	bs := d.bits(n)
	for i := range us {
		us[i].Deleted = bs.get(i)
	}
	return us
}

func (d *colDec) postsCol() []Post {
	n := d.count(minRowPost)
	if n == 0 {
		return nil
	}
	ps := make([]Post, n)
	for i := range ps {
		ps[i].URI = d.str()
	}
	var prev int64
	for i := range ps {
		prev += d.sv()
		ps[i].AuthorIdx = int(prev)
	}
	for i := range ps {
		ps[i].Lang = d.dictStr()
	}
	prev = 0
	for i := range ps {
		prev += d.sv()
		ps[i].CreatedAt = timeOf(prev)
	}
	for i := range ps {
		ps[i].Likes = int(d.sv())
	}
	for i := range ps {
		ps[i].Reposts = int(d.sv())
	}
	bs := d.bits(n)
	for i := range ps {
		ps[i].HasMedia = bs.get(i)
	}
	bs = d.bits(n)
	for i := range ps {
		ps[i].AltText = bs.get(i)
	}
	return ps
}

func (d *colDec) daysCol() []DayActivity {
	n := d.count(minRowDay)
	if n == 0 {
		return nil
	}
	ds := make([]DayActivity, n)
	var prev int64
	for i := range ds {
		prev += d.sv()
		ds[i].Date = timeOf(prev)
	}
	for i := range ds {
		ds[i].ActiveUsers = int(d.sv())
	}
	for i := range ds {
		ds[i].Posts = int(d.sv())
	}
	for i := range ds {
		ds[i].Likes = int(d.sv())
	}
	for i := range ds {
		ds[i].Reposts = int(d.sv())
	}
	for i := range ds {
		ds[i].Follows = int(d.sv())
	}
	for i := range ds {
		ds[i].Blocks = int(d.sv())
	}
	for i := range ds {
		ds[i].ActiveByLang = d.langMap()
		if d.err != nil {
			return nil
		}
	}
	return ds
}

// langMap reads back one ActiveByLang map column entry — shared by the
// v2 and v3 layouts.
func (d *colDec) langMap() map[string]int {
	cnt := d.count(minMapEntry)
	if cnt == 0 {
		return nil
	}
	m := make(map[string]int, cnt)
	for j := 0; j < cnt; j++ {
		k := d.dictStr()
		m[k] = int(d.sv())
	}
	if d.err != nil {
		return nil
	}
	return m
}

func (d *colDec) labelsCol() []Label {
	n := d.count(minRowLabel)
	if n == 0 {
		return nil
	}
	ls := make([]Label, n)
	src := d.dictIDs(n)
	for i := range ls {
		ls[i].Src = d.dictAt(src, i)
	}
	for i := range ls {
		ls[i].URI = d.str()
	}
	val := d.dictIDs(n)
	for i := range ls {
		ls[i].Val = d.dictAt(val, i)
	}
	bs := d.bits(n)
	for i := range ls {
		ls[i].Neg = bs.get(i)
	}
	kind := d.dictIDs(n)
	for i := range ls {
		ls[i].Kind = SubjectKind(d.dictAt(kind, i))
	}
	var prev int64
	for i := range ls {
		prev += d.sv()
		ls[i].Applied = timeOf(prev)
	}
	prev = 0
	for i := range ls {
		prev += d.sv()
		ls[i].SubjectCreated = timeOf(prev)
	}
	bs = d.bits(n)
	for i := range ls {
		ls[i].FreshSubject = bs.get(i)
	}
	if d.db != nil && d.err == nil {
		d.db.LabelSrc = src
		d.db.LabelVal = val
		d.db.LabelKind = kind
	}
	return ls
}

func (d *colDec) feedGensCol() []FeedGen {
	n := d.count(minRowFeedGen)
	if n == 0 {
		return nil
	}
	fs := make([]FeedGen, n)
	for i := range fs {
		fs[i].URI = d.str()
	}
	var prev int64
	for i := range fs {
		prev += d.sv()
		fs[i].CreatorIdx = int(prev)
	}
	for i := range fs {
		fs[i].Platform = d.dictStr()
	}
	for i := range fs {
		fs[i].DisplayName = d.str()
	}
	for i := range fs {
		fs[i].Description = d.str()
	}
	for i := range fs {
		fs[i].Lang = d.dictStr()
	}
	prev = 0
	for i := range fs {
		prev += d.sv()
		fs[i].CreatedAt = timeOf(prev)
	}
	for i := range fs {
		fs[i].Likes = int(d.sv())
	}
	for i := range fs {
		fs[i].Posts = int(d.sv())
	}
	prev = 0
	for i := range fs {
		prev += d.sv()
		fs[i].LastPost = timeOf(prev)
	}
	bs := d.bits(n)
	for i := range fs {
		fs[i].Reachable = bs.get(i)
	}
	bs = d.bits(n)
	for i := range fs {
		fs[i].Personalized = bs.get(i)
	}
	for i := range fs {
		fs[i].LabeledShare = d.f64()
	}
	for i := range fs {
		fs[i].TopLabel = d.dictStr()
	}
	return fs
}

func (d *colDec) domainsCol() []Domain {
	n := d.count(minRowDomain)
	if n == 0 {
		return nil
	}
	ds := make([]Domain, n)
	for i := range ds {
		ds[i].Name = d.str()
	}
	for i := range ds {
		ds[i].IANAID = int(d.sv())
	}
	for i := range ds {
		ds[i].RegistrarName = d.dictStr()
	}
	bs := d.bits(n)
	for i := range ds {
		ds[i].CCTLD = bs.get(i)
	}
	for i := range ds {
		ds[i].TrancoRank = int(d.sv())
	}
	for i := range ds {
		ds[i].Subdomains = int(d.sv())
	}
	return ds
}

func (d *colDec) handleUpdatesCol() []HandleUpdate {
	n := d.count(minRowHandleUpdate)
	if n == 0 {
		return nil
	}
	hs := make([]HandleUpdate, n)
	for i := range hs {
		hs[i].DID = d.str()
	}
	for i := range hs {
		hs[i].NewHandle = d.str()
	}
	var prev int64
	for i := range hs {
		prev += d.sv()
		hs[i].Time = timeOf(prev)
	}
	return hs
}
