package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"blueskies/internal/events"
)

// TestFaultScheduleLookup pins the schedule's construction rules:
// point lookup only, later entries overwrite earlier ones at the same
// (stream, seq), and both the nil schedule and the nil per-stream
// binding behave as "unfaulted" rather than panicking.
func TestFaultScheduleLookup(t *testing.T) {
	fs := NewFaultSchedule(
		StreamFault{Stream: 0, Seq: 3, Action: FaultDrop},
		StreamFault{Stream: 1, Seq: 3, Action: FaultStall, Stall: time.Millisecond},
		StreamFault{Stream: 0, Seq: 3, Action: FaultDuplicate}, // overwrites the drop
	)
	if fs.Len() != 2 {
		t.Fatalf("Len = %d, want 2 (overwrite must not double-count)", fs.Len())
	}
	if f, ok := fs.lookup(0, 3); !ok || f.Action != FaultDuplicate {
		t.Fatalf("lookup(0,3) = %+v ok=%v, want the overwriting duplicate", f, ok)
	}
	if f, ok := fs.lookup(1, 3); !ok || f.Action != FaultStall || f.Stall != time.Millisecond {
		t.Fatalf("lookup(1,3) = %+v ok=%v, want the stall", f, ok)
	}
	if _, ok := fs.lookup(0, 4); ok {
		t.Fatal("lookup(0,4) matched an unscheduled fault")
	}
	var nilFS *FaultSchedule
	if nilFS.Len() != 0 {
		t.Fatal("nil schedule Len != 0")
	}
	if _, ok := nilFS.lookup(0, 1); ok {
		t.Fatal("nil schedule produced a fault")
	}
	var nilSF *streamFaults
	if _, ok := nilSF.lookup(1); ok {
		t.Fatal("nil stream binding produced a fault")
	}
	for want, a := range map[string]FaultAction{"drop": FaultDrop, "duplicate": FaultDuplicate, "stall": FaultStall} {
		if a.String() != want {
			t.Fatalf("%v.String() = %q, want %q", int(a), a.String(), want)
		}
	}
}

// faultedDrain replays ds through DrainSequencersFaulted under fs and
// returns the consumed record counts plus the first stream error.
func faultedDrain(t *testing.T, ds *Dataset, fs *FaultSchedule) (users, labels int, err error) {
	t.Helper()
	fire := events.NewSequencer(0, 0)
	labeler := events.NewSequencer(0, 0)
	blocks, errs := DrainSequencersFaulted(context.Background(), fs, fire, labeler)
	replayErr := make(chan error, 1)
	go func() { replayErr <- replayDataset(ds, fire, labeler) }()
	for b := range blocks {
		users += len(b.Users)
		labels += len(b.Labels)
	}
	if rerr := <-replayErr; rerr != nil {
		t.Fatal(rerr)
	}
	for e := range errs {
		if err == nil {
			err = e
		}
	}
	return users, labels, err
}

// TestDrainSequencersFaulted pins each fault's observable consequence
// on a real drain run: duplicates and stalls leave the consumed corpus
// intact (the dedup branch and the backlog absorb them), while a drop
// of an interior frame surfaces as a typed StreamGapError — never as a
// silently thinned corpus.
func TestDrainSequencersFaulted(t *testing.T) {
	mkDS := func() *Dataset {
		ds := &Dataset{Scale: 1}
		for i := 0; i < 2000; i++ {
			ds.Users = append(ds.Users, User{DID: "did:plc:u"})
			ds.Labels = append(ds.Labels, Label{Src: "did:plc:l", URI: "did:plc:u", Val: "x"})
		}
		return ds
	}
	// Unfaulted baseline: nil schedule must behave like DrainSequencers.
	users, labels, err := faultedDrain(t, mkDS(), nil)
	if err != nil || users != 2000 || labels != 2000 {
		t.Fatalf("nil schedule: users=%d labels=%d err=%v", users, labels, err)
	}
	// Duplicate + stall on interior frames: same bytes, no error.
	fs := NewFaultSchedule(
		StreamFault{Stream: 0, Seq: 3, Action: FaultDuplicate},
		StreamFault{Stream: 1, Seq: 2, Action: FaultStall, Stall: 5 * time.Millisecond},
	)
	users, labels, err = faultedDrain(t, mkDS(), fs)
	if err != nil || users != 2000 || labels != 2000 {
		t.Fatalf("duplicate+stall: users=%d labels=%d err=%v", users, labels, err)
	}
	// Drop of an interior firehose frame: the next delivery trips the
	// gap detector and the error carries the gap's exact shape.
	users, _, err = faultedDrain(t, mkDS(), NewFaultSchedule(
		StreamFault{Stream: 0, Seq: 4, Action: FaultDrop},
	))
	if err == nil {
		t.Fatal("dropped frame did not surface a stream error")
	}
	var gap *StreamGapError
	if !errors.As(err, &gap) {
		t.Fatalf("drop error %v is not a *StreamGapError", err)
	}
	if gap.Lost != 1 || gap.From != 3 || gap.To != 5 {
		t.Fatalf("gap = %+v, want Lost 1, From 3, To 5", gap)
	}
	if users >= 2000 {
		t.Fatalf("consumed %d users despite a dropped interior frame", users)
	}
}
