package core

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"
)

// This file adds the two placement primitives the elastic scheduler
// (internal/sched) builds on:
//
//   - Manifest.Fingerprint — a content-addressed corpus identity, the
//     first component of worker-side block-cache keys. Two stores
//     spilled from the same corpus configuration fingerprint equal, so
//     a re-run over an unchanged corpus finds its blocks already
//     cached on the workers.
//
//   - SubPartitionInfos + RowRange/RowClipper — deterministic
//     contiguous sub-ranges of one partition's rows, computed with the
//     same balanced partitionCut formula Split uses. A skewed
//     partition evaluates as n sub-range traversals whose level-one
//     states fold back into exactly the unsplit partition state (the
//     PR 3 split-parity property, applied one level down).

// Fingerprint is a deterministic content-address for the corpus the
// manifest describes: the generation parameters, the window, and every
// partition's placement (seed, window, base offsets, record counts).
// It deliberately hashes the manifest — the store's identity authority
// — rather than the block bytes, so fingerprinting is O(partitions)
// and a store can be fingerprinted without reading it; two manifests
// collide only if they describe byte-identical generation inputs.
func (m *Manifest) Fingerprint() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "m1|scale=%d|seed=%d|window=%d..%d|shared=%v|parts=%d",
		m.Scale, m.Seed, m.WindowStart.UnixNano(), m.WindowEnd.UnixNano(),
		m.SharedIndex, len(m.Partitions))
	for i := range m.Partitions {
		p := &m.Partitions[i]
		fmt.Fprintf(&sb, "|p%d:%d:%d..%d:%+v:%+v",
			p.Index, p.Seed, p.WindowStart.UnixNano(), p.WindowEnd.UnixNano(),
			p.Base, p.Records)
	}
	sum := sha256.Sum256([]byte(sb.String()))
	return hex.EncodeToString(sum[:12])
}

// SubPartitionInfos cuts one partition's rows into n contiguous
// sub-ranges, per collection, with the balanced formula partition and
// worker boundaries already use — so the cut points are a pure
// function of (record counts, n) and every scheduler computes the same
// split. Each sub-range's Base is corpus-global (the parent's base
// plus the local offset): the level-one traversal of a sub-range then
// assigns exactly the indexes the unsplit traversal would.
func SubPartitionInfos(info PartitionInfo, n int) []PartitionInfo {
	if n < 1 {
		n = 1
	}
	subs := make([]PartitionInfo, n)
	for j := 0; j < n; j++ {
		sub := PartitionInfo{
			Index:       info.Index,
			Seed:        info.Seed,
			WindowStart: info.WindowStart,
			WindowEnd:   info.WindowEnd,
		}
		cut := func(count, base int) (int, int) {
			lo, hi := partitionCut(count, j, n)
			return base + lo, hi - lo
		}
		sub.Base.Users, sub.Records.Users = cut(info.Records.Users, info.Base.Users)
		sub.Base.Posts, sub.Records.Posts = cut(info.Records.Posts, info.Base.Posts)
		sub.Base.Days, sub.Records.Days = cut(info.Records.Days, info.Base.Days)
		sub.Base.Labels, sub.Records.Labels = cut(info.Records.Labels, info.Base.Labels)
		sub.Base.FeedGens, sub.Records.FeedGens = cut(info.Records.FeedGens, info.Base.FeedGens)
		sub.Base.Domains, sub.Records.Domains = cut(info.Records.Domains, info.Base.Domains)
		sub.Base.HandleUpdates, sub.Records.HandleUpdates = cut(info.Records.HandleUpdates, info.Base.HandleUpdates)
		subs[j] = sub
	}
	return subs
}

// RowRange selects one contiguous per-collection row sub-range of a
// partition's block stream: skip the first Skip rows of each
// collection, keep the next Take. Facts reports whether the range
// carries the partition's corpus-level facts (header firehose counters
// and non-Bluesky event counts — sub-range 0 only, so clipped
// sub-ranges sum to the partition instead of double-counting).
type RowRange struct {
	Skip  CollectionCounts `cbor:"skip"`
	Take  CollectionCounts `cbor:"take"`
	Facts bool             `cbor:"facts,omitempty"`
}

// SubRowRange derives the RowRange that clips a parent partition's
// blocks down to one of its SubPartitionInfos sub-ranges.
func SubRowRange(parent, sub PartitionInfo, first bool) RowRange {
	skip := sub.Base
	skip.Users -= parent.Base.Users
	skip.Posts -= parent.Base.Posts
	skip.Days -= parent.Base.Days
	skip.Labels -= parent.Base.Labels
	skip.FeedGens -= parent.Base.FeedGens
	skip.Domains -= parent.Base.Domains
	skip.HandleUpdates -= parent.Base.HandleUpdates
	return RowRange{Skip: skip, Take: sub.Records, Facts: first}
}

// RowClipper applies one RowRange to a block stream, block by block.
// It is stateful — construct one per traversal with NewRowClipper.
type RowClipper struct {
	skip, take CollectionCounts
	facts      bool
}

// NewRowClipper starts a clip over one block stream.
func NewRowClipper(r RowRange) *RowClipper {
	return &RowClipper{skip: r.Skip, take: r.Take, facts: r.Facts}
}

// clipRows drops skipped rows and truncates past the take budget,
// updating both counters.
func clipRows[T any](rows []T, skip, take *int) []T {
	if *skip >= len(rows) {
		*skip -= len(rows)
		return nil
	}
	rows = rows[*skip:]
	*skip = 0
	if len(rows) > *take {
		rows = rows[:*take]
	}
	*take -= len(rows)
	return rows
}

// Clip returns b restricted to the clipper's remaining range: a
// shallow copy with each collection re-sliced. Headers and labeler
// announcements always pass through (every sub-range needs the scale,
// window, and labeler enumeration); a non-Facts range zeroes the
// header's firehose and non-Bluesky counters so corpus-level facts
// ride on exactly one sub-range.
func (c *RowClipper) Clip(b *RecordBlock) *RecordBlock {
	out := *b
	if out.Header != nil && !c.facts {
		h := *out.Header
		h.Firehose = EventCounts{}
		h.NonBskyEvents = 0
		out.Header = &h
	}
	out.Users = clipRows(out.Users, &c.skip.Users, &c.take.Users)
	out.Posts = clipRows(out.Posts, &c.skip.Posts, &c.take.Posts)
	out.Days = clipRows(out.Days, &c.skip.Days, &c.take.Days)
	out.Labels = clipRows(out.Labels, &c.skip.Labels, &c.take.Labels)
	out.FeedGens = clipRows(out.FeedGens, &c.skip.FeedGens, &c.take.FeedGens)
	out.Domains = clipRows(out.Domains, &c.skip.Domains, &c.take.Domains)
	out.HandleUpdates = clipRows(out.HandleUpdates, &c.skip.HandleUpdates, &c.take.HandleUpdates)
	return &out
}
