package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"blueskies/internal/events"
)

func ts(s string) time.Time {
	t, err := time.Parse(time.RFC3339Nano, s)
	if err != nil {
		panic(err)
	}
	return t.UTC()
}

// TestBlockEventRoundTrip pins the sim-block wire codec: every record
// field — including sub-millisecond timestamps, which the protocol's
// string timestamps would truncate — must survive encode/decode.
func TestBlockEventRoundTrip(t *testing.T) {
	in := &RecordBlock{
		Header: &StreamHeader{
			Scale:         1000,
			WindowStart:   ts("2024-03-06T00:00:00Z"),
			WindowEnd:     ts("2024-05-01T00:00:00Z"),
			Firehose:      EventCounts{Commits: 4, Identity: 3, Handle: 2, Tombstone: 1},
			NonBskyEvents: 7,
		},
		Labelers: []Labeler{{
			DID: "did:plc:labeler0", Name: "L", Official: true, Values: []string{"a", "b"},
			Announced: ts("2024-03-15T00:00:00Z"), Functional: true, Active: true,
			Hosting: "cloud", Automated: true, Likes: 9, Operator: "op", About: "about",
		}},
		Users: []User{{
			DID: "did:plc:u0", Handle: "u.bsky.social", DIDMethod: "plc", PDS: "pds1",
			Proof: ProofDNSTXT, CreatedAt: ts("2023-07-01T12:34:56.789123456Z"), Lang: "ja",
			Followers: 10, Following: 20, Posts: 3, Likes: 4, Reposts: 5, Blocks: 6, Deleted: true,
		}},
		Posts: []Post{{
			URI: "at://did:plc:u0/app.bsky.feed.post/1", AuthorIdx: 0, Lang: "ja",
			CreatedAt: ts("2024-04-01T01:02:03.000000004Z"),
			Likes:     2, Reposts: 1, HasMedia: true, AltText: true,
		}},
		Days: []DayActivity{{
			Date: ts("2024-04-02T00:00:00Z"), ActiveUsers: 100, Posts: 200, Likes: 300,
			Reposts: 40, Follows: 50, Blocks: 6, ActiveByLang: map[string]int{"en": 30, "ja": 40},
		}},
		FeedGens: []FeedGen{{
			URI: "at://did:plc:u0/app.bsky.feed.generator/g", CreatorIdx: 0, Platform: "Skyfeed",
			DisplayName: "g", Description: "d", Lang: "en", CreatedAt: ts("2023-09-09T00:00:00Z"),
			Likes: 11, Posts: 12, Reachable: true, Personalized: true,
			LabeledShare: 0.25, TopLabel: "spam",
		}},
		Domains: []Domain{{
			Name: "example.social", IANAID: 1068, RegistrarName: "NameCheap, Inc.",
			CCTLD: true, TrancoRank: 99, Subdomains: 12,
		}},
		HandleUpdates: []HandleUpdate{{
			DID: "did:plc:u0", NewHandle: "new.example.social", Time: ts("2024-04-20T10:00:00Z"),
		}},
	}
	ev, err := BlockEvent(in)
	if err != nil {
		t.Fatal(err)
	}
	frame, err := events.Encode(ev)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := events.Decode(frame)
	if err != nil {
		t.Fatal(err)
	}
	out, eof, err := DecodeStreamEvent(dec)
	if err != nil || eof {
		t.Fatalf("decode: err=%v eof=%v", err, eof)
	}
	if out.Header == nil || *out.Header != *in.Header {
		t.Fatalf("header diverges: %+v", out.Header)
	}
	if len(out.Users) != 1 || out.Users[0].DID != in.Users[0].DID ||
		!out.Users[0].CreatedAt.Equal(in.Users[0].CreatedAt) ||
		out.Users[0].Proof != ProofDNSTXT || !out.Users[0].Deleted {
		t.Fatalf("user diverges: %+v", out.Users[0])
	}
	if !out.Posts[0].CreatedAt.Equal(in.Posts[0].CreatedAt) || !out.Posts[0].AltText {
		t.Fatalf("post diverges (sub-ms timestamp?): %+v", out.Posts[0])
	}
	if out.Days[0].ActiveByLang["ja"] != 40 {
		t.Fatalf("day diverges: %+v", out.Days[0])
	}
	if out.FeedGens[0].LabeledShare != 0.25 || !out.FeedGens[0].LastPost.IsZero() {
		t.Fatalf("feedgen diverges: %+v", out.FeedGens[0])
	}
	if out.Domains[0] != in.Domains[0] {
		t.Fatalf("domain diverges: %+v", out.Domains[0])
	}
	if out.HandleUpdates[0].DID != in.HandleUpdates[0].DID ||
		!out.HandleUpdates[0].Time.Equal(in.HandleUpdates[0].Time) {
		t.Fatalf("handle update diverges: %+v", out.HandleUpdates[0])
	}
	if out.Labelers[0].Name != "L" || len(out.Labelers[0].Values) != 2 ||
		!out.Labelers[0].Announced.Equal(in.Labelers[0].Announced) {
		t.Fatalf("labeler diverges: %+v", out.Labelers[0])
	}
}

// TestLabelsEventRoundTrip pins the label-stream codec, in particular
// the sim-extension fields carrying nanosecond reaction-time joins.
func TestLabelsEventRoundTrip(t *testing.T) {
	in := []Label{{
		Src: "did:plc:labeler0", URI: "at://did:plc:u0/app.bsky.feed.post/1",
		Val: "no-alt-text", Neg: false, Kind: SubjectPost,
		Applied:        ts("2024-04-01T00:00:00.123456789Z"),
		SubjectCreated: ts("2024-04-01T00:00:00.003456789Z"),
		FreshSubject:   true,
	}, {
		Src: "did:plc:other", URI: "did:plc:u1", Val: "spam", Neg: true,
		Kind: SubjectAccount, Applied: ts("2024-04-02T00:00:00Z"),
		SubjectCreated: ts("2024-03-01T00:00:00Z"),
	}}
	frame, err := events.Encode(LabelsEvent(in))
	if err != nil {
		t.Fatal(err)
	}
	dec, err := events.Decode(frame)
	if err != nil {
		t.Fatal(err)
	}
	out, eof, err := DecodeStreamEvent(dec)
	if err != nil || eof {
		t.Fatalf("decode: err=%v eof=%v", err, eof)
	}
	if len(out.Labels) != 2 {
		t.Fatalf("labels = %d", len(out.Labels))
	}
	for i := range in {
		got := out.Labels[i]
		if got.Src != in[i].Src || got.URI != in[i].URI || got.Val != in[i].Val ||
			got.Neg != in[i].Neg || got.Kind != in[i].Kind ||
			!got.Applied.Equal(in[i].Applied) ||
			!got.SubjectCreated.Equal(in[i].SubjectCreated) ||
			got.FreshSubject != in[i].FreshSubject {
			t.Fatalf("label %d diverges:\nin:  %+v\nout: %+v", i, in[i], got)
		}
	}
	if rt := out.Labels[0].ReactionTime(); rt != 120*time.Millisecond {
		t.Fatalf("reaction time lost precision: %v", rt)
	}
}

// TestDecodeStreamEventLiveFrames pins the live-protocol mapping:
// handle events become HandleUpdate records, other firehose frames
// only bump the event counters.
func TestDecodeStreamEventLiveFrames(t *testing.T) {
	b, eof, err := DecodeStreamEvent(&events.Handle{
		Seq: 1, DID: "did:plc:u0", Handle: "new.example.org", Time: "2024-04-01T00:00:00.000Z",
	})
	if err != nil || eof {
		t.Fatalf("err=%v eof=%v", err, eof)
	}
	if len(b.HandleUpdates) != 1 || b.HandleUpdates[0].NewHandle != "new.example.org" ||
		b.Events.Handle != 1 {
		t.Fatalf("handle block = %+v", b)
	}
	b, _, err = DecodeStreamEvent(&events.Commit{Seq: 2})
	if err != nil || b.Events.Commits != 1 || b.Len() != 0 {
		t.Fatalf("commit block = %+v err=%v", b, err)
	}
	if _, eof, _ := DecodeStreamEvent(EOFEvent()); !eof {
		t.Fatal("EOF marker not recognized")
	}
}

// TestForwardFrameGapDetection pins the lost-frame guard: a sequence
// gap after the first delivered frame must surface as an error, not
// silently thin the corpus; the initial gap (joining a stream
// mid-retention) stays legal.
func TestForwardFrameGapDetection(t *testing.T) {
	frame := func(seq int64) []byte {
		ev, err := BlockEvent(&RecordBlock{Users: []User{{DID: "did:plc:x"}}})
		if err != nil {
			t.Fatal(err)
		}
		ev.Seq = seq
		f, err := events.Encode(ev)
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	out := make(chan RecordBlock, 8)
	ctx := context.Background()
	var lastSeq int64
	// Joining at seq 5 is fine (mid-retention start).
	if _, _, err := forwardFrame(ctx, frame(5), &lastSeq, out, func() {}, nil); err != nil {
		t.Fatalf("initial gap rejected: %v", err)
	}
	// 5 → 6 consecutive: fine. 6 → 9: frames 7–8 were dropped.
	if _, _, err := forwardFrame(ctx, frame(6), &lastSeq, out, func() {}, nil); err != nil {
		t.Fatalf("consecutive frame rejected: %v", err)
	}
	_, _, err := forwardFrame(ctx, frame(9), &lastSeq, out, func() {}, nil)
	if err == nil {
		t.Fatal("mid-stream gap not detected")
	}
	// The failure is typed so scenario assertions can dispatch on it.
	var gap *StreamGapError
	if !errors.As(err, &gap) {
		t.Fatalf("gap error %v is not a *StreamGapError", err)
	}
	if gap.Lost != 2 || gap.From != 6 || gap.To != 9 {
		t.Fatalf("gap = %+v, want Lost 2, From 6, To 9", gap)
	}
	// Duplicates (backfill overlap) stay silently skipped.
	if _, _, err := forwardFrame(ctx, frame(6), &lastSeq, out, func() {}, nil); err != nil {
		t.Fatalf("duplicate rejected: %v", err)
	}
}

// TestDrainSequencersTrimsBacklog pins the streaming memory contract:
// with a replay emitting concurrently, the draining consumer trims
// processed frames, so the sequencers end the run with an empty
// backlog instead of a full encoded copy of the corpus.
func TestDrainSequencersTrimsBacklog(t *testing.T) {
	fire := events.NewSequencer(0, 0)
	labeler := events.NewSequencer(0, 0)
	ds := &Dataset{Scale: 1}
	for i := 0; i < 5000; i++ {
		ds.Users = append(ds.Users, User{DID: "did:plc:u"})
		ds.Labels = append(ds.Labels, Label{Src: "did:plc:l", URI: "did:plc:u", Val: "x"})
	}
	blocks, errs := DrainSequencers(context.Background(), fire, labeler)
	replayErr := make(chan error, 1)
	go func() { replayErr <- replayDataset(ds, fire, labeler) }()
	var users, labels int
	for b := range blocks {
		users += len(b.Users)
		labels += len(b.Labels)
	}
	if err := <-replayErr; err != nil {
		t.Fatal(err)
	}
	for err := range errs {
		t.Fatal(err)
	}
	if users != 5000 || labels != 5000 {
		t.Fatalf("consumed %d users, %d labels; want 5000 each", users, labels)
	}
	if n := fire.BacklogLen(); n > 1 {
		t.Fatalf("firehose backlog retains %d frames after drain", n)
	}
	if n := labeler.BacklogLen(); n > 1 {
		t.Fatalf("labeler backlog retains %d frames after drain", n)
	}
}

// replayDataset is a minimal local replay (synth.Replay would import
// cycle into core tests): header+users on the firehose, labels on the
// labeler stream, EOF markers on both.
func replayDataset(ds *Dataset, fire, labeler *events.Sequencer) error {
	emit := func(seq *events.Sequencer, ev any) error {
		_, err := seq.Emit(func(s int64) any {
			switch e := ev.(type) {
			case *events.Sim:
				e.Seq = s
			case *events.Labels:
				e.Seq = s
			}
			return ev
		})
		return err
	}
	hdr, err := BlockEvent(&RecordBlock{Header: &StreamHeader{Scale: ds.Scale}})
	if err != nil {
		return err
	}
	if err := emit(fire, hdr); err != nil {
		return err
	}
	const chunk = 256
	for lo := 0; lo < len(ds.Users); lo += chunk {
		hi := min(lo+chunk, len(ds.Users))
		ev, err := BlockEvent(&RecordBlock{Users: ds.Users[lo:hi]})
		if err != nil {
			return err
		}
		if err := emit(fire, ev); err != nil {
			return err
		}
	}
	for lo := 0; lo < len(ds.Labels); lo += chunk {
		hi := min(lo+chunk, len(ds.Labels))
		if err := emit(labeler, LabelsEvent(ds.Labels[lo:hi])); err != nil {
			return err
		}
	}
	if err := emit(fire, EOFEvent()); err != nil {
		return err
	}
	return emit(labeler, EOFEvent())
}

// TestSequencerStreamGate pins the subscription-ordering contract: the
// primary sequencer's first block must reach the consumer before any
// secondary-stream block, even when the secondary backlog is ready
// first.
func TestSequencerStreamGate(t *testing.T) {
	fire := events.NewSequencer(0, 0)
	labeler := events.NewSequencer(0, 0)
	// Labeler backlog filled first.
	if _, err := labeler.Emit(func(s int64) any {
		e := LabelsEvent([]Label{{Src: "did:plc:l", URI: "did:plc:u", Val: "x"}})
		e.Seq = s
		return e
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := labeler.Emit(func(s int64) any { e := EOFEvent(); e.Seq = s; return e }); err != nil {
		t.Fatal(err)
	}
	hdr, err := BlockEvent(&RecordBlock{Header: &StreamHeader{Scale: 7}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fire.Emit(func(s int64) any { hdr.Seq = s; return hdr }); err != nil {
		t.Fatal(err)
	}
	if _, err := fire.Emit(func(s int64) any { e := EOFEvent(); e.Seq = s; return e }); err != nil {
		t.Fatal(err)
	}
	blocks, errs := SequencerStream(context.Background(), fire, labeler)
	first, ok := <-blocks
	if !ok {
		t.Fatal("no blocks")
	}
	if first.Header == nil || first.Header.Scale != 7 {
		t.Fatalf("first block is not the primary header: %+v", first)
	}
	n := 0
	for range blocks {
		n++
	}
	if n != 1 {
		t.Fatalf("expected exactly the label block after the header, got %d more", n)
	}
	for err := range errs {
		t.Fatal(err)
	}
}
