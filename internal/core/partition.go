package core

import (
	"fmt"
	"strings"
	"time"
)

// This file defines the partitioned-corpus model: a corpus is a set of
// Dataset partitions described by a Manifest instead of one monolith.
// Two producers emit partitions:
//
//   - Split carves one materialized Dataset into contiguous row-range
//     views (users are generated in DID order and the daily series in
//     date order, so user ranges are DID ranges and day ranges are time
//     windows). Index-bearing record fields (Post.AuthorIdx,
//     FeedGen.CreatorIdx) keep their corpus-global values, and the
//     manifest records each partition's per-collection base offsets —
//     analysis over the partitions reconstructs exactly the unsplit
//     evaluation (Manifest.SharedIndex = true).
//
//   - synth.GeneratePartitioned emits n independent datasets on
//     disjoint RNG sub-streams — one per simulated repo crawl — whose
//     index fields are partition-local (SharedIndex = false); consumers
//     rebase them by the manifest's user bases when merging.
//
// Corpus-level facts belong to the collection window, not to a
// repo-crawl shard: every partition carries the full labeler
// population (labels resolve against labeler indexes, which must agree
// across partitions), and the firehose counters ride on partition 0
// so that summing partitions never double-counts. The daily activity
// series is date-ordered, so Split shards it into per-partition date
// ranges like any other collection, while GeneratePartitioned — whose
// partitions are independent crawls of one shared window — keeps the
// whole series on partition 0.

// CollectionCounts holds one number per traversable dataset collection.
type CollectionCounts struct {
	Users, Posts, Days, Labels, FeedGens, Domains, HandleUpdates int
}

// Total sums all collections.
func (c CollectionCounts) Total() int {
	return c.Users + c.Posts + c.Days + c.Labels + c.FeedGens + c.Domains + c.HandleUpdates
}

// Add accumulates o into c.
func (c *CollectionCounts) Add(o CollectionCounts) {
	c.Users += o.Users
	c.Posts += o.Posts
	c.Days += o.Days
	c.Labels += o.Labels
	c.FeedGens += o.FeedGens
	c.Domains += o.Domains
	c.HandleUpdates += o.HandleUpdates
}

// Counts measures a dataset's per-collection record counts.
func (d *Dataset) Counts() CollectionCounts {
	return CollectionCounts{
		Users: len(d.Users), Posts: len(d.Posts), Days: len(d.Daily),
		Labels: len(d.Labels), FeedGens: len(d.FeedGens),
		Domains: len(d.Domains), HandleUpdates: len(d.HandleUpdates),
	}
}

// PartitionInfo describes one partition for planning: its position in
// the corpus (Base = per-collection offsets of its rows in concat
// order), its record counts, the generation seed that produced it
// (0 for split views), and the time window its daily series covers.
type PartitionInfo struct {
	Index                  int
	Seed                   int64
	WindowStart, WindowEnd time.Time
	Base                   CollectionCounts
	Records                CollectionCounts
	// ContentHash addresses the partition's block-file bytes
	// (PartitionWriter.ContentHash), recorded by disk spill paths.
	// Schedulers key worker block caches by it so corpora with
	// identical partition bytes share warm cache entries regardless of
	// manifest identity; empty for manifests that never touched disk.
	// Deliberately excluded from Manifest.Fingerprint, which hashes
	// generation identity, not store bytes.
	ContentHash string `json:",omitempty"`
}

// Manifest describes a partitioned corpus: the corpus-level facts a
// merged evaluation needs plus one PartitionInfo per partition.
type Manifest struct {
	Scale                  int
	Seed                   int64
	WindowStart, WindowEnd time.Time
	// SharedIndex reports whether index-bearing record fields
	// (Post.AuthorIdx, FeedGen.CreatorIdx) are corpus-global (Split) or
	// partition-local (independent generation); consumers rebase local
	// indexes by Partitions[k].Base.Users when merging.
	SharedIndex bool
	Partitions  []PartitionInfo
}

// Totals sums the per-partition record counts.
func (m *Manifest) Totals() CollectionCounts {
	var t CollectionCounts
	for i := range m.Partitions {
		t.Add(m.Partitions[i].Records)
	}
	return t
}

// Plan renders the partition plan as an aligned text table — the
// summary bskyanalyze prints before a partitioned run.
func (m *Manifest) Plan() string {
	var sb strings.Builder
	mode := "independent (partition-local indexes)"
	if m.SharedIndex {
		mode = "split (corpus-global indexes)"
	}
	fmt.Fprintf(&sb, "partition plan: %d partition(s), scale 1:%d, seed %d, %s\n",
		len(m.Partitions), m.Scale, m.Seed, mode)
	fmt.Fprintf(&sb, "%-4s %-20s %-23s %10s %10s %10s %8s %9s %8s %8s\n",
		"#", "seed", "window", "users", "posts", "labels", "days", "feedgens", "domains", "handles")
	for i := range m.Partitions {
		p := &m.Partitions[i]
		window := p.WindowStart.Format("2006-01-02") + ".." + p.WindowEnd.Format("2006-01-02")
		fmt.Fprintf(&sb, "%-4d %-20d %-23s %10d %10d %10d %8d %9d %8d %8d\n",
			p.Index, p.Seed, window,
			p.Records.Users, p.Records.Posts, p.Records.Labels, p.Records.Days,
			p.Records.FeedGens, p.Records.Domains, p.Records.HandleUpdates)
	}
	t := m.Totals()
	fmt.Fprintf(&sb, "%-4s %-20s %-23s %10d %10d %10d %8d %9d %8d %8d\n",
		"Σ", "", "", t.Users, t.Posts, t.Labels, t.Days, t.FeedGens, t.Domains, t.HandleUpdates)
	return sb.String()
}

// partitionCut returns partition k's contiguous slice bounds over n
// records — the same balanced formula the analysis engine uses for
// worker ranges, so partition boundaries and worker boundaries nest.
func partitionCut(n, k, parts int) (int, int) {
	return n * k / parts, n * (k + 1) / parts
}

// Split carves a materialized dataset into n contiguous row-range
// partitions (zero-copy views of the original backing arrays) and the
// manifest describing them. Every partition carries the full labeler
// population and the corpus scale/window; the firehose counters ride
// on partition 0 only, so per-partition facts sum to the corpus facts.
// Index-bearing record fields stay corpus-global (SharedIndex).
func Split(ds *Dataset, n int) ([]*Dataset, *Manifest) {
	if n < 1 {
		n = 1
	}
	parts := make([]*Dataset, n)
	for k := 0; k < n; k++ {
		p := &Dataset{
			Scale:       ds.Scale,
			WindowStart: ds.WindowStart,
			WindowEnd:   ds.WindowEnd,
			Labelers:    ds.Labelers,
		}
		if k == 0 {
			p.Firehose = ds.Firehose
			p.NonBskyEvents = ds.NonBskyEvents
		}
		lo, hi := partitionCut(len(ds.Users), k, n)
		p.Users = ds.Users[lo:hi]
		lo, hi = partitionCut(len(ds.Posts), k, n)
		p.Posts = ds.Posts[lo:hi]
		lo, hi = partitionCut(len(ds.Daily), k, n)
		p.Daily = ds.Daily[lo:hi]
		lo, hi = partitionCut(len(ds.Labels), k, n)
		p.Labels = ds.Labels[lo:hi]
		lo, hi = partitionCut(len(ds.FeedGens), k, n)
		p.FeedGens = ds.FeedGens[lo:hi]
		lo, hi = partitionCut(len(ds.Domains), k, n)
		p.Domains = ds.Domains[lo:hi]
		lo, hi = partitionCut(len(ds.HandleUpdates), k, n)
		p.HandleUpdates = ds.HandleUpdates[lo:hi]
		parts[k] = p
	}
	return parts, BuildManifest(parts, ds.Scale, 0, true)
}

// BuildManifest derives a manifest from materialized partitions:
// per-collection base offsets are prefix sums in partition order
// (concat order). Partition windows fall back to the corpus window
// when a partition holds no daily series.
func BuildManifest(parts []*Dataset, scale int, seed int64, shared bool) *Manifest {
	m := &Manifest{Scale: scale, Seed: seed, SharedIndex: shared}
	for k, p := range parts {
		m.AddPartition(p.PartitionInfo(k), p.WindowStart, p.WindowEnd)
	}
	return m
}

// PartitionInfo snapshots what a manifest records about this dataset
// as partition k: its record counts and its daily-series time window,
// falling back to the dataset window when no daily series is present.
// Producers that release datasets after writing them (the disk spill)
// take this snapshot first and fold the snapshots with
// Manifest.AddPartition — the same two steps BuildManifest runs over a
// materialized set, so both paths assemble identical manifests.
func (d *Dataset) PartitionInfo(k int) PartitionInfo {
	info := PartitionInfo{
		Index:       k,
		WindowStart: d.WindowStart,
		WindowEnd:   d.WindowEnd,
		Records:     d.Counts(),
	}
	if len(d.Daily) > 0 {
		info.WindowStart = d.Daily[0].Date
		info.WindowEnd = d.Daily[len(d.Daily)-1].Date
	}
	return info
}

// AddPartition appends one partition snapshot in partition order:
// assigns its base offsets (the prefix sum over the partitions already
// added) and widens the corpus window by the partition dataset's
// window.
func (m *Manifest) AddPartition(info PartitionInfo, windowStart, windowEnd time.Time) {
	var base CollectionCounts
	if n := len(m.Partitions); n > 0 {
		last := &m.Partitions[n-1]
		base = last.Base
		base.Add(last.Records)
	}
	info.Base = base
	m.Partitions = append(m.Partitions, info)
	if m.WindowStart.IsZero() || (!windowStart.IsZero() && windowStart.Before(m.WindowStart)) {
		m.WindowStart = windowStart
	}
	if windowEnd.After(m.WindowEnd) {
		m.WindowEnd = windowEnd
	}
}

// MergeLabelers folds one partition's labeler enumeration into the
// corpus enumeration. Labels are attributed by labeler *index*, so
// every partition must agree on the enumeration order: each list must
// be a prefix of (or equal to) the longest one. Field values may
// differ between crawls (e.g. like counts); the first-seen record
// wins.
func MergeLabelers(merged, part []Labeler) ([]Labeler, error) {
	for i, lb := range part {
		if i < len(merged) {
			if merged[i].DID != lb.DID {
				return nil, fmt.Errorf("core: partitions disagree on labeler enumeration: index %d is %s vs %s",
					i, merged[i].DID, lb.DID)
			}
			continue
		}
		merged = append(merged, lb)
	}
	return merged, nil
}

// Concat flattens partitions back into one dataset in partition order —
// the reference corpus the partitioned evaluation is tested against.
// rebase adds each partition's user base to its Post.AuthorIdx /
// FeedGen.CreatorIdx fields (required for SharedIndex=false corpora,
// a no-op-by-construction for split views, which already carry global
// indexes). Labeler enumerations are merged with MergeLabelers;
// firehose counters sum.
func Concat(parts []*Dataset, rebase bool) (*Dataset, error) {
	out := &Dataset{}
	userBase := 0
	for _, p := range parts {
		if out.Scale == 0 {
			out.Scale = p.Scale
		}
		if out.WindowStart.IsZero() || (!p.WindowStart.IsZero() && p.WindowStart.Before(out.WindowStart)) {
			out.WindowStart = p.WindowStart
		}
		if p.WindowEnd.After(out.WindowEnd) {
			out.WindowEnd = p.WindowEnd
		}
		var err error
		if out.Labelers, err = MergeLabelers(out.Labelers, p.Labelers); err != nil {
			return nil, err
		}
		out.Firehose.Commits += p.Firehose.Commits
		out.Firehose.Identity += p.Firehose.Identity
		out.Firehose.Handle += p.Firehose.Handle
		out.Firehose.Tombstone += p.Firehose.Tombstone
		out.NonBskyEvents += p.NonBskyEvents
		out.Users = append(out.Users, p.Users...)
		if rebase && userBase > 0 {
			for _, post := range p.Posts {
				post.AuthorIdx += userBase
				out.Posts = append(out.Posts, post)
			}
			for _, fg := range p.FeedGens {
				fg.CreatorIdx += userBase
				out.FeedGens = append(out.FeedGens, fg)
			}
		} else {
			out.Posts = append(out.Posts, p.Posts...)
			out.FeedGens = append(out.FeedGens, p.FeedGens...)
		}
		out.Daily = append(out.Daily, p.Daily...)
		out.Labels = append(out.Labels, p.Labels...)
		out.Domains = append(out.Domains, p.Domains...)
		out.HandleUpdates = append(out.HandleUpdates, p.HandleUpdates...)
		userBase += len(p.Users)
	}
	return out, nil
}
