package core

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
)

// TestColumnarV3RoundTrip pins the lossless contract of the v3
// fixed-width codec at the single-block level, including the
// degenerate blocks the disk writer emits.
func TestColumnarV3RoundTrip(t *testing.T) {
	full := columnarTestBlock()
	blocks := []*RecordBlock{
		full,
		{},
		{Header: full.Header, Labelers: full.Labelers},
		{Users: full.Users},
		{Posts: full.Posts},
		{Days: full.Days},
		{Labels: full.Labels},
		{FeedGens: full.FeedGens},
		{Domains: full.Domains},
		{HandleUpdates: full.HandleUpdates},
	}
	for i, b := range blocks {
		enc, err := MarshalBlockVersion(b, 3)
		if err != nil {
			t.Fatalf("block %d: %v", i, err)
		}
		got, err := UnmarshalBlock(enc)
		if err != nil {
			t.Fatalf("block %d: decode: %v", i, err)
		}
		if !reflect.DeepEqual(got, b) {
			t.Errorf("block %d drifted through the v3 codec:\n got %+v\nwant %+v", i, got, b)
		}
	}
}

// TestColumnarV3Determinism pins byte-identical v3 encoding across
// calls — content-hash cache keys and spill goldens stand on it.
func TestColumnarV3Determinism(t *testing.T) {
	b := columnarTestBlock()
	first := encodeColumnarBlockV3(b)
	for i := 0; i < 8; i++ {
		if !bytes.Equal(first, encodeColumnarBlockV3(b)) {
			t.Fatalf("v3 encoding of the same block drifted on call %d", i)
		}
	}
}

// TestColumnarV3DictView pins the DictBlock contract: the captured
// label id columns resolve through the captured dictionary to exactly
// the decoded label strings, for both the v2 and v3 codecs.
func TestColumnarV3DictView(t *testing.T) {
	src := columnarTestBlock()
	for _, version := range []int{2, 3} {
		enc, err := MarshalBlockVersion(src, version)
		if err != nil {
			t.Fatal(err)
		}
		b, db, err := UnmarshalBlockDict(enc, true)
		if err != nil {
			t.Fatalf("v%d: %v", version, err)
		}
		if db == nil || len(db.Dict) == 0 {
			t.Fatalf("v%d: no dictionary view", version)
		}
		if len(db.LabelSrc) != len(b.Labels) || len(db.LabelVal) != len(b.Labels) || len(db.LabelKind) != len(b.Labels) {
			t.Fatalf("v%d: label id columns not parallel to labels (%d/%d/%d ids, %d labels)",
				version, len(db.LabelSrc), len(db.LabelVal), len(db.LabelKind), len(b.Labels))
		}
		for i := range b.Labels {
			if db.Dict[db.LabelSrc[i]] != b.Labels[i].Src {
				t.Fatalf("v%d: label %d src id %d resolves to %q, want %q", version, i, db.LabelSrc[i], db.Dict[db.LabelSrc[i]], b.Labels[i].Src)
			}
			if db.Dict[db.LabelVal[i]] != b.Labels[i].Val {
				t.Fatalf("v%d: label %d val id mismatch", version, i)
			}
			if db.Dict[db.LabelKind[i]] != string(b.Labels[i].Kind) {
				t.Fatalf("v%d: label %d kind id mismatch", version, i)
			}
		}
	}
}

// TestColumnarV3HostileBytes fuzzes the v3 decoder with truncations,
// bit flips, and garbage — every outcome must be an error or a decoded
// block, never a panic or a runaway allocation.
func TestColumnarV3HostileBytes(t *testing.T) {
	valid := encodeColumnarBlockV3(columnarTestBlock())[1:]
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 4000; i++ {
		var mut []byte
		switch i % 3 {
		case 0:
			mut = append([]byte(nil), valid...)
			for j := 0; j < 1+rng.Intn(8); j++ {
				mut[rng.Intn(len(mut))] ^= byte(1 + rng.Intn(255))
			}
		case 1:
			mut = valid[:rng.Intn(len(valid))]
		case 2:
			mut = make([]byte, rng.Intn(256))
			rng.Read(mut)
		}
		_, _ = decodeColumnarBlockV3(mut, nil)
	}
}

// TestLZRoundTrip pins the LZ codec: compressible input round-trips
// exactly, incompressible input is declined, and compression is
// deterministic.
func TestLZRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	cases := [][]byte{
		bytes.Repeat([]byte("abcd"), 1000),
		bytes.Repeat([]byte{0}, 500),
		[]byte("at://did:plc:aaaa/app.bsky.feed.post/1at://did:plc:aaaa/app.bsky.feed.post/2"),
		encodeColumnarBlockV3(columnarTestBlock()),
	}
	long := make([]byte, 200000)
	for i := range long {
		long[i] = byte(rng.Intn(4)) // low-entropy, long matches
	}
	cases = append(cases, long)
	for i, src := range cases {
		comp := lzCompress(src)
		if comp == nil {
			t.Fatalf("case %d: compressible input declined", i)
		}
		if len(comp) >= len(src) {
			t.Fatalf("case %d: output %d not smaller than input %d", i, len(comp), len(src))
		}
		if again := lzCompress(src); !bytes.Equal(comp, again) {
			t.Fatalf("case %d: compression not deterministic", i)
		}
		got, err := lzDecompress(comp, len(src))
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if !bytes.Equal(got, src) {
			t.Fatalf("case %d: round trip drifted", i)
		}
	}
	// Random bytes do not compress; the encoder must say so rather
	// than inflate.
	noise := make([]byte, 4096)
	rng.Read(noise)
	if comp := lzCompress(noise); comp != nil {
		t.Fatalf("incompressible input accepted (%d -> %d bytes)", len(noise), len(comp))
	}
}

// TestLZHostileBytes fuzzes the LZ decoder: corrupt streams, lying raw
// lengths, and garbage must all fail cleanly.
func TestLZHostileBytes(t *testing.T) {
	src := encodeColumnarBlockV3(columnarTestBlock())
	comp := lzCompress(src)
	if comp == nil {
		t.Fatal("test payload did not compress")
	}
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 4000; i++ {
		mut := append([]byte(nil), comp...)
		switch i % 4 {
		case 0:
			for j := 0; j < 1+rng.Intn(8); j++ {
				mut[rng.Intn(len(mut))] ^= byte(1 + rng.Intn(255))
			}
		case 1:
			mut = mut[:rng.Intn(len(mut))]
		case 2:
			mut = make([]byte, rng.Intn(256))
			rng.Read(mut)
		case 3:
			// keep the stream, lie about the raw length below
		}
		declared := len(src)
		if i%4 == 3 {
			declared = rng.Intn(4 * len(src))
		}
		out, err := lzDecompress(mut, declared)
		if err == nil && len(out) != declared {
			t.Fatalf("iteration %d: decoder returned %d bytes without error, declared %d", i, len(out), declared)
		}
	}
	// A lying raw length far beyond what the stream could produce is
	// rejected before allocation.
	if _, err := lzDecompress([]byte{0x80, 1, 0}, maxBlockBytes); err == nil {
		t.Fatal("absurd raw length accepted")
	}
}
