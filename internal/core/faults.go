package core

import (
	"context"
	"fmt"
	"time"

	"blueskies/internal/events"
)

// StreamGapError is the typed loud failure a sequencer-stream consumer
// reports when the delivered sequence numbers skip: the sequencer
// dropped frames past this consumer, and a measurement stream that
// silently thins its corpus corrupts every downstream statistic.
// Callers distinguish it from infrastructure errors with errors.As.
type StreamGapError struct {
	Lost int64 // frames missing between From and To
	From int64 // last delivered sequence number
	To   int64 // first sequence number seen after the gap
}

func (e *StreamGapError) Error() string {
	return fmt.Sprintf("core: stream lost %d frames (seq %d → %d): consumer outpaced by sequencer fan-out", e.Lost, e.From, e.To)
}

// FaultAction is one kind of injectable stream fault.
type FaultAction int

const (
	// FaultDrop discards the frame before delivery without advancing
	// the consumer's sequence cursor, so the next delivered frame trips
	// the gap detector (a relay that lost frames mid-stream). A drop at
	// seq 1 slips under the detector — gap detection needs a delivered
	// predecessor — and a drop of the final end-of-stream marker stalls
	// the consumer forever; schedules should target interior frames.
	FaultDrop FaultAction = iota
	// FaultDuplicate delivers the frame normally, then replays it once
	// (a relay reconnect re-serving its backfill window). The replayed
	// copy exercises the consumer's dedup branch, so output bytes are
	// unchanged by construction.
	FaultDuplicate
	// FaultStall pauses the consumer for Stall before processing the
	// frame (a labeler outage, a consumer GC pause). The sequencer
	// backlog absorbs the outage window and delivery resumes from the
	// cursor, so only timing and backlog high-water move — never bytes.
	FaultStall
)

func (a FaultAction) String() string {
	switch a {
	case FaultDrop:
		return "drop"
	case FaultDuplicate:
		return "duplicate"
	case FaultStall:
		return "stall"
	}
	return fmt.Sprintf("FaultAction(%d)", int(a))
}

// StreamFault is one deterministic fault: when the consumer of stream
// Stream (index into the sequencer list handed to the faulted stream
// constructors) reaches sequence number Seq, Action fires.
type StreamFault struct {
	Stream int
	Seq    int64
	Action FaultAction
	// Stall is the pause length for FaultStall (ignored otherwise).
	Stall time.Duration
}

// FaultSchedule indexes the faults of one faulted stream run. At most
// one fault per (stream, seq); later entries overwrite earlier ones.
// It is immutable after construction and consulted by point lookup
// only, so a schedule never perturbs iteration order or timing of the
// unfaulted frames — the determinism contract scenarios rely on.
type FaultSchedule struct {
	byStream map[int]map[int64]StreamFault
	n        int
}

// NewFaultSchedule builds a schedule from its faults.
func NewFaultSchedule(faults ...StreamFault) *FaultSchedule {
	fs := &FaultSchedule{byStream: make(map[int]map[int64]StreamFault)}
	for _, f := range faults {
		m := fs.byStream[f.Stream]
		if m == nil {
			m = make(map[int64]StreamFault)
			fs.byStream[f.Stream] = m
		}
		if _, dup := m[f.Seq]; !dup {
			fs.n++
		}
		m[f.Seq] = f
	}
	return fs
}

// Len reports the number of scheduled faults.
func (fs *FaultSchedule) Len() int {
	if fs == nil {
		return 0
	}
	return fs.n
}

func (fs *FaultSchedule) lookup(stream int, seq int64) (StreamFault, bool) {
	if fs == nil {
		return StreamFault{}, false
	}
	f, ok := fs.byStream[stream][seq]
	return f, ok
}

// streamFaults binds a schedule to one stream index so the per-frame
// hot path is a single map lookup. A nil receiver means unfaulted.
type streamFaults struct {
	fs     *FaultSchedule
	stream int
}

func (sf *streamFaults) lookup(seq int64) (StreamFault, bool) {
	if sf == nil {
		return StreamFault{}, false
	}
	return sf.fs.lookup(sf.stream, seq)
}

// SequencerStreamFaulted is SequencerStream with a fault schedule
// injected into the consumer side: stream i in the schedule addresses
// seqs[i]. A nil schedule behaves exactly like SequencerStream.
func SequencerStreamFaulted(ctx context.Context, fs *FaultSchedule, seqs ...*events.Sequencer) (<-chan RecordBlock, <-chan error) {
	return sequencerStreamFaulted(ctx, false, fs, seqs)
}

// DrainSequencersFaulted is DrainSequencers with a fault schedule
// injected into the consumer side: stream i in the schedule addresses
// seqs[i]. A nil schedule behaves exactly like DrainSequencers.
func DrainSequencersFaulted(ctx context.Context, fs *FaultSchedule, seqs ...*events.Sequencer) (<-chan RecordBlock, <-chan error) {
	return sequencerStreamFaulted(ctx, true, fs, seqs)
}
