package core

import "fmt"

// This file implements the dependency-free LZ frame compression used by
// the v3 block codec (DESIGN.md §11). The shipped-bytes hot path — the
// elastic scheduler pushing whole partition payloads to workers — moves
// the same dictionary and URI entropy over and over; a byte-oriented
// LZ77 with a 64KB window removes most of it without pulling in any
// external compressor.
//
// Stream layout (after the frame codec tag and the uvarint raw length):
// a sequence of ops, each introduced by one control byte c:
//
//	c < 0x80: literal run — the next c+1 bytes (1..128) are copied
//	          to the output verbatim;
//	c ≥ 0x80: match — copy (c&0x7f)+lzMinMatch bytes (4..131) from
//	          `offset` bytes back in the output, where offset is the
//	          following little-endian uint16 (1..65535). offset < length
//	          overlaps and replays already-written bytes (offset 1 is a
//	          byte RLE).
//
// The encoder is greedy over a fixed-size hash table of 4-byte
// sequences, so compression is a pure function of the input — the same
// block always compresses to the same bytes, which the content-hash
// cache keys and spill goldens rely on. Incompressible input is
// detected (output would not be smaller) and reported by returning nil;
// callers then keep the raw form.

const (
	lzMinMatch  = 4
	lzMaxMatch  = lzMinMatch + 0x7f // 131: longest single copy op
	lzMaxOffset = 1 << 16           // uint16 offsets, 0 is invalid
	lzTableBits = 14

	// lzMaxExpansion bounds how much larger decompressed output can be
	// than its compressed form: a 3-byte copy op emits at most
	// lzMaxMatch bytes (~44×). A declared raw length beyond this is a
	// lie, rejected before any allocation mirrors it.
	lzMaxExpansion = lzMaxMatch
)

func lzHash(v uint32) uint32 {
	return (v * 2654435761) >> (32 - lzTableBits)
}

func lzLoad32(b []byte, i int) uint32 {
	return uint32(b[i]) | uint32(b[i+1])<<8 | uint32(b[i+2])<<16 | uint32(b[i+3])<<24
}

// lzCompress compresses src, returning nil when the result would not be
// strictly smaller (or src is too short to bother).
func lzCompress(src []byte) []byte {
	if len(src) < 16 {
		return nil
	}
	// table holds position+1 of the last occurrence of each hashed
	// 4-byte sequence; 0 means empty.
	table := make([]int32, 1<<lzTableBits)
	dst := make([]byte, 0, len(src))
	litStart := 0
	i := 0
	limit := len(src) - lzMinMatch
	for i <= limit {
		h := lzHash(lzLoad32(src, i))
		cand := int(table[h]) - 1
		table[h] = int32(i + 1)
		if cand < 0 || i-cand >= lzMaxOffset || lzLoad32(src, cand) != lzLoad32(src, i) {
			i++
			continue
		}
		// Extend the match as far as it goes.
		mlen := lzMinMatch
		for i+mlen < len(src) && src[cand+mlen] == src[i+mlen] {
			mlen++
		}
		dst = lzEmitLiterals(dst, src[litStart:i])
		dst = lzEmitMatch(dst, i-cand, mlen)
		if len(dst) >= len(src) {
			return nil
		}
		i += mlen
		litStart = i
	}
	dst = lzEmitLiterals(dst, src[litStart:])
	if len(dst) >= len(src) {
		return nil
	}
	return dst
}

func lzEmitLiterals(dst, lit []byte) []byte {
	for len(lit) > 0 {
		n := len(lit)
		if n > 128 {
			n = 128
		}
		dst = append(dst, byte(n-1))
		dst = append(dst, lit[:n]...)
		lit = lit[n:]
	}
	return dst
}

func lzEmitMatch(dst []byte, offset, length int) []byte {
	for length >= lzMinMatch {
		n := length
		if n > lzMaxMatch {
			n = lzMaxMatch
			// Never strand a tail shorter than a copy op can express.
			if length-n < lzMinMatch {
				n = length - lzMinMatch
			}
		}
		dst = append(dst, 0x80|byte(n-lzMinMatch), byte(offset), byte(offset>>8))
		length -= n
	}
	return dst
}

// lzDecompress expands src into exactly rawLen bytes. Every offset is
// validated against the bytes already produced and the declared length
// is bounded by what a well-formed stream could express, so hostile
// input fails loudly instead of over-allocating or panicking.
func lzDecompress(src []byte, rawLen int) ([]byte, error) {
	if rawLen < 0 || rawLen > maxBlockBytes {
		return nil, fmt.Errorf("core: lz frame: raw length %d out of range", rawLen)
	}
	if rawLen > len(src)*lzMaxExpansion+1 {
		return nil, fmt.Errorf("core: lz frame: raw length %d impossible for %d compressed bytes", rawLen, len(src))
	}
	out := make([]byte, 0, rawLen)
	pos := 0
	for pos < len(src) {
		c := src[pos]
		pos++
		if c < 0x80 {
			n := int(c) + 1
			if pos+n > len(src) {
				return nil, fmt.Errorf("core: lz frame: literal run of %d overruns input at offset %d", n, pos)
			}
			if len(out)+n > rawLen {
				return nil, fmt.Errorf("core: lz frame: output exceeds declared length %d", rawLen)
			}
			out = append(out, src[pos:pos+n]...)
			pos += n
			continue
		}
		n := int(c&0x7f) + lzMinMatch
		if pos+2 > len(src) {
			return nil, fmt.Errorf("core: lz frame: truncated match offset at %d", pos)
		}
		off := int(src[pos]) | int(src[pos+1])<<8
		pos += 2
		if off == 0 || off > len(out) {
			return nil, fmt.Errorf("core: lz frame: match offset %d outside %d produced bytes", off, len(out))
		}
		if len(out)+n > rawLen {
			return nil, fmt.Errorf("core: lz frame: output exceeds declared length %d", rawLen)
		}
		start := len(out) - off
		if off >= n {
			out = append(out, out[start:start+n]...)
		} else {
			for j := 0; j < n; j++ {
				out = append(out, out[start+j])
			}
		}
	}
	if len(out) != rawLen {
		return nil, fmt.Errorf("core: lz frame: produced %d bytes, declared %d", len(out), rawLen)
	}
	return out, nil
}
