package core

import (
	"encoding/binary"
	"time"
)

// This file implements the v3 columnar block encoding (DESIGN.md §11).
// It keeps v2's column order and dictionary discipline exactly, and
// changes three things, all aimed at the decode→accumulator hot path:
//
//   - string columns (DIDs, URIs, handles, …) are block-coded: one
//     uvarint total, the per-row lengths, then all bytes concatenated.
//     The decoder performs ONE string conversion per column and slices
//     row values out of it — v2 pays one allocation per row, and that
//     allocation is the single largest decode cost;
//   - timestamp and index columns (CreatedAt, Applied, AuthorIdx,
//     CreatorIdx, …) are fixed-width: 8-byte little-endian deltas
//     against the previous row, bulk-loaded with encoding/binary
//     instead of per-row varint branching. The deltas are small and
//     byte-aligned, which also makes them highly compressible;
//   - the dictionary itself uses the same one-conversion layout.
//
// The payload layout behind the blockCodecColumnar3 tag:
//
//	uvarint dictionary entry count
//	uvarint dictionary total bytes, per-entry uvarint lengths, bytes
//	byte    header presence (0 or 1), then the header scalars
//	per collection: uvarint row count, then whole columns in
//	    struct-field order (same order as v2)
//
// A v3 frame may additionally carry the blockCodecLZ bit (see lz.go
// and diskstore.go): tag|0x40, uvarint raw length, LZ stream. The bit
// is part of format v3 — v2 stores never contain it, so format
// negotiation in sched covers compression for free.
//
// Decode can also surface the block's dictionary view (DictBlock) so
// analysis can fold the dictionary into its intern tables once per
// block instead of re-hashing every row — see PartitionReader.NextDict
// and streamIngest.applyColumnar.

// DictBlock is the dictionary view of a decoded columnar block: the
// first-use-ordered string dictionary plus, for the collections that
// feed the engine's intern tables, the raw per-row dictionary ids.
// Ids index Dict and are only meaningful alongside the RecordBlock
// decoded from the same frame (columns are parallel to its slices).
// v1 frames have no dictionary; their view is nil.
//
//wire:v2 fields=4
type DictBlock struct {
	Dict []string

	// Per-label dictionary ids, parallel to RecordBlock.Labels.
	LabelSrc  []uint32
	LabelVal  []uint32
	LabelKind []uint32
}

// colEnc3 layers the v3 fixed-width and block-string column writers on
// the shared v2 encoder state.
type colEnc3 struct {
	colEnc
}

// strs writes a block-coded string column: total, lengths, bytes.
func (e *colEnc3) strs(n int, at func(int) string) {
	total := 0
	for i := 0; i < n; i++ {
		total += len(at(i))
	}
	e.uv(uint64(total))
	for i := 0; i < n; i++ {
		e.uv(uint64(len(at(i))))
	}
	for i := 0; i < n; i++ {
		e.body = append(e.body, at(i)...)
	}
}

// fixed writes an int64 column as 8-byte little-endian deltas.
func (e *colEnc3) fixed(n int, at func(int) int64) {
	var prev int64
	for i := 0; i < n; i++ {
		v := at(i)
		e.body = binary.LittleEndian.AppendUint64(e.body, uint64(v-prev))
		prev = v
	}
}

func (e *colEnc3) ftimes(n int, at func(int) time.Time) {
	e.fixed(n, func(i int) int64 { return nsOf(at(i)) })
}

// encodeColumnarBlockV3 encodes b as a tagged v3 columnar payload.
func encodeColumnarBlockV3(b *RecordBlock) []byte {
	e := &colEnc3{colEnc{ids: make(map[string]uint64, 64)}}
	e.header(b.Header)
	e.labelers3(b.Labelers)
	e.users3(b.Users)
	e.posts3(b.Posts)
	e.days3(b.Days)
	e.labels3(b.Labels)
	e.feedGens3(b.FeedGens)
	e.domains3(b.Domains)
	e.handleUpdates3(b.HandleUpdates)

	dictBytes := 0
	for _, s := range e.dict {
		dictBytes += binary.MaxVarintLen64 + len(s)
	}
	out := make([]byte, 0, 1+2*binary.MaxVarintLen64+dictBytes+len(e.body))
	out = append(out, blockCodecColumnar3)
	out = binary.AppendUvarint(out, uint64(len(e.dict)))
	if len(e.dict) > 0 {
		total := 0
		for _, s := range e.dict {
			total += len(s)
		}
		out = binary.AppendUvarint(out, uint64(total))
		for _, s := range e.dict {
			out = binary.AppendUvarint(out, uint64(len(s)))
		}
		for _, s := range e.dict {
			out = append(out, s...)
		}
	}
	return append(out, e.body...)
}

func (e *colEnc3) labelers3(ls []Labeler) {
	e.uv(uint64(len(ls)))
	if len(ls) == 0 {
		return
	}
	n := len(ls)
	e.strs(n, func(i int) string { return ls[i].DID })
	e.strs(n, func(i int) string { return ls[i].Name })
	e.bits(n, func(i int) bool { return ls[i].Official })
	for i := range ls {
		e.uv(uint64(len(ls[i].Values)))
		for _, v := range ls[i].Values {
			e.dictStr(v)
		}
	}
	e.ftimes(n, func(i int) time.Time { return ls[i].Announced })
	e.bits(n, func(i int) bool { return ls[i].Functional })
	e.bits(n, func(i int) bool { return ls[i].Active })
	for i := range ls {
		e.dictStr(ls[i].Hosting)
	}
	e.bits(n, func(i int) bool { return ls[i].Automated })
	for i := range ls {
		e.sv(int64(ls[i].Likes))
	}
	e.strs(n, func(i int) string { return ls[i].Operator })
	e.strs(n, func(i int) string { return ls[i].About })
}

func (e *colEnc3) users3(us []User) {
	e.uv(uint64(len(us)))
	if len(us) == 0 {
		return
	}
	n := len(us)
	e.strs(n, func(i int) string { return us[i].DID })
	e.strs(n, func(i int) string { return us[i].Handle })
	for i := range us {
		e.dictStr(us[i].DIDMethod)
	}
	for i := range us {
		e.dictStr(us[i].PDS)
	}
	for i := range us {
		e.dictStr(string(us[i].Proof))
	}
	e.ftimes(n, func(i int) time.Time { return us[i].CreatedAt })
	for i := range us {
		e.dictStr(us[i].Lang)
	}
	for i := range us {
		e.sv(int64(us[i].Followers))
	}
	for i := range us {
		e.sv(int64(us[i].Following))
	}
	for i := range us {
		e.sv(int64(us[i].Posts))
	}
	for i := range us {
		e.sv(int64(us[i].Likes))
	}
	for i := range us {
		e.sv(int64(us[i].Reposts))
	}
	for i := range us {
		e.sv(int64(us[i].Blocks))
	}
	e.bits(n, func(i int) bool { return us[i].Deleted })
}

func (e *colEnc3) posts3(ps []Post) {
	e.uv(uint64(len(ps)))
	if len(ps) == 0 {
		return
	}
	n := len(ps)
	e.strs(n, func(i int) string { return ps[i].URI })
	e.fixed(n, func(i int) int64 { return int64(ps[i].AuthorIdx) })
	for i := range ps {
		e.dictStr(ps[i].Lang)
	}
	e.ftimes(n, func(i int) time.Time { return ps[i].CreatedAt })
	for i := range ps {
		e.sv(int64(ps[i].Likes))
	}
	for i := range ps {
		e.sv(int64(ps[i].Reposts))
	}
	e.bits(n, func(i int) bool { return ps[i].HasMedia })
	e.bits(n, func(i int) bool { return ps[i].AltText })
}

func (e *colEnc3) days3(ds []DayActivity) {
	e.uv(uint64(len(ds)))
	if len(ds) == 0 {
		return
	}
	n := len(ds)
	e.ftimes(n, func(i int) time.Time { return ds[i].Date })
	for i := range ds {
		e.sv(int64(ds[i].ActiveUsers))
	}
	for i := range ds {
		e.sv(int64(ds[i].Posts))
	}
	for i := range ds {
		e.sv(int64(ds[i].Likes))
	}
	for i := range ds {
		e.sv(int64(ds[i].Reposts))
	}
	for i := range ds {
		e.sv(int64(ds[i].Follows))
	}
	for i := range ds {
		e.sv(int64(ds[i].Blocks))
	}
	for i := range ds {
		e.langMap(ds[i].ActiveByLang)
	}
}

func (e *colEnc3) labels3(ls []Label) {
	e.uv(uint64(len(ls)))
	if len(ls) == 0 {
		return
	}
	n := len(ls)
	for i := range ls {
		e.dictStr(ls[i].Src)
	}
	e.strs(n, func(i int) string { return ls[i].URI })
	for i := range ls {
		e.dictStr(ls[i].Val)
	}
	e.bits(n, func(i int) bool { return ls[i].Neg })
	for i := range ls {
		e.dictStr(string(ls[i].Kind))
	}
	e.ftimes(n, func(i int) time.Time { return ls[i].Applied })
	e.ftimes(n, func(i int) time.Time { return ls[i].SubjectCreated })
	e.bits(n, func(i int) bool { return ls[i].FreshSubject })
}

func (e *colEnc3) feedGens3(fs []FeedGen) {
	e.uv(uint64(len(fs)))
	if len(fs) == 0 {
		return
	}
	n := len(fs)
	e.strs(n, func(i int) string { return fs[i].URI })
	e.fixed(n, func(i int) int64 { return int64(fs[i].CreatorIdx) })
	for i := range fs {
		e.dictStr(fs[i].Platform)
	}
	e.strs(n, func(i int) string { return fs[i].DisplayName })
	e.strs(n, func(i int) string { return fs[i].Description })
	for i := range fs {
		e.dictStr(fs[i].Lang)
	}
	e.ftimes(n, func(i int) time.Time { return fs[i].CreatedAt })
	for i := range fs {
		e.sv(int64(fs[i].Likes))
	}
	for i := range fs {
		e.sv(int64(fs[i].Posts))
	}
	e.ftimes(n, func(i int) time.Time { return fs[i].LastPost })
	e.bits(n, func(i int) bool { return fs[i].Reachable })
	e.bits(n, func(i int) bool { return fs[i].Personalized })
	for i := range fs {
		e.f64(fs[i].LabeledShare)
	}
	for i := range fs {
		e.dictStr(fs[i].TopLabel)
	}
}

func (e *colEnc3) domains3(ds []Domain) {
	e.uv(uint64(len(ds)))
	if len(ds) == 0 {
		return
	}
	n := len(ds)
	e.strs(n, func(i int) string { return ds[i].Name })
	for i := range ds {
		e.sv(int64(ds[i].IANAID))
	}
	for i := range ds {
		e.dictStr(ds[i].RegistrarName)
	}
	e.bits(n, func(i int) bool { return ds[i].CCTLD })
	for i := range ds {
		e.sv(int64(ds[i].TrancoRank))
	}
	for i := range ds {
		e.sv(int64(ds[i].Subdomains))
	}
}

func (e *colEnc3) handleUpdates3(hs []HandleUpdate) {
	e.uv(uint64(len(hs)))
	if len(hs) == 0 {
		return
	}
	n := len(hs)
	e.strs(n, func(i int) string { return hs[i].DID })
	e.strs(n, func(i int) string { return hs[i].NewHandle })
	e.ftimes(n, func(i int) time.Time { return hs[i].Time })
}

// colDec3 decodes a v3 payload. It reuses the sticky-error v2 decoder
// state and adds the block-string and fixed-width readers.
type colDec3 struct {
	colDec
	lens []uint32 // scratch for strs, reused across columns
}

// strs decodes a block-coded string column with one string conversion;
// row values are substrings of that single backing allocation.
func (d *colDec3) strs(n int) []string {
	if d.err != nil || n == 0 {
		return nil
	}
	total := d.uv()
	if d.err != nil {
		return nil
	}
	if total > uint64(d.remaining()) {
		d.fail("string column of %d bytes exceeds the %d remaining", total, d.remaining())
		return nil
	}
	if cap(d.lens) < n {
		d.lens = make([]uint32, n)
	}
	lens := d.lens[:n]
	var sum uint64
	for i := range lens {
		l := d.uv()
		if d.err != nil {
			return nil
		}
		if l > total-sum {
			d.fail("string column lengths exceed declared %d bytes", total)
			return nil
		}
		lens[i] = uint32(l)
		sum += l
	}
	if sum != total {
		d.fail("string column lengths sum to %d, declared %d", sum, total)
		return nil
	}
	raw := string(d.take(int(total)))
	if d.err != nil {
		return nil
	}
	out := make([]string, n)
	off := 0
	for i := range out {
		end := off + int(lens[i])
		out[i] = raw[off:end]
		off = end
	}
	return out
}

// fixed returns the raw bytes of an n-row fixed-width delta column;
// nil after a decode failure. Callers prefix-sum inline.
func (d *colDec3) fixed(n int) []byte {
	if n > (maxBlockBytes-8)/8 {
		d.fail("fixed column of %d rows out of range", n)
		return nil
	}
	return d.take(8 * n)
}

// decodeColumnarBlockV3 decodes a v3 columnar payload (tag byte already
// stripped). When db is non-nil the dictionary view is captured into it.
func decodeColumnarBlockV3(data []byte, db *DictBlock) (*RecordBlock, error) {
	d := &colDec3{colDec: colDec{data: data, db: db}}
	if n := d.count(minDictEntry); n > 0 {
		d.dict = d.strs(n)
	}
	b := &RecordBlock{}
	b.Header = d.header()
	b.Labelers = d.labelersCol3()
	b.Users = d.usersCol3()
	b.Posts = d.postsCol3()
	b.Days = d.daysCol3()
	b.Labels = d.labelsCol3()
	b.FeedGens = d.feedGensCol3()
	b.Domains = d.domainsCol3()
	b.HandleUpdates = d.handleUpdatesCol3()
	if d.err != nil {
		return nil, d.err
	}
	if d.pos != len(d.data) {
		return nil, errTrailing(len(d.data) - d.pos)
	}
	if db != nil {
		db.Dict = d.dict
	}
	return b, nil
}

func (d *colDec3) labelersCol3() []Labeler {
	n := d.count(minRowLabeler)
	if n == 0 {
		return nil
	}
	ls := make([]Labeler, n)
	for i, s := range d.strs(n) {
		ls[i].DID = s
	}
	for i, s := range d.strs(n) {
		ls[i].Name = s
	}
	bs := d.bits(n)
	for i := range ls {
		ls[i].Official = bs.get(i)
	}
	for i := range ls {
		if vn := d.count(1); vn > 0 {
			ls[i].Values = make([]string, vn)
			for j := range ls[i].Values {
				ls[i].Values[j] = d.dictStr()
			}
		}
	}
	if fb := d.fixed(n); fb != nil {
		var prev int64
		for i := range ls {
			prev += int64(binary.LittleEndian.Uint64(fb[8*i:]))
			ls[i].Announced = timeOf(prev)
		}
	}
	bs = d.bits(n)
	for i := range ls {
		ls[i].Functional = bs.get(i)
	}
	bs = d.bits(n)
	for i := range ls {
		ls[i].Active = bs.get(i)
	}
	for i := range ls {
		ls[i].Hosting = d.dictStr()
	}
	bs = d.bits(n)
	for i := range ls {
		ls[i].Automated = bs.get(i)
	}
	for i := range ls {
		ls[i].Likes = int(d.sv())
	}
	for i, s := range d.strs(n) {
		ls[i].Operator = s
	}
	for i, s := range d.strs(n) {
		ls[i].About = s
	}
	return ls
}

func (d *colDec3) usersCol3() []User {
	n := d.count(minRowUser)
	if n == 0 {
		return nil
	}
	us := make([]User, n)
	for i, s := range d.strs(n) {
		us[i].DID = s
	}
	for i, s := range d.strs(n) {
		us[i].Handle = s
	}
	for i := range us {
		us[i].DIDMethod = d.dictStr()
	}
	for i := range us {
		us[i].PDS = d.dictStr()
	}
	for i := range us {
		us[i].Proof = ProofMethod(d.dictStr())
	}
	if fb := d.fixed(n); fb != nil {
		var prev int64
		for i := range us {
			prev += int64(binary.LittleEndian.Uint64(fb[8*i:]))
			us[i].CreatedAt = timeOf(prev)
		}
	}
	for i := range us {
		us[i].Lang = d.dictStr()
	}
	for i := range us {
		us[i].Followers = int(d.sv())
	}
	for i := range us {
		us[i].Following = int(d.sv())
	}
	for i := range us {
		us[i].Posts = int(d.sv())
	}
	for i := range us {
		us[i].Likes = int(d.sv())
	}
	for i := range us {
		us[i].Reposts = int(d.sv())
	}
	for i := range us {
		us[i].Blocks = int(d.sv())
	}
	bs := d.bits(n)
	for i := range us {
		us[i].Deleted = bs.get(i)
	}
	return us
}

func (d *colDec3) postsCol3() []Post {
	n := d.count(minRowPost)
	if n == 0 {
		return nil
	}
	ps := make([]Post, n)
	for i, s := range d.strs(n) {
		ps[i].URI = s
	}
	if fb := d.fixed(n); fb != nil {
		var prev int64
		for i := range ps {
			prev += int64(binary.LittleEndian.Uint64(fb[8*i:]))
			ps[i].AuthorIdx = int(prev)
		}
	}
	for i := range ps {
		ps[i].Lang = d.dictStr()
	}
	if fb := d.fixed(n); fb != nil {
		var prev int64
		for i := range ps {
			prev += int64(binary.LittleEndian.Uint64(fb[8*i:]))
			ps[i].CreatedAt = timeOf(prev)
		}
	}
	for i := range ps {
		ps[i].Likes = int(d.sv())
	}
	for i := range ps {
		ps[i].Reposts = int(d.sv())
	}
	bs := d.bits(n)
	for i := range ps {
		ps[i].HasMedia = bs.get(i)
	}
	bs = d.bits(n)
	for i := range ps {
		ps[i].AltText = bs.get(i)
	}
	return ps
}

func (d *colDec3) daysCol3() []DayActivity {
	n := d.count(minRowDay)
	if n == 0 {
		return nil
	}
	ds := make([]DayActivity, n)
	if fb := d.fixed(n); fb != nil {
		var prev int64
		for i := range ds {
			prev += int64(binary.LittleEndian.Uint64(fb[8*i:]))
			ds[i].Date = timeOf(prev)
		}
	}
	for i := range ds {
		ds[i].ActiveUsers = int(d.sv())
	}
	for i := range ds {
		ds[i].Posts = int(d.sv())
	}
	for i := range ds {
		ds[i].Likes = int(d.sv())
	}
	for i := range ds {
		ds[i].Reposts = int(d.sv())
	}
	for i := range ds {
		ds[i].Follows = int(d.sv())
	}
	for i := range ds {
		ds[i].Blocks = int(d.sv())
	}
	for i := range ds {
		ds[i].ActiveByLang = d.langMap()
		if d.err != nil {
			return nil
		}
	}
	return ds
}

func (d *colDec3) labelsCol3() []Label {
	n := d.count(minRowLabel)
	if n == 0 {
		return nil
	}
	ls := make([]Label, n)
	src := d.dictIDs(n)
	for i := range ls {
		ls[i].Src = d.dictAt(src, i)
	}
	for i, s := range d.strs(n) {
		ls[i].URI = s
	}
	val := d.dictIDs(n)
	for i := range ls {
		ls[i].Val = d.dictAt(val, i)
	}
	bs := d.bits(n)
	for i := range ls {
		ls[i].Neg = bs.get(i)
	}
	kind := d.dictIDs(n)
	for i := range ls {
		ls[i].Kind = SubjectKind(d.dictAt(kind, i))
	}
	if fb := d.fixed(n); fb != nil {
		var prev int64
		for i := range ls {
			prev += int64(binary.LittleEndian.Uint64(fb[8*i:]))
			ls[i].Applied = timeOf(prev)
		}
	}
	if fb := d.fixed(n); fb != nil {
		var prev int64
		for i := range ls {
			prev += int64(binary.LittleEndian.Uint64(fb[8*i:]))
			ls[i].SubjectCreated = timeOf(prev)
		}
	}
	bs = d.bits(n)
	for i := range ls {
		ls[i].FreshSubject = bs.get(i)
	}
	if d.db != nil && d.err == nil {
		d.db.LabelSrc = src
		d.db.LabelVal = val
		d.db.LabelKind = kind
	}
	return ls
}

func (d *colDec3) feedGensCol3() []FeedGen {
	n := d.count(minRowFeedGen)
	if n == 0 {
		return nil
	}
	fs := make([]FeedGen, n)
	for i, s := range d.strs(n) {
		fs[i].URI = s
	}
	if fb := d.fixed(n); fb != nil {
		var prev int64
		for i := range fs {
			prev += int64(binary.LittleEndian.Uint64(fb[8*i:]))
			fs[i].CreatorIdx = int(prev)
		}
	}
	for i := range fs {
		fs[i].Platform = d.dictStr()
	}
	for i, s := range d.strs(n) {
		fs[i].DisplayName = s
	}
	for i, s := range d.strs(n) {
		fs[i].Description = s
	}
	for i := range fs {
		fs[i].Lang = d.dictStr()
	}
	if fb := d.fixed(n); fb != nil {
		var prev int64
		for i := range fs {
			prev += int64(binary.LittleEndian.Uint64(fb[8*i:]))
			fs[i].CreatedAt = timeOf(prev)
		}
	}
	for i := range fs {
		fs[i].Likes = int(d.sv())
	}
	for i := range fs {
		fs[i].Posts = int(d.sv())
	}
	if fb := d.fixed(n); fb != nil {
		var prev int64
		for i := range fs {
			prev += int64(binary.LittleEndian.Uint64(fb[8*i:]))
			fs[i].LastPost = timeOf(prev)
		}
	}
	bs := d.bits(n)
	for i := range fs {
		fs[i].Reachable = bs.get(i)
	}
	bs = d.bits(n)
	for i := range fs {
		fs[i].Personalized = bs.get(i)
	}
	for i := range fs {
		fs[i].LabeledShare = d.f64()
	}
	for i := range fs {
		fs[i].TopLabel = d.dictStr()
	}
	return fs
}

func (d *colDec3) domainsCol3() []Domain {
	n := d.count(minRowDomain)
	if n == 0 {
		return nil
	}
	ds := make([]Domain, n)
	for i, s := range d.strs(n) {
		ds[i].Name = s
	}
	for i := range ds {
		ds[i].IANAID = int(d.sv())
	}
	for i := range ds {
		ds[i].RegistrarName = d.dictStr()
	}
	bs := d.bits(n)
	for i := range ds {
		ds[i].CCTLD = bs.get(i)
	}
	for i := range ds {
		ds[i].TrancoRank = int(d.sv())
	}
	for i := range ds {
		ds[i].Subdomains = int(d.sv())
	}
	return ds
}

func (d *colDec3) handleUpdatesCol3() []HandleUpdate {
	n := d.count(minRowHandleUpdate)
	if n == 0 {
		return nil
	}
	hs := make([]HandleUpdate, n)
	for i, s := range d.strs(n) {
		hs[i].DID = s
	}
	for i, s := range d.strs(n) {
		hs[i].NewHandle = s
	}
	if fb := d.fixed(n); fb != nil {
		var prev int64
		for i := range hs {
			prev += int64(binary.LittleEndian.Uint64(fb[8*i:]))
			hs[i].Time = timeOf(prev)
		}
	}
	return hs
}
