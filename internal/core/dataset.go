package core

import (
	"time"
)

// This file defines the materialized dataset model: the record structs
// of the five §3 datasets and the Dataset aggregate. See doc.go for
// how datasets compose into partitioned and disk-backed corpora.

// ProofMethod is how a handle proves domain ownership (§5).
type ProofMethod string

// Handle ownership proof methods.
const (
	ProofDNSTXT    ProofMethod = "dns-txt"     // _atproto.<handle> TXT record (98.7 %)
	ProofWellKnown ProofMethod = "well-known"  // /.well-known/atproto-did (1.3 %)
	ProofManaged   ProofMethod = "bsky-social" // custodial bsky.social subdomain
)

// User is one account in the Identifier + DID Document datasets.
//
//wire:v1 fields=14
type User struct {
	DID       string
	Handle    string
	DIDMethod string // "plc" or "web"
	PDS       string // hosting PDS label
	Proof     ProofMethod
	CreatedAt time.Time
	Lang      string // dominant self-assigned post language ("" = never posted)
	// Social graph degree (follow operations).
	Followers int
	Following int
	// Activity totals accumulated from the repository snapshot.
	Posts   int
	Likes   int
	Reposts int
	Blocks  int // blocks received
	Deleted bool
}

// Post is one post from the Repositories dataset.
//
//wire:v1 fields=8
type Post struct {
	URI       string
	AuthorIdx int // index into Dataset.Users
	Lang      string
	CreatedAt time.Time
	Likes     int
	Reposts   int
	HasMedia  bool
	AltText   bool // media carries alt text
}

// DayActivity is one day of platform activity (Figure 1 / Figure 2).
//
//wire:v1 fields=8
type DayActivity struct {
	Date        time.Time
	ActiveUsers int
	Posts       int
	Likes       int
	Reposts     int
	Follows     int
	Blocks      int
	// ActiveByLang maps language → active users that day (Figure 2).
	ActiveByLang map[string]int
}

// EventCounts aggregates Firehose event types (Table 1).
//
//wire:v1 fields=4
type EventCounts struct {
	Commits   int64
	Identity  int64
	Handle    int64
	Tombstone int64
}

// Total sums all event types.
func (e EventCounts) Total() int64 { return e.Commits + e.Identity + e.Handle + e.Tombstone }

// SubjectKind classifies a label's target (Table 4).
type SubjectKind string

// Label target kinds.
const (
	SubjectPost    SubjectKind = "post"
	SubjectAccount SubjectKind = "account"
	SubjectMedia   SubjectKind = "banner/avatar"
	SubjectOther   SubjectKind = "other"
)

// Label is one labeling interaction from the Labeling Services dataset.
//
//wire:v1 fields=8
type Label struct {
	Src     string // labeler DID
	URI     string // subject
	Val     string
	Neg     bool
	Kind    SubjectKind
	Applied time.Time
	// SubjectCreated is when the labeled object was created; reaction
	// time = Applied − SubjectCreated (Figures 5/6, Table 6).
	SubjectCreated time.Time
	// FreshSubject marks subjects created during the measurement
	// window (the paper computes reaction times only on those).
	FreshSubject bool
}

// ReactionTime returns Applied − SubjectCreated.
func (l Label) ReactionTime() time.Duration { return l.Applied.Sub(l.SubjectCreated) }

// Labeler is one labeling service (§6.1).
//
//wire:v1 fields=12
type Labeler struct {
	DID      string
	Name     string
	Official bool
	Values   []string
	// Announced is when the service record appeared.
	Announced time.Time
	// Functional: endpoint reachable; Active: issued ≥1 label.
	Functional bool
	Active     bool
	// Hosting classifies the endpoint's IP (cloud/residential/unknown).
	Hosting string
	// Automated models the issuance process (fast, low-variance
	// reaction times vs. slow manual ones).
	Automated bool
	Likes     int
	Operator  string
	About     string
}

// FeedGen is one feed generator (§7).
//
//wire:v1 fields=14
type FeedGen struct {
	URI         string
	CreatorIdx  int    // index into Dataset.Users
	Platform    string // FGaaS platform name, or "self-hosted"
	DisplayName string
	Description string
	Lang        string
	CreatedAt   time.Time
	Likes       int
	// Posts curated during the measurement window.
	Posts int
	// LastPost is the newest curated post time (zero = never).
	LastPost time.Time
	// Reachable: metadata fetch succeeded (paper: 40,398 of 43,063).
	Reachable bool
	// Personalized feeds return nothing to crawler accounts.
	Personalized bool
	// LabeledShare is the fraction of curated posts carrying labels;
	// TopLabel the most frequent one (Figure 9).
	LabeledShare float64
	TopLabel     string
}

// HandleUpdate is one #handle event (§5, User Handles Updates).
//
//wire:v1 fields=3
type HandleUpdate struct {
	DID       string
	NewHandle string
	Time      time.Time
}

// Domain is one registered domain from the WHOIS scan (Table 2).
//
//wire:v1 fields=6
type Domain struct {
	Name string
	// IANAID is 0 when WHOIS omitted it (ccTLD policy).
	IANAID        int
	RegistrarName string
	CCTLD         bool
	// TrancoRank is the synthetic popularity rank (0 = not in top 1M).
	TrancoRank int
	// Subdomains counts FQDN handles under this registered domain
	// (Figure 3).
	Subdomains int
}

// Dataset is the full measurement corpus.
type Dataset struct {
	// Scale notes the 1/N downscaling factor relative to the paper.
	Scale int
	// Window is the measurement period.
	WindowStart, WindowEnd time.Time

	Users         []User
	Posts         []Post
	Daily         []DayActivity
	Firehose      EventCounts
	NonBskyEvents int64
	Labels        []Label
	Labelers      []Labeler
	FeedGens      []FeedGen
	HandleUpdates []HandleUpdate
	Domains       []Domain
}

// UserByDID finds a user index by DID (linear; datasets are generated
// sorted so callers needing speed should build their own index).
func (d *Dataset) UserByDID(did string) (int, bool) {
	for i := range d.Users {
		if d.Users[i].DID == did {
			return i, true
		}
	}
	return -1, false
}

// LabelerIndex maps labeler DIDs to their Labelers index. Consumers
// that join the label stream against the labeler population (the
// analysis engine resolves every Label.Src through it) should build it
// once per traversal instead of chasing DIDs through string maps per
// record.
func (d *Dataset) LabelerIndex() map[string]int32 {
	m := make(map[string]int32, len(d.Labelers))
	for i := range d.Labelers {
		m[d.Labelers[i].DID] = int32(i)
	}
	return m
}

// TotalOps sums all daily repo operations.
func (d *Dataset) TotalOps() (posts, likes, reposts, follows, blocks int64) {
	for _, day := range d.Daily {
		posts += int64(day.Posts)
		likes += int64(day.Likes)
		reposts += int64(day.Reposts)
		follows += int64(day.Follows)
		blocks += int64(day.Blocks)
	}
	return
}
