package core

import (
	"strings"
	"testing"
	"time"
)

func day(d int) time.Time { return time.Date(2024, 3, d, 0, 0, 0, 0, time.UTC) }

// TestSplitBounds pins the row-range split: balanced contiguous
// cuts, corpus facts on partition 0 only, the full labeler
// enumeration everywhere, and zero-copy views.
func TestSplitBounds(t *testing.T) {
	ds := &Dataset{
		Scale:       100,
		WindowStart: day(1),
		WindowEnd:   day(10),
		Firehose:    EventCounts{Commits: 42, Identity: 7},
		Labelers:    []Labeler{{DID: "did:plc:a"}, {DID: "did:plc:b"}},
	}
	for i := 0; i < 10; i++ {
		ds.Users = append(ds.Users, User{DID: "u"})
		ds.Daily = append(ds.Daily, DayActivity{Date: day(i + 1)})
	}
	for i := 0; i < 7; i++ {
		ds.Labels = append(ds.Labels, Label{Val: "x"})
	}
	parts, m := Split(ds, 3)
	if len(parts) != 3 {
		t.Fatalf("%d parts", len(parts))
	}
	users, labels := 0, 0
	for k, p := range parts {
		users += len(p.Users)
		labels += len(p.Labels)
		if len(p.Labelers) != 2 {
			t.Fatalf("partition %d lost the labeler enumeration", k)
		}
		if k > 0 && p.Firehose.Total() != 0 {
			t.Fatalf("partition %d double-counts firehose events", k)
		}
		if p.Scale != 100 || !p.WindowStart.Equal(day(1)) {
			t.Fatalf("partition %d lost corpus window/scale", k)
		}
	}
	if users != 10 || labels != 7 {
		t.Fatalf("split dropped records: users=%d labels=%d", users, labels)
	}
	if parts[0].Firehose != ds.Firehose {
		t.Fatal("partition 0 must carry the firehose counters")
	}
	// Views, not copies.
	parts[1].Users[0].Handle = "aliased"
	if ds.Users[len(parts[0].Users)].Handle != "aliased" {
		t.Fatal("split partitions must alias the original arrays")
	}
	// Manifest windows derive from each partition's daily range.
	if got := m.Partitions[1].WindowStart; !got.Equal(parts[1].Daily[0].Date) {
		t.Fatalf("partition 1 window start %v", got)
	}
	if !strings.Contains(m.Plan(), "split (corpus-global indexes)") {
		t.Fatalf("plan misses split mode:\n%s", m.Plan())
	}
}

// TestMergeLabelers pins the enumeration-agreement contract.
func TestMergeLabelers(t *testing.T) {
	a := []Labeler{{DID: "did:plc:a", Likes: 1}, {DID: "did:plc:b"}}
	prefix := []Labeler{{DID: "did:plc:a", Likes: 99}}
	longer := []Labeler{{DID: "did:plc:a"}, {DID: "did:plc:b"}, {DID: "did:plc:c"}}
	merged, err := MergeLabelers(nil, a)
	if err != nil || len(merged) != 2 {
		t.Fatalf("merge into empty: %v %d", err, len(merged))
	}
	if merged, err = MergeLabelers(merged, prefix); err != nil || len(merged) != 2 || merged[0].Likes != 1 {
		t.Fatalf("prefix merge must keep first-seen records: %v %+v", err, merged)
	}
	if merged, err = MergeLabelers(merged, longer); err != nil || len(merged) != 3 {
		t.Fatalf("extension merge: %v %d", err, len(merged))
	}
	if _, err = MergeLabelers(merged, []Labeler{{DID: "did:plc:z"}}); err == nil {
		t.Fatal("conflicting enumeration order must error")
	}
}

// TestCollectionCounts pins the bookkeeping helpers.
func TestCollectionCounts(t *testing.T) {
	a := CollectionCounts{Users: 1, Posts: 2, Days: 3, Labels: 4, FeedGens: 5, Domains: 6, HandleUpdates: 7}
	if a.Total() != 28 {
		t.Fatalf("Total = %d", a.Total())
	}
	var b CollectionCounts
	b.Add(a)
	b.Add(a)
	if b.Users != 2 || b.HandleUpdates != 14 {
		t.Fatalf("Add broken: %+v", b)
	}
}
