package car

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"testing/quick"

	"blueskies/internal/cid"
)

func TestRoundTrip(t *testing.T) {
	blocks := []Block{
		{CID: cid.SumCBOR([]byte("commit")), Data: []byte("commit")},
		{CID: cid.SumCBOR([]byte("node")), Data: []byte("node")},
		{CID: cid.SumRaw([]byte("record")), Data: []byte("record")},
	}
	root := blocks[0].CID

	var buf bytes.Buffer
	w, err := NewWriter(&buf, root)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range blocks {
		if err := w.WriteBlock(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Roots()) != 1 || !r.Roots()[0].Equal(root) {
		t.Fatalf("roots = %v", r.Roots())
	}
	got, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(blocks) {
		t.Fatalf("got %d blocks", len(got))
	}
	for i := range blocks {
		if !got[i].CID.Equal(blocks[i].CID) || !bytes.Equal(got[i].Data, blocks[i].Data) {
			t.Fatalf("block %d mismatch", i)
		}
	}
}

func TestEmptyArchive(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, cid.SumRaw([]byte("root")))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); !errors.Is(err, io.EOF) {
		t.Fatalf("want EOF, got %v", err)
	}
}

func TestCorruptBlockDetected(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, cid.SumRaw([]byte("r")))
	data := []byte("payload")
	if err := w.WriteBlock(Block{CID: cid.SumRaw(data), Data: data}); err != nil {
		t.Fatal(err)
	}
	_ = w.Flush()
	raw := buf.Bytes()
	raw[len(raw)-1] ^= 0xff // flip a payload byte

	r, err := NewReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err == nil {
		t.Fatal("expected digest mismatch error")
	}
}

func TestUndefinedCIDRejected(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, cid.SumRaw([]byte("r")))
	if err := w.WriteBlock(Block{Data: []byte("x")}); err == nil {
		t.Fatal("expected error for undefined CID")
	}
}

func TestTruncatedArchive(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, cid.SumRaw([]byte("r")))
	data := []byte("some longer payload for truncation")
	_ = w.WriteBlock(Block{CID: cid.SumRaw(data), Data: data})
	_ = w.Flush()
	raw := buf.Bytes()

	for cut := 1; cut < len(raw); cut += 7 {
		r, err := NewReader(bytes.NewReader(raw[:cut]))
		if err != nil {
			continue // truncated inside header: acceptable failure
		}
		if _, err := r.ReadAll(); err == nil && cut < len(raw) {
			// Only valid if the cut happens to land exactly after the
			// header (zero blocks), which ReadAll reports as success.
			n, _ := NewReader(bytes.NewReader(raw))
			hdrOnly := func() int {
				var b bytes.Buffer
				w2, _ := NewWriter(&b, n.Roots()...)
				_ = w2.Flush()
				return b.Len()
			}()
			if cut != hdrOnly {
				t.Fatalf("truncation at %d/%d not detected", cut, len(raw))
			}
		}
	}
}

func TestGarbageHeader(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte{0x05, 1, 2, 3, 4, 5})); err == nil {
		t.Fatal("expected header decode error")
	}
	if _, err := NewReader(bytes.NewReader(nil)); err == nil {
		t.Fatal("expected EOF error")
	}
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(payloads [][]byte) bool {
		var buf bytes.Buffer
		root := cid.SumRaw([]byte("root"))
		w, err := NewWriter(&buf, root)
		if err != nil {
			return false
		}
		for _, p := range payloads {
			if err := w.WriteBlock(Block{CID: cid.SumRaw(p), Data: p}); err != nil {
				return false
			}
		}
		if err := w.Flush(); err != nil {
			return false
		}
		r, err := NewReader(&buf)
		if err != nil {
			return false
		}
		got, err := r.ReadAll()
		if err != nil || len(got) != len(payloads) {
			return false
		}
		for i, p := range payloads {
			if !bytes.Equal(got[i].Data, p) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
