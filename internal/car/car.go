// Package car implements the CARv1 (Content Addressable aRchive)
// format used by com.atproto.sync.getRepo to ship full repositories:
// a DAG-CBOR header naming the root CIDs, followed by a sequence of
// varint-length-prefixed (CID ‖ block bytes) sections.
package car

import (
	"bufio"
	"errors"
	"fmt"
	"io"

	"blueskies/internal/cbor"
	"blueskies/internal/cid"
)

// Header is the CARv1 header block.
type Header struct {
	Version int       `cbor:"version"`
	Roots   []cid.CID `cbor:"roots"`
}

// Block is one section of the archive.
type Block struct {
	CID  cid.CID
	Data []byte
}

// Writer streams a CARv1 archive.
type Writer struct {
	w   *bufio.Writer
	err error
}

// NewWriter writes a CARv1 header with the given roots and returns a
// Writer for appending blocks.
func NewWriter(w io.Writer, roots ...cid.CID) (*Writer, error) {
	bw := bufio.NewWriter(w)
	hdr, err := cbor.Marshal(Header{Version: 1, Roots: roots})
	if err != nil {
		return nil, fmt.Errorf("car: encode header: %w", err)
	}
	cw := &Writer{w: bw}
	cw.writeUvarint(uint64(len(hdr)))
	cw.write(hdr)
	return cw, cw.err
}

// WriteBlock appends one block section.
func (w *Writer) WriteBlock(b Block) error {
	if w.err != nil {
		return w.err
	}
	if !b.CID.Defined() {
		return errors.New("car: block with undefined CID")
	}
	raw := b.CID.Bytes()
	w.writeUvarint(uint64(len(raw) + len(b.Data)))
	w.write(raw)
	w.write(b.Data)
	return w.err
}

// Flush flushes buffered output.
func (w *Writer) Flush() error {
	if w.err != nil {
		return w.err
	}
	return w.w.Flush()
}

func (w *Writer) write(p []byte) {
	if w.err == nil {
		_, w.err = w.w.Write(p)
	}
}

func (w *Writer) writeUvarint(v uint64) {
	var buf [10]byte
	n := 0
	for v >= 0x80 {
		buf[n] = byte(v) | 0x80
		v >>= 7
		n++
	}
	buf[n] = byte(v)
	w.write(buf[:n+1])
}

// Reader parses a CARv1 archive.
type Reader struct {
	r      *bufio.Reader
	header Header
}

// maxSectionSize bounds a single section to protect against hostile
// length prefixes.
const maxSectionSize = 64 << 20

// NewReader parses the header and prepares to iterate blocks.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	n, err := readUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("car: read header length: %w", err)
	}
	if n == 0 || n > maxSectionSize {
		return nil, fmt.Errorf("car: implausible header length %d", n)
	}
	raw := make([]byte, n)
	if _, err := io.ReadFull(br, raw); err != nil {
		return nil, fmt.Errorf("car: read header: %w", err)
	}
	var hdr Header
	if err := cbor.Unmarshal(raw, &hdr); err != nil {
		return nil, fmt.Errorf("car: decode header: %w", err)
	}
	if hdr.Version != 1 {
		return nil, fmt.Errorf("car: unsupported version %d", hdr.Version)
	}
	return &Reader{r: br, header: hdr}, nil
}

// Header returns the parsed archive header.
func (r *Reader) Header() Header { return r.header }

// Roots returns the archive's root CIDs.
func (r *Reader) Roots() []cid.CID { return r.header.Roots }

// Next returns the next block, or io.EOF at the end of the archive.
func (r *Reader) Next() (Block, error) {
	n, err := readUvarint(r.r)
	if err != nil {
		if errors.Is(err, io.EOF) {
			return Block{}, io.EOF
		}
		return Block{}, fmt.Errorf("car: read section length: %w", err)
	}
	if n == 0 || n > maxSectionSize {
		return Block{}, fmt.Errorf("car: implausible section length %d", n)
	}
	section := make([]byte, n)
	if _, err := io.ReadFull(r.r, section); err != nil {
		return Block{}, fmt.Errorf("car: read section: %w", err)
	}
	// The CID is self-delimiting: version varint, codec varint, then a
	// sha2-256 multihash (2 varints + 32 bytes).
	cidLen, err := cidLength(section)
	if err != nil {
		return Block{}, err
	}
	c, err := cid.Decode(section[:cidLen])
	if err != nil {
		return Block{}, fmt.Errorf("car: section CID: %w", err)
	}
	data := section[cidLen:]
	if !cid.Sum(c.Codec(), data).Equal(c) {
		return Block{}, fmt.Errorf("car: block digest mismatch for %s", c)
	}
	return Block{CID: c, Data: data}, nil
}

// ReadAll collects every block in the archive.
func (r *Reader) ReadAll() ([]Block, error) {
	var out []Block
	for {
		b, err := r.Next()
		if errors.Is(err, io.EOF) {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, b)
	}
}

func cidLength(section []byte) (int, error) {
	pos := 0
	for i := 0; i < 4; i++ { // version, codec, hash fn, hash len
		_, n, err := uvarintAt(section, pos)
		if err != nil {
			return 0, err
		}
		pos += n
	}
	// The final varint read was the digest length; re-read it.
	var digestLen uint64
	{
		p := 0
		for i := 0; i < 3; i++ {
			_, n, err := uvarintAt(section, p)
			if err != nil {
				return 0, err
			}
			p += n
		}
		v, _, err := uvarintAt(section, p)
		if err != nil {
			return 0, err
		}
		digestLen = v
	}
	end := pos + int(digestLen)
	if digestLen > 64 || end > len(section) {
		return 0, fmt.Errorf("car: implausible CID digest length %d", digestLen)
	}
	return end, nil
}

func uvarintAt(b []byte, pos int) (uint64, int, error) {
	var v uint64
	var shift uint
	for i := pos; i < len(b); i++ {
		c := b[i]
		if shift >= 63 && c > 1 {
			return 0, 0, errors.New("car: varint overflow")
		}
		v |= uint64(c&0x7f) << shift
		if c&0x80 == 0 {
			return v, i - pos + 1, nil
		}
		shift += 7
	}
	return 0, 0, errors.New("car: truncated varint")
}

func readUvarint(r *bufio.Reader) (uint64, error) {
	var v uint64
	var shift uint
	for i := 0; ; i++ {
		b, err := r.ReadByte()
		if err != nil {
			if i == 0 {
				return 0, err
			}
			return 0, io.ErrUnexpectedEOF
		}
		if shift >= 63 && b > 1 {
			return 0, errors.New("car: varint overflow")
		}
		v |= uint64(b&0x7f) << shift
		if b&0x80 == 0 {
			return v, nil
		}
		shift += 7
	}
}
