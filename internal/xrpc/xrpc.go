// Package xrpc implements the AT Protocol's HTTP API convention:
// queries (GET) and procedures (POST) addressed by NSID under /xrpc/,
// with JSON bodies and a structured {error, message} failure envelope.
//
// Both the services (PDS, Relay, AppView, PLC directory) and the
// measurement crawler in this repository speak XRPC through this
// package.
package xrpc

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"time"
)

// Error is the structured XRPC failure envelope.
type Error struct {
	Status  int    `json:"-"`
	Name    string `json:"error"`
	Message string `json:"message"`
}

// Error implements the error interface.
func (e *Error) Error() string {
	return fmt.Sprintf("xrpc %d %s: %s", e.Status, e.Name, e.Message)
}

// Standard error constructors.
func ErrInvalidRequest(format string, args ...any) *Error {
	return &Error{Status: http.StatusBadRequest, Name: "InvalidRequest", Message: fmt.Sprintf(format, args...)}
}

// ErrNotFound reports a missing entity.
func ErrNotFound(format string, args ...any) *Error {
	return &Error{Status: http.StatusNotFound, Name: "NotFound", Message: fmt.Sprintf(format, args...)}
}

// ErrInternal reports a server-side failure.
func ErrInternal(format string, args ...any) *Error {
	return &Error{Status: http.StatusInternalServerError, Name: "InternalError", Message: fmt.Sprintf(format, args...)}
}

// ErrNamed builds an error under a caller-chosen name. The name
// round-trips through the wire envelope (decode restores it), so
// protocols can define distinguishable conditions — a client matches
// on AsError(...).Name instead of parsing messages.
func ErrNamed(status int, name, format string, args ...any) *Error {
	return &Error{Status: status, Name: name, Message: fmt.Sprintf(format, args...)}
}

// AsError extracts an *Error from err, if present.
func AsError(err error) (*Error, bool) {
	var xe *Error
	ok := errors.As(err, &xe)
	return xe, ok
}

// Handler processes one XRPC call. params holds the query string;
// input is the request body (nil for queries). The returned value is
// JSON-encoded, unless it is a Raw, which is written verbatim.
type Handler func(ctx context.Context, params url.Values, input []byte) (any, error)

// Raw is a non-JSON response body (e.g. a CAR archive).
type Raw struct {
	ContentType string
	Data        []byte
}

// defaultMaxBody bounds procedure input bodies unless the Mux raises
// the limit.
const defaultMaxBody = 16 << 20

// Mux routes /xrpc/<nsid> requests to registered handlers.
type Mux struct {
	queries    map[string]Handler
	procedures map[string]Handler
	streams    map[string]http.HandlerFunc

	// MaxBodyBytes bounds procedure input bodies (0 = 16 MiB). Services
	// that accept bulk payloads — the partition-evaluation worker
	// receives whole block files — raise it explicitly.
	MaxBodyBytes int64
}

// NewMux creates an empty router.
func NewMux() *Mux {
	return &Mux{
		queries:    make(map[string]Handler),
		procedures: make(map[string]Handler),
		streams:    make(map[string]http.HandlerFunc),
	}
}

// Query registers a GET method.
func (m *Mux) Query(nsid string, h Handler) { m.queries[nsid] = h }

// Procedure registers a POST method.
func (m *Mux) Procedure(nsid string, h Handler) { m.procedures[nsid] = h }

// Stream registers a WebSocket subscription endpoint; the handler is
// responsible for upgrading the connection.
func (m *Mux) Stream(nsid string, h http.HandlerFunc) { m.streams[nsid] = h }

// ServeHTTP implements http.Handler.
func (m *Mux) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	nsid, ok := strings.CutPrefix(r.URL.Path, "/xrpc/")
	if !ok || nsid == "" {
		writeError(w, ErrNotFound("not an xrpc path: %s", r.URL.Path))
		return
	}
	if h, ok := m.streams[nsid]; ok {
		h(w, r)
		return
	}
	var h Handler
	switch r.Method {
	case http.MethodGet:
		h = m.queries[nsid]
	case http.MethodPost:
		h = m.procedures[nsid]
	default:
		writeError(w, &Error{Status: http.StatusMethodNotAllowed, Name: "InvalidRequest", Message: "unsupported method"})
		return
	}
	if h == nil {
		writeError(w, &Error{Status: http.StatusNotImplemented, Name: "MethodNotImplemented", Message: nsid})
		return
	}
	var input []byte
	if r.Method == http.MethodPost && r.Body != nil {
		maxBody := m.MaxBodyBytes
		if maxBody <= 0 {
			maxBody = defaultMaxBody
		}
		var err error
		// Read one byte past the limit so an oversized body errors
		// instead of being silently truncated mid-payload.
		input, err = io.ReadAll(io.LimitReader(r.Body, maxBody+1))
		if err != nil {
			writeError(w, ErrInvalidRequest("read body: %v", err))
			return
		}
		if int64(len(input)) > maxBody {
			writeError(w, ErrInvalidRequest("input body exceeds %d bytes", maxBody))
			return
		}
	}
	out, err := h(r.Context(), r.URL.Query(), input)
	if err != nil {
		if xe, ok := AsError(err); ok {
			writeError(w, xe)
		} else {
			writeError(w, ErrInternal("%v", err))
		}
		return
	}
	switch body := out.(type) {
	case nil:
		w.WriteHeader(http.StatusOK)
	case Raw:
		w.Header().Set("Content-Type", body.ContentType)
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(body.Data)
	default:
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		if err := enc.Encode(out); err != nil {
			// Headers already sent; nothing more to do.
			return
		}
	}
}

func writeError(w http.ResponseWriter, e *Error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(e.Status)
	_ = json.NewEncoder(w).Encode(e)
}

// Client calls XRPC methods on a remote service.
type Client struct {
	// BaseURL is the service root, e.g. "http://127.0.0.1:4000".
	BaseURL string
	// HTTPClient overrides the transport; http.DefaultClient if nil.
	HTTPClient *http.Client
}

// NewClient creates a client for the service at baseURL.
func NewClient(baseURL string) *Client {
	return &Client{BaseURL: baseURL, HTTPClient: &http.Client{Timeout: 30 * time.Second}}
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

func (c *Client) endpoint(nsid string, params url.Values) string {
	u := strings.TrimSuffix(c.BaseURL, "/") + "/xrpc/" + nsid
	if len(params) > 0 {
		u += "?" + params.Encode()
	}
	return u
}

// Query performs a GET call and decodes the JSON response into out
// (out may be nil to discard).
func (c *Client) Query(ctx context.Context, nsid string, params url.Values, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.endpoint(nsid, params), nil)
	if err != nil {
		return err
	}
	return c.do(req, out)
}

// QueryBytes performs a GET call and returns the raw response body,
// for non-JSON results such as CAR archives.
func (c *Client) QueryBytes(ctx context.Context, nsid string, params url.Values) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.endpoint(nsid, params), nil)
	if err != nil {
		return nil, err
	}
	return c.doRaw(req)
}

// Procedure performs a POST call with a JSON input body.
func (c *Client) Procedure(ctx context.Context, nsid string, params url.Values, input, out any) error {
	var body io.Reader
	if input != nil {
		raw, err := json.Marshal(input)
		if err != nil {
			return fmt.Errorf("xrpc: encode input: %w", err)
		}
		body = bytes.NewReader(raw)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.endpoint(nsid, params), body)
	if err != nil {
		return err
	}
	if input != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	return c.do(req, out)
}

// ProcedureRaw performs a POST call with a non-JSON input body (e.g.
// DAG-CBOR) and returns the raw response body. Error envelopes still
// decode as structured *Error values.
func (c *Client) ProcedureRaw(ctx context.Context, nsid string, params url.Values, contentType string, input []byte) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.endpoint(nsid, params), bytes.NewReader(input))
	if err != nil {
		return nil, err
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	return c.doRaw(req)
}

// maxResponseBytes caps any response body read by the client.
const maxResponseBytes = 256 << 20

// doRaw executes a request and returns the raw response body, decoding
// error envelopes on non-200 statuses.
func (c *Client) doRaw(req *http.Request) ([]byte, error) {
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxResponseBytes))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, decodeError(resp.StatusCode, body)
	}
	return body, nil
}

func (c *Client) do(req *http.Request, out any) error {
	body, err := c.doRaw(req)
	if err != nil {
		return err
	}
	if out == nil {
		return nil
	}
	if err := json.Unmarshal(body, out); err != nil {
		return fmt.Errorf("xrpc: decode response: %w", err)
	}
	return nil
}

func decodeError(status int, body []byte) error {
	var e Error
	if err := json.Unmarshal(body, &e); err == nil && e.Name != "" {
		e.Status = status
		return &e
	}
	return &Error{Status: status, Name: "HTTPError", Message: strings.TrimSpace(string(body))}
}
