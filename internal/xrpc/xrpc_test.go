package xrpc

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"net/url"
	"testing"
)

func testServer(t *testing.T) (*Mux, *Client) {
	t.Helper()
	mux := NewMux()
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return mux, NewClient(srv.URL)
}

func TestQueryRoundTrip(t *testing.T) {
	mux, client := testServer(t)
	mux.Query("com.example.echo", func(_ context.Context, params url.Values, _ []byte) (any, error) {
		return map[string]string{"echo": params.Get("value")}, nil
	})
	var out struct{ Echo string }
	if err := client.Query(context.Background(), "com.example.echo", url.Values{"value": {"hi"}}, &out); err != nil {
		t.Fatal(err)
	}
	if out.Echo != "hi" {
		t.Fatalf("echo = %q", out.Echo)
	}
}

func TestProcedureRoundTrip(t *testing.T) {
	mux, client := testServer(t)
	type in struct {
		A, B int
	}
	mux.Procedure("com.example.add", func(_ context.Context, _ url.Values, input []byte) (any, error) {
		var req in
		if err := jsonUnmarshal(input, &req); err != nil {
			return nil, ErrInvalidRequest("bad input")
		}
		return map[string]int{"sum": req.A + req.B}, nil
	})
	var out struct{ Sum int }
	if err := client.Procedure(context.Background(), "com.example.add", nil, in{A: 2, B: 3}, &out); err != nil {
		t.Fatal(err)
	}
	if out.Sum != 5 {
		t.Fatalf("sum = %d", out.Sum)
	}
}

func jsonUnmarshal(data []byte, v any) error {
	if len(data) == 0 {
		return errors.New("empty")
	}
	return json.Unmarshal(data, v)
}

func TestStructuredErrors(t *testing.T) {
	mux, client := testServer(t)
	mux.Query("com.example.missing", func(_ context.Context, _ url.Values, _ []byte) (any, error) {
		return nil, ErrNotFound("no such repo")
	})
	err := client.Query(context.Background(), "com.example.missing", nil, nil)
	xe, ok := AsError(err)
	if !ok {
		t.Fatalf("error not structured: %v", err)
	}
	if xe.Status != http.StatusNotFound || xe.Name != "NotFound" {
		t.Fatalf("error = %+v", xe)
	}
}

func TestInternalErrorWrapping(t *testing.T) {
	mux, client := testServer(t)
	mux.Query("com.example.boom", func(_ context.Context, _ url.Values, _ []byte) (any, error) {
		return nil, errors.New("disk on fire")
	})
	err := client.Query(context.Background(), "com.example.boom", nil, nil)
	xe, ok := AsError(err)
	if !ok || xe.Name != "InternalError" {
		t.Fatalf("error = %v", err)
	}
}

func TestMethodNotImplemented(t *testing.T) {
	_, client := testServer(t)
	err := client.Query(context.Background(), "com.example.nope", nil, nil)
	xe, ok := AsError(err)
	if !ok || xe.Status != http.StatusNotImplemented {
		t.Fatalf("error = %v", err)
	}
}

func TestQueryVsProcedureMethodSeparation(t *testing.T) {
	mux, client := testServer(t)
	mux.Procedure("com.example.write", func(_ context.Context, _ url.Values, _ []byte) (any, error) {
		return nil, nil
	})
	// GET on a procedure-only NSID must not dispatch.
	if err := client.Query(context.Background(), "com.example.write", nil, nil); err == nil {
		t.Fatal("expected MethodNotImplemented")
	}
	if err := client.Procedure(context.Background(), "com.example.write", nil, nil, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRawResponse(t *testing.T) {
	mux, client := testServer(t)
	payload := []byte{0x01, 0x02, 0x03, 0xff}
	mux.Query("com.example.car", func(_ context.Context, _ url.Values, _ []byte) (any, error) {
		return Raw{ContentType: "application/vnd.ipld.car", Data: payload}, nil
	})
	got, err := client.QueryBytes(context.Background(), "com.example.car", nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(payload) {
		t.Fatalf("raw payload mismatch: %v", got)
	}
}

func TestNonXRPCPath(t *testing.T) {
	mux := NewMux()
	srv := httptest.NewServer(mux)
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/other")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d", resp.StatusCode)
	}
}

func TestQueryBytesErrorDecoding(t *testing.T) {
	mux, client := testServer(t)
	mux.Query("com.example.err", func(_ context.Context, _ url.Values, _ []byte) (any, error) {
		return nil, ErrInvalidRequest("bad cursor")
	})
	_, err := client.QueryBytes(context.Background(), "com.example.err", nil)
	xe, ok := AsError(err)
	if !ok || xe.Name != "InvalidRequest" {
		t.Fatalf("error = %v", err)
	}
}
