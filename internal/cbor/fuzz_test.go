package cbor

import (
	"testing"
	"testing/quick"
)

// TestDecodeArbitraryBytesNeverPanics feeds random byte strings to the
// decoder: hostile network input must produce errors, never panics or
// runaway allocations.
func TestDecodeArbitraryBytesNeverPanics(t *testing.T) {
	f := func(data []byte) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("Decode(%x) panicked: %v", data, r)
			}
		}()
		_, _ = Decode(data)
		_, _, _ = DecodePrefix(data)
		var target map[string]any
		_ = Unmarshal(data, &target)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestDecodeHostileLengths verifies that absurd declared lengths fail
// fast instead of allocating.
func TestDecodeHostileLengths(t *testing.T) {
	hostile := [][]byte{
		{0x5b, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff}, // bytes(2^64-1)
		{0x9b, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff}, // array(2^64-1)
		{0xbb, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff}, // map(2^64-1)
	}
	for _, data := range hostile {
		if _, err := Decode(data); err == nil {
			t.Fatalf("hostile input %x accepted", data)
		}
	}
}
