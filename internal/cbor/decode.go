package cbor

import (
	"errors"
	"fmt"
	"math"
	"reflect"
	"unicode/utf8"

	"blueskies/internal/cid"
)

type decoder struct {
	data []byte
	pos  int
}

var errTruncated = errors.New("cbor: truncated input")

func (d *decoder) readByte() (byte, error) {
	if d.pos >= len(d.data) {
		return 0, errTruncated
	}
	b := d.data[d.pos]
	d.pos++
	return b, nil
}

func (d *decoder) readN(n uint64) ([]byte, error) {
	if n > uint64(len(d.data)-d.pos) {
		return nil, errTruncated
	}
	b := d.data[d.pos : d.pos+int(n)]
	d.pos += int(n)
	return b, nil
}

// readHead returns the major type, the additional-info nibble, and the
// decoded argument of the next item head. For major type 7 with
// info 27 the argument holds the raw float64 bits.
func (d *decoder) readHead() (major, info byte, arg uint64, err error) {
	ib, err := d.readByte()
	if err != nil {
		return 0, 0, 0, err
	}
	major = ib >> 5
	info = ib & 0x1f
	switch {
	case info < 24:
		return major, info, uint64(info), nil
	case info == 24:
		b, err := d.readByte()
		if err != nil {
			return 0, 0, 0, err
		}
		if major != majorSimple && b < 24 {
			return 0, 0, 0, errors.New("cbor: non-minimal integer encoding")
		}
		return major, info, uint64(b), nil
	case info == 25:
		b, err := d.readN(2)
		if err != nil {
			return 0, 0, 0, err
		}
		v := uint64(b[0])<<8 | uint64(b[1])
		if major != majorSimple && v <= math.MaxUint8 {
			return 0, 0, 0, errors.New("cbor: non-minimal integer encoding")
		}
		return major, info, v, nil
	case info == 26:
		b, err := d.readN(4)
		if err != nil {
			return 0, 0, 0, err
		}
		v := uint64(b[0])<<24 | uint64(b[1])<<16 | uint64(b[2])<<8 | uint64(b[3])
		if major != majorSimple && v <= math.MaxUint16 {
			return 0, 0, 0, errors.New("cbor: non-minimal integer encoding")
		}
		return major, info, v, nil
	case info == 27:
		b, err := d.readN(8)
		if err != nil {
			return 0, 0, 0, err
		}
		v := uint64(b[0])<<56 | uint64(b[1])<<48 | uint64(b[2])<<40 | uint64(b[3])<<32 |
			uint64(b[4])<<24 | uint64(b[5])<<16 | uint64(b[6])<<8 | uint64(b[7])
		if major != majorSimple && v <= math.MaxUint32 {
			return 0, 0, 0, errors.New("cbor: non-minimal integer encoding")
		}
		return major, info, v, nil
	default:
		return 0, 0, 0, fmt.Errorf("cbor: indefinite or reserved additional info %d", info)
	}
}

func (d *decoder) decodeValue() (any, error) {
	major, info, arg, err := d.readHead()
	if err != nil {
		return nil, err
	}
	switch major {
	case majorUint:
		if arg > math.MaxInt64 {
			return nil, fmt.Errorf("cbor: uint %d overflows int64", arg)
		}
		return int64(arg), nil
	case majorNegInt:
		if arg > math.MaxInt64 {
			return nil, fmt.Errorf("cbor: negative int overflows int64")
		}
		return -1 - int64(arg), nil
	case majorBytes:
		b, err := d.readN(arg)
		if err != nil {
			return nil, err
		}
		out := make([]byte, len(b))
		copy(out, b)
		return out, nil
	case majorText:
		b, err := d.readN(arg)
		if err != nil {
			return nil, err
		}
		if !utf8.Valid(b) {
			return nil, errors.New("cbor: invalid UTF-8 in text string")
		}
		return string(b), nil
	case majorArray:
		if arg > uint64(len(d.data)) {
			return nil, errTruncated
		}
		arr := make([]any, 0, arg)
		for i := uint64(0); i < arg; i++ {
			v, err := d.decodeValue()
			if err != nil {
				return nil, err
			}
			arr = append(arr, v)
		}
		return arr, nil
	case majorMap:
		if arg > uint64(len(d.data)) {
			return nil, errTruncated
		}
		m := make(map[string]any, arg)
		prevKey := ""
		for i := uint64(0); i < arg; i++ {
			kmaj, _, karg, err := d.readHead()
			if err != nil {
				return nil, err
			}
			if kmaj != majorText {
				return nil, errors.New("cbor: map key must be a text string")
			}
			kb, err := d.readN(karg)
			if err != nil {
				return nil, err
			}
			key := string(kb)
			if i > 0 && !canonicalLess(prevKey, key) {
				return nil, fmt.Errorf("cbor: map keys not in canonical order (%q after %q)", key, prevKey)
			}
			prevKey = key
			v, err := d.decodeValue()
			if err != nil {
				return nil, err
			}
			m[key] = v
		}
		return m, nil
	case majorTag:
		if arg != cidLinkTag {
			return nil, fmt.Errorf("cbor: unsupported tag %d", arg)
		}
		inner, err := d.decodeValue()
		if err != nil {
			return nil, err
		}
		raw, ok := inner.([]byte)
		if !ok || len(raw) == 0 || raw[0] != 0x00 {
			return nil, errors.New("cbor: tag 42 must wrap identity-multibase CID bytes")
		}
		c, err := cid.Decode(raw[1:])
		if err != nil {
			return nil, fmt.Errorf("cbor: bad CID link: %w", err)
		}
		return c, nil
	case majorSimple:
		if info == simpleFloat64 {
			// readHead consumed the 8 payload bytes; arg holds the bits.
			return math.Float64frombits(arg), nil
		}
		switch arg {
		case simpleFalse:
			return false, nil
		case simpleTrue:
			return true, nil
		case simpleNull:
			return nil, nil
		default:
			return nil, fmt.Errorf("cbor: unsupported simple value %d (info %d)", arg, info)
		}
	}
	return nil, fmt.Errorf("cbor: unhandled major type %d", major)
}

func canonicalLess(a, b string) bool {
	if len(a) != len(b) {
		return len(a) < len(b)
	}
	return a < b
}

func (d *decoder) decodeInto(v any) error {
	rv := reflect.ValueOf(v)
	if rv.Kind() != reflect.Pointer || rv.IsNil() {
		return errors.New("cbor: Unmarshal target must be a non-nil pointer")
	}
	val, err := d.decodeValue()
	if err != nil {
		return err
	}
	return assign(rv.Elem(), val)
}

// assign stores the generic decoded value val into the typed
// destination dst, converting shapes recursively.
func assign(dst reflect.Value, val any) error {
	if val == nil {
		dst.SetZero()
		return nil
	}
	if dst.Kind() == reflect.Pointer {
		if dst.IsNil() {
			dst.Set(reflect.New(dst.Type().Elem()))
		}
		return assign(dst.Elem(), val)
	}
	if dst.Kind() == reflect.Interface && dst.NumMethod() == 0 {
		dst.Set(reflect.ValueOf(val))
		return nil
	}
	if c, ok := val.(cid.CID); ok {
		if dst.Type() == reflect.TypeOf(cid.CID{}) {
			dst.Set(reflect.ValueOf(c))
			return nil
		}
		return fmt.Errorf("cbor: cannot assign CID link to %s", dst.Type())
	}
	switch x := val.(type) {
	case int64:
		switch dst.Kind() {
		case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
			if dst.OverflowInt(x) {
				return fmt.Errorf("cbor: %d overflows %s", x, dst.Type())
			}
			dst.SetInt(x)
			return nil
		case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
			if x < 0 || dst.OverflowUint(uint64(x)) {
				return fmt.Errorf("cbor: %d overflows %s", x, dst.Type())
			}
			dst.SetUint(uint64(x))
			return nil
		case reflect.Float32, reflect.Float64:
			dst.SetFloat(float64(x))
			return nil
		}
	case float64:
		if dst.Kind() == reflect.Float32 || dst.Kind() == reflect.Float64 {
			dst.SetFloat(x)
			return nil
		}
	case bool:
		if dst.Kind() == reflect.Bool {
			dst.SetBool(x)
			return nil
		}
	case string:
		if dst.Kind() == reflect.String {
			dst.SetString(x)
			return nil
		}
	case []byte:
		if dst.Kind() == reflect.Slice && dst.Type().Elem().Kind() == reflect.Uint8 {
			dst.SetBytes(x)
			return nil
		}
	case []any:
		if dst.Kind() == reflect.Slice {
			out := reflect.MakeSlice(dst.Type(), len(x), len(x))
			for i, item := range x {
				if err := assign(out.Index(i), item); err != nil {
					return err
				}
			}
			dst.Set(out)
			return nil
		}
	case map[string]any:
		switch dst.Kind() {
		case reflect.Map:
			if dst.Type().Key().Kind() != reflect.String {
				return fmt.Errorf("cbor: cannot assign map to %s", dst.Type())
			}
			out := reflect.MakeMapWithSize(dst.Type(), len(x))
			for k, item := range x {
				ev := reflect.New(dst.Type().Elem()).Elem()
				if err := assign(ev, item); err != nil {
					return err
				}
				out.SetMapIndex(reflect.ValueOf(k).Convert(dst.Type().Key()), ev)
			}
			dst.Set(out)
			return nil
		case reflect.Struct:
			for _, f := range structFields(dst.Type()) {
				item, ok := x[f.name]
				if !ok {
					continue
				}
				if err := assign(dst.Field(f.index), item); err != nil {
					return fmt.Errorf("cbor: field %q: %w", f.name, err)
				}
			}
			return nil
		}
	}
	return fmt.Errorf("cbor: cannot assign %T to %s", val, dst.Type())
}
