// Package cbor implements the deterministic DAG-CBOR encoding used by
// the AT Protocol for records, repository nodes, and stream frames.
//
// The profile implemented here follows the IPLD DAG-CBOR specification:
//
//   - map keys must be strings and are serialized in canonical order
//     (shortest first, then bytewise lexicographic);
//   - integers use the shortest possible encoding;
//   - floats are always encoded as 64-bit;
//   - indefinite-length items are forbidden;
//   - CID links are encoded as tag 42 wrapping the identity-multibase
//     binary CID (a 0x00 prefix byte followed by the CID bytes);
//   - no other tags are permitted.
//
// Marshal accepts Go maps, slices, strings, byte slices, booleans,
// integers, floats, cid.CID values, and structs. Struct fields use the
// `cbor:"name"` tag (with an optional ",omitempty" flag) and fall back
// to the JSON-style lowercase of the field name when untagged.
package cbor

import (
	"fmt"
)

// Marshal encodes v as deterministic DAG-CBOR.
func Marshal(v any) ([]byte, error) {
	e := &encoder{}
	if err := e.encode(v); err != nil {
		return nil, err
	}
	return e.buf, nil
}

// MustMarshal is Marshal but panics on error; intended for values whose
// encodability is a program invariant (e.g. fixed record structs).
func MustMarshal(v any) []byte {
	b, err := Marshal(v)
	if err != nil {
		panic(fmt.Sprintf("cbor: MustMarshal: %v", err))
	}
	return b
}

// Unmarshal decodes DAG-CBOR data into the value pointed to by v.
// v may be a *any (producing map[string]any / []any / primitive trees)
// or a pointer to a concrete Go type mirroring the document shape.
func Unmarshal(data []byte, v any) error {
	d := &decoder{data: data}
	if err := d.decodeInto(v); err != nil {
		return err
	}
	if d.pos != len(d.data) {
		return fmt.Errorf("cbor: %d trailing bytes", len(d.data)-d.pos)
	}
	return nil
}

// Decode decodes DAG-CBOR data into a generic value tree:
// map[string]any, []any, string, []byte, int64, float64, bool,
// cid.CID, or nil.
func Decode(data []byte) (any, error) {
	d := &decoder{data: data}
	v, err := d.decodeValue()
	if err != nil {
		return nil, err
	}
	if d.pos != len(d.data) {
		return nil, fmt.Errorf("cbor: %d trailing bytes", len(d.data)-d.pos)
	}
	return v, nil
}

// DecodePrefix decodes one DAG-CBOR item from the front of data and
// returns it along with the number of bytes consumed. Used by stream
// framing where two items are concatenated (header then body).
func DecodePrefix(data []byte) (any, int, error) {
	d := &decoder{data: data}
	v, err := d.decodeValue()
	if err != nil {
		return nil, 0, err
	}
	return v, d.pos, nil
}
