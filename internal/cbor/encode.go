package cbor

import (
	"bytes"
	"fmt"
	"math"
	"reflect"
	"sort"
	"strings"

	"blueskies/internal/cid"
)

// Major types of RFC 8949.
const (
	majorUint   = 0
	majorNegInt = 1
	majorBytes  = 2
	majorText   = 3
	majorArray  = 4
	majorMap    = 5
	majorTag    = 6
	majorSimple = 7
)

// Simple values within major type 7.
const (
	simpleFalse   = 20
	simpleTrue    = 21
	simpleNull    = 22
	simpleFloat64 = 27
)

// cidLinkTag is the IPLD tag for CID links.
const cidLinkTag = 42

type encoder struct {
	buf []byte
}

func (e *encoder) head(major byte, n uint64) {
	switch {
	case n < 24:
		e.buf = append(e.buf, major<<5|byte(n))
	case n <= math.MaxUint8:
		e.buf = append(e.buf, major<<5|24, byte(n))
	case n <= math.MaxUint16:
		e.buf = append(e.buf, major<<5|25, byte(n>>8), byte(n))
	case n <= math.MaxUint32:
		e.buf = append(e.buf, major<<5|26, byte(n>>24), byte(n>>16), byte(n>>8), byte(n))
	default:
		e.buf = append(e.buf, major<<5|27,
			byte(n>>56), byte(n>>48), byte(n>>40), byte(n>>32),
			byte(n>>24), byte(n>>16), byte(n>>8), byte(n))
	}
}

func (e *encoder) encodeInt(i int64) {
	if i >= 0 {
		e.head(majorUint, uint64(i))
	} else {
		e.head(majorNegInt, uint64(-1-i))
	}
}

func (e *encoder) encodeFloat(f float64) {
	bits := math.Float64bits(f)
	e.buf = append(e.buf, majorSimple<<5|simpleFloat64,
		byte(bits>>56), byte(bits>>48), byte(bits>>40), byte(bits>>32),
		byte(bits>>24), byte(bits>>16), byte(bits>>8), byte(bits))
}

func (e *encoder) encodeCID(c cid.CID) error {
	if !c.Defined() {
		return fmt.Errorf("cbor: cannot encode undefined CID")
	}
	e.head(majorTag, cidLinkTag)
	raw := c.Bytes()
	e.head(majorBytes, uint64(len(raw)+1))
	e.buf = append(e.buf, 0x00) // identity multibase prefix
	e.buf = append(e.buf, raw...)
	return nil
}

func (e *encoder) encode(v any) error {
	switch x := v.(type) {
	case nil:
		e.buf = append(e.buf, majorSimple<<5|simpleNull)
		return nil
	case bool:
		if x {
			e.buf = append(e.buf, majorSimple<<5|simpleTrue)
		} else {
			e.buf = append(e.buf, majorSimple<<5|simpleFalse)
		}
		return nil
	case int:
		e.encodeInt(int64(x))
		return nil
	case int32:
		e.encodeInt(int64(x))
		return nil
	case int64:
		e.encodeInt(x)
		return nil
	case uint64:
		e.head(majorUint, x)
		return nil
	case float64:
		e.encodeFloat(x)
		return nil
	case string:
		e.head(majorText, uint64(len(x)))
		e.buf = append(e.buf, x...)
		return nil
	case []byte:
		e.head(majorBytes, uint64(len(x)))
		e.buf = append(e.buf, x...)
		return nil
	case cid.CID:
		return e.encodeCID(x)
	case *cid.CID:
		if x == nil {
			e.buf = append(e.buf, majorSimple<<5|simpleNull)
			return nil
		}
		return e.encodeCID(*x)
	case map[string]any:
		return e.encodeStringMap(x)
	case []any:
		e.head(majorArray, uint64(len(x)))
		for _, item := range x {
			if err := e.encode(item); err != nil {
				return err
			}
		}
		return nil
	}
	return e.encodeReflect(reflect.ValueOf(v))
}

func (e *encoder) encodeStringMap(m map[string]any) error {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sortCanonical(keys)
	e.head(majorMap, uint64(len(keys)))
	for _, k := range keys {
		e.head(majorText, uint64(len(k)))
		e.buf = append(e.buf, k...)
		if err := e.encode(m[k]); err != nil {
			return err
		}
	}
	return nil
}

// sortCanonical orders map keys per DAG-CBOR: shorter keys first,
// equal-length keys bytewise lexicographic.
func sortCanonical(keys []string) {
	sort.Slice(keys, func(i, j int) bool {
		if len(keys[i]) != len(keys[j]) {
			return len(keys[i]) < len(keys[j])
		}
		return keys[i] < keys[j]
	})
}

func (e *encoder) encodeReflect(rv reflect.Value) error {
	switch rv.Kind() {
	case reflect.Pointer, reflect.Interface:
		if rv.IsNil() {
			e.buf = append(e.buf, majorSimple<<5|simpleNull)
			return nil
		}
		return e.encode(rv.Elem().Interface())
	case reflect.Bool:
		return e.encode(rv.Bool())
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		e.encodeInt(rv.Int())
		return nil
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		e.head(majorUint, rv.Uint())
		return nil
	case reflect.Float32, reflect.Float64:
		e.encodeFloat(rv.Float())
		return nil
	case reflect.String:
		return e.encode(rv.String())
	case reflect.Slice, reflect.Array:
		if rv.Type().Elem().Kind() == reflect.Uint8 {
			return e.encode(rv.Convert(reflect.TypeOf([]byte(nil))).Interface())
		}
		e.head(majorArray, uint64(rv.Len()))
		for i := 0; i < rv.Len(); i++ {
			if err := e.encode(rv.Index(i).Interface()); err != nil {
				return err
			}
		}
		return nil
	case reflect.Map:
		if rv.Type().Key().Kind() != reflect.String {
			return fmt.Errorf("cbor: map keys must be strings, got %s", rv.Type().Key())
		}
		m := make(map[string]any, rv.Len())
		iter := rv.MapRange()
		for iter.Next() {
			m[iter.Key().String()] = iter.Value().Interface()
		}
		return e.encodeStringMap(m)
	case reflect.Struct:
		return e.encodeStruct(rv)
	}
	return fmt.Errorf("cbor: unsupported type %s", rv.Type())
}

type fieldInfo struct {
	name      string
	index     int
	omitEmpty bool
}

func structFields(t reflect.Type) []fieldInfo {
	fields := make([]fieldInfo, 0, t.NumField())
	for i := 0; i < t.NumField(); i++ {
		f := t.Field(i)
		if !f.IsExported() {
			continue
		}
		name := strings.ToLower(f.Name[:1]) + f.Name[1:]
		omitEmpty := false
		if tag, ok := f.Tag.Lookup("cbor"); ok {
			parts := strings.Split(tag, ",")
			if parts[0] == "-" {
				continue
			}
			if parts[0] != "" {
				name = parts[0]
			}
			for _, opt := range parts[1:] {
				if opt == "omitempty" {
					omitEmpty = true
				}
			}
		}
		fields = append(fields, fieldInfo{name: name, index: i, omitEmpty: omitEmpty})
	}
	return fields
}

func isEmptyValue(rv reflect.Value) bool {
	switch rv.Kind() {
	case reflect.Slice, reflect.Map, reflect.String:
		return rv.Len() == 0
	case reflect.Pointer, reflect.Interface:
		return rv.IsNil()
	case reflect.Bool:
		return !rv.Bool()
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		return rv.Int() == 0
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		return rv.Uint() == 0
	case reflect.Float32, reflect.Float64:
		return rv.Float() == 0
	case reflect.Struct:
		if c, ok := rv.Interface().(cid.CID); ok {
			return !c.Defined()
		}
	}
	return false
}

func (e *encoder) encodeStruct(rv reflect.Value) error {
	if c, ok := rv.Interface().(cid.CID); ok {
		return e.encodeCID(c)
	}
	m := make(map[string]any)
	for _, f := range structFields(rv.Type()) {
		fv := rv.Field(f.index)
		if f.omitEmpty && isEmptyValue(fv) {
			continue
		}
		m[f.name] = fv.Interface()
	}
	return e.encodeStringMap(m)
}

// CanonicalEqual reports whether two encodings are identical; useful in
// tests asserting determinism.
func CanonicalEqual(a, b []byte) bool { return bytes.Equal(a, b) }
