package cbor

import (
	"bytes"
	"math"
	"reflect"
	"testing"
	"testing/quick"

	"blueskies/internal/cid"
)

func roundTrip(t *testing.T, v any) any {
	t.Helper()
	data, err := Marshal(v)
	if err != nil {
		t.Fatalf("Marshal(%v): %v", v, err)
	}
	out, err := Decode(data)
	if err != nil {
		t.Fatalf("Decode(%x): %v", data, err)
	}
	return out
}

func TestPrimitivesRoundTrip(t *testing.T) {
	cases := []struct {
		in   any
		want any
	}{
		{nil, nil},
		{true, true},
		{false, false},
		{0, int64(0)},
		{23, int64(23)},
		{24, int64(24)},
		{255, int64(255)},
		{256, int64(256)},
		{65535, int64(65535)},
		{65536, int64(65536)},
		{int64(1) << 40, int64(1) << 40},
		{-1, int64(-1)},
		{-25, int64(-25)},
		{-1 << 40, int64(-1 << 40)},
		{"", ""},
		{"hello", "hello"},
		{"日本語", "日本語"},
		{3.5, 3.5},
		{-0.0, -0.0},
		{[]byte{1, 2, 3}, []byte{1, 2, 3}},
	}
	for _, tc := range cases {
		got := roundTrip(t, tc.in)
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("round trip %v: got %v (%T), want %v (%T)", tc.in, got, got, tc.want, tc.want)
		}
	}
}

func TestIntegerMinimalEncoding(t *testing.T) {
	// 23 must encode in 1 byte, 24 in 2, 256 in 3, 65536 in 5.
	for _, tc := range []struct {
		v    int
		size int
	}{{23, 1}, {24, 2}, {255, 2}, {256, 3}, {65535, 3}, {65536, 5}} {
		data, err := Marshal(tc.v)
		if err != nil {
			t.Fatal(err)
		}
		if len(data) != tc.size {
			t.Errorf("Marshal(%d) = %d bytes, want %d", tc.v, len(data), tc.size)
		}
	}
}

func TestRejectNonMinimalInteger(t *testing.T) {
	// 0x18 0x05 encodes 5 with a needless extra byte.
	if _, err := Decode([]byte{0x18, 0x05}); err == nil {
		t.Fatal("expected error for non-minimal integer")
	}
}

func TestMapCanonicalOrder(t *testing.T) {
	m := map[string]any{"bb": 1, "a": 2, "ab": 3, "c": 4}
	data, err := Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	// Keys must appear length-first then lexicographic: a, c, ab, bb.
	wantOrder := []string{"a", "c", "ab", "bb"}
	var idx []int
	for _, k := range wantOrder {
		idx = append(idx, bytes.Index(data, []byte(k)))
	}
	for i := 1; i < len(idx); i++ {
		if idx[i-1] >= idx[i] {
			t.Fatalf("keys not in canonical order: positions %v for %v", idx, wantOrder)
		}
	}
	// Decoding must accept the canonical document.
	if _, err := Decode(data); err != nil {
		t.Fatalf("Decode canonical map: %v", err)
	}
}

func TestRejectNonCanonicalMapOrder(t *testing.T) {
	// {"b":1, "a":2} with keys out of order.
	data := []byte{
		0xa2, // map(2)
		0x61, 'b', 0x01,
		0x61, 'a', 0x02,
	}
	if _, err := Decode(data); err == nil {
		t.Fatal("expected error for non-canonical key order")
	}
}

func TestDeterminism(t *testing.T) {
	m := map[string]any{"x": []any{int64(1), "two", 3.0}, "y": map[string]any{"nested": true}}
	a := MustMarshal(m)
	b := MustMarshal(m)
	if !CanonicalEqual(a, b) {
		t.Fatal("same value produced different encodings")
	}
}

func TestCIDLink(t *testing.T) {
	c := cid.SumCBOR([]byte("block"))
	data, err := Marshal(map[string]any{"link": c})
	if err != nil {
		t.Fatal(err)
	}
	out, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	m := out.(map[string]any)
	got, ok := m["link"].(cid.CID)
	if !ok {
		t.Fatalf("link decoded as %T, want cid.CID", m["link"])
	}
	if !got.Equal(c) {
		t.Fatalf("CID mismatch: %s vs %s", got, c)
	}
}

func TestUndefinedCIDRejected(t *testing.T) {
	if _, err := Marshal(map[string]any{"link": cid.CID{}}); err == nil {
		t.Fatal("expected error encoding undefined CID")
	}
}

type post struct {
	Type      string   `cbor:"$type"`
	Text      string   `cbor:"text"`
	Langs     []string `cbor:"langs,omitempty"`
	CreatedAt string   `cbor:"createdAt"`
	Reply     *reply   `cbor:"reply,omitempty"`
	Root      cid.CID  `cbor:"root,omitempty"`
}

type reply struct {
	Parent string `cbor:"parent"`
}

func TestStructRoundTrip(t *testing.T) {
	in := post{
		Type:      "app.bsky.feed.post",
		Text:      "hello bluesky",
		Langs:     []string{"en"},
		CreatedAt: "2024-04-01T12:00:00Z",
		Reply:     &reply{Parent: "at://did:plc:abc/app.bsky.feed.post/xyz"},
		Root:      cid.SumCBOR([]byte("root")),
	}
	data, err := Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out post
	if err := Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("struct round trip mismatch:\n in: %+v\nout: %+v", in, out)
	}
}

func TestStructOmitEmpty(t *testing.T) {
	in := post{Type: "app.bsky.feed.post", Text: "t", CreatedAt: "now"}
	data, err := Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	m := out.(map[string]any)
	for _, absent := range []string{"langs", "reply", "root"} {
		if _, ok := m[absent]; ok {
			t.Errorf("empty field %q must be omitted", absent)
		}
	}
}

func TestUnmarshalIntoMap(t *testing.T) {
	data := MustMarshal(map[string]any{"a": 1, "b": 2})
	var m map[string]int64
	if err := Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	if m["a"] != 1 || m["b"] != 2 {
		t.Fatalf("got %v", m)
	}
}

func TestTrailingBytesRejected(t *testing.T) {
	data := append(MustMarshal("x"), 0x00)
	if _, err := Decode(data); err == nil {
		t.Fatal("expected trailing-bytes error")
	}
	var s string
	if err := Unmarshal(data, &s); err == nil {
		t.Fatal("expected trailing-bytes error from Unmarshal")
	}
}

func TestDecodePrefix(t *testing.T) {
	head := MustMarshal(map[string]any{"op": 1, "t": "#commit"})
	body := MustMarshal(map[string]any{"seq": 42})
	frame := append(append([]byte{}, head...), body...)
	v1, n, err := DecodePrefix(frame)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(head) {
		t.Fatalf("prefix consumed %d bytes, want %d", n, len(head))
	}
	v2, err := Decode(frame[n:])
	if err != nil {
		t.Fatal(err)
	}
	if v1.(map[string]any)["t"] != "#commit" || v2.(map[string]any)["seq"] != int64(42) {
		t.Fatalf("frame decode mismatch: %v %v", v1, v2)
	}
}

func TestTruncatedInputs(t *testing.T) {
	full := MustMarshal(map[string]any{"key": []any{"value", int64(7)}})
	for i := 1; i < len(full); i++ {
		if _, err := Decode(full[:i]); err == nil {
			t.Fatalf("Decode of %d/%d byte prefix succeeded", i, len(full))
		}
	}
}

func TestInvalidUTF8Rejected(t *testing.T) {
	data := []byte{0x62, 0xff, 0xfe} // text(2) with invalid UTF-8
	if _, err := Decode(data); err == nil {
		t.Fatal("expected invalid UTF-8 error")
	}
}

func TestUnsupportedTagRejected(t *testing.T) {
	data := []byte{0xc1, 0x00} // tag(1) 0
	if _, err := Decode(data); err == nil {
		t.Fatal("expected unsupported tag error")
	}
}

func TestQuickStringRoundTrip(t *testing.T) {
	f := func(s string) bool {
		data, err := Marshal(s)
		if err != nil {
			return false
		}
		out, err := Decode(data)
		return err == nil && out == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickIntRoundTrip(t *testing.T) {
	f := func(i int64) bool {
		data, err := Marshal(i)
		if err != nil {
			return false
		}
		out, err := Decode(data)
		return err == nil && out == i
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickFloatRoundTrip(t *testing.T) {
	f := func(x float64) bool {
		if math.IsNaN(x) {
			return true // NaN != NaN; skip
		}
		data, err := Marshal(x)
		if err != nil {
			return false
		}
		out, err := Decode(data)
		return err == nil && out == x
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickMapRoundTrip(t *testing.T) {
	f := func(m map[string]int64) bool {
		in := make(map[string]any, len(m))
		for k, v := range m {
			in[k] = v
		}
		data, err := Marshal(in)
		if err != nil {
			return false
		}
		out, err := Decode(data)
		if err != nil {
			return false
		}
		om, ok := out.(map[string]any)
		if !ok || len(om) != len(m) {
			return false
		}
		for k, v := range m {
			if om[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickBytesRoundTrip(t *testing.T) {
	f := func(b []byte) bool {
		data, err := Marshal(b)
		if err != nil {
			return false
		}
		out, err := Decode(data)
		if err != nil {
			return false
		}
		ob, ok := out.([]byte)
		return ok && bytes.Equal(ob, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
