package appview

import (
	"bytes"
	"context"
	"net/url"
	"testing"
	"time"

	"blueskies/internal/car"
	"blueskies/internal/cbor"
	"blueskies/internal/cid"
	"blueskies/internal/events"
	"blueskies/internal/feedgen"
	"blueskies/internal/lexicon"
	"blueskies/internal/xrpc"
)

var ts = time.Date(2024, 4, 1, 0, 0, 0, 0, time.UTC)

// commitEvent builds a #commit event carrying one record create.
func commitEvent(t *testing.T, seq int64, did, coll, rkey string, rec map[string]any) *events.Commit {
	t.Helper()
	data, err := cbor.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	recCID := cid.SumCBOR(data)
	commitCID := cid.SumCBOR([]byte(did + rkey))
	var buf bytes.Buffer
	cw, err := car.NewWriter(&buf, commitCID)
	if err != nil {
		t.Fatal(err)
	}
	if err := cw.WriteBlock(car.Block{CID: recCID, Data: data}); err != nil {
		t.Fatal(err)
	}
	if err := cw.Flush(); err != nil {
		t.Fatal(err)
	}
	return &events.Commit{
		Seq: seq, Repo: did, Rev: "3kaaaaaaaaaa2", Commit: commitCID,
		Ops:    []events.RepoOp{{Action: "create", Path: coll + "/" + rkey, CID: &recCID}},
		Blocks: buf.Bytes(),
		Time:   events.FormatTime(ts),
	}
}

const (
	alice = "did:plc:alice234alice234alice234"
	bob   = "did:plc:bob234bob234bob234bob234"
)

func TestIndexPostAndLikes(t *testing.T) {
	v := New()
	v.Ingest(commitEvent(t, 1, alice, lexicon.Post, "3kaaaaaaaaaa2",
		lexicon.NewPost("hello", []string{"en"}, ts)))
	postURI := "at://" + alice + "/app.bsky.feed.post/3kaaaaaaaaaa2"
	p, ok := v.Post(postURI)
	if !ok || p.Text != "hello" || len(p.Langs) != 1 {
		t.Fatalf("post = %+v ok=%v", p, ok)
	}
	v.Ingest(commitEvent(t, 2, bob, lexicon.Like, "3kbbbbbbbbbb2", lexicon.NewLike(postURI, ts)))
	v.Ingest(commitEvent(t, 3, bob, lexicon.Repost, "3kcccccccccc2", lexicon.NewRepost(postURI, ts)))
	p, _ = v.Post(postURI)
	if p.LikeCount != 1 || p.Reposts != 1 {
		t.Fatalf("counts = %+v", p)
	}
	prof, ok := v.Profile(alice)
	if !ok || prof.Posts != 1 {
		t.Fatalf("profile = %+v", prof)
	}
}

func TestIndexFollowGraphAndBlocks(t *testing.T) {
	v := New()
	v.Ingest(commitEvent(t, 1, alice, lexicon.Follow, "3kaaaaaaaaaa2", lexicon.NewFollow(bob, ts)))
	v.Ingest(commitEvent(t, 2, alice, lexicon.Block, "3kaaaaaaaaaa3", lexicon.NewBlock(bob, ts)))
	ap, _ := v.Profile(alice)
	bp, _ := v.Profile(bob)
	if ap.Following != 1 || bp.Followers != 1 || bp.Blocked != 1 {
		t.Fatalf("profiles: %+v %+v", ap, bp)
	}
}

func TestIndexFeedGeneratorAndLabeler(t *testing.T) {
	v := New()
	v.Ingest(commitEvent(t, 1, alice, lexicon.FeedGenerator, "catpics",
		lexicon.NewFeedGenerator("did:web:feeds.example.com", "Cat Pics", "cats only", ts)))
	v.Ingest(commitEvent(t, 2, bob, lexicon.LabelerService, "self",
		lexicon.NewLabelerService([]lexicon.LabelValueDefinition{{Value: "spam", Severity: "alert", Blurs: "content"}}, ts)))
	fgs := v.FeedGenerators()
	if len(fgs) != 1 || fgs[0].ServiceDID != "did:web:feeds.example.com" {
		t.Fatalf("feedgens = %+v", fgs)
	}
	labelers := v.Labelers()
	if len(labelers) != 1 || labelers[0].Values[0] != "spam" {
		t.Fatalf("labelers = %+v", labelers)
	}
}

func TestNonBskyContentCounted(t *testing.T) {
	v := New()
	v.Ingest(commitEvent(t, 1, alice, lexicon.WhiteWindEntry, "entry1",
		lexicon.NewWhiteWindEntry("Title", "body", ts)))
	if v.NonBskyEvents() != 1 {
		t.Fatalf("nonBsky = %d", v.NonBskyEvents())
	}
	if v.PostCount() != 0 {
		t.Fatal("whtwnd entry must not index as post")
	}
}

func TestDeleteDeindexes(t *testing.T) {
	v := New()
	v.Ingest(commitEvent(t, 1, alice, lexicon.Post, "3kaaaaaaaaaa2", lexicon.NewPost("x", nil, ts)))
	postURI := "at://" + alice + "/app.bsky.feed.post/3kaaaaaaaaaa2"
	del := &events.Commit{
		Seq: 2, Repo: alice, Rev: "3kaaaaaaaaaa3", Commit: cid.SumRaw([]byte("d")),
		Ops:  []events.RepoOp{{Action: "delete", Path: "app.bsky.feed.post/3kaaaaaaaaaa2"}},
		Time: events.FormatTime(ts),
	}
	v.Ingest(del)
	if _, ok := v.Post(postURI); ok {
		t.Fatal("post must be deindexed")
	}
	prof, _ := v.Profile(alice)
	if prof.Posts != 0 {
		t.Fatalf("posts = %d", prof.Posts)
	}
}

func TestLabelsIngestAndQuery(t *testing.T) {
	v := New()
	postURI := "at://" + alice + "/app.bsky.feed.post/3kaaaaaaaaaa2"
	v.Ingest(&events.Labels{Seq: 1, Labels: []events.Label{
		{Src: "did:plc:labeler", URI: postURI, Val: "porn", CTS: events.FormatTime(ts)},
		{Src: "did:plc:labeler", URI: alice, Val: "spam", CTS: events.FormatTime(ts)},
	}})
	on := v.LabelsOn(postURI)
	if len(on) != 1 || on[0].Val != "porn" {
		t.Fatalf("labels = %+v", on)
	}
	if v.LabelCount() != 2 {
		t.Fatalf("count = %d", v.LabelCount())
	}
}

func TestHandleAndTombstoneEvents(t *testing.T) {
	v := New()
	v.Ingest(&events.Handle{Seq: 1, DID: alice, Handle: "alice.example.com"})
	if got := v.ResolveHandle(alice); got != "alice.example.com" {
		t.Fatalf("handle = %q", got)
	}
	v.Ingest(&events.Tombstone{Seq: 2, DID: alice})
	// tombstone recorded without panic; index retained for audit.
}

func TestGetFeedGeneratorAPI(t *testing.T) {
	v := New()
	if err := v.Start(); err != nil {
		t.Fatal(err)
	}
	defer v.Close()
	v.Ingest(commitEvent(t, 1, alice, lexicon.FeedGenerator, "catpics",
		lexicon.NewFeedGenerator("did:web:feeds.example.com", "Cat Pics", "cats", ts)))
	v.RegisterFeedService("did:web:feeds.example.com", func(_, _ string, _ int) ([]string, error) {
		return nil, nil
	})
	client := xrpc.NewClient(v.URL())
	feedURI := "at://" + alice + "/app.bsky.feed.generator/catpics"
	var out struct {
		View struct {
			URI         string `json:"uri"`
			DisplayName string `json:"displayName"`
		} `json:"view"`
		IsOnline bool `json:"isOnline"`
		IsValid  bool `json:"isValid"`
	}
	if err := client.Query(context.Background(), "app.bsky.feed.getFeedGenerator",
		url.Values{"feed": {feedURI}}, &out); err != nil {
		t.Fatal(err)
	}
	if out.View.DisplayName != "Cat Pics" || !out.IsOnline || !out.IsValid {
		t.Fatalf("out = %+v", out)
	}
}

func TestGetFeedHydratesThroughEngine(t *testing.T) {
	v := New()
	if err := v.Start(); err != nil {
		t.Fatal(err)
	}
	defer v.Close()

	// A feedgen engine hosting one whole-network feed.
	engine := feedgen.NewEngine(feedgen.EngineConfig{Name: "Skyfeed", Platform: feedgen.PlatformByName("Skyfeed")})
	feedURI := "at://" + alice + "/app.bsky.feed.generator/all"
	if err := engine.AddFeed(feedgen.Config{URI: feedURI, WholeNetwork: true}); err != nil {
		t.Fatal(err)
	}

	// Index the generator declaration and a post; feed the engine too.
	v.Ingest(commitEvent(t, 1, alice, lexicon.FeedGenerator, "all",
		lexicon.NewFeedGenerator("did:web:sky.feed", "All", "everything", ts)))
	v.Ingest(commitEvent(t, 2, bob, lexicon.Post, "3kaaaaaaaaaa2", lexicon.NewPost("hydrate me", nil, ts)))
	postURI := "at://" + bob + "/app.bsky.feed.post/3kaaaaaaaaaa2"
	engine.Ingest(feedgen.PostView{URI: postURI, DID: bob, Text: "hydrate me", CreatedAt: ts})

	v.RegisterFeedService("did:web:sky.feed", engine.Skeleton)

	client := xrpc.NewClient(v.URL())
	var out struct {
		Feed []struct {
			Post map[string]any `json:"post"`
		} `json:"feed"`
	}
	if err := client.Query(context.Background(), "app.bsky.feed.getFeed",
		url.Values{"feed": {feedURI}}, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Feed) != 1 {
		t.Fatalf("feed = %+v", out.Feed)
	}
	if out.Feed[0].Post["text"] != "hydrate me" {
		t.Fatalf("post not hydrated: %+v", out.Feed[0].Post)
	}
}

func TestGetFeedUnreachableService(t *testing.T) {
	v := New()
	if err := v.Start(); err != nil {
		t.Fatal(err)
	}
	defer v.Close()
	v.Ingest(commitEvent(t, 1, alice, lexicon.FeedGenerator, "dead",
		lexicon.NewFeedGenerator("did:web:gone.example", "Dead", "offline", ts)))
	client := xrpc.NewClient(v.URL())
	feedURI := "at://" + alice + "/app.bsky.feed.generator/dead"
	err := client.Query(context.Background(), "app.bsky.feed.getFeed", url.Values{"feed": {feedURI}}, nil)
	if xe, ok := xrpc.AsError(err); !ok || xe.Name != "NotFound" {
		t.Fatalf("err = %v", err)
	}
}

func TestSnapshotCounts(t *testing.T) {
	v := New()
	v.Ingest(commitEvent(t, 1, alice, lexicon.Post, "3kaaaaaaaaaa2", lexicon.NewPost("x", nil, ts)))
	snap, err := v.MarshalSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(snap, []byte(`"posts":1`)) {
		t.Fatalf("snapshot = %s", snap)
	}
}
