// Package appview implements the AppView (§2): the component that
// consumes the Firehose and the label streams, indexes the network
// into a queryable database, and serves the client-facing API —
// including the getFeedGenerator and getFeed endpoints the paper's
// Feed Generator crawl uses.
//
// The paper observes that the AppView must subscribe to all known
// Labelers and store all labels, making it ever more resource-hungry
// as the labeler ecosystem grows (§6.1); this implementation makes
// that explicit: every labeler subscription lands in one shared index.
package appview

import (
	"bytes"
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"blueskies/internal/car"
	"blueskies/internal/cbor"
	"blueskies/internal/cid"
	"blueskies/internal/events"
	"blueskies/internal/identity"
	"blueskies/internal/lexicon"
	"blueskies/internal/xrpc"
)

// PostIndex is the AppView's view of one post.
type PostIndex struct {
	URI       string
	DID       string
	Text      string
	Langs     []string
	CreatedAt time.Time
	LikeCount int
	Reposts   int
}

// ProfileIndex is the AppView's view of one account.
type ProfileIndex struct {
	DID         string
	Handle      string
	DisplayName string
	Description string
	Followers   int
	Following   int
	Posts       int
	Blocked     int // times this account was blocked by others
}

// FeedGenIndex is the AppView's view of one feed generator.
type FeedGenIndex struct {
	URI         string
	Creator     string
	ServiceDID  string
	DisplayName string
	Description string
	CreatedAt   time.Time
	LikeCount   int
}

// LabelerIndex is the AppView's view of one labeler service.
type LabelerIndex struct {
	DID    string
	Values []string
}

// SkeletonFunc resolves a feed skeleton; the registry maps feed
// service DIDs to their resolvers (in-process engine or HTTP).
type SkeletonFunc func(feedURI, requester string, limit int) ([]string, error)

// View is the AppView index and API server.
type View struct {
	mu        sync.RWMutex
	posts     map[string]*PostIndex
	profiles  map[string]*ProfileIndex
	feedgens  map[string]*FeedGenIndex
	labelers  map[string]*LabelerIndex
	labels    []events.Label
	labelsOn  map[string][]int // uri → indexes into labels
	handles   map[string]string
	tombstone map[string]bool
	// nonBskyEvents counts firehose records outside the Bluesky
	// lexicons (§4, Non-Bluesky content).
	nonBskyEvents int
	// official is the labeler DID whose reserved labels trigger
	// infrastructure takedowns (§6.2).
	official string

	services map[string]SkeletonFunc

	mux  *xrpc.Mux
	http *http.Server
	base string
}

// New creates an empty AppView.
func New() *View {
	v := &View{
		posts:     make(map[string]*PostIndex),
		profiles:  make(map[string]*ProfileIndex),
		feedgens:  make(map[string]*FeedGenIndex),
		labelers:  make(map[string]*LabelerIndex),
		labelsOn:  make(map[string][]int),
		handles:   make(map[string]string),
		tombstone: make(map[string]bool),
		services:  make(map[string]SkeletonFunc),
	}
	v.mux = xrpc.NewMux()
	v.register()
	return v
}

// Start begins serving the API on a loopback port.
func (v *View) Start() error {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	v.base = "http://" + ln.Addr().String()
	v.http = &http.Server{Handler: v.mux}
	go func() { _ = v.http.Serve(ln) }()
	return nil
}

// URL returns the API base URL ("" before Start).
func (v *View) URL() string { return v.base }

// Close stops the server.
func (v *View) Close() error {
	if v.http != nil {
		return v.http.Close()
	}
	return nil
}

// RegisterFeedService wires a feed service DID to its skeleton
// resolver.
func (v *View) RegisterFeedService(serviceDID string, fn SkeletonFunc) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.services[serviceDID] = fn
}

// RegisterFeedServiceURL wires a feed service DID to a remote
// getFeedSkeleton endpoint.
func (v *View) RegisterFeedServiceURL(serviceDID, baseURL string) {
	client := xrpc.NewClient(baseURL)
	v.RegisterFeedService(serviceDID, func(feedURI, requester string, limit int) ([]string, error) {
		var out struct {
			Feed []struct {
				Post string `json:"post"`
			} `json:"feed"`
		}
		params := url.Values{"feed": {feedURI}, "limit": {strconv.Itoa(limit)}}
		if requester != "" {
			params.Set("requester", requester)
		}
		if err := client.Query(context.Background(), "app.bsky.feed.getFeedSkeleton", params, &out); err != nil {
			return nil, err
		}
		uris := make([]string, len(out.Feed))
		for i, f := range out.Feed {
			uris[i] = f.Post
		}
		return uris, nil
	})
}

// ConsumeFirehose subscribes to a relay firehose and indexes events
// until the connection drops.
func (v *View) ConsumeFirehose(relayURL string, cursor int64) error {
	sub, err := events.Subscribe(relayURL, "com.atproto.sync.subscribeRepos", cursor)
	if err != nil {
		return err
	}
	go func() {
		defer sub.Close()
		for {
			ev, err := sub.Next()
			if err != nil {
				return
			}
			v.Ingest(ev)
		}
	}()
	return nil
}

// ConsumeLabeler subscribes to one labeler stream and indexes labels.
func (v *View) ConsumeLabeler(serviceURL string) error {
	sub, err := events.Subscribe(serviceURL, "com.atproto.label.subscribeLabels", 0)
	if err != nil {
		return err
	}
	go func() {
		defer sub.Close()
		for {
			ev, err := sub.Next()
			if err != nil {
				return
			}
			v.Ingest(ev)
		}
	}()
	return nil
}

// Ingest applies one event to the index (also usable synchronously).
func (v *View) Ingest(ev any) {
	switch e := ev.(type) {
	case *events.Commit:
		v.ingestCommit(e)
	case *events.Handle:
		v.mu.Lock()
		v.handles[e.DID] = e.Handle
		v.mu.Unlock()
	case *events.Tombstone:
		v.mu.Lock()
		v.tombstone[e.DID] = true
		v.mu.Unlock()
	case *events.Labels:
		v.mu.Lock()
		for _, l := range e.Labels {
			v.labels = append(v.labels, l)
			v.labelsOn[l.URI] = append(v.labelsOn[l.URI], len(v.labels)-1)
			// Infrastructure takedown (§6.2): a !takedown from the
			// official labeler purges the content from system
			// components. OfficialLabeler must be configured.
			if !l.Neg && l.Val == "!takedown" && v.official != "" && l.Src == v.official {
				v.takedownLocked(l.URI)
			}
		}
		v.mu.Unlock()
	}
}

// SetOfficialLabeler nominates the labeler whose reserved ("!…")
// labels have hardcoded, mandatory behaviour.
func (v *View) SetOfficialLabeler(did string) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.official = did
}

// takedownLocked purges a post or an entire account from the index;
// callers hold v.mu.
func (v *View) takedownLocked(uri string) {
	if strings.HasPrefix(uri, "at://") {
		if p, ok := v.posts[uri]; ok {
			delete(v.posts, uri)
			if prof, ok := v.profiles[p.DID]; ok && prof.Posts > 0 {
				prof.Posts--
			}
		}
		return
	}
	// Account-level takedown: remove the account and all its posts.
	v.tombstone[uri] = true
	delete(v.profiles, uri)
	for postURI, p := range v.posts {
		if p.DID == uri {
			delete(v.posts, postURI)
		}
	}
}

func (v *View) ingestCommit(e *events.Commit) {
	blocks := map[cid.CID][]byte{}
	if len(e.Blocks) > 0 {
		if cr, err := car.NewReader(bytes.NewReader(e.Blocks)); err == nil {
			if all, err := cr.ReadAll(); err == nil {
				for _, b := range all {
					blocks[b.CID] = b.Data
				}
			}
		}
	}
	for _, op := range e.Ops {
		coll, rkey, ok := strings.Cut(op.Path, "/")
		if !ok {
			continue
		}
		uri := "at://" + e.Repo + "/" + op.Path
		switch op.Action {
		case "create", "update":
			if op.CID == nil {
				continue
			}
			data, ok := blocks[*op.CID]
			if !ok {
				continue
			}
			var rec map[string]any
			if err := cbor.Unmarshal(data, &rec); err != nil {
				continue
			}
			v.indexRecord(e.Repo, coll, rkey, uri, rec)
		case "delete":
			v.deindexRecord(e.Repo, coll, uri)
		}
	}
}

func (v *View) profile(did string) *ProfileIndex {
	p, ok := v.profiles[did]
	if !ok {
		p = &ProfileIndex{DID: did}
		v.profiles[did] = p
	}
	return p
}

func (v *View) indexRecord(did, coll, rkey, uri string, rec map[string]any) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if !lexicon.IsBlueskyLexicon(coll) {
		v.nonBskyEvents++
		return
	}
	switch coll {
	case lexicon.Post:
		created, _ := lexicon.CreatedAt(rec)
		v.posts[uri] = &PostIndex{
			URI: uri, DID: did,
			Text:      lexicon.PostText(rec),
			Langs:     lexicon.PostLangs(rec),
			CreatedAt: created,
		}
		v.profile(did).Posts++
	case lexicon.Like:
		subject := lexicon.SubjectURI(rec)
		if p, ok := v.posts[subject]; ok {
			p.LikeCount++
		}
		if fg, ok := v.feedgens[subject]; ok {
			fg.LikeCount++
		}
	case lexicon.Repost:
		if p, ok := v.posts[lexicon.SubjectURI(rec)]; ok {
			p.Reposts++
		}
	case lexicon.Follow:
		v.profile(did).Following++
		v.profile(lexicon.SubjectDID(rec)).Followers++
	case lexicon.Block:
		v.profile(lexicon.SubjectDID(rec)).Blocked++
	case lexicon.Profile:
		p := v.profile(did)
		if name, ok := rec["displayName"].(string); ok {
			p.DisplayName = name
		}
		p.Description = lexicon.Description(rec)
	case lexicon.FeedGenerator:
		created, _ := lexicon.CreatedAt(rec)
		v.feedgens[uri] = &FeedGenIndex{
			URI: uri, Creator: did,
			ServiceDID:  lexicon.FeedGeneratorServiceDID(rec),
			DisplayName: func() string { s, _ := rec["displayName"].(string); return s }(),
			Description: lexicon.Description(rec),
			CreatedAt:   created,
		}
	case lexicon.LabelerService:
		v.labelers[did] = &LabelerIndex{DID: did, Values: lexicon.LabelerValues(rec)}
	}
}

func (v *View) deindexRecord(did, coll, uri string) {
	v.mu.Lock()
	defer v.mu.Unlock()
	switch coll {
	case lexicon.Post:
		if _, ok := v.posts[uri]; ok {
			delete(v.posts, uri)
			if p, ok := v.profiles[did]; ok && p.Posts > 0 {
				p.Posts--
			}
		}
	case lexicon.FeedGenerator:
		delete(v.feedgens, uri)
	case lexicon.LabelerService:
		delete(v.labelers, did)
	}
}

// Post returns the indexed post at uri.
func (v *View) Post(uri string) (PostIndex, bool) {
	v.mu.RLock()
	defer v.mu.RUnlock()
	p, ok := v.posts[uri]
	if !ok {
		return PostIndex{}, false
	}
	return *p, true
}

// PostCount reports the number of indexed posts.
func (v *View) PostCount() int {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return len(v.posts)
}

// Profile returns the indexed profile for did.
func (v *View) Profile(did string) (ProfileIndex, bool) {
	v.mu.RLock()
	defer v.mu.RUnlock()
	p, ok := v.profiles[did]
	if !ok {
		return ProfileIndex{}, false
	}
	return *p, true
}

// FeedGenerators returns all indexed generators, sorted by URI.
func (v *View) FeedGenerators() []FeedGenIndex {
	v.mu.RLock()
	defer v.mu.RUnlock()
	out := make([]FeedGenIndex, 0, len(v.feedgens))
	for _, fg := range v.feedgens {
		out = append(out, *fg)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].URI < out[j].URI })
	return out
}

// Labelers returns all indexed labeler declarations, sorted by DID.
func (v *View) Labelers() []LabelerIndex {
	v.mu.RLock()
	defer v.mu.RUnlock()
	out := make([]LabelerIndex, 0, len(v.labelers))
	for _, l := range v.labelers {
		out = append(out, *l)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].DID < out[j].DID })
	return out
}

// LabelsOn returns all labels recorded for uri (including negations).
func (v *View) LabelsOn(uri string) []events.Label {
	v.mu.RLock()
	defer v.mu.RUnlock()
	idxs := v.labelsOn[uri]
	out := make([]events.Label, len(idxs))
	for i, idx := range idxs {
		out[i] = v.labels[idx]
	}
	return out
}

// LabelCount reports the total number of labels ingested.
func (v *View) LabelCount() int {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return len(v.labels)
}

// NonBskyEvents reports indexed records outside the Bluesky lexicons.
func (v *View) NonBskyEvents() int {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return v.nonBskyEvents
}

func (v *View) register() {
	v.mux.Query("app.bsky.feed.getFeedGenerator", func(_ context.Context, params url.Values, _ []byte) (any, error) {
		feedURI := params.Get("feed")
		v.mu.RLock()
		fg, ok := v.feedgens[feedURI]
		var online bool
		if ok {
			_, online = v.services[fg.ServiceDID]
		}
		v.mu.RUnlock()
		if !ok {
			return nil, xrpc.ErrNotFound("unknown feed generator %s", feedURI)
		}
		return map[string]any{
			"view": map[string]any{
				"uri":         fg.URI,
				"did":         fg.ServiceDID,
				"creator":     map[string]any{"did": fg.Creator},
				"displayName": fg.DisplayName,
				"description": fg.Description,
				"likeCount":   fg.LikeCount,
				"indexedAt":   fg.CreatedAt.Format(time.RFC3339),
			},
			"isOnline": online,
			"isValid":  true,
		}, nil
	})

	v.mux.Query("app.bsky.feed.getFeed", func(_ context.Context, params url.Values, _ []byte) (any, error) {
		feedURI := params.Get("feed")
		limit := 50
		if l := params.Get("limit"); l != "" {
			n, err := strconv.Atoi(l)
			if err != nil || n <= 0 {
				return nil, xrpc.ErrInvalidRequest("bad limit %q", l)
			}
			limit = n
		}
		v.mu.RLock()
		fg, ok := v.feedgens[feedURI]
		var resolver SkeletonFunc
		if ok {
			resolver = v.services[fg.ServiceDID]
		}
		v.mu.RUnlock()
		if !ok {
			return nil, xrpc.ErrNotFound("unknown feed generator %s", feedURI)
		}
		if resolver == nil {
			return nil, xrpc.ErrNotFound("feed service %s unreachable", fg.ServiceDID)
		}
		uris, err := resolver(feedURI, params.Get("requester"), limit)
		if err != nil {
			return nil, err
		}
		type feedItem struct {
			Post map[string]any `json:"post"`
		}
		items := make([]feedItem, 0, len(uris))
		v.mu.RLock()
		for _, uri := range uris {
			item := map[string]any{"uri": uri}
			if p, ok := v.posts[uri]; ok {
				item["author"] = p.DID
				item["text"] = p.Text
				item["likeCount"] = p.LikeCount
				item["indexedAt"] = p.CreatedAt.Format(time.RFC3339)
			}
			items = append(items, feedItem{Post: item})
		}
		v.mu.RUnlock()
		return map[string]any{"feed": items}, nil
	})

	v.mux.Query("app.bsky.actor.getProfile", func(_ context.Context, params url.Values, _ []byte) (any, error) {
		did := params.Get("actor")
		p, ok := v.Profile(did)
		if !ok {
			return nil, xrpc.ErrNotFound("unknown actor %s", did)
		}
		return p, nil
	})

	v.mux.Query("com.atproto.label.queryLabels", func(_ context.Context, params url.Values, _ []byte) (any, error) {
		patterns := params["uriPatterns"]
		v.mu.RLock()
		defer v.mu.RUnlock()
		var out []events.Label
		for _, l := range v.labels {
			if len(patterns) == 0 || matchAny(l.URI, patterns) {
				out = append(out, l)
			}
		}
		return map[string]any{"labels": out}, nil
	})
}

func matchAny(uri string, patterns []string) bool {
	for _, p := range patterns {
		if base, ok := strings.CutSuffix(p, "*"); ok {
			if strings.HasPrefix(uri, base) {
				return true
			}
		} else if uri == p {
			return true
		}
	}
	return false
}

// MarshalSnapshot serializes the index for offline analysis.
func (v *View) MarshalSnapshot() ([]byte, error) {
	v.mu.RLock()
	defer v.mu.RUnlock()
	snap := map[string]any{
		"posts":    len(v.posts),
		"profiles": len(v.profiles),
		"feedgens": len(v.feedgens),
		"labelers": len(v.labelers),
		"labels":   len(v.labels),
	}
	return json.Marshal(snap)
}

// ResolveHandle returns the latest known handle of did (from handle
// events), or "".
func (v *View) ResolveHandle(did identity.DID) string {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return v.handles[string(did)]
}
