package appview

import (
	"testing"

	"blueskies/internal/events"
	"blueskies/internal/lexicon"
)

const officialDID = "did:plc:mod234mod234mod234mod234"

func TestInfrastructureTakedownPost(t *testing.T) {
	v := New()
	v.SetOfficialLabeler(officialDID)
	v.Ingest(commitEvent(t, 1, alice, lexicon.Post, "3kaaaaaaaaaa2", lexicon.NewPost("bad", nil, ts)))
	postURI := "at://" + alice + "/app.bsky.feed.post/3kaaaaaaaaaa2"
	v.Ingest(&events.Labels{Seq: 2, Labels: []events.Label{
		{Src: officialDID, URI: postURI, Val: "!takedown"},
	}})
	if _, ok := v.Post(postURI); ok {
		t.Fatal("!takedown from the official labeler must purge the post")
	}
	// The label itself remains recorded (audit trail / stream).
	if v.LabelCount() != 1 {
		t.Fatalf("labels = %d", v.LabelCount())
	}
}

func TestInfrastructureTakedownAccount(t *testing.T) {
	v := New()
	v.SetOfficialLabeler(officialDID)
	v.Ingest(commitEvent(t, 1, alice, lexicon.Post, "3kaaaaaaaaaa2", lexicon.NewPost("p1", nil, ts)))
	v.Ingest(commitEvent(t, 2, alice, lexicon.Post, "3kaaaaaaaaaa3", lexicon.NewPost("p2", nil, ts)))
	v.Ingest(&events.Labels{Seq: 3, Labels: []events.Label{
		{Src: officialDID, URI: alice, Val: "!takedown"},
	}})
	if v.PostCount() != 0 {
		t.Fatalf("account takedown left %d posts", v.PostCount())
	}
	if _, ok := v.Profile(alice); ok {
		t.Fatal("account takedown must remove the profile")
	}
}

func TestTakedownFromCommunityLabelerIgnored(t *testing.T) {
	v := New()
	v.SetOfficialLabeler(officialDID)
	v.Ingest(commitEvent(t, 1, alice, lexicon.Post, "3kaaaaaaaaaa2", lexicon.NewPost("stays", nil, ts)))
	postURI := "at://" + alice + "/app.bsky.feed.post/3kaaaaaaaaaa2"
	v.Ingest(&events.Labels{Seq: 2, Labels: []events.Label{
		{Src: "did:plc:rogue234rogue234rogue234", URI: postURI, Val: "!takedown"},
	}})
	if _, ok := v.Post(postURI); !ok {
		t.Fatal("reserved labels from non-official labelers must be inert")
	}
}

func TestTakedownWithoutOfficialConfigured(t *testing.T) {
	v := New() // no SetOfficialLabeler
	v.Ingest(commitEvent(t, 1, alice, lexicon.Post, "3kaaaaaaaaaa2", lexicon.NewPost("stays", nil, ts)))
	postURI := "at://" + alice + "/app.bsky.feed.post/3kaaaaaaaaaa2"
	v.Ingest(&events.Labels{Seq: 2, Labels: []events.Label{
		{Src: officialDID, URI: postURI, Val: "!takedown"},
	}})
	if _, ok := v.Post(postURI); !ok {
		t.Fatal("takedown must be inert until an official labeler is nominated")
	}
}
