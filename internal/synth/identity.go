package synth

import (
	"fmt"
	"math/rand"

	"blueskies/internal/core"
	"blueskies/internal/whois"
)

// Named alternative handle providers observed in §5 (Figure 3), with
// their absolute subdomain counts.
var namedProviders = []struct {
	Domain string
	Count  int
	CCTLD  bool
}{
	{"swifties.social", 256, false},
	{"tired.io", 179, false},
	{"vibes.cool", 133, false},
	{"github.io", 35, false},
}

// TLD mix of the synthetic self-managed domain population.
var tldMix = []struct {
	TLD   string
	Share float64
	CCTLD bool
}{
	{"com", 0.42, false},
	{"net", 0.08, false},
	{"org", 0.07, false},
	{"io", 0.06, false},
	{"de", 0.05, true},
	{"jp", 0.05, true},
	{"com.br", 0.03, true},
	{"co.uk", 0.03, true},
	{"fr", 0.025, true},
	{"social", 0.03, false},
	{"dev", 0.03, false},
	{"app", 0.025, false},
	{"me", 0.02, false},
	{"xyz", 0.02, false},
	{"cool", 0.015, false},
	{"online", 0.015, false},
	{"art", 0.015, false},
	{"blog", 0.01, false},
	{"cloud", 0.01, false},
	{"site", 0.01, false},
}

// Registrar shares among IANA-identified domains (Table 2).
var registrarShares = []struct {
	Reg   whois.Registrar
	Share float64
}{
	{whois.Registrar{IANAID: 1068, Name: "NameCheap, Inc."}, 0.2094},
	{whois.Registrar{IANAID: 1910, Name: "CloudFlare, Inc."}, 0.1146},
	{whois.Registrar{IANAID: 895, Name: "Squarespace Domains"}, 0.1130},
	{whois.Registrar{IANAID: 146, Name: "GoDaddy.com, LLC"}, 0.0719},
	{whois.Registrar{IANAID: 1861, Name: "Porkbun, LLC"}, 0.0685},
	{whois.Registrar{IANAID: 69, Name: "Tucows Domains Inc."}, 0.0593},
	{whois.Registrar{IANAID: 49, Name: "GMO Internet Group"}, 0.0456},
}

// tailRegistrarCount completes the paper's 249 observed registrars.
const tailRegistrarCount = 242

// Handle-verification shares (§5, Validating Handle Ownership).
const (
	shareDNSTXT = 0.987
	// bskySocialShare of all FQDN handles live under bsky.social.
	bskySocialShare = 0.989
	// trancoShare of registered domains appear in the top-1M ranking.
	trancoShare = 0.028
	// whoisFailShare of domains had no WHOIS data; of the scanned,
	// ccTLD-policy entries lack IANA IDs (92 % scanned, 76 % with ID).
	whoisFailShare = 0.08
	// finalToBskyShare of handle updates settle under bsky.social.
	finalToBskyShare = 0.7574
)

// genIdentity assigns handles, DID methods, ownership proofs, builds
// the registered-domain population with registrars, and the handle
// update stream. tag prefixes synthetic domain names so independently
// generated partitions (one per simulated crawl) register disjoint
// domain populations ("" for a monolithic corpus).
func genIdentity(ds *core.Dataset, rng *rand.Rand, tag string) {
	n := len(ds.Users)
	altN := scaled(TargetAltHandles, ds.Scale, 80)
	if altN > n/2 {
		altN = n / 2
	}

	// Build the domain population first: named providers keep their
	// absolute subdomain counts (scaled down only when tiny worlds
	// can't fit them), the rest of the alt handles spread 1–4 per
	// registered domain.
	var domains []core.Domain
	remaining := altN
	for _, p := range namedProviders {
		c := p.Count
		if ds.Scale > 20 {
			c = max(2, p.Count*20/ds.Scale)
		}
		if c > remaining/2 {
			c = remaining / 2
		}
		domains = append(domains, core.Domain{Name: p.Domain, CCTLD: p.CCTLD, Subdomains: c})
		remaining -= c
	}
	idx := 0
	for remaining > 0 {
		sub := 1
		if rng.Float64() < 0.08 {
			sub = 2 + rng.Intn(3)
		}
		if sub > remaining {
			sub = remaining
		}
		tld := pickTLD(rng)
		domains = append(domains, core.Domain{
			Name:       fmt.Sprintf("%sdomain%06d.%s", tag, idx, tld.TLD),
			CCTLD:      tld.CCTLD,
			Subdomains: sub,
		})
		remaining -= sub
		idx++
	}

	// Registrar assignment + Tranco ranks.
	for i := range domains {
		d := &domains[i]
		if rng.Float64() < trancoShare {
			d.TrancoRank = 1 + rng.Intn(1_000_000)
		}
		if rng.Float64() < whoisFailShare {
			continue // WHOIS lookup failed entirely
		}
		if d.CCTLD {
			// ccTLD registries omit IANA IDs (§5).
			d.RegistrarName = fmt.Sprintf("Local %s Registry Member", d.Name)
			continue
		}
		d.RegistrarName, d.IANAID = pickRegistrar(rng)
	}
	ds.Domains = domains

	// Assign handles: altN users get FQDNs under the domain
	// population; everyone else is custodial under bsky.social.
	perm := rng.Perm(n)
	altUsers := perm[:altN]
	cursor := 0
	domCursor := 0
	used := 0
	for _, ui := range altUsers {
		for domCursor < len(domains) && used >= domains[domCursor].Subdomains {
			domCursor++
			used = 0
		}
		dom := "fallback.example"
		if domCursor < len(domains) {
			dom = domains[domCursor].Name
			used++
		}
		u := &ds.Users[ui]
		u.Handle = fmt.Sprintf("user%07d.%s", cursor, dom)
		u.DIDMethod = "plc"
		if rng.Float64() < shareDNSTXT {
			u.Proof = core.ProofDNSTXT
		} else {
			u.Proof = core.ProofWellKnown
		}
		cursor++
	}
	// did:web identities: six absolute (§5 found exactly six).
	webN := min(TargetDIDWeb, altN)
	for i := 0; i < webN; i++ {
		u := &ds.Users[altUsers[i]]
		u.DIDMethod = "web"
		u.DID = "did:web:" + u.Handle
	}
	for _, ui := range perm[altN:] {
		u := &ds.Users[ui]
		u.Handle = fmt.Sprintf("user%07d.bsky.social", ui)
		u.DIDMethod = "plc"
		u.Proof = core.ProofManaged
	}

	// Handle updates (§5): more updates than unique DIDs (some users
	// flip back and forth); 75.74 % settle under bsky.social.
	updates := scaled(TargetHandleUpdates, ds.Scale, 60)
	uniqueDIDs := scaled(TargetUpdatingDIDs, ds.Scale, 42)
	if uniqueDIDs > n {
		uniqueDIDs = n
	}
	if updates < uniqueDIDs {
		updates = uniqueDIDs
	}
	updaters := rng.Perm(n)[:uniqueDIDs]
	ds.HandleUpdates = make([]core.HandleUpdate, 0, updates)
	windowSecs := int64(WindowEnd.Sub(WindowStart).Seconds())
	for i := 0; i < updates; i++ {
		ui := updaters[i%uniqueDIDs]
		var newHandle string
		if rng.Float64() < finalToBskyShare {
			newHandle = fmt.Sprintf("renamed%06d.bsky.social", i)
		} else {
			dom := domains[rng.Intn(len(domains))].Name
			newHandle = fmt.Sprintf("renamed%06d.%s", i, dom)
		}
		ds.HandleUpdates = append(ds.HandleUpdates, core.HandleUpdate{
			DID:       ds.Users[ui].DID,
			NewHandle: newHandle,
			Time:      WindowStart.Add(secsDuration(rng.Int63n(windowSecs))),
		})
	}
}

func pickTLD(rng *rand.Rand) struct {
	TLD   string
	Share float64
	CCTLD bool
} {
	u := rng.Float64()
	acc := 0.0
	for _, t := range tldMix {
		acc += t.Share
		if u < acc {
			return t
		}
	}
	return tldMix[0]
}

func pickRegistrar(rng *rand.Rand) (string, int) {
	u := rng.Float64()
	acc := 0.0
	for _, rs := range registrarShares {
		acc += rs.Share
		if u < acc {
			return rs.Reg.Name, rs.Reg.IANAID
		}
	}
	// Long tail: near-uniform across the remaining registrars, so no
	// tail registrar rivals the Table 2 leaders.
	k := 1 + rng.Intn(tailRegistrarCount)
	return fmt.Sprintf("Tail Registrar %03d", k), 2000 + k
}
