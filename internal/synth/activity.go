package synth

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"blueskies/internal/core"
)

// Languages and their base shares among users who posted at least
// once (§4: ≈800K English, ≈700K Japanese of ≈2M tagged users;
// Portuguese and German next).
var langShares = []struct {
	Lang  string
	Share float64
}{
	{"en", 0.40},
	{"ja", 0.35},
	{"de", 0.05},
	{"pt", 0.045},
	{"ko", 0.03},
	{"fr", 0.025},
	{"es", 0.025},
	{"nl", 0.01},
	{"", 0.065}, // untagged / other
}

// postedShare is the fraction of users who ever posted (≈2M of 5.5M).
const postedShare = 0.36

// dauPoints is the daily-active-users curve (unscaled), matching the
// growth narrative of §4: launch Nov 2022, hundreds of thousands by
// July 2023, public opening Feb 2024, ≈500K DAU with a −60K decline
// March→May 2024.
var dauPoints = []struct {
	Date time.Time
	DAU  float64
	Log  bool // log-interpolate towards this point
}{
	{date(2022, 11, 17), 300, false},
	{date(2022, 12, 15), 1_500, true},
	{date(2023, 3, 1), 60_000, true},
	{date(2023, 7, 1), 250_000, true},
	{date(2024, 1, 1), 330_000, false},
	{date(2024, 2, 5), 350_000, false},
	{date(2024, 2, 10), 560_000, false}, // public-opening surge
	{date(2024, 3, 1), 560_000, false},
	{date(2024, 5, 1), 500_000, false}, // −60K decline
}

// DAU evaluates the (unscaled) daily-active-user curve.
func DAU(t time.Time) float64 {
	if t.Before(dauPoints[0].Date) {
		return 0
	}
	for i := 1; i < len(dauPoints); i++ {
		p, q := dauPoints[i-1], dauPoints[i]
		if t.Before(q.Date) || t.Equal(q.Date) {
			f := float64(t.Sub(p.Date)) / float64(q.Date.Sub(p.Date))
			if q.Log {
				return exp(lerp(logf(p.DAU), logf(q.DAU), f))
			}
			return lerp(p.DAU, q.DAU, f)
		}
	}
	return dauPoints[len(dauPoints)-1].DAU
}

// Per-active-user daily operation rates, derived from §4's April-2024
// snapshot (≈3M likes, 800K posts, 300K reposts at ≈500K DAU) and the
// dataset totals' follow/block proportions.
const (
	rateLikes   = 6.0
	ratePosts   = 1.6
	rateReposts = 0.6
	rateFollows = 1.3
	rateBlocks  = 0.088
)

// langActivityShare returns language l's share of active users on day
// t, encoding the Figure 2 dynamics: the Japanese bump at the public
// opening, the April-2024 Portuguese surge, German indifference.
func langActivityShare(lang string, t time.Time) float64 {
	switch lang {
	case "ja":
		if t.Before(PublicDate) {
			return 0.28
		}
		return 0.36
	case "pt":
		switch {
		case t.Before(PTSurge):
			return 0.006
		case t.Before(PTSurge.AddDate(0, 0, 5)):
			f := float64(t.Sub(PTSurge)) / float64(PTSurge.AddDate(0, 0, 5).Sub(PTSurge))
			return lerp(0.006, 0.055, f)
		default:
			return 0.055
		}
	case "de":
		return 0.025 // unaffected by the public opening
	case "ko":
		return 0.02
	case "fr":
		return 0.018
	case "en":
		if t.Before(PublicDate) {
			return 0.45
		}
		return 0.40
	}
	return 0
}

// userShards is the fixed fan-out of user generation — a constant,
// not GOMAXPROCS, so the population is identical at any parallelism
// level (same rule as postShards/histShards).
const userShards = 8

// genUsers populates the user population: signup dates proportional to
// the growth curve, language assignment, and follow-graph degrees.
// Users are generated in userShards disjoint index ranges, each from
// its own deterministic RNG stream (`stageUserShard0 + k`), the same
// fan-out pattern as genPosts. didBase offsets the DID numbering so
// independently generated partitions (GeneratePartitioned) never
// collide on identifiers; headlineScale, when non-zero, places the
// unique most-followed / most-blocked accounts at that (corpus)
// scale — a partitioned generation anchors only partition 0, the same
// uniqueness rule as genFeedGens' named feeds, and anchors are
// corpus-unique so they must not shrink with the per-partition
// Scale·n division.
func genUsers(ds *core.Dataset, seed int64, sequential bool, didBase int64, headlineScale int) {
	n := scaled(TargetUsers, ds.Scale, 500)
	users := make([]core.User, n)

	// Signup-date sampling: weight each day by DAU (growing platforms
	// acquire proportionally to activity). The cumulative weights are
	// RNG-free, so every shard shares them.
	days := int(WindowEnd.Sub(LaunchDate).Hours() / 24)
	weights := make([]float64, days)
	var totalW float64
	for i := 0; i < days; i++ {
		weights[i] = DAU(LaunchDate.AddDate(0, 0, i))
		totalW += weights[i]
	}
	cum := make([]float64, days)
	acc := 0.0
	for i, w := range weights {
		acc += w / totalW
		cum[i] = acc
	}
	sampleDay := func(rng *rand.Rand) time.Time {
		u := rng.Float64()
		lo, hi := 0, days-1
		for lo < hi {
			mid := (lo + hi) / 2
			if cum[mid] < u {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return LaunchDate.AddDate(0, 0, lo)
	}

	maxFollowers := scaled(775_000, ds.Scale, 200) // the official account's 775K
	fill := func(shard int) {
		rng := stageRNG(seed, stageUserShard0+uint64(shard))
		lo, hi := n*shard/userShards, n*(shard+1)/userShards
		for i := lo; i < hi; i++ {
			u := core.User{
				DID:       fmt.Sprintf("did:plc:%024d", didBase+int64(i)),
				CreatedAt: sampleDay(rng),
			}
			if rng.Float64() < postedShare {
				u.Lang = pickLang(rng)
			}
			// Degrees: bounded power laws; total follows scale-consistent.
			u.Followers = powerlawInt(rng, 2.05, maxFollowers) - 1
			u.Following = powerlawInt(rng, 1.9, 8_000) - 1
			users[i] = u
		}
	}
	if sequential {
		for shard := 0; shard < userShards; shard++ {
			fill(shard)
		}
	} else {
		var wg sync.WaitGroup
		for shard := 0; shard < userShards; shard++ {
			wg.Add(1)
			go func(shard int) {
				defer wg.Done()
				fill(shard)
			}(shard)
		}
		wg.Wait()
	}
	// The most-followed accounts (official, newspapers) and the
	// most-blocked ones (impersonators, propagandists) — deterministic
	// overrides, no RNG draws. They exist once per corpus, not once
	// per partition, and keep their corpus-scale magnitudes.
	if headlineScale > 0 {
		users[0].Followers = scaled(775_000, headlineScale, 200)
		if n > 2 {
			users[1].Followers = scaled(220_000, headlineScale, 120)
			users[2].Followers = scaled(205_000, headlineScale, 110)
			users[1].Blocks = scaled(15_000, headlineScale, 20)
			users[2].Blocks = scaled(14_500, headlineScale, 18)
		}
	}
	ds.Users = users
}

func pickLang(rng *rand.Rand) string {
	u := rng.Float64()
	acc := 0.0
	for _, ls := range langShares {
		acc += ls.Share
		if u < acc {
			return ls.Lang
		}
	}
	return ""
}

// genActivity builds the daily activity series (Figures 1 and 2).
func genActivity(ds *core.Dataset, rng *rand.Rand) {
	days := int(WindowEnd.Sub(LaunchDate).Hours() / 24)
	ds.Daily = make([]core.DayActivity, 0, days)
	for i := 0; i < days; i++ {
		day := LaunchDate.AddDate(0, 0, i)
		dau := DAU(day) / float64(ds.Scale)
		if dau < 1 {
			dau = 1
		}
		noise := func() float64 { return 0.92 + 0.16*rng.Float64() }
		act := core.DayActivity{
			Date:         day,
			ActiveUsers:  int(dau * noise()),
			Posts:        int(dau * ratePosts * noise()),
			Likes:        int(dau * rateLikes * noise()),
			Reposts:      int(dau * rateReposts * noise()),
			Follows:      int(dau * rateFollows * noise()),
			Blocks:       int(dau * rateBlocks * noise()),
			ActiveByLang: map[string]int{},
		}
		for _, ls := range langShares {
			if ls.Lang == "" {
				continue
			}
			share := langActivityShare(ls.Lang, day)
			act.ActiveByLang[ls.Lang] = int(dau * share * noise())
		}
		ds.Daily = append(ds.Daily, act)
	}
	// Firehose event counts (Table 1) over the collection window.
	total := int64(scaled(TargetFirehoseEvents, ds.Scale, 10_000))
	ds.Firehose = core.EventCounts{
		Commits:   int64(float64(total) * ShareCommits),
		Identity:  int64(float64(total) * ShareIdentity),
		Handle:    int64(float64(total) * ShareHandle),
		Tombstone: int64(float64(total) * ShareTombstone),
	}
	ds.NonBskyEvents = int64(scaled(TargetNonBskyEvents, ds.Scale, 3))
}

// postShards is the fixed fan-out of post generation. It is a
// constant — not GOMAXPROCS — so the shard RNG streams, and with them
// the generated corpus, are identical at any parallelism level.
const postShards = 8

// genPosts creates the measurement-window post corpus used for label
// joins, language verification, and feed contents. The paper observed
// 26,467,002 posts in April 2024 alone; the window here spans the
// firehose collection period. Posts are generated in postShards
// disjoint index ranges, each from its own deterministic RNG stream;
// per-author totals are accumulated in a serial pass afterwards so the
// user records see the same counts regardless of shard scheduling.
func genPosts(ds *core.Dataset, seed int64, sequential bool) {
	const windowPostsTarget = 26_467_002 * 2 // Mar 6 – Apr 30 ≈ 2 April-months
	n := scaled(windowPostsTarget, ds.Scale, 2_000)
	posts := make([]core.Post, n)
	windowDays := int(WindowEnd.Sub(WindowStart).Hours() / 24)
	// Posting users, weighted by (tagged) language presence.
	var posters []int
	for i := range ds.Users {
		if ds.Users[i].Lang != "" {
			posters = append(posters, i)
		}
	}
	if len(posters) == 0 {
		posters = []int{0}
	}
	fill := func(shard int) {
		rng := stageRNG(seed, stagePostShard0+uint64(shard))
		lo, hi := n*shard/postShards, n*(shard+1)/postShards
		for i := lo; i < hi; i++ {
			author := posters[rng.Intn(len(posters))]
			day := WindowStart.AddDate(0, 0, rng.Intn(windowDays))
			created := day.Add(time.Duration(rng.Int63n(int64(24 * time.Hour))))
			p := core.Post{
				URI:       fmt.Sprintf("at://%s/app.bsky.feed.post/3p%011d", ds.Users[author].DID, i),
				AuthorIdx: author,
				Lang:      ds.Users[author].Lang,
				CreatedAt: created,
				Likes:     powerlawInt(rng, 2.3, 40_000) - 1,
				Reposts:   powerlawInt(rng, 2.6, 8_000) - 1,
				HasMedia:  rng.Float64() < 0.32,
			}
			if p.HasMedia {
				p.AltText = rng.Float64() < 0.35 // most media lacks alt text
			}
			posts[i] = p
		}
	}
	if sequential {
		for shard := 0; shard < postShards; shard++ {
			fill(shard)
		}
	} else {
		var wg sync.WaitGroup
		for shard := 0; shard < postShards; shard++ {
			wg.Add(1)
			go func(shard int) {
				defer wg.Done()
				fill(shard)
			}(shard)
		}
		wg.Wait()
	}
	for i := range posts {
		ds.Users[posts[i].AuthorIdx].Posts++
	}
	ds.Posts = posts
}
