package synth

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"time"

	"blueskies/internal/core"
)

// GeneratePartitionedTo is GeneratePartitioned spilling straight to a
// disk-backed partition store: each partition is generated, written to
// dir as a block file, and released before its worker takes the next
// one, so peak memory is bounded by `workers` resident partitions (one
// per worker) regardless of n — the out-of-core complement to
// GeneratePartitioned, which returns the whole partition set on the
// heap. workers ≤ 0 uses min(n, GOMAXPROCS).
//
// The on-disk corpus is record-identical to GeneratePartitioned's: the
// same per-partition RNG sub-streams, shared labeler enumeration, and
// partition-0 activity/firehose facts, with the same manifest (written
// as the manifest.json sidecar and returned). Deterministic in
// (Scale, Seed, n) at any worker count.
func GeneratePartitionedTo(cfg Config, n int, dir string, workers int) (*core.Manifest, error) {
	if cfg.Scale < 1 {
		cfg.Scale = 1
	}
	if n < 1 {
		n = 1
	}
	if workers <= 0 {
		workers = min(n, runtime.GOMAXPROCS(0))
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	// Replace any store already there: stale part files beyond this
	// run's count must not survive into the new corpus, and removing
	// the old manifest first means an interrupted spill leaves a
	// directory OpenCorpus rejects rather than a blend of two corpora.
	if err := core.ClearStore(dir); err != nil {
		return nil, err
	}

	// Corpus-level stages on the corpus seed's streams, exactly as in
	// GeneratePartitioned: the labeler enumeration is shared by every
	// partition and the activity/firehose facts ride on partition 0.
	labelers := genLabelers(stageRNG(cfg.Seed, stageModeration))
	shared := &core.Dataset{Scale: cfg.Scale, WindowStart: WindowStart, WindowEnd: WindowEnd}
	genActivity(shared, stageRNG(cfg.Seed, stageActivity))

	// Per-partition manifest snapshots, taken before each dataset is
	// released; folded through Manifest.AddPartition below, so the
	// spilled manifest is assembled by exactly the code BuildManifest
	// runs over a materialized set.
	type snapshot struct {
		info                   core.PartitionInfo
		windowStart, windowEnd time.Time
	}
	snaps := make([]snapshot, n)
	errs := make([]error, n)
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := range next {
				// At most one partition resident per worker: ds goes out
				// of scope (and its slabs with it) before the next k.
				ds := generatePartition(cfg, n, k, labelers)
				if k == 0 {
					ds.Daily = shared.Daily
					ds.Firehose = shared.Firehose
					ds.NonBskyEvents = shared.NonBskyEvents
				}
				snaps[k] = snapshot{ds.PartitionInfo(k), ds.WindowStart, ds.WindowEnd}
				var hash string
				hash, errs[k] = core.WritePartitionContent(filepath.Join(dir, core.PartitionFileName(k)), ds, 0, core.DiskFormatVersion)
				snaps[k].info.ContentHash = hash
			}
		}()
	}
	for k := 0; k < n; k++ {
		next <- k
	}
	close(next)
	wg.Wait()
	for k, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("synth: spill partition %d: %w", k, err)
		}
	}

	m := &core.Manifest{Scale: cfg.Scale, Seed: cfg.Seed, SharedIndex: false}
	for k := range snaps {
		m.AddPartition(snaps[k].info, snaps[k].windowStart, snaps[k].windowEnd)
		m.Partitions[k].Seed = partitionSeed(cfg.Seed, k)
	}
	if err := core.WriteManifest(dir, m); err != nil {
		return nil, err
	}
	return m, nil
}
