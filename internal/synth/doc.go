// Package synth generates synthetic Bluesky measurement corpora whose
// distributions are calibrated to every number reported in the paper:
// platform growth, language communities, handle concentration,
// registrar shares, the labeler ecosystem with its reaction-time
// regimes, and the feed generator economy (see DESIGN.md §2 for the
// full target list).
//
// # Determinism
//
// Generation is deterministic in (Scale, Seed) at any parallelism
// level. Scale divides the paper's absolute counts (1:1000 for tests,
// 1:400 for benches); structural small-N populations — labelers,
// FGaaS platforms, top registrars — keep their absolute sizes because
// the paper's tables are about their identities, not their magnitude.
// Each generation stage draws from its own RNG stream
// (seed ⊕ stage·φ64), and the heavy stages fan out over fixed 8-way
// sub-streams, so stages run concurrently while the output stays
// byte-for-byte reproducible (DESIGN.md §3).
//
// # Producers, smallest to largest
//
//	Generate            one materialized core.Dataset — the reference
//	                    corpus every parity golden compares against
//	GeneratePartitioned n independent datasets on disjoint per-partition
//	                    RNG sub-streams (seed ⊕ (1000+k)·φ64), one per
//	                    simulated repo-crawl shard, plus the
//	                    core.Manifest describing them; volume targets
//	                    divide by n, corpus-level facts (labeler
//	                    enumeration, activity/firehose series) are
//	                    generated once and shared
//	GeneratePartitionedTo  the same corpus spilled straight to a
//	                    disk-backed partition store: each partition is
//	                    generated, written, and released before its
//	                    worker takes the next, so memory stays bounded
//	                    by one resident partition per worker at any n —
//	                    generation for corpora larger than RAM
//	Replay              a dataset played through in-process firehose +
//	                    labeler sequencers as record-block frames, for
//	                    streaming consumers (bskyanalyze -follow)
//
// The partition set is not byte-identical to Generate's monolith (the
// RNG streams are disjoint by construction), but evaluating it through
// the analysis two-level merge matches the flat evaluation of the
// concatenated partitions exactly, and the spilled store is
// record-identical to the in-memory partition set
// (TestSpillMatchesInMemory).
package synth
