package synth

import (
	"reflect"
	"runtime"
	"testing"
)

// datasetsEqual deep-compares two generated datasets field by field,
// reporting the first diverging section for debuggability.
func datasetsEqual(t *testing.T, label string, a, b interface{}) {
	t.Helper()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("%s: datasets diverge", label)
	}
}

// TestParallelMatchesSequential pins the concurrency contract of the
// staged generator: the parallel schedule must emit exactly the bytes
// of the strictly serial reference path.
func TestParallelMatchesSequential(t *testing.T) {
	cfg := Config{Scale: 1000, Seed: 42}
	seq := generateSequential(cfg)
	par := Generate(cfg)
	for _, section := range []struct {
		name string
		a, b any
	}{
		{"Users", seq.Users, par.Users},
		{"Posts", seq.Posts, par.Posts},
		{"Daily", seq.Daily, par.Daily},
		{"Firehose", seq.Firehose, par.Firehose},
		{"Labels", seq.Labels, par.Labels},
		{"Labelers", seq.Labelers, par.Labelers},
		{"FeedGens", seq.FeedGens, par.FeedGens},
		{"HandleUpdates", seq.HandleUpdates, par.HandleUpdates},
		{"Domains", seq.Domains, par.Domains},
	} {
		datasetsEqual(t, section.name, section.a, section.b)
	}
}

// TestDeterminismAcrossGOMAXPROCS generates the same world under
// GOMAXPROCS 1, 2, and 8 and requires byte-identical output: the
// shard fan-out is a fixed constant, never derived from the runtime,
// so parallelism level must not leak into the dataset.
func TestDeterminismAcrossGOMAXPROCS(t *testing.T) {
	cfg := Config{Scale: 2000, Seed: 7}
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)

	runtime.GOMAXPROCS(1)
	ref := Generate(cfg)
	for _, procs := range []int{2, 8} {
		runtime.GOMAXPROCS(procs)
		got := Generate(cfg)
		if !reflect.DeepEqual(ref, got) {
			t.Fatalf("GOMAXPROCS=%d dataset differs from GOMAXPROCS=1", procs)
		}
	}
}

// TestRepeatedGenerationIdentical guards against hidden run-to-run
// nondeterminism (map-iteration randomness consuming RNG draws) by
// comparing two full generations in the same process.
func TestRepeatedGenerationIdentical(t *testing.T) {
	cfg := Config{Scale: 1000, Seed: 11}
	a := Generate(cfg)
	b := Generate(cfg)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("two generations with identical (Scale, Seed) differ")
	}
}
