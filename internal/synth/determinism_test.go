package synth

import (
	"reflect"
	"runtime"
	"testing"
)

// datasetsEqual deep-compares two generated datasets field by field,
// reporting the first diverging section for debuggability.
func datasetsEqual(t *testing.T, label string, a, b interface{}) {
	t.Helper()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("%s: datasets diverge", label)
	}
}

// TestParallelMatchesSequential pins the concurrency contract of the
// staged generator: the parallel schedule must emit exactly the bytes
// of the strictly serial reference path.
func TestParallelMatchesSequential(t *testing.T) {
	cfg := Config{Scale: 1000, Seed: 42}
	seq := generateSequential(cfg)
	par := Generate(cfg)
	for _, section := range []struct {
		name string
		a, b any
	}{
		{"Users", seq.Users, par.Users},
		{"Posts", seq.Posts, par.Posts},
		{"Daily", seq.Daily, par.Daily},
		{"Firehose", seq.Firehose, par.Firehose},
		{"Labels", seq.Labels, par.Labels},
		{"Labelers", seq.Labelers, par.Labelers},
		{"FeedGens", seq.FeedGens, par.FeedGens},
		{"HandleUpdates", seq.HandleUpdates, par.HandleUpdates},
		{"Domains", seq.Domains, par.Domains},
	} {
		datasetsEqual(t, section.name, section.a, section.b)
	}
}

// TestDeterminismAcrossGOMAXPROCS generates the same world under
// GOMAXPROCS 1, 2, and 8 and requires byte-identical output: the
// shard fan-out is a fixed constant, never derived from the runtime,
// so parallelism level must not leak into the dataset.
func TestDeterminismAcrossGOMAXPROCS(t *testing.T) {
	cfg := Config{Scale: 2000, Seed: 7}
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)

	runtime.GOMAXPROCS(1)
	ref := Generate(cfg)
	for _, procs := range []int{2, 8} {
		runtime.GOMAXPROCS(procs)
		got := Generate(cfg)
		if !reflect.DeepEqual(ref, got) {
			t.Fatalf("GOMAXPROCS=%d dataset differs from GOMAXPROCS=1", procs)
		}
	}
}

// TestModerationShardingMatchesSequential pins the historic-label
// fan-out of genModeration the same way genPosts' sharding is pinned:
// the parallel sub-stream schedule must emit exactly the label stream
// of the serial reference path, on a scale where the historic loop
// spans every shard (1:400 → 4,500 historic labels across 8 shards).
func TestModerationShardingMatchesSequential(t *testing.T) {
	cfg := Config{Scale: 400, Seed: 5}
	seq := generateSequential(cfg)
	par := Generate(cfg)
	if len(seq.Labels) != len(par.Labels) {
		t.Fatalf("label counts diverge: seq=%d par=%d", len(seq.Labels), len(par.Labels))
	}
	for i := range seq.Labels {
		if !reflect.DeepEqual(seq.Labels[i], par.Labels[i]) {
			t.Fatalf("label %d diverges:\nseq: %+v\npar: %+v", i, seq.Labels[i], par.Labels[i])
		}
	}
	datasetsEqual(t, "Labelers", seq.Labelers, par.Labelers)
}

// TestRepeatedGenerationIdentical guards against hidden run-to-run
// nondeterminism (map-iteration randomness consuming RNG draws) by
// comparing two full generations in the same process.
func TestRepeatedGenerationIdentical(t *testing.T) {
	cfg := Config{Scale: 1000, Seed: 11}
	a := Generate(cfg)
	b := Generate(cfg)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("two generations with identical (Scale, Seed) differ")
	}
}
