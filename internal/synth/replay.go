package synth

import (
	"fmt"

	"blueskies/internal/core"
	"blueskies/internal/events"
)

// ReplayBlockSize is the default number of records per replayed frame.
const ReplayBlockSize = 2048

// Replay plays a generated dataset through event sequencers the way
// the live network delivers it: the corpus header, the labeler
// population, and the non-label record collections go to the firehose
// sequencer as #sim.block frames; labels go to the labeler sequencer
// as labeler-stream frames (with the sim-extension fields that make
// the round trip lossless). Both streams end with an end-of-stream
// marker. labeler may equal fire to multiplex everything onto one
// stream.
//
// Each collection is emitted in dataset order, so a streaming consumer
// reconstructs exactly the state of a one-worker batch traversal —
// the deterministic-replay contract the stream/batch parity tests pin.
func Replay(ds *core.Dataset, fire, labeler *events.Sequencer, blockSize int) error {
	if blockSize <= 0 {
		blockSize = ReplayBlockSize
	}
	emit := func(seq *events.Sequencer, ev any) error {
		_, err := seq.Emit(func(s int64) any {
			switch e := ev.(type) {
			case *events.Sim:
				e.Seq = s
			case *events.Labels:
				e.Seq = s
			}
			return ev
		})
		return err
	}
	emitBlock := func(b *core.RecordBlock) error {
		ev, err := core.BlockEvent(b)
		if err != nil {
			return err
		}
		return emit(fire, ev)
	}

	// Header and labeler announcements first: stream consumers need
	// the labeler DID index before the first label arrives.
	if err := emitBlock(&core.RecordBlock{
		Header: &core.StreamHeader{
			Scale:         ds.Scale,
			WindowStart:   ds.WindowStart,
			WindowEnd:     ds.WindowEnd,
			Firehose:      ds.Firehose,
			NonBskyEvents: ds.NonBskyEvents,
		},
		Labelers: ds.Labelers,
	}); err != nil {
		return fmt.Errorf("synth: replay header: %w", err)
	}

	for lo := 0; lo < len(ds.Users); lo += blockSize {
		hi := min(lo+blockSize, len(ds.Users))
		if err := emitBlock(&core.RecordBlock{Users: ds.Users[lo:hi]}); err != nil {
			return err
		}
	}
	for lo := 0; lo < len(ds.Posts); lo += blockSize {
		hi := min(lo+blockSize, len(ds.Posts))
		if err := emitBlock(&core.RecordBlock{Posts: ds.Posts[lo:hi]}); err != nil {
			return err
		}
	}
	for lo := 0; lo < len(ds.Daily); lo += blockSize {
		hi := min(lo+blockSize, len(ds.Daily))
		if err := emitBlock(&core.RecordBlock{Days: ds.Daily[lo:hi]}); err != nil {
			return err
		}
	}
	for lo := 0; lo < len(ds.FeedGens); lo += blockSize {
		hi := min(lo+blockSize, len(ds.FeedGens))
		if err := emitBlock(&core.RecordBlock{FeedGens: ds.FeedGens[lo:hi]}); err != nil {
			return err
		}
	}
	for lo := 0; lo < len(ds.Domains); lo += blockSize {
		hi := min(lo+blockSize, len(ds.Domains))
		if err := emitBlock(&core.RecordBlock{Domains: ds.Domains[lo:hi]}); err != nil {
			return err
		}
	}
	for lo := 0; lo < len(ds.HandleUpdates); lo += blockSize {
		hi := min(lo+blockSize, len(ds.HandleUpdates))
		if err := emitBlock(&core.RecordBlock{HandleUpdates: ds.HandleUpdates[lo:hi]}); err != nil {
			return err
		}
	}
	for lo := 0; lo < len(ds.Labels); lo += blockSize {
		hi := min(lo+blockSize, len(ds.Labels))
		if err := emit(labeler, core.LabelsEvent(ds.Labels[lo:hi])); err != nil {
			return err
		}
	}
	if err := emit(fire, core.EOFEvent()); err != nil {
		return err
	}
	if labeler != fire {
		if err := emit(labeler, core.EOFEvent()); err != nil {
			return err
		}
	}
	return nil
}
