package synth

import (
	"fmt"

	"blueskies/internal/core"
	"blueskies/internal/events"
)

// ReplayBlockSize is the default number of records per replayed frame.
const ReplayBlockSize = 2048

// Stream indices of the two replay destinations, as seen by consumers
// that address streams positionally (core.DrainSequencersFaulted,
// ReplayHooks.OnEmit). When labeler == fire everything multiplexes
// onto StreamFirehose.
const (
	StreamFirehose = 0
	StreamLabeler  = 1
)

// ReplayHooks instruments a replay without changing what it emits.
type ReplayHooks struct {
	// BlockSize overrides the records-per-frame chunking
	// (<= 0 means ReplayBlockSize).
	BlockSize int
	// OnEmit, when non-nil, fires after every emitted frame with the
	// destination stream (StreamFirehose/StreamLabeler) and the
	// sequence number the sequencer assigned. It runs on the replay
	// goroutine — scenario harnesses use it to sample sequencer
	// backlogs and pace storms; keep it cheap.
	OnEmit func(stream int, seq int64)
}

// Replay plays a generated dataset through event sequencers the way
// the live network delivers it: the corpus header, the labeler
// population, and the non-label record collections go to the firehose
// sequencer as #sim.block frames; labels go to the labeler sequencer
// as labeler-stream frames (with the sim-extension fields that make
// the round trip lossless). Both streams end with an end-of-stream
// marker. labeler may equal fire to multiplex everything onto one
// stream.
//
// Each collection is emitted in dataset order, so a streaming consumer
// reconstructs exactly the state of a one-worker batch traversal —
// the deterministic-replay contract the stream/batch parity tests pin.
func Replay(ds *core.Dataset, fire, labeler *events.Sequencer, blockSize int) error {
	return ReplayWithHooks(ds, fire, labeler, ReplayHooks{BlockSize: blockSize})
}

// ReplayFrames reports how many frames a Replay of ds emits on each
// stream (header + per-collection record blocks + end-of-stream
// marker), so fault schedules can target meaningful sequence numbers
// without replaying first. With labeler == fire the streams multiplex
// and the firehose carries fire+labeler frames minus one marker.
func ReplayFrames(ds *core.Dataset, blockSize int) (fire, labeler int64) {
	if blockSize <= 0 {
		blockSize = ReplayBlockSize
	}
	nb := func(n int) int64 {
		return int64((n + blockSize - 1) / blockSize)
	}
	fire = 1 + // header + labeler announcements
		nb(len(ds.Users)) + nb(len(ds.Posts)) + nb(len(ds.Daily)) +
		nb(len(ds.FeedGens)) + nb(len(ds.Domains)) + nb(len(ds.HandleUpdates)) +
		1 // end-of-stream marker
	labeler = nb(len(ds.Labels)) + 1
	return fire, labeler
}

// ReplayWithHooks is Replay with scenario instrumentation attached.
func ReplayWithHooks(ds *core.Dataset, fire, labeler *events.Sequencer, h ReplayHooks) error {
	blockSize := h.BlockSize
	if blockSize <= 0 {
		blockSize = ReplayBlockSize
	}
	emitTo := func(seq *events.Sequencer, stream int, ev any) error {
		s, err := seq.Emit(func(s int64) any {
			switch e := ev.(type) {
			case *events.Sim:
				e.Seq = s
			case *events.Labels:
				e.Seq = s
			}
			return ev
		})
		if err == nil && h.OnEmit != nil {
			h.OnEmit(stream, s)
		}
		return err
	}
	emit := func(seq *events.Sequencer, ev any) error {
		stream := StreamFirehose
		if seq == labeler && labeler != fire {
			stream = StreamLabeler
		}
		return emitTo(seq, stream, ev)
	}
	emitBlock := func(b *core.RecordBlock) error {
		ev, err := core.BlockEvent(b)
		if err != nil {
			return err
		}
		return emit(fire, ev)
	}

	// Header and labeler announcements first: stream consumers need
	// the labeler DID index before the first label arrives.
	if err := emitBlock(&core.RecordBlock{
		Header: &core.StreamHeader{
			Scale:         ds.Scale,
			WindowStart:   ds.WindowStart,
			WindowEnd:     ds.WindowEnd,
			Firehose:      ds.Firehose,
			NonBskyEvents: ds.NonBskyEvents,
		},
		Labelers: ds.Labelers,
	}); err != nil {
		return fmt.Errorf("synth: replay header: %w", err)
	}

	for lo := 0; lo < len(ds.Users); lo += blockSize {
		hi := min(lo+blockSize, len(ds.Users))
		if err := emitBlock(&core.RecordBlock{Users: ds.Users[lo:hi]}); err != nil {
			return err
		}
	}
	for lo := 0; lo < len(ds.Posts); lo += blockSize {
		hi := min(lo+blockSize, len(ds.Posts))
		if err := emitBlock(&core.RecordBlock{Posts: ds.Posts[lo:hi]}); err != nil {
			return err
		}
	}
	for lo := 0; lo < len(ds.Daily); lo += blockSize {
		hi := min(lo+blockSize, len(ds.Daily))
		if err := emitBlock(&core.RecordBlock{Days: ds.Daily[lo:hi]}); err != nil {
			return err
		}
	}
	for lo := 0; lo < len(ds.FeedGens); lo += blockSize {
		hi := min(lo+blockSize, len(ds.FeedGens))
		if err := emitBlock(&core.RecordBlock{FeedGens: ds.FeedGens[lo:hi]}); err != nil {
			return err
		}
	}
	for lo := 0; lo < len(ds.Domains); lo += blockSize {
		hi := min(lo+blockSize, len(ds.Domains))
		if err := emitBlock(&core.RecordBlock{Domains: ds.Domains[lo:hi]}); err != nil {
			return err
		}
	}
	for lo := 0; lo < len(ds.HandleUpdates); lo += blockSize {
		hi := min(lo+blockSize, len(ds.HandleUpdates))
		if err := emitBlock(&core.RecordBlock{HandleUpdates: ds.HandleUpdates[lo:hi]}); err != nil {
			return err
		}
	}
	for lo := 0; lo < len(ds.Labels); lo += blockSize {
		hi := min(lo+blockSize, len(ds.Labels))
		if err := emit(labeler, core.LabelsEvent(ds.Labels[lo:hi])); err != nil {
			return err
		}
	}
	if err := emit(fire, core.EOFEvent()); err != nil {
		return err
	}
	if labeler != fire {
		if err := emit(labeler, core.EOFEvent()); err != nil {
			return err
		}
	}
	return nil
}
