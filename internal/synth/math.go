package synth

import "math"

// Thin wrappers over math for the samplers; isolated here so the
// samplers read cleanly and can be unit-tested.

func exp(x float64) float64            { return math.Exp(x) }
func pow(x, y float64) float64         { return math.Pow(x, y) }
func logf(x float64) float64           { return math.Log(x) }
func lerp(a, b, t float64) float64     { return a + (b-a)*t }
func clampF(x, lo, hi float64) float64 { return math.Min(math.Max(x, lo), hi) }
