package synth

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"blueskies/internal/core"
)

// histShards is the fixed fan-out of the historic-label loop — a
// constant, not GOMAXPROCS, so the dataset is identical at any
// parallelism (same rule as postShards).
const histShards = 8

// labelerSpec encodes one labeler from Table 6 / Table 3: its label
// volume on fresh posts, top values, median reaction time with
// inter-quartile spread, and operational character.
type labelerSpec struct {
	Name      string
	Official  bool
	Values    []string
	Count     int     // labels applied to fresh posts (Table 6)
	MedianRT  float64 // seconds
	SigmaRT   float64 // log-normal spread
	Automated bool
	Hosting   string
	Likes     int
	Operator  string
	About     string
}

// labelerSpecs reproduces the active labeler population: the official
// Bluesky labeler plus the community services of Tables 3 and 6.
var labelerSpecs = []labelerSpec{
	{Name: "Bluesky Moderation", Official: true,
		Values: []string{"porn", "sexual", "nudity", "graphic-media", "corpse", "gore", "spam", "sexual-figurative", "intolerant", "rude", "threat", "!takedown", "!warn", "!hide"},
		Count:  279_002, MedianRT: 1.76, SigmaRT: 0.9, Automated: true, Hosting: "cloud",
		Operator: "Bluesky PBC", About: "official moderation"},
	{Name: "Bad Accessibility / Alt Text Labeler",
		Values: []string{"no-alt-text", "non-alt-text", "mis-alt-text", "alt-text-ok"},
		Count:  1_360_224, MedianRT: 0.58, SigmaRT: 0.3, Automated: true, Hosting: "cloud",
		Likes: 99, Operator: "@baatl.bsky.social", About: "Labels posts for missing/invalid alt text."},
	{Name: "XBlock Screenshot Labeler",
		Values: []string{"twitter-screenshot", "bluesky-screenshot", "uncategorised-screenshot", "tumblr-screenshot"},
		Count:  76_599, MedianRT: 3.70, SigmaRT: 1.1, Automated: true, Hosting: "cloud",
		Likes: 301, Operator: "@aendra.com", About: "Uses a machine-learning model to classify screenshots by origin."},
	{Name: "No GIFS Please",
		Values: []string{"tenor-gif", "tenor-gif-no-text"},
		Count:  73_875, MedianRT: 0.35, SigmaRT: 0.4, Automated: true, Hosting: "cloud",
		Likes: 88, About: "Labels GIFs."},
	{Name: "AI Imagery Labeler",
		Values: []string{"ai-imagery"},
		Count:  56_517, MedianRT: 0.82, SigmaRT: 0.35, Automated: true, Hosting: "cloud",
		Likes: 546, About: "Labels AI-related posts by hashtags."},
	{Name: "@ff14labeler.bsky.social",
		Values: []string{"shadowbringers", "endwalker", "dawntrail", "stormblood", "heavensward", "arr"},
		Count:  10_024, MedianRT: 2.07, SigmaRT: 0.7, Automated: true, Hosting: "cloud",
		Likes: 15, Operator: "@usounds.work", About: "Labels Final Fantasy 14 content spoilers."},
	{Name: "AI Related Content",
		Values: []string{"ai-related-content", "spoiler", "test-label"},
		Count:  7_646, MedianRT: 1.32, SigmaRT: 0.6, Automated: true, Hosting: "cloud"},
	{Name: "Community Safety",
		Values: []string{"trolling", "transphobia", "racial-intolerance", "harassment"},
		Count:  876, MedianRT: 13_911.90, SigmaRT: 2.2, Automated: false, Hosting: "cloud"},
	{Name: "Fur Labels",
		Values: []string{"pup", "fatfur", "diaper", "anthro"},
		Count:  631, MedianRT: 34_408.43, SigmaRT: 2.1, Automated: false, Hosting: "residential"},
	{Name: "Beans",
		Values: []string{"beans"},
		Count:  49, MedianRT: 90.39, SigmaRT: 2.8, Automated: false, Hosting: "residential"},
	{Name: "Vibes Patrol",
		Values: []string{"simping", "bad-selfies", "cringe", "yelling", "oversharing"},
		Count:  32, MedianRT: 70_413.53, SigmaRT: 2.4, Automated: false, Hosting: "residential"},
	{Name: "Link Quality",
		Values: []string{"lowquality", "shorturl", "unknown-source"},
		Count:  26, MedianRT: 104_584.57, SigmaRT: 2.6, Automated: false, Hosting: "cloud"},
	{Name: "ALF Appreciation",
		Values: []string{"alf", "sensual-alf", "the-format"},
		Count:  18, MedianRT: 38_417.71, SigmaRT: 2.2, Automated: false, Hosting: "residential"},
	{Name: "Severity Tester",
		Values: []string{"severity-alert-blurs-content", "severity-alert-blurs-media", "severity-alert-blurs-none"},
		Count:  18, MedianRT: 937.55, SigmaRT: 1.4, Automated: false, Hosting: "cloud"},
	{Name: "JP Spam Watch",
		Values: []string{"spam-aff-ja", "spam", "porn"},
		Count:  16, MedianRT: 534_935.10, SigmaRT: 1.8, Automated: false, Hosting: "cloud"},
	{Name: "Based Detector",
		Values: []string{"so-true", "epic", "based", "ratio"},
		Count:  16, MedianRT: 526.03, SigmaRT: 2.5, Automated: false, Hosting: "residential"},
	{Name: "Trigger Warnings",
		Values: []string{"!warn", "threat", "triggerwarning", "violence"},
		Count:  14, MedianRT: 109_931.10, SigmaRT: 2.7, Automated: false, Hosting: "cloud"},
	{Name: "Phobia Screens",
		Values: []string{"coulro", "arachno", "lepidoptero", "ophidio", "trypo"},
		Count:  11, MedianRT: 260_511.95, SigmaRT: 2.3, Automated: false, Hosting: "residential"},
	{Name: "Discourse Meter",
		Values: []string{"neutral-pro-discourse", "anti-discourse"},
		Count:  10, MedianRT: 2_120.64, SigmaRT: 3.0, Automated: false, Hosting: "cloud"},
	{Name: "Spoiler Shield",
		Values: []string{"spoilers", "!no-promote", "!no-unauthenticated"},
		Count:  4, MedianRT: 1_585_404.55, SigmaRT: 2.0, Automated: false, Hosting: "cloud"},
	{Name: "Nipps",
		Values: []string{"nipps", "no-church", "non-handshake"},
		Count:  4, MedianRT: 154_416.53, SigmaRT: 1.6, Automated: false, Hosting: "cloud"},
	{Name: "Generic Warnings",
		Values: []string{"!warn", "porn", "spam"},
		Count:  3, MedianRT: 5_203.95, SigmaRT: 2.4, Automated: false, Hosting: "cloud"},
	{Name: "Disinfo Watch",
		Values: []string{"amplifying-disinfo"},
		Count:  3, MedianRT: 5_445.06, SigmaRT: 1.5, Automated: false, Hosting: "cloud"},
	{Name: "Bean Haters",
		Values: []string{"beanhate", "feature-scold"},
		Count:  2, MedianRT: 5_900.41, SigmaRT: 1.2, Automated: false, Hosting: "residential"},
}

// Announced-but-silent labelers complete the §6.1 population: 62
// announced, 46 functional, 36 with ≥1 label.
const (
	totalAnnouncedLabelers  = 62
	functionalLabelers      = 46
	activeLabelers          = 36
	officialHistoricalScale = 6.5 // official labels before the window ≈ 1.8M
	communityAprilShare     = 0.887
)

// Label target mix (Table 4).
const (
	sharePostTargets    = 0.9963
	shareAccountTargets = 0.0023
	shareMediaTargets   = 0.0014
)

// genLabelers generates the standalone labeler enumeration — the
// corpus-level population a partitioned generation shares across all
// partitions (labels are attributed by labeler index, so every
// partition must agree on the enumeration).
func genLabelers(rng *rand.Rand) []core.Labeler {
	tmp := &core.Dataset{}
	genLabelerPopulation(tmp, rng)
	return tmp.Labelers
}

// genModeration builds the labeler population (unless one was injected
// — a partitioned generation shares the corpus enumeration) and the
// label stream. The labeler population, the per-labeler spec streams,
// and the rescind pass draw serially from the stage RNG; the
// historic-label loop — the stage's dominant cost after scaling — fans
// out over histShards fixed sub-streams the same way genPosts does, so
// the output is byte-identical at any parallelism level. part tags
// this partition's synthetic historic subjects so independent
// partitions never collide on URIs.
func genModeration(ds *core.Dataset, seed int64, sequential bool, part int) {
	rng := stageRNG(seed, stageModeration)
	if len(ds.Labelers) == 0 {
		genLabelerPopulation(ds, rng)
	}
	genLabels(ds, rng, seed, sequential, part)
}

// genLabelerPopulation appends the §6.1 labeler population to ds.
func genLabelerPopulation(ds *core.Dataset, rng *rand.Rand) {
	// Active labelers from the spec table.
	specCount := len(labelerSpecs)
	for i, spec := range labelerSpecs {
		announced := LabelersOpen.AddDate(0, 0, rng.Intn(30))
		if spec.Official {
			announced = OfficialLbl
		}
		ds.Labelers = append(ds.Labelers, core.Labeler{
			DID:        fmt.Sprintf("did:plc:labeler%017d", i),
			Name:       spec.Name,
			Official:   spec.Official,
			Values:     spec.Values,
			Announced:  announced,
			Functional: true,
			Active:     spec.Count > 0,
			Hosting:    spec.Hosting,
			Automated:  spec.Automated,
			Likes:      spec.Likes,
			Operator:   spec.Operator,
			About:      spec.About,
		})
	}
	// Active-but-tiny labelers beyond the spec table (1–2 labels).
	for i := specCount; i < activeLabelers; i++ {
		ds.Labelers = append(ds.Labelers, core.Labeler{
			DID:        fmt.Sprintf("did:plc:labeler%017d", i),
			Name:       fmt.Sprintf("Tiny Labeler %d", i),
			Values:     []string{fmt.Sprintf("test-%d", i)},
			Announced:  LabelersOpen.AddDate(0, 0, rng.Intn(40)),
			Functional: true, Active: true,
			Hosting: "cloud", Automated: false,
		})
	}
	// Functional but silent.
	for i := activeLabelers; i < functionalLabelers; i++ {
		ds.Labelers = append(ds.Labelers, core.Labeler{
			DID:        fmt.Sprintf("did:plc:labeler%017d", i),
			Name:       fmt.Sprintf("Silent Labeler %d", i),
			Values:     []string{"unused"},
			Announced:  LabelersOpen.AddDate(0, 0, rng.Intn(40)),
			Functional: true,
			Hosting:    "cloud",
		})
	}
	// Announced, never functional (endpoint unreachable).
	for i := functionalLabelers; i < totalAnnouncedLabelers; i++ {
		ds.Labelers = append(ds.Labelers, core.Labeler{
			DID:       fmt.Sprintf("did:plc:labeler%017d", i),
			Name:      fmt.Sprintf("Ghost Labeler %d", i),
			Values:    []string{"unknown"},
			Announced: LabelersOpen.AddDate(0, 0, rng.Intn(45)),
			Hosting:   "unknown",
		})
	}
}

// genLabels builds the label stream against ds.Labelers.
func genLabels(ds *core.Dataset, rng *rand.Rand, seed int64, sequential bool, part int) {
	// Label stream. Every labeler's volume shrinks by the same
	// divisor (capped at 200 so the Table 6 tail keeps ≥3 samples),
	// which preserves the rank ordering of Tables 3 and 6 at any
	// scale.
	divisor := ds.Scale
	if divisor > 200 {
		divisor = 200
	}
	for li, spec := range labelerSpecs {
		count := spec.Count / divisor
		if count < 3 {
			count = 3
		}
		lblDID := ds.Labelers[li].DID
		for i := 0; i < count; i++ {
			l := core.Label{Src: lblDID}
			// Value: first value dominates (Table 6 top values).
			vi := 0
			if len(spec.Values) > 1 && rng.Float64() < 0.25 {
				vi = 1 + rng.Intn(len(spec.Values)-1)
			}
			l.Val = spec.Values[vi]
			// Target mix (Table 4).
			switch u := rng.Float64(); {
			case u < sharePostTargets:
				l.Kind = core.SubjectPost
			case u < sharePostTargets+shareAccountTargets:
				l.Kind = core.SubjectAccount
			case u < sharePostTargets+shareAccountTargets+shareMediaTargets:
				l.Kind = core.SubjectMedia
			default:
				l.Kind = core.SubjectOther
			}
			if l.Kind == core.SubjectPost && len(ds.Posts) > 0 {
				p := &ds.Posts[rng.Intn(len(ds.Posts))]
				l.URI = p.URI
				l.SubjectCreated = p.CreatedAt
				l.FreshSubject = true
			} else {
				// Field reads, not a struct copy: this stage runs in
				// parallel with genFeedGens, which writes the (disjoint)
				// Following/Followers fields of the same users.
				target := &ds.Users[rng.Intn(len(ds.Users))]
				l.URI = target.DID
				l.SubjectCreated = target.CreatedAt
			}
			// Reaction time from the labeler's regime.
			rt := lognormal(rng, spec.MedianRT, spec.SigmaRT)
			l.Applied = l.SubjectCreated.Add(floatSecs(rt))
			if l.Applied.After(WindowEnd) {
				l.Applied = WindowEnd.Add(-time.Minute)
			}
			if !spec.Official && l.Applied.Before(LabelersOpen) {
				l.Applied = LabelersOpen.Add(floatSecs(rt))
			}
			ds.Labels = append(ds.Labels, l)
		}
	}
	// The official labeler's historical labels (Apr 2023 → window):
	// spread proportional to activity; these dominate the all-time
	// total but not the April community share (Figure 4). The loop
	// fills histShards disjoint index ranges, each from its own
	// deterministic RNG stream.
	histCount := scaled(1_800_000, ds.Scale, 900)
	official := ds.Labelers[0]
	days := int(WindowStart.Sub(OfficialLbl).Hours() / 24)
	hist := make([]core.Label, histCount)
	fill := func(shard int) {
		srng := stageRNG(seed, stageHistShard0+uint64(shard))
		lo, hi := histCount*shard/histShards, histCount*(shard+1)/histShards
		for i := lo; i < hi; i++ {
			// Weight towards recent months (activity grew).
			f := pow(srng.Float64(), 0.45)
			day := OfficialLbl.AddDate(0, 0, int(f*float64(days)))
			val := official.Values[srng.Intn(3)] // porn / sexual / nudity
			created := day.Add(-secsDuration(int64(lognormal(srng, 600, 1.5))))
			hist[i] = core.Label{
				Src: official.DID, Val: val, Kind: core.SubjectPost,
				URI:            fmt.Sprintf("at://did:plc:historic%03d/app.bsky.feed.post/3h%011d", part, i),
				SubjectCreated: created,
				Applied:        day,
			}
		}
	}
	if sequential {
		for shard := 0; shard < histShards; shard++ {
			fill(shard)
		}
	} else {
		var wg sync.WaitGroup
		for shard := 0; shard < histShards; shard++ {
			wg.Add(1)
			go func(shard int) {
				defer wg.Done()
				fill(shard)
			}(shard)
		}
		wg.Wait()
	}
	ds.Labels = append(ds.Labels, hist...)
	// Rescinded labels (negations) — 23,394 of 3.4M.
	negCount := scaled(TargetRescinded, ds.Scale, 12)
	for i := 0; i < negCount && i < len(ds.Labels); i++ {
		orig := ds.Labels[rng.Intn(len(ds.Labels))]
		ds.Labels = append(ds.Labels, core.Label{
			Src: orig.Src, URI: orig.URI, Val: orig.Val, Neg: true, Kind: orig.Kind,
			SubjectCreated: orig.SubjectCreated,
			Applied:        orig.Applied.Add(secsDuration(int64(lognormal(rng, 3_600, 1.0)))),
		})
	}
}

func secsDuration(s int64) time.Duration { return time.Duration(s) * time.Second }

// floatSecs converts fractional seconds without truncating sub-second
// reaction times (the fastest labelers react in ~0.35 s).
func floatSecs(s float64) time.Duration { return time.Duration(s * float64(time.Second)) }
