package synth

import (
	"reflect"
	"runtime"
	"strings"
	"testing"

	"blueskies/internal/core"
)

// TestUserShardingDeterminism pins the genUsers fan-out the same way
// the posts and historic-label shardings are pinned: the 8 fixed user
// RNG sub-streams must emit the identical population under GOMAXPROCS
// 1 and 8, and the parallel schedule must equal the strictly serial
// reference path.
func TestUserShardingDeterminism(t *testing.T) {
	cfg := Config{Scale: 400, Seed: 5} // ~13.8K users span all 8 shards
	seq := generateSequential(cfg)
	par := Generate(cfg)
	if !reflect.DeepEqual(seq.Users, par.Users) {
		t.Fatal("sharded genUsers: parallel schedule diverges from serial reference")
	}
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	runtime.GOMAXPROCS(1)
	one := Generate(cfg)
	runtime.GOMAXPROCS(8)
	eight := Generate(cfg)
	if !reflect.DeepEqual(one.Users, eight.Users) {
		t.Fatal("genUsers differs between GOMAXPROCS=1 and GOMAXPROCS=8")
	}
}

// TestGeneratePartitionedDeterministic requires partitioned generation
// to be byte-identical run to run and across parallelism levels: the
// partition streams are fixed functions of (Scale, Seed, n), never of
// scheduling.
func TestGeneratePartitionedDeterministic(t *testing.T) {
	cfg := Config{Scale: 1000, Seed: 7}
	a, ma := GeneratePartitioned(cfg, 4)
	b, mb := GeneratePartitioned(cfg, 4)
	if !reflect.DeepEqual(a, b) || !reflect.DeepEqual(ma, mb) {
		t.Fatal("two partitioned generations with identical (Scale, Seed, n) differ")
	}
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	runtime.GOMAXPROCS(1)
	one, _ := GeneratePartitioned(cfg, 4)
	runtime.GOMAXPROCS(8)
	eight, _ := GeneratePartitioned(cfg, 4)
	if !reflect.DeepEqual(one, eight) {
		t.Fatal("partitioned generation differs between GOMAXPROCS=1 and GOMAXPROCS=8")
	}
}

// TestGeneratePartitionedShape pins the partition contract: shared
// labeler enumeration, corpus-level facts on partition 0 only,
// disjoint identifier spaces, and a manifest whose bases are prefix
// sums in partition order.
func TestGeneratePartitionedShape(t *testing.T) {
	const n = 3
	parts, m := GeneratePartitioned(Config{Scale: 1000, Seed: 11}, n)
	if len(parts) != n || len(m.Partitions) != n {
		t.Fatalf("%d parts, %d manifest entries, want %d", len(parts), len(m.Partitions), n)
	}
	if m.SharedIndex {
		t.Fatal("independent partitions must not claim corpus-global indexes")
	}
	if m.Scale != 1000 || m.Seed != 11 {
		t.Fatalf("manifest corpus facts wrong: %+v", m)
	}
	var base core.CollectionCounts
	seen := map[int64]bool{}
	for k, p := range parts {
		if !reflect.DeepEqual(p.Labelers, parts[0].Labelers) {
			t.Fatalf("partition %d labeler enumeration diverges", k)
		}
		if len(p.Users) == 0 || len(p.Posts) == 0 || len(p.Labels) == 0 {
			t.Fatalf("partition %d is missing volume collections: %+v", k, p.Counts())
		}
		if k > 0 {
			if len(p.Daily) != 0 || p.Firehose.Total() != 0 || p.NonBskyEvents != 0 {
				t.Fatalf("partition %d carries corpus-level facts (double counting)", k)
			}
		} else if len(p.Daily) == 0 || p.Firehose.Total() == 0 {
			t.Fatal("partition 0 must carry the firehose window facts")
		}
		if m.Partitions[k].Base != base {
			t.Fatalf("partition %d base = %+v, want %+v", k, m.Partitions[k].Base, base)
		}
		base.Add(p.Counts())
		if seen[m.Partitions[k].Seed] {
			t.Fatalf("partition %d reuses another partition's seed", k)
		}
		seen[m.Partitions[k].Seed] = true
		for _, other := range parts[:k] {
			if p.Users[0].DID == other.Users[0].DID {
				t.Fatalf("partition %d shares identifier space with an earlier partition", k)
			}
		}
		for i := range p.Posts {
			if a := p.Posts[i].AuthorIdx; a < 0 || a >= len(p.Users) {
				t.Fatalf("partition %d post %d author index %d is not partition-local", k, i, a)
			}
		}
	}
	if m.Totals() != base {
		t.Fatalf("manifest totals %+v != summed counts %+v", m.Totals(), base)
	}
	if plan := m.Plan(); !strings.Contains(plan, "independent") || !strings.Contains(plan, "3 partition(s)") {
		t.Fatalf("plan summary missing partition facts:\n%s", plan)
	}
}

// TestSplitRoundTrip pins Split/Concat as inverses: concatenating a
// split corpus reproduces the original dataset exactly (views, no
// copies — and SharedIndex, so no rebasing).
func TestSplitRoundTrip(t *testing.T) {
	ds := Generate(Config{Scale: 2000, Seed: 3})
	for _, n := range []int{1, 3, 8} {
		parts, m := core.Split(ds, n)
		if !m.SharedIndex {
			t.Fatal("split partitions carry corpus-global indexes")
		}
		back, err := core.Concat(parts, false)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		back.Scale = ds.Scale // Concat takes scale from partition 0 (equal here)
		if !reflect.DeepEqual(ds.Users, back.Users) || !reflect.DeepEqual(ds.Posts, back.Posts) ||
			!reflect.DeepEqual(ds.Daily, back.Daily) || !reflect.DeepEqual(ds.Labels, back.Labels) ||
			!reflect.DeepEqual(ds.FeedGens, back.FeedGens) || !reflect.DeepEqual(ds.Domains, back.Domains) ||
			!reflect.DeepEqual(ds.HandleUpdates, back.HandleUpdates) ||
			!reflect.DeepEqual(ds.Labelers, back.Labelers) || ds.Firehose != back.Firehose {
			t.Fatalf("n=%d: Concat(Split(ds)) != ds", n)
		}
	}
}
