package synth

import (
	"reflect"
	"testing"

	"blueskies/internal/core"
)

// TestSpillMatchesInMemory pins the spill contract: the store
// GeneratePartitionedTo writes is record-identical to the partition set
// GeneratePartitioned returns — same datasets, same manifest — at any
// worker count (the spill order must not leak into the content).
func TestSpillMatchesInMemory(t *testing.T) {
	cfg := Config{Scale: 2000, Seed: 5}
	const n = 3
	parts, m := GeneratePartitioned(cfg, n)
	for _, workers := range []int{1, 2, n + 2} {
		dir := t.TempDir()
		dm, err := GeneratePartitionedTo(cfg, n, dir, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(dm, m) {
			t.Errorf("workers=%d: spilled manifest drifted:\n got %+v\nwant %+v", workers, dm, m)
		}
		c, err := core.OpenCorpus(dir)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(c.Manifest, dm) {
			t.Errorf("workers=%d: manifest sidecar drifted", workers)
		}
		for k := range parts {
			got, err := c.ReadPartition(k)
			if err != nil {
				t.Fatalf("workers=%d partition %d: %v", workers, k, err)
			}
			if got.Counts() != parts[k].Counts() {
				t.Fatalf("workers=%d partition %d: counts %+v != %+v",
					workers, k, got.Counts(), parts[k].Counts())
			}
			if !reflect.DeepEqual(got, parts[k]) {
				t.Errorf("workers=%d partition %d: records drifted from in-memory generation", workers, k)
			}
		}
	}
}
