package synth

import (
	"reflect"
	"testing"

	"blueskies/internal/core"
)

// TestSpillMatchesInMemory pins the spill contract: the store
// GeneratePartitionedTo writes is record-identical to the partition set
// GeneratePartitioned returns — same datasets, same manifest — at any
// worker count (the spill order must not leak into the content).
func TestSpillMatchesInMemory(t *testing.T) {
	cfg := Config{Scale: 2000, Seed: 5}
	const n = 3
	parts, m := GeneratePartitioned(cfg, n)
	var hashes []string
	for _, workers := range []int{1, 2, n + 2} {
		dir := t.TempDir()
		dm, err := GeneratePartitionedTo(cfg, n, dir, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		// Content hashes only exist on the spilled manifest (they
		// address block-file bytes, which the in-memory path never
		// produces); they must be present and identical at every worker
		// count, and the manifest must otherwise match exactly.
		stripped := *dm
		stripped.Partitions = append([]core.PartitionInfo(nil), dm.Partitions...)
		for k := range stripped.Partitions {
			h := stripped.Partitions[k].ContentHash
			if h == "" {
				t.Fatalf("workers=%d partition %d: no content hash", workers, k)
			}
			if len(hashes) <= k {
				hashes = append(hashes, h)
			} else if hashes[k] != h {
				t.Errorf("workers=%d partition %d: content hash drifted: %s != %s", workers, k, h, hashes[k])
			}
			stripped.Partitions[k].ContentHash = ""
		}
		if !reflect.DeepEqual(&stripped, m) {
			t.Errorf("workers=%d: spilled manifest drifted:\n got %+v\nwant %+v", workers, &stripped, m)
		}
		c, err := core.OpenCorpus(dir)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(c.Manifest, dm) {
			t.Errorf("workers=%d: manifest sidecar drifted", workers)
		}
		for k := range parts {
			got, err := c.ReadPartition(k)
			if err != nil {
				t.Fatalf("workers=%d partition %d: %v", workers, k, err)
			}
			if got.Counts() != parts[k].Counts() {
				t.Fatalf("workers=%d partition %d: counts %+v != %+v",
					workers, k, got.Counts(), parts[k].Counts())
			}
			if !reflect.DeepEqual(got, parts[k]) {
				t.Errorf("workers=%d partition %d: records drifted from in-memory generation", workers, k)
			}
		}
	}
}
