package synth

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"blueskies/internal/core"
)

// This file holds the calibration targets, the stage/RNG-stream
// conventions, and the top-level generators; see doc.go for the
// package architecture.

// Config parameterizes dataset generation.
type Config struct {
	// Scale divides the paper's absolute counts (≥1).
	Scale int
	// Seed drives all randomness.
	Seed int64
}

// Paper-reported absolute targets (see §3–§7 and DESIGN.md).
const (
	TargetUsers          = 5_523_919
	TargetPosts          = 225_461_969
	TargetLikes          = 740_000_000
	TargetFollows        = 160_900_000
	TargetReposts        = 77_900_000
	TargetBlocks         = 10_800_000
	TargetFirehoseEvents = 279_289_739
	TargetNonBskyEvents  = 1_855
	TargetLabelTotal     = 3_402_009
	TargetRescinded      = 23_394
	TargetFeedGens       = 43_063
	TargetReachableFGs   = 40_398
	TargetHandleUpdates  = 44_449
	TargetUpdatingDIDs   = 31_494
	TargetAltHandles     = 57_202
	TargetRegDomains     = 51_879
	TargetDIDWeb         = 6
)

// Firehose event-type shares (Table 1).
const (
	ShareCommits   = 0.9978
	ShareIdentity  = 0.0019
	ShareHandle    = 0.0002
	ShareTombstone = 0.0001
)

// Timeline landmarks.
var (
	LaunchDate     = date(2022, 11, 17) // invite-only launch
	PublicDate     = date(2024, 2, 6)   // opened to the public
	LabelersOpen   = date(2024, 3, 15)  // community labelers enabled
	FeedGensLaunch = date(2023, 5, 1)
	OfficialLbl    = date(2023, 4, 1) // first official labeler
	WindowStart    = date(2024, 3, 6) // firehose collection start
	WindowEnd      = date(2024, 5, 1)
	PTSurge        = date(2024, 4, 10) // Portuguese community surge
)

func date(y int, m time.Month, d int) time.Time {
	return time.Date(y, m, d, 0, 0, 0, 0, time.UTC)
}

// Generation stage ids. Each gen* stage draws from its own RNG stream
// (seed ⊕ stage·φ64), so stages can run concurrently while the output
// stays byte-for-byte deterministic in (Scale, Seed). genPosts
// additionally fans out over postShards fixed sub-streams — fixed, not
// GOMAXPROCS-derived, so the dataset is identical at any parallelism.
const (
	stageUsers uint64 = iota + 1
	stageActivity
	stagePosts
	stageIdentity
	stageModeration
	stageFeedGens
	// stagePostShard0 + k seeds post shard k.
	stagePostShard0 uint64 = 100
	// stageHistShard0 + k seeds historic-label shard k.
	stageHistShard0 uint64 = 200
	// stageUserShard0 + k seeds user shard k.
	stageUserShard0 uint64 = 300
	// stagePartition0 + k derives partition k's seed for
	// GeneratePartitioned — a whole per-partition stage space disjoint
	// from the corpus streams and from every other partition's.
	stagePartition0 uint64 = 1000
)

// stageRNG derives a stage's deterministic RNG stream. The golden
// ratio multiplier (splitmix64 increment) decorrelates the nearby
// stage ids before they perturb the user seed.
func stageRNG(seed int64, stage uint64) *rand.Rand {
	return rand.New(rand.NewSource(int64(uint64(seed) ^ stage*0x9E3779B97F4A7C15)))
}

// ScenarioRNG derives the deterministic RNG stream a named scenario
// transform (internal/scenario) draws from. The stage id is the
// FNV-1a hash of the name offset far above every generation stage id,
// so scenario randomness is disjoint both from generation and from
// other scenarios — mutating a corpus never re-rolls the base
// population.
func ScenarioRNG(seed int64, name string) *rand.Rand {
	const (
		fnvOffset64    = 0xcbf29ce484222325
		fnvPrime64     = 0x100000001b3
		stageScenario0 = uint64(1) << 32
	)
	h := uint64(fnvOffset64)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= fnvPrime64
	}
	return stageRNG(seed, stageScenario0+h)
}

// SeededClock returns a deterministic record clock for seeding
// simulated deployments (bskysim's network mode): readings start at a
// seed-derived offset inside the paper's collection window and
// advance one second per call. Two runs with the same seed stamp
// byte-identical timestamps; different seeds land at different window
// offsets. This is the injected-Clock counterpart to the calibrated
// generation path — record producers outside synth must never reach
// for time.Now (the walltime analyzer enforces it in
// determinism-critical packages).
func SeededClock(seed int64) func() time.Time {
	windowSecs := uint64(WindowEnd.Sub(WindowStart) / time.Second)
	t := WindowStart.Add(time.Duration(uint64(seed)*0x9E3779B97F4A7C15%windowSecs) * time.Second)
	return func() time.Time {
		now := t
		t = t.Add(time.Second)
		return now
	}
}

// Generate produces the full dataset, running the generation stages
// concurrently along their dependency order:
//
//	users ─→ posts ─→ identity ─→ { moderation ∥ feedgens }
//	activity (independent)
//
// posts must precede identity (identity rewrites the six did:web DIDs
// that post URIs embed), and moderation/feedgens read the identity
// fields but touch disjoint user fields, so they run in parallel.
func Generate(cfg Config) *core.Dataset {
	return generate(cfg, false)
}

// generateSequential runs the same stages with the same per-stage
// streams strictly serially — the reference path the concurrent
// schedule is tested against.
func generateSequential(cfg Config) *core.Dataset {
	return generate(cfg, true)
}

func generate(cfg Config, sequential bool) *core.Dataset {
	if cfg.Scale < 1 {
		cfg.Scale = 1
	}
	ds := &core.Dataset{
		Scale:       cfg.Scale,
		WindowStart: WindowStart,
		WindowEnd:   WindowEnd,
	}
	if sequential {
		genUsers(ds, cfg.Seed, true, 0, cfg.Scale)
		genActivity(ds, stageRNG(cfg.Seed, stageActivity))
		genPosts(ds, cfg.Seed, true)
		genIdentity(ds, stageRNG(cfg.Seed, stageIdentity), "")
		genModeration(ds, cfg.Seed, true, 0)
		genFeedGens(ds, stageRNG(cfg.Seed, stageFeedGens), cfg.Scale)
		return ds
	}
	var activity sync.WaitGroup
	activity.Add(1)
	go func() {
		defer activity.Done()
		genActivity(ds, stageRNG(cfg.Seed, stageActivity))
	}()
	genUsers(ds, cfg.Seed, false, 0, cfg.Scale)
	genPosts(ds, cfg.Seed, false)
	genIdentity(ds, stageRNG(cfg.Seed, stageIdentity), "")
	var tail sync.WaitGroup
	tail.Add(1)
	go func() {
		defer tail.Done()
		genModeration(ds, cfg.Seed, false, 0)
	}()
	genFeedGens(ds, stageRNG(cfg.Seed, stageFeedGens), cfg.Scale)
	tail.Wait()
	activity.Wait()
	return ds
}

// didPartitionStride spaces partition DID numbering so independently
// generated partitions never collide on identifiers (the 24-digit
// did:plc numbering leaves ample room above any per-partition count).
const didPartitionStride = 1_000_000_000_000

// partitionSeed derives partition k's generation seed — a disjoint
// per-partition stage space under the corpus seed.
func partitionSeed(seed int64, k int) int64 {
	return int64(uint64(seed) ^ (stagePartition0+uint64(k))*0x9E3779B97F4A7C15)
}

// GeneratePartitioned produces the corpus of Generate's calibration as
// n independent datasets — one per simulated repo-crawl shard — on
// disjoint RNG sub-streams, plus the manifest describing them. Unlike
// core.Split (row-range views of one monolith), the partitions are
// generated independently and in parallel, and the whole corpus is
// never materialized in one heap: each partition owns its slabs and
// can be generated, streamed, and released on its own.
//
// The volume targets divide across partitions (each partition runs the
// staged generator at Scale·n), while the corpus-level facts are
// generated once from the corpus seed and shared: every partition
// carries the same labeler enumeration (labels are attributed by
// labeler index, which must agree across partitions), and the firehose
// window facts — the daily activity series and event counters — ride
// on partition 0, so partition facts sum to corpus facts without
// double-counting. Index-bearing record fields (Post.AuthorIdx,
// FeedGen.CreatorIdx) are partition-local; the manifest's user bases
// (SharedIndex=false) tell the analysis merge how to rebase them.
//
// Deterministic in (Scale, Seed, n) at any parallelism level; the
// partition set is NOT byte-identical to Generate's monolith (the
// streams are disjoint by construction), but evaluating it through the
// two-level merge matches the flat evaluation of the concatenated
// partitions exactly (TestFederatedPartitionsMatchConcat).
func GeneratePartitioned(cfg Config, n int) ([]*core.Dataset, *core.Manifest) {
	if cfg.Scale < 1 {
		cfg.Scale = 1
	}
	if n < 1 {
		n = 1
	}
	// Corpus-level stages on the corpus seed's streams.
	labelers := genLabelers(stageRNG(cfg.Seed, stageModeration))
	shared := &core.Dataset{Scale: cfg.Scale, WindowStart: WindowStart, WindowEnd: WindowEnd}
	genActivity(shared, stageRNG(cfg.Seed, stageActivity))

	parts := make([]*core.Dataset, n)
	var wg sync.WaitGroup
	for k := 0; k < n; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			parts[k] = generatePartition(cfg, n, k, labelers)
		}(k)
	}
	wg.Wait()
	parts[0].Daily = shared.Daily
	parts[0].Firehose = shared.Firehose
	parts[0].NonBskyEvents = shared.NonBskyEvents

	m := core.BuildManifest(parts, cfg.Scale, cfg.Seed, false)
	for k := range m.Partitions {
		m.Partitions[k].Seed = partitionSeed(cfg.Seed, k)
	}
	return parts, m
}

// generatePartition runs the staged generator for one partition: the
// usual stage DAG minus the corpus-level activity stage, on the
// partition seed's streams, with volume targets divided by n.
func generatePartition(cfg Config, n, k int, labelers []core.Labeler) *core.Dataset {
	seed := partitionSeed(cfg.Seed, k)
	ds := &core.Dataset{
		Scale:       cfg.Scale * n,
		WindowStart: WindowStart,
		WindowEnd:   WindowEnd,
		Labelers:    labelers,
	}
	anchorScale := 0
	if k == 0 {
		anchorScale = cfg.Scale // corpus-unique anchors keep corpus-scale magnitudes
	}
	genUsers(ds, seed, false, int64(k)*didPartitionStride, anchorScale)
	genPosts(ds, seed, false)
	genIdentity(ds, stageRNG(seed, stageIdentity), fmt.Sprintf("p%d-", k))
	var tail sync.WaitGroup
	tail.Add(1)
	go func() {
		defer tail.Done()
		genModeration(ds, seed, false, k)
	}()
	genFeedGens(ds, stageRNG(seed, stageFeedGens), anchorScale)
	tail.Wait()
	return ds
}

// scaled divides a paper target by the configured scale, with a floor
// of min (structural populations keep shape at any scale).
func scaled(target, scale, minimum int) int {
	n := target / scale
	if n < minimum {
		return minimum
	}
	return n
}

// lognormal samples a log-normal value with the given median and
// geometric spread (sigma of the underlying normal).
func lognormal(rng *rand.Rand, median float64, sigma float64) float64 {
	return median * expApprox(rng.NormFloat64()*sigma)
}

func expApprox(x float64) float64 {
	// math.Exp wrapped for clarity; kept separate for testability.
	return exp(x)
}

// powerlawInt samples a discrete power-law value in [1, max] with
// exponent alpha (>1); larger alpha = steeper tail.
func powerlawInt(rng *rand.Rand, alpha float64, maxV int) int {
	// Inverse-CDF sampling of a bounded Pareto.
	u := rng.Float64()
	x := pow(1-u*(1-pow(float64(maxV), 1-alpha)), 1/(1-alpha))
	n := int(x)
	if n < 1 {
		n = 1
	}
	if n > maxV {
		n = maxV
	}
	return n
}
