package synth

import (
	"fmt"
	"math/rand"
	"sort"

	"blueskies/internal/core"
)

// FGaaS platform populations (Table 5 bottom rows) and their market
// shares of posts and likes (§7.2 / Figure 12).
var platformSpecs = []struct {
	Name      string
	Feeds     int
	PostShare float64
	LikeShare float64
}{
	{"Skyfeed", 35_415, 0.303, 0.612},
	{"Bluefeed", 2_302, 0.105, 0.130},
	{"Blueskyfeeds", 1_797, 0.080, 0.110},
	{"goodfeeds", 929, 0.356, 0.012},
	{"Blueskyfeedcreator", 158, 0.016, 0.026},
	{"self-hosted", 2_462, 0.140, 0.110},
}

// Window feed-post corpus (§3: 21,520,083 posts from 40,398 FGs) and
// cumulative like mass on generator records (Figure 7).
const (
	targetFeedPosts = 21_520_083
	targetFGLikes   = 300_000
)

// Feed description languages (§7.1).
var fgLangShares = []struct {
	Lang  string
	Share float64
}{
	{"en", 0.45}, {"ja", 0.36}, {"de", 0.041}, {"ko", 0.020}, {"fr", 0.019},
	{"es", 0.04}, {"pt", 0.02}, {"", 0.05},
}

// Description vocabulary per language (drives the Figure 8 word
// cloud; the art community dominates).
var fgVocab = map[string][]string{
	"en": {"art", "artists", "feed", "posts", "all", "new", "community", "daily", "best", "nsfw", "sfw", "furry", "photography", "science", "news", "follow", "only", "top", "tumblr", "deviantart", "pixiv"},
	"ja": {"アート", "フィード", "イラスト", "毎日", "ラーメン", "新着", "コミュニティ", "創作", "写真", "趣味"},
	"de": {"kunst", "feed", "beiträge", "täglich", "gemeinschaft", "neu", "fotografie"},
	"ko": {"예술", "피드", "포스트", "커뮤니티", "매일"},
	"fr": {"art", "fil", "quotidien", "communauté", "photographie"},
	"es": {"arte", "feed", "publicaciones", "comunidad", "diario"},
	"pt": {"arte", "feed", "postagens", "comunidade", "diário"},
	"":   {"feed", "posts", "misc"},
}

// Creator portfolio mix (§7.1): 62.1 % run one feed, ~37 % up to ten,
// 0.02 % more than a hundred; the largest account (a FGaaS platform)
// runs 1,799.
const maxFeedsOneAccount = 1_799

// genFeedGens builds the feed generator ecosystem. anchorScale, when
// non-zero, places the §7.1 named feeds at that (corpus) scale; a
// partitioned generation anchors only partition 0 so the paper's
// named feeds stay unique — and keep their corpus-scale magnitudes —
// in the merged corpus.
func genFeedGens(ds *core.Dataset, rng *rand.Rand, anchorScale int) {
	type platFeed struct {
		platform string
		idx      int
	}
	var slots []platFeed
	for _, ps := range platformSpecs {
		n := ps.Feeds / ds.Scale
		if n < 2 {
			n = 2
		}
		for i := 0; i < n; i++ {
			slots = append(slots, platFeed{platform: ps.Name, idx: i})
		}
	}
	totalFG := len(slots)

	// Creators: biased towards high-follower, low-following users
	// (Figure 11). Sort user indices by followers and sample from the
	// upper tail.
	order := make([]int, len(ds.Users))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		return ds.Users[order[a]].Followers > ds.Users[order[b]].Followers
	})
	pickCreator := func() int {
		// Beta-like bias to the top of the follower ranking.
		f := pow(rng.Float64(), 3.0)
		return order[int(f*float64(len(order)-1))]
	}

	// Assign portfolio sizes first, then deal slots to creators.
	var creators []int
	var portfolio []int
	remaining := totalFG
	// The one FGaaS-platform account with a huge portfolio.
	big := maxFeedsOneAccount / ds.Scale
	if big < 12 {
		big = 12
	}
	if big > remaining/3 {
		big = remaining / 3
	}
	creators = append(creators, pickCreator())
	portfolio = append(portfolio, big)
	remaining -= big
	for remaining > 0 {
		size := 1
		switch u := rng.Float64(); {
		case u < 0.621:
			size = 1
		case u < 0.9998:
			size = 2 + rng.Intn(9)
		default:
			size = 101 + rng.Intn(80)
		}
		if size > remaining {
			size = remaining
		}
		creators = append(creators, pickCreator())
		portfolio = append(portfolio, size)
		remaining -= size
	}
	// FG creators have low out-degree (§7.1).
	for _, ci := range creators {
		ds.Users[ci].Following = powerlawInt(rng, 2.6, 300)
	}

	// Per-platform post/like budgets.
	feedPosts := scaled(targetFeedPosts, ds.Scale, 2_000)
	fgLikes := scaled(targetFGLikes, ds.Scale, 300)
	postBudget := map[string]int{}
	likeBudget := map[string]int{}
	for _, ps := range platformSpecs {
		postBudget[ps.Name] = int(float64(feedPosts) * ps.PostShare)
		likeBudget[ps.Name] = int(float64(fgLikes) * ps.LikeShare)
	}
	platformFeedCount := map[string]int{}
	for _, s := range slots {
		platformFeedCount[s.platform]++
	}

	// Deal slots to creators in order.
	slotCursor := 0
	fgs := make([]core.FeedGen, 0, totalFG)
	for ci, creator := range creators {
		for k := 0; k < portfolio[ci] && slotCursor < len(slots); k++ {
			slot := slots[slotCursor]
			slotCursor++
			fg := buildFeedGen(ds, rng, creator, slot.platform, len(fgs),
				postBudget, likeBudget, platformFeedCount)
			fgs = append(fgs, fg)
		}
	}
	// Large portfolios (FGaaS platform accounts, §7.1) get little
	// engagement per feed — this is what keeps the paper's
	// r(#feeds, followers) near zero despite r(Σ likes, followers)
	// being strong.
	feedsPerCreator := map[int]int{}
	for _, fg := range fgs {
		feedsPerCreator[fg.CreatorIdx]++
	}
	for i := range fgs {
		if n := feedsPerCreator[fgs[i].CreatorIdx]; n > 5 {
			fgs[i].Likes /= n
		}
	}

	// Named feeds from §7.1 anchoring the extremes of Figure 10
	// (applied after the portfolio dampening so their calibrated
	// like counts survive).
	if anchorScale > 0 {
		anchorNamedFeeds(anchorScale, fgs)
	}
	// Small worlds can round the 0.53 % heavily-labeled population to
	// zero; guarantee the Figure 9 population exists.
	heavy := 0
	for i := range fgs {
		if fgs[i].LabeledShare >= 0.10 {
			heavy++
		}
	}
	for i := len(fgs) - 1; heavy < 3 && i >= 0; i-- {
		if fgs[i].Personalized || fgs[i].LabeledShare >= 0.10 {
			continue
		}
		fgs[i].LabeledShare = 0.10 + 0.6*rng.Float64()
		fgs[i].TopLabel = pickWeighted(rng, []string{"porn", "sexual", "spam"},
			[]float64{0.5, 0.3, 0.2})
		heavy++
	}
	ds.FeedGens = fgs

	// Engineer the §7.1 correlation: creator followers correlate with
	// the LIKES their feeds gathered (r≈0.533), not with feed count
	// (r≈0.005). The coupling factor adapts to the world size so the
	// like signal is comparable to the follower base's spread at any
	// scale.
	likesByCreator := map[int]int{}
	maxLikes, maxBase := 1, 1
	for _, fg := range fgs {
		likesByCreator[fg.CreatorIdx] += fg.Likes
	}
	// Iterate creators in sorted order: consuming rng draws in map
	// iteration order would make follower boosts differ run to run.
	creatorIdxs := make([]int, 0, len(likesByCreator))
	for ci := range likesByCreator {
		creatorIdxs = append(creatorIdxs, ci)
	}
	sort.Ints(creatorIdxs)
	for _, ci := range creatorIdxs {
		if l := likesByCreator[ci]; l > maxLikes {
			maxLikes = l
		}
		if f := ds.Users[ci].Followers; f > maxBase {
			maxBase = f
		}
	}
	factor := float64(maxBase) / float64(maxLikes)
	for _, ci := range creatorIdxs {
		boost := int(float64(likesByCreator[ci]) * factor * (0.7 + 0.6*rng.Float64()))
		ds.Users[ci].Followers += boost
	}
}

func buildFeedGen(ds *core.Dataset, rng *rand.Rand, creator int, platform string, seq int,
	postBudget, likeBudget, feedCount map[string]int) core.FeedGen {
	lang := pickFGLang(rng)
	fg := core.FeedGen{
		URI:        fmt.Sprintf("at://%s/app.bsky.feed.generator/feed%06d", ds.Users[creator].DID, seq),
		CreatorIdx: creator,
		Platform:   platform,
		Lang:       lang,
		Reachable:  rng.Float64() < float64(TargetReachableFGs)/float64(TargetFeedGens),
	}
	fg.DisplayName = fmt.Sprintf("feed-%06d", seq)
	fg.Description = makeDescription(rng, lang)

	// Creation date: from May 2023, accelerating at the public
	// opening (Figure 7).
	span := int(WindowEnd.Sub(FeedGensLaunch).Hours() / 24)
	f := pow(rng.Float64(), 0.55) // skew towards recent
	fg.CreatedAt = FeedGensLaunch.AddDate(0, 0, int(f*float64(span)))

	// Post volume: 9.4 % never curated; 21.8 % inactive in the last
	// month; the rest follow a platform-budgeted power law.
	switch u := rng.Float64(); {
	case u < 0.094:
		fg.Posts = 0
	default:
		mean := 1.0
		if n := feedCount[platform]; n > 0 {
			mean = float64(postBudget[platform]) / float64(n)
		}
		fg.Posts = int(lognormal(rng, clampF(mean*0.4, 1, 1e9), 1.6))
		if u < 0.094+0.218 {
			// Inactive recently: posts exist but none in the last month.
			fg.LastPost = WindowStart.AddDate(0, 0, -rng.Intn(120)-30)
		} else {
			fg.LastPost = WindowEnd.AddDate(0, 0, -rng.Intn(7))
		}
	}
	// Likes: platform-budgeted power law.
	meanLikes := 1.0
	if n := feedCount[platform]; n > 0 {
		meanLikes = float64(likeBudget[platform]) / float64(n)
	}
	fg.Likes = int(lognormal(rng, clampF(meanLikes*0.3, 0.05, 1e9), 1.9))

	// Label joins (Figure 9): 12.6 % have some labeled content,
	// 0.53 % cross the 10 % threshold, dominated by explicit values.
	switch u := rng.Float64(); {
	case u < 0.0053:
		fg.LabeledShare = 0.10 + 0.85*rng.Float64()
		fg.TopLabel = pickWeighted(rng, []string{"porn", "sexual", "nudity", "spam", "graphic-media", "no-alt-text"},
			[]float64{0.45, 0.25, 0.10, 0.12, 0.04, 0.04})
	case u < 0.126:
		fg.LabeledShare = 0.005 + 0.09*rng.Float64()
		fg.TopLabel = pickWeighted(rng, []string{"no-alt-text", "tenor-gif", "ai-imagery", "sexual", "porn"},
			[]float64{0.4, 0.2, 0.2, 0.1, 0.1})
	}
	return fg
}

// anchorNamedFeeds overwrites a few slots with the feeds the paper
// names: personalized recommenders with huge like counts and zero
// crawlable posts, and automatic aggregators with huge post counts.
// scale is the corpus scale — the anchors are corpus-unique.
func anchorNamedFeeds(scale int, fgs []core.FeedGen) {
	if len(fgs) < 8 {
		return
	}
	type anchor struct {
		name         string
		personalized bool
		posts        int
		likes        int
		lang         string
		desc         string
	}
	anchors := []anchor{
		{"the-algorithm", true, 0, scaled(16_000, scale, 40), "en", "personalized feed based on your likes"},
		{"whats-hot", true, 0, scaled(14_000, scale, 35), "en", "trending content from your personal network"},
		{"4dff350a5a3e", false, scaled(420_000, scale, 900), scaled(60, scale, 3), "ja", "ラーメン 関連の投稿を自動収集"},
		{"hebrew-feed", false, scaled(380_000, scale, 800), scaled(90, scale, 4), "en", "automatically reposts all content in Hebrew"},
		{"blacksky", false, scaled(45_000, scale, 150), scaled(9_000, scale, 25), "en", "community curated posts from Black Bluesky"},
		{"furry-new", false, scaled(52_000, scale, 160), scaled(8_000, scale, 22), "en", "new furry art posts community feed"},
	}
	for i, a := range anchors {
		fg := &fgs[i]
		fg.DisplayName = a.name
		fg.Description = a.desc
		fg.Personalized = a.personalized
		fg.Posts = a.posts
		fg.Likes = a.likes
		fg.Lang = a.lang
		fg.Platform = "self-hosted"
		fg.Reachable = true
		if a.posts > 0 {
			fg.LastPost = WindowEnd.AddDate(0, 0, -1)
		}
	}
}

func pickFGLang(rng *rand.Rand) string {
	u := rng.Float64()
	acc := 0.0
	for _, ls := range fgLangShares {
		acc += ls.Share
		if u < acc {
			return ls.Lang
		}
	}
	return "en"
}

func makeDescription(rng *rand.Rand, lang string) string {
	vocab, ok := fgVocab[lang]
	if !ok {
		vocab = fgVocab["en"]
	}
	n := 3 + rng.Intn(5)
	out := ""
	for i := 0; i < n; i++ {
		if i > 0 {
			out += " "
		}
		// Zipf-weighted word choice so the word cloud has structure.
		idx := int(pow(rng.Float64(), 2.0) * float64(len(vocab)))
		if idx >= len(vocab) {
			idx = len(vocab) - 1
		}
		out += vocab[idx]
	}
	return out
}

func pickWeighted(rng *rand.Rand, items []string, weights []float64) string {
	u := rng.Float64()
	acc := 0.0
	for i, w := range weights {
		acc += w
		if u < acc {
			return items[i]
		}
	}
	return items[len(items)-1]
}
