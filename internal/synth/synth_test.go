package synth

import (
	"math"
	"testing"
	"time"

	"blueskies/internal/core"
)

func gen(t *testing.T) *core.Dataset {
	t.Helper()
	return Generate(Config{Scale: 1000, Seed: 42})
}

func TestDeterminism(t *testing.T) {
	a := Generate(Config{Scale: 2000, Seed: 7})
	b := Generate(Config{Scale: 2000, Seed: 7})
	if len(a.Users) != len(b.Users) || len(a.Labels) != len(b.Labels) {
		t.Fatal("same seed produced different dataset sizes")
	}
	if a.Users[3] != b.Users[3] {
		t.Fatalf("user 3 differs: %+v vs %+v", a.Users[3], b.Users[3])
	}
	c := Generate(Config{Scale: 2000, Seed: 8})
	if a.Users[3] == c.Users[3] {
		t.Fatal("different seeds produced identical users")
	}
}

func TestPopulationScale(t *testing.T) {
	ds := gen(t)
	want := TargetUsers / 1000
	if len(ds.Users) != want {
		t.Fatalf("users = %d, want %d", len(ds.Users), want)
	}
}

func TestHandleConcentration(t *testing.T) {
	ds := gen(t)
	bsky := 0
	for _, u := range ds.Users {
		if u.Handle == "" {
			t.Fatalf("user %s has no handle", u.DID)
		}
		if hasSuffix(u.Handle, ".bsky.social") {
			bsky++
		}
	}
	share := float64(bsky) / float64(len(ds.Users))
	// Paper: 98.9 %. Small worlds keep the floor of 80 alt handles.
	if share < 0.95 || share >= 1.0 {
		t.Fatalf("bsky.social share = %.4f", share)
	}
}

func hasSuffix(s, suf string) bool {
	return len(s) >= len(suf) && s[len(s)-len(suf):] == suf
}

func TestProofMethodShares(t *testing.T) {
	ds := gen(t)
	var txt, wk int
	for _, u := range ds.Users {
		switch u.Proof {
		case core.ProofDNSTXT:
			txt++
		case core.ProofWellKnown:
			wk++
		}
	}
	if txt == 0 {
		t.Fatal("no DNS TXT proofs")
	}
	share := float64(txt) / float64(txt+wk)
	if share < 0.93 {
		t.Fatalf("TXT share = %.3f, want ≈0.987", share)
	}
}

func TestDIDWebCount(t *testing.T) {
	ds := gen(t)
	web := 0
	for _, u := range ds.Users {
		if u.DIDMethod == "web" {
			web++
		}
	}
	if web != TargetDIDWeb {
		t.Fatalf("did:web count = %d, want %d", web, TargetDIDWeb)
	}
}

func TestDomainSubdomainsSumToAltHandles(t *testing.T) {
	ds := gen(t)
	var alt, subs int
	for _, u := range ds.Users {
		if !hasSuffix(u.Handle, ".bsky.social") {
			alt++
		}
	}
	for _, d := range ds.Domains {
		subs += d.Subdomains
	}
	if alt != subs {
		t.Fatalf("alt handles %d != domain subdomains %d", alt, subs)
	}
}

func TestNamedProvidersPresent(t *testing.T) {
	ds := gen(t)
	byName := map[string]core.Domain{}
	for _, d := range ds.Domains {
		byName[d.Name] = d
	}
	for _, p := range []string{"swifties.social", "tired.io", "vibes.cool", "github.io"} {
		if byName[p].Subdomains == 0 {
			t.Errorf("provider %s missing or empty", p)
		}
	}
	// Ordering preserved: swifties > tired > vibes.
	if !(byName["swifties.social"].Subdomains >= byName["tired.io"].Subdomains &&
		byName["tired.io"].Subdomains >= byName["vibes.cool"].Subdomains) {
		t.Fatalf("provider ordering lost: %+v", byName)
	}
}

func TestRegistrarShares(t *testing.T) {
	ds := Generate(Config{Scale: 200, Seed: 1}) // larger world for stable shares
	counts := map[int]int{}
	withID := 0
	for _, d := range ds.Domains {
		if d.IANAID > 0 {
			counts[d.IANAID]++
			withID++
		}
	}
	if withID == 0 {
		t.Fatal("no IANA IDs assigned")
	}
	nc := float64(counts[1068]) / float64(withID)
	if nc < 0.17 || nc > 0.25 {
		t.Fatalf("NameCheap share = %.3f, want ≈0.209", nc)
	}
	// NameCheap must lead.
	for id, c := range counts {
		if id != 1068 && c > counts[1068] {
			t.Fatalf("registrar %d (%d) beats NameCheap (%d)", id, c, counts[1068])
		}
	}
}

func TestGrowthCurveLandmarks(t *testing.T) {
	if DAU(date(2022, 11, 1)) != 0 {
		t.Fatal("no users before launch")
	}
	dec22 := DAU(date(2022, 12, 10))
	jul23 := DAU(date(2023, 7, 1))
	feb24pre := DAU(date(2024, 2, 4))
	feb24post := DAU(date(2024, 2, 12))
	apr24 := DAU(date(2024, 4, 15))
	may24 := DAU(date(2024, 4, 30))
	if dec22 > 5_000 {
		t.Fatalf("Dec 2022 DAU = %.0f, want hundreds", dec22)
	}
	if jul23 < 150_000 {
		t.Fatalf("Jul 2023 DAU = %.0f, want hundreds of thousands", jul23)
	}
	if feb24post < feb24pre*1.3 {
		t.Fatalf("public opening surge missing: %.0f → %.0f", feb24pre, feb24post)
	}
	if apr24 < 450_000 || apr24 > 600_000 {
		t.Fatalf("Apr 2024 DAU = %.0f, want ≈500K", apr24)
	}
	if may24 >= DAU(date(2024, 3, 1)) {
		t.Fatal("March→May decline missing")
	}
}

func TestLanguageDynamics(t *testing.T) {
	ds := gen(t)
	// Portuguese surge: active count jumps ≈10× mid-April.
	var before, after int
	for _, day := range ds.Daily {
		if day.Date.Equal(date(2024, 4, 5)) {
			before = day.ActiveByLang["pt"]
		}
		if day.Date.Equal(date(2024, 4, 25)) {
			after = day.ActiveByLang["pt"]
		}
	}
	if before == 0 || after < before*5 {
		t.Fatalf("pt surge missing: %d → %d", before, after)
	}
	// Japanese bump at the public opening; German flat.
	var jaPre, jaPost, dePre, dePost int
	for _, day := range ds.Daily {
		if day.Date.Equal(date(2024, 1, 25)) {
			jaPre, dePre = day.ActiveByLang["ja"], day.ActiveByLang["de"]
		}
		if day.Date.Equal(date(2024, 2, 20)) {
			jaPost, dePost = day.ActiveByLang["ja"], day.ActiveByLang["de"]
		}
	}
	if jaPost < jaPre*3/2 {
		t.Fatalf("ja bump missing: %d → %d", jaPre, jaPost)
	}
	if dePost > dePre*3 {
		t.Fatalf("de should be mostly flat: %d → %d", dePre, dePost)
	}
}

func TestFirehoseShares(t *testing.T) {
	ds := gen(t)
	total := ds.Firehose.Total()
	if total == 0 {
		t.Fatal("no firehose events")
	}
	commitShare := float64(ds.Firehose.Commits) / float64(total)
	if commitShare < 0.995 {
		t.Fatalf("commit share = %.4f, want 0.9978", commitShare)
	}
	if ds.Firehose.Identity <= ds.Firehose.Handle || ds.Firehose.Handle <= ds.Firehose.Tombstone {
		t.Fatalf("event-type ordering wrong: %+v", ds.Firehose)
	}
}

func TestLabelerPopulation(t *testing.T) {
	ds := gen(t)
	if len(ds.Labelers) != totalAnnouncedLabelers {
		t.Fatalf("labelers = %d, want %d", len(ds.Labelers), totalAnnouncedLabelers)
	}
	var functional, active, official int
	for _, l := range ds.Labelers {
		if l.Functional {
			functional++
		}
		if l.Active {
			active++
		}
		if l.Official {
			official++
		}
	}
	if functional != functionalLabelers || active != activeLabelers || official != 1 {
		t.Fatalf("functional=%d active=%d official=%d", functional, active, official)
	}
}

func TestLabelTargetMix(t *testing.T) {
	ds := gen(t)
	kinds := map[core.SubjectKind]int{}
	for _, l := range ds.Labels {
		kinds[l.Kind]++
	}
	total := len(ds.Labels)
	if total == 0 {
		t.Fatal("no labels")
	}
	postShare := float64(kinds[core.SubjectPost]) / float64(total)
	if postShare < 0.98 {
		t.Fatalf("post-target share = %.4f, want ≈0.9963", postShare)
	}
	if kinds[core.SubjectAccount] == 0 {
		t.Fatal("no account-level labels")
	}
}

func TestReactionTimeRegimes(t *testing.T) {
	ds := gen(t)
	// The alt-text labeler (automated) must have sub-10s median; the
	// manual "Community Safety" one must take hours.
	rts := map[string][]float64{}
	byDID := map[string]string{}
	for _, l := range ds.Labelers {
		byDID[l.DID] = l.Name
	}
	for _, l := range ds.Labels {
		if l.Neg || !l.FreshSubject {
			continue
		}
		rts[byDID[l.Src]] = append(rts[byDID[l.Src]], l.ReactionTime().Seconds())
	}
	med := func(xs []float64) float64 {
		if len(xs) == 0 {
			return math.NaN()
		}
		cp := append([]float64(nil), xs...)
		sortFloats(cp)
		return cp[len(cp)/2]
	}
	alt := med(rts["Bad Accessibility / Alt Text Labeler"])
	if math.IsNaN(alt) || alt > 10 {
		t.Fatalf("alt-text labeler median RT = %.2fs, want <10s", alt)
	}
	manual := med(rts["Community Safety"])
	if math.IsNaN(manual) || manual < 600 {
		t.Fatalf("manual labeler median RT = %.2fs, want ≫10m", manual)
	}
}

func TestRescindedLabelsPresent(t *testing.T) {
	ds := gen(t)
	negs := 0
	for _, l := range ds.Labels {
		if l.Neg {
			negs++
		}
	}
	if negs == 0 {
		t.Fatal("no rescinded labels")
	}
	if float64(negs)/float64(len(ds.Labels)) > 0.05 {
		t.Fatalf("rescinded share too high: %d/%d", negs, len(ds.Labels))
	}
}

func TestFeedGenEcosystem(t *testing.T) {
	ds := gen(t)
	if len(ds.FeedGens) < 30 {
		t.Fatalf("feedgens = %d", len(ds.FeedGens))
	}
	platforms := map[string]int{}
	empty := 0
	for _, fg := range ds.FeedGens {
		platforms[fg.Platform]++
		if fg.Posts == 0 {
			empty++
		}
	}
	if platforms["Skyfeed"] == 0 || platforms["goodfeeds"] == 0 {
		t.Fatalf("platforms = %v", platforms)
	}
	// Skyfeed hosts the large majority of feeds.
	if platforms["Skyfeed"]*2 < len(ds.FeedGens) {
		t.Fatalf("Skyfeed share too low: %d of %d", platforms["Skyfeed"], len(ds.FeedGens))
	}
	// Some feeds never curated anything (9.4 % in the paper; anchored
	// personalized feeds add two).
	if empty == 0 {
		t.Fatal("no empty feeds")
	}
}

func TestNamedFeedAnchors(t *testing.T) {
	ds := gen(t)
	byName := map[string]core.FeedGen{}
	for _, fg := range ds.FeedGens {
		byName[fg.DisplayName] = fg
	}
	alg, ok := byName["the-algorithm"]
	if !ok || !alg.Personalized || alg.Posts != 0 {
		t.Fatalf("the-algorithm = %+v", alg)
	}
	ramen, ok := byName["4dff350a5a3e"]
	if !ok || ramen.Posts < 100 || ramen.Lang != "ja" {
		t.Fatalf("ramen feed = %+v", ramen)
	}
	if alg.Likes < ramen.Likes {
		t.Fatal("personalized feeds must out-like aggregators")
	}
}

func TestFeedLikesFollowerCorrelation(t *testing.T) {
	ds := Generate(Config{Scale: 400, Seed: 3})
	// Pearson r between per-creator Σ feed likes and followers must be
	// clearly positive; between #feeds and followers near zero.
	likes := map[int]float64{}
	count := map[int]float64{}
	for _, fg := range ds.FeedGens {
		likes[fg.CreatorIdx] += float64(fg.Likes)
		count[fg.CreatorIdx]++
	}
	var xs, ys, cs []float64
	for ci, l := range likes {
		xs = append(xs, l)
		ys = append(ys, float64(ds.Users[ci].Followers))
		cs = append(cs, count[ci])
	}
	rLikes := pearson(xs, ys)
	rCount := pearson(cs, ys)
	if rLikes < 0.25 {
		t.Fatalf("r(likes, followers) = %.3f, want strongly positive", rLikes)
	}
	if math.Abs(rCount) > math.Abs(rLikes) {
		t.Fatalf("r(count)=%.3f should be weaker than r(likes)=%.3f", rCount, rLikes)
	}
}

func TestHandleUpdateShares(t *testing.T) {
	ds := gen(t)
	if len(ds.HandleUpdates) == 0 {
		t.Fatal("no handle updates")
	}
	toBsky := 0
	for _, hu := range ds.HandleUpdates {
		if hasSuffix(hu.NewHandle, ".bsky.social") {
			toBsky++
		}
		if hu.Time.Before(ds.WindowStart) || hu.Time.After(ds.WindowEnd) {
			t.Fatalf("update outside window: %v", hu.Time)
		}
	}
	share := float64(toBsky) / float64(len(ds.HandleUpdates))
	if share < 0.65 || share > 0.85 {
		t.Fatalf("bsky-bound update share = %.3f, want ≈0.757", share)
	}
}

func TestPostCorpus(t *testing.T) {
	ds := gen(t)
	if len(ds.Posts) == 0 {
		t.Fatal("no posts")
	}
	langs := map[string]int{}
	for _, p := range ds.Posts {
		if p.CreatedAt.Before(ds.WindowStart) || p.CreatedAt.After(ds.WindowEnd) {
			t.Fatalf("post outside window: %v", p.CreatedAt)
		}
		langs[p.Lang]++
	}
	if langs["en"] == 0 || langs["ja"] == 0 {
		t.Fatalf("language mix broken: %v", langs)
	}
}

// pearson computes the correlation coefficient.
func pearson(xs, ys []float64) float64 {
	n := float64(len(xs))
	if n == 0 {
		return 0
	}
	var sx, sy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
	}
	mx, my := sx/n, sy/n
	var cov, vx, vy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		cov += dx * dy
		vx += dx * dx
		vy += dy * dy
	}
	if vx == 0 || vy == 0 {
		return 0
	}
	return cov / math.Sqrt(vx*vy)
}

func sortFloats(xs []float64) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

func TestGenerationSpeed(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	start := time.Now()
	Generate(Config{Scale: 400, Seed: 9})
	if d := time.Since(start); d > 30*time.Second {
		t.Fatalf("generation at 1:400 took %v", d)
	}
}
