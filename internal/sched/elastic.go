package sched

import (
	"bytes"
	"context"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"time"

	"blueskies/internal/analysis"
	"blueskies/internal/cbor"
	"blueskies/internal/core"
	"blueskies/internal/xrpc"
)

// The elastic run: the pull-based placement engine behind evalPartition.
//
// Placement is a shared queue of evaluation units, ordered by (partition,
// sub-range) — not an assignment. Each worker runs one claim loop: take
// the first queued unit this worker hasn't already failed, evaluate it,
// deliver, repeat. Fast workers therefore drain slow workers' backlogs
// automatically (work stealing is the default behavior, not a special
// case), and a worker that dies simply stops claiming: its in-flight
// unit requeues for the survivors.
//
// Idle workers with nothing left to claim speculate: they re-execute the
// longest-in-flight unit once it has run past the speculation threshold.
// The first valid result wins; because the evaluation is deterministic, a
// late duplicate must be byte-identical to the accepted state — the run
// cross-checks and aborts loudly on divergence, so speculation can never
// silently pick a wrong answer.
//
// Skewed partitions (record totals far above the median) split into
// deterministic contiguous sub-ranges (core.SubPartitionInfos) that
// evaluate as independent units; their states fold back into exactly the
// unsplit partition state before the corpus-level merge sees them.
//
// Every schedule this machinery can produce — any claim interleaving,
// steals, speculation, splits, worker death, local fallback — yields
// output byte-identical to the local DiskSource golden: results are
// slotted by unit id and folded in manifest order, never in arrival
// order.
//
// Concurrency/memory bound: one eval (plus at most one prefetch push) is
// in flight per worker, and local fallback executors are capped at the
// worker count — so peak resident request bytes stay O(workers ·
// partition), matching the old slot semantics.

// DefaultSplitFactor triggers dynamic splitting: a partition whose
// record total exceeds this multiple of the median partition splits.
const DefaultSplitFactor = 4.0

// MaxSubPartitions caps how many sub-ranges one partition splits into.
const MaxSubPartitions = 8

// minSpeculateAfter floors the auto speculation threshold so loopback
// tests and fast fleets don't speculate on healthy microsecond evals.
const minSpeculateAfter = 50 * time.Millisecond

// bootstrapStealGrace is the delay-scheduling hold before any eval has
// completed in this run. With no duration baseline the ship cost is the
// only known quantity, so the hold errs long: stealing a unit another
// worker holds cached re-ships megabytes to save an unknown (usually
// small) wait. Once a single eval lands the grace tightens to the
// 3×mean straggler threshold. A dead holder lifts the hold instantly —
// health, not time, gates that path.
const bootstrapStealGrace = 500 * time.Millisecond

// unitID orders evaluation units: partition-major, sub-range-minor.
type unitID struct{ part, sub int }

func (id unitID) String() string { return fmt.Sprintf("%d.%d", id.part, id.sub) }

func idLess(a, b unitID) bool {
	if a.part != b.part {
		return a.part < b.part
	}
	return a.sub < b.sub
}

// unitRes is one unit's accepted evaluation result. state/format hold
// the raw wire state for remote results (the cheap byte-equality path
// when a speculative duplicate arrives at the same format); local
// results carry only the triple.
type unitRes struct {
	world  *analysis.World
	shards []analysis.Shard
	tables *analysis.LabelTables
	state  []byte
	format int
}

// unit is one evaluation unit: a whole partition, or one contiguous
// sub-range of a split partition. All mutable fields are guarded by
// elasticRun.mu.
type unit struct {
	id   unitID
	info core.PartitionInfo // corpus-global base + records of this range
	rng  *core.RowRange     // nil = whole partition
	nsub int                // sibling count when split (cache key suffix)
	home int                // (part+sub) % workers — steal accounting only

	queued   bool
	local    bool
	inflight int
	runners  map[int]bool
	failedOn map[int]bool
	cancels  map[int]context.CancelFunc // per-runner attempt cancellation
	started  time.Time                  // first runner's start (speculation age)
	done     bool
	res      *unitRes
	attempts []string
}

// partWait is one partition's completion latch plus the lazily-folded
// partition-level result when the partition ran split.
type partWait struct {
	units  []*unit
	left   int
	ch     chan struct{}
	closed bool

	foldOnce sync.Once
	world    *analysis.World
	shards   []analysis.Shard
	tables   *analysis.LabelTables
	foldErr  error
}

// elasticRun is one scheduler run's shared placement state.
type elasticRun struct {
	s       *Scheduler
	accs    []analysis.Accumulator
	workers int
	fp      string // corpus manifest fingerprint (cache key prefix)

	mu     sync.Mutex
	wake   chan struct{}
	units  map[unitID]*unit
	order  []*unit // every unit, id-sorted (deterministic scans)
	queue  []*unit // claimable units, id-sorted
	localQ []*unit // units routed to local fallback, id-sorted
	parts  map[int]*partWait
	failed bool
	err    error

	active      []bool // worker claim loop running
	localActive int    // local fallback executors running
	retired     []string
	idleSince   []time.Time // when each worker last went claim-empty

	cacheSeen []bool            // CacheInfo resolution claimed by a loop
	cacheDone []bool            // CacheInfo resolution finished (keys seeded)
	cacheOK   []bool            // worker accepts putBlocks / CacheKey
	cached    []map[string]bool // keys known present per worker
	prefTried []map[string]bool // prefetch keys already attempted

	durN   int
	durSum time.Duration
}

func newElasticRun(s *Scheduler, accs []analysis.Accumulator, workers int) *elasticRun {
	n := len(s.Workers)
	r := &elasticRun{
		s:         s,
		accs:      accs,
		workers:   workers,
		fp:        s.Corpus.Manifest.Fingerprint(),
		wake:      make(chan struct{}),
		units:     make(map[unitID]*unit),
		parts:     make(map[int]*partWait),
		active:    make([]bool, n),
		retired:   make([]string, n),
		idleSince: make([]time.Time, n),
		cacheSeen: make([]bool, n),
		cacheDone: make([]bool, n),
		cacheOK:   make([]bool, n),
		cached:    make([]map[string]bool, n),
		prefTried: make([]map[string]bool, n),
	}
	for i := range r.cached {
		r.cached[i] = make(map[string]bool)
		r.prefTried[i] = make(map[string]bool)
	}
	return r
}

// signalLocked wakes every waiter (idle claim loops) once.
func (r *elasticRun) signalLocked() {
	close(r.wake)
	r.wake = make(chan struct{})
}

func (r *elasticRun) wakeChan() <-chan struct{} {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.wake
}

// evalPartition registers (once) and awaits one partition's result —
// RemoteSource.Run's whole implementation.
func (r *elasticRun) evalPartition(part int) (*analysis.World, []analysis.Shard, *analysis.LabelTables, error) {
	r.mu.Lock()
	pw := r.registerLocked(part)
	r.mu.Unlock()
	<-pw.ch
	return r.resolve(pw)
}

// registerLocked creates the partition's units (splitting skewed ones),
// enqueues them, and starts whatever executors can serve them.
func (r *elasticRun) registerLocked(part int) *partWait {
	if pw, ok := r.parts[part]; ok {
		return pw
	}
	pw := &partWait{ch: make(chan struct{})}
	r.parts[part] = pw
	if r.failed {
		pw.closed = true
		close(pw.ch)
		return pw
	}
	info := r.s.Corpus.Manifest.Partitions[part]
	nsub := r.s.splitCount(part)
	nw := len(r.s.Workers)
	for j := 0; j < nsub; j++ {
		u := &unit{
			id:       unitID{part: part, sub: j},
			info:     info,
			runners:  make(map[int]bool),
			failedOn: make(map[int]bool),
			cancels:  make(map[int]context.CancelFunc),
		}
		if nw > 0 {
			u.home = (part + j) % nw
		}
		if nsub > 1 {
			subs := core.SubPartitionInfos(info, nsub)
			u.info = subs[j]
			rng := core.SubRowRange(info, subs[j], j == 0)
			u.rng = &rng
			u.nsub = nsub
		}
		r.units[u.id] = u
		r.order = insertByID(r.order, u)
		r.queue = insertByID(r.queue, u)
		u.queued = true
		pw.units = append(pw.units, u)
	}
	pw.left = len(pw.units)
	if nsub > 1 {
		r.s.Stats.Splits.Add(1)
		r.s.event("split", "-", unitID{part, 0}, "%d records ≥ %.3g× the median partition; evaluating as %d sub-ranges",
			info.Records.Total(), r.s.splitFactor(), nsub)
	}
	r.reapLocked()
	r.ensureWorkersLocked()
	r.signalLocked()
	return pw
}

// insertByID inserts u keeping the slice id-sorted.
func insertByID(q []*unit, u *unit) []*unit {
	i := sort.Search(len(q), func(i int) bool { return !idLess(q[i].id, u.id) })
	q = append(q, nil)
	copy(q[i+1:], q[i:])
	q[i] = u
	return q
}

func removeUnit(q []*unit, u *unit) []*unit {
	for i, v := range q {
		if v == u {
			return append(q[:i], q[i+1:]...)
		}
	}
	return q
}

// splitFactor is the effective skew threshold.
func (s *Scheduler) splitFactor() float64 {
	if s.SplitFactor > 0 {
		return s.SplitFactor
	}
	return DefaultSplitFactor
}

// splitCount decides — deterministically, from the manifest alone —
// how many sub-ranges partition part evaluates as. 1 = no split.
func (s *Scheduler) splitCount(part int) int {
	if s.SplitFactor < 0 {
		return 1
	}
	m := s.Corpus.Manifest
	if len(m.Partitions) < 2 {
		return 1 // no sibling baseline to call it skewed against
	}
	totals := make([]int, len(m.Partitions))
	for i := range m.Partitions {
		totals[i] = m.Partitions[i].Records.Total()
	}
	sort.Ints(totals)
	med := totals[len(totals)/2]
	rec := m.Partitions[part].Records.Total()
	if med <= 0 || float64(rec) <= s.splitFactor()*float64(med) {
		return 1
	}
	n := int(math.Ceil(float64(rec) / float64(med)))
	n = min(n, MaxSubPartitions, max(2, 2*max(1, len(s.Workers))))
	return max(n, 2)
}

// ensureWorkersLocked starts a claim loop for every healthy worker
// that doesn't have one running.
func (r *elasticRun) ensureWorkersLocked() {
	if r.failed {
		return
	}
	for wi := range r.s.Workers {
		if r.active[wi] || !r.s.isHealthy(wi) {
			continue
		}
		r.active[wi] = true
		go r.workerLoop(wi)
	}
}

// ensureLocalLocked starts local fallback executors (capped at the
// worker count, minimum one — the old fallback concurrency bound).
func (r *elasticRun) ensureLocalLocked() {
	capN := max(1, len(r.s.Workers))
	for r.localActive < capN && r.localActive < len(r.localQ) {
		r.localActive++
		go r.localLoop()
	}
}

// reapLocked routes every queued unit that no healthy worker can still
// serve to the local fallback (or fails the run under NoFallback).
// Called after registrations and retirements.
func (r *elasticRun) reapLocked() {
	var stranded []*unit
	for _, u := range r.queue {
		if !r.eligibleLocked(u) {
			stranded = append(stranded, u)
		}
	}
	for _, u := range stranded {
		r.queue = removeUnit(r.queue, u)
		u.queued = false
		r.routeLocked(u)
	}
}

// eligibleLocked reports whether some healthy worker can still take u.
func (r *elasticRun) eligibleLocked(u *unit) bool {
	for wi := range r.s.Workers {
		if r.s.isHealthy(wi) && !u.failedOn[wi] {
			return true
		}
	}
	return false
}

// routeLocked sends an exhausted unit to the local fallback, or fails
// the run when the fallback is disabled.
func (r *elasticRun) routeLocked(u *unit) {
	if r.failed || u.done || u.local {
		return
	}
	if r.s.NoFallback {
		r.failLocked(fmt.Errorf("sched: partition %d failed on every worker: %s",
			u.id.part, strings.Join(r.unitAttemptsLocked(u), "; ")))
		return
	}
	u.local = true
	r.localQ = insertByID(r.localQ, u)
	r.s.event("fallback", "-", u.id, "degrading to local out-of-core evaluation (no healthy workers left for it)")
	r.ensureLocalLocked()
}

// unitAttemptsLocked summarizes why every worker is out for u: its own
// failed attempts plus run-level retirement reasons for workers the
// unit never reached.
func (r *elasticRun) unitAttemptsLocked(u *unit) []string {
	out := append([]string(nil), u.attempts...)
	for wi, w := range r.s.Workers {
		if !u.failedOn[wi] && !r.s.isHealthy(wi) && r.retired[wi] != "" {
			out = append(out, fmt.Sprintf("%s: %s", w.Name(), r.retired[wi]))
		}
	}
	if len(out) == 0 {
		out = append(out, "no workers configured")
	}
	return out
}

// failLocked aborts the run: every partition latch opens, every
// executor drains out on its next claim.
func (r *elasticRun) failLocked(err error) {
	if r.failed {
		return
	}
	r.failed = true
	r.err = err
	for _, pw := range r.parts {
		if !pw.closed {
			pw.closed = true
			close(pw.ch)
		}
	}
	r.signalLocked()
}

func (r *elasticRun) failRun(err error) {
	r.mu.Lock()
	r.failLocked(err)
	r.mu.Unlock()
}

func (r *elasticRun) runFailed() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.failed
}

// drain blocks until no evaluation is in flight, then reports the
// run's failure state. RunAll calls it after the fold: a speculative
// duplicate still running when every partition has resolved must be
// cross-checked before the results are handed out — divergence fails
// the run, never slips past it. The wait is short: losing runners are
// canceled at deliver time, so a ctx-aware transport returns at once,
// and a transport that ignores cancellation finishes one in-flight
// evaluation per worker at most (the queue is empty by then) and has
// its result cross-checked.
func (r *elasticRun) drain() error {
	for {
		r.mu.Lock()
		if r.failed {
			err := r.err
			r.mu.Unlock()
			return err
		}
		busy := false
		for _, u := range r.order {
			if u.inflight > 0 {
				busy = true
				break
			}
		}
		ch := r.wake
		r.mu.Unlock()
		if !busy {
			return nil
		}
		<-ch
	}
}

// retire takes worker wi out of the run (first caller logs).
func (r *elasticRun) retire(wi int, reason string) {
	if r.s.markUnhealthy(wi) {
		r.s.event("retire", r.s.Workers[wi].Name(), unitID{-1, -1}, "%s", reason)
		r.mu.Lock()
		r.retired[wi] = reason
		r.reapLocked()
		r.signalLocked()
		r.mu.Unlock()
	}
}

// ---- the claim loop ----

func (r *elasticRun) workerLoop(wi int) {
	ctx := context.Background()
	wf := r.s.workerFormat(ctx, wi)
	if !r.s.ShipBlocks && r.s.storeFormat() > wf {
		// The worker would fail on every block file, and store bytes
		// can't be rewritten per worker: it is out for the run.
		r.retire(wi, fmt.Sprintf("store is block format v%d but the worker reads ≤ v%d", r.s.storeFormat(), wf))
		r.deactivate(wi)
		return
	}
	if r.s.ShipBlocks {
		r.resolveCache(ctx, wi)
	}
	for {
		u, spec, wait, exit := r.claim(wi, wf)
		if exit {
			r.deactivate(wi)
			return
		}
		if u == nil {
			select {
			case <-r.wakeChan():
			case <-time.After(wait):
			}
			continue
		}
		r.execute(ctx, wi, u, wf, spec)
	}
}

// deactivate marks the claim loop stopped and re-checks: if claimable
// work appeared between the last claim and this flag flip, restart.
func (r *elasticRun) deactivate(wi int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.active[wi] = false
	if r.failed || !r.s.isHealthy(wi) {
		return
	}
	for _, u := range r.queue {
		if !u.failedOn[wi] {
			r.active[wi] = true
			go r.workerLoop(wi)
			return
		}
	}
}

// claim picks this worker's next action: a queued unit (steal-by-
// default pull, preferring units whose payload this worker already
// caches), a speculative duplicate of a straggling in-flight unit, a
// timed wait, or loop exit when this worker can never help again.
func (r *elasticRun) claim(wi, wf int) (u *unit, spec bool, wait time.Duration, exit bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.failed || !r.s.isHealthy(wi) {
		return nil, false, 0, true
	}
	var pick *unit
	if r.cacheOK[wi] {
		// Warm affinity: a unit this worker holds cached costs zero ship
		// bytes here but a full payload anywhere else — claim it first.
		for _, cand := range r.queue {
			if !cand.failedOn[wi] && r.cached[wi][r.unitKey(cand, wf)] {
				pick = cand
				break
			}
		}
	}
	held := false
	if pick == nil {
		// Delay scheduling: a unit cached on another healthy worker
		// ships zero bytes there but a full payload here, so leave it
		// to its holder — until this worker has idled past the steal
		// grace, when latency beats the ship bytes (the holder is the
		// straggler now).
		graceOver := !r.idleSince[wi].IsZero() && time.Since(r.idleSince[wi]) >= r.stealGraceLocked() //lint:walltime delay-scheduling steal grace; placement only, never corpus bytes
		// Until every healthy worker's cache description resolves, any
		// candidate might be cached on a peer whose keys haven't landed
		// yet — hold them all (the grace bounds the wait, so a hung
		// describe can't stall the run).
		described := r.describedLocked()
		for _, cand := range r.queue {
			if cand.failedOn[wi] {
				continue
			}
			if !graceOver && (!described || r.cachedElsewhereLocked(cand, wi)) {
				held = true
				continue
			}
			pick = cand
			break
		}
	}
	if pick != nil {
		r.idleSince[wi] = time.Time{}
		r.queue = removeUnit(r.queue, pick)
		pick.queued = false
		r.startLocked(pick, wi)
		if pick.home != wi {
			r.s.Stats.Steals.Add(1)
			r.s.event("steal", r.s.Workers[wi].Name(), pick.id, "pulled from worker %d's backlog", pick.home)
		}
		return pick, false, 0, false
	}
	if r.idleSince[wi].IsZero() {
		r.idleSince[wi] = time.Now() //lint:walltime delay-scheduling steal grace; placement only, never corpus bytes
	}
	if held {
		return nil, false, 20 * time.Millisecond, false
	}
	// Nothing claimable. Any unit still in play for this worker?
	pending := false
	for _, cand := range r.order {
		if cand.done || cand.local {
			continue
		}
		if cand.inflight > 0 || !cand.failedOn[wi] {
			pending = true
			break
		}
	}
	if !pending {
		return nil, false, 0, true
	}
	target, soonest := r.specTargetLocked(wi)
	if target != nil {
		r.startLocked(target, wi)
		r.s.Stats.Speculations.Add(1)
		r.s.event("speculate", r.s.Workers[wi].Name(), target.id, "in flight %v ≥ threshold; re-executing speculatively",
			time.Since(target.started).Round(time.Millisecond)) //lint:walltime speculation age diagnostics; output stays byte-identical (duplicates are cross-checked)
		return target, true, 0, false
	}
	if soonest <= 0 || soonest > 100*time.Millisecond {
		soonest = 100 * time.Millisecond
	}
	return nil, false, soonest, false
}

func (r *elasticRun) startLocked(u *unit, wi int) {
	if u.inflight == 0 {
		u.started = time.Now() //lint:walltime speculation straggler detection; placement only, never corpus bytes
	}
	u.inflight++
	u.runners[wi] = true
}

// stealGraceLocked is how long a worker must idle before stealing a
// unit another healthy worker holds cached — the same straggler
// threshold speculation uses.
func (r *elasticRun) stealGraceLocked() time.Duration {
	if r.s.SpeculateAfter > 0 {
		return r.s.SpeculateAfter
	}
	if r.durN == 0 {
		return bootstrapStealGrace
	}
	thr := 3 * (r.durSum / time.Duration(r.durN))
	if thr < minSpeculateAfter {
		thr = minSpeculateAfter
	}
	return thr
}

// describedLocked reports whether every healthy worker's cache
// description has finished resolving — before that, peers' cached-key
// sets are blind spots for placement. Store-mode runs never describe
// caches, so they are always "described".
func (r *elasticRun) describedLocked() bool {
	if !r.s.ShipBlocks {
		return true
	}
	for wj := range r.s.Workers {
		if r.s.isHealthy(wj) && !r.cacheDone[wj] {
			return false
		}
	}
	return true
}

// cachedElsewhereLocked reports whether some other healthy worker
// holds u's payload cached (at that worker's own block format).
func (r *elasticRun) cachedElsewhereLocked(u *unit, wi int) bool {
	for wj := range r.s.Workers {
		if wj == wi || !r.s.isHealthy(wj) || !r.cacheOK[wj] {
			continue
		}
		wfj := int(r.s.formats[wj].Load())
		if wfj <= 0 {
			continue
		}
		if r.cached[wj][r.unitKey(u, wfj)] {
			return true
		}
	}
	return false
}

// specTargetLocked finds the longest-in-flight unit past the
// speculation threshold that this worker may duplicate, or how long
// until the earliest candidate crosses it.
func (r *elasticRun) specTargetLocked(wi int) (*unit, time.Duration) {
	if r.s.NoSpeculate || r.s.SpeculateAfter < 0 {
		return nil, 0
	}
	thr := r.s.SpeculateAfter
	if thr == 0 {
		if r.durN == 0 {
			return nil, 0 // no completed eval yet: no straggler baseline
		}
		thr = 3 * (r.durSum / time.Duration(r.durN))
		if thr < minSpeculateAfter {
			thr = minSpeculateAfter
		}
	}
	var best *unit
	var soonest time.Duration
	now := time.Now() //lint:walltime speculation straggler detection; placement only, never corpus bytes
	for _, u := range r.order {
		if u.done || u.local || u.inflight == 0 || u.inflight >= 2 {
			continue
		}
		if u.runners[wi] || u.failedOn[wi] {
			continue
		}
		age := now.Sub(u.started)
		if age >= thr {
			if best == nil || u.started.Before(best.started) {
				best = u
			}
		} else if d := thr - age; soonest == 0 || d < soonest {
			soonest = d
		}
	}
	return best, soonest
}

// ---- executing one unit on one worker ----

// evalWorkers is the traversal worker count requests carry.
func (r *elasticRun) evalWorkers() int {
	if r.s.EvalWorkers > 0 {
		return r.s.EvalWorkers
	}
	return r.workers
}

// baseRequest builds the fields every request for u shares.
func (r *elasticRun) baseRequest(u *unit) *EvalRequest {
	return &EvalRequest{
		Version:   ProtocolVersion,
		Accs:      analysis.Fingerprint(r.accs),
		Base:      u.info.Base,
		Records:   &u.info.Records,
		Workers:   r.evalWorkers(),
		MaxFormat: core.DiskFormatVersion,
		Range:     u.rng,
	}
}

// unitKey addresses the exact payload unit u ships at format wf. A
// manifest that records per-partition content hashes keys by them —
// the same partition bytes in any corpus hit the same worker cache
// entry, so re-sharded or re-spilled corpora warm-start across runs.
// Hashless (pre-hash) manifests fall back to the fingerprint-scoped
// CacheKey. Split sub-units ship sliced payloads, so their keys carry
// the sub-range coordinates: a sub-unit's entry is never the parent's.
func (r *elasticRun) unitKey(u *unit, wf int) string {
	prefix := fmt.Sprintf("%s/%d", r.fp, u.id.part)
	if h := r.s.Corpus.Manifest.Partitions[u.id.part].ContentHash; h != "" {
		prefix = "c/" + h
	}
	if u.rng != nil {
		return fmt.Sprintf("%s/s%d.%d/v%d", prefix, u.id.sub, u.nsub, wf)
	}
	return fmt.Sprintf("%s/v%d", prefix, wf)
}

// shipUnitBlocks builds the framed block payload unit u ships at
// format wf: the partition's blocks, sliced to the unit's sub-range
// when it is one leg of a split (shipping a whole parent payload per
// sub-unit re-sent the same megabytes nsub times), transcoded down for
// an older worker, and LZ-compressed per frame when the format carries
// the codec bit (v3+; CompressPartitionBlocks is a no-op below that,
// so negotiation rides the formats exchange — a worker that advertises
// v3 accepts compressed frames by definition).
func (r *elasticRun) shipUnitBlocks(u *unit, wf int) ([]byte, error) {
	blocks, err := ReadPartitionBlocks(r.s.Corpus, u.id.part)
	if err != nil {
		return nil, fmt.Errorf("sched: read partition %d blocks: %w", u.id.part, err)
	}
	if u.rng != nil {
		blocks, err = core.ClipPartitionBlocks(blocks, *u.rng, r.s.storeFormat())
		if err != nil {
			return nil, fmt.Errorf("sched: slice partition %d blocks to sub-range %s: %w", u.id.part, u.id, err)
		}
	}
	if wf < r.s.storeFormat() {
		blocks, err = core.TranscodePartitionBlocks(blocks, wf)
		if err != nil {
			return nil, fmt.Errorf("sched: transcode partition %d blocks to format v%d: %w", u.id.part, wf, err)
		}
	}
	blocks, err = core.CompressPartitionBlocks(blocks)
	if err != nil {
		return nil, fmt.Errorf("sched: compress partition %d blocks: %w", u.id.part, err)
	}
	return blocks, nil
}

// execute runs unit u on worker wi: build the request (cache-aware),
// evaluate — overlapping a prefetch push of the next queued unit's
// blocks — re-ship inline on a cache miss, validate, deliver.
func (r *elasticRun) execute(ctx context.Context, wi int, u *unit, wf int, spec bool) {
	w := r.s.Workers[wi]
	// Each attempt gets its own cancelable context: when another runner
	// delivers this unit first, the loser is canceled so a straggler's
	// abandoned duplicate never gates RunAll's drain.
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	r.mu.Lock()
	u.cancels[wi] = cancel
	r.mu.Unlock()
	start := time.Now() //lint:walltime eval duration feeds the speculation threshold; placement only
	state, err := r.attempt(ctx, wi, u, wf, false)
	if err != nil {
		if xe, ok := isCacheMiss(err); ok {
			r.s.Stats.CacheMisses.Add(1)
			key := r.unitKey(u, wf)
			r.mu.Lock()
			delete(r.cached[wi], key)
			r.mu.Unlock()
			r.s.event("cache-miss", w.Name(), u.id, "worker cannot serve %s (%s); re-shipping inline", key, xe.Message)
			state, err = r.attempt(ctx, wi, u, wf, true)
		}
	}
	if err != nil {
		_, isFallback := err.(*fallbackError)
		r.mu.Lock()
		superseded := u.done
		r.mu.Unlock()
		if isFallback || superseded || r.runFailed() {
			// Unshippable unit, superseded duplicate (another runner
			// delivered first and canceled this attempt), or the run
			// already failed for a reason of its own: none of these
			// blames the worker. Release the runner; an unshippable unit
			// goes to the local fallback directly.
			r.mu.Lock()
			u.runners[wi] = false
			delete(u.cancels, wi)
			u.inflight--
			if superseded && !isFallback {
				r.s.event("spec-abandon", w.Name(), u.id, "attempt canceled after another runner delivered: %v", err)
			}
			if isFallback && !u.done && !u.queued && u.inflight == 0 {
				r.s.event("ship-skip", w.Name(), u.id, "%s", err.Error())
				r.routeLocked(u)
			}
			r.signalLocked()
			r.mu.Unlock()
			return
		}
		r.unitFailed(wi, u, err.Error())
		return
	}
	world, shards, tables, err := analysis.UnmarshalPartitionState(r.accs, state)
	if err != nil {
		r.unitFailed(wi, u, err.Error())
		return
	}
	if got := world.Counts(); got != u.info.Records {
		r.unitFailed(wi, u, fmt.Sprintf("returned %+v records but the manifest promises %+v", got, u.info.Records))
		return
	}
	dur := time.Since(start) //lint:walltime eval duration feeds the speculation threshold; placement only
	r.deliver(wi, u, &unitRes{world: world, shards: shards, tables: tables, state: state, format: wf}, dur, spec)
}

// fallbackError routes a unit to local evaluation without blaming the
// worker (oversized ship payloads).
type fallbackError struct{ reason string }

func (e *fallbackError) Error() string { return e.reason }

// attempt performs one evaluation RPC. forceInline bypasses the
// cache-reference path after a miss.
func (r *elasticRun) attempt(ctx context.Context, wi int, u *unit, wf int, forceInline bool) ([]byte, error) {
	w := r.s.Workers[wi]
	req := r.baseRequest(u)
	limit := r.s.maxShip()
	keyOnly := false
	shipped := 0
	if r.s.ShipBlocks {
		var key string
		r.mu.Lock()
		if r.cacheOK[wi] {
			key = r.unitKey(u, wf)
			keyOnly = !forceInline && r.cached[wi][key]
		}
		r.mu.Unlock()
		req.CacheKey = key
		if !keyOnly {
			blocks, err := r.shipUnitBlocks(u, wf)
			if err != nil {
				r.failRun(err) // local read/slice/transcode failure: the run is wrong, not the worker
				return nil, err
			}
			req.Blocks = blocks
			shipped = len(blocks)
		}
		// Shipped (and cached) payloads are pre-sliced to the unit's
		// sub-range, so the worker must not clip them again; only the
		// store path sends the row range for worker-side clipping.
		req.Range = nil
	} else {
		req.Store = r.s.Corpus.Dir
		req.Partition = u.id.part
	}
	body, err := cbor.Marshal(req)
	if err != nil {
		r.failRun(err)
		return nil, err
	}
	if r.s.ShipBlocks && len(body) > limit {
		if wf < r.s.storeFormat() {
			// The downgrade inflated the payload past the bound; the
			// worker can never take this unit.
			return nil, fmt.Errorf("downgraded format-v%d request of %d bytes exceeds the %d-byte ship bound", wf, len(body), limit)
		}
		if r.s.NoFallback {
			err := fmt.Errorf("sched: partition %d request of %d bytes exceeds the %d-byte ship bound", u.id.part, len(body), limit)
			r.failRun(err)
			return nil, err
		}
		return nil, &fallbackError{reason: fmt.Sprintf("request (%d bytes) exceeds the %d-byte ship bound; evaluating locally", len(body), limit)}
	}
	if shipped > 0 {
		r.s.Stats.ShippedBytes.Add(int64(shipped))
	}
	type evalOut struct {
		state []byte
		err   error
	}
	done := make(chan evalOut, 1)
	go func() {
		state, err := w.Eval(ctx, body)
		done <- evalOut{state, err}
	}()
	// Overlap the next unit's ship with this evaluation: push its
	// blocks into the worker's cache while the worker computes.
	if r.s.ShipBlocks && !r.s.NoPrefetch && !forceInline {
		r.prefetch(ctx, wi, wf)
	}
	out := <-done
	if out.err != nil {
		return nil, out.err
	}
	if r.s.ShipBlocks && req.CacheKey != "" {
		r.mu.Lock()
		r.cached[wi][req.CacheKey] = true // shipped payloads are cached after use
		r.mu.Unlock()
		if keyOnly {
			r.s.Stats.CacheHits.Add(1)
			r.s.event("cache-hit", w.Name(), u.id, "evaluated from cached %s (0 payload bytes shipped)", req.CacheKey)
		}
	}
	return out.state, nil
}

// isCacheMiss matches the worker's distinguishable cache-miss answer.
func isCacheMiss(err error) (*xrpc.Error, bool) {
	if xe, ok := xrpc.AsError(err); ok && xe.Name == CacheMissName {
		return xe, true
	}
	return nil, false
}

// prefetch pushes the first still-unshipped queued unit's blocks into
// worker wi's cache — at most one push per eval, bounded by the
// prefetch budget. Failures only cost the optimization: the unit ships
// inline when claimed.
func (r *elasticRun) prefetch(ctx context.Context, wi, wf int) {
	cw, ok := r.s.Workers[wi].(CacheWorker)
	if !ok {
		return
	}
	budget := r.s.PrefetchBytes
	if budget <= 0 {
		budget = r.s.maxShip()
	}
	var target *unit
	var key string
	r.mu.Lock()
	// Bootstrap barrier: until every healthy worker's describe has
	// resolved, the cachedElsewhere check below is blind to keys that
	// worker is about to advertise — a prefetch now could re-ship a
	// payload some peer already holds. Deferring costs nothing; the
	// next attempt prefetches once the descriptions land.
	if r.describedLocked() && r.cacheOK[wi] && !r.failed {
		for _, u := range r.queue {
			if u.failedOn[wi] {
				continue
			}
			k := r.unitKey(u, wf)
			if r.cached[wi][k] || r.prefTried[wi][k] {
				continue
			}
			// Don't burn bytes pushing blocks another healthy worker
			// already holds — affinity will route the unit there. If
			// that worker dies, the steal grace expires and the unit
			// ships inline on whoever claims it.
			if r.cachedElsewhereLocked(u, wi) {
				continue
			}
			r.prefTried[wi][k] = true
			target, key = u, k
			break
		}
	}
	r.mu.Unlock()
	if target == nil {
		return
	}
	blocks, err := r.shipUnitBlocks(target, wf)
	if err != nil || len(blocks) > budget || len(blocks) > r.s.maxShip() {
		return
	}
	if err := cw.PutBlocks(ctx, key, blocks); err != nil {
		r.s.event("prefetch", r.s.Workers[wi].Name(), target.id, "push of %s failed: %v", key, err)
		return
	}
	r.mu.Lock()
	r.cached[wi][key] = true
	r.mu.Unlock()
	r.s.Stats.Prefetches.Add(1)
	r.s.Stats.ShippedBytes.Add(int64(len(blocks)))
	r.s.event("prefetch", r.s.Workers[wi].Name(), target.id, "shipped %d bytes as %s ahead of claim", len(blocks), key)
}

// resolveCache queries the worker's cache capability and seeds the
// known-cached key set from its describe advertisement.
func (r *elasticRun) resolveCache(ctx context.Context, wi int) {
	r.mu.Lock()
	seen := r.cacheSeen[wi]
	r.cacheSeen[wi] = true
	r.mu.Unlock()
	if seen {
		return
	}
	defer func() {
		r.mu.Lock()
		r.cacheDone[wi] = true
		r.signalLocked()
		r.mu.Unlock()
	}()
	cw, ok := r.s.Workers[wi].(CacheWorker)
	if !ok {
		return
	}
	ci, err := cw.CacheInfo(ctx)
	if err != nil || !ci.Enabled {
		return
	}
	r.mu.Lock()
	r.cacheOK[wi] = true
	for _, k := range ci.Keys {
		r.cached[wi][k] = true
	}
	r.mu.Unlock()
}

// unitFailed records a failed evaluation: the worker retires, the unit
// requeues for the survivors (or routes local once exhausted).
func (r *elasticRun) unitFailed(wi int, u *unit, msg string) {
	w := r.s.Workers[wi]
	if r.s.markUnhealthy(wi) {
		r.s.event("retire", w.Name(), u.id, "%s", msg)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.retired[wi] = msg
	u.runners[wi] = false
	delete(u.cancels, wi)
	u.inflight--
	u.failedOn[wi] = true
	u.attempts = append(u.attempts, fmt.Sprintf("%s: %s", w.Name(), msg))
	if !u.done && u.inflight == 0 && !u.queued && !u.local {
		if r.eligibleLocked(u) {
			r.queue = insertByID(r.queue, u)
			u.queued = true
		} else {
			r.routeLocked(u)
		}
	}
	r.reapLocked()
	r.ensureWorkersLocked()
	r.signalLocked()
}

// deliver accepts one unit result. The first valid result wins; a
// speculative duplicate is cross-checked byte-for-byte against the
// accepted state and any divergence aborts the run — determinism makes
// duplicates free, so a difference can only mean corrupt execution.
func (r *elasticRun) deliver(wi int, u *unit, res *unitRes, dur time.Duration, spec bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if wi >= 0 {
		u.runners[wi] = false
		delete(u.cancels, wi)
		u.inflight--
		r.durN++
		r.durSum += dur
		r.s.Stats.Evals.Add(1)
	} else {
		r.s.Stats.LocalEvals.Add(1)
	}
	if r.failed {
		return
	}
	if u.done {
		equal, err := r.statesEqual(u.res, res)
		if err != nil {
			r.failLocked(fmt.Errorf("sched: partition %s: cross-checking speculative duplicate: %w", u.id, err))
			return
		}
		if !equal {
			r.failLocked(fmt.Errorf("sched: partition %s: speculative duplicate diverged from the accepted state byte-for-byte — nondeterministic evaluation, aborting the run", u.id))
			return
		}
		r.s.Stats.SpecDuplicates.Add(1)
		r.s.event("spec-dup", r.runnerName(wi), u.id, "duplicate result verified byte-identical")
		r.signalLocked()
		return
	}
	u.done = true
	u.res = res
	// Cancel the losing runners: their results are redundant (a loser
	// that completes anyway is still cross-checked above), and waiting
	// out a straggler's abandoned duplicate would gate the drain.
	for _, cancel := range u.cancels {
		cancel()
	}
	if spec {
		r.s.Stats.SpecWins.Add(1)
		r.s.event("spec-win", r.runnerName(wi), u.id, "speculative re-execution finished first")
	}
	pw := r.parts[u.id.part]
	pw.left--
	if pw.left == 0 && !pw.closed {
		pw.closed = true
		close(pw.ch)
	}
	r.signalLocked()
}

func (r *elasticRun) runnerName(wi int) string {
	if wi < 0 {
		return "local"
	}
	return r.s.Workers[wi].Name()
}

// statesEqual cross-checks two results for one unit. Raw wire bytes
// compare directly when both results carry them at one format;
// otherwise both canonicalize through the state codec first.
func (r *elasticRun) statesEqual(a, b *unitRes) (bool, error) {
	if a.state != nil && b.state != nil && a.format == b.format {
		return bytes.Equal(a.state, b.state), nil
	}
	ca, err := r.canonState(a)
	if err != nil {
		return false, err
	}
	cb, err := r.canonState(b)
	if err != nil {
		return false, err
	}
	return bytes.Equal(ca, cb), nil
}

func (r *elasticRun) canonState(res *unitRes) ([]byte, error) {
	if res.state != nil && res.format == core.DiskFormatVersion {
		return res.state, nil
	}
	return analysis.MarshalPartitionStateFormat(r.accs, res.world, res.shards, res.tables, core.DiskFormatVersion)
}

// ---- local fallback executors ----

func (r *elasticRun) localLoop() {
	for {
		r.mu.Lock()
		if r.failed || len(r.localQ) == 0 {
			r.localActive--
			r.mu.Unlock()
			return
		}
		u := r.localQ[0]
		r.localQ = r.localQ[1:]
		r.mu.Unlock()
		world, shards, tables, err := r.localEval(u)
		if err != nil {
			r.failRun(err)
			continue
		}
		r.deliver(-1, u, &unitRes{world: world, shards: shards, tables: tables}, 0, false)
	}
}

// localEval is the out-of-core traversal of one unit — exactly what
// RunAllDisk would do for the partition, clipped to the unit's range.
func (r *elasticRun) localEval(u *unit) (*analysis.World, []analysis.Shard, *analysis.LabelTables, error) {
	part := u.id.part
	rs := &analysis.ReaderSource{
		Open:    func() (*core.PartitionReader, error) { return r.s.Corpus.OpenPartition(part) },
		Base:    u.info.Base,
		Records: &u.info.Records,
		Clip:    u.rng,
		Name:    fmt.Sprintf("partition %d", part),
	}
	return rs.Run(r.accs, r.workers, nil)
}

// ---- resolving a partition's result ----

// resolve returns the partition-level triple: the single unit's result,
// or — for a split partition — the sub-range states folded back into
// one partition state (a SharedIndex fold at partition-local bases,
// byte-identical to the unsplit evaluation by the split-parity
// contract).
func (r *elasticRun) resolve(pw *partWait) (*analysis.World, []analysis.Shard, *analysis.LabelTables, error) {
	r.mu.Lock()
	failedErr := r.err
	left := pw.left
	r.mu.Unlock()
	if left > 0 {
		if failedErr != nil {
			return nil, nil, nil, failedErr
		}
		return nil, nil, nil, fmt.Errorf("sched: partition latch opened with %d units unresolved", left)
	}
	pw.foldOnce.Do(func() {
		if len(pw.units) == 1 {
			res := pw.units[0].res
			pw.world, pw.shards, pw.tables = res.world, res.shards, res.tables
			return
		}
		im := &core.Manifest{SharedIndex: true}
		ms := &analysis.MultiSource{Manifest: im}
		for j, u := range pw.units {
			im.AddPartition(core.PartitionInfo{Index: j, Records: u.info.Records}, u.info.WindowStart, u.info.WindowEnd)
			ms.Sources = append(ms.Sources, &analysis.StateSource{World: u.res.world, Shards: u.res.shards, Tables: u.res.tables})
		}
		pw.world, pw.shards, pw.tables, pw.foldErr = ms.Run(r.accs, r.workers, nil)
	})
	return pw.world, pw.shards, pw.tables, pw.foldErr
}
