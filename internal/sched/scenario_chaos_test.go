// Scenario × elastic-scheduler chaos coverage (external test package:
// the scenario registry must not import sched, and sched must not
// import scenario, so the composition is exercised from outside both).
package sched_test

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"blueskies/internal/analysis"
	"blueskies/internal/core"
	"blueskies/internal/scenario"
	"blueskies/internal/sched"
)

// chaosKilledWorker fails every evaluation after its budget — a worker
// killed mid-run (budget 1) or dead on arrival (budget 0).
type chaosKilledWorker struct {
	inner sched.Worker
	left  atomic.Int64
}

func (w *chaosKilledWorker) Name() string { return w.inner.Name() + "-dying" }

func (w *chaosKilledWorker) Eval(ctx context.Context, req []byte) ([]byte, error) {
	if w.left.Add(-1) < 0 {
		return nil, errors.New("worker killed")
	}
	return w.inner.Eval(ctx, req)
}

func (w *chaosKilledWorker) BlockFormats(ctx context.Context) ([]int, error) {
	if fw, ok := w.inner.(sched.FormatsWorker); ok {
		return fw.BlockFormats(ctx)
	}
	return []int{1}, nil
}

// chaosSlowWorker defers every evaluation — the injected straggler the
// speculation path races against.
type chaosSlowWorker struct {
	inner sched.Worker
	delay time.Duration
}

func (w *chaosSlowWorker) Name() string { return w.inner.Name() + "-slow" }

func (w *chaosSlowWorker) Eval(ctx context.Context, req []byte) ([]byte, error) {
	time.Sleep(w.delay)
	return w.inner.Eval(ctx, req)
}

func (w *chaosSlowWorker) BlockFormats(ctx context.Context) ([]int, error) {
	if fw, ok := w.inner.(sched.FormatsWorker); ok {
		return fw.BlockFormats(ctx)
	}
	return []int{1}, nil
}

func spillScenario(t *testing.T, s *scenario.Scenario) *core.Corpus {
	t.Helper()
	dir := t.TempDir()
	if _, err := s.Spill(dir); err != nil {
		t.Fatal(err)
	}
	c, err := core.OpenCorpus(dir)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func compareReports(t *testing.T, label string, got, want []*analysis.Report) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d reports, want %d", label, len(got), len(want))
	}
	for i := range want {
		if got[i].ID != want[i].ID {
			t.Fatalf("%s: report %d is %s, want %s", label, i, got[i].ID, want[i].ID)
		}
		if got[i].String() != want[i].String() {
			t.Errorf("%s: report %s differs:\n--- got ---\n%s\n--- want ---\n%s",
				label, got[i].ID, got[i].String(), want[i].String())
		}
	}
}

// TestElasticScenarioChaosMatrix extends the chaos matrix to scenario
// corpora: the spam-flood (transformed moderation shock) and
// seq-gap-storm (stress-config) corpora run remote under worker death,
// stragglers, speculation, and splitting — in both shipping modes —
// and must stay byte-identical to the local one-worker golden.
func TestElasticScenarioChaosMatrix(t *testing.T) {
	for _, name := range []string{"spam-flood", "seq-gap-storm"} {
		s, ok := scenario.Get(name)
		if !ok {
			t.Fatalf("scenario %s not registered", name)
		}
		golden := analysis.RunAll(s.Dataset(), 1)
		for _, ship := range []bool{false, true} {
			c := spillScenario(t, s)
			dying := &chaosKilledWorker{inner: &sched.Loopback{Server: &sched.Server{}, Label: "dying"}}
			dying.left.Store(1)
			slow := &chaosSlowWorker{inner: &sched.Loopback{Server: &sched.Server{}, Label: "slow"}, delay: 30 * time.Millisecond}
			sc := sched.New(c, dying, slow)
			sc.ShipBlocks = ship
			sc.SpeculateAfter = 60 * time.Millisecond
			sc.SplitFactor = 0.5
			sc.Logf = t.Logf
			got, err := sc.RunAll(2)
			if err != nil {
				t.Fatalf("%s ship=%v: %v", name, ship, err)
			}
			compareReports(t, name+"-chaos", got, golden)
		}
	}
}

// TestElasticScenarioLocalFallback covers the path the chaos matrix
// never reached before: every worker dead on arrival, so the scheduler
// must evaluate the scenario corpus locally out of core — still
// byte-identical to the golden.
func TestElasticScenarioLocalFallback(t *testing.T) {
	s, ok := scenario.Get("spam-flood")
	if !ok {
		t.Fatal("spam-flood not registered")
	}
	golden := analysis.RunAll(s.Dataset(), 1)
	c := spillScenario(t, s)
	dead := &chaosKilledWorker{inner: &sched.Loopback{Server: &sched.Server{}, Label: "dead"}}
	dead.left.Store(0)
	sc := sched.New(c, dead)
	sc.Logf = t.Logf
	got, err := sc.RunAll(2)
	if err != nil {
		t.Fatal(err)
	}
	compareReports(t, "local-fallback", got, golden)

	// With NoFallback the same dead pool must fail loudly instead.
	c2 := spillScenario(t, s)
	dead2 := &chaosKilledWorker{inner: &sched.Loopback{Server: &sched.Server{}, Label: "dead"}}
	dead2.left.Store(0)
	sc2 := sched.New(c2, dead2)
	sc2.NoFallback = true
	if _, err := sc2.RunAll(2); err == nil {
		t.Fatal("NoFallback run with a dead pool succeeded; want a loud failure")
	}
}
