package sched

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"net/url"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"

	"blueskies/internal/analysis"
	"blueskies/internal/cbor"
	"blueskies/internal/core"
	"blueskies/internal/xrpc"
)

// The worker half of the remote-evaluation protocol (DESIGN.md §9).
// A worker serves one XRPC procedure: it receives a partition — either
// a store reference it can open locally or the partition's framed
// block bytes shipped inline — runs the engine's level-one sharded
// traversal over it, and returns the serialized shard state for the
// scheduler's level-two fold. cmd/bskyworker wraps Server in a daemon;
// Loopback executes the same handler in-process (both request and
// state still pass through their wire codecs, so a loopback run
// exercises exactly the remote path minus the socket).

// Protocol method NSIDs.
const (
	// NSIDDescribe is the health/identity query.
	NSIDDescribe = "blueskies.worker.describe"
	// NSIDEvalPartition is the partition-evaluation procedure: CBOR
	// EvalRequest in, CBOR partition state (analysis.StateVersion) out.
	NSIDEvalPartition = "blueskies.worker.evalPartition"
	// NSIDPutBlocks pushes one partition's block payload into the
	// worker's content-addressed cache ahead of evaluation — the
	// prefetch half of the elastic scheduler.
	NSIDPutBlocks = "blueskies.worker.putBlocks"
)

// CacheMissName is the xrpc error name a worker answers with when an
// evaluation references a cache key it cannot serve (never cached,
// evicted, or failed verification). Schedulers match on the name and
// re-ship the bytes inline — a cache miss retires no one.
const CacheMissName = "CacheMiss"

// ContentTypeCBOR labels the protocol's request and response bodies.
const ContentTypeCBOR = "application/cbor"

// ProtocolVersion is the evalPartition request format. Workers reject
// versions newer than they understand; new optional fields don't bump
// it (the CBOR struct decoder ignores unknown keys).
const ProtocolVersion = 1

// MaxShipBytes bounds one shipped partition's framed block bytes — the
// worker-side request body limit.
const MaxShipBytes = 256 << 20

// SupportedBlockFormats lists the partition block-file format versions
// this build reads and writes, ascending — what describe advertises
// so schedulers can downgrade shipped blocks per worker.
func SupportedBlockFormats() []int {
	out := make([]int, 0, core.DiskFormatVersion)
	for v := 1; v <= core.DiskFormatVersion; v++ {
		out = append(out, v)
	}
	return out
}

// EvalRequest is the evalPartition input: which partition to evaluate,
// where its blocks live, and the corpus placement the level-two fold
// assumes. Exactly one of Store (a partition store directory the
// worker can reach) or Blocks (the partition's framed block-file
// bytes, magic and all) must be set.
type EvalRequest struct {
	Version   int      `cbor:"v"`
	Accs      []string `cbor:"accs,omitempty"`
	Store     string   `cbor:"store,omitempty"`
	Partition int      `cbor:"part,omitempty"`
	Blocks    []byte   `cbor:"blocks,omitempty"`
	// Base offsets the partition's record blocks into corpus index
	// space; Records, when set, is the manifest's record-count promise
	// the worker cross-checks after the traversal.
	Base    core.CollectionCounts  `cbor:"base"`
	Records *core.CollectionCounts `cbor:"records,omitempty"`
	// Workers is the traversal worker count (0 = the server's default).
	Workers int `cbor:"workers,omitempty"`
	// MaxFormat is the highest block format version the scheduler
	// decodes; the worker encodes the returned state's embedded world
	// block at min(MaxFormat, its own max). 0 (a pre-v2 scheduler that
	// never sends the field) means format 1.
	MaxFormat int `cbor:"maxFormat,omitempty"`
	// CacheKey names the partition payload in the worker's block cache
	// (CacheKey function: manifest fingerprint + partition + format).
	// With inline Blocks it asks the worker to cache them after use;
	// alone — no Blocks, no Store — it asks the worker to evaluate
	// straight from its cache, answering CacheMissName when it can't.
	CacheKey string `cbor:"cacheKey,omitempty"`
	// Range, when set, restricts the evaluation to one contiguous
	// per-collection row sub-range of the partition's blocks (dynamic
	// partition splitting). Base and Records then describe the
	// sub-range. Workers predating the field would evaluate the whole
	// partition — and fail the Records cross-check, loudly.
	Range *core.RowRange `cbor:"range,omitempty"`
}

// PutBlocksRequest is the putBlocks input: one partition's framed
// block payload and the content address to store it under.
type PutBlocksRequest struct {
	Version int    `cbor:"v"`
	Key     string `cbor:"key"`
	Blocks  []byte `cbor:"blocks"`
}

// PutBlocksResponse acknowledges a stored payload.
type PutBlocksResponse struct {
	Stored     bool  `json:"stored"`
	CacheBytes int64 `json:"cacheBytes"`
}

// DescribeResponse is the describe query output.
type DescribeResponse struct {
	Evals     int64  `json:"evals"`
	StoreRoot string `json:"storeRoot,omitempty"`
	// Formats lists the block format versions this worker reads,
	// ascending. Absent on pre-v2 workers, which a scheduler must
	// treat as format-1-only.
	Formats []int `json:"formats,omitempty"`
	// CacheEnabled reports whether the worker runs a block cache
	// (accepts putBlocks and CacheKey-only evaluations).
	CacheEnabled bool `json:"cacheEnabled,omitempty"`
	// Cached lists the cache's content-address keys, sorted — how a
	// scheduler learns which partitions it can skip shipping.
	Cached []string `json:"cached,omitempty"`
	// CacheBytes is the cache's current payload volume.
	CacheBytes int64 `json:"cacheBytes,omitempty"`
}

// Server evaluates partitions for remote schedulers. The evaluation is
// always the paper's full engine (analysis.NewFullEngine); the request
// fingerprint guards against a scheduler expecting a different set.
type Server struct {
	// StoreRoot, when set, restricts store-reference requests to
	// directories under it; block-shipping requests are unaffected.
	StoreRoot string
	// Workers is the per-evaluation traversal worker count requests
	// inherit when they don't set their own (0 = autotune).
	Workers int
	// Cache, when set, is the worker's content-addressed block cache:
	// shipped payloads carrying a CacheKey are stored after use,
	// putBlocks prefetches are accepted, describe advertises the
	// cached keys, and CacheKey-only requests evaluate without any
	// bytes on the wire.
	Cache *BlockCache

	evals atomic.Int64
}

// Evals reports how many partition evaluations completed.
func (s *Server) Evals() int64 { return s.evals.Load() }

// Mux returns the worker's XRPC router, with the body limit raised to
// MaxShipBytes so whole partitions fit.
func (s *Server) Mux() *xrpc.Mux {
	m := xrpc.NewMux()
	m.MaxBodyBytes = MaxShipBytes
	m.Query(NSIDDescribe, func(context.Context, url.Values, []byte) (any, error) {
		return s.Describe(), nil
	})
	m.Procedure(NSIDEvalPartition, func(_ context.Context, _ url.Values, input []byte) (any, error) {
		state, err := s.EvalPartition(input)
		if err != nil {
			return nil, err
		}
		return xrpc.Raw{ContentType: ContentTypeCBOR, Data: state}, nil
	})
	m.Procedure(NSIDPutBlocks, func(_ context.Context, _ url.Values, input []byte) (any, error) {
		return s.PutBlocks(input)
	})
	return m
}

// Describe assembles the describe query's answer.
func (s *Server) Describe() *DescribeResponse {
	dr := &DescribeResponse{Evals: s.Evals(), StoreRoot: s.StoreRoot, Formats: SupportedBlockFormats()}
	if s.Cache != nil {
		dr.CacheEnabled = true
		dr.Cached = s.Cache.Keys()
		dr.CacheBytes = s.Cache.Bytes()
	}
	return dr
}

// PutBlocks stores one prefetched partition payload in the cache. The
// payload's frame header is validated (magic + a known format version)
// before storing — the cache never holds bytes that could not have
// come from a partition store; the per-frame checksums are verified at
// evaluation time like any shipped payload.
func (s *Server) PutBlocks(input []byte) (*PutBlocksResponse, error) {
	if s.Cache == nil {
		return nil, xrpc.ErrInvalidRequest("worker runs no block cache")
	}
	var req PutBlocksRequest
	if err := cbor.Unmarshal(input, &req); err != nil {
		return nil, xrpc.ErrInvalidRequest("decode putBlocks request: %v", err)
	}
	if req.Version < 1 || req.Version > ProtocolVersion {
		return nil, xrpc.ErrInvalidRequest("protocol version %d not supported (worker speaks ≤ %d)", req.Version, ProtocolVersion)
	}
	if req.Key == "" {
		return nil, xrpc.ErrInvalidRequest("putBlocks without a cache key")
	}
	if len(req.Blocks) == 0 {
		return nil, xrpc.ErrInvalidRequest("putBlocks without block bytes")
	}
	if pr, err := core.NewPartitionReader(bytes.NewReader(req.Blocks)); err != nil {
		return nil, xrpc.ErrInvalidRequest("payload is not a partition block file: %v", err)
	} else {
		pr.Close()
	}
	if err := s.Cache.Put(req.Key, req.Blocks); err != nil {
		return nil, xrpc.ErrInternal("cache store: %v", err)
	}
	return &PutBlocksResponse{Stored: true, CacheBytes: s.Cache.Bytes()}, nil
}

// EvalPartition decodes one EvalRequest, runs the level-one traversal,
// and returns the serialized partition state.
func (s *Server) EvalPartition(input []byte) ([]byte, error) {
	var req EvalRequest
	if err := cbor.Unmarshal(input, &req); err != nil {
		return nil, xrpc.ErrInvalidRequest("decode eval request: %v", err)
	}
	if req.Version < 1 || req.Version > ProtocolVersion {
		return nil, xrpc.ErrInvalidRequest("protocol version %d not supported (worker speaks ≤ %d)", req.Version, ProtocolVersion)
	}
	eng := analysis.NewFullEngine()
	if fp := eng.Fingerprint(); len(req.Accs) > 0 && !equalStrings(req.Accs, fp) {
		return nil, xrpc.ErrInvalidRequest("scheduler expects accumulators %v, worker runs %v", req.Accs, fp)
	}
	workers := req.Workers
	if workers <= 0 {
		workers = s.Workers
	}
	eng.Workers(workers)
	src, err := s.source(&req)
	if err != nil {
		return nil, err
	}
	blockFormat := req.MaxFormat
	if blockFormat < 1 {
		blockFormat = 1 // pre-v2 schedulers never send the field
	}
	if blockFormat > core.DiskFormatVersion {
		blockFormat = core.DiskFormatVersion
	}
	state, err := eng.SnapshotFormat(src, blockFormat)
	if err != nil {
		return nil, xrpc.ErrInternal("evaluate partition: %v", err)
	}
	if s.Cache != nil && req.CacheKey != "" && len(req.Blocks) > 0 {
		// Cache only after the traversal proved every frame decodes:
		// the cache never holds a payload that failed evaluation. A
		// full cache or dead disk is the scheduler's loss, not an
		// evaluation failure — the state is already computed.
		_ = s.Cache.Put(req.CacheKey, req.Blocks)
	}
	s.evals.Add(1)
	return state, nil
}

// source resolves the request's partition into a block-stream Source.
func (s *Server) source(req *EvalRequest) (analysis.Source, error) {
	switch {
	case len(req.Blocks) > 0 && req.Store != "":
		return nil, xrpc.ErrInvalidRequest("request carries both a store reference and inline blocks")
	case req.Store != "" && req.CacheKey != "":
		return nil, xrpc.ErrInvalidRequest("request carries both a store reference and a cache key")
	case len(req.Blocks) > 0:
		return &analysis.ReaderSource{
			Open: func() (*core.PartitionReader, error) {
				return core.NewPartitionReader(bytes.NewReader(req.Blocks))
			},
			Base:    req.Base,
			Records: req.Records,
			Clip:    req.Range,
			Name:    "streamed blocks",
		}, nil
	case req.Store != "":
		if err := s.allowStore(req.Store); err != nil {
			return nil, err
		}
		c, err := core.OpenCorpus(req.Store)
		if err != nil {
			return nil, xrpc.ErrInvalidRequest("open store %s: %v", req.Store, err)
		}
		if req.Partition < 0 || req.Partition >= len(c.Manifest.Partitions) {
			return nil, xrpc.ErrInvalidRequest("partition %d out of range (store has %d)", req.Partition, len(c.Manifest.Partitions))
		}
		part := req.Partition
		return &analysis.ReaderSource{
			Open:    func() (*core.PartitionReader, error) { return c.OpenPartition(part) },
			Base:    req.Base,
			Records: req.Records,
			Clip:    req.Range,
			Name:    fmt.Sprintf("partition %d of %s", part, req.Store),
		}, nil
	case req.CacheKey != "":
		if s.Cache == nil {
			return nil, xrpc.ErrNamed(http.StatusNotFound, CacheMissName, "worker runs no block cache")
		}
		blocks, err := s.Cache.Get(req.CacheKey)
		if err != nil {
			// Miss and corruption both answer CacheMissName: either way
			// the scheduler must ship the bytes again. Corruption is
			// named in the message so the degrade is loud in logs.
			return nil, xrpc.ErrNamed(http.StatusNotFound, CacheMissName, "cache cannot serve %s: %v", req.CacheKey, err)
		}
		return &analysis.ReaderSource{
			Open: func() (*core.PartitionReader, error) {
				return core.NewPartitionReader(bytes.NewReader(blocks))
			},
			Base:    req.Base,
			Records: req.Records,
			Clip:    req.Range,
			Name:    fmt.Sprintf("cached blocks %s", req.CacheKey),
		}, nil
	default:
		return nil, xrpc.ErrInvalidRequest("request carries neither a store reference, inline blocks, nor a cache key")
	}
}

// allowStore enforces the StoreRoot restriction.
func (s *Server) allowStore(dir string) error {
	if s.StoreRoot == "" {
		return nil
	}
	root := filepath.Clean(s.StoreRoot)
	d := filepath.Clean(dir)
	if d != root && !strings.HasPrefix(d, root+string(filepath.Separator)) {
		return xrpc.ErrInvalidRequest("store %s outside the worker's root %s", dir, root)
	}
	return nil
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Loopback is the in-process worker: Eval runs the Server handler
// directly, so the full request → traversal → serialized-state path is
// exercised without a socket. It is both the test double and the
// single-machine execution mode of `bskyanalyze -workers-at loopback`.
type Loopback struct {
	Server *Server
	// Label distinguishes loopback workers in diagnostics.
	Label string
}

// Name implements Worker.
func (l *Loopback) Name() string {
	if l.Label != "" {
		return l.Label
	}
	return "loopback"
}

// Eval implements Worker.
func (l *Loopback) Eval(_ context.Context, req []byte) ([]byte, error) {
	return l.Server.EvalPartition(req)
}

// BlockFormats implements FormatsWorker: an in-process worker reads
// every format this build does.
func (l *Loopback) BlockFormats(context.Context) ([]int, error) {
	return SupportedBlockFormats(), nil
}

// CacheInfo implements CacheWorker straight off the server's cache.
func (l *Loopback) CacheInfo(context.Context) (CacheInfo, error) {
	dr := l.Server.Describe()
	return CacheInfo{Enabled: dr.CacheEnabled, Keys: dr.Cached, Bytes: dr.CacheBytes}, nil
}

// PutBlocks implements CacheWorker through the same handler the
// daemon serves, wire codec included.
func (l *Loopback) PutBlocks(_ context.Context, key string, blocks []byte) error {
	body, err := cbor.Marshal(&PutBlocksRequest{Version: ProtocolVersion, Key: key, Blocks: blocks})
	if err != nil {
		return err
	}
	_, err = l.Server.PutBlocks(body)
	return err
}

// ReadPartitionBlocks reads partition k's framed block-file bytes from
// an opened store — the shipping form for workers that cannot reach
// the store path.
func ReadPartitionBlocks(c *core.Corpus, k int) ([]byte, error) {
	if k < 0 || k >= len(c.Manifest.Partitions) {
		return nil, fmt.Errorf("sched: partition %d out of range (corpus has %d)", k, len(c.Manifest.Partitions))
	}
	return os.ReadFile(filepath.Join(c.Dir, core.PartitionFileName(k)))
}
