package sched

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"blueskies/internal/cbor"
	"blueskies/internal/core"
	"blueskies/internal/synth"
)

// ---- block cache unit tests ----

func TestBlockCacheRoundTrip(t *testing.T) {
	for _, dir := range []string{"", t.TempDir()} {
		c, err := NewBlockCache(dir, 1<<20)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Get("absent"); err != ErrCacheMiss {
			t.Fatalf("dir=%q: Get(absent) = %v, want ErrCacheMiss", dir, err)
		}
		payload := []byte("framed partition bytes")
		if err := c.Put("k1", payload); err != nil {
			t.Fatal(err)
		}
		got, err := c.Get("k1")
		if err != nil || !bytes.Equal(got, payload) {
			t.Fatalf("dir=%q: Get(k1) = %q, %v", dir, got, err)
		}
		if !c.Has("k1") || c.Has("k2") {
			t.Fatalf("dir=%q: Has is wrong", dir)
		}
		if c.Bytes() != int64(len(payload)) {
			t.Fatalf("dir=%q: Bytes() = %d, want %d", dir, c.Bytes(), len(payload))
		}
	}
}

func TestBlockCacheKeysSorted(t *testing.T) {
	c, _ := NewBlockCache("", 1<<20)
	for _, k := range []string{"zz", "aa", "mm"} {
		if err := c.Put(k, []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	got := c.Keys()
	want := []string{"aa", "mm", "zz"}
	if len(got) != len(want) {
		t.Fatalf("Keys() = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Keys() = %v, want %v", got, want)
		}
	}
}

func TestBlockCacheEvictsLRU(t *testing.T) {
	c, _ := NewBlockCache("", 30)
	for _, k := range []string{"a", "b", "c"} {
		if err := c.Put(k, make([]byte, 10)); err != nil {
			t.Fatal(err)
		}
	}
	// Warm "a" so "b" is the coldest, then overflow.
	if _, err := c.Get("a"); err != nil {
		t.Fatal(err)
	}
	if err := c.Put("d", make([]byte, 10)); err != nil {
		t.Fatal(err)
	}
	if c.Has("b") {
		t.Fatal("coldest entry b survived eviction")
	}
	if !c.Has("a") || !c.Has("c") || !c.Has("d") {
		t.Fatalf("wrong eviction victim; keys = %v", c.Keys())
	}
	if err := c.Put("huge", make([]byte, 31)); err == nil {
		t.Fatal("cache accepted a payload bigger than its bound")
	}
}

func TestBlockCachePersistsAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	c1, _ := NewBlockCache(dir, 1<<20)
	if err := c1.Put("persist/me", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	c2, err := NewBlockCache(dir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c2.Get("persist/me")
	if err != nil || string(got) != "payload" {
		t.Fatalf("reopened cache: Get = %q, %v", got, err)
	}
}

func TestBlockCacheDetectsCorruption(t *testing.T) {
	dir := t.TempDir()
	c, _ := NewBlockCache(dir, 1<<20)
	if err := c.Put("k", []byte("legitimate bytes")); err != nil {
		t.Fatal(err)
	}
	corruptCacheDir(t, dir)
	if _, err := c.Get("k"); err == nil || !strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("Get over a corrupted entry = %v, want ErrCacheCorrupt", err)
	}
	// The bad entry must be evicted: the next read is a plain miss.
	if _, err := c.Get("k"); err != ErrCacheMiss {
		t.Fatalf("corrupt entry was not evicted: %v", err)
	}
}

// corruptCacheDir flips every cache entry file in dir into garbage.
func corruptCacheDir(t *testing.T, dir string) {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), ".blk") {
			if err := os.WriteFile(filepath.Join(dir, e.Name()), []byte("garbage, not a cache entry"), 0o644); err != nil {
				t.Fatal(err)
			}
			n++
		}
	}
	if n == 0 {
		t.Fatal("no cache entries to corrupt")
	}
}

// ---- worker cache endpoints ----

func TestWorkerPutBlocksHostile(t *testing.T) {
	c := spillN(t, 2)
	blocks, err := ReadPartitionBlocks(c, 0)
	if err != nil {
		t.Fatal(err)
	}
	cache, _ := NewBlockCache("", 1<<30)
	srv := &Server{Cache: cache}
	enc := func(req *PutBlocksRequest) []byte {
		b, err := cbor.Marshal(req)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	cases := []struct {
		name string
		srv  *Server
		req  []byte
	}{
		{"no cache", &Server{}, enc(&PutBlocksRequest{Version: 1, Key: "k", Blocks: blocks})},
		{"garbage body", srv, []byte("not cbor")},
		{"future version", srv, enc(&PutBlocksRequest{Version: ProtocolVersion + 1, Key: "k", Blocks: blocks})},
		{"empty key", srv, enc(&PutBlocksRequest{Version: 1, Blocks: blocks})},
		{"empty blocks", srv, enc(&PutBlocksRequest{Version: 1, Key: "k"})},
		{"not a block file", srv, enc(&PutBlocksRequest{Version: 1, Key: "k", Blocks: []byte("junk payload")})},
	}
	for _, tc := range cases {
		if _, err := tc.srv.PutBlocks(tc.req); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	if cache.Bytes() != 0 {
		t.Fatal("a rejected putBlocks left bytes in the cache")
	}
	resp, err := srv.PutBlocks(enc(&PutBlocksRequest{Version: 1, Key: "good", Blocks: blocks}))
	if err != nil || !resp.Stored {
		t.Fatalf("valid putBlocks: %+v, %v", resp, err)
	}
	dr := srv.Describe()
	if !dr.CacheEnabled || len(dr.Cached) != 1 || dr.Cached[0] != "good" || dr.CacheBytes != int64(len(blocks)) {
		t.Fatalf("describe does not advertise the stored payload: %+v", dr)
	}
}

func TestWorkerEvalFromCacheOnly(t *testing.T) {
	c := spillN(t, 2)
	blocks, err := ReadPartitionBlocks(c, 0)
	if err != nil {
		t.Fatal(err)
	}
	cache, _ := NewBlockCache("", 1<<30)
	srv := &Server{Cache: cache}
	info := c.Manifest.Partitions[0]
	req := &EvalRequest{
		Version: 1,
		Base:    info.Base,
		Records: &info.Records,
		Workers: 1,
	}
	// An unknown key answers the named cache-miss error, not a generic one.
	req.CacheKey = "nope"
	if _, err := srv.EvalPartition(mustCBOR(t, req)); err == nil {
		t.Fatal("eval from an absent cache key succeeded")
	} else if _, ok := isCacheMiss(err); !ok {
		t.Fatalf("absent key error = %v, want name %s", err, CacheMissName)
	}
	// Inline eval with a cache key stores the payload...
	req.CacheKey = "k0"
	req.Blocks = blocks
	wantState, err := srv.EvalPartition(mustCBOR(t, req))
	if err != nil {
		t.Fatal(err)
	}
	// ...so the same evaluation runs from the cache with zero payload
	// bytes, returning byte-identical state.
	req.Blocks = nil
	gotState, err := srv.EvalPartition(mustCBOR(t, req))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotState, wantState) {
		t.Fatal("cached evaluation differs from the inline evaluation")
	}
	// Store reference + cache key is ambiguous and rejected.
	req.Blocks = nil
	req.Store = c.Dir
	if _, err := srv.EvalPartition(mustCBOR(t, req)); err == nil {
		t.Fatal("store+cacheKey request accepted")
	}
}

func mustCBOR(t *testing.T, v any) []byte {
	t.Helper()
	b, err := cbor.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// ---- elastic scheduler: warm cache ----

// TestElasticWarmCacheParity is the caching half of the tentpole's
// acceptance gate: a second run over the same corpus against workers
// holding warm block caches must ship (almost) no payload bytes —
// every evaluation resolves by cache key — and stay byte-identical to
// the golden.
func TestElasticWarmCacheParity(t *testing.T) {
	c := spillN(t, 4)
	cache0, _ := NewBlockCache("", 1<<30)
	cache1, _ := NewBlockCache("", 1<<30)
	w0 := &Loopback{Server: &Server{Cache: cache0}, Label: "w0"}
	w1 := &Loopback{Server: &Server{Cache: cache1}, Label: "w1"}

	cold := New(c, w0, w1)
	cold.ShipBlocks = true
	cold.Logf = t.Logf
	got, err := cold.RunAll(2)
	if err != nil {
		t.Fatal(err)
	}
	compareToGolden(t, "elastic-cold", got)
	coldBytes := cold.Stats.ShippedBytes.Load()
	if coldBytes == 0 {
		t.Fatal("cold run shipped no bytes")
	}

	warm := New(c, w0, w1)
	warm.ShipBlocks = true
	// A long straggler threshold keeps the steal grace generous: no
	// worker re-ships a unit its peer holds cached just because the
	// peer is a few evaluations behind.
	warm.SpeculateAfter = 5 * time.Second
	warm.Logf = t.Logf
	got, err = warm.RunAll(2)
	if err != nil {
		t.Fatal(err)
	}
	compareToGolden(t, "elastic-warm", got)
	warmBytes := warm.Stats.ShippedBytes.Load()
	if warmBytes*100 >= coldBytes {
		t.Fatalf("warm run shipped %d bytes, cold shipped %d: want < 1%%", warmBytes, coldBytes)
	}
	if hits := warm.Stats.CacheHits.Load(); hits < 4 {
		t.Fatalf("warm run served %d cache hits, want ≥ 4 (one per partition)", hits)
	}
}

// TestElasticStaleFingerprintReships pins cache addressing: a
// different corpus (here: the same dataset split differently, so every
// manifest fingerprint changes) must not hit keys cached for the old
// one — stale state is unreachable by construction, never served.
func TestElasticStaleFingerprintReships(t *testing.T) {
	cache, _ := NewBlockCache("", 1<<30)
	w := &Loopback{Server: &Server{Cache: cache}, Label: "w0"}

	warmup := New(spillN(t, 4), w)
	warmup.ShipBlocks = true
	warmup.Logf = t.Logf
	if _, err := warmup.RunAll(2); err != nil {
		t.Fatal(err)
	}
	if cache.Bytes() == 0 {
		t.Fatal("warmup cached nothing")
	}

	other := New(spillN(t, 8), w)
	other.ShipBlocks = true
	// No prefetch: a cache hit below could then only come from a key
	// cached before this run — i.e. served stale state.
	other.NoPrefetch = true
	other.Logf = t.Logf
	got, err := other.RunAll(2)
	if err != nil {
		t.Fatal(err)
	}
	compareToGolden(t, "elastic-stale-fp", got)
	if hits := other.Stats.CacheHits.Load(); hits != 0 {
		t.Fatalf("differently-partitioned corpus got %d cache hits off stale keys", hits)
	}
	if other.Stats.ShippedBytes.Load() == 0 {
		t.Fatal("re-partitioned corpus shipped nothing: stale cache served it")
	}
}

// TestElasticCacheCorruptionReships pins the loud-degrade path: a
// worker whose cache directory rots under it answers CacheMiss, the
// scheduler re-ships the bytes inline, the worker is NOT retired, and
// the output stays byte-identical.
func TestElasticCacheCorruptionReships(t *testing.T) {
	c := spillN(t, 4)
	dir := t.TempDir()
	cache, err := NewBlockCache(dir, 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	w := &Loopback{Server: &Server{Cache: cache}, Label: "w0"}

	warmup := New(c, w)
	warmup.ShipBlocks = true
	warmup.Logf = t.Logf
	if _, err := warmup.RunAll(2); err != nil {
		t.Fatal(err)
	}
	corruptCacheDir(t, dir)

	s := New(c, w)
	s.ShipBlocks = true
	s.Logf = t.Logf
	got, err := s.RunAll(2)
	if err != nil {
		t.Fatal(err)
	}
	compareToGolden(t, "elastic-corrupt-cache", got)
	if misses := s.Stats.CacheMisses.Load(); misses < 1 {
		t.Fatalf("corrupted cache produced %d misses, want ≥ 1", misses)
	}
	if !s.isHealthy(0) {
		t.Fatal("cache corruption retired the worker; it must only cost the optimization")
	}
	if s.Stats.ShippedBytes.Load() == 0 {
		t.Fatal("nothing was re-shipped after corruption")
	}
}

// ---- elastic scheduler: speculation ----

// delayedWorker defers every evaluation by a fixed delay — the
// injected straggler.
type delayedWorker struct {
	inner Worker
	delay time.Duration
}

func (w *delayedWorker) Name() string { return w.inner.Name() + "-slow" }
func (w *delayedWorker) Eval(ctx context.Context, req []byte) ([]byte, error) {
	time.Sleep(w.delay)
	return w.inner.Eval(ctx, req)
}
func (w *delayedWorker) BlockFormats(ctx context.Context) ([]int, error) {
	if fw, ok := w.inner.(FormatsWorker); ok {
		return fw.BlockFormats(ctx)
	}
	return []int{1}, nil
}

// TestElasticSpeculationCoversStraggler is the speculation half of the
// acceptance gate: with one worker delaying every evaluation ~100×,
// the fast worker re-executes the straggler's in-flight unit and its
// result lands first — the straggler no longer gates the run, and the
// output is still byte-identical (the late duplicate is cross-checked).
func TestElasticSpeculationCoversStraggler(t *testing.T) {
	c := spillN(t, 4)
	fast := &Loopback{Server: &Server{}, Label: "fast"}
	slow := &delayedWorker{inner: &Loopback{Server: &Server{}, Label: "straggler"}, delay: 500 * time.Millisecond}
	s := New(c, fast, slow)
	s.ShipBlocks = true
	s.SpeculateAfter = 10 * time.Millisecond
	s.Logf = t.Logf
	got, err := s.RunAll(2)
	if err != nil {
		t.Fatal(err)
	}
	compareToGolden(t, "elastic-speculation", got)
	if n := s.Stats.Speculations.Load(); n < 1 {
		t.Fatalf("no speculation launched against a 500ms straggler (got %d)", n)
	}
	if n := s.Stats.SpecWins.Load(); n < 1 {
		t.Fatalf("speculative copies never beat the straggler (got %d wins)", n)
	}
}

// divergingWorker swaps the shipped blocks for a shadow corpus whose
// record counts are identical but whose contents differ: the returned
// state passes the record-count cross-check but is wrong — the canned
// nondeterminism speculation's cross-check must catch.
type divergingWorker struct {
	inner  *Loopback
	shadow *core.Corpus
	delay  time.Duration
}

func (w *divergingWorker) Name() string { return w.inner.Name() + "-evil" }
func (w *divergingWorker) Eval(ctx context.Context, body []byte) ([]byte, error) {
	time.Sleep(w.delay)
	var req EvalRequest
	if err := cbor.Unmarshal(body, &req); err != nil {
		return nil, err
	}
	for k := range w.shadow.Manifest.Partitions {
		if w.shadow.Manifest.Partitions[k].Base == req.Base {
			blocks, err := ReadPartitionBlocks(w.shadow, k)
			if err != nil {
				return nil, err
			}
			req.Blocks = blocks
			break
		}
	}
	mutated, err := cbor.Marshal(&req)
	if err != nil {
		return nil, err
	}
	return w.inner.Eval(ctx, mutated)
}
func (w *divergingWorker) BlockFormats(ctx context.Context) ([]int, error) {
	return w.inner.BlockFormats(ctx)
}

// shadowCorpus writes a corpus structurally identical to the test
// corpus (same counts everywhere) with mutated post engagement in
// every quarter of the dataset.
func shadowCorpus(t *testing.T, n int) *core.Corpus {
	t.Helper()
	ds2 := synth.Generate(synth.Config{Scale: 2000, Seed: 42})
	for i := 0; i < len(ds2.Posts); i += len(ds2.Posts)/8 + 1 {
		ds2.Posts[i].Likes += 100
	}
	parts, m := core.Split(ds2, n)
	dir := t.TempDir()
	if err := core.WriteCorpus(dir, parts, m); err != nil {
		t.Fatal(err)
	}
	c, err := core.OpenCorpus(dir)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestElasticSpeculativeDivergenceFailsRun pins the validity rule:
// when a speculative duplicate and the accepted result disagree, the
// run must fail loudly — never silently pick one.
func TestElasticSpeculativeDivergenceFailsRun(t *testing.T) {
	c := spillN(t, 4)
	honest := &Loopback{Server: &Server{}, Label: "honest"}
	evil := &divergingWorker{
		inner:  &Loopback{Server: &Server{}, Label: "evil"},
		shadow: shadowCorpus(t, 4),
		delay:  300 * time.Millisecond,
	}
	s := New(c, honest, evil)
	s.ShipBlocks = true
	s.SpeculateAfter = 10 * time.Millisecond
	s.Logf = t.Logf
	_, err := s.RunAll(2)
	if err == nil {
		t.Fatal("divergent speculative duplicate did not fail the run")
	}
	if !strings.Contains(err.Error(), "diverged") {
		t.Fatalf("divergence error = %v, want it to name the divergence", err)
	}
}

// ---- elastic scheduler: dynamic splitting ----

// TestElasticSplitParity forces every partition through the dynamic
// splitting path (a sub-median SplitFactor marks them all skewed) and
// requires the sub-range evaluations to fold back byte-identical to
// the golden — the remote counterpart of the split-parity contract —
// in both shipping modes.
func TestElasticSplitParity(t *testing.T) {
	for _, ship := range []bool{false, true} {
		c := spillN(t, 4)
		s := New(c,
			&Loopback{Server: &Server{}, Label: "w0"},
			&Loopback{Server: &Server{}, Label: "w1"},
		)
		s.ShipBlocks = ship
		s.SplitFactor = 0.5
		s.Logf = t.Logf
		got, err := s.RunAll(2)
		if err != nil {
			t.Fatalf("ship=%v: %v", ship, err)
		}
		compareToGolden(t, "elastic-split", got)
		if n := s.Stats.Splits.Load(); n != 4 {
			t.Fatalf("ship=%v: %d partitions split, want all 4", ship, n)
		}
	}
}

// TestElasticSplitSinglePartition pins the guard: a one-partition
// corpus has no sibling median to call it skewed against, so it never
// splits regardless of the factor.
func TestElasticSplitSinglePartition(t *testing.T) {
	c := spillN(t, 1)
	s := New(c, &Loopback{Server: &Server{}, Label: "w0"})
	s.ShipBlocks = true
	s.SplitFactor = 0.01
	s.Logf = t.Logf
	got, err := s.RunAll(2)
	if err != nil {
		t.Fatal(err)
	}
	compareToGolden(t, "elastic-split-single", got)
	if s.Stats.Splits.Load() != 0 {
		t.Fatal("single-partition corpus split")
	}
}

// ---- elastic scheduler: chaos matrix ----

// TestElasticChaosMatrix is the satellite CI scenario run in-process:
// two workers where one dies after its first evaluation and the other
// delays every evaluation (straggler), with stealing, speculation, and
// splitting all enabled — across both shipping modes the output must
// remain byte-identical to the golden.
func TestElasticChaosMatrix(t *testing.T) {
	for _, ship := range []bool{false, true} {
		c := spillN(t, 8)
		dying := &dyingWorker{inner: &Loopback{Server: &Server{}, Label: "dying"}}
		dying.left.Store(1)
		slow := &delayedWorker{inner: &Loopback{Server: &Server{}, Label: "slow"}, delay: 30 * time.Millisecond}
		s := New(c, dying, slow)
		s.ShipBlocks = ship
		s.SpeculateAfter = 60 * time.Millisecond
		s.SplitFactor = 0.5
		s.Logf = t.Logf
		got, err := s.RunAll(2)
		if err != nil {
			t.Fatalf("ship=%v: %v", ship, err)
		}
		compareToGolden(t, "elastic-chaos", got)
	}
}

// TestElasticStatsSummary smoke-checks the stats line renders every
// counter (the cmd layer prints it after distributed runs).
func TestElasticStatsSummary(t *testing.T) {
	c := spillN(t, 2)
	s := New(c, &Loopback{Server: &Server{}, Label: "w0"})
	s.ShipBlocks = true
	s.Logf = t.Logf
	if _, err := s.RunAll(2); err != nil {
		t.Fatal(err)
	}
	sum := s.Stats.Summary()
	for _, field := range []string{"evals=", "steals=", "speculations=", "splits=", "cache-hits=", "shipped-bytes="} {
		if !strings.Contains(sum, field) {
			t.Fatalf("summary %q lacks %s", sum, field)
		}
	}
	if !strings.Contains(sum, "evals=2") {
		t.Fatalf("summary %q: want evals=2", sum)
	}
}

// TestSubPartitionInfosContiguity pins the split arithmetic the
// sub-range units rely on: sub-bases are contiguous corpus-global
// prefix sums and the sub-records sum to the parent's.
func TestSubPartitionInfosContiguity(t *testing.T) {
	c := spillN(t, 2)
	parent := c.Manifest.Partitions[1]
	for _, n := range []int{2, 3, 5} {
		subs := core.SubPartitionInfos(parent, n)
		if len(subs) != n {
			t.Fatalf("n=%d: got %d subs", n, len(subs))
		}
		var sum core.CollectionCounts
		base := parent.Base
		for j, sub := range subs {
			if sub.Base != base {
				t.Fatalf("n=%d sub %d: base %+v, want %+v", n, j, sub.Base, base)
			}
			base.Add(sub.Records)
			sum.Add(sub.Records)
		}
		if sum != parent.Records {
			t.Fatalf("n=%d: sub records sum %+v, want %+v", n, sum, parent.Records)
		}
		// The row-range of the first sub carries the facts exactly once.
		r0 := core.SubRowRange(parent, subs[0], true)
		r1 := core.SubRowRange(parent, subs[1], false)
		if !r0.Facts || r1.Facts {
			t.Fatal("facts must ride on exactly the first sub-range")
		}
	}
}

// ---- elastic scheduler: content-hash cache keys ----

// TestElasticCrossCorpusCacheSharing pins the content-hash cache
// addressing: a *different* corpus (new manifest identity, so a new
// fingerprint) whose partition bytes are identical must warm-hit the
// worker caches filled by the first corpus — the keys address the
// partition content, not the corpus that shipped it.
func TestElasticCrossCorpusCacheSharing(t *testing.T) {
	cache, _ := NewBlockCache("", 1<<30)
	w := &Loopback{Server: &Server{Cache: cache}, Label: "w0"}

	a := spillN(t, 4)
	cold := New(a, w)
	cold.ShipBlocks = true
	cold.Logf = t.Logf
	got, err := cold.RunAll(2)
	if err != nil {
		t.Fatal(err)
	}
	compareToGolden(t, "cross-corpus-cold", got)
	if cold.Stats.ShippedBytes.Load() == 0 {
		t.Fatal("cold run shipped nothing")
	}

	// Corpus B: byte-identical partition files under a manifest with a
	// different seed — a re-registered copy of the same data. Its
	// fingerprint differs, so fingerprint-scoped keys could never hit.
	dirB := t.TempDir()
	for k := range a.Manifest.Partitions {
		data, err := os.ReadFile(filepath.Join(a.Dir, core.PartitionFileName(k)))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dirB, core.PartitionFileName(k)), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	m2 := *a.Manifest
	m2.Partitions = append([]core.PartitionInfo(nil), a.Manifest.Partitions...)
	m2.Seed = a.Manifest.Seed + 1
	if err := core.WriteManifestVersion(dirB, &m2, a.Version); err != nil {
		t.Fatal(err)
	}
	b, err := core.OpenCorpus(dirB)
	if err != nil {
		t.Fatal(err)
	}
	if b.Manifest.Fingerprint() == a.Manifest.Fingerprint() {
		t.Fatal("corpus B has corpus A's fingerprint; the test would prove nothing")
	}

	warm := New(b, w)
	warm.ShipBlocks = true
	warm.SpeculateAfter = 5 * time.Second
	warm.Logf = t.Logf
	got, err = warm.RunAll(2)
	if err != nil {
		t.Fatal(err)
	}
	compareToGolden(t, "cross-corpus-warm", got)
	if hits := warm.Stats.CacheHits.Load(); hits < 4 {
		t.Fatalf("cross-corpus warm run served %d cache hits, want ≥ 4 (one per partition)", hits)
	}
	if shipped := warm.Stats.ShippedBytes.Load(); shipped != 0 {
		t.Fatalf("cross-corpus warm run shipped %d bytes; content-hash keys should serve every unit", shipped)
	}
}

// TestElasticSplitShipSliced pins the sliced-ship satellite: a run
// that splits every partition must ship *slices* — total payload bytes
// strictly below the whole corpus (the old code re-shipped the whole
// parent payload once per sub-unit, i.e. ≥ 2× corpus here) — and stay
// byte-identical to the golden.
func TestElasticSplitShipSliced(t *testing.T) {
	c := spillN(t, 4)
	var full int64
	for k := range c.Manifest.Partitions {
		blocks, err := ReadPartitionBlocks(c, k)
		if err != nil {
			t.Fatal(err)
		}
		full += int64(len(blocks))
	}
	s := New(c,
		&Loopback{Server: &Server{}, Label: "w0"},
		&Loopback{Server: &Server{}, Label: "w1"},
	)
	s.ShipBlocks = true
	s.SplitFactor = 0.5
	s.SpeculateAfter = 5 * time.Second
	s.Logf = t.Logf
	got, err := s.RunAll(2)
	if err != nil {
		t.Fatal(err)
	}
	compareToGolden(t, "elastic-split-sliced", got)
	if n := s.Stats.Splits.Load(); n != 4 {
		t.Fatalf("%d partitions split, want all 4", n)
	}
	shipped := s.Stats.ShippedBytes.Load()
	if shipped == 0 || shipped >= full {
		t.Fatalf("split run shipped %d bytes against a %d-byte corpus; sub-units must ship compressed slices, not parent payloads", shipped, full)
	}
}
